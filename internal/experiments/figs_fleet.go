package experiments

import (
	"fmt"
	"math"

	"github.com/dynagg/dynagg/internal/agg"
	"github.com/dynagg/dynagg/internal/fleet"
	"github.com/dynagg/dynagg/internal/hiddendb"
	"github.com/dynagg/dynagg/internal/tracking"
	"github.com/dynagg/dynagg/internal/workload"
)

func init() { register("fleet", FleetEquivalence) }

// FleetEquivalence is the multi-tenant serving scenario: a fleet manager
// tracks several aggregates at once — one task per estimator algorithm,
// unequal weights, one shared per-tick query budget — and every task's
// estimate stream is checked bit-for-bit against a standalone
// tracking.Service given the same seed and an equal per-round budget.
// The figure plots the per-task fleet estimates next to the databases'
// true sizes; the runner FAILS (returns an error) if any fleet estimate
// differs from its standalone twin in a single bit, so regenerating this
// figure is itself the determinism proof.
func FleetEquivalence(opt Options) (*Figure, error) {
	rounds := 8
	n, initial := 12000, 10800
	if opt.FullScale {
		rounds, n, initial = 20, 40000, 36000
	}
	specs := []struct {
		algo   string
		weight int
	}{
		{"RESTART", 1},
		{"REISSUE", 2},
		{"RS", 3},
	}
	const unitBudget = 100

	type side struct {
		env  *workload.Env
		id   string
		algo string
		g    int
		seed int64
	}
	mkSides := func() []*side {
		out := make([]*side, len(specs))
		for i, sp := range specs {
			seed := opt.Seed + int64(1000*i)
			data := workload.AutosLikeN(seed, n, 10)
			env, err := workload.NewEnv(data, initial, seed+1)
			if err != nil {
				panic(err) // deterministic construction; cannot fail past development
			}
			out[i] = &side{
				env:  env,
				id:   fmt.Sprintf("task%d-%s", i, sp.algo),
				algo: sp.algo,
				g:    unitBudget * sp.weight,
				seed: seed + 7,
			}
		}
		return out
	}
	churn := func(env *workload.Env) func(int) error {
		return func(tick int) error {
			if tick == 1 {
				return nil
			}
			if err := env.InsertFromPool(n / 100); err != nil {
				return err
			}
			return env.DeleteFraction(0.003)
		}
	}

	// Fleet side: one manager, one target per task, weighted shares of
	// the global tick budget equal to each standalone budget.
	fleetSides := mkSides()
	targets := make(map[string]fleet.Target, len(fleetSides))
	tickBudget := 0
	for _, s := range fleetSides {
		iface := hiddendb.NewIface(s.env.Store, 100, nil)
		targets["db-"+s.id] = fleet.Target{
			Schema:  iface.Schema(),
			Source:  func(g int) tracking.Session { return iface.NewSession(g) },
			PreTick: churn(s.env),
		}
		tickBudget += s.g
	}
	mgr, err := fleet.New(fleet.Config{TickBudget: tickBudget, Targets: targets})
	if err != nil {
		return nil, err
	}
	for i, s := range fleetSides {
		err := mgr.Add(fleet.TaskSpec{
			ID:          s.id,
			Target:      "db-" + s.id,
			Algorithm:   s.algo,
			Weight:      specs[i].weight,
			Seed:        s.seed,
			Parallelism: opt.Parallelism,
		})
		if err != nil {
			return nil, err
		}
	}
	fleetEst := make([][]float64, len(fleetSides))
	truth := make([][]float64, len(fleetSides))
	for r := 0; r < rounds; r++ {
		mgr.TickOnce()
		for i, s := range fleetSides {
			ts, ok := mgr.TaskView(s.id)
			if !ok {
				return nil, fmt.Errorf("fleet: task %s vanished", s.id)
			}
			if ts.LastError != "" {
				return nil, fmt.Errorf("fleet: task %s round %d: %s", s.id, r+1, ts.LastError)
			}
			if ts.GrantedLast != s.g {
				return nil, fmt.Errorf("fleet: task %s granted %d, want weighted share %d",
					s.id, ts.GrantedLast, s.g)
			}
			fleetEst[i] = append(fleetEst[i], ts.View.Estimates[0].Value)
			truth[i] = append(truth[i], float64(s.env.Store.Size()))
		}
	}

	// Standalone side: the same tasks as plain tracking services.
	standaloneSides := mkSides()
	for i, s := range standaloneSides {
		iface := hiddendb.NewIface(s.env.Store, 100, nil)
		svc, err := tracking.New(iface.Schema(),
			func(g int) tracking.Session { return iface.NewSession(g) },
			tracking.Config{
				Algorithm:   s.algo,
				Aggregates:  []*agg.Aggregate{agg.CountAll()},
				Budget:      s.g,
				Seed:        s.seed,
				Parallelism: opt.Parallelism,
				PreRound:    churn(s.env),
			})
		if err != nil {
			return nil, err
		}
		for r := 0; r < rounds; r++ {
			if err := svc.StepOnce(); err != nil {
				return nil, fmt.Errorf("standalone %s round %d: %w", s.id, r+1, err)
			}
			got := svc.CurrentView().Estimates[0].Value
			if want := fleetEst[i][r]; math.Float64bits(got) != math.Float64bits(want) {
				return nil, fmt.Errorf(
					"fleet diverged from standalone: task %s round %d: fleet %v vs standalone %v",
					s.id, r+1, want, got)
			}
		}
	}

	f := &Figure{
		ID:     "fleet",
		Title:  "Multi-tenant fleet: weighted fair sharing, per-task estimates ≡ standalone trackers",
		XLabel: "round",
		YLabel: "COUNT(*) estimate",
		X:      roundsAxis(rounds),
	}
	for i, s := range fleetSides {
		f.AddSeries(fmt.Sprintf("%s (G=%d)", s.algo, s.g), fleetEst[i])
		f.AddSeries(fmt.Sprintf("truth %d", i), truth[i])
	}
	st := mgr.Status()
	f.Notes = append(f.Notes,
		fmt.Sprintf("verified: every fleet estimate bit-identical to its standalone tracking.Service twin (%d tasks × %d rounds)",
			len(fleetSides), rounds),
		fmt.Sprintf("fleet spent %d queries over %d rounds (tick budget %d, wasted %d)",
			st.QueriesTotal, st.RoundsTotal, tickBudget, st.WastedTotal),
	)
	return f, nil
}
