package metrics

import (
	"strings"
	"testing"
)

// TestFamilyAndValueOrdering: families render HELP then TYPE, and
// samples appear after their family declaration in emission order — the
// exposition contract every /v1/metrics endpoint relies on.
func TestFamilyAndValueOrdering(t *testing.T) {
	var b Builder
	b.Family("dynagg_a_total", "counter", "First family.")
	b.Value("dynagg_a_total", 3)
	b.Family("dynagg_b", "gauge", "Second family.")
	b.Int("dynagg_b", -7)
	got := b.String()
	want := "# HELP dynagg_a_total First family.\n" +
		"# TYPE dynagg_a_total counter\n" +
		"dynagg_a_total 3\n" +
		"# HELP dynagg_b Second family.\n" +
		"# TYPE dynagg_b gauge\n" +
		"dynagg_b -7\n"
	if got != want {
		t.Fatalf("exposition mismatch:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

// TestLabelRendering covers the label syntax: single and multiple
// pairs, and escaping of backslash, quote and newline in values.
func TestLabelRendering(t *testing.T) {
	var b Builder
	b.Value("m", 1, "key", "alpha")
	b.Value("m", 2, "key", "beta", "shard", "0")
	b.Value("m", 3, "key", `a\b"c`+"\n")
	got := b.String()
	for _, want := range []string{
		`m{key="alpha"} 1`,
		`m{key="beta",shard="0"} 2`,
		`m{key="a\\b\"c\n"} 3`,
	} {
		if !strings.Contains(got, want+"\n") {
			t.Errorf("missing %q in:\n%s", want, got)
		}
	}
}

// TestOddLabelPairPanics: an odd label-pair count is a programming
// error and must panic rather than render a malformed exposition.
func TestOddLabelPairPanics(t *testing.T) {
	for name, f := range map[string]func(b *Builder){
		"Value":     func(b *Builder) { b.Value("m", 1, "key") },
		"Histogram": func(b *Builder) { b.Histogram("m", []float64{1}, []uint64{0, 0}, 0, "key") },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s with odd label pairs did not panic", name)
				}
			}()
			var b Builder
			f(&b)
		}()
	}
}

// TestHistogramExposition: buckets are cumulative and monotone, carry
// le labels including +Inf, and _sum/_count close the family.
func TestHistogramExposition(t *testing.T) {
	var b Builder
	b.Family("lat_seconds", "histogram", "Latency.")
	b.Histogram("lat_seconds", []float64{0.001, 0.01, 0.1}, []uint64{2, 3, 0, 1}, 0.256, "route", "search")
	got := b.String()
	want := "# HELP lat_seconds Latency.\n" +
		"# TYPE lat_seconds histogram\n" +
		`lat_seconds_bucket{route="search",le="0.001"} 2` + "\n" +
		`lat_seconds_bucket{route="search",le="0.01"} 5` + "\n" +
		`lat_seconds_bucket{route="search",le="0.1"} 5` + "\n" +
		`lat_seconds_bucket{route="search",le="+Inf"} 6` + "\n" +
		`lat_seconds_sum{route="search"} 0.256` + "\n" +
		`lat_seconds_count{route="search"} 6` + "\n"
	if got != want {
		t.Fatalf("histogram exposition mismatch:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

// TestHistogramNoLabels: the label-free shape still renders the le
// label alone.
func TestHistogramNoLabels(t *testing.T) {
	var b Builder
	b.Histogram("h", []float64{1}, []uint64{1, 1}, 3)
	got := b.String()
	for _, want := range []string{
		`h_bucket{le="1"} 1`,
		`h_bucket{le="+Inf"} 2`,
		"h_sum 3",
		"h_count 2",
	} {
		if !strings.Contains(got, want+"\n") {
			t.Errorf("missing %q in:\n%s", want, got)
		}
	}
}

// TestHistogramCountsMismatchPanics: counts must be len(bounds)+1 (the
// overflow bucket is mandatory).
func TestHistogramCountsMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic on counts/bounds mismatch")
		}
	}()
	var b Builder
	b.Histogram("m", []float64{1, 2}, []uint64{0, 0}, 0)
}

// TestHistogramDoesNotAliasCallerLabels: the le pair must never be
// appended into the caller's slice backing array.
func TestHistogramDoesNotAliasCallerLabels(t *testing.T) {
	labels := make([]string, 2, 8)
	labels[0], labels[1] = "key", "v"
	var b Builder
	b.Histogram("m", []float64{1}, []uint64{1, 0}, 1, labels...)
	if labels[:cap(labels)][2] != "" && labels[:cap(labels)][2] != "le" {
		// The spare capacity may stay zero-valued; what matters is the
		// visible slice is untouched.
		t.Logf("spare capacity written: %q", labels[:cap(labels)][2])
	}
	if labels[0] != "key" || labels[1] != "v" {
		t.Fatalf("caller labels mutated: %v", labels)
	}
}

func TestSortedKeys(t *testing.T) {
	m := map[string]int{"beta": 1, "alpha": 2, "gamma": 3}
	got := SortedKeys(m)
	want := []string{"alpha", "beta", "gamma"}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}
