package estimator

import (
	"testing"

	"github.com/dynagg/dynagg/internal/agg"
	"github.com/dynagg/dynagg/internal/hiddendb"
	"github.com/dynagg/dynagg/internal/workload"
)

func TestCrawlCompleteSnapshotMatchesTruth(t *testing.T) {
	data := workload.AutosLikeN(1, 3000, 8)
	env, err := workload.NewEnv(data, 2500, 2)
	if err != nil {
		t.Fatal(err)
	}
	iface := hiddendb.NewIface(env.Store, 100, nil)

	c := NewCrawl(env.Store.Schema())
	res, err := c.Run(iface.AsSearcher())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Complete {
		t.Fatal("unbudgeted crawl did not complete")
	}
	if len(res.Tuples) != env.Store.Size() {
		t.Fatalf("crawl found %d tuples, store has %d", len(res.Tuples), env.Store.Size())
	}
	if res.Cost < len(res.Tuples)/iface.K() {
		t.Errorf("cost %d implausibly low", res.Cost)
	}

	// Diffing two complete snapshots detects exact changes.
	before := make(map[uint64]bool, len(res.Tuples))
	for _, tu := range res.Tuples {
		before[tu.ID] = true
	}
	if err := env.DeleteRandom(50); err != nil {
		t.Fatal(err)
	}
	if err := env.InsertFromPool(80); err != nil {
		t.Fatal(err)
	}
	res2, err := c.Run(iface.AsSearcher())
	if err != nil {
		t.Fatal(err)
	}
	inserted, deleted := 0, len(before)
	for _, tu := range res2.Tuples {
		if before[tu.ID] {
			deleted--
		} else {
			inserted++
		}
	}
	if inserted != 80 || deleted != 50 {
		t.Errorf("diff found +%d/-%d, want +80/-50", inserted, deleted)
	}
}

// The point of the strawman: under a realistic budget the crawl cannot
// finish a round, while the estimators deliver usable estimates.
func TestCrawlProhibitiveUnderBudget(t *testing.T) {
	data := workload.AutosLikeN(3, 30000, 12)
	env, err := workload.NewEnv(data, 28000, 4)
	if err != nil {
		t.Fatal(err)
	}
	iface := hiddendb.NewIface(env.Store, 100, nil)

	const G = 500
	c := NewCrawl(env.Store.Schema())
	res, err := c.Run(iface.NewSession(G))
	if err != hiddendb.ErrBudgetExhausted {
		t.Fatalf("err = %v, want budget exhausted", err)
	}
	if res.Complete {
		t.Fatal("crawl claims completion under budget")
	}
	coverage := float64(len(res.Tuples)) / float64(env.Store.Size())
	if coverage > 0.9 {
		t.Errorf("crawl covered %.0f%% — budget not prohibitive here", coverage*100)
	}

	// Meanwhile REISSUE with the same budget estimates COUNT(*) well.
	e, err := NewReissue(env.Store.Schema(), []*agg.Aggregate{agg.CountAll()}, cfg(5))
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Step(iface.NewSession(G)); err != nil {
		t.Fatal(err)
	}
	est, ok := e.Estimate(0)
	if !ok {
		t.Fatal("no estimate")
	}
	truth := float64(env.Store.Size())
	if rel := abs(est.Value-truth) / truth; rel > 0.4 {
		t.Errorf("REISSUE rel err %.2f under same budget", rel)
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
