package hiddendb

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"github.com/dynagg/dynagg/internal/schema"
)

// mirroredStores builds an unsharded Store and an n-way ShardedStore
// holding the identical tuple set (same IDs, vals, aux), plus a churn
// function that applies the identical mutation batch to both.
func mirroredStores(t testing.TB, seed int64, n, shards int, domains []int) (*Store, *ShardedStore, func(insertN, deleteN int)) {
	t.Helper()
	attrs := make([]schema.Attr, len(domains))
	for i, d := range domains {
		dom := make([]string, d)
		for v := range dom {
			dom[v] = fmt.Sprintf("v%d", v)
		}
		attrs[i] = schema.Attr{Name: fmt.Sprintf("S%d", i+1), Domain: dom}
	}
	sch := schema.New(attrs)
	flat := NewStore(sch)
	ss := NewShardedStore(sch, shards)
	rng := rand.New(rand.NewSource(seed))
	gen := func() *schema.Tuple {
		vals := make([]uint16, len(domains))
		for i, d := range domains {
			vals[i] = uint16(rng.Intn(d))
		}
		return &schema.Tuple{ID: flat.NextID(), Vals: vals, Aux: []float64{rng.Float64() * 100}}
	}
	var seedBatch []*schema.Tuple
	for i := 0; i < n; i++ {
		seedBatch = append(seedBatch, gen())
	}
	if err := flat.ApplyBatch(seedBatch, nil); err != nil {
		t.Fatal(err)
	}
	if err := ss.ApplyBatchParallel(seedBatch, nil); err != nil {
		t.Fatal(err)
	}
	churn := func(insertN, deleteN int) {
		var ins []*schema.Tuple
		for i := 0; i < insertN; i++ {
			ins = append(ins, gen())
		}
		ids := flat.IDs()
		rng.Shuffle(len(ids), func(i, j int) { ids[i], ids[j] = ids[j], ids[i] })
		if deleteN > len(ids) {
			deleteN = len(ids)
		}
		dels := ids[:deleteN]
		// t.Error, not t.Fatal: churn may run on a mutator goroutine.
		if err := flat.ApplyBatch(ins, dels); err != nil {
			t.Error(err)
			return
		}
		if err := ss.ApplyBatchParallel(ins, dels); err != nil {
			t.Error(err)
			return
		}
	}
	return flat, ss, churn
}

// TestShardedEquivalenceFuzz is the seeded fuzz proof of the sharded
// engine's core guarantee: for every shard count, every gather-goroutine
// count, and a database churning between rounds, scatter-gather answers
// are byte-identical to the unsharded interface over the same data —
// tuples, order, overflow flag — and CountMatching agrees exactly.
func TestShardedEquivalenceFuzz(t *testing.T) {
	for _, shards := range []int{1, 4, 16} {
		for seed := int64(90); seed < 93; seed++ {
			t.Run(fmt.Sprintf("shards=%d/seed=%d", shards, seed), func(t *testing.T) {
				flat, ss, churn := mirroredStores(t, seed, 1200, shards, []int{7, 5, 4, 6})
				const k = 25
				fi := NewIface(flat, k, nil)
				si := NewShardedIface(ss, k, nil)
				gi := NewShardedIface(ss, k, nil)
				gi.SetGatherWorkers(shards + 1)
				qrng := rand.New(rand.NewSource(seed * 17))
				for round := 0; round < 4; round++ {
					if round > 0 {
						churn(120, 80)
						ss.AdvanceEpoch()
					}
					for i := 0; i < 60; i++ {
						q := randomQueryOver(qrng, flat.Schema())
						want, err := fi.Search(q)
						if err != nil {
							t.Fatal(err)
						}
						for name, f := range map[string]*ShardedIface{"seq": si, "par": gi} {
							got, err := f.Search(q)
							if err != nil {
								t.Fatal(err)
							}
							if resultSignature(got) != resultSignature(want) {
								t.Fatalf("round %d query %v (%s gather): sharded answer diverges\n got %s\nwant %s",
									round, q, name, resultSignature(got), resultSignature(want))
							}
						}
						if got, want := ss.CountMatching(q), flat.CountMatching(q); got != want {
							t.Fatalf("round %d: CountMatching %d vs %d", round, got, want)
						}
					}
				}
			})
		}
	}
}

// TestShardedEpochPinning: a session pinned at epoch E keeps answering
// from E — byte-identically — no matter how many epochs advance under
// it, while freshly created sessions see the newest epoch.
func TestShardedEpochPinning(t *testing.T) {
	_, ss, churn := mirroredStores(t, 7, 900, 4, []int{6, 5, 5})
	const k = 20
	si := NewShardedIface(ss, k, nil)
	pinned := si.NewSession(0)
	e0 := ss.Epoch()

	rng := rand.New(rand.NewSource(99))
	queries := make([]Query, 40)
	baseline := make([]string, len(queries))
	for i := range queries {
		queries[i] = randomQueryOver(rng, ss.Schema())
		r, err := pinned.Search(queries[i])
		if err != nil {
			t.Fatal(err)
		}
		baseline[i] = resultSignature(r)
	}

	for epoch := 0; epoch < 3; epoch++ {
		churn(150, 100)
		ss.AdvanceEpoch()
		if got := ss.Epoch().Seq(); got != e0.Seq()+uint64(epoch)+1 {
			t.Fatalf("epoch seq %d after %d advances from %d", got, epoch+1, e0.Seq())
		}
		// The pinned session must keep serving epoch e0's answers.
		for i, q := range queries {
			r, err := pinned.Search(q)
			if err != nil {
				t.Fatal(err)
			}
			if resultSignature(r) != baseline[i] {
				t.Fatalf("pinned session observed a later epoch (query %d, after %d advances)", i, epoch+1)
			}
		}
	}

	// A fresh session sees the current epoch: at least one answer must
	// differ from the e0 baseline after this much churn.
	fresh := si.NewSession(0)
	changed := false
	for i, q := range queries {
		r, err := fresh.Search(q)
		if err != nil {
			t.Fatal(err)
		}
		if resultSignature(r) != baseline[i] {
			changed = true
			_ = i
			break
		}
	}
	if !changed {
		t.Fatal("fresh session still answers from the initial epoch after heavy churn")
	}
}

// TestShardedConcurrentSessions races 32 concurrent sessions against a
// sharded interface while per-shard mutator goroutines churn the store
// and epochs advance. Every session verifies each answer against a
// direct scatter-gather over its own pinned epoch — proving no session
// ever observes two epochs (or a torn one).
func TestShardedConcurrentSessions(t *testing.T) {
	_, ss, churn := mirroredStores(t, 11, 1500, 4, []int{7, 6, 5})
	const k = 25
	si := NewShardedIface(ss, k, nil)
	si.SetGatherWorkers(3)

	stop := make(chan struct{})
	var rounds atomic.Uint64
	var mutWG sync.WaitGroup
	mutWG.Add(1)
	go func() {
		// The round driver: per-shard mutator goroutines (inside
		// ApplyBatchParallel via churn) followed by epoch publication.
		defer mutWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			churn(60, 40)
			ss.AdvanceEpoch()
			rounds.Add(1)
		}
	}()

	const sessions = 32
	var wg sync.WaitGroup
	errs := make(chan error, sessions)
	for g := 0; g < sessions; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(1000 + g)))
			sess := si.NewSession(0)
			e := sess.Epoch()
			for i := 0; i < 40; i++ {
				q := randomQueryOver(rng, ss.Schema())
				got, err := sess.Search(q)
				if err != nil {
					errs <- err
					return
				}
				want := e.Answer(q, k, DefaultScorer, 1)
				if resultSignature(got) != resultSignature(want) {
					errs <- fmt.Errorf("session %d query %d: answer not from pinned epoch %d", g, i, e.Seq())
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(stop)
	mutWG.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if rounds.Load() == 0 {
		t.Log("warning: no epoch advanced during the race window")
	}
}
