//go:build race

package webiface

const raceEnabled = true
