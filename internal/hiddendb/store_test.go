package hiddendb

import (
	"math/rand"
	"testing"

	"github.com/dynagg/dynagg/internal/schema"
)

// newTestStore builds a store with n random tuples over m attributes of
// the given domain sizes.
func newTestStore(t testing.TB, seed int64, n int, domains []int) *Store {
	t.Helper()
	attrs := make([]schema.Attr, len(domains))
	for i, d := range domains {
		dom := make([]string, d)
		for v := range dom {
			dom[v] = string(rune('a' + v))
		}
		attrs[i] = schema.Attr{Name: "A" + string(rune('1'+i)), Domain: dom}
	}
	capacity := 1
	for _, d := range domains {
		capacity *= d
	}
	if n > capacity {
		t.Fatalf("newTestStore: %d distinct tuples requested but domain product is %d", n, capacity)
	}
	sch := schema.New(attrs)
	st := NewStore(sch)
	rng := rand.New(rand.NewSource(seed))
	seen := make(map[string]bool)
	for st.Size() < n {
		vals := make([]uint16, len(domains))
		for i, d := range domains {
			vals[i] = uint16(rng.Intn(d))
		}
		tu := &schema.Tuple{ID: st.NextID(), Vals: vals, Aux: []float64{rng.Float64() * 100}}
		if seen[tu.Key()] {
			continue
		}
		seen[tu.Key()] = true
		if err := st.Insert(tu); err != nil {
			t.Fatalf("insert: %v", err)
		}
	}
	return st
}

func TestStoreInsertDeleteBasics(t *testing.T) {
	st := newTestStore(t, 1, 50, []int{4, 4, 5})
	if st.Size() != 50 {
		t.Fatalf("Size = %d", st.Size())
	}
	v0 := st.Version()
	tu, err := st.Delete(1)
	if err != nil || tu == nil || tu.ID != 1 {
		t.Fatalf("Delete(1) = %v, %v", tu, err)
	}
	if st.Size() != 49 {
		t.Errorf("Size after delete = %d", st.Size())
	}
	if st.Version() == v0 {
		t.Error("Version did not advance on delete")
	}
	if _, err := st.Delete(1); err == nil {
		t.Error("double delete succeeded")
	}
	if st.Get(1) != nil {
		t.Error("Get returns deleted tuple")
	}
	if st.Get(2) == nil {
		t.Error("Get(2) = nil for live tuple")
	}
	// Re-insert the deleted tuple.
	if err := st.Insert(tu); err != nil {
		t.Fatalf("re-insert: %v", err)
	}
	if st.Size() != 50 {
		t.Errorf("Size after re-insert = %d", st.Size())
	}
}

func TestStoreInsertErrors(t *testing.T) {
	st := newTestStore(t, 2, 5, []int{3, 3})
	if err := st.Insert(&schema.Tuple{ID: 0, Vals: []uint16{0, 0}}); err == nil {
		t.Error("ID 0 accepted")
	}
	if err := st.Insert(&schema.Tuple{ID: 1, Vals: []uint16{0, 0}}); err == nil {
		t.Error("duplicate ID accepted")
	}
	if err := st.Insert(&schema.Tuple{ID: 99, Vals: []uint16{0}}); err == nil {
		t.Error("short tuple accepted")
	}
	if err := st.Insert(&schema.Tuple{ID: 99, Vals: []uint16{7, 0}}); err == nil {
		t.Error("out-of-domain tuple accepted")
	}
}

// sortedInvariant checks the canonical order invariant.
func sortedInvariant(t *testing.T, st *Store) {
	t.Helper()
	var prev *schema.Tuple
	st.ForEach(func(tu *schema.Tuple) {
		if prev != nil {
			c := schema.CompareVals(prev.Vals, tu.Vals)
			if c > 0 || (c == 0 && prev.ID >= tu.ID) {
				t.Fatalf("order violated: %v before %v", prev, tu)
			}
		}
		prev = tu
	})
}

func TestStoreStaysSorted(t *testing.T) {
	st := newTestStore(t, 3, 200, []int{5, 4, 4, 4})
	sortedInvariant(t, st)
	rng := rand.New(rand.NewSource(4))
	// Random interleaved inserts and deletes.
	for i := 0; i < 300; i++ {
		if rng.Intn(2) == 0 && st.Size() > 0 {
			ids := st.IDs()
			if _, err := st.Delete(ids[rng.Intn(len(ids))]); err != nil {
				t.Fatal(err)
			}
		} else {
			vals := []uint16{uint16(rng.Intn(4)), uint16(rng.Intn(4)), uint16(rng.Intn(4)), uint16(rng.Intn(4))}
			_ = st.Insert(&schema.Tuple{ID: st.NextID(), Vals: vals}) // dup vals fine here
		}
	}
	sortedInvariant(t, st)
}

func TestApplyBatchEquivalence(t *testing.T) {
	// Applying a batch must equal applying the operations one by one.
	mk := func() *Store { return newTestStore(t, 5, 100, []int{5, 5, 8}) }
	a, b := mk(), mk()

	rng := rand.New(rand.NewSource(6))
	ids := a.IDs()
	var deletes []uint64
	for _, id := range ids {
		if rng.Float64() < 0.2 {
			deletes = append(deletes, id)
		}
	}
	var inserts []*schema.Tuple
	for i := 0; i < 30; i++ {
		vals := []uint16{uint16(rng.Intn(5)), uint16(rng.Intn(5)), uint16(rng.Intn(8))}
		inserts = append(inserts, &schema.Tuple{ID: 10000 + uint64(i), Vals: vals})
	}

	if err := a.ApplyBatch(inserts, deletes); err != nil {
		t.Fatalf("ApplyBatch: %v", err)
	}
	for _, id := range deletes {
		if _, err := b.Delete(id); err != nil {
			t.Fatal(err)
		}
	}
	for _, tu := range inserts {
		if err := b.Insert(tu.Clone(tu.ID)); err != nil {
			t.Fatal(err)
		}
	}

	if a.Size() != b.Size() {
		t.Fatalf("sizes differ: %d vs %d", a.Size(), b.Size())
	}
	var at, bt []*schema.Tuple
	a.ForEach(func(tu *schema.Tuple) { at = append(at, tu) })
	b.ForEach(func(tu *schema.Tuple) { bt = append(bt, tu) })
	for i := range at {
		if at[i].ID != bt[i].ID || schema.CompareVals(at[i].Vals, bt[i].Vals) != 0 {
			t.Fatalf("tuple %d differs: %v vs %v", i, at[i], bt[i])
		}
	}
	sortedInvariant(t, a)
}

func TestApplyBatchErrors(t *testing.T) {
	st := newTestStore(t, 7, 10, []int{4, 4})
	if err := st.ApplyBatch(nil, []uint64{9999}); err == nil {
		t.Error("unknown delete ID accepted")
	}
	if err := st.ApplyBatch(nil, []uint64{1, 1}); err == nil {
		t.Error("duplicate delete accepted")
	}
	if err := st.ApplyBatch([]*schema.Tuple{{ID: 1, Vals: []uint16{0, 0}}}, nil); err == nil {
		t.Error("insert with live duplicate ID accepted")
	}
	// Deleting and re-inserting the same ID in one batch is legal.
	old := st.Get(2)
	repl := old.Clone(2)
	if err := st.ApplyBatch([]*schema.Tuple{repl}, []uint64{2}); err != nil {
		t.Errorf("delete+reinsert same ID rejected: %v", err)
	}
	if st.Get(2) != repl {
		t.Error("replacement tuple not installed")
	}
}

func TestReplaceKeepsIDAndSnapshots(t *testing.T) {
	st := newTestStore(t, 8, 20, []int{4, 8})
	old := st.Get(3)
	oldAux := old.Aux[0]
	err := st.Replace(3, func(c *schema.Tuple) { c.Aux[0] = 42.5 })
	if err != nil {
		t.Fatal(err)
	}
	neu := st.Get(3)
	if neu.Aux[0] != 42.5 {
		t.Errorf("replacement Aux = %v", neu.Aux[0])
	}
	if old.Aux[0] != oldAux {
		t.Error("old snapshot mutated by Replace")
	}
	if st.Size() != 20 {
		t.Errorf("Size changed: %d", st.Size())
	}
	if err := st.Replace(9999, func(*schema.Tuple) {}); err == nil {
		t.Error("Replace of unknown ID accepted")
	}
	sortedInvariant(t, st)
}

func TestCountMatching(t *testing.T) {
	st := newTestStore(t, 9, 500, []int{4, 3, 5, 12})
	// Count by naive scan for a few queries and compare.
	queries := []Query{
		NewQuery(),
		NewQuery(Pred{Attr: 0, Val: 1}),
		NewQuery(Pred{Attr: 1, Val: 2}),
		NewQuery(Pred{Attr: 0, Val: 2}, Pred{Attr: 2, Val: 4}),
		NewQuery(Pred{Attr: 0, Val: 1}, Pred{Attr: 1, Val: 0}, Pred{Attr: 2, Val: 3}),
	}
	for _, q := range queries {
		naive := 0
		st.ForEach(func(tu *schema.Tuple) {
			if q.Matches(tu, false) {
				naive++
			}
		})
		if got := st.CountMatching(q); got != naive {
			t.Errorf("CountMatching(%v) = %d, naive %d", q, got, naive)
		}
	}
}

func TestQueryConstruction(t *testing.T) {
	q := NewQuery(Pred{Attr: 2, Val: 1}, Pred{Attr: 0, Val: 3})
	preds := q.Preds()
	if len(preds) != 2 || preds[0].Attr != 0 || preds[1].Attr != 2 {
		t.Errorf("preds not sorted: %+v", preds)
	}
	q2 := q.And(1, 7)
	if q2.Len() != 3 || q.Len() != 2 {
		t.Errorf("And mutated receiver or wrong len: %d %d", q2.Len(), q.Len())
	}
	if q.Key() == q2.Key() {
		t.Error("distinct queries share a key")
	}
	if NewQuery().String() != "SELECT * FROM D" {
		t.Errorf("root string = %q", NewQuery().String())
	}
	defer func() {
		if recover() == nil {
			t.Error("duplicate attr did not panic")
		}
	}()
	NewQuery(Pred{Attr: 0, Val: 1}, Pred{Attr: 0, Val: 2})
}

func TestPrefixLen(t *testing.T) {
	cases := []struct {
		q    Query
		want int
	}{
		{NewQuery(), 0},
		{NewQuery(Pred{Attr: 0, Val: 1}), 1},
		{NewQuery(Pred{Attr: 1, Val: 1}), 0},
		{NewQuery(Pred{Attr: 0, Val: 1}, Pred{Attr: 1, Val: 0}), 2},
		{NewQuery(Pred{Attr: 0, Val: 1}, Pred{Attr: 2, Val: 0}), 1},
		{NewQuery(Pred{Attr: 0, Val: schema.NullCode}), 0},
	}
	for _, c := range cases {
		if got := c.q.prefixLen(); got != c.want {
			t.Errorf("prefixLen(%v) = %d, want %d", c.q, got, c.want)
		}
	}
}

func TestNullSemantics(t *testing.T) {
	sch := schema.New([]schema.Attr{
		{Name: "a", Domain: []string{"x", "y"}},
		{Name: "b", Domain: []string{"p", "q"}, Nullable: true},
	})
	st := NewStore(sch)
	mustInsert := func(id uint64, vals []uint16) {
		t.Helper()
		if err := st.Insert(&schema.Tuple{ID: id, Vals: vals}); err != nil {
			t.Fatal(err)
		}
	}
	mustInsert(1, []uint16{0, 0})
	mustInsert(2, []uint16{0, schema.NullCode})
	mustInsert(3, []uint16{1, 1})

	qB0 := NewQuery(Pred{Attr: 1, Val: 0})
	qNull := NewQuery(Pred{Attr: 1, Val: schema.NullCode})

	// Default policy: NULL matches only IS NULL.
	if got := st.CountMatching(qB0); got != 1 {
		t.Errorf("strict: count(b=0) = %d, want 1", got)
	}
	if got := st.CountMatching(qNull); got != 1 {
		t.Errorf("strict: count(b IS NULL) = %d, want 1", got)
	}

	// Broad match: NULL matches any predicate on its attribute.
	st.SetBroadMatchNull(true)
	if !st.BroadMatchNull() {
		t.Fatal("BroadMatchNull not set")
	}
	if got := st.CountMatching(qB0); got != 2 {
		t.Errorf("broad: count(b=0) = %d, want 2", got)
	}
}
