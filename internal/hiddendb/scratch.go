package hiddendb

import (
	"sync"

	"github.com/dynagg/dynagg/internal/schema"
)

// Pooled per-query scratch.
//
// Every query borrows one queryScratch from a process-wide sync.Pool for
// the duration of the call: intersection ping-pong buffers, the covered/
// uncovered predicate split, and the top-k heap backing all live here, so
// the steady-state answering path allocates only the Result slice it
// hands back. The pool is snapshot-independent — scratch holds no
// reference to any snapshot after putScratch, which nils out every
// pointer-carrying field precisely so the pool cannot pin tuples (or,
// through them, retired snapshots) in memory.
//
// Ownership rule (part of the package concurrency contract): scratch
// never escapes the query that borrowed it. Results are freshly
// allocated by topK.drain, survivors/buffers are only ever read between
// getScratch and putScratch, and a scratch is owned by exactly one
// goroutine at a time — the scatter-gather path gives each worker
// goroutine its own scratch rather than sharing one.

// topK keeps the best k tuples seen so far, ranked by the strict
// (score desc, ID asc) total order, as a manual binary heap over two
// parallel slices. The root is the WORST retained entry, so a full heap
// decides keep-or-drop against index 0 in O(1) and replaces in O(log k).
// Replacing container/heap removed the any-boxing that allocated on
// every push (one escape per retained tuple, ~k allocs per query).
type topK struct {
	tuples []*schema.Tuple
	scores []float64
}

func (h *topK) reset() {
	h.tuples = h.tuples[:0]
	h.scores = h.scores[:0]
}

func (h *topK) len() int { return len(h.tuples) }

// worse reports whether entry i ranks strictly below entry j: lower
// score, or equal score and larger ID.
func (h *topK) worse(i, j int) bool {
	if h.scores[i] != h.scores[j] {
		return h.scores[i] < h.scores[j]
	}
	return h.tuples[i].ID > h.tuples[j].ID
}

func (h *topK) swap(i, j int) {
	h.tuples[i], h.tuples[j] = h.tuples[j], h.tuples[i]
	h.scores[i], h.scores[j] = h.scores[j], h.scores[i]
}

func (h *topK) siftUp(i int) {
	for i > 0 {
		p := (i - 1) / 2
		if !h.worse(i, p) {
			return
		}
		h.swap(i, p)
		i = p
	}
}

func (h *topK) siftDown(i int) {
	n := len(h.tuples)
	for {
		l := 2*i + 1
		if l >= n {
			return
		}
		m := l
		if r := l + 1; r < n && h.worse(r, l) {
			m = r
		}
		if !h.worse(m, i) {
			return
		}
		h.swap(i, m)
		i = m
	}
}

// offer considers one scored tuple for the top k: push while under
// capacity, else replace the current worst if strictly better under the
// (score desc, ID asc) order.
func (h *topK) offer(t *schema.Tuple, s float64, k int) {
	if len(h.tuples) < k {
		h.tuples = append(h.tuples, t)
		h.scores = append(h.scores, s)
		h.siftUp(len(h.tuples) - 1)
		return
	}
	if s > h.scores[0] || (s == h.scores[0] && t.ID < h.tuples[0].ID) {
		h.tuples[0], h.scores[0] = t, s
		h.siftDown(0)
	}
}

// drain empties the heap into a freshly allocated best-first slice —
// popping worst-first and filling from the back yields exactly the
// (score desc, ID asc) ranking Result promises. This is the one
// steady-state allocation of the answering path.
func (h *topK) drain() []*schema.Tuple {
	out := make([]*schema.Tuple, len(h.tuples))
	for i := len(h.tuples) - 1; i >= 0; i-- {
		out[i] = h.tuples[0]
		last := len(h.tuples) - 1
		h.tuples[0], h.scores[0] = h.tuples[last], h.scores[last]
		h.tuples = h.tuples[:last]
		h.scores = h.scores[:last]
		h.siftDown(0)
	}
	return out
}

// queryScratch is the reusable per-query working set.
type queryScratch struct {
	topk    topK
	idtop   idTopK // ID-domain heap for ID-pure scorers (idscore.go)
	matches int

	// plan storage: covered predicates (posting lists to intersect) and
	// uncovered ones (filtered tuple-by-tuple at emit time).
	preds []predPostings
	rest  []Pred

	// prefix-range probe vector.
	prefix []uint16

	// intersection buffers: bufA/bufB ping-pong the running survivor
	// set, bufC/bufD hold the two per-predicate parts (value list and
	// NULL list) before their disjoint union.
	bufA, bufB, bufC, bufD []uint16

	// scatter-gather: the per-worker scratches a merge borrows, held
	// only between fan-out and merge.
	workers []*queryScratch
}

var scratchPool = sync.Pool{New: func() any { return new(queryScratch) }}

func getScratch() *queryScratch { return scratchPool.Get().(*queryScratch) }

// putScratch returns a scratch to the pool with every pointer-carrying
// field cleared, so pooled scratch never keeps tuples, posting lists or
// snapshots alive.
func putScratch(sc *queryScratch) {
	ts := sc.topk.tuples[:cap(sc.topk.tuples)]
	for i := range ts {
		ts[i] = nil
	}
	sc.topk.reset()
	cs := sc.idtop.srcC[:cap(sc.idtop.srcC)]
	for i := range cs {
		cs[i] = nil
	}
	sc.idtop.reset()
	ps := sc.preds[:cap(sc.preds)]
	for i := range ps {
		ps[i] = predPostings{}
	}
	sc.preds = sc.preds[:0]
	sc.rest = sc.rest[:0]
	ws := sc.workers[:cap(sc.workers)]
	for i := range ws {
		ws[i] = nil
	}
	sc.workers = sc.workers[:0]
	sc.matches = 0
	scratchPool.Put(sc)
}
