package agg

import (
	"math"
	"math/rand"
	"testing"

	"github.com/dynagg/dynagg/internal/hiddendb"
	"github.com/dynagg/dynagg/internal/schema"
)

func buildStore(t testing.TB, seed int64, n int) *hiddendb.Store {
	t.Helper()
	sch := schema.New([]schema.Attr{
		{Name: "type", Domain: []string{"car", "truck", "suv", "van"}},
		{Name: "color", Domain: []string{"red", "blue", "green"}},
		{Name: "year", Domain: []string{"y0", "y1", "y2", "y3", "y4"}},
		{Name: "trim", Domain: []string{"t0", "t1", "t2", "t3", "t4", "t5"}},
	})
	st := hiddendb.NewStore(sch)
	rng := rand.New(rand.NewSource(seed))
	seen := make(map[string]bool)
	for st.Size() < n {
		vals := []uint16{
			uint16(rng.Intn(4)), uint16(rng.Intn(3)),
			uint16(rng.Intn(5)), uint16(rng.Intn(6)),
		}
		tu := &schema.Tuple{ID: st.NextID(), Vals: vals, Aux: []float64{float64(rng.Intn(50000)) / 100}}
		if seen[tu.Key()] {
			continue
		}
		seen[tu.Key()] = true
		if err := st.Insert(tu); err != nil {
			t.Fatal(err)
		}
	}
	return st
}

func TestKindString(t *testing.T) {
	if Count.String() != "COUNT" || Sum.String() != "SUM" || Avg.String() != "AVG" {
		t.Error("kind names wrong")
	}
	if Kind(9).String() != "Kind(9)" {
		t.Error("unknown kind rendering wrong")
	}
}

func TestCountAllTruth(t *testing.T) {
	st := buildStore(t, 1, 150)
	a := CountAll()
	if got := a.Truth(st); got != 150 {
		t.Errorf("Truth = %v, want 150", got)
	}
	if a.String() != "COUNT(*)" {
		t.Errorf("String = %q", a.String())
	}
}

func TestCountWhereTruthMatchesScan(t *testing.T) {
	st := buildStore(t, 2, 200)
	sel := hiddendb.NewQuery(hiddendb.Pred{Attr: 0, Val: 1})
	a := CountWhere("trucks", sel)
	want := st.CountMatching(sel)
	if got := a.Truth(st); got != float64(want) {
		t.Errorf("Truth = %v, want %d", got, want)
	}
	if !a.HasSelQuery {
		t.Error("HasSelQuery not set")
	}
}

func TestSumAndAvgTruth(t *testing.T) {
	st := buildStore(t, 3, 120)
	price := AuxField(0)
	sum := SumOf("SUM(price)", price)
	avg := AvgOf("AVG(price)", price)

	var wantSum float64
	var cnt int
	st.ForEach(func(tu *schema.Tuple) { wantSum += tu.Aux[0]; cnt++ })
	if got := sum.Truth(st); math.Abs(got-wantSum) > 1e-9 {
		t.Errorf("SUM truth = %v, want %v", got, wantSum)
	}
	if got := avg.Truth(st); math.Abs(got-wantSum/float64(cnt)) > 1e-9 {
		t.Errorf("AVG truth = %v, want %v", got, wantSum/float64(cnt))
	}
}

func TestSumWhereAvgWhere(t *testing.T) {
	st := buildStore(t, 4, 180)
	sel := hiddendb.NewQuery(hiddendb.Pred{Attr: 1, Val: 2})
	price := AuxField(0)
	sw := SumWhere("SUM(price) green", price, sel)
	aw := AvgWhere("AVG(price) green", price, sel)

	var wantSum float64
	var cnt float64
	st.ForEach(func(tu *schema.Tuple) {
		if tu.Vals[1] == 2 {
			wantSum += tu.Aux[0]
			cnt++
		}
	})
	if got := sw.Truth(st); math.Abs(got-wantSum) > 1e-9 {
		t.Errorf("SumWhere truth = %v, want %v", got, wantSum)
	}
	want := 0.0
	if cnt > 0 {
		want = wantSum / cnt
	}
	if got := aw.Truth(st); math.Abs(got-want) > 1e-9 {
		t.Errorf("AvgWhere truth = %v, want %v", got, want)
	}
}

func TestAvgOfEmptySelectionIsZero(t *testing.T) {
	st := buildStore(t, 5, 50)
	never := &Aggregate{Name: "never", Kind: Avg, F: AuxField(0), Sel: func(*schema.Tuple) bool { return false }}
	if got := never.Truth(st); got != 0 {
		t.Errorf("empty AVG = %v, want 0", got)
	}
}

func TestPairArithmetic(t *testing.T) {
	p := Pair{SumF: 10, Count: 2}
	p.Add(Pair{SumF: 5, Count: 3})
	if p.SumF != 15 || p.Count != 5 {
		t.Errorf("Add: %+v", p)
	}
	s := p.Scale(0.5)
	if s.SumF != 30 || s.Count != 10 {
		t.Errorf("Scale: %+v", s)
	}
	d := s.Sub(Pair{SumF: 10, Count: 4})
	if d.SumF != 20 || d.Count != 6 {
		t.Errorf("Sub: %+v", d)
	}
}

func TestPairOfTuplesAppliesSelection(t *testing.T) {
	st := buildStore(t, 6, 60)
	var tuples []*schema.Tuple
	st.ForEach(func(tu *schema.Tuple) { tuples = append(tuples, tu) })

	sel := hiddendb.NewQuery(hiddendb.Pred{Attr: 0, Val: 0})
	a := SumWhere("cars", AuxField(0), sel)
	p := a.PairOfTuples(tuples)

	var wantSum, wantCnt float64
	for _, tu := range tuples {
		if tu.Vals[0] == 0 {
			wantSum += tu.Aux[0]
			wantCnt++
		}
	}
	if math.Abs(p.SumF-wantSum) > 1e-9 || p.Count != wantCnt {
		t.Errorf("PairOfTuples = %+v, want (%v,%v)", p, wantSum, wantCnt)
	}
}

func TestFinalizeByKind(t *testing.T) {
	p := Pair{SumF: 40, Count: 8}
	if (&Aggregate{Kind: Count}).Finalize(p) != 8 {
		t.Error("Count finalize")
	}
	if (&Aggregate{Kind: Sum}).Finalize(p) != 40 {
		t.Error("Sum finalize")
	}
	if (&Aggregate{Kind: Avg}).Finalize(p) != 5 {
		t.Error("Avg finalize")
	}
	if (&Aggregate{Kind: Avg}).Finalize(Pair{}) != 0 {
		t.Error("Avg of empty should be 0")
	}
}

func TestPrimaryByKind(t *testing.T) {
	p := Pair{SumF: 40, Count: 8}
	if (&Aggregate{Kind: Count}).Primary(p) != 8 {
		t.Error("Count primary should be count")
	}
	if (&Aggregate{Kind: Sum}).Primary(p) != 40 {
		t.Error("Sum primary should be sumF")
	}
	if (&Aggregate{Kind: Avg}).Primary(p) != 40 {
		t.Error("Avg primary should be sumF")
	}
}

func TestIndicator(t *testing.T) {
	st := buildStore(t, 7, 100)
	men := hiddendb.NewQuery(hiddendb.Pred{Attr: 0, Val: 2})
	frac := AvgOf("%suv", Indicator(men))
	var cnt, total float64
	st.ForEach(func(tu *schema.Tuple) {
		total++
		if tu.Vals[0] == 2 {
			cnt++
		}
	})
	if got := frac.Truth(st); math.Abs(got-cnt/total) > 1e-12 {
		t.Errorf("indicator AVG = %v, want %v", got, cnt/total)
	}
}

func TestAuxFieldOutOfRange(t *testing.T) {
	tu := &schema.Tuple{ID: 1, Vals: []uint16{0}, Aux: []float64{3}}
	if AuxField(0)(tu) != 3 {
		t.Error("AuxField(0)")
	}
	if AuxField(2)(tu) != 0 {
		t.Error("AuxField out of range should be 0")
	}
}

func TestTruthPairConsistentWithTruth(t *testing.T) {
	st := buildStore(t, 8, 90)
	a := AvgOf("AVG(price)", AuxField(0))
	p := a.TruthPair(st)
	if math.Abs(a.Finalize(p)-a.Truth(st)) > 1e-12 {
		t.Error("TruthPair and Truth disagree")
	}
	if p.Count != 90 {
		t.Errorf("TruthPair count = %v", p.Count)
	}
}
