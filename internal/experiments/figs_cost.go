package experiments

import (
	"math"

	"github.com/dynagg/dynagg/internal/workload"
)

func init() {
	register("fig18", Fig18)
	register("fig19", Fig19)
}

// Fig18 — query budget needed to reach a target relative error: the
// cumulative number of queries after which each algorithm's error stays
// at or below 0.15 / 0.2 / 0.3 under the default schedule.
func Fig18(opt Options) (*Figure, error) {
	p := autosDefaults(opt)
	p.g = 100
	rounds := 60
	spec := TrackSpec{
		Dataset: p.dataset(), Initial: p.initial,
		Schedule: workload.PoolChurn(p.insert, p.deleteFrac),
		K:        p.k, G: p.g, Rounds: rounds,
		Aggs: countAggs,
	}
	res, err := RunTracking(spec, opt, p.trials)
	if err != nil {
		return nil, err
	}
	targets := []float64{0.15, 0.10, 0.05}
	f := &Figure{
		ID: "fig18", Title: "Query cost to reach a target relative error",
		XLabel: "target error", YLabel: "cumulative queries",
		Notes: []string{p.scaleNote, "NaN = target not reached within the run"},
	}
	series := map[Algo][]float64{}
	for _, target := range targets {
		f.X = append(f.X, target)
		for _, a := range AllAlgos {
			series[a] = append(series[a], queriesToReach(res, a, target))
		}
	}
	for _, a := range AllAlgos {
		f.AddSeries(string(a), series[a])
	}
	return f, nil
}

// queriesToReach finds the cumulative query count at the first round from
// which the algorithm's error stays at or below the target for the whole
// remainder of the run — sustained convergence, not a lucky dip (RESTART's
// independent per-round estimates cross loose thresholds by noise).
func queriesToReach(res *TrackResult, a Algo, target float64) float64 {
	rel := res.RelErr[a]
	entered := -1
	for i := range rel {
		switch {
		case rel[i] <= target && entered == -1:
			entered = i
		case rel[i] > target:
			entered = -1
		}
	}
	if entered == -1 {
		return math.NaN()
	}
	return res.CumQueries[a][entered]
}

// Fig19 — cumulative drill downs achieved per cumulative query cost over
// 50 rounds: the query-saving mechanism made visible.
func Fig19(opt Options) (*Figure, error) {
	p := autosDefaults(opt)
	p.g = 100
	spec := TrackSpec{
		Dataset: p.dataset(), Initial: p.initial,
		Schedule: workload.PoolChurn(p.insert, p.deleteFrac),
		K:        p.k, G: p.g, Rounds: p.rounds,
		Aggs: countAggs,
	}
	res, err := RunTracking(spec, opt, p.trials)
	if err != nil {
		return nil, err
	}
	f := &Figure{
		ID: "fig19", Title: "Cumulative drill downs vs cumulative query cost",
		XLabel: "round", YLabel: "count",
		X:     roundsAxis(p.rounds),
		Notes: []string{p.scaleNote, "per algorithm: query cost column then drill-down column"},
	}
	for _, a := range AllAlgos {
		f.AddSeries(string(a)+" queries", res.CumQueries[a])
		f.AddSeries(string(a)+" drills", res.CumDrills[a])
	}
	return f, nil
}
