package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func controlPlane(t *testing.T) (*Manager, *httptest.Server) {
	t.Helper()
	mgr := fleetManager(t, []fixture{{id: "a", seed: 1234}}, 200, "")
	srv := httptest.NewServer(mgr.Handler())
	t.Cleanup(srv.Close)
	return mgr, srv
}

func do(t *testing.T, method, url string, body any) (*http.Response, []byte) {
	t.Helper()
	var rd io.Reader
	if body != nil {
		raw, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(raw)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, raw
}

func TestControlPlaneLifecycle(t *testing.T) {
	mgr, srv := controlPlane(t)

	// Before any tick: not ready.
	resp, _ := do(t, "GET", srv.URL+"/v1/healthz", nil)
	if resp.StatusCode != 503 {
		t.Fatalf("healthz before first tick: %d", resp.StatusCode)
	}

	// Create a task over the wire.
	resp, raw := do(t, "POST", srv.URL+"/v1/tasks", TaskSpec{
		ID: "wire", Target: "db-a", Algorithm: "REISSUE", Seed: 99,
		Aggregates: []AggregateSpec{{Kind: "AVG", AuxField: 0, Name: "AVG(price)"}},
	})
	if resp.StatusCode != 201 {
		t.Fatalf("POST /tasks: %d %s", resp.StatusCode, raw)
	}
	resp, _ = do(t, "POST", srv.URL+"/v1/tasks", TaskSpec{ID: "wire", Target: "db-a"})
	if resp.StatusCode != 409 {
		t.Fatalf("duplicate POST: %d, want 409", resp.StatusCode)
	}
	resp, raw = do(t, "POST", srv.URL+"/v1/tasks", TaskSpec{ID: "bad id!", Target: "db-a"})
	if resp.StatusCode != 400 {
		t.Fatalf("invalid POST: %d %s, want 400", resp.StatusCode, raw)
	}

	mgr.TickOnce()

	resp, raw = do(t, "GET", srv.URL+"/v1/status", nil)
	var st Status
	if err := json.Unmarshal(raw, &st); err != nil {
		t.Fatalf("status decode: %v (%s)", err, raw)
	}
	if resp.StatusCode != 200 || st.Ticks != 1 || st.TaskCount != 1 || len(st.Tasks) != 1 {
		t.Fatalf("status: %d %+v", resp.StatusCode, st)
	}
	if st.Tasks[0].View.Round != 1 || st.QueriesTotal == 0 {
		t.Fatalf("task did not advance: %+v", st.Tasks[0])
	}

	resp, raw = do(t, "GET", srv.URL+"/v1/tasks/wire/estimates", nil)
	if resp.StatusCode != 200 || !strings.Contains(string(raw), "AVG(price)") {
		t.Fatalf("estimates: %d %s", resp.StatusCode, raw)
	}

	resp, _ = do(t, "POST", srv.URL+"/v1/tasks/wire/pause", nil)
	if resp.StatusCode != 200 {
		t.Fatalf("pause: %d", resp.StatusCode)
	}
	mgr.TickOnce()
	resp, raw = do(t, "GET", srv.URL+"/v1/tasks/wire", nil)
	var ts TaskStatus
	if err := json.Unmarshal(raw, &ts); err != nil {
		t.Fatal(err)
	}
	if !ts.Paused || ts.View.Round != 1 {
		t.Fatalf("paused task stepped: %+v", ts)
	}
	resp, _ = do(t, "POST", srv.URL+"/v1/tasks/wire/resume", nil)
	if resp.StatusCode != 200 {
		t.Fatalf("resume: %d", resp.StatusCode)
	}

	resp, raw = do(t, "GET", srv.URL+"/v1/metrics", nil)
	body := string(raw)
	if resp.StatusCode != 200 ||
		!strings.Contains(body, "dynagg_fleet_ticks_total 2") ||
		!strings.Contains(body, `dynagg_fleet_task_round{task="wire"}`) ||
		!strings.Contains(body, "dynagg_fleet_wasted_queries_total") {
		t.Fatalf("metrics:\n%s", body)
	}

	resp, _ = do(t, "DELETE", srv.URL+"/v1/tasks/wire", nil)
	if resp.StatusCode != 200 {
		t.Fatalf("delete: %d", resp.StatusCode)
	}
	resp, _ = do(t, "GET", srv.URL+"/v1/tasks/wire", nil)
	if resp.StatusCode != 404 {
		t.Fatalf("deleted task still served: %d", resp.StatusCode)
	}
	resp, _ = do(t, "DELETE", srv.URL+"/v1/tasks/wire", nil)
	if resp.StatusCode != 404 {
		t.Fatalf("double delete: %d", resp.StatusCode)
	}

	resp, _ = do(t, "GET", srv.URL+"/v1/healthz", nil)
	if resp.StatusCode != 200 {
		t.Fatalf("healthz after ticks: %d", resp.StatusCode)
	}
	if mgr.Status().TaskCount != 0 {
		t.Fatalf("unexpected task table: %+v", mgr.Status().Tasks)
	}
}

// TestControlPlaneConcurrentWithScheduler hammers the control plane —
// readers on every endpoint plus add/pause/resume/delete writers — while
// the scheduler loop advances ticks. Run under -race (make race) this
// verifies the fleet ownership rules: scheduler owns stepping, control
// plane owns the task table, readers see immutable views.
func TestControlPlaneConcurrentWithScheduler(t *testing.T) {
	mgr, srv := controlPlane(t)
	for i := 0; i < 3; i++ {
		if err := mgr.Add(TaskSpec{ID: fmt.Sprintf("t%d", i), Target: "db-a", Seed: int64(i)}); err != nil {
			t.Fatal(err)
		}
	}

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		done <- mgr.Run(ctx)
	}()

	var wg sync.WaitGroup
	paths := []string{"/status", "/tasks", "/healthz", "/metrics", "/tasks/t0", "/tasks/t0/estimates"}
	for c := 0; c < 32; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				switch {
				case c == 0:
					// One writer churns the task table over the wire.
					id := fmt.Sprintf("churn%d", i)
					r, _ := do(t, "POST", srv.URL+"/v1/tasks", TaskSpec{ID: id, Target: "db-a"})
					if r.StatusCode != 201 {
						t.Errorf("POST %s: %d", id, r.StatusCode)
						return
					}
					do(t, "POST", srv.URL+"/v1/tasks/"+id+"/pause", nil)
					do(t, "POST", srv.URL+"/v1/tasks/"+id+"/resume", nil)
					do(t, "DELETE", srv.URL+"/v1/tasks/"+id, nil)
				default:
					resp, _ := do(t, "GET", srv.URL+"/v1"+paths[c%len(paths)], nil)
					if resp.StatusCode >= 500 {
						t.Errorf("GET %s: %d", paths[c%len(paths)], resp.StatusCode)
						return
					}
				}
			}
		}(c)
	}
	wg.Wait()
	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Run did not stop after cancellation")
	}
	if mgr.Ticks() < 1 {
		t.Fatal("scheduler never ticked")
	}
}
