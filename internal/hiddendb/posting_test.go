package hiddendb

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"github.com/dynagg/dynagg/internal/schema"
)

// ---------------------------------------------------------------------
// Kernel fuzz: every intersection kernel against a naive reference
// ---------------------------------------------------------------------

// refIntersect is the obviously correct intersector the kernels are
// fuzzed against: membership map, output sorted by construction (a is
// sorted and duplicate-free).
func refIntersect(a, b []uint16) []uint16 {
	in := make(map[uint16]bool, len(b))
	for _, x := range b {
		in[x] = true
	}
	out := []uint16{}
	for _, x := range a {
		if in[x] {
			out = append(out, x)
		}
	}
	return out
}

func refUnion(a, b []uint16) []uint16 {
	in := make(map[uint16]bool, len(a)+len(b))
	for _, x := range a {
		in[x] = true
	}
	for _, x := range b {
		in[x] = true
	}
	out := []uint16{}
	for x := 0; x < 1<<16; x++ {
		if in[uint16(x)] {
			out = append(out, uint16(x))
		}
	}
	return out
}

// randSet draws a sorted duplicate-free set of n low-16-bit IDs.
func randSet(rng *rand.Rand, n int) []uint16 {
	seen := make(map[uint16]bool, n)
	for len(seen) < n {
		seen[uint16(rng.Intn(1<<16))] = true
	}
	out := make([]uint16, 0, n)
	for x := 0; x < 1<<16; x++ {
		if seen[uint16(x)] {
			out = append(out, uint16(x))
		}
	}
	return out
}

// containerFor builds a container (with dummy payload) holding exactly
// the given low bits under key 0, letting cardinality pick the form.
func containerFor(lows []uint16) *pcontainer {
	ts := make([]*schema.Tuple, len(lows))
	for i, low := range lows {
		ts[i] = &schema.Tuple{ID: uint64(low)}
	}
	c := makeContainer(0, ts)
	return &c
}

func eqU16(a, b []uint16) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestIntersectKernelsFuzz drives every kernel and form pairing —
// array∩array (galloping and linear), array-probe-into-bitmap,
// bitmap∩bitmap word-AND — through seeded random sets whose sizes are
// chosen to cross the array/bitmap threshold, plus the degenerate
// shapes: empty sets, singletons, identical sets (the duplicate-value
// case: two predicates sharing one posting list), and near-full
// containers.
func TestIntersectKernelsFuzz(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	// Size menu straddles arrayMaxEntries so every (form, form) pair and
	// both intersectArrays paths (linear merge and ≥16× gallop) occur.
	sizes := []int{0, 1, 3, 40, 700, arrayMaxEntries - 1, arrayMaxEntries,
		arrayMaxEntries + 1, 3 * arrayMaxEntries, 40000}
	dst := make([]uint16, 0, 1<<16)
	for round := 0; round < 60; round++ {
		na := sizes[rng.Intn(len(sizes))]
		nb := sizes[rng.Intn(len(sizes))]
		a := randSet(rng, na)
		var b []uint16
		if round%7 == 0 {
			b = a // duplicate-value shape: same list on both sides
		} else {
			b = randSet(rng, nb)
		}
		want := refIntersect(a, b)

		ca, cb := containerFor(a), containerFor(b)
		if got := intersectContainers(ca, cb, dst[:0]); !eqU16(got, want) {
			t.Fatalf("round %d: intersectContainers(|a|=%d,|b|=%d) = %d IDs, want %d",
				round, na, len(b), len(got), len(want))
		}
		// The symmetric call must agree (kernel selection differs).
		if got := intersectContainers(cb, ca, dst[:0]); !eqU16(got, want) {
			t.Fatalf("round %d: intersectContainers swapped diverged", round)
		}
		// intersectIDs: survivor slice ∩ container, both forms of b.
		if got := intersectIDs(a, cb, dst[:0]); !eqU16(got, want) {
			t.Fatalf("round %d: intersectIDs diverged", round)
		}
		// Raw kernels on the forms we can force directly.
		if ca.bits == nil && cb.bits == nil {
			if got := intersectArrays(a, b, dst[:0]); !eqU16(got, want) {
				t.Fatalf("round %d: intersectArrays diverged", round)
			}
		}
		if cb.bits != nil {
			if got := probeBitmap(a, cb.bits, dst[:0]); !eqU16(got, want) {
				t.Fatalf("round %d: probeBitmap diverged", round)
			}
		}
		if ca.bits != nil && cb.bits != nil {
			if got := andBitmaps(ca.bits, cb.bits, dst[:0]); !eqU16(got, want) {
				t.Fatalf("round %d: andBitmaps diverged", round)
			}
		}
		// mergeUnion contract: disjoint sorted inputs. Make b disjoint.
		bOnly := dst[:0]
		for _, x := range b {
			if _, ok := findU16(a, x); !ok {
				bOnly = append(bOnly, x)
			}
		}
		if got := mergeUnion(a, bOnly, make([]uint16, 0, len(a)+len(bOnly))); !eqU16(got, refUnion(a, bOnly)) {
			t.Fatalf("round %d: mergeUnion diverged", round)
		}
	}
}

// TestGallopTo pins the galloping search primitive against linear scan.
func TestGallopTo(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for round := 0; round < 40; round++ {
		a := randSet(rng, rng.Intn(2000))
		from := 0
		if len(a) > 0 {
			from = rng.Intn(len(a) + 1)
		}
		x := uint16(rng.Intn(1 << 16))
		got := gallopTo(a, from, x)
		want := from
		for want < len(a) && a[want] < x {
			want++
		}
		if got != want {
			t.Fatalf("gallopTo(|a|=%d, from=%d, x=%d) = %d, want %d", len(a), from, x, got, want)
		}
	}
}

// TestPostingListIncrementalFuzz drives a posting list through a random
// insert/remove churn that repeatedly crosses the array/bitmap threshold
// and checks the full structural invariant plus set equality against a
// reference map after every step burst.
func TestPostingListIncrementalFuzz(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	ref := map[uint64]*schema.Tuple{}
	var pl *postingList
	add := func(id uint64) {
		if _, ok := ref[id]; ok {
			return
		}
		tu := &schema.Tuple{ID: id}
		ref[id] = tu
		if pl == nil {
			pl = &postingList{}
		}
		pl.insert(tu)
	}
	del := func(id uint64) {
		if _, ok := ref[id]; !ok {
			return
		}
		delete(ref, id)
		pl.remove(id)
	}
	check := func(step string) {
		t.Helper()
		if pl == nil {
			if len(ref) != 0 {
				t.Fatalf("%s: nil list, %d tuples in reference", step, len(ref))
			}
			return
		}
		if err := pl.validate(); err != nil {
			t.Fatalf("%s: %v", step, err)
		}
		if pl.n != len(ref) {
			t.Fatalf("%s: n=%d, want %d", step, pl.n, len(ref))
		}
		prev := uint64(0)
		first := true
		pl.forEachTuple(func(tu *schema.Tuple) {
			if !first && tu.ID <= prev {
				t.Fatalf("%s: IDs out of order (%d after %d)", step, tu.ID, prev)
			}
			first, prev = false, tu.ID
			if ref[tu.ID] != tu {
				t.Fatalf("%s: unexpected tuple %d", step, tu.ID)
			}
		})
	}
	// Grow past the threshold in one container, churn, then drain. IDs
	// span two container keys so cross-container paths run too.
	for i := 0; i < arrayMaxEntries+500; i++ {
		add(uint64(rng.Intn(100_000)))
	}
	check("grow")
	for burst := 0; burst < 20; burst++ {
		for i := 0; i < 400; i++ {
			id := uint64(rng.Intn(100_000))
			if rng.Intn(2) == 0 {
				add(id)
			} else {
				del(id)
			}
		}
		check(fmt.Sprintf("churn %d", burst))
	}
	for id := range ref {
		del(id)
	}
	check("drain")
	if pl.size() != 0 {
		t.Fatalf("drained list still holds %d", pl.size())
	}
}

// ---------------------------------------------------------------------
// Scratch-pool race: 32 sessions sharing the pool (run under -race)
// ---------------------------------------------------------------------

func raceQueries(m, domain int) []Query {
	var qs []Query
	for v := 0; v < domain; v++ {
		qs = append(qs,
			NewQuery(Pred{Attr: m - 1, Val: uint16(v)}),
			NewQuery(Pred{Attr: 0, Val: uint16(v)}, Pred{Attr: m - 1, Val: uint16((v + 1) % domain)}),
			NewQuery(Pred{Attr: 1, Val: uint16(v)}, Pred{Attr: 2, Val: uint16(v)}),
		)
	}
	return qs
}

// TestScratchPoolRaceIface has 32 concurrent sessions hammer ONE Iface
// with mixed Search/SearchBatch/CountMatching traffic while a mutator
// churns the store. The per-query scratches all come from the shared
// sync.Pool; the race detector proves no scratch is ever visible to two
// goroutines at once (the pool-ownership contract in scratch.go).
func TestScratchPoolRaceIface(t *testing.T) {
	const m, domain = 4, 8
	st := NewStore(schema.Uniform(m, domain))
	rng := rand.New(rand.NewSource(5))
	batch := make([]*schema.Tuple, 30000)
	for i := range batch {
		vals := make([]uint16, m)
		for a := range vals {
			vals[a] = uint16(rng.Intn(domain))
		}
		batch[i] = &schema.Tuple{ID: uint64(i + 1), Vals: vals}
	}
	if err := st.ApplyBatch(batch, nil); err != nil {
		t.Fatal(err)
	}
	f := NewIface(st, 50, nil)
	qs := raceQueries(m, domain)

	stop := make(chan struct{})
	var mutWG sync.WaitGroup
	mutWG.Add(1)
	go func() {
		defer mutWG.Done()
		id := uint64(len(batch) + 1)
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			vals := make([]uint16, m)
			for a := range vals {
				vals[a] = uint16((i + a) % domain)
			}
			if err := st.Insert(&schema.Tuple{ID: id, Vals: vals}); err != nil {
				t.Error(err)
				return
			}
			if _, err := st.Delete(id); err != nil {
				t.Error(err)
				return
			}
			id++
		}
	}()

	var wg sync.WaitGroup
	for g := 0; g < 32; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			s := f.NewSession(0)
			for i := 0; i < 60; i++ {
				switch (g + i) % 3 {
				case 0:
					if _, err := s.Search(qs[(g*7+i)%len(qs)]); err != nil {
						t.Error(err)
						return
					}
				case 1:
					if _, err := s.SearchBatch(qs[(g+i)%len(qs) : (g+i)%len(qs)+1]); err != nil {
						t.Error(err)
						return
					}
				default:
					st.CountMatching(qs[(g*3+i)%len(qs)])
				}
			}
		}(g)
	}
	wg.Wait()
	close(stop)
	mutWG.Wait()
}

// TestScratchPoolRaceSharded is the same contract on the scatter-gather
// path: 32 sessions against a 4-shard store with parallel gather workers
// (each worker borrows its own scratch from the same pool) while per-
// round churn publishes fresh epochs.
func TestScratchPoolRaceSharded(t *testing.T) {
	const m, domain = 4, 8
	ss := NewShardedStore(schema.Uniform(m, domain), 4)
	rng := rand.New(rand.NewSource(6))
	batch := make([]*schema.Tuple, 30000)
	for i := range batch {
		vals := make([]uint16, m)
		for a := range vals {
			vals[a] = uint16(rng.Intn(domain))
		}
		batch[i] = &schema.Tuple{ID: uint64(i + 1), Vals: vals}
	}
	if err := ss.ApplyBatch(batch, nil); err != nil {
		t.Fatal(err)
	}
	ss.AdvanceEpoch()
	f := NewShardedIface(ss, 50, nil)
	f.SetGatherWorkers(4)
	qs := raceQueries(m, domain)

	stop := make(chan struct{})
	var mutWG sync.WaitGroup
	mutWG.Add(1)
	go func() {
		defer mutWG.Done()
		id := uint64(len(batch) + 1)
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			vals := make([]uint16, m)
			for a := range vals {
				vals[a] = uint16((i + a) % domain)
			}
			if err := ss.Insert(&schema.Tuple{ID: id, Vals: vals}); err != nil {
				t.Error(err)
				return
			}
			if _, err := ss.Delete(id); err != nil {
				t.Error(err)
				return
			}
			id++
			ss.AdvanceEpoch()
		}
	}()

	var wg sync.WaitGroup
	for g := 0; g < 32; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			s := f.NewSession(0)
			for i := 0; i < 40; i++ {
				switch (g + i) % 3 {
				case 0:
					if _, err := s.Search(qs[(g*7+i)%len(qs)]); err != nil {
						t.Error(err)
						return
					}
				case 1:
					if _, err := s.SearchBatch(qs[(g+i)%len(qs) : (g+i)%len(qs)+1]); err != nil {
						t.Error(err)
						return
					}
				default:
					ss.CountMatching(qs[(g*3+i)%len(qs)])
				}
			}
		}(g)
	}
	wg.Wait()
	close(stop)
	mutWG.Wait()
}
