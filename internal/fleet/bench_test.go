package fleet

import (
	"fmt"
	"net/http/httptest"
	"testing"

	"github.com/dynagg/dynagg/internal/hiddendb"
	"github.com/dynagg/dynagg/internal/workload"
	"github.com/dynagg/dynagg/webiface"
)

// BenchmarkFleetScheduler measures one scheduler tick over a fleet of
// remote tasks all sharing ONE pooled webiface client against one
// dynagg-serve-style handler: the per-task cost of the control-plane
// layer (allocation, stepping, checkpoint-less view publication) on top
// of the actual query traffic. tasks=1 vs tasks=8 shows how the fixed
// tick budget amortises across a growing fleet (each task's share
// shrinks, total wire traffic per tick stays ~constant).
func BenchmarkFleetScheduler(b *testing.B) {
	data := workload.AutosLikeN(1, 8000, 8)
	env, err := workload.NewEnv(data, 7200, 2)
	if err != nil {
		b.Fatal(err)
	}
	iface := hiddendb.NewIface(env.Store, 100, nil)
	srv := httptest.NewServer(webiface.NewHandler(iface))
	defer srv.Close()

	for _, tasks := range []int{1, 8} {
		b.Run(fmt.Sprintf("tasks=%d", tasks), func(b *testing.B) {
			b.ReportAllocs()
			mgr, err := New(Config{TickBudget: 256})
			if err != nil {
				b.Fatal(err)
			}
			for i := 0; i < tasks; i++ {
				err := mgr.Add(TaskSpec{
					ID:          fmt.Sprintf("t%d", i),
					Remote:      srv.URL,
					Algorithm:   "REISSUE",
					Seed:        int64(100 + i),
					Parallelism: 4,
					MaxDrills:   500,
				})
				if err != nil {
					b.Fatal(err)
				}
			}
			if got := mgr.pool.Size(); got != 1 {
				b.Fatalf("pool holds %d clients, want 1 shared", got)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				mgr.TickOnce()
			}
		})
	}
}
