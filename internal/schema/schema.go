// Package schema models the categorical relational schema of a hidden web
// database (paper §2.1): m attributes A1..Am, each with a finite domain Ui,
// and distinct tuples t with t[Ai] ∈ Ui.
//
// Values are stored as small integer codes (indices into the attribute's
// domain). Numerical attributes are assumed to have been discretised into
// categorical buckets, exactly as the paper prescribes; tuples may
// additionally carry auxiliary numeric payloads (e.g. an exact price) that
// are returned by the search interface but are not searchable — this is how
// the live-experiment simulators model "price" without violating the
// categorical query model.
package schema

import (
	"fmt"
	"strings"
)

// NullCode marks a NULL value in a nullable attribute. The paper's core
// model assumes no NULLs; §5 "Other Issues" discusses the two real-world
// policies (IS NULL predicates, broad match), both of which the hiddendb
// package supports when a schema declares nullable attributes.
const NullCode uint16 = 0xFFFF

// Attr is one categorical attribute.
type Attr struct {
	// Name identifies the attribute in query strings and diagnostics.
	Name string
	// Domain holds the value labels; a value code is an index into it.
	Domain []string
	// Nullable marks attributes that may hold NullCode.
	Nullable bool
}

// Size returns the domain size |Ui| (excluding NULL).
func (a *Attr) Size() int { return len(a.Domain) }

// Schema is an ordered list of attributes. It is immutable after
// construction (New copies its input), so one Schema may be shared
// freely across goroutines — it is the read-only backbone every
// concurrently-running trial drills against.
type Schema struct {
	attrs []Attr
}

// New builds a Schema from the given attributes. It panics if any
// attribute has an empty domain or a duplicate name, since a schema is
// always constructed from trusted generator code.
func New(attrs []Attr) *Schema {
	seen := make(map[string]bool, len(attrs))
	for i, a := range attrs {
		if len(a.Domain) == 0 {
			panic(fmt.Sprintf("schema: attribute %d (%q) has empty domain", i, a.Name))
		}
		if len(a.Domain) > int(NullCode) {
			panic(fmt.Sprintf("schema: attribute %q domain too large (%d)", a.Name, len(a.Domain)))
		}
		if seen[a.Name] {
			panic(fmt.Sprintf("schema: duplicate attribute name %q", a.Name))
		}
		seen[a.Name] = true
	}
	cp := make([]Attr, len(attrs))
	copy(cp, attrs)
	return &Schema{attrs: cp}
}

// Uniform builds a schema of m attributes named A1..Am, each with the same
// domain size. It is the shape used by the paper's boolean examples
// (§3.2.1) and the scalability sweep (Fig 12, m = 50).
func Uniform(m, domainSize int) *Schema {
	attrs := make([]Attr, m)
	for i := range attrs {
		dom := make([]string, domainSize)
		for v := range dom {
			dom[v] = fmt.Sprintf("v%d", v)
		}
		attrs[i] = Attr{Name: fmt.Sprintf("A%d", i+1), Domain: dom}
	}
	return New(attrs)
}

// M returns the number of attributes.
func (s *Schema) M() int { return len(s.attrs) }

// Attr returns the i-th attribute (0-based).
func (s *Schema) Attr(i int) *Attr { return &s.attrs[i] }

// DomainSize returns |Ui| for the i-th attribute.
func (s *Schema) DomainSize(i int) int { return len(s.attrs[i].Domain) }

// MaxDomainSize returns max_i |Ui| (used by the Theorem 3.2 bound).
func (s *Schema) MaxDomainSize() int {
	best := 0
	for i := range s.attrs {
		if n := len(s.attrs[i].Domain); n > best {
			best = n
		}
	}
	return best
}

// AttrIndex returns the index of the attribute with the given name, or -1.
func (s *Schema) AttrIndex(name string) int {
	for i := range s.attrs {
		if s.attrs[i].Name == name {
			return i
		}
	}
	return -1
}

// Project returns a new schema containing only the first m attributes.
// The Fig 11 sweep (effect of m) uses projections of the Autos-like schema.
func (s *Schema) Project(m int) *Schema {
	if m < 1 || m > len(s.attrs) {
		panic(fmt.Sprintf("schema: invalid projection width %d (m=%d)", m, len(s.attrs)))
	}
	return New(s.attrs[:m])
}

// Validate reports whether vals is a legal tuple assignment for s.
func (s *Schema) Validate(vals []uint16) error {
	if len(vals) != len(s.attrs) {
		return fmt.Errorf("schema: tuple has %d values, want %d", len(vals), len(s.attrs))
	}
	for i, v := range vals {
		if v == NullCode {
			if !s.attrs[i].Nullable {
				return fmt.Errorf("schema: NULL in non-nullable attribute %q", s.attrs[i].Name)
			}
			continue
		}
		if int(v) >= len(s.attrs[i].Domain) {
			return fmt.Errorf("schema: value %d out of domain for attribute %q (|U|=%d)",
				v, s.attrs[i].Name, len(s.attrs[i].Domain))
		}
	}
	return nil
}

// Tuple is one immutable database row. Estimator code receives *Tuple
// pointers from search results and must never mutate them; the store
// replaces tuples wholesale on update so retained pointers stay valid
// snapshots of the round in which they were retrieved.
type Tuple struct {
	// ID is unique and stable for the lifetime of the logical tuple.
	ID uint64
	// Vals holds one value code per schema attribute.
	Vals []uint16
	// Aux carries non-searchable numeric payloads (e.g. exact price).
	Aux []float64
}

// Key packs the tuple's values into a comparable string, used for
// distinctness checks by generators (the paper assumes all tuples are
// distinct).
func (t *Tuple) Key() string {
	var b strings.Builder
	b.Grow(len(t.Vals) * 3)
	for _, v := range t.Vals {
		b.WriteByte(byte(v))
		b.WriteByte(byte(v >> 8))
		b.WriteByte(',')
	}
	return b.String()
}

// Clone returns a deep copy with the given new ID, used when a logical
// update replaces a tuple (e.g. a price change).
func (t *Tuple) Clone(newID uint64) *Tuple {
	vals := make([]uint16, len(t.Vals))
	copy(vals, t.Vals)
	var aux []float64
	if t.Aux != nil {
		aux = make([]float64, len(t.Aux))
		copy(aux, t.Aux)
	}
	return &Tuple{ID: newID, Vals: vals, Aux: aux}
}

// String renders the tuple with attribute labels for diagnostics.
func (t *Tuple) String() string {
	return fmt.Sprintf("tuple{id=%d vals=%v}", t.ID, t.Vals)
}

// CompareVals orders two value slices lexicographically; it is the
// canonical order used by the hidden-database store so that conjunctive
// prefix queries map to contiguous ranges.
func CompareVals(a, b []uint16) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		switch {
		case a[i] < b[i]:
			return -1
		case a[i] > b[i]:
			return 1
		}
	}
	switch {
	case len(a) < len(b):
		return -1
	case len(a) > len(b):
		return 1
	}
	return 0
}
