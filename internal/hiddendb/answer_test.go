package hiddendb

import (
	"bytes"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"github.com/dynagg/dynagg/internal/schema"
)

// TestAnswerWireMemoizes: the first Wire call pays the encode, every
// later call returns the SAME backing bytes without re-encoding.
func TestAnswerWireMemoizes(t *testing.T) {
	a := &Answer{res: Result{Overflow: true}}
	var encodes atomic.Int32
	enc := func(res Result) []byte {
		encodes.Add(1)
		return []byte(fmt.Sprintf(`{"overflow":%v}`, res.Overflow))
	}
	first := a.Wire(enc)
	second := a.Wire(enc)
	if n := encodes.Load(); n != 1 {
		t.Fatalf("encode ran %d times, want 1", n)
	}
	if !bytes.Equal(first, second) {
		t.Fatalf("wire bytes diverged: %q vs %q", first, second)
	}
	if &first[0] != &second[0] {
		t.Fatal("second Wire call returned a different backing slice")
	}
}

// TestAnswerWireConcurrentOneCanonicalSlice races many first-fill
// encoders: whatever ordering wins the CAS, every caller must end up
// serving literally the same backing bytes.
func TestAnswerWireConcurrentOneCanonicalSlice(t *testing.T) {
	a := &Answer{res: Result{}}
	enc := func(Result) []byte { return []byte(`{"k":0}`) }
	const gs = 32
	out := make([][]byte, gs)
	start := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < gs; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			out[i] = a.Wire(enc)
		}(i)
	}
	close(start)
	wg.Wait()
	for i := 1; i < gs; i++ {
		if &out[i][0] != &out[0][0] {
			t.Fatalf("goroutine %d adopted a non-canonical slice", i)
		}
	}
}

// TestCacheShardDoSingleflight blocks one compute while concurrent
// duplicates arrive: exactly one engine execution, every waiter counted
// as collapsed, and all callers handed the same *Answer.
func TestCacheShardDoSingleflight(t *testing.T) {
	var sh cacheShard
	var stats cacheStats

	const waiters = 8
	computeEntered := make(chan struct{})
	release := make(chan struct{})
	var computes atomic.Int32

	results := make([]*Answer, waiters+1)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		results[0] = sh.do("key", &stats, func() Result {
			close(computeEntered)
			<-release
			computes.Add(1)
			return Result{Overflow: true}
		})
	}()
	<-computeEntered

	// The winner is now mid-compute with no shard locks held; every
	// duplicate must park on its flight rather than recompute.
	for i := 1; i <= waiters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i] = sh.do("key", &stats, func() Result {
				t.Error("duplicate compute ran")
				return Result{}
			})
		}(i)
	}
	// Wait until all duplicates are registered as collapsed before
	// releasing the winner, so the count is deterministic.
	for stats.collapsed.Load() != waiters {
		runtime.Gosched()
	}
	close(release)
	wg.Wait()

	if n := computes.Load(); n != 1 {
		t.Fatalf("compute ran %d times, want 1", n)
	}
	for i := 1; i < len(results); i++ {
		if results[i] != results[0] {
			t.Fatalf("caller %d got a different Answer pointer", i)
		}
	}
	got := stats.read()
	want := CacheStats{Hits: 0, Misses: 1, Collapsed: waiters}
	if got != want {
		t.Fatalf("stats = %+v, want %+v", got, want)
	}

	// The published entry now serves hits without touching inflight.
	if a := sh.do("key", &stats, func() Result { t.Error("hit recomputed"); return Result{} }); a != results[0] {
		t.Fatal("post-publication hit returned a different Answer")
	}
	if got := stats.read(); got.Hits != 1 {
		t.Fatalf("hit not counted: %+v", got)
	}
}

// TestCacheShardDoPanicDoesNotWedge: a panic inside compute must
// propagate to the winner, wake every parked waiter (who then retry and
// compute for themselves), and leave the (version, key) fully usable —
// not permanently wedged behind a done channel nobody will close.
func TestCacheShardDoPanicDoesNotWedge(t *testing.T) {
	var sh cacheShard
	var stats cacheStats

	computeEntered := make(chan struct{})
	release := make(chan struct{})
	winnerPanic := make(chan any, 1)
	go func() {
		defer func() { winnerPanic <- recover() }()
		sh.do("key", &stats, func() Result {
			close(computeEntered)
			<-release
			panic("engine blew up")
		})
	}()
	<-computeEntered

	const waiters = 4
	results := make([]*Answer, waiters)
	var wg sync.WaitGroup
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i] = sh.do("key", &stats, func() Result {
				return Result{Overflow: true}
			})
		}(i)
	}
	// Make sure every waiter is parked on the doomed flight before the
	// panic fires, so the test exercises the wake-up path.
	for stats.collapsed.Load() != waiters {
		runtime.Gosched()
	}
	close(release)

	if r := <-winnerPanic; r == nil {
		t.Fatal("winner's panic was swallowed")
	}
	wg.Wait()
	for i, a := range results {
		if a == nil || !a.Result().Overflow {
			t.Fatalf("waiter %d got %v, want a retried answer", i, a)
		}
	}
	// A retrying waiter published the entry, so the key now serves hits.
	a := sh.do("key", &stats, func() Result {
		t.Error("recompute after retry publication")
		return Result{}
	})
	if !a.Result().Overflow {
		t.Fatal("post-panic hit returned the wrong answer")
	}
}

// TestIfaceAnswerCacheCounters walks the miss → hit → key-probe →
// invalidation lifecycle through the public Iface surface.
func TestIfaceAnswerCacheCounters(t *testing.T) {
	st := newTestStore(t, 51, 400, []int{8, 6, 10})
	f := NewIface(st, 10, nil)
	q := NewQuery(Pred{Attr: 0, Val: 1})

	// First query at a version is answered ephemerally (no published
	// snapshot or cache yet), the second publishes and still runs the
	// engine; only from the third on does the cache serve.
	for i := 0; i < 2; i++ {
		if _, err := f.SearchAnswer(q); err != nil {
			t.Fatal(err)
		}
	}
	if got := f.CacheStats(); got.Misses != 2 || got.Hits != 0 {
		t.Fatalf("after two queries (ephemeral + publish): %+v", got)
	}
	if _, err := f.SearchAnswer(q); err != nil {
		t.Fatal(err)
	}
	if got := f.CacheStats(); got.Misses != 2 || got.Hits != 1 {
		t.Fatalf("after repeat query: %+v", got)
	}

	// LookupAnswer by scratch key bytes: hit counts as a served query,
	// miss counts nothing (the caller proceeds to SearchAnswer).
	key := AppendPredsKey(nil, q.Preds())
	qBefore := f.TotalQueries()
	if _, ok := f.LookupAnswer(key); !ok {
		t.Fatal("warm key probe missed")
	}
	if got := f.CacheStats(); got.Hits != 2 {
		t.Fatalf("key probe hit not counted: %+v", got)
	}
	if f.TotalQueries() != qBefore+1 {
		t.Fatal("key probe hit must count as a served query")
	}

	other := AppendPredsKey(nil, []Pred{{Attr: 1, Val: 0}})
	qBefore = f.TotalQueries()
	if _, ok := f.LookupAnswer(other); ok {
		t.Fatal("cold key probe hit")
	}
	if f.TotalQueries() != qBefore {
		t.Fatal("cold key probe must not count as a served query")
	}

	// Any mutation bumps the version: the pre-encoded entry is dead and
	// the next probe must miss.
	if err := st.Insert(&schema.Tuple{ID: 999999, Vals: []uint16{1, 1, 1}}); err != nil {
		t.Fatal(err)
	}
	if _, ok := f.LookupAnswer(key); ok {
		t.Fatal("key probe hit across a version change")
	}
	if _, err := f.SearchAnswer(q); err != nil {
		t.Fatal(err)
	}
	if got := f.CacheStats(); got.Misses != 3 {
		t.Fatalf("post-mutation query should miss: %+v", got)
	}
}

// TestAppendPredsKeyMatchesQueryKey: the scratch-built key the handler
// probes with must be the key SearchAnswer files answers under.
func TestAppendPredsKeyMatchesQueryKey(t *testing.T) {
	preds := []Pred{{Attr: 0, Val: 3}, {Attr: 2, Val: 1}}
	q := NewQuery(preds...)
	a := AppendPredsKey(nil, preds)
	b := q.AppendKey(nil)
	if !bytes.Equal(a, b) {
		t.Fatalf("key mismatch: %q vs %q", a, b)
	}
}
