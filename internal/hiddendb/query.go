// Package hiddendb simulates a hidden web database (paper §2.1): a
// collection of distinct categorical tuples reachable only through a
// restrictive top-k conjunctive search interface, with per-round query
// budgets and support for both the round-update and constant-update models.
//
// The package separates three capabilities:
//
//   - Store: full access to the data. Only the simulation harness touches
//     it — to apply updates and compute exact ground truth.
//   - Iface: the restricted search view (top-k, overflow flag, no counts).
//     This is all an estimator may use.
//   - Session: a per-round budget wrapper around an Iface, enforcing the
//     database-imposed limit G (paper §2.1: per-IP/per-key daily limits).
//
// # Concurrency contract
//
// Published Snapshots (and their posting lists) are immutable; any number
// of goroutines may answer queries against one concurrently. The store
// clones index structures copy-on-write before mutating, so readers never
// observe a partial update. Per-query working memory comes from a
// process-wide sync.Pool of queryScratch values (scratch.go): a scratch
// is owned by exactly one goroutine from getScratch to putScratch, never
// escapes the query that borrowed it (results are freshly allocated), and
// holds no snapshot references while pooled. The scatter-gather path
// hands each gather worker its own scratch rather than sharing one.
// docs/perf.md describes the index layout and kernel selection rules.
package hiddendb

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"

	"github.com/dynagg/dynagg/internal/schema"
)

// Pred is one conjunctive predicate Ai = v. Val may be schema.NullCode to
// express an IS NULL predicate over a nullable attribute.
type Pred struct {
	Attr int
	Val  uint16
}

// Query is a conjunctive search query: SELECT * FROM D WHERE Ai1=u1 AND ...
// The zero value is the unrestricted query SELECT * FROM D (the query tree
// root). Predicates are kept sorted by attribute index; a Query is
// immutable after construction.
type Query struct {
	preds []Pred
}

// NewQuery builds a query from predicates. It panics on duplicate
// attributes, since queries are only built by trusted tree-walking code
// and a duplicate would silently corrupt selectivity math.
func NewQuery(preds ...Pred) Query {
	cp := make([]Pred, len(preds))
	copy(cp, preds)
	sort.Slice(cp, func(i, j int) bool { return cp[i].Attr < cp[j].Attr })
	for i := 1; i < len(cp); i++ {
		if cp[i].Attr == cp[i-1].Attr {
			panic(fmt.Sprintf("hiddendb: duplicate predicate on attribute %d", cp[i].Attr))
		}
	}
	return Query{preds: cp}
}

// And returns a new query with one additional predicate.
func (q Query) And(attr int, val uint16) Query {
	preds := make([]Pred, 0, len(q.preds)+1)
	preds = append(preds, q.preds...)
	preds = append(preds, Pred{Attr: attr, Val: val})
	return NewQuery(preds...)
}

// Preds returns the query's predicates in attribute order. The caller must
// not modify the returned slice.
func (q Query) Preds() []Pred { return q.preds }

// Len returns the number of predicates.
func (q Query) Len() int { return len(q.preds) }

// keyBufPool recycles Key's encoding buffer across calls; only the
// returned string itself is allocated.
var keyBufPool = sync.Pool{New: func() any {
	b := make([]byte, 0, 64)
	return &b
}}

// Key returns a canonical string encoding, usable as a cache/map key.
// It is called once per search on the hot path, so it appends digits
// directly (strconv) into a pooled buffer rather than going through
// fmt's reflection: at most one allocation per call, the string.
func (q Query) Key() string {
	if len(q.preds) == 0 {
		return ""
	}
	bp := keyBufPool.Get().(*[]byte)
	b := AppendPredsKey((*bp)[:0], q.preds)
	s := string(b)
	*bp = b
	keyBufPool.Put(bp)
	return s
}

// AppendKey appends the query's canonical key encoding to dst — the same
// bytes Key returns, without materializing the string. The serving fast
// path builds keys in pooled scratch and probes the answer cache with the
// raw bytes.
func (q Query) AppendKey(dst []byte) []byte {
	return AppendPredsKey(dst, q.preds)
}

// AppendPredsKey appends the canonical cache-key encoding of a sorted,
// duplicate-free predicate list: the bytes a Query over exactly those
// predicates returns from Key. Callers own the sortedness/uniqueness
// precondition (the HTTP handler sorts and validates wire predicates
// before probing the cache).
func AppendPredsKey(dst []byte, preds []Pred) []byte {
	for _, p := range preds {
		dst = strconv.AppendInt(dst, int64(p.Attr), 10)
		dst = append(dst, '=')
		dst = strconv.AppendUint(dst, uint64(p.Val), 10)
		dst = append(dst, ';')
	}
	return dst
}

// String renders the query with attribute names from the schema.
func (q Query) String() string {
	if len(q.preds) == 0 {
		return "SELECT * FROM D"
	}
	parts := make([]string, len(q.preds))
	for i, p := range q.preds {
		parts[i] = fmt.Sprintf("A%d=%d", p.Attr+1, p.Val)
	}
	return "SELECT * FROM D WHERE " + strings.Join(parts, " AND ")
}

// Matches reports whether tuple t satisfies the query under the given NULL
// policy. With broad match enabled, a NULL value matches any predicate on
// its attribute (paper §5 "Other Issues").
func (q Query) Matches(t *schema.Tuple, broadMatchNull bool) bool {
	return matchesPreds(t, q.preds, broadMatchNull)
}

// matchesPreds is Matches over a predicate subset — the answering paths
// use it to filter only the predicates not already covered by a posting
// intersection or prefix range.
func matchesPreds(t *schema.Tuple, preds []Pred, broadMatchNull bool) bool {
	for _, p := range preds {
		v := t.Vals[p.Attr]
		if v == p.Val {
			continue
		}
		if broadMatchNull && v == schema.NullCode {
			continue
		}
		return false
	}
	return true
}

// prefixLen returns the number of leading predicates that form a prefix of
// the canonical attribute order 0,1,2,... — i.e., the longest L such that
// the query constrains exactly attributes 0..L-1 among its first L
// predicates. Prefix predicates with NULL values do not qualify (NULL
// sorts outside the domain range).
func (q Query) prefixLen() int {
	for i, p := range q.preds {
		if p.Attr != i || p.Val == schema.NullCode {
			return i
		}
	}
	return len(q.preds)
}

// Result is what the restrictive interface returns: at most k tuples
// (ranked by the proprietary scoring function) and an overflow flag.
// Crucially there is no total count — the estimators must work without
// COUNT metadata (paper §2.1 worst-case assumption).
type Result struct {
	Tuples   []*schema.Tuple
	Overflow bool
}

// Underflow reports whether the query returned no tuples.
func (r Result) Underflow() bool { return len(r.Tuples) == 0 && !r.Overflow }

// Valid reports whether the query returned between 1 and k tuples
// (paper §2.1's definition of a valid query).
func (r Result) Valid() bool { return len(r.Tuples) > 0 && !r.Overflow }

// ErrBudgetExhausted is returned by Session.Search when the per-round
// query limit G has been reached.
var ErrBudgetExhausted = errors.New("hiddendb: per-round query budget exhausted")

// Searcher is the only view of the database available to estimators.
type Searcher interface {
	// Search issues one conjunctive query and returns its top-k result.
	Search(q Query) (Result, error)
	// K returns the interface's result cap.
	K() int
	// Schema describes the queryable attributes.
	Schema() *schema.Schema
}

// BatchItem is one query's outcome within a batched search: either a
// Result or a per-query error (budget exhaustion for the queries a
// round's remaining budget could not cover).
type BatchItem struct {
	Result Result
	Err    error
}

// BatchSearcher is a Searcher that can answer many queries in one call —
// one snapshot/epoch pin, one round trip for remote implementations, one
// budget charge per query. The returned slice always has len(qs) items in
// query order. The error return is reserved for whole-batch transport
// failures (remote sessions); per-query failures travel in the items.
// Session and webiface.Session implement it.
type BatchSearcher interface {
	Searcher
	// SearchBatch issues the queries as one batch.
	SearchBatch(qs []Query) ([]BatchItem, error)
}

// ConcurrentSearcher is a Searcher that can declare itself safe for
// concurrent Search calls from multiple goroutines. The estimator
// execution engine fans a round's planned drill-down walks out over a
// session only when it reports true; everything else falls back to
// sequential issuance. Session implements it (true unless a pre-search
// hook couples query order to database mutation), as does
// webiface.Session.
type ConcurrentSearcher interface {
	Searcher
	// ConcurrentSearchable reports whether this instance currently
	// accepts Search calls from multiple goroutines.
	ConcurrentSearchable() bool
}
