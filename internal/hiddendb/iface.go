package hiddendb

import (
	"container/heap"
	"sort"

	"github.com/dynagg/dynagg/internal/schema"
)

// Scorer is the proprietary ranking function of the web interface: higher
// scores rank earlier, so an overflowing query returns the k highest-scored
// matching tuples. The paper treats the scoring function as an opaque
// property of the site; estimator correctness must not depend on it, which
// the test suite verifies by running the estimators under several scorers.
type Scorer func(*schema.Tuple) float64

// DefaultScorer ranks tuples by a deterministic hash of their ID — an
// arbitrary-but-stable stand-in for a site's relevance ranking.
func DefaultScorer(t *schema.Tuple) float64 {
	return float64(splitmix64(t.ID)) / float64(^uint64(0))
}

// AuxScorer ranks tuples by their i-th auxiliary payload (e.g. price),
// modelling sites that sort by price or recency.
func AuxScorer(i int) Scorer {
	return func(t *schema.Tuple) float64 {
		if i < len(t.Aux) {
			return t.Aux[i]
		}
		return 0
	}
}

// splitmix64 is the SplitMix64 finalizer, a strong deterministic mixer.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// Iface is the restrictive search interface over a Store: conjunctive
// queries in, at most k ranked tuples plus an overflow flag out. It also
// maintains a per-store-version answer cache; the cache is purely a
// simulator-side speedup (the same query re-issued within a round returns
// the same answer anyway, since the round-update model freezes the data)
// and never affects query-cost accounting, which is done by Session.
//
// Ownership: like the Store it wraps, an Iface (and every Session it
// hands out) is single-goroutine — the answer cache and lifetime query
// counter are unsynchronised. Each trial builds its own Iface over its
// own Store; nothing here may be shared across trial goroutines.
type Iface struct {
	st      *Store
	k       int
	scorer  Scorer
	queries uint64 // lifetime query count across all sessions

	cache        map[string]Result
	cacheVersion uint64
}

// NewIface creates a top-k view of the store. scorer may be nil for the
// default hash ranking. It panics if k < 1.
func NewIface(st *Store, k int, scorer Scorer) *Iface {
	if k < 1 {
		panic("hiddendb: interface k must be >= 1")
	}
	if scorer == nil {
		scorer = DefaultScorer
	}
	return &Iface{st: st, k: k, scorer: scorer, cache: make(map[string]Result)}
}

// K returns the result cap of the interface.
func (f *Iface) K() int { return f.k }

// Schema returns the queryable schema.
func (f *Iface) Schema() *schema.Schema { return f.st.Schema() }

// TotalQueries returns the lifetime number of queries answered, across all
// sessions — the harness uses it for cumulative query-cost figures.
func (f *Iface) TotalQueries() uint64 { return f.queries }

// Search answers one query. It never fails; budget enforcement lives in
// Session.
func (f *Iface) Search(q Query) (Result, error) {
	f.queries++
	if v := f.st.Version(); v != f.cacheVersion {
		f.cache = make(map[string]Result)
		f.cacheVersion = v
	}
	key := q.Key()
	if r, ok := f.cache[key]; ok {
		return r, nil
	}
	r := f.answer(q)
	f.cache[key] = r
	return r, nil
}

// tupleHeap is a min-heap by (score, ID) keeping the best k tuples seen.
type tupleHeap struct {
	items  []*schema.Tuple
	scores []float64
}

func (h *tupleHeap) Len() int { return len(h.items) }
func (h *tupleHeap) Less(i, j int) bool {
	if h.scores[i] != h.scores[j] {
		return h.scores[i] < h.scores[j]
	}
	return h.items[i].ID > h.items[j].ID // worse = larger ID on ties
}
func (h *tupleHeap) Swap(i, j int) {
	h.items[i], h.items[j] = h.items[j], h.items[i]
	h.scores[i], h.scores[j] = h.scores[j], h.scores[i]
}
func (h *tupleHeap) Push(x any) {
	p := x.(scored)
	h.items = append(h.items, p.t)
	h.scores = append(h.scores, p.s)
}
func (h *tupleHeap) Pop() any {
	n := len(h.items) - 1
	p := scored{t: h.items[n], s: h.scores[n]}
	h.items = h.items[:n]
	h.scores = h.scores[:n]
	return p
}

type scored struct {
	t *schema.Tuple
	s float64
}

// answer computes the uncached top-k result.
func (f *Iface) answer(q Query) Result {
	h := &tupleHeap{}
	matches := 0
	f.st.scanMatching(q, func(t *schema.Tuple) {
		matches++
		s := f.scorer(t)
		if h.Len() < f.k {
			heap.Push(h, scored{t: t, s: s})
			return
		}
		// Replace the current worst if strictly better.
		if s > h.scores[0] || (s == h.scores[0] && t.ID < h.items[0].ID) {
			h.items[0], h.scores[0] = t, s
			heap.Fix(h, 0)
		}
	})
	res := Result{Overflow: matches > f.k}
	res.Tuples = make([]*schema.Tuple, h.Len())
	scs := make([]float64, h.Len())
	copy(res.Tuples, h.items)
	copy(scs, h.scores)
	// Rank best-first, deterministic.
	sort.Sort(&rankSort{tuples: res.Tuples, scores: scs})
	return res
}

type rankSort struct {
	tuples []*schema.Tuple
	scores []float64
}

func (r *rankSort) Len() int { return len(r.tuples) }
func (r *rankSort) Less(i, j int) bool {
	if r.scores[i] != r.scores[j] {
		return r.scores[i] > r.scores[j]
	}
	return r.tuples[i].ID < r.tuples[j].ID
}
func (r *rankSort) Swap(i, j int) {
	r.tuples[i], r.tuples[j] = r.tuples[j], r.tuples[i]
	r.scores[i], r.scores[j] = r.scores[j], r.scores[i]
}

// Session enforces the per-round query budget G on top of an Iface and
// optionally drives the constant-update model by running a hook before
// each query (the harness uses the hook to apply mid-round updates,
// modelling databases that change while the algorithm is executing, §5.2).
type Session struct {
	f         *Iface
	budget    int
	used      int
	preSearch func(queryIndex int)
}

// NewSession starts a round with budget G (G <= 0 means unlimited).
func (f *Iface) NewSession(g int) *Session {
	return &Session{f: f, budget: g}
}

// SetPreSearchHook installs fn, invoked with the 0-based index of each
// query just before it is answered. Harness-only: estimators never see it.
func (s *Session) SetPreSearchHook(fn func(queryIndex int)) { s.preSearch = fn }

// Search issues one query, consuming one unit of budget.
func (s *Session) Search(q Query) (Result, error) {
	if s.budget > 0 && s.used >= s.budget {
		return Result{}, ErrBudgetExhausted
	}
	if s.preSearch != nil {
		s.preSearch(s.used)
	}
	s.used++
	return s.f.Search(q)
}

// K returns the interface's result cap.
func (s *Session) K() int { return s.f.K() }

// Schema returns the queryable schema.
func (s *Session) Schema() *schema.Schema { return s.f.Schema() }

// Used returns the number of queries issued in this session.
func (s *Session) Used() int { return s.used }

// Remaining returns the unused budget, or a negative number if unlimited.
func (s *Session) Remaining() int {
	if s.budget <= 0 {
		return -1
	}
	return s.budget - s.used
}

// Budget returns the session's budget G (<=0 means unlimited).
func (s *Session) Budget() int { return s.budget }

var _ Searcher = (*Session)(nil)
var _ Searcher = ifaceSearcher{}

// CountingIface is an Iface that additionally reports each query's result
// count, capped at countCap — modelling sites that display "1,000+
// results". The paper's core model assumes no COUNT metadata (§2.1 worst
// case); this interface supports the §8 future-work extension of
// count-guided drill downs.
type CountingIface struct {
	f        *Iface
	countCap int
}

// NewCountingIface wraps a store in a top-k interface that also reports
// capped result counts. countCap <= 0 means uncapped (exact counts).
func NewCountingIface(st *Store, k int, scorer Scorer, countCap int) *CountingIface {
	return &CountingIface{f: NewIface(st, k, scorer), countCap: countCap}
}

// K returns the result cap of the interface.
func (c *CountingIface) K() int { return c.f.K() }

// CountCap returns the display cap on counts (0 = exact).
func (c *CountingIface) CountCap() int { return c.countCap }

// Schema returns the queryable schema.
func (c *CountingIface) Schema() *schema.Schema { return c.f.Schema() }

// SearchWithCount answers one query with its (capped) result count. The
// second return is the displayed count: min(|Sel(q)|, countCap), and
// capped reports whether the true count exceeds the cap.
func (c *CountingIface) SearchWithCount(q Query) (res Result, count int, capped bool, err error) {
	res, err = c.f.Search(q)
	if err != nil {
		return res, 0, false, err
	}
	true0 := c.f.st.CountMatching(q)
	if c.countCap > 0 && true0 > c.countCap {
		return res, c.countCap, true, nil
	}
	return res, true0, false, nil
}

// NewCountingSession starts a budgeted round against the counting
// interface.
func (c *CountingIface) NewCountingSession(g int) *CountingSession {
	return &CountingSession{c: c, budget: g}
}

// CountingSession enforces the per-round budget over a CountingIface.
type CountingSession struct {
	c      *CountingIface
	budget int
	used   int
}

// SearchWithCount issues one query, consuming one unit of budget.
func (s *CountingSession) SearchWithCount(q Query) (Result, int, bool, error) {
	if s.budget > 0 && s.used >= s.budget {
		return Result{}, 0, false, ErrBudgetExhausted
	}
	s.used++
	return s.c.SearchWithCount(q)
}

// Used returns the queries issued in this session.
func (s *CountingSession) Used() int { return s.used }

// Remaining returns the unused budget (negative when unlimited).
func (s *CountingSession) Remaining() int {
	if s.budget <= 0 {
		return -1
	}
	return s.budget - s.used
}

// ifaceSearcher adapts Iface to Searcher for unbudgeted uses (tests,
// ground-truth-free exploration tools).
type ifaceSearcher struct{ f *Iface }

// AsSearcher returns an unbudgeted Searcher view of the interface.
func (f *Iface) AsSearcher() Searcher { return ifaceSearcher{f: f} }

func (s ifaceSearcher) Search(q Query) (Result, error) { return s.f.Search(q) }
func (s ifaceSearcher) K() int                         { return s.f.K() }
func (s ifaceSearcher) Schema() *schema.Schema         { return s.f.Schema() }
