package experiments

import (
	"fmt"

	"github.com/dynagg/dynagg/internal/agg"
	"github.com/dynagg/dynagg/internal/hiddendb"
	"github.com/dynagg/dynagg/internal/schema"
	"github.com/dynagg/dynagg/internal/workload"
)

// autosParams are the Yahoo! Autos experiment parameters, scaled down by
// default (DESIGN.md "Scale guard") and exact at full scale.
type autosParams struct {
	n, initial, insert int
	deleteFrac         float64
	k, g, rounds, m    int
	trials             int
	scaleNote          string
}

func autosDefaults(opt Options) autosParams {
	if opt.FullScale {
		return autosParams{
			n: workload.AutosSize, initial: 170000, insert: 300, deleteFrac: 0.001,
			k: 1000, g: 500, rounds: 50, m: 38, trials: opt.trials(1),
			scaleNote: "full scale (paper parameters)",
		}
	}
	return autosParams{
		n: 40000, initial: 36000, insert: 300, deleteFrac: 0.001,
		k: 250, g: 500, rounds: 50, m: 38, trials: opt.trials(3),
		scaleNote: "reduced scale (n=40k, k=250); DYNAGG_FULL_SCALE=1 for paper parameters",
	}
}

func (p autosParams) dataset() func(int64) *workload.Dataset {
	n, m := p.n, p.m
	return func(seed int64) *workload.Dataset { return workload.AutosLikeN(seed, n, m) }
}

func countAggs(*schema.Schema) []*agg.Aggregate {
	return []*agg.Aggregate{agg.CountAll()}
}

func init() {
	register("fig2", Fig2)
	register("fig3", Fig3)
	register("fig5", Fig5)
	register("fig6", Fig6)
	register("fig7", Fig7)
	register("fig8", Fig8)
	register("fig9", Fig9)
	register("fig10", Fig10)
	register("fig11", Fig11)
	register("fig12", Fig12)
	register("fig13", Fig13)
}

// Fig2 — relative error of COUNT(*) per round under the default schedule.
func Fig2(opt Options) (*Figure, error) {
	p := autosDefaults(opt)
	spec := TrackSpec{
		Dataset: p.dataset(), Initial: p.initial,
		Schedule: workload.PoolChurn(p.insert, p.deleteFrac),
		K:        p.k, G: p.g, Rounds: p.rounds,
		Aggs: countAggs,
	}
	res, err := RunTracking(spec, opt, p.trials)
	if err != nil {
		return nil, err
	}
	f := &Figure{
		ID: "fig2", Title: "Relative error of COUNT(*) vs round (default schedule)",
		XLabel: "round", YLabel: "relative error",
		X:     roundsAxis(p.rounds),
		Notes: []string{p.scaleNote},
	}
	for _, a := range AllAlgos {
		f.AddSeries(string(a), res.RelErr[a])
	}
	return f, nil
}

// Fig3 — raw estimates relative to the truth (error bars): mean ± sd of
// est/truth per round.
func Fig3(opt Options) (*Figure, error) {
	p := autosDefaults(opt)
	if !opt.FullScale && opt.Trials == 0 {
		p.trials = 5 // error bars need a few trials
	}
	spec := TrackSpec{
		Dataset: p.dataset(), Initial: p.initial,
		Schedule: workload.PoolChurn(p.insert, p.deleteFrac),
		K:        p.k, G: p.g, Rounds: p.rounds,
		Aggs: countAggs,
	}
	res, err := RunTracking(spec, opt, p.trials)
	if err != nil {
		return nil, err
	}
	f := &Figure{
		ID: "fig3", Title: "Relative size (estimate/truth) with error bars",
		XLabel: "round", YLabel: "relative size",
		X:     roundsAxis(p.rounds),
		Notes: []string{p.scaleNote},
	}
	for _, a := range AllAlgos {
		mean := make([]float64, p.rounds)
		sd := make([]float64, p.rounds)
		for i := 0; i < p.rounds; i++ {
			if res.Truth[i] != 0 {
				mean[i] = res.EstMean[a][i] / res.Truth[i]
				sd[i] = res.EstSD[a][i] / res.Truth[i]
			}
		}
		f.AddSeries(string(a), mean)
		f.AddSeries(string(a)+"±sd", sd)
	}
	return f, nil
}

// Fig5 — little change: one tuple inserted per round. REISSUE's error
// tapers off while RS keeps improving.
func Fig5(opt Options) (*Figure, error) {
	p := autosDefaults(opt)
	p.g = 100 // the paper's default budget for this figure
	spec := TrackSpec{
		Dataset: p.dataset(), Initial: p.initial,
		Schedule: workload.NetChange(1),
		K:        p.k, G: p.g, Rounds: p.rounds,
		Aggs: countAggs,
	}
	res, err := RunTracking(spec, opt, p.trials)
	if err != nil {
		return nil, err
	}
	f := &Figure{
		ID: "fig5", Title: "Little change (+1 tuple/round): relative error vs round",
		XLabel: "round", YLabel: "relative error",
		X:     roundsAxis(p.rounds),
		Notes: []string{p.scaleNote},
	}
	for _, a := range AllAlgos {
		f.AddSeries(string(a), res.RelErr[a])
	}
	return f, nil
}

// bigChangeParams scales the Fig 6/7 schedule (start 100k, +10000/−5% per
// round) to the reduced dataset.
func bigChangeParams(opt Options) autosParams {
	p := autosDefaults(opt)
	if opt.FullScale {
		p.initial = 100000
		p.insert = 10000
	} else {
		p.initial = 30000
		p.insert = 3000
	}
	p.deleteFrac = 0.05
	p.rounds = 10
	p.g = 500
	return p
}

// Fig6 — big change: REISSUE/RS still beat RESTART at k=1000.
func Fig6(opt Options) (*Figure, error) {
	p := bigChangeParams(opt)
	spec := TrackSpec{
		Dataset: p.dataset(), Initial: p.initial,
		Schedule: workload.FreshChurn(p.insert, p.deleteFrac),
		K:        p.k, G: p.g, Rounds: p.rounds,
		Aggs: countAggs,
	}
	res, err := RunTracking(spec, opt, p.trials)
	if err != nil {
		return nil, err
	}
	f := &Figure{
		ID: "fig6", Title: "Big change (+~10%/−5% per round): relative error vs round",
		XLabel: "round", YLabel: "relative error",
		X:     roundsAxis(p.rounds),
		Notes: []string{p.scaleNote},
	}
	for _, a := range AllAlgos {
		f.AddSeries(string(a), res.RelErr[a])
	}
	return f, nil
}

// Fig7 — big change with k = 1: the Theorem 3.2 worst case where RESTART
// can win.
func Fig7(opt Options) (*Figure, error) {
	p := bigChangeParams(opt)
	p.k = 1
	p.rounds = 20
	spec := TrackSpec{
		Dataset: p.dataset(), Initial: p.initial,
		Schedule: workload.FreshChurn(p.insert, p.deleteFrac),
		K:        p.k, G: p.g, Rounds: p.rounds,
		Aggs: countAggs,
	}
	res, err := RunTracking(spec, opt, p.trials)
	if err != nil {
		return nil, err
	}
	f := &Figure{
		ID: "fig7", Title: "Big change with k=1: RESTART's regime",
		XLabel: "round", YLabel: "relative error",
		X:     roundsAxis(p.rounds),
		Notes: []string{p.scaleNote},
	}
	for _, a := range AllAlgos {
		f.AddSeries(string(a), res.RelErr[a])
	}
	return f, nil
}

// Fig8 — effect of the interface cap k on the error after 50 rounds.
func Fig8(opt Options) (*Figure, error) {
	p := autosDefaults(opt)
	ks := []int{50, 100, 250, 500, 1000}
	if opt.FullScale {
		ks = []int{200, 400, 600, 800, 1000}
	}
	f := &Figure{
		ID: "fig8", Title: "Effect of k on final relative error",
		XLabel: "k", YLabel: "relative error",
		Notes: []string{p.scaleNote},
	}
	series := map[Algo][]float64{}
	for _, k := range ks {
		spec := TrackSpec{
			Dataset: p.dataset(), Initial: p.initial,
			Schedule: workload.PoolChurn(p.insert, p.deleteFrac),
			K:        k, G: p.g, Rounds: p.rounds,
			Aggs: countAggs,
		}
		res, err := RunTracking(spec, opt, p.trials)
		if err != nil {
			return nil, err
		}
		f.X = append(f.X, float64(k))
		for _, a := range AllAlgos {
			series[a] = append(series[a], res.FinalErr(a))
		}
	}
	for _, a := range AllAlgos {
		f.AddSeries(string(a), series[a])
	}
	return f, nil
}

// Fig9 — effect of the per-round budget G on the error after 50 rounds.
func Fig9(opt Options) (*Figure, error) {
	p := autosDefaults(opt)
	gs := []int{100, 200, 300, 400, 500, 600}
	f := &Figure{
		ID: "fig9", Title: "Effect of per-round query budget G on final relative error",
		XLabel: "G", YLabel: "relative error",
		Notes: []string{p.scaleNote},
	}
	series := map[Algo][]float64{}
	for _, g := range gs {
		spec := TrackSpec{
			Dataset: p.dataset(), Initial: p.initial,
			Schedule: workload.PoolChurn(p.insert, p.deleteFrac),
			K:        p.k, G: g, Rounds: p.rounds,
			Aggs: countAggs,
		}
		res, err := RunTracking(spec, opt, p.trials)
		if err != nil {
			return nil, err
		}
		f.X = append(f.X, float64(g))
		for _, a := range AllAlgos {
			series[a] = append(series[a], res.FinalErr(a))
		}
	}
	for _, a := range AllAlgos {
		f.AddSeries(string(a), series[a])
	}
	return f, nil
}

// Fig10 — net insertions/deletions per round over a 5,000-tuple database,
// 100 rounds (x axis: total tuples inserted, −3000..+3000).
func Fig10(opt Options) (*Figure, error) {
	p := autosDefaults(opt)
	rounds := 100
	totals := []int{-3000, -1000, 0, 1000, 3000}
	f := &Figure{
		ID: "fig10", Title: "Effect of insertion/deletion volume (|D1|=5000, 100 rounds)",
		XLabel: "net tuples inserted", YLabel: "relative error",
		Notes: []string{p.scaleNote},
	}
	series := map[Algo][]float64{}
	for _, total := range totals {
		perRound := total / rounds
		spec := TrackSpec{
			Dataset:  func(seed int64) *workload.Dataset { return workload.AutosLikeN(seed, 9000, p.m) },
			Initial:  5000,
			Schedule: workload.NetChange(perRound),
			K:        p.k, G: 100, Rounds: rounds,
			Aggs: countAggs,
		}
		res, err := RunTracking(spec, opt, p.trials)
		if err != nil {
			return nil, err
		}
		f.X = append(f.X, float64(total))
		for _, a := range AllAlgos {
			series[a] = append(series[a], res.FinalErr(a))
		}
	}
	for _, a := range AllAlgos {
		f.AddSeries(string(a), series[a])
	}
	return f, nil
}

// Fig11 — effect of the attribute count m (34, 36, 38): none expected.
func Fig11(opt Options) (*Figure, error) {
	p := autosDefaults(opt)
	ms := []int{34, 36, 38}
	f := &Figure{
		ID: "fig11", Title: "Effect of the number of attributes m",
		XLabel: "m", YLabel: "relative error",
		Notes: []string{p.scaleNote},
	}
	series := map[Algo][]float64{}
	for _, m := range ms {
		mm := m
		spec := TrackSpec{
			Dataset:  func(seed int64) *workload.Dataset { return workload.AutosLikeN(seed, p.n, mm) },
			Initial:  p.initial,
			Schedule: workload.PoolChurn(p.insert, p.deleteFrac),
			K:        p.k, G: p.g, Rounds: p.rounds,
			Aggs: countAggs,
		}
		res, err := RunTracking(spec, opt, p.trials)
		if err != nil {
			return nil, err
		}
		f.X = append(f.X, float64(m))
		for _, a := range AllAlgos {
			series[a] = append(series[a], res.FinalErr(a))
		}
	}
	for _, a := range AllAlgos {
		f.AddSeries(string(a), series[a])
	}
	return f, nil
}

// Fig12 — effect of the starting database size |D1| with m = 50:
// RESTART's error grows with n, REISSUE/RS stay flat.
func Fig12(opt Options) (*Figure, error) {
	sizes := []int{10000, 100000, 1000000}
	note := "sizes up to 1e6; DYNAGG_FULL_SCALE=1 adds the 1e7 point"
	if opt.FullScale {
		sizes = append(sizes, 10000000)
		note = "full scale (paper parameters, m=50)"
	}
	f := &Figure{
		ID: "fig12", Title: "Effect of |D1| (m=50 uniform attributes)",
		XLabel: "|D1|", YLabel: "relative error",
		Notes: []string{note},
	}
	series := map[Algo][]float64{}
	for _, n := range sizes {
		nn := n
		churn := maxInt(1, nn/1000)
		spec := TrackSpec{
			Dataset:  func(seed int64) *workload.Dataset { return workload.Scalable(seed, nn+nn/10, 50, 3) },
			Initial:  nn,
			Schedule: workload.PoolChurn(churn, 0.001),
			K:        100, G: 100, Rounds: 15,
			Aggs: countAggs,
		}
		res, err := RunTracking(spec, opt, opt.trials(1))
		if err != nil {
			return nil, err
		}
		f.X = append(f.X, float64(n))
		for _, a := range AllAlgos {
			series[a] = append(series[a], res.FinalErr(a))
		}
	}
	for _, a := range AllAlgos {
		f.AddSeries(string(a), series[a])
	}
	return f, nil
}

// Fig13 — SUM aggregates with 0–3 conjunctive selection predicates.
func Fig13(opt Options) (*Figure, error) {
	p := autosDefaults(opt)
	rounds := p.rounds
	if opt.FullScale {
		rounds = 100
	}
	f := &Figure{
		ID: "fig13", Title: "SUM(price) with 0-3 conjunctive selection predicates",
		XLabel: "#predicates", YLabel: "relative error",
		Notes: []string{p.scaleNote},
	}
	series := map[Algo][]float64{}
	for preds := 0; preds <= 3; preds++ {
		np := preds
		spec := TrackSpec{
			Dataset: p.dataset(), Initial: p.initial,
			Schedule: workload.PoolChurn(p.insert, p.deleteFrac),
			K:        p.k, G: p.g, Rounds: rounds,
			Aggs: func(sch *schema.Schema) []*agg.Aggregate {
				if np == 0 {
					return []*agg.Aggregate{agg.SumOf("SUM(price)", agg.AuxField(0))}
				}
				// Predicates on the common value of the NARROW (binary-ish)
				// tail attributes: each keeps ~60% of the population, so
				// even three predicates leave a slice far larger than k and
				// the subtree estimation is non-trivial (predicates on the
				// wide head attributes would shrink the slice below k and
				// make the root query exact).
				var ps []hiddendb.Pred
				for i := 0; i < np; i++ {
					ps = append(ps, hiddendb.Pred{Attr: sch.M() - 1 - i, Val: 0})
				}
				sel := hiddendb.NewQuery(ps...)
				return []*agg.Aggregate{agg.SumWhere(fmt.Sprintf("SUM(price) %dp", np), agg.AuxField(0), sel)}
			},
		}
		res, err := RunTracking(spec, opt, p.trials)
		if err != nil {
			return nil, err
		}
		f.X = append(f.X, float64(preds))
		for _, a := range AllAlgos {
			series[a] = append(series[a], res.FinalErr(a))
		}
	}
	for _, a := range AllAlgos {
		f.AddSeries(string(a), series[a])
	}
	return f, nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
