// Package webiface connects the estimators to hidden databases that live
// on the other side of an HTTP API — the setting of the paper's live
// experiments (Amazon Product Advertising API, eBay Finding API).
//
// It provides both halves:
//
//   - Client: a hiddendb.Searcher that translates conjunctive queries
//     into HTTP requests, with rate limiting and bounded retries — so a
//     dynagg.Tracker can track a remote database unchanged.
//   - Handler: an http.Handler exposing a simulated hiddendb.Store
//     through the same wire format, used in tests and demos.
//
// The wire format is deliberately tiny: a GET with the conjunctive
// predicates encoded as repeated "where=attr:value" query parameters,
// answered by JSON:
//
//	{"k":100,"overflow":true,"tuples":[{"id":7,"vals":[1,0,3],"aux":[19.5]}]}
//
// Real sites need a site-specific request builder and response parser;
// both are injectable (RequestFunc / ParseFunc).
package webiface

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync"
	"time"

	"github.com/dynagg/dynagg/internal/hiddendb"
	"github.com/dynagg/dynagg/internal/metrics"
	"github.com/dynagg/dynagg/internal/schema"
)

// wireTuple is the JSON encoding of one returned tuple.
type wireTuple struct {
	ID   uint64    `json:"id"`
	Vals []uint16  `json:"vals"`
	Aux  []float64 `json:"aux,omitempty"`
}

// wireResult is the JSON encoding of a search answer.
type wireResult struct {
	K        int         `json:"k"`
	Overflow bool        `json:"overflow"`
	Tuples   []wireTuple `json:"tuples"`
}

// wireSchema is the JSON encoding of the schema discovery endpoint.
type wireSchema struct {
	K     int        `json:"k"`
	Attrs []wireAttr `json:"attrs"`
}

type wireAttr struct {
	Name     string   `json:"name"`
	Domain   []string `json:"domain"`
	Nullable bool     `json:"nullable,omitempty"`
}

// Handler exposes a simulated store through the wire format. Routes:
//
//	GET /schema           → wireSchema
//	GET /search?where=... → wireResult
//	GET /stats            → wireStats
//	GET /metrics          → Prometheus-style plaintext (query counts,
//	                        store version, per-key budget accounting)
//
// A Handler is safe for concurrent use by any number of clients: queries
// are answered against the interface's immutable snapshot of the current
// round (hiddendb.Iface is concurrent-reader-safe), and the per-API-key
// budget accounting below is guarded by its own mutex. Clients identify
// themselves with an X-API-Key header (or key= query parameter); absent
// both, they share the anonymous bucket.
type Handler struct {
	iface *hiddendb.Iface

	mu           sync.Mutex
	perKeyBudget int
	used         map[string]int
}

// NewHandler wraps a search interface for serving.
func NewHandler(iface *hiddendb.Iface) *Handler {
	return &Handler{iface: iface, used: make(map[string]int)}
}

// SetPerKeyBudget caps the searches each API key may issue per round
// (g <= 0 means unlimited — the default). Over-budget searches get HTTP
// 429, modelling the database-imposed limit G of paper §2.1.
func (h *Handler) SetPerKeyBudget(g int) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.perKeyBudget = g
}

// ResetBudgets starts a new round: every key's budget is restored.
func (h *Handler) ResetBudgets() {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.used = make(map[string]int)
}

// consumeBudget charges one query to the given key, reporting whether the
// key is still within budget.
func (h *Handler) consumeBudget(key string) bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.perKeyBudget > 0 && h.used[key] >= h.perKeyBudget {
		return false
	}
	h.used[key]++
	return true
}

// ServeHTTP implements http.Handler.
func (h *Handler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	switch r.URL.Path {
	case "/schema":
		h.serveSchema(w)
	case "/search":
		h.serveSearch(w, r)
	case "/stats":
		h.serveStats(w)
	case "/metrics":
		h.serveMetrics(w)
	default:
		http.NotFound(w, r)
	}
}

// serveMetrics renders serving diagnostics as Prometheus plaintext: the
// lifetime query count, the store version the interface answers for, and
// the per-API-key round-budget accounting (keys emitted in sorted order
// so scrapes are diffable). Like /stats it omits |D| — hiding the size
// is the whole point of the interface.
func (h *Handler) serveMetrics(w http.ResponseWriter) {
	h.mu.Lock()
	budget := h.perKeyBudget
	used := make(map[string]int, len(h.used))
	for k, v := range h.used {
		used[k] = v
	}
	h.mu.Unlock()

	var b metrics.Builder
	b.Family("dynagg_serve_queries_total", "counter", "Lifetime queries answered across all clients.")
	b.Value("dynagg_serve_queries_total", float64(h.iface.TotalQueries()))
	b.Family("dynagg_serve_store_version", "gauge", "Store version currently answered from.")
	b.Value("dynagg_serve_store_version", float64(h.iface.Version()))
	b.Family("dynagg_serve_per_key_budget", "gauge", "Per-API-key query budget per round (0 = unlimited).")
	b.Int("dynagg_serve_per_key_budget", budget)
	b.Family("dynagg_serve_key_queries_used", "gauge", "Queries charged to each API key this round.")
	for _, k := range metrics.SortedKeys(used) {
		b.Int("dynagg_serve_key_queries_used", used[k], "key", k)
	}
	b.Family("dynagg_serve_key_budget_remaining", "gauge", "Budget left for each API key this round (-1 when unlimited).")
	for _, k := range metrics.SortedKeys(used) {
		if budget > 0 {
			b.Int("dynagg_serve_key_budget_remaining", budget-used[k], "key", k)
		} else {
			b.Int("dynagg_serve_key_budget_remaining", -1, "key", k)
		}
	}
	w.Header().Set("Content-Type", metrics.ContentType)
	_, _ = b.WriteTo(w)
}

// wireStats is the JSON encoding of the serving diagnostics endpoint.
// It deliberately omits |D| — the whole point of the hidden-database
// model is that clients cannot read the size off the interface.
type wireStats struct {
	K       int    `json:"k"`
	Queries uint64 `json:"queries"`
	Version uint64 `json:"version"`
}

func (h *Handler) serveStats(w http.ResponseWriter) {
	writeJSON(w, wireStats{
		K:       h.iface.K(),
		Queries: h.iface.TotalQueries(),
		Version: h.iface.Version(),
	})
}

// apiKey extracts the client's key from the request.
func apiKey(r *http.Request) string {
	if k := r.Header.Get("X-API-Key"); k != "" {
		return k
	}
	return r.URL.Query().Get("key")
}

func (h *Handler) serveSchema(w http.ResponseWriter) {
	sch := h.iface.Schema()
	out := wireSchema{K: h.iface.K()}
	for i := 0; i < sch.M(); i++ {
		a := sch.Attr(i)
		out.Attrs = append(out.Attrs, wireAttr{Name: a.Name, Domain: a.Domain, Nullable: a.Nullable})
	}
	writeJSON(w, out)
}

func (h *Handler) serveSearch(w http.ResponseWriter, r *http.Request) {
	var preds []hiddendb.Pred
	seen := make(map[int]bool)
	for _, raw := range r.URL.Query()["where"] {
		attr, val, err := parsePred(raw)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		if attr < 0 || attr >= h.iface.Schema().M() {
			http.Error(w, fmt.Sprintf("unknown attribute %d", attr), http.StatusBadRequest)
			return
		}
		if seen[attr] {
			// NewQuery panics on duplicates (trusted-caller API); reject
			// untrusted wire input before it gets there.
			http.Error(w, fmt.Sprintf("duplicate predicate on attribute %d", attr), http.StatusBadRequest)
			return
		}
		seen[attr] = true
		preds = append(preds, hiddendb.Pred{Attr: attr, Val: val})
	}
	// Charge the budget only for well-formed queries: a request rejected
	// at parse time was never answered, so it must not burn a unit of G.
	if !h.consumeBudget(apiKey(r)) {
		http.Error(w, "per-round query budget exhausted", http.StatusTooManyRequests)
		return
	}
	res, err := h.iface.Search(hiddendb.NewQuery(preds...))
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	out := wireResult{K: h.iface.K(), Overflow: res.Overflow}
	for _, t := range res.Tuples {
		out.Tuples = append(out.Tuples, wireTuple{ID: t.ID, Vals: t.Vals, Aux: t.Aux})
	}
	writeJSON(w, out)
}

func parsePred(raw string) (int, uint16, error) {
	parts := strings.SplitN(raw, ":", 2)
	if len(parts) != 2 {
		return 0, 0, fmt.Errorf("webiface: bad predicate %q (want attr:value)", raw)
	}
	attr, err := strconv.Atoi(parts[0])
	if err != nil {
		return 0, 0, fmt.Errorf("webiface: bad attribute in %q", raw)
	}
	val, err := strconv.ParseUint(parts[1], 10, 16)
	if err != nil {
		return 0, 0, fmt.Errorf("webiface: bad value in %q", raw)
	}
	return attr, uint16(val), nil
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(v)
}

// RequestFunc builds the HTTP request for a conjunctive query. The
// default encodes the /search?where=attr:value convention.
type RequestFunc func(ctx context.Context, base string, q hiddendb.Query) (*http.Request, error)

// ParseFunc decodes an HTTP response into a search result. The default
// decodes wireResult.
type ParseFunc func(resp *http.Response) (hiddendb.Result, error)

// ClientOptions tunes a Client.
type ClientOptions struct {
	// HTTPClient defaults to a client with a 30s timeout.
	HTTPClient *http.Client
	// MinInterval rate-limits requests (0 = no limit). Real APIs enforce
	// per-second caps on top of daily quotas; the budget G is still the
	// tracker's to manage.
	MinInterval time.Duration
	// Retries is the number of times a failed request is retried with
	// exponential backoff (default 2).
	Retries int
	// RequestTimeout bounds each request attempt (0 = rely on
	// HTTPClient's own timeout). A timed-out attempt is retried;
	// cancellation of the caller's context is not.
	RequestTimeout time.Duration
	// APIKey, when set, is sent as the X-API-Key header so the server
	// can account this client's per-round budget (see Handler).
	APIKey string
	// Request and Parse override the wire format for site-specific APIs.
	Request RequestFunc
	// Parse decodes responses.
	Parse ParseFunc
}

// Client is a hiddendb.Searcher over HTTP. It is safe for concurrent use
// by multiple goroutines — the rate limiter hands out send slots under a
// mutex — so the estimator execution engine can fan one round's
// drill-down walks out over a single shared client session.
type Client struct {
	base string
	sch  *schema.Schema
	k    int
	http *http.Client
	opts ClientOptions

	mu     sync.Mutex // guards nextAt
	nextAt time.Time
}

// BudgetExhaustedError reports an HTTP 429 from the remote database: the
// server-side per-key round budget G is spent. It unwraps to
// hiddendb.ErrBudgetExhausted, so estimators treat it as the normal end
// of a round rather than a failure, and it is never retried (the budget
// only resets at the next round).
type BudgetExhaustedError struct {
	// Status is the server's status line, e.g. "429 Too Many Requests".
	Status string
}

func (e *BudgetExhaustedError) Error() string {
	return "webiface: server budget exhausted: " + e.Status
}

// Unwrap makes errors.Is(err, hiddendb.ErrBudgetExhausted) true.
func (e *BudgetExhaustedError) Unwrap() error { return hiddendb.ErrBudgetExhausted }

// Dial fetches the remote schema and returns a ready client.
func Dial(base string, opts ClientOptions) (*Client, error) {
	if opts.HTTPClient == nil {
		opts.HTTPClient = &http.Client{Timeout: 30 * time.Second}
	}
	if opts.Retries == 0 {
		opts.Retries = 2
	}
	if opts.Request == nil {
		opts.Request = defaultRequest
	}
	if opts.Parse == nil {
		opts.Parse = defaultParse
	}
	c := &Client{base: strings.TrimRight(base, "/"), http: opts.HTTPClient, opts: opts}

	resp, err := c.http.Get(c.base + "/schema")
	if err != nil {
		return nil, fmt.Errorf("webiface: schema fetch: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("webiface: schema fetch: %s", resp.Status)
	}
	var ws wireSchema
	if err := json.NewDecoder(resp.Body).Decode(&ws); err != nil {
		return nil, fmt.Errorf("webiface: schema decode: %w", err)
	}
	if len(ws.Attrs) == 0 || ws.K < 1 {
		return nil, fmt.Errorf("webiface: invalid remote schema (m=%d, k=%d)", len(ws.Attrs), ws.K)
	}
	attrs := make([]schema.Attr, len(ws.Attrs))
	for i, a := range ws.Attrs {
		attrs[i] = schema.Attr{Name: a.Name, Domain: a.Domain, Nullable: a.Nullable}
	}
	c.sch = schema.New(attrs)
	c.k = ws.K
	return c, nil
}

// K returns the remote interface's result cap.
func (c *Client) K() int { return c.k }

// Schema returns the remote schema.
func (c *Client) Schema() *schema.Schema { return c.sch }

// Search issues one conjunctive query over HTTP, honouring the rate limit
// and retrying transient failures.
func (c *Client) Search(q hiddendb.Query) (hiddendb.Result, error) {
	return c.SearchContext(context.Background(), q)
}

// SearchContext is Search with caller-controlled cancellation: the rate-
// limit wait, every retry backoff and every request attempt observe ctx.
// ClientOptions.RequestTimeout additionally bounds each attempt; an
// attempt timeout is transient (retried), ctx cancellation is terminal.
func (c *Client) SearchContext(ctx context.Context, q hiddendb.Query) (hiddendb.Result, error) {
	if err := c.waitSlot(ctx); err != nil {
		return hiddendb.Result{}, err
	}
	var lastErr error
	backoff := 100 * time.Millisecond
	for attempt := 0; attempt <= c.opts.Retries; attempt++ {
		if attempt > 0 {
			if err := sleepCtx(ctx, backoff); err != nil {
				return hiddendb.Result{}, err
			}
			backoff *= 2
		}
		res, retryable, err := c.attempt(ctx, q)
		if err == nil {
			return res, nil
		}
		if !retryable {
			return hiddendb.Result{}, err
		}
		lastErr = err
	}
	return hiddendb.Result{}, fmt.Errorf("webiface: search failed after retries: %w", lastErr)
}

// attempt performs one request/parse cycle, classifying failures as
// retryable (transient network/server trouble) or terminal.
func (c *Client) attempt(ctx context.Context, q hiddendb.Query) (res hiddendb.Result, retryable bool, err error) {
	actx := ctx
	if c.opts.RequestTimeout > 0 {
		var cancel context.CancelFunc
		actx, cancel = context.WithTimeout(ctx, c.opts.RequestTimeout)
		defer cancel()
	}
	req, err := c.opts.Request(actx, c.base, q)
	if err != nil {
		return hiddendb.Result{}, false, err
	}
	if c.opts.APIKey != "" {
		req.Header.Set("X-API-Key", c.opts.APIKey)
	}
	resp, err := c.http.Do(req)
	if err != nil {
		if ctx.Err() != nil {
			// The caller cancelled; the per-attempt timeout alone stays
			// retryable.
			return hiddendb.Result{}, false, ctx.Err()
		}
		return hiddendb.Result{}, true, err
	}
	defer resp.Body.Close()
	switch {
	case resp.StatusCode == http.StatusTooManyRequests:
		return hiddendb.Result{}, false, &BudgetExhaustedError{Status: resp.Status}
	case resp.StatusCode != http.StatusOK:
		return hiddendb.Result{}, resp.StatusCode >= 500,
			fmt.Errorf("webiface: search: %s", resp.Status)
	}
	res, err = c.opts.Parse(resp)
	if err != nil {
		return hiddendb.Result{}, true, err
	}
	return res, false, nil
}

// waitSlot claims the next rate-limited send slot and sleeps until it,
// observing ctx. Slots are handed out under the mutex, so concurrent
// callers queue fairly at MinInterval spacing.
func (c *Client) waitSlot(ctx context.Context) error {
	if c.opts.MinInterval <= 0 {
		return ctx.Err()
	}
	c.mu.Lock()
	now := time.Now()
	slot := c.nextAt
	if slot.Before(now) {
		slot = now
	}
	c.nextAt = slot.Add(c.opts.MinInterval)
	c.mu.Unlock()
	return sleepCtx(ctx, time.Until(slot))
}

// sleepCtx sleeps for d unless ctx is done first.
func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

var _ hiddendb.Searcher = (*Client)(nil)

func defaultRequest(ctx context.Context, base string, q hiddendb.Query) (*http.Request, error) {
	vals := url.Values{}
	for _, p := range q.Preds() {
		vals.Add("where", fmt.Sprintf("%d:%d", p.Attr, p.Val))
	}
	u := base + "/search"
	if enc := vals.Encode(); enc != "" {
		u += "?" + enc
	}
	return http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
}

func defaultParse(resp *http.Response) (hiddendb.Result, error) {
	var wr wireResult
	if err := json.NewDecoder(resp.Body).Decode(&wr); err != nil {
		return hiddendb.Result{}, fmt.Errorf("webiface: result decode: %w", err)
	}
	out := hiddendb.Result{Overflow: wr.Overflow}
	for _, t := range wr.Tuples {
		out.Tuples = append(out.Tuples, &schema.Tuple{ID: t.ID, Vals: t.Vals, Aux: t.Aux})
	}
	return out, nil
}

// Session wraps the client with a per-round budget, mirroring
// hiddendb.Session for remote databases. Budget accounting is atomic, so
// one Session may be shared by the estimator execution engine's bounded
// fan-out (several goroutines issuing one round's drill-down walks over
// the same client).
type Session struct {
	c  *Client
	bc *hiddendb.BudgetCounter
}

// NewSession starts a budgeted round against the remote database.
func (c *Client) NewSession(g int) *Session {
	return &Session{c: c, bc: hiddendb.NewBudgetCounter(g)}
}

// ConcurrentSearchable reports that concurrent Search calls are safe.
func (s *Session) ConcurrentSearchable() bool { return true }

// Search issues one query, consuming budget.
func (s *Session) Search(q hiddendb.Query) (hiddendb.Result, error) {
	if _, ok := s.bc.Claim(); !ok {
		return hiddendb.Result{}, hiddendb.ErrBudgetExhausted
	}
	return s.c.Search(q)
}

// K returns the remote cap.
func (s *Session) K() int { return s.c.K() }

// Schema returns the remote schema.
func (s *Session) Schema() *schema.Schema { return s.c.Schema() }

// Used returns the queries issued this round.
func (s *Session) Used() int { return s.bc.Used() }

// Remaining returns the unused budget (negative when unlimited).
func (s *Session) Remaining() int { return s.bc.Remaining() }

// Budget returns the round's budget G.
func (s *Session) Budget() int { return s.bc.Budget() }

var _ hiddendb.ConcurrentSearcher = (*Session)(nil)
