package hiddendb

import (
	"fmt"
	"math/bits"
	"sort"

	"github.com/dynagg/dynagg/internal/schema"
)

// Roaring-style posting lists.
//
// A postingList is one (attribute, value)'s inverted index entry: the set
// of tuple IDs carrying that value, chunked into containers of 65536
// consecutive IDs (container key = id >> 16, so arbitrary 64-bit tuple IDs
// are supported). Each container keeps its member IDs' low 16 bits either
// as a sorted uint16 array (sparse) or as an 8KB bitmap with a per-word
// rank index (dense); the form is a pure function of the container's
// cardinality — more than arrayMaxEntries members ⇒ bitmap — so an
// incrementally maintained list and a from-scratch rebuild agree container
// by container, which the index-equivalence tests check directly.
//
// Alongside the compact ID set every container carries a parallel payload
// slice of *schema.Tuple in ascending ID order. Intersection kernels
// (intersect.go) run entirely on the uint16 arrays and bitmap words —
// never touching tuple memory — and only the surviving IDs are gathered
// back to tuples through the payload slice (array form: position; bitmap
// form: rank).
//
// Copy-on-write: once a postingList is referenced by a published Snapshot
// it is immutable. The store clones the list before mutating it
// (postingList.clone marks every container shared), and each container is
// deep-copied at most once per clone, the first time a mutation touches it
// (ensureOwned). Readers therefore never observe a container mid-update.

const (
	// arrayMaxEntries is the density threshold: a container holding more
	// than this many IDs flips to bitmap form. 4096 × 2 bytes equals the
	// 8KB the bitmap itself costs, the classic roaring break-even.
	arrayMaxEntries = 4096
	// bitmapWords is the size of a bitmap container: 1024 × 64 = 65536
	// bits, one per possible low-16-bit ID.
	bitmapWords = 1024
)

// idBitmap is a bitmap container's bit store.
type idBitmap [bitmapWords]uint64

func (b *idBitmap) has(low uint16) bool { return b[low>>6]&(1<<(low&63)) != 0 }
func (b *idBitmap) set(low uint16)      { b[low>>6] |= 1 << (low & 63) }
func (b *idBitmap) unset(low uint16)    { b[low>>6] &^= 1 << (low & 63) }

// pcontainer is one 65536-ID chunk of a posting list.
type pcontainer struct {
	key    uint64          // id >> 16; the container covers [key<<16, key<<16 + 65535]
	shared bool            // referenced by a published snapshot: deep-copy before mutating
	ids    []uint16        // array form: sorted low 16 bits of the member IDs; nil in bitmap form
	bits   *idBitmap       // bitmap form; nil in array form
	ranks  []uint16        // bitmap form: ranks[w] = number of set bits in words [0, w)
	tuples []*schema.Tuple // payload, ascending tuple ID; parallel to ids (array) / bit rank (bitmap)
}

// count returns the container cardinality.
func (c *pcontainer) count() int { return len(c.tuples) }

// rankOf returns the payload index of the set bit low (bitmap form only;
// the bit must be set for the result to identify low's own payload slot).
func (c *pcontainer) rankOf(low uint16) int {
	w := low >> 6
	return int(c.ranks[w]) + bits.OnesCount64(c.bits[w]&(1<<(low&63)-1))
}

// findU16 returns the insertion position of x in the sorted slice a and
// whether x is present. Hand-rolled (no sort.Search closure) — it sits on
// the incremental-maintenance and gather hot paths.
func findU16(a []uint16, x uint16) (int, bool) {
	lo, hi := 0, len(a)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if a[mid] < x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo, lo < len(a) && a[lo] == x
}

// buildRanks computes the per-word cumulative rank index of a bitmap.
func buildRanks(b *idBitmap) []uint16 {
	r := make([]uint16, bitmapWords)
	n := 0
	for w := 0; w < bitmapWords; w++ {
		r[w] = uint16(n)
		n += bits.OnesCount64(b[w])
	}
	return r
}

// makeContainer builds one container from payload tuples in ascending ID
// order, all sharing the given key. The payload slice is aliased, not
// copied: callers pass freshly built slices.
func makeContainer(key uint64, ts []*schema.Tuple) pcontainer {
	c := pcontainer{key: key, tuples: ts}
	if len(ts) > arrayMaxEntries {
		c.bits = &idBitmap{}
		for _, t := range ts {
			c.bits.set(uint16(t.ID))
		}
		c.ranks = buildRanks(c.bits)
	} else {
		c.ids = make([]uint16, len(ts))
		for i, t := range ts {
			c.ids[i] = uint16(t.ID)
		}
	}
	return c
}

// ensureOwned deep-copies the container's slices if a snapshot still
// references them. Called by every mutating container op.
func (c *pcontainer) ensureOwned() {
	if !c.shared {
		return
	}
	c.shared = false
	if c.bits != nil {
		nb := *c.bits
		c.bits = &nb
		c.ranks = append([]uint16(nil), c.ranks...)
	} else {
		c.ids = append([]uint16(nil), c.ids...)
	}
	c.tuples = append([]*schema.Tuple(nil), c.tuples...)
}

// toBitmap converts an array container that crossed the density threshold.
func (c *pcontainer) toBitmap() {
	c.bits = &idBitmap{}
	for _, low := range c.ids {
		c.bits.set(low)
	}
	c.ranks = buildRanks(c.bits)
	c.ids = nil
}

// toArray converts a bitmap container that dropped back under the
// threshold. The payload is already in ID order, so the array is a
// projection of it.
func (c *pcontainer) toArray() {
	ids := make([]uint16, len(c.tuples))
	for i, t := range c.tuples {
		ids[i] = uint16(t.ID)
	}
	c.ids, c.bits, c.ranks = ids, nil, nil
}

// postingList is a sorted sequence of containers plus the total count.
type postingList struct {
	cs []pcontainer // ascending key
	n  int
}

// buildPostingList chunks tuples (ascending ID) into containers. The
// payload subslices alias ts; callers pass freshly built slices they will
// not mutate afterwards.
func buildPostingList(ts []*schema.Tuple) *postingList {
	pl := &postingList{n: len(ts)}
	for i := 0; i < len(ts); {
		key := ts[i].ID >> 16
		j := i + 1
		for j < len(ts) && ts[j].ID>>16 == key {
			j++
		}
		pl.cs = append(pl.cs, makeContainer(key, ts[i:j:j]))
		i = j
	}
	return pl
}

// findContainer returns the insertion position of key and whether a
// container with that key exists.
func (pl *postingList) findContainer(key uint64) (int, bool) {
	lo, hi := 0, len(pl.cs)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if pl.cs[mid].key < key {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo, lo < len(pl.cs) && pl.cs[lo].key == key
}

// container returns the container for key, or nil. Safe on a nil list.
func (pl *postingList) container(key uint64) *pcontainer {
	if pl == nil {
		return nil
	}
	if i, ok := pl.findContainer(key); ok {
		return &pl.cs[i]
	}
	return nil
}

// size returns the total number of postings. Safe on a nil list.
func (pl *postingList) size() int {
	if pl == nil {
		return 0
	}
	return pl.n
}

// forEachTuple visits every payload tuple in ascending ID order.
func (pl *postingList) forEachTuple(fn func(*schema.Tuple)) {
	if pl == nil {
		return
	}
	for i := range pl.cs {
		for _, t := range pl.cs[i].tuples {
			fn(t)
		}
	}
}

// appendTuples appends every payload tuple in ascending ID order to dst.
func (pl *postingList) appendTuples(dst []*schema.Tuple) []*schema.Tuple {
	if pl == nil {
		return dst
	}
	for i := range pl.cs {
		dst = append(dst, pl.cs[i].tuples...)
	}
	return dst
}

// clone returns a mutable copy sharing every container with the original
// (containers are marked shared and deep-copied lazily on first touch).
func (pl *postingList) clone() *postingList {
	cs := make([]pcontainer, len(pl.cs))
	copy(cs, pl.cs)
	for i := range cs {
		cs[i].shared = true
	}
	return &postingList{cs: cs, n: pl.n}
}

// insert adds one tuple (its ID must not be present). The list must be
// store-owned (see clone); container-level copy-on-write is handled here.
func (pl *postingList) insert(t *schema.Tuple) {
	key := t.ID >> 16
	low := uint16(t.ID)
	i, ok := pl.findContainer(key)
	if !ok {
		pl.cs = append(pl.cs, pcontainer{})
		copy(pl.cs[i+1:], pl.cs[i:])
		pl.cs[i] = makeContainer(key, []*schema.Tuple{t})
		pl.n++
		return
	}
	c := &pl.cs[i]
	c.ensureOwned()
	if c.bits != nil {
		r := c.rankOf(low)
		c.bits.set(low)
		c.tuples = append(c.tuples, nil)
		copy(c.tuples[r+1:], c.tuples[r:])
		c.tuples[r] = t
		for w := int(low>>6) + 1; w < bitmapWords; w++ {
			c.ranks[w]++
		}
	} else {
		pos, _ := findU16(c.ids, low)
		c.ids = append(c.ids, 0)
		copy(c.ids[pos+1:], c.ids[pos:])
		c.ids[pos] = low
		c.tuples = append(c.tuples, nil)
		copy(c.tuples[pos+1:], c.tuples[pos:])
		c.tuples[pos] = t
		if len(c.tuples) > arrayMaxEntries {
			c.toBitmap()
		}
	}
	pl.n++
}

// remove deletes the tuple with the given ID (which must be present).
func (pl *postingList) remove(id uint64) {
	i, ok := pl.findContainer(id >> 16)
	if !ok {
		panic(fmt.Sprintf("hiddendb: posting list out of sync for tuple %d", id))
	}
	c := &pl.cs[i]
	low := uint16(id)
	if c.count() == 1 {
		if c.bits != nil && !c.bits.has(low) || c.bits == nil && (len(c.ids) == 0 || c.ids[0] != low) {
			panic(fmt.Sprintf("hiddendb: posting list out of sync for tuple %d", id))
		}
		pl.cs = append(pl.cs[:i], pl.cs[i+1:]...)
		pl.n--
		return
	}
	c.ensureOwned()
	if c.bits != nil {
		if !c.bits.has(low) {
			panic(fmt.Sprintf("hiddendb: posting list out of sync for tuple %d", id))
		}
		r := c.rankOf(low)
		c.bits.unset(low)
		c.tuples = append(c.tuples[:r], c.tuples[r+1:]...)
		for w := int(low>>6) + 1; w < bitmapWords; w++ {
			c.ranks[w]--
		}
		if len(c.tuples) <= arrayMaxEntries {
			c.toArray()
		}
	} else {
		pos, ok := findU16(c.ids, low)
		if !ok {
			panic(fmt.Sprintf("hiddendb: posting list out of sync for tuple %d", id))
		}
		c.ids = append(c.ids[:pos], c.ids[pos+1:]...)
		c.tuples = append(c.tuples[:pos], c.tuples[pos+1:]...)
	}
	pl.n--
}

// swapTuple replaces the payload pointer for id in place (same ID, same
// value — a Replace that did not move the tuple between posting lists).
func (pl *postingList) swapTuple(id uint64, repl *schema.Tuple) {
	i, ok := pl.findContainer(id >> 16)
	if !ok {
		panic(fmt.Sprintf("hiddendb: posting list out of sync for tuple %d", id))
	}
	c := &pl.cs[i]
	c.ensureOwned()
	low := uint16(id)
	if c.bits != nil {
		if !c.bits.has(low) {
			panic(fmt.Sprintf("hiddendb: posting list out of sync for tuple %d", id))
		}
		c.tuples[c.rankOf(low)] = repl
		return
	}
	pos, ok := findU16(c.ids, low)
	if !ok {
		panic(fmt.Sprintf("hiddendb: posting list out of sync for tuple %d", id))
	}
	c.tuples[pos] = repl
}

// validate checks every structural invariant; tests run it after each
// mutation step of the incremental-vs-rebuild fuzz.
func (pl *postingList) validate() error {
	if pl == nil {
		return nil
	}
	total := 0
	for i := range pl.cs {
		c := &pl.cs[i]
		if i > 0 && pl.cs[i-1].key >= c.key {
			return fmt.Errorf("container keys out of order at %d", i)
		}
		if c.count() == 0 {
			return fmt.Errorf("empty container at key %d", c.key)
		}
		if (c.bits != nil) == (c.ids != nil) {
			return fmt.Errorf("container key %d has ambiguous form", c.key)
		}
		if c.bits != nil && c.count() <= arrayMaxEntries {
			return fmt.Errorf("container key %d: bitmap form at count %d", c.key, c.count())
		}
		if c.ids != nil && c.count() > arrayMaxEntries {
			return fmt.Errorf("container key %d: array form at count %d", c.key, c.count())
		}
		for j, t := range c.tuples {
			if t.ID>>16 != c.key {
				return fmt.Errorf("container key %d holds tuple %d", c.key, t.ID)
			}
			if j > 0 && c.tuples[j-1].ID >= t.ID {
				return fmt.Errorf("container key %d payload out of ID order at %d", c.key, j)
			}
			if c.ids != nil && c.ids[j] != uint16(t.ID) {
				return fmt.Errorf("container key %d: ids[%d]=%d but tuple ID %d", c.key, j, c.ids[j], t.ID)
			}
			if c.bits != nil && !c.bits.has(uint16(t.ID)) {
				return fmt.Errorf("container key %d: bit for tuple %d not set", c.key, t.ID)
			}
		}
		if c.bits != nil {
			if len(c.ids) != 0 {
				return fmt.Errorf("container key %d: bitmap form with ids", c.key)
			}
			if want := buildRanks(c.bits); len(c.ranks) != bitmapWords {
				return fmt.Errorf("container key %d: rank index length %d", c.key, len(c.ranks))
			} else {
				for w := range want {
					if c.ranks[w] != want[w] {
						return fmt.Errorf("container key %d: rank[%d]=%d want %d", c.key, w, c.ranks[w], want[w])
					}
				}
			}
			n := 0
			for _, w := range c.bits {
				n += bits.OnesCount64(w)
			}
			if n != c.count() {
				return fmt.Errorf("container key %d: %d bits set, %d tuples", c.key, n, c.count())
			}
		} else if len(c.ids) != c.count() {
			return fmt.Errorf("container key %d: %d ids, %d tuples", c.key, len(c.ids), c.count())
		}
		total += c.count()
	}
	if total != pl.n {
		return fmt.Errorf("list count %d, containers hold %d", pl.n, total)
	}
	return nil
}

// sortTuplesByID ID-sorts a freshly built payload slice (index builds
// group tuples in canonical store order first).
func sortTuplesByID(ts []*schema.Tuple) {
	sort.Slice(ts, func(i, j int) bool { return ts[i].ID < ts[j].ID })
}
