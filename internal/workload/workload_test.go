package workload

import (
	"math/rand"
	"testing"

	"github.com/dynagg/dynagg/internal/schema"
)

func TestAutosLikeNShape(t *testing.T) {
	d := AutosLikeN(1, 5000, 10)
	if d.Schema.M() != 10 {
		t.Fatalf("M = %d", d.Schema.M())
	}
	if len(d.Pool) != 5000 {
		t.Fatalf("pool = %d", len(d.Pool))
	}
	if d.Schema.DomainSize(0) != 38 || d.Schema.DomainSize(9) != 13 {
		t.Errorf("domain sizes wrong: %d %d", d.Schema.DomainSize(0), d.Schema.DomainSize(9))
	}
	// Distinctness.
	seen := make(map[string]bool)
	for _, tu := range d.Pool {
		k := tu.Key()
		if seen[k] {
			t.Fatalf("duplicate tuple in pool: %v", tu)
		}
		seen[k] = true
		if err := d.Schema.Validate(tu.Vals); err != nil {
			t.Fatalf("invalid pool tuple: %v", err)
		}
		if len(tu.Aux) != 1 || tu.Aux[0] <= 0 {
			t.Fatalf("missing price payload: %v", tu.Aux)
		}
	}
}

func TestAutosLikeSkew(t *testing.T) {
	d := AutosLikeN(2, 20000, 6)
	// Value 0 of attribute 0 must be notably more frequent than value 10
	// (Zipf-ish skew).
	c0, c10 := 0, 0
	for _, tu := range d.Pool {
		switch tu.Vals[0] {
		case 0:
			c0++
		case 10:
			c10++
		}
	}
	if c0 <= 2*c10 {
		t.Errorf("skew missing: count(v0)=%d count(v10)=%d", c0, c10)
	}
}

func TestAutosLikeDeterministic(t *testing.T) {
	a := AutosLikeN(7, 1000, 8)
	b := AutosLikeN(7, 1000, 8)
	for i := range a.Pool {
		if schema.CompareVals(a.Pool[i].Vals, b.Pool[i].Vals) != 0 {
			t.Fatalf("generation not deterministic at %d", i)
		}
	}
}

func TestScalableAndBoolean(t *testing.T) {
	d := Scalable(3, 2000, 12, 4)
	if d.Schema.M() != 12 || len(d.Pool) != 2000 {
		t.Fatalf("scalable shape wrong")
	}
	b := Boolean(4, 500, 30)
	for _, tu := range b.Pool {
		for _, v := range tu.Vals {
			if v > 1 {
				t.Fatalf("boolean dataset has value %d", v)
			}
		}
	}
}

func TestGeneratePanicsWhenTooDense(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for over-dense request")
		}
	}()
	Scalable(5, 600, 5, 3) // 3^5 = 243 < 2*600
}

func TestEnvInitialAndChurn(t *testing.T) {
	d := AutosLikeN(10, 3000, 8)
	env, err := NewEnv(d, 2000, 11)
	if err != nil {
		t.Fatal(err)
	}
	if env.Store.Size() != 2000 {
		t.Fatalf("initial size = %d", env.Store.Size())
	}

	if err := env.InsertFromPool(100); err != nil {
		t.Fatal(err)
	}
	if env.Store.Size() != 2100 {
		t.Errorf("size after insert = %d", env.Store.Size())
	}
	if err := env.DeleteRandom(50); err != nil {
		t.Fatal(err)
	}
	if env.Store.Size() != 2050 {
		t.Errorf("size after delete = %d", env.Store.Size())
	}
	if err := env.DeleteFraction(0.1); err != nil {
		t.Fatal(err)
	}
	if env.Store.Size() != 2050-205 {
		t.Errorf("size after fractional delete = %d", env.Store.Size())
	}

	// Distinctness after churn.
	seen := make(map[string]bool)
	dup := false
	env.Store.ForEach(func(tu *schema.Tuple) {
		if seen[tu.Key()] {
			dup = true
		}
		seen[tu.Key()] = true
	})
	if dup {
		t.Error("duplicate tuples after churn")
	}
}

func TestEnvPoolExhaustionFallsBackToFresh(t *testing.T) {
	d := AutosLikeN(12, 500, 8)
	env, err := NewEnv(d, 450, 13)
	if err != nil {
		t.Fatal(err)
	}
	// Only 50 pool tuples free; ask for 200.
	if err := env.InsertFromPool(200); err != nil {
		t.Fatal(err)
	}
	if env.Store.Size() != 650 {
		t.Errorf("size = %d, want 650", env.Store.Size())
	}
	seen := make(map[string]bool)
	env.Store.ForEach(func(tu *schema.Tuple) {
		if seen[tu.Key()] {
			t.Fatal("duplicate after pool exhaustion")
		}
		seen[tu.Key()] = true
	})
}

func TestEnvDeterministicEvolution(t *testing.T) {
	run := func() []int {
		d := AutosLikeN(20, 2000, 8)
		env, err := NewEnv(d, 1500, 21)
		if err != nil {
			t.Fatal(err)
		}
		sched := PoolChurn(30, 0.01)
		var sizes []int
		for round := 2; round <= 6; round++ {
			if err := sched(round, env); err != nil {
				t.Fatal(err)
			}
			sizes = append(sizes, env.Store.Size())
		}
		return sizes
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("evolution not deterministic: %v vs %v", a, b)
		}
	}
}

func TestSchedules(t *testing.T) {
	d := AutosLikeN(30, 4000, 8)
	env, err := NewEnv(d, 1000, 31)
	if err != nil {
		t.Fatal(err)
	}

	if err := Static()(2, env); err != nil || env.Store.Size() != 1000 {
		t.Errorf("static changed the db: %d", env.Store.Size())
	}

	if err := NetChange(100)(2, env); err != nil {
		t.Fatal(err)
	}
	if env.Store.Size() != 1100 {
		t.Errorf("NetChange(+100): %d", env.Store.Size())
	}
	if err := NetChange(-200)(3, env); err != nil {
		t.Fatal(err)
	}
	if env.Store.Size() != 900 {
		t.Errorf("NetChange(-200): %d", env.Store.Size())
	}

	if err := FreshChurn(50, 0.1)(4, env); err != nil {
		t.Fatal(err)
	}
	if env.Store.Size() != 900-90+50 {
		t.Errorf("FreshChurn: %d", env.Store.Size())
	}

	before := env.Store.Size()
	if err := TotalChange()(5, env); err != nil {
		t.Fatal(err)
	}
	if env.Store.Size() != before {
		t.Errorf("TotalChange altered size: %d -> %d", before, env.Store.Size())
	}

	combo := Compose(NetChange(10), NetChange(-5))
	before = env.Store.Size()
	if err := combo(6, env); err != nil {
		t.Fatal(err)
	}
	if env.Store.Size() != before+5 {
		t.Errorf("Compose: %d, want %d", env.Store.Size(), before+5)
	}
}

func TestMutateAux(t *testing.T) {
	d := AutosLikeN(40, 1000, 8)
	env, err := NewEnv(d, 800, 41)
	if err != nil {
		t.Fatal(err)
	}
	sum := func() float64 {
		var s float64
		env.Store.ForEach(func(tu *schema.Tuple) { s += tu.Aux[0] })
		return s
	}
	before := sum()
	if err := env.MutateAux(0.5, func(aux []float64, _ *rand.Rand) { aux[0] *= 0.5 }); err != nil {
		t.Fatal(err)
	}
	after := sum()
	if after >= before {
		t.Errorf("aux mutation had no effect: %v -> %v", before, after)
	}
	// Roughly half the price mass should have been halved: after ≈ 0.75·before.
	if after < 0.6*before || after > 0.9*before {
		t.Errorf("unexpected mutation magnitude: %v -> %v", before, after)
	}
	if env.Store.Size() != 800 {
		t.Errorf("MutateAux changed size: %d", env.Store.Size())
	}
}

func TestNewEnvErrors(t *testing.T) {
	d := AutosLikeN(50, 100, 8)
	if _, err := NewEnv(d, 200, 51); err == nil {
		t.Error("initial > pool accepted")
	}
}

// Deleted pool tuples must return to the pool and be re-insertable
// without ever creating a duplicate in the database.
func TestPoolRecyclingInvariant(t *testing.T) {
	d := AutosLikeN(60, 2000, 8)
	env, err := NewEnv(d, 1500, 61)
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 30; round++ {
		if err := env.DeleteRandom(120); err != nil {
			t.Fatal(err)
		}
		if err := env.InsertFromPool(120); err != nil {
			t.Fatal(err)
		}
		seen := make(map[string]bool, env.Store.Size())
		dup := false
		env.Store.ForEach(func(tu *schema.Tuple) {
			if seen[tu.Key()] {
				dup = true
			}
			seen[tu.Key()] = true
		})
		if dup {
			t.Fatalf("duplicate tuple after recycle round %d", round)
		}
		if env.Store.Size() != 1500 {
			t.Fatalf("size drifted: %d", env.Store.Size())
		}
	}
}

// DeleteWhere must only remove matching tuples.
func TestDeleteWhere(t *testing.T) {
	d := AutosLikeN(70, 3000, 8)
	env, err := NewEnv(d, 2500, 71)
	if err != nil {
		t.Fatal(err)
	}
	isV0 := func(tu *schema.Tuple) bool { return tu.Vals[0] == 0 }
	count := func(pred func(*schema.Tuple) bool) int {
		n := 0
		env.Store.ForEach(func(tu *schema.Tuple) {
			if pred(tu) {
				n++
			}
		})
		return n
	}
	matchBefore := count(isV0)
	otherBefore := env.Store.Size() - matchBefore
	if err := env.DeleteWhere(0.5, isV0); err != nil {
		t.Fatal(err)
	}
	matchAfter := count(isV0)
	otherAfter := env.Store.Size() - matchAfter
	if otherAfter != otherBefore {
		t.Errorf("non-matching tuples deleted: %d -> %d", otherBefore, otherAfter)
	}
	if matchAfter != matchBefore-matchBefore/2 {
		t.Errorf("matching deletions wrong: %d -> %d", matchBefore, matchAfter)
	}
}
