// Package router turns a fleet of shard-mode dynagg-serve processes into
// one logical hidden database behind the full /v1/ wire surface.
//
// It has two halves, one for each side of the process boundary:
//
//   - ShardAdmin wraps a shard daemon's serving handler with the epoch
//     admin wire (/v1/shard/freeze, /v1/shard/publish, /v1/shard/epoch)
//     and tags every serving response with the epoch it answered from.
//   - Router owns webiface.Client connections to N shard daemons, drives
//     the fleet-wide two-phase epoch handshake, and serves /v1/search by
//     scatter-gather: fan the query out, merge the per-shard top-k
//     partials with hiddendb.MergePartials, re-encode with the shared
//     wire encoder — byte-identical to a single process serving the
//     union of the shards (router_test.go pins this at 1, 4 and 16
//     shards under churn).
//
// docs/deploy.md describes the topology, the handshake and the failure
// semantics in operator terms.
package router

import (
	"encoding/json"
	"errors"
	"net/http"
	"strconv"
	"sync"
	"time"

	"github.com/dynagg/dynagg/internal/hiddendb"
	"github.com/dynagg/dynagg/internal/httpapi"
)

// EpochHeader is the response header a ShardAdmin sets on every serving
// response: the epoch sequence number the shard answered from. The
// router watches it (webiface ClientOptions.ObserveResponse) to detect a
// shard that restarted and is serving a stale epoch — its answers are
// rejected until a new handshake re-aligns the fleet.
const EpochHeader = "X-Dynagg-Epoch"

// AdminOptions tunes a ShardAdmin.
type AdminOptions struct {
	// FreezeTimeout auto-aborts a freeze that no publish or abort has
	// resolved in time, so a router that died mid-handshake cannot leave
	// the shard's mutators blocked forever (0 = wait indefinitely).
	FreezeTimeout time.Duration
}

// ShardAdmin wraps one shard daemon's serving handler with the epoch
// admin wire the router drives:
//
//	POST /v1/shard/freeze   → freeze the current state into a pending
//	                          epoch (409 conflict when already frozen)
//	POST /v1/shard/publish  → {"seq":N} publish the pending epoch under
//	                          the router-assigned fleet sequence (409 on
//	                          stale seq or nothing pending), or
//	                          {"seq":N,"abort":true} abort: discard any
//	                          pending freeze and roll back a publish of
//	                          seq N that already landed
//	GET  /v1/shard/epoch    → {"seq":..,"frozen":..,"size":..,
//	                          "api_version":"v1"} health/epoch probe
//
// Every other request is delegated to the serving handler with the
// EpochHeader set, so the router can verify which epoch answered.
//
// The admin also owns shard-local mutator quiescence: churn must run
// inside WithMutators, which blocks while an epoch is frozen — the
// cross-process equivalent of the single-process rule that AdvanceEpoch
// is called with mutators quiescent.
type ShardAdmin struct {
	ss      *hiddendb.ShardedStore
	serving http.Handler
	opts    AdminOptions

	mu        sync.Mutex
	cond      *sync.Cond
	frozen    bool
	freezeGen uint64 // bumped on every freeze resolution; guards the timeout
}

// NewShardAdmin wraps a serving handler (a webiface.Handler over a
// ShardedIface on ss) with the admin wire.
func NewShardAdmin(ss *hiddendb.ShardedStore, serving http.Handler, opts AdminOptions) *ShardAdmin {
	a := &ShardAdmin{ss: ss, serving: serving, opts: opts}
	a.cond = sync.NewCond(&a.mu)
	return a
}

// WithMutators runs fn while no epoch freeze is pending, blocking churn
// for the duration of a handshake's freeze window. All shard mutations
// must go through it; the freeze handler takes the same lock, so a
// freeze waits for an in-flight mutation and a mutation waits for the
// frozen epoch to be published or aborted.
func (a *ShardAdmin) WithMutators(fn func() error) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	for a.frozen {
		a.cond.Wait()
	}
	return fn()
}

// wireShardEpoch is the GET /v1/shard/epoch response body.
type wireShardEpoch struct {
	Seq        uint64 `json:"seq"`
	Frozen     bool   `json:"frozen"`
	Size       int    `json:"size"`
	APIVersion string `json:"api_version"`
}

// wirePublish is the POST /v1/shard/publish request body.
type wirePublish struct {
	Seq   uint64 `json:"seq"`
	Abort bool   `json:"abort,omitempty"`
}

// wirePublished answers freeze, publish and abort requests.
type wirePublished struct {
	Seq        uint64 `json:"seq"`
	RolledBack bool   `json:"rolled_back,omitempty"`
}

// ServeHTTP routes the admin wire and delegates everything else to the
// serving handler with the epoch header attached.
func (a *ShardAdmin) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	switch r.URL.Path {
	case "/v1/shard/freeze":
		if r.Method != http.MethodPost {
			httpapi.WriteError(w, http.StatusMethodNotAllowed, httpapi.CodeBadRequest, "freeze requires POST")
			return
		}
		a.serveFreeze(w)
	case "/v1/shard/publish":
		if r.Method != http.MethodPost {
			httpapi.WriteError(w, http.StatusMethodNotAllowed, httpapi.CodeBadRequest, "publish requires POST")
			return
		}
		a.servePublish(w, r)
	case "/v1/shard/epoch":
		a.serveEpoch(w)
	default:
		w.Header().Set(EpochHeader, strconv.FormatUint(a.ss.Epoch().Seq(), 10))
		a.serving.ServeHTTP(w, r)
	}
}

func (a *ShardAdmin) serveFreeze(w http.ResponseWriter) {
	a.mu.Lock()
	seq, err := a.ss.FreezeEpoch()
	if err != nil {
		a.mu.Unlock()
		httpapi.WriteError(w, http.StatusConflict, httpapi.CodeConflict, err.Error())
		return
	}
	a.frozen = true
	a.freezeGen++
	gen := a.freezeGen
	a.mu.Unlock()
	if a.opts.FreezeTimeout > 0 {
		time.AfterFunc(a.opts.FreezeTimeout, func() { a.abortStaleFreeze(gen) })
	}
	httpapi.WriteJSON(w, http.StatusOK, wirePublished{Seq: seq})
}

// abortStaleFreeze fires when a freeze's timeout expires: if that same
// freeze is still unresolved (gen matches), discard it and release the
// mutators — the coordinator evidently died mid-handshake.
func (a *ShardAdmin) abortStaleFreeze(gen uint64) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if !a.frozen || a.freezeGen != gen {
		return
	}
	a.ss.AbortEpoch(0)
	a.resolveFreezeLocked()
}

// resolveFreezeLocked marks the pending freeze resolved and wakes
// blocked mutators. Caller holds a.mu.
func (a *ShardAdmin) resolveFreezeLocked() {
	a.frozen = false
	a.freezeGen++
	a.cond.Broadcast()
}

func (a *ShardAdmin) servePublish(w http.ResponseWriter, r *http.Request) {
	var req wirePublish
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpapi.WriteError(w, http.StatusBadRequest, httpapi.CodeBadRequest, "publish decode: "+err.Error())
		return
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if req.Abort {
		rolledBack := a.ss.AbortEpoch(req.Seq)
		a.resolveFreezeLocked()
		httpapi.WriteJSON(w, http.StatusOK, wirePublished{Seq: a.ss.Epoch().Seq(), RolledBack: rolledBack})
		return
	}
	if req.Seq == 0 {
		httpapi.WriteError(w, http.StatusBadRequest, httpapi.CodeBadRequest, "publish requires a nonzero seq")
		return
	}
	e, err := a.ss.PublishPending(req.Seq)
	if err != nil {
		// A stale seq keeps the pending set (and the mutator block) so the
		// coordinator's fleet-wide abort can clean up coherently; nothing
		// pending means there is no freeze to resolve either way.
		status := http.StatusConflict
		if !errors.Is(err, hiddendb.ErrStaleEpochSeq) && !errors.Is(err, hiddendb.ErrNoPendingEpoch) {
			status = http.StatusInternalServerError
		}
		code := httpapi.CodeConflict
		if status == http.StatusInternalServerError {
			code = httpapi.CodeInternal
		}
		httpapi.WriteError(w, status, code, err.Error())
		return
	}
	a.resolveFreezeLocked()
	httpapi.WriteJSON(w, http.StatusOK, wirePublished{Seq: e.Seq()})
}

func (a *ShardAdmin) serveEpoch(w http.ResponseWriter) {
	a.mu.Lock()
	frozen := a.frozen
	a.mu.Unlock()
	httpapi.WriteJSON(w, http.StatusOK, wireShardEpoch{
		Seq:        a.ss.Epoch().Seq(),
		Frozen:     frozen,
		Size:       a.ss.Size(),
		APIVersion: httpapi.Version,
	})
}
