// Command dynagg-track runs the continuous tracking service: it attaches
// one estimator to a live hidden database — a local simulated store with
// churn, or a remote dynagg-serve URL — advances it one budgeted round
// per -round tick, checkpoints estimator state for crash/resume, and
// serves current estimates and round statistics over HTTP.
//
// Usage examples:
//
//	dynagg-track                                        # local sim, RS, round every 10s
//	dynagg-track -remote http://db:8080 -budget 500 \
//	    -round 1h -checkpoint /var/lib/dynagg/track.ckpt
//	dynagg-track -algo REISSUE -workers 8 -rounds 100    # bounded run
//
// While running:
//
//	curl localhost:8090/status     # round, budget, queries, estimates
//	curl localhost:8090/estimates
//	curl localhost:8090/healthz
//	curl localhost:8090/metrics    # Prometheus-style plaintext
//
// Interrupting the process (SIGINT/SIGTERM) drains the status server and
// exits cleanly; with -checkpoint set, restarting resumes the drill-down
// pool from the last completed round instead of rebuilding it.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	dynagg "github.com/dynagg/dynagg"
	"github.com/dynagg/dynagg/internal/obs"
	"github.com/dynagg/dynagg/internal/tracking"
	"github.com/dynagg/dynagg/webiface"
)

// fatal reports a startup error through the structured logger and exits.
func fatal(log *slog.Logger, msg string, err error) {
	log.Error(msg, "error", err)
	os.Exit(1)
}

func main() {
	var (
		remote     = flag.String("remote", "", "remote dynagg-serve base URL (empty = local simulation)")
		addr       = flag.String("addr", ":8090", "status HTTP listen address (empty = disabled)")
		algo       = flag.String("algo", "RS", "estimator: RESTART, REISSUE or RS")
		budget     = flag.Int("budget", 500, "per-round query budget G (0 = unlimited, local only)")
		round      = flag.Duration("round", 10*time.Second, "round cadence")
		rounds     = flag.Int("rounds", 0, "stop after this many rounds (0 = run until interrupted)")
		checkpoint = flag.String("checkpoint", "", "checkpoint file; written after every round, resumed on start")
		workers    = flag.Int("workers", 0, "concurrent drill-down walks per round (0 = DYNAGG_ESTIMATOR_WORKERS or sequential); estimates are identical for every value")
		seed       = flag.Int64("seed", 1, "random seed")
		maxDrills  = flag.Int("max-drills", 2000, "drill-down pool cap (0 = unbounded; unwise for long runs)")
		delta      = flag.Bool("delta", false, "RS: optimise the trans-round delta")

		// Local simulation knobs (ignored with -remote).
		n      = flag.Int("n", 40000, "local sim: dataset size")
		m      = flag.Int("m", 12, "local sim: attributes (<=38)")
		k      = flag.Int("k", 250, "local sim: interface top-k cap")
		init0  = flag.Int("initial", 0, "local sim: initial database size (default 90% of n)")
		insert = flag.Int("insert", 300, "local sim: tuples inserted per round")
		del    = flag.Float64("delete", 0.001, "local sim: fraction deleted per round")

		// Remote client knobs.
		minInterval = flag.Duration("min-interval", 0, "remote: minimum spacing between requests")
		reqTimeout  = flag.Duration("timeout", 15*time.Second, "remote: per-request timeout")
		apiKey      = flag.String("key", "", "remote: X-API-Key for server-side budget accounting")

		logFormat = flag.String("log-format", "text", "log output format: text or json")
		pprofAddr = flag.String("pprof-addr", "", "optional admin listener serving net/http/pprof (empty = disabled)")
	)
	flag.Parse()
	logger, err := obs.NewLogger(*logFormat, os.Stderr)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	slog.SetDefault(logger)
	obs.ServePprof(*pprofAddr, logger)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	cfg := tracking.Config{
		Algorithm:      *algo,
		Aggregates:     []*dynagg.Aggregate{dynagg.CountAll()},
		Budget:         *budget,
		Interval:       *round,
		Seed:           *seed,
		Parallelism:    *workers,
		DeltaTarget:    *delta,
		MaxDrills:      *maxDrills,
		CheckpointPath: *checkpoint,
		MaxRounds:      *rounds,
	}

	var svc *tracking.Service
	if *remote != "" {
		var c *webiface.Client
		c, err = webiface.Dial(*remote, webiface.ClientOptions{
			MinInterval:    *minInterval,
			RequestTimeout: *reqTimeout,
			APIKey:         *apiKey,
		})
		if err != nil {
			fatal(logger, "dial remote", err)
		}
		svc, err = tracking.New(c.Schema(),
			func(g int) tracking.Session { return c.NewSession(g) }, cfg)
	} else {
		if *init0 == 0 {
			*init0 = *n * 9 / 10
		}
		data := dynagg.AutosLikeN(*seed+100, *n, *m)
		env, eerr := dynagg.NewEnv(data, *init0, *seed+101)
		if eerr != nil {
			fatal(logger, "env", eerr)
		}
		iface := dynagg.NewIface(env.Store, *k, nil)
		cfg.PreRound = func(round int) error {
			if round == 1 {
				return nil
			}
			if err := env.InsertFromPool(*insert); err != nil {
				return err
			}
			if err := env.DeleteFraction(*del); err != nil {
				return err
			}
			logger.Info("churn applied", "size", env.Store.Size(), "version", env.Store.Version())
			return nil
		}
		cfg.AnswerCacheStats = iface.CacheStats
		svc, err = tracking.New(iface.Schema(),
			func(g int) tracking.Session { return iface.NewSession(g) }, cfg)
	}
	if err != nil {
		fatal(logger, "tracking service", err)
	}
	if svc.Resumed() {
		logger.Info("resumed from checkpoint", "path", *checkpoint, "round", svc.CurrentView().Round)
	}

	if *addr != "" {
		srv := &http.Server{Addr: *addr, Handler: svc.Handler()}
		go func() {
			logger.Info("status server listening", "addr", *addr)
			if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				logger.Error("status server failed", "error", err)
			}
		}()
		defer func() {
			sctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			_ = srv.Shutdown(sctx)
		}()
	}

	logger.Info("tracking started",
		"algo", *algo, "round", (*round).String(), "budget", *budget, "workers", *workers)
	if err := svc.Run(ctx); err != nil {
		fatal(logger, "run", err)
	}
	v := svc.CurrentView()
	logger.Info("tracking stopped", "round", v.Round, "drill_downs", v.Drills)
	for _, e := range v.Estimates {
		logger.Info("final estimate",
			"aggregate", e.Aggregate, "value", e.Value, "variance", e.Variance, "drills", e.Drills)
	}
}
