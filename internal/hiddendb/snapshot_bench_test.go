package hiddendb

import (
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"testing"

	"github.com/dynagg/dynagg/internal/schema"
)

// The serving fixture: a million-tuple store over 5 attributes with
// domain size 50, built once and shared by every benchmark in this file
// (the store is never mutated here).
const (
	benchN       = 1_000_000
	benchM       = 5
	benchDomain  = 50
	benchK       = 100
	benchPredAtt = benchM - 1 // last attribute: maximally non-prefix
)

var servingFixture struct {
	once sync.Once
	st   *Store
	snap *Snapshot
}

func servingStore(b *testing.B) (*Store, *Snapshot) {
	servingFixture.once.Do(func() {
		sch := schema.Uniform(benchM, benchDomain)
		st := NewStore(sch)
		rng := rand.New(rand.NewSource(1))
		batch := make([]*schema.Tuple, benchN)
		for i := range batch {
			vals := make([]uint16, benchM)
			for a := range vals {
				vals[a] = uint16(rng.Intn(benchDomain))
			}
			batch[i] = &schema.Tuple{ID: uint64(i + 1), Vals: vals}
		}
		if err := st.ApplyBatch(batch, nil); err != nil {
			panic(err)
		}
		snap := st.Snapshot()
		// Warm the last attribute's posting lists so the indexed
		// benchmarks measure steady-state answering, not the one-off
		// lazy build.
		snap.answerWith(NewQuery(Pred{Attr: benchPredAtt, Val: 0}), benchK, DefaultScorer, strategyPostings)
		servingFixture.st, servingFixture.snap = st, snap
	})
	return servingFixture.st, servingFixture.snap
}

// BenchmarkSnapshotPrefixQuery answers selective canonical-prefix queries
// on the million-tuple snapshot (binary-search range path).
func BenchmarkSnapshotPrefixQuery(b *testing.B) {
	_, snap := servingStore(b)
	queries := make([]Query, benchDomain)
	for v := range queries {
		queries[v] = NewQuery(Pred{Attr: 0, Val: uint16(v)}, Pred{Attr: 1, Val: uint16(v)})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		snap.Answer(queries[i%len(queries)], benchK, DefaultScorer)
	}
}

// BenchmarkSnapshotNonPrefixIndexed answers selective non-prefix queries
// (predicate on the last attribute) through the inverted posting lists —
// the path the pre-snapshot engine had to serve with a full O(n) scan.
// Compare against BenchmarkSnapshotNonPrefixScan: the ratio is the
// speedup the index buys at 10^6 tuples (selectivity 1/50 ⇒ ~50×).
func BenchmarkSnapshotNonPrefixIndexed(b *testing.B) {
	_, snap := servingStore(b)
	queries := make([]Query, benchDomain)
	for v := range queries {
		queries[v] = NewQuery(Pred{Attr: benchPredAtt, Val: uint16(v)})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		snap.Answer(queries[i%len(queries)], benchK, DefaultScorer)
	}
}

// BenchmarkSnapshotNonPrefixScan forces the pre-refactor full-scan path
// on the identical queries (the equivalence tests prove the answers are
// byte-identical; only the cost differs).
func BenchmarkSnapshotNonPrefixScan(b *testing.B) {
	_, snap := servingStore(b)
	queries := make([]Query, benchDomain)
	for v := range queries {
		queries[v] = NewQuery(Pred{Attr: benchPredAtt, Val: uint16(v)})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		snap.answerWith(queries[i%len(queries)], benchK, DefaultScorer, strategyScan)
	}
}

// fmtKey is the pre-refactor fmt.Fprintf encoder, kept for the
// allocation comparison below.
func fmtKey(q Query) string {
	var sb strings.Builder
	sb.Grow(len(q.Preds()) * 8)
	for _, p := range q.Preds() {
		fmt.Fprintf(&sb, "%d=%d;", p.Attr, p.Val)
	}
	return sb.String()
}

// BenchmarkQueryKey compares the strconv-based cache-key encoder against
// the fmt-based one it replaced. Key() runs once per search on the hot
// path; -benchmem shows the allocation drop (1 alloc vs 2 per predicate).
func BenchmarkQueryKey(b *testing.B) {
	q := NewQuery(
		Pred{Attr: 0, Val: 3}, Pred{Attr: 2, Val: 300},
		Pred{Attr: 5, Val: 1337}, Pred{Attr: 11, Val: 9},
	)
	b.Run("strconv", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if q.Key() == "" {
				b.Fatal("empty key")
			}
		}
	})
	b.Run("fmt", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if fmtKey(q) == "" {
				b.Fatal("empty key")
			}
		}
	})
}
