// Remote: track a hidden database that lives behind an HTTP API — the
// setting of the paper's live experiments (the authors drove the Amazon
// Product Advertising API and the eBay Finding API; here the "site" is a
// local server exposing a simulated store through webiface's wire format).
//
// Everything downstream of the Searcher interface is identical to local
// tracking: the same REISSUE estimator, the same budget discipline, the
// same estimates. Swapping in a real site means writing a RequestFunc /
// ParseFunc pair for its API.
package main

import (
	"fmt"
	"log"
	"math"
	"net/http/httptest"
	"time"

	dynagg "github.com/dynagg/dynagg"
	"github.com/dynagg/dynagg/webiface"
)

func main() {
	// ---- the "web site": a simulated hidden database behind HTTP ----
	data := dynagg.AutosLikeN(17, 30000, 14)
	env, err := dynagg.NewEnv(data, 27000, 18)
	if err != nil {
		log.Fatal(err)
	}
	site := httptest.NewServer(webiface.NewHandler(dynagg.NewIface(env.Store, 100, nil)))
	defer site.Close()
	fmt.Println("site listening at", site.URL)

	// ---- the third-party tracker: schema discovery + budgeted rounds ----
	client, err := webiface.Dial(site.URL, webiface.ClientOptions{
		MinInterval: time.Millisecond, // polite per-request rate limit
		Retries:     2,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("discovered schema: %d attributes, top-%d interface\n\n",
		client.Schema().M(), client.K())

	tracker, err := dynagg.NewRemoteTracker(client,
		[]*dynagg.Aggregate{dynagg.CountAll()},
		dynagg.TrackerOptions{
			Algorithm: dynagg.AlgoReissue,
			Budget:    300, // the site's per-round quota
			Seed:      19,
		})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("round  truth  estimate  rel.err  http-queries")
	for round := 1; round <= 8; round++ {
		if round > 1 {
			// The site's database changes between rounds.
			if err := env.DeleteFraction(0.01); err != nil {
				log.Fatal(err)
			}
			if err := env.InsertFromPool(400); err != nil {
				log.Fatal(err)
			}
		}
		if err := tracker.Step(); err != nil {
			log.Fatal(err)
		}
		e, _ := tracker.Estimate(0)
		truth := float64(env.Store.Size())
		fmt.Printf("%5d  %5.0f  %8.0f  %6.1f%%  %12d\n",
			round, truth, e.Value, 100*math.Abs(e.Value-truth)/truth, tracker.QueriesLastRound())
	}
}
