// Package webiface connects the estimators to hidden databases that live
// on the other side of an HTTP API — the setting of the paper's live
// experiments (Amazon Product Advertising API, eBay Finding API).
//
// It provides both halves:
//
//   - Client: a hiddendb.Searcher that translates conjunctive queries
//     into HTTP requests, with rate limiting and bounded retries — so a
//     dynagg.Tracker can track a remote database unchanged.
//   - Handler: an http.Handler exposing a simulated hiddendb.Store
//     through the same wire format, used in tests and demos.
//
// The wire format is deliberately tiny: a GET with the conjunctive
// predicates encoded as repeated "where=attr:value" query parameters,
// answered by JSON:
//
//	{"k":100,"overflow":true,"tuples":[{"id":7,"vals":[1,0,3],"aux":[19.5]}]}
//
// Many queries go out in one round trip as a batched POST /v1/search
// (see wireBatchRequest); the server answers the whole batch under a
// single snapshot/epoch pin, charging the per-key budget once per query.
// Errors are the shared JSON envelope of internal/httpapi. All routes
// are mounted under "/v1/" only — the unversioned aliases of the first
// versioned release have been removed and now answer 404 with the
// standard envelope.
//
// Serving is wire-level fast-pathed (encode.go): requests parse into
// pooled scratch, answers memoize their serialized JSON on the shared
// per-version cache entry, and repeat queries under an unchanged
// version are served with a single pre-encoded buffer write. docs/perf.md
// ("Wire fast path") documents the ownership rules.
//
// Real sites need a site-specific request builder and response parser;
// both are injectable (RequestFunc / ParseFunc).
package webiface

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/dynagg/dynagg/internal/hiddendb"
	"github.com/dynagg/dynagg/internal/httpapi"
	"github.com/dynagg/dynagg/internal/metrics"
	"github.com/dynagg/dynagg/internal/obs"
	"github.com/dynagg/dynagg/internal/schema"
)

// wireTuple is the JSON encoding of one returned tuple.
type wireTuple struct {
	ID   uint64    `json:"id"`
	Vals []uint16  `json:"vals"`
	Aux  []float64 `json:"aux,omitempty"`
}

// wireResult is the JSON encoding of a search answer.
type wireResult struct {
	K        int         `json:"k"`
	Overflow bool        `json:"overflow"`
	Tuples   []wireTuple `json:"tuples"`
}

// wireBatchRequest is the JSON body of a batched POST /search: one
// "where" predicate list per query, same "attr:value" strings as the GET
// parameter.
type wireBatchRequest struct {
	Queries []wireBatchQuery `json:"queries"`
}

type wireBatchQuery struct {
	Where []string `json:"where"`
}

// wireBatchResponse answers a batch: one item per query, in order. Each
// item carries either the query's result or a per-query error envelope
// payload (budget exhaustion).
type wireBatchResponse struct {
	K       int             `json:"k"`
	Results []wireBatchItem `json:"results"`
}

type wireBatchItem struct {
	Result *wireResult    `json:"result,omitempty"`
	Error  *httpapi.Error `json:"error,omitempty"`
}

// wireSchema is the JSON encoding of the schema discovery endpoint.
type wireSchema struct {
	K     int        `json:"k"`
	Attrs []wireAttr `json:"attrs"`
}

type wireAttr struct {
	Name     string   `json:"name"`
	Domain   []string `json:"domain"`
	Nullable bool     `json:"nullable,omitempty"`
}

// Backend is the search capability a Handler serves: hiddendb.Iface (one
// store, answers track its current snapshot) or hiddendb.ShardedIface
// (N shards, answers scatter-gathered off the pinned epoch). SearchBatch
// must answer its whole batch under ONE snapshot/epoch pin; Version is a
// serving diagnostic (store version, or epoch sequence when sharded).
//
// The Answer-returning methods power the wire fast path: they expose the
// shared per-version cache entries so the handler can memoize serialized
// JSON next to each Result (hiddendb.Answer.Wire), and LookupAnswer
// probes the cache by raw key bytes without constructing a Query.
// Implementations must keep the fast path observationally equivalent to
// Search — same Result values, same version semantics — so responses are
// byte-identical whether they come off a cache hit, a miss, a
// singleflight winner or a waiter.
type Backend interface {
	Search(q hiddendb.Query) (hiddendb.Result, error)
	SearchBatch(qs []hiddendb.Query) []hiddendb.Result
	SearchAnswer(q hiddendb.Query) (*hiddendb.Answer, error)
	SearchBatchAnswer(qs []hiddendb.Query) []*hiddendb.Answer
	LookupAnswer(key []byte) (*hiddendb.Answer, bool)
	CacheStats() hiddendb.CacheStats
	K() int
	Schema() *schema.Schema
	TotalQueries() uint64
	Version() uint64
}

var _ Backend = (*hiddendb.Iface)(nil)
var _ Backend = (*hiddendb.ShardedIface)(nil)

// Handler exposes a simulated store through the wire format. Routes
// (versioned only — the deprecated unversioned aliases were removed
// after their one-release grace period and return 404 envelopes):
//
//	GET  /v1/schema           → wireSchema
//	GET  /v1/search?where=... → wireResult
//	POST /v1/search           → wireBatchResponse (batched queries, one
//	                            snapshot/epoch pin, one budget charge per
//	                            query)
//	GET  /v1/stats            → wireStats
//	GET  /v1/healthz          → {"status":"ok","api_version":"v1"}
//	GET  /v1/metrics          → Prometheus-style plaintext (query counts,
//	                            serving version, per-key budget accounting,
//	                            per-route latency histograms)
//	GET  /v1/debug/requests   → recent slow/failed requests (trace ID,
//	                            route, outcome, latency), newest first
//
// Errors are the internal/httpapi JSON envelope.
//
// A Handler is safe for concurrent use by any number of clients: queries
// are answered against the backend's immutable snapshot or epoch of the
// current round (both backends are concurrent-reader-safe), and the
// per-API-key budget accounting below is guarded by its own mutex.
// Clients identify themselves with an X-API-Key header (or key= query
// parameter); absent both, they share the anonymous bucket.
type Handler struct {
	b Backend

	mu           sync.Mutex
	perKeyBudget int
	used         map[string]int

	// lat holds the per-route latency histograms /v1/metrics exports as
	// dynagg_serve_request_seconds. Observes are lock-free atomic adds,
	// so the warm-GET alloc budget is untouched; the GET search route is
	// split by answer-cache outcome (hit/miss/error).
	lat struct {
		searchHit, searchMiss, searchErr obs.Histogram
		searchBatch, searchBatchErr      obs.Histogram
		schema, stats                    obs.Histogram
	}
	// reqlog is the fixed-size ring of recent slow/failed requests
	// served at /v1/debug/requests; failures always record, successes
	// only at or above the slow threshold, so the hot path pays two
	// comparisons.
	reqlog *obs.RequestLog
}

// Request-log defaults: big enough to catch a burst, slow enough that a
// healthy warm cache never records (and so never allocates) on the hot
// path.
const (
	DefaultDebugRequests = 64
	DefaultSlowRequest   = 50 * time.Millisecond
)

// NewHandler wraps a search backend for serving.
func NewHandler(b Backend) *Handler {
	return &Handler{
		b:      b,
		used:   make(map[string]int),
		reqlog: obs.NewRequestLog(DefaultDebugRequests, DefaultSlowRequest),
	}
}

// SetRequestLog resizes the /v1/debug/requests ring: size <= 0 disables
// recording, slow <= 0 records every request (tests, short debugging
// sessions). Call before serving — the log is swapped, not drained.
func (h *Handler) SetRequestLog(size int, slow time.Duration) {
	h.reqlog = obs.NewRequestLog(size, slow)
}

// SetPerKeyBudget caps the searches each API key may issue per round
// (g <= 0 means unlimited — the default). Over-budget searches get HTTP
// 429, modelling the database-imposed limit G of paper §2.1.
func (h *Handler) SetPerKeyBudget(g int) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.perKeyBudget = g
}

// ResetBudgets starts a new round: every key's budget is restored.
func (h *Handler) ResetBudgets() {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.used = make(map[string]int)
}

// consumeBudget charges one query to the given key, reporting whether the
// key is still within budget.
func (h *Handler) consumeBudget(key string) bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.perKeyBudget > 0 && h.used[key] >= h.perKeyBudget {
		return false
	}
	h.used[key]++
	return true
}

// ServeHTTP implements http.Handler. Only the versioned "/v1/..." paths
// route; the unversioned aliases of the first versioned release are gone
// and fall through to the 404 envelope like any unknown path.
func (h *Handler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	switch r.URL.Path {
	case "/v1/schema":
		start := time.Now()
		h.serveSchema(w)
		h.lat.schema.Observe(time.Since(start))
	case "/v1/search":
		if r.Method == http.MethodPost {
			h.serveSearchBatch(w, r)
			return
		}
		h.serveSearch(w, r)
	case "/v1/stats":
		start := time.Now()
		h.serveStats(w)
		h.lat.stats.Observe(time.Since(start))
	case "/v1/healthz":
		httpapi.WriteJSON(w, http.StatusOK, map[string]string{
			"status":      "ok",
			"api_version": httpapi.Version,
		})
	case "/v1/metrics":
		h.serveMetrics(w)
	case "/v1/debug/requests":
		h.reqlog.ServeJSON(w)
	default:
		httpapi.WriteError(w, http.StatusNotFound, httpapi.CodeNotFound, "no such route: "+r.URL.Path)
	}
}

// serveMetrics renders serving diagnostics as Prometheus plaintext: the
// lifetime query count, the store version the interface answers for, and
// the per-API-key round-budget accounting (keys emitted in sorted order
// so scrapes are diffable). Like /stats it omits |D| — hiding the size
// is the whole point of the interface.
func (h *Handler) serveMetrics(w http.ResponseWriter) {
	h.mu.Lock()
	budget := h.perKeyBudget
	used := make(map[string]int, len(h.used))
	for k, v := range h.used {
		used[k] = v
	}
	h.mu.Unlock()

	var b metrics.Builder
	b.Family("dynagg_serve_queries_total", "counter", "Lifetime queries answered across all clients.")
	b.Value("dynagg_serve_queries_total", float64(h.b.TotalQueries()))
	b.Family("dynagg_serve_store_version", "gauge", "Store version currently answered from.")
	b.Value("dynagg_serve_store_version", float64(h.b.Version()))
	cs := h.b.CacheStats()
	b.Family("dynagg_serve_answer_cache_hits_total", "counter", "Queries served from the per-version answer cache (including pre-encoded fast-path hits).")
	b.Value("dynagg_serve_answer_cache_hits_total", float64(cs.Hits))
	b.Family("dynagg_serve_answer_cache_misses_total", "counter", "Queries that ran the answering engine (cache misses and cache-bypass paths).")
	b.Value("dynagg_serve_answer_cache_misses_total", float64(cs.Misses))
	b.Family("dynagg_serve_answer_cache_collapsed_total", "counter", "Concurrent identical queries collapsed into another execution's result (singleflight waiters).")
	b.Value("dynagg_serve_answer_cache_collapsed_total", float64(cs.Collapsed))
	b.Family("dynagg_serve_per_key_budget", "gauge", "Per-API-key query budget per round (0 = unlimited).")
	b.Int("dynagg_serve_per_key_budget", budget)
	b.Family("dynagg_serve_key_queries_used", "gauge", "Queries charged to each API key this round.")
	for _, k := range metrics.SortedKeys(used) {
		b.Int("dynagg_serve_key_queries_used", used[k], "key", k)
	}
	b.Family("dynagg_serve_key_budget_remaining", "gauge", "Budget left for each API key this round (-1 when unlimited).")
	for _, k := range metrics.SortedKeys(used) {
		if budget > 0 {
			b.Int("dynagg_serve_key_budget_remaining", budget-used[k], "key", k)
		} else {
			b.Int("dynagg_serve_key_budget_remaining", -1, "key", k)
		}
	}
	b.Family("dynagg_serve_request_seconds", "histogram", "Handler latency by route; GET search is split by answer-cache outcome.")
	bounds := obs.Bounds()
	emit := func(hist *obs.Histogram, labels ...string) {
		s := hist.Snapshot()
		b.Histogram("dynagg_serve_request_seconds", bounds, s.Counts, s.SumSeconds, labels...)
	}
	emit(&h.lat.searchHit, "route", routeSearch, "outcome", outcomeHit)
	emit(&h.lat.searchMiss, "route", routeSearch, "outcome", outcomeMiss)
	emit(&h.lat.searchErr, "route", routeSearch, "outcome", outcomeError)
	emit(&h.lat.searchBatch, "route", routeSearchBatch, "outcome", outcomeBatch)
	emit(&h.lat.searchBatchErr, "route", routeSearchBatch, "outcome", outcomeError)
	emit(&h.lat.schema, "route", "schema")
	emit(&h.lat.stats, "route", "stats")
	w.Header().Set("Content-Type", metrics.ContentType)
	_, _ = b.WriteTo(w)
}

// wireStats is the JSON encoding of the serving diagnostics endpoint.
// It deliberately omits |D| — the whole point of the hidden-database
// model is that clients cannot read the size off the interface.
type wireStats struct {
	K       int    `json:"k"`
	Queries uint64 `json:"queries"`
	Version uint64 `json:"version"`
}

func (h *Handler) serveStats(w http.ResponseWriter) {
	writeJSON(w, wireStats{
		K:       h.b.K(),
		Queries: h.b.TotalQueries(),
		Version: h.b.Version(),
	})
}

// apiKey extracts the client's key from the request.
func apiKey(r *http.Request) string {
	if k := r.Header.Get("X-API-Key"); k != "" {
		return k
	}
	return r.URL.Query().Get("key")
}

func (h *Handler) serveSchema(w http.ResponseWriter) {
	sch := h.b.Schema()
	out := wireSchema{K: h.b.K()}
	for i := 0; i < sch.M(); i++ {
		a := sch.Attr(i)
		out.Attrs = append(out.Attrs, wireAttr{Name: a.Name, Domain: a.Domain, Nullable: a.Nullable})
	}
	writeJSON(w, out)
}

// ParseWhere validates and assembles one query's "attr:value" predicate
// strings against a schema. NewQuery panics on duplicates (trusted-caller
// API), so untrusted wire input is rejected before it gets there. The
// router reuses it so router-side parse errors are byte-identical to a
// shard's.
func ParseWhere(sch *schema.Schema, where []string) (hiddendb.Query, error) {
	var preds []hiddendb.Pred
	seen := make(map[int]bool)
	for _, raw := range where {
		attr, val, err := parsePred(raw)
		if err != nil {
			return hiddendb.Query{}, err
		}
		if attr < 0 || attr >= sch.M() {
			return hiddendb.Query{}, fmt.Errorf("unknown attribute %d", attr)
		}
		if seen[attr] {
			return hiddendb.Query{}, fmt.Errorf("duplicate predicate on attribute %d", attr)
		}
		seen[attr] = true
		preds = append(preds, hiddendb.Pred{Attr: attr, Val: val})
	}
	return hiddendb.NewQuery(preds...), nil
}

func (h *Handler) parseWhere(where []string) (hiddendb.Query, error) {
	return ParseWhere(h.b.Schema(), where)
}

func (h *Handler) wireResultOf(res hiddendb.Result) wireResult {
	out := wireResult{K: h.b.K(), Overflow: res.Overflow}
	for _, t := range res.Tuples {
		out.Tuples = append(out.Tuples, wireTuple{ID: t.ID, Vals: t.Vals, Aux: t.Aux})
	}
	return out
}

// serveSearch answers a single GET query through the wire fast path:
// parse into pooled scratch, charge the budget, probe the answer cache
// by scratch-built key bytes, and serve the pre-encoded body on a hit.
// Only a miss constructs a Query and runs the engine — and even then the
// encode it pays is memoized for every later hit at this version.
func (h *Handler) serveSearch(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	sc := getReqScratch()
	defer putReqScratch(sc)
	qkey, err := h.parseSearchParams(r, sc)
	if err != nil {
		httpapi.WriteError(w, http.StatusBadRequest, httpapi.CodeBadRequest, err.Error())
		h.recordSearchFailure(r, start, routeSearch, http.StatusBadRequest, err.Error())
		return
	}
	key := r.Header.Get("X-API-Key")
	if key == "" {
		key = qkey
	}
	// Charge the budget only for well-formed queries: a request rejected
	// at parse time was never answered, so it must not burn a unit of G.
	if !h.consumeBudget(key) {
		httpapi.WriteError(w, http.StatusTooManyRequests, httpapi.CodeBudgetExhausted,
			"per-round query budget exhausted")
		h.recordSearchFailure(r, start, routeSearch, http.StatusTooManyRequests, "per-round query budget exhausted")
		return
	}
	sortPreds(sc.preds)
	sc.key = hiddendb.AppendPredsKey(sc.key[:0], sc.preds)
	if a, ok := h.b.LookupAnswer(sc.key); ok {
		h.writeAnswer(w, a)
		h.finishSearch(r, start, &h.lat.searchHit, outcomeHit)
		return
	}
	a, err := h.b.SearchAnswer(hiddendb.NewQuery(sc.preds...))
	if err != nil {
		httpapi.WriteError(w, http.StatusInternalServerError, httpapi.CodeInternal, err.Error())
		h.recordSearchFailure(r, start, routeSearch, http.StatusInternalServerError, err.Error())
		return
	}
	h.writeAnswer(w, a)
	h.finishSearch(r, start, &h.lat.searchMiss, outcomeMiss)
}

// Route and outcome label values for dynagg_serve_request_seconds and
// the request log.
const (
	routeSearch      = "search"
	routeSearchBatch = "search_batch"
	outcomeHit       = "hit"
	outcomeMiss      = "miss"
	outcomeError     = "error"
	outcomeBatch     = "batch"
)

// finishSearch closes a successful search: one lock-free histogram
// Observe — no allocation, keeping the warm-GET budget at the single
// response write — plus a ring record only when the request was slow.
func (h *Handler) finishSearch(r *http.Request, start time.Time, hist *obs.Histogram, outcome string) {
	d := time.Since(start)
	hist.Observe(d)
	if h.reqlog.Qualifies(d, false) {
		h.reqlog.Record(obs.RequestRecord{
			Trace:      r.Header.Get(obs.TraceHeader),
			Route:      routeSearch,
			Status:     http.StatusOK,
			DurationMs: obs.DurationMs(d),
			Outcome:    outcome,
			Epoch:      h.b.Version(),
		})
	}
}

// recordSearchFailure observes a failed request into the route's error
// histogram and always records it in the ring — error paths already
// allocate, so the record costs nothing the envelope didn't.
func (h *Handler) recordSearchFailure(r *http.Request, start time.Time, route string, status int, detail string) {
	d := time.Since(start)
	if route == routeSearch {
		h.lat.searchErr.Observe(d)
	} else {
		h.lat.searchBatchErr.Observe(d)
	}
	if h.reqlog.Qualifies(d, true) {
		h.reqlog.Record(obs.RequestRecord{
			Trace:      r.Header.Get(obs.TraceHeader),
			Route:      route,
			Status:     status,
			DurationMs: obs.DurationMs(d),
			Outcome:    outcomeError,
			Epoch:      h.b.Version(),
			Detail:     detail,
		})
	}
}

// serveSearchBatch answers a POST /search: many queries, one round trip,
// one snapshot/epoch pin, one budget charge per query. Any malformed
// query rejects the WHOLE batch with 400 before any budget is charged;
// after that, queries are charged in order and the ones the per-key
// budget cannot cover come back as per-item budget_exhausted errors while
// the covered ones are answered together via Backend.SearchBatch.
// BatchBudgetErrJSON is the pre-rendered wireBatchItem for a query the
// per-key budget could not cover — byte-identical to encoding/json over
// the equivalent envelope payload. Exported so the router splices the
// same bytes for its own per-key budget.
const BatchBudgetErrJSON = `{"error":{"code":"` + httpapi.CodeBudgetExhausted +
	`","message":"per-round query budget exhausted"}}`

// decodeBatch unmarshals a batch body into the pooled scratch's request
// struct. encoding/json decodes into the existing backing array when
// capacity allows and merges into whatever the elements already hold, so
// a query object that omits "where" (a valid match-all query) would
// silently inherit predicates from whichever request last used this
// scratch. Zero every reusable element before decoding.
func decodeBatch(body []byte, sc *reqScratch) error {
	clear(sc.req.Queries[:cap(sc.req.Queries)])
	sc.req.Queries = sc.req.Queries[:0]
	return json.Unmarshal(body, &sc.req)
}

func (h *Handler) serveSearchBatch(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	sc := getReqScratch()
	defer putReqScratch(sc)
	body, err := readBody(r.Body, sc)
	if err != nil {
		httpapi.WriteError(w, http.StatusBadRequest, httpapi.CodeBadRequest, "batch decode: "+err.Error())
		h.recordSearchFailure(r, start, routeSearchBatch, http.StatusBadRequest, "batch decode: "+err.Error())
		return
	}
	if err := decodeBatch(body, sc); err != nil {
		httpapi.WriteError(w, http.StatusBadRequest, httpapi.CodeBadRequest, "batch decode: "+err.Error())
		h.recordSearchFailure(r, start, routeSearchBatch, http.StatusBadRequest, "batch decode: "+err.Error())
		return
	}
	qs := append(sc.qs[:0], make([]hiddendb.Query, len(sc.req.Queries))...)
	sc.qs = qs
	for i, wq := range sc.req.Queries {
		q, err := h.parseWhere(wq.Where)
		if err != nil {
			httpapi.WriteError(w, http.StatusBadRequest, httpapi.CodeBadRequest,
				fmt.Sprintf("query %d: %s", i, err))
			h.recordSearchFailure(r, start, routeSearchBatch, http.StatusBadRequest, err.Error())
			return
		}
		qs[i] = q
	}
	key := apiKey(r)
	charged := make([]hiddendb.Query, 0, len(qs))
	chargedIdx := make([]int, 0, len(qs))
	inBudget := make([]bool, len(qs))
	for i, q := range qs {
		if !h.consumeBudget(key) {
			continue
		}
		inBudget[i] = true
		charged = append(charged, q)
		chargedIdx = append(chargedIdx, i)
	}
	// One epoch/snapshot pin for the whole covered batch; each answer's
	// wire bytes are memoized on its shared cache entry, so the splice
	// below is a copy per item, not an encode per item, once warm.
	answers := make([]*hiddendb.Answer, len(qs))
	for j, a := range h.b.SearchBatchAnswer(charged) {
		answers[chargedIdx[j]] = a
	}
	buf := append(sc.buf[:0], `{"k":`...)
	buf = strconv.AppendInt(buf, int64(h.b.K()), 10)
	buf = append(buf, `,"results":[`...)
	for i := range qs {
		if i > 0 {
			buf = append(buf, ',')
		}
		if !inBudget[i] {
			buf = append(buf, BatchBudgetErrJSON...)
			continue
		}
		buf = append(buf, `{"result":`...)
		buf = append(buf, answers[i].Wire(h.encodeResult)...)
		buf = append(buf, '}')
	}
	buf = append(buf, `]}`...)
	buf = append(buf, '\n')
	sc.buf = buf
	w.Header().Set("Content-Type", "application/json")
	_, _ = w.Write(buf)
	d := time.Since(start)
	h.lat.searchBatch.Observe(d)
	if h.reqlog.Qualifies(d, false) {
		h.reqlog.Record(obs.RequestRecord{
			Trace:      r.Header.Get(obs.TraceHeader),
			Route:      routeSearchBatch,
			Status:     http.StatusOK,
			DurationMs: obs.DurationMs(d),
			Outcome:    outcomeBatch,
			Epoch:      h.b.Version(),
		})
	}
}

func parsePred(raw string) (int, uint16, error) {
	attrS, valS, found := strings.Cut(raw, ":")
	if !found {
		return 0, 0, fmt.Errorf("webiface: bad predicate %q (want attr:value)", raw)
	}
	attr, err := strconv.Atoi(attrS)
	if err != nil {
		return 0, 0, fmt.Errorf("webiface: bad attribute in %q", raw)
	}
	val, err := strconv.ParseUint(valS, 10, 16)
	if err != nil {
		return 0, 0, fmt.Errorf("webiface: bad value in %q", raw)
	}
	return attr, uint16(val), nil
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(v)
}

// RequestFunc builds the HTTP request for a conjunctive query. The
// default encodes the /search?where=attr:value convention.
type RequestFunc func(ctx context.Context, base string, q hiddendb.Query) (*http.Request, error)

// ParseFunc decodes an HTTP response into a search result. The default
// decodes wireResult.
type ParseFunc func(resp *http.Response) (hiddendb.Result, error)

// ClientOptions tunes a Client.
type ClientOptions struct {
	// HTTPClient defaults to a client with a 30s timeout.
	HTTPClient *http.Client
	// MinInterval rate-limits requests (0 = no limit). Real APIs enforce
	// per-second caps on top of daily quotas; the budget G is still the
	// tracker's to manage.
	MinInterval time.Duration
	// Retries is the number of times a failed request is retried with
	// exponential backoff (default 2).
	Retries int
	// RequestTimeout bounds each request attempt (0 = rely on
	// HTTPClient's own timeout). A timed-out attempt is retried;
	// cancellation of the caller's context is not.
	RequestTimeout time.Duration
	// APIKey, when set, is sent as the X-API-Key header so the server
	// can account this client's per-round budget (see Handler).
	APIKey string
	// Request and Parse override the wire format for site-specific APIs.
	Request RequestFunc
	// Parse decodes responses.
	Parse ParseFunc
	// ObserveResponse, when set, is called with every HTTP response the
	// native wire receives, after transport success and before status
	// classification. The multi-process router uses it to watch the
	// X-Dynagg-Epoch header shard daemons attach to their answers. The
	// hook must not read or close the body.
	ObserveResponse func(*http.Response)
}

// Client is a hiddendb.Searcher over HTTP. It is safe for concurrent use
// by multiple goroutines — the rate limiter hands out send slots under a
// mutex — so the estimator execution engine can fan one round's
// drill-down walks out over a single shared client session.
type Client struct {
	base string
	sch  *schema.Schema
	k    int
	http *http.Client
	opts ClientOptions
	// customWire records that the caller injected a site-specific
	// Request/Parse pair; the native batched POST then does not apply and
	// SearchBatch degrades to sequential single-query requests.
	customWire bool

	mu     sync.Mutex // guards nextAt
	nextAt time.Time

	// retries counts request attempts beyond each call's first — the
	// router's observability surface for shard flakiness.
	retries atomic.Uint64
}

// RetryCount returns the total number of retry attempts this client has
// made across all calls (first attempts are free; every backoff-and-
// retry adds one).
func (c *Client) RetryCount() uint64 { return c.retries.Load() }

// BudgetExhaustedError reports an HTTP 429 from the remote database: the
// server-side per-key round budget G is spent. It unwraps to
// hiddendb.ErrBudgetExhausted, so estimators treat it as the normal end
// of a round rather than a failure, and it is never retried (the budget
// only resets at the next round).
type BudgetExhaustedError struct {
	// Status is the server's status line, e.g. "429 Too Many Requests".
	Status string
}

func (e *BudgetExhaustedError) Error() string {
	return "webiface: server budget exhausted: " + e.Status
}

// Unwrap makes errors.Is(err, hiddendb.ErrBudgetExhausted) true.
func (e *BudgetExhaustedError) Unwrap() error { return hiddendb.ErrBudgetExhausted }

// Dial fetches the remote schema and returns a ready client. The client
// speaks the versioned API ("/v1/..." routes) exclusively — the
// unversioned aliases are gone on the server side too.
func Dial(base string, opts ClientOptions) (*Client, error) {
	if opts.HTTPClient == nil {
		opts.HTTPClient = &http.Client{Timeout: 30 * time.Second}
	}
	if opts.Retries == 0 {
		opts.Retries = 2
	}
	custom := opts.Request != nil || opts.Parse != nil
	if opts.Request == nil {
		opts.Request = defaultRequest
	}
	if opts.Parse == nil {
		opts.Parse = defaultParse
	}
	c := &Client{base: strings.TrimRight(base, "/"), http: opts.HTTPClient, opts: opts, customWire: custom}

	resp, err := c.http.Get(c.base + "/" + httpapi.Version + "/schema")
	if err != nil {
		return nil, fmt.Errorf("webiface: schema fetch: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("webiface: schema fetch: %s", resp.Status)
	}
	var ws wireSchema
	if err := json.NewDecoder(resp.Body).Decode(&ws); err != nil {
		return nil, fmt.Errorf("webiface: schema decode: %w", err)
	}
	if len(ws.Attrs) == 0 || ws.K < 1 {
		return nil, fmt.Errorf("webiface: invalid remote schema (m=%d, k=%d)", len(ws.Attrs), ws.K)
	}
	attrs := make([]schema.Attr, len(ws.Attrs))
	for i, a := range ws.Attrs {
		attrs[i] = schema.Attr{Name: a.Name, Domain: a.Domain, Nullable: a.Nullable}
	}
	c.sch = schema.New(attrs)
	c.k = ws.K
	return c, nil
}

// K returns the remote interface's result cap.
func (c *Client) K() int { return c.k }

// Schema returns the remote schema.
func (c *Client) Schema() *schema.Schema { return c.sch }

// Search issues one conjunctive query over HTTP, honouring the rate limit
// and retrying transient failures.
func (c *Client) Search(q hiddendb.Query) (hiddendb.Result, error) {
	return c.SearchContext(context.Background(), q)
}

// SearchContext is Search with caller-controlled cancellation: the rate-
// limit wait, every retry backoff and every request attempt observe ctx.
// ClientOptions.RequestTimeout additionally bounds each attempt; an
// attempt timeout is transient (retried), ctx cancellation is terminal.
func (c *Client) SearchContext(ctx context.Context, q hiddendb.Query) (hiddendb.Result, error) {
	if err := c.waitSlot(ctx); err != nil {
		return hiddendb.Result{}, err
	}
	var lastErr error
	backoff := 100 * time.Millisecond
	for attempt := 0; attempt <= c.opts.Retries; attempt++ {
		if attempt > 0 {
			c.retries.Add(1)
			if err := sleepCtx(ctx, backoff); err != nil {
				return hiddendb.Result{}, err
			}
			backoff *= 2
		}
		res, retryable, err := c.attempt(ctx, q)
		if err == nil {
			return res, nil
		}
		if !retryable {
			return hiddendb.Result{}, err
		}
		lastErr = err
	}
	return hiddendb.Result{}, fmt.Errorf("webiface: search failed after retries: %w", lastErr)
}

// SearchBatch issues many queries as ONE batched POST — one rate-limit
// slot, one round trip, one server-side snapshot/epoch pin. The returned
// items are in query order; per-query budget errors travel inside them
// (unwrapping to hiddendb.ErrBudgetExhausted), while the error return is
// a whole-batch transport failure. Clients built around a site-specific
// wire format (custom Request/Parse) have no batch endpoint and fall back
// to sequential single-query requests.
func (c *Client) SearchBatch(qs []hiddendb.Query) ([]hiddendb.BatchItem, error) {
	return c.SearchBatchContext(context.Background(), qs)
}

// SearchBatchContext is SearchBatch with caller-controlled cancellation,
// mirroring SearchContext's retry/backoff/timeout behaviour. Note that
// retrying a failed batch re-charges the server-side budget for every
// query in it, just as retrying a single query re-charges one.
func (c *Client) SearchBatchContext(ctx context.Context, qs []hiddendb.Query) ([]hiddendb.BatchItem, error) {
	if len(qs) == 0 {
		return nil, nil
	}
	if c.customWire {
		items := make([]hiddendb.BatchItem, len(qs))
		for i, q := range qs {
			r, err := c.SearchContext(ctx, q)
			items[i] = hiddendb.BatchItem{Result: r, Err: err}
		}
		return items, nil
	}
	if err := c.waitSlot(ctx); err != nil {
		return nil, err
	}
	var lastErr error
	backoff := 100 * time.Millisecond
	for attempt := 0; attempt <= c.opts.Retries; attempt++ {
		if attempt > 0 {
			c.retries.Add(1)
			if err := sleepCtx(ctx, backoff); err != nil {
				return nil, err
			}
			backoff *= 2
		}
		items, retryable, err := c.batchAttempt(ctx, qs)
		if err == nil {
			return items, nil
		}
		if !retryable {
			return nil, err
		}
		lastErr = err
	}
	return nil, fmt.Errorf("webiface: batch search failed after retries: %w", lastErr)
}

// batchAttempt performs one batched request/parse cycle against the
// versioned batch endpoint, with the same failure classification as
// attempt.
func (c *Client) batchAttempt(ctx context.Context, qs []hiddendb.Query) (items []hiddendb.BatchItem, retryable bool, err error) {
	actx := ctx
	if c.opts.RequestTimeout > 0 {
		var cancel context.CancelFunc
		actx, cancel = context.WithTimeout(ctx, c.opts.RequestTimeout)
		defer cancel()
	}
	req := wireBatchRequest{Queries: make([]wireBatchQuery, len(qs))}
	for i, q := range qs {
		where := make([]string, 0, q.Len())
		for _, p := range q.Preds() {
			where = append(where, fmt.Sprintf("%d:%d", p.Attr, p.Val))
		}
		req.Queries[i] = wireBatchQuery{Where: where}
	}
	body, err := json.Marshal(req)
	if err != nil {
		return nil, false, err
	}
	hreq, err := http.NewRequestWithContext(actx, http.MethodPost,
		c.base+"/"+httpapi.Version+"/search", bytes.NewReader(body))
	if err != nil {
		return nil, false, err
	}
	hreq.Header.Set("Content-Type", "application/json")
	if c.opts.APIKey != "" {
		hreq.Header.Set("X-API-Key", c.opts.APIKey)
	}
	if id := obs.TraceID(ctx); id != "" {
		// Forward the caller's trace ID so the receiving daemon's request
		// log and logs correlate with the originating router entry.
		hreq.Header.Set(obs.TraceHeader, id)
	}
	resp, err := c.http.Do(hreq)
	if err != nil {
		if ctx.Err() != nil {
			return nil, false, ctx.Err()
		}
		return nil, true, err
	}
	defer resp.Body.Close()
	if c.opts.ObserveResponse != nil {
		c.opts.ObserveResponse(resp)
	}
	switch {
	case resp.StatusCode == http.StatusTooManyRequests:
		return nil, false, &BudgetExhaustedError{Status: resp.Status}
	case resp.StatusCode != http.StatusOK:
		return nil, resp.StatusCode >= 500, statusError("batch search", resp)
	}
	var wr wireBatchResponse
	if err := json.NewDecoder(resp.Body).Decode(&wr); err != nil {
		return nil, true, fmt.Errorf("webiface: batch decode: %w", err)
	}
	if len(wr.Results) != len(qs) {
		return nil, false, fmt.Errorf("webiface: batch answered %d of %d queries", len(wr.Results), len(qs))
	}
	items = make([]hiddendb.BatchItem, len(qs))
	for i, it := range wr.Results {
		switch {
		case it.Error != nil && it.Error.Code == httpapi.CodeBudgetExhausted:
			items[i].Err = &BudgetExhaustedError{Status: it.Error.Message}
		case it.Error != nil:
			e := *it.Error
			items[i].Err = fmt.Errorf("webiface: batch item %d: %w", i, &e)
		case it.Result != nil:
			items[i].Result = resultFromWire(*it.Result)
		default:
			items[i].Err = fmt.Errorf("webiface: batch item %d: empty", i)
		}
	}
	return items, false, nil
}

// attempt performs one request/parse cycle, classifying failures as
// retryable (transient network/server trouble) or terminal.
func (c *Client) attempt(ctx context.Context, q hiddendb.Query) (res hiddendb.Result, retryable bool, err error) {
	actx := ctx
	if c.opts.RequestTimeout > 0 {
		var cancel context.CancelFunc
		actx, cancel = context.WithTimeout(ctx, c.opts.RequestTimeout)
		defer cancel()
	}
	req, err := c.opts.Request(actx, c.base, q)
	if err != nil {
		return hiddendb.Result{}, false, err
	}
	if c.opts.APIKey != "" {
		req.Header.Set("X-API-Key", c.opts.APIKey)
	}
	if id := obs.TraceID(ctx); id != "" {
		// Forward the caller's trace ID (see batchAttempt).
		req.Header.Set(obs.TraceHeader, id)
	}
	resp, err := c.http.Do(req)
	if err != nil {
		if ctx.Err() != nil {
			// The caller cancelled; the per-attempt timeout alone stays
			// retryable.
			return hiddendb.Result{}, false, ctx.Err()
		}
		return hiddendb.Result{}, true, err
	}
	defer resp.Body.Close()
	if c.opts.ObserveResponse != nil {
		c.opts.ObserveResponse(resp)
	}
	switch {
	case resp.StatusCode == http.StatusTooManyRequests:
		return hiddendb.Result{}, false, &BudgetExhaustedError{Status: resp.Status}
	case resp.StatusCode != http.StatusOK:
		return hiddendb.Result{}, resp.StatusCode >= 500, statusError("search", resp)
	}
	res, err = c.opts.Parse(resp)
	if err != nil {
		return hiddendb.Result{}, true, err
	}
	return res, false, nil
}

// statusError turns a non-200 response into an error, decoding the JSON
// error envelope when the server sent one (legacy plain-text bodies fall
// back to the bare status line).
func statusError(op string, resp *http.Response) error {
	if e, ok := httpapi.DecodeError(resp.Body); ok {
		return fmt.Errorf("webiface: %s: %s: %w", op, resp.Status, &e)
	}
	return fmt.Errorf("webiface: %s: %s", op, resp.Status)
}

// waitSlot claims the next rate-limited send slot and sleeps until it,
// observing ctx. Slots are handed out under the mutex, so concurrent
// callers queue fairly at MinInterval spacing.
func (c *Client) waitSlot(ctx context.Context) error {
	if c.opts.MinInterval <= 0 {
		return ctx.Err()
	}
	c.mu.Lock()
	now := time.Now()
	slot := c.nextAt
	if slot.Before(now) {
		slot = now
	}
	c.nextAt = slot.Add(c.opts.MinInterval)
	c.mu.Unlock()
	return sleepCtx(ctx, time.Until(slot))
}

// sleepCtx sleeps for d unless ctx is done first.
func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

var _ hiddendb.Searcher = (*Client)(nil)

func defaultRequest(ctx context.Context, base string, q hiddendb.Query) (*http.Request, error) {
	vals := url.Values{}
	for _, p := range q.Preds() {
		vals.Add("where", fmt.Sprintf("%d:%d", p.Attr, p.Val))
	}
	u := base + "/" + httpapi.Version + "/search"
	if enc := vals.Encode(); enc != "" {
		u += "?" + enc
	}
	return http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
}

func defaultParse(resp *http.Response) (hiddendb.Result, error) {
	var wr wireResult
	if err := json.NewDecoder(resp.Body).Decode(&wr); err != nil {
		return hiddendb.Result{}, fmt.Errorf("webiface: result decode: %w", err)
	}
	return resultFromWire(wr), nil
}

// resultFromWire converts a decoded wire result to the engine type.
func resultFromWire(wr wireResult) hiddendb.Result {
	out := hiddendb.Result{Overflow: wr.Overflow}
	for _, t := range wr.Tuples {
		out.Tuples = append(out.Tuples, &schema.Tuple{ID: t.ID, Vals: t.Vals, Aux: t.Aux})
	}
	return out
}

// Session wraps the client with a per-round budget, mirroring
// hiddendb.Session for remote databases. Budget accounting is atomic, so
// one Session may be shared by the estimator execution engine's bounded
// fan-out (several goroutines issuing one round's drill-down walks over
// the same client).
type Session struct {
	c  *Client
	bc *hiddendb.BudgetCounter
}

// NewSession starts a budgeted round against the remote database.
func (c *Client) NewSession(g int) *Session {
	return &Session{c: c, bc: hiddendb.NewBudgetCounter(g)}
}

// ConcurrentSearchable reports that concurrent Search calls are safe.
func (s *Session) ConcurrentSearchable() bool { return true }

// Search issues one query, consuming budget.
func (s *Session) Search(q hiddendb.Query) (hiddendb.Result, error) {
	if _, ok := s.bc.Claim(); !ok {
		return hiddendb.Result{}, hiddendb.ErrBudgetExhausted
	}
	return s.c.Search(q)
}

// SearchBatch issues many queries as one batched round trip, claiming
// budget per query in order: queries past the point of exhaustion come
// back with hiddendb.ErrBudgetExhausted in their item, exactly as the
// sequential path would fail them. The error return is a whole-batch
// transport failure (no per-query attribution possible).
func (s *Session) SearchBatch(qs []hiddendb.Query) ([]hiddendb.BatchItem, error) {
	items := make([]hiddendb.BatchItem, len(qs))
	claimed := make([]hiddendb.Query, 0, len(qs))
	claimedIdx := make([]int, 0, len(qs))
	for i, q := range qs {
		if _, ok := s.bc.Claim(); !ok {
			items[i].Err = hiddendb.ErrBudgetExhausted
			continue
		}
		claimed = append(claimed, q)
		claimedIdx = append(claimedIdx, i)
	}
	if len(claimed) > 0 {
		got, err := s.c.SearchBatch(claimed)
		if err != nil {
			return nil, err
		}
		for j, it := range got {
			items[claimedIdx[j]] = it
		}
	}
	return items, nil
}

// K returns the remote cap.
func (s *Session) K() int { return s.c.K() }

// Schema returns the remote schema.
func (s *Session) Schema() *schema.Schema { return s.c.Schema() }

// Used returns the queries issued this round.
func (s *Session) Used() int { return s.bc.Used() }

// Remaining returns the unused budget (negative when unlimited).
func (s *Session) Remaining() int { return s.bc.Remaining() }

// Budget returns the round's budget G.
func (s *Session) Budget() int { return s.bc.Budget() }

var _ hiddendb.ConcurrentSearcher = (*Session)(nil)
var _ hiddendb.BatchSearcher = (*Session)(nil)
