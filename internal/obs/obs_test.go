package obs

import (
	"context"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestBucketIndex pins the fixed layout: every bound's edge cases land
// in the bucket whose upper bound covers them, zero and negatives in
// the first, and the overflow above the last bound.
func TestBucketIndex(t *testing.T) {
	cases := []struct {
		d    time.Duration
		want int
	}{
		{-time.Second, 0},
		{0, 0},
		{1, 0},
		{1024, 0},                   // exactly the first bound
		{1025, 1},                   // just past it
		{2048, 1},                   // exactly the second bound
		{2049, 2},                   // just past it
		{time.Hour, NumBounds},      // way above the last bound → overflow
		{time.Microsecond, 0},       // 1000ns ≤ 1024ns
		{time.Millisecond, 10},      // 1e6 ns ∈ (2^19, 2^20]
		{100 * time.Microsecond, 7}, // 1e5 ns ∈ (2^16, 2^17]
	}
	for _, c := range cases {
		if got := bucketIndex(c.d); got != c.want {
			t.Errorf("bucketIndex(%v) = %d, want %d", c.d, got, c.want)
		}
	}
	// The exact last bound lands in the last finite bucket; one past it
	// overflows.
	lastBound := time.Duration(uint64(1) << (histMinShift + NumBounds - 1))
	if got := bucketIndex(lastBound); got != NumBounds-1 {
		t.Errorf("bucketIndex(last bound %v) = %d, want %d", lastBound, got, NumBounds-1)
	}
	if got := bucketIndex(lastBound + 1); got != NumBounds {
		t.Errorf("bucketIndex(last bound+1) = %d, want overflow %d", got, NumBounds)
	}
}

// TestBoundsShape: the bound table is strictly increasing, starts at
// 1.024µs and each bound doubles the last — the deterministic layout
// merges and scrapes rely on.
func TestBoundsShape(t *testing.T) {
	b := Bounds()
	if len(b) != NumBounds {
		t.Fatalf("len(Bounds()) = %d, want %d", len(b), NumBounds)
	}
	if b[0] != 1024e-9 {
		t.Errorf("first bound %g, want 1.024e-06", b[0])
	}
	for i := 1; i < len(b); i++ {
		if b[i] != 2*b[i-1] {
			t.Errorf("bound %d = %g, want double of %g", i, b[i], b[i-1])
		}
	}
}

func TestHistogramObserveSnapshot(t *testing.T) {
	var h Histogram
	h.Observe(500 * time.Nanosecond) // bucket 0
	h.Observe(time.Millisecond)      // bucket 10
	h.Observe(time.Hour)             // overflow
	s := h.Snapshot()
	if s.Count != 3 {
		t.Fatalf("count %d, want 3", s.Count)
	}
	if s.Counts[0] != 1 || s.Counts[10] != 1 || s.Counts[NumBounds] != 1 {
		t.Fatalf("unexpected bucket counts: %v", s.Counts)
	}
	wantSum := (500*time.Nanosecond + time.Millisecond + time.Hour).Seconds()
	if diff := s.SumSeconds - wantSum; diff > 1e-12 || diff < -1e-12 {
		t.Fatalf("sum %g, want %g", s.SumSeconds, wantSum)
	}

	var other Histogram
	other.Observe(time.Millisecond)
	o := other.Snapshot()
	s.Merge(o)
	if s.Count != 4 || s.Counts[10] != 2 {
		t.Fatalf("after merge: count=%d counts=%v", s.Count, s.Counts)
	}
}

// TestHistogramObserveAllocs: Observe is the hot-path primitive — it
// must not allocate (the webiface warm-GET ≤1-alloc budget depends on
// it).
func TestHistogramObserveAllocs(t *testing.T) {
	var h Histogram
	if n := testing.AllocsPerRun(1000, func() { h.Observe(42 * time.Microsecond) }); n != 0 {
		t.Fatalf("Observe allocates %.1f times per call, want 0", n)
	}
}

// TestHistogramConcurrent hammers one histogram from many goroutines —
// the lock-freedom proof under make race — and checks no sample is
// lost.
func TestHistogramConcurrent(t *testing.T) {
	var h Histogram
	const workers, per = 8, 5000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(time.Duration(w*1000+i) * time.Microsecond)
			}
		}(w)
	}
	wg.Wait()
	if s := h.Snapshot(); s.Count != workers*per {
		t.Fatalf("count %d, want %d", s.Count, workers*per)
	}
}

func TestNewTraceID(t *testing.T) {
	seen := make(map[string]bool)
	for i := 0; i < 1000; i++ {
		id := NewTraceID()
		if len(id) != 16 {
			t.Fatalf("trace ID %q: want 16 hex chars", id)
		}
		if seen[id] {
			t.Fatalf("duplicate trace ID %q", id)
		}
		seen[id] = true
	}
}

func TestTraceContext(t *testing.T) {
	ctx := context.Background()
	if got := TraceID(ctx); got != "" {
		t.Fatalf("empty context trace = %q", got)
	}
	ctx = WithTrace(ctx, "abc123")
	if got := TraceID(ctx); got != "abc123" {
		t.Fatalf("trace = %q, want abc123", got)
	}
	if got := TraceID(WithTrace(context.Background(), "")); got != "" {
		t.Fatalf("empty trace should not be stored, got %q", got)
	}
}

func TestRequestLogRingAndThreshold(t *testing.T) {
	l := NewRequestLog(3, 50*time.Millisecond)
	if l.Qualifies(time.Millisecond, false) {
		t.Error("fast success should not qualify")
	}
	if !l.Qualifies(time.Millisecond, true) {
		t.Error("failure must always qualify")
	}
	if !l.Qualifies(60*time.Millisecond, false) {
		t.Error("slow success must qualify")
	}
	for i := 1; i <= 5; i++ {
		l.Record(RequestRecord{Route: "search", Status: 200, DurationMs: float64(i)})
	}
	recs := l.Snapshot()
	if len(recs) != 3 {
		t.Fatalf("ring kept %d records, want 3", len(recs))
	}
	// Newest first: durations 5, 4, 3.
	for i, want := range []float64{5, 4, 3} {
		if recs[i].DurationMs != want {
			t.Errorf("record %d duration %v, want %v", i, recs[i].DurationMs, want)
		}
	}

	// Disabled and nil logs are inert.
	var nilLog *RequestLog
	if nilLog.Qualifies(time.Hour, true) {
		t.Error("nil log must not qualify")
	}
	nilLog.Record(RequestRecord{})
	disabled := NewRequestLog(0, 0)
	if disabled.Qualifies(time.Hour, true) {
		t.Error("disabled log must not qualify")
	}
	disabled.Record(RequestRecord{})
	if got := disabled.Snapshot(); got != nil {
		t.Errorf("disabled snapshot = %v, want nil", got)
	}

	// slow <= 0 records everything.
	all := NewRequestLog(2, 0)
	if !all.Qualifies(0, false) {
		t.Error("zero threshold should record every request")
	}
}

func TestRequestLogServeJSON(t *testing.T) {
	l := NewRequestLog(4, 25*time.Millisecond)
	l.Record(RequestRecord{
		Trace: "deadbeef", Route: "search", Status: 200, DurationMs: 31.5,
		Outcome: "miss", Epoch: 7,
		Shards: []ShardTiming{{Shard: 0, DurationMs: 30.1}, {Shard: 1, DurationMs: 12.0, Error: "timeout"}},
	})
	rec := httptest.NewRecorder()
	l.ServeJSON(rec)
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("content type %q", ct)
	}
	var body struct {
		SlowThresholdMs float64         `json:"slow_threshold_ms"`
		Records         []RequestRecord `json:"records"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatal(err)
	}
	if body.SlowThresholdMs != 25 {
		t.Errorf("slow_threshold_ms = %v, want 25", body.SlowThresholdMs)
	}
	if len(body.Records) != 1 || body.Records[0].Trace != "deadbeef" || len(body.Records[0].Shards) != 2 {
		t.Fatalf("unexpected records: %+v", body.Records)
	}

	// An empty ring serialises records as [], not null.
	empty := httptest.NewRecorder()
	NewRequestLog(2, 0).ServeJSON(empty)
	if !strings.Contains(empty.Body.String(), `"records":[]`) {
		t.Errorf("empty ring body: %s", empty.Body.String())
	}
}

func TestNewLogger(t *testing.T) {
	var sb strings.Builder
	log, err := NewLogger("json", &sb)
	if err != nil {
		t.Fatal(err)
	}
	log.Info("hello", "trace", "abc")
	var m map[string]any
	if err := json.Unmarshal([]byte(sb.String()), &m); err != nil {
		t.Fatalf("json log line not JSON: %v (%s)", err, sb.String())
	}
	if m["msg"] != "hello" || m["trace"] != "abc" {
		t.Fatalf("unexpected log line: %v", m)
	}

	sb.Reset()
	log, err = NewLogger("text", &sb)
	if err != nil {
		t.Fatal(err)
	}
	log.Info("hello")
	if !strings.Contains(sb.String(), "msg=hello") {
		t.Fatalf("text log line: %s", sb.String())
	}

	if _, err := NewLogger("xml", nil); err == nil {
		t.Fatal("want error for unknown format")
	}
}
