package fleet

import (
	"reflect"
	"testing"
)

func claims(ws ...int) []claim {
	out := make([]claim, len(ws))
	for i, w := range ws {
		out[i] = claim{id: string(rune('a' + i)), weight: w}
	}
	return out
}

func TestAllocateEqualWeights(t *testing.T) {
	got := allocate(900, claims(1, 1, 1))
	if want := []int{300, 300, 300}; !reflect.DeepEqual(got, want) {
		t.Fatalf("allocate = %v, want %v", got, want)
	}
}

func TestAllocateWeighted(t *testing.T) {
	got := allocate(600, claims(1, 2, 3))
	if want := []int{100, 200, 300}; !reflect.DeepEqual(got, want) {
		t.Fatalf("allocate = %v, want %v", got, want)
	}
}

func TestAllocateRemainderByID(t *testing.T) {
	// 10 over 3 equal tasks: floors give 3 each, the leftover unit goes
	// to the lowest task ID.
	got := allocate(10, claims(1, 1, 1))
	if want := []int{4, 3, 3}; !reflect.DeepEqual(got, want) {
		t.Fatalf("allocate = %v, want %v", got, want)
	}
}

func TestAllocateFewerUnitsThanTasks(t *testing.T) {
	got := allocate(2, claims(1, 1, 1))
	if want := []int{1, 1, 0}; !reflect.DeepEqual(got, want) {
		t.Fatalf("allocate = %v, want %v", got, want)
	}
	if sum(got) != 2 {
		t.Fatalf("allocated %d of 2", sum(got))
	}
}

func TestAllocateCapRedistributes(t *testing.T) {
	cs := claims(1, 1, 1)
	cs[0].cap = 50 // task a cannot absorb its fair 100
	got := allocate(300, cs)
	if got[0] != 50 {
		t.Fatalf("capped task got %d, want 50", got[0])
	}
	if sum(got) != 300 {
		t.Fatalf("allocated %d of 300: %v", sum(got), got)
	}
	if got[1] != 125 || got[2] != 125 {
		t.Fatalf("cap excess not split evenly: %v", got)
	}
}

func TestAllocateAllCapped(t *testing.T) {
	cs := claims(1, 1)
	cs[0].cap, cs[1].cap = 10, 20
	got := allocate(1000, cs)
	if want := []int{10, 20}; !reflect.DeepEqual(got, want) {
		t.Fatalf("allocate = %v, want %v (leftover stays unused)", got, want)
	}
}

func TestAllocateUnlimitedFleet(t *testing.T) {
	cs := claims(1, 1)
	cs[1].cap = 70
	got := allocate(0, cs)
	// Unlimited fleet: each task gets its own cap (0 = unlimited round).
	if want := []int{0, 70}; !reflect.DeepEqual(got, want) {
		t.Fatalf("allocate = %v, want %v", got, want)
	}
}

func TestAllocateDeterministic(t *testing.T) {
	cs := claims(3, 1, 2, 5, 1)
	cs[3].cap = 40
	first := allocate(777, cs)
	for i := 0; i < 50; i++ {
		if got := allocate(777, cs); !reflect.DeepEqual(got, first) {
			t.Fatalf("allocation not deterministic: %v vs %v", got, first)
		}
	}
	if sum(first) != 777 {
		t.Fatalf("allocated %d of 777: %v", sum(first), first)
	}
}

func sum(xs []int) int {
	s := 0
	for _, x := range xs {
		s += x
	}
	return s
}
