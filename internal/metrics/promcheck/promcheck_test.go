package promcheck

import (
	"strings"
	"testing"

	"github.com/dynagg/dynagg/internal/metrics"
)

const validDoc = `# HELP a_total Things counted.
# TYPE a_total counter
a_total 5
# HELP temp_c Current temperature.
# TYPE temp_c gauge
temp_c{site="lab",kind="x\"y\\z\n"} -3.25
temp_c{site="roof"} 1e-3
# HELP lat_seconds Request latency.
# TYPE lat_seconds histogram
lat_seconds_bucket{route="a",le="0.1"} 1
lat_seconds_bucket{route="a",le="0.5"} 1
lat_seconds_bucket{route="a",le="+Inf"} 3
lat_seconds_sum{route="a"} 0.75
lat_seconds_count{route="a"} 3
lat_seconds_bucket{route="b",le="0.1"} 0
lat_seconds_bucket{route="b",le="+Inf"} 0
lat_seconds_sum{route="b"} 0
lat_seconds_count{route="b"} 0
`

func TestValidateAccepts(t *testing.T) {
	if err := Validate(validDoc); err != nil {
		t.Fatalf("valid document rejected: %v", err)
	}
}

func TestValidateAcceptsBuilderOutput(t *testing.T) {
	// The validator must accept what the repo's own Builder emits —
	// including an unlabeled histogram and escaped label values.
	var b metrics.Builder
	b.Family("x_total", "counter", "Total xs.")
	b.Int("x_total", 7, "name", `quo"te\back`)
	b.Family("d_seconds", "histogram", "Durations.")
	b.Histogram("d_seconds", []float64{0.001, 0.01, 0.1}, []uint64{1, 2, 0, 1}, 0.123)
	b.Histogram("d_seconds", []float64{0.001, 0.01, 0.1}, []uint64{0, 0, 0, 0}, 0, "shard", "1")
	var sb strings.Builder
	if _, err := b.WriteTo(&sb); err != nil {
		t.Fatal(err)
	}
	if err := Validate(sb.String()); err != nil {
		t.Fatalf("builder output rejected: %v\n%s", err, sb.String())
	}
}

func TestValidateRejects(t *testing.T) {
	cases := []struct {
		name string
		doc  string
		want string // substring of the expected error
	}{
		{"empty", "", "empty document"},
		{"no trailing newline", "# HELP a A.\n# TYPE a counter\na 1", "does not end with a newline"},
		{"blank line", "# HELP a A.\n# TYPE a counter\n\na 1\n", "blank line"},
		{"type without help", "# TYPE a counter\na 1\n", "without an immediately preceding HELP"},
		{"help never typed", "# HELP a A.\na 1\n", "not followed by its TYPE"},
		{"help dangling at EOF", "# HELP a A.\n# TYPE a counter\na 1\n# HELP b B.\n", "not followed by its TYPE"},
		{"mismatched type name", "# HELP a A.\n# TYPE b counter\nb 1\n", "without an immediately preceding HELP"},
		{"unknown type", "# HELP a A.\n# TYPE a meter\na 1\n", "unknown metric type"},
		{"plain comment", "# just a note\n", "neither HELP nor TYPE"},
		{"sample before family", "a 1\n", "sample before any family"},
		{"sample outside family", "# HELP a A.\n# TYPE a counter\nz 1\n", `sample "z" under family "a"`},
		{"duplicate family", "# HELP a A.\n# TYPE a counter\na 1\n# HELP a A.\n# TYPE a counter\na 2\n", "declared twice"},
		{"invalid metric name", "# HELP 9a A.\n# TYPE 9a counter\n9a 1\n", "invalid metric name"},
		{"invalid label name", "# HELP a A.\n# TYPE a counter\na{9x=\"v\"} 1\n", "invalid label name"},
		{"reserved label name", "# HELP a A.\n# TYPE a counter\na{__x=\"v\"} 1\n", "invalid label name"},
		{"duplicate label", "# HELP a A.\n# TYPE a counter\na{x=\"v\",x=\"w\"} 1\n", "duplicate label"},
		{"unquoted label value", "# HELP a A.\n# TYPE a counter\na{x=v} 1\n", "not quoted"},
		{"unterminated label value", "# HELP a A.\n# TYPE a counter\na{x=\"v} 1\n", "unterminated"},
		{"bad escape", "# HELP a A.\n# TYPE a counter\na{x=\"\\t\"} 1\n", "invalid escape"},
		{"unterminated label set", "# HELP a A.\n# TYPE a counter\na{x=\"v\" 1\n", "unexpected"},
		{"missing value", "# HELP a A.\n# TYPE a counter\na\n", "malformed sample"},
		{"unparseable value", "# HELP a A.\n# TYPE a counter\na one\n", "unparseable value"},
		{"trailing timestamp", "# HELP a A.\n# TYPE a counter\na 1 12345\n", "malformed value"},
		{
			"bucket without le",
			"# HELP h H.\n# TYPE h histogram\nh_bucket 1\nh_bucket{le=\"+Inf\"} 1\nh_sum 0\nh_count 1\n",
			"without le label",
		},
		{
			"unparseable le",
			"# HELP h H.\n# TYPE h histogram\nh_bucket{le=\"abc\"} 1\n",
			"unparseable le",
		},
		{
			"non-ascending bounds",
			"# HELP h H.\n# TYPE h histogram\nh_bucket{le=\"0.5\"} 1\nh_bucket{le=\"0.1\"} 2\n",
			"not ascending",
		},
		{
			"non-monotone buckets",
			"# HELP h H.\n# TYPE h histogram\nh_bucket{le=\"0.1\"} 3\nh_bucket{le=\"0.5\"} 2\n",
			"not monotone",
		},
		{
			"missing +Inf",
			"# HELP h H.\n# TYPE h histogram\nh_bucket{le=\"0.1\"} 1\nh_sum 0.1\nh_count 1\n",
			`missing le="+Inf"`,
		},
		{
			"count disagrees with +Inf",
			"# HELP h H.\n# TYPE h histogram\nh_bucket{le=\"+Inf\"} 3\nh_sum 0.1\nh_count 2\n",
			"_count absent or != +Inf",
		},
		{
			"missing count",
			"# HELP h H.\n# TYPE h histogram\nh_bucket{le=\"+Inf\"} 3\nh_sum 0.1\n",
			"_count absent",
		},
		{
			"missing sum",
			"# HELP h H.\n# TYPE h histogram\nh_bucket{le=\"+Inf\"} 0\nh_count 0\n",
			"missing _sum",
		},
		{
			"stray histogram sample",
			"# HELP h H.\n# TYPE h histogram\nh_quantile 1\n",
			"under histogram family",
		},
		{
			"incomplete before next family",
			"# HELP h H.\n# TYPE h histogram\nh_bucket{le=\"0.1\"} 1\n# HELP a A.\n# TYPE a counter\na 1\n",
			`missing le="+Inf"`,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := Validate(tc.doc)
			if err == nil {
				t.Fatalf("invalid document accepted:\n%s", tc.doc)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}
