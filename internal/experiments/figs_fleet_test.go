package experiments

import "testing"

// TestFleetEquivalenceScenario regenerates the "fleet" scenario, whose
// runner errors if any fleet estimate differs from its standalone twin
// by a single bit — so this test IS the cross-layer determinism check.
func TestFleetEquivalenceScenario(t *testing.T) {
	fig, err := Run("fleet", Options{Seed: 3, Parallelism: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) == 0 || len(fig.Series[0].Y) == 0 {
		t.Fatalf("empty figure: %+v", fig)
	}
}
