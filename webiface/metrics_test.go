package webiface

import (
	"io"
	"net/http"
	"strings"
	"testing"
)

// TestMetricsEndpoint exercises the Prometheus-plaintext serving
// diagnostics: query counts, store version and per-key budget
// accounting, with keys emitted in sorted order.
func TestMetricsEndpoint(t *testing.T) {
	_, srv := newServer(t, 11, 2000, 50)
	defer srv.Close()

	// Issue a couple of searches under two keys so the per-key families
	// have content.
	for _, key := range []string{"alpha", "beta", "alpha"} {
		req, err := http.NewRequest(http.MethodGet, srv.URL+"/v1/search", nil)
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("X-API-Key", key)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("search: %d", resp.StatusCode)
		}
	}

	resp, err := http.Get(srv.URL + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	raw, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	body := string(raw)
	if got := resp.Header.Get("Content-Type"); !strings.HasPrefix(got, "text/plain") {
		t.Fatalf("content type %q", got)
	}
	for _, want := range []string{
		"dynagg_serve_queries_total 3",
		"dynagg_serve_store_version",
		"dynagg_serve_per_key_budget 0",
		`dynagg_serve_key_queries_used{key="alpha"} 2`,
		`dynagg_serve_key_queries_used{key="beta"} 1`,
		`dynagg_serve_key_budget_remaining{key="alpha"} -1`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics missing %q:\n%s", want, body)
		}
	}
	// Keys must appear in sorted order for diffable scrapes.
	if strings.Index(body, `key="alpha"`) > strings.Index(body, `key="beta"`) {
		t.Error("per-key samples not sorted")
	}
}
