package estimator

import (
	"bytes"
	"errors"
	"testing"

	"github.com/dynagg/dynagg/internal/agg"
	"github.com/dynagg/dynagg/internal/hiddendb"
)

var errSiteDown = errors.New("simulated terminal site failure")

// depthFailSession wraps a real session and fails every query carrying
// at least failDepth predicates with a terminal (non-budget) error. The
// failure depends only on the query itself — never on cross-walk timing
// — so the set of walks that err, and therefore the speculative-waste
// count, is deterministic for every worker count.
type depthFailSession struct {
	*hiddendb.Session
	failDepth int
}

func (s *depthFailSession) Search(q hiddendb.Query) (hiddendb.Result, error) {
	if len(q.Preds()) >= s.failDepth {
		// Burn the budget unit like a real failed issuance would.
		if _, err := s.Session.Search(q); err != nil {
			return hiddendb.Result{}, err
		}
		return hiddendb.Result{}, errSiteDown
	}
	return s.Session.Search(q)
}

func (s *depthFailSession) ConcurrentSearchable() bool { return true }

var _ hiddendb.ConcurrentSearcher = (*depthFailSession)(nil)
var _ Session = (*depthFailSession)(nil)

// wasteAfterFailedStep runs one RESTART round against a session that
// terminally fails every depth-1 query and returns the estimator's
// wasted-query counter.
func wasteAfterFailedStep(t *testing.T, par int) int {
	t.Helper()
	te := newTestEnv(t, 61, 6000, 5400, 100)
	c := cfg(61 + 7)
	c.Parallelism = par
	e, err := NewRestart(te.env.Store.Schema(), []*agg.Aggregate{agg.CountAll()}, c)
	if err != nil {
		t.Fatal(err)
	}
	sess := &depthFailSession{Session: te.iface.NewSession(400), failDepth: 1}
	if err := e.Step(sess); !errors.Is(err, errSiteDown) {
		t.Fatalf("Step error = %v, want %v", err, errSiteDown)
	}
	return e.WastedQueries()
}

// TestWastedQueriesCountsWaveAborts closes the ROADMAP speculative-
// issuance item: when a concurrently issued wave aborts on a terminal
// error, the queries spent by the speculatively-run later walks are
// counted — deterministically across worker counts — while sequential
// execution wastes nothing.
func TestWastedQueriesCountsWaveAborts(t *testing.T) {
	if got := wasteAfterFailedStep(t, 1); got != 0 {
		t.Fatalf("sequential execution wasted %d queries, want 0", got)
	}
	w4 := wasteAfterFailedStep(t, 4)
	if w4 == 0 {
		t.Fatal("concurrent wave abort wasted 0 queries, expected > 0")
	}
	if w8 := wasteAfterFailedStep(t, 8); w8 != w4 {
		t.Fatalf("waste not deterministic across worker counts: par=4 → %d, par=8 → %d", w4, w8)
	}
}

// TestWastedQueriesSurvivesCheckpoint verifies the counter rides the
// persistence snapshot like every other lifetime stat.
func TestWastedQueriesSurvivesCheckpoint(t *testing.T) {
	te := newTestEnv(t, 62, 6000, 5400, 100)
	c := cfg(62 + 7)
	c.Parallelism = 4
	e, err := NewReissue(te.env.Store.Schema(), []*agg.Aggregate{agg.CountAll()}, c)
	if err != nil {
		t.Fatal(err)
	}
	sess := &depthFailSession{Session: te.iface.NewSession(400), failDepth: 1}
	if err := e.Step(sess); !errors.Is(err, errSiteDown) {
		t.Fatalf("Step error = %v, want %v", err, errSiteDown)
	}
	want := e.WastedQueries()
	if want == 0 {
		t.Fatal("no waste recorded before checkpoint")
	}
	var buf bytes.Buffer
	if err := Save(e, &buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf, te.env.Store.Schema(), []*agg.Aggregate{agg.CountAll()}, cfg(99))
	if err != nil {
		t.Fatal(err)
	}
	if got := loaded.WastedQueries(); got != want {
		t.Fatalf("wasted after resume = %d, want %d", got, want)
	}
}
