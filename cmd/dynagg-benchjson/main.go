// Command dynagg-benchjson converts `go test -bench` output on stdin into
// machine-readable JSON, so CI can archive benchmark results as artifacts
// and the repo accumulates a perf trajectory (make bench-serving writes
// BENCH_serving.json).
//
//	go test -run '^$' -bench Serving -benchmem ./... | dynagg-benchjson -out BENCH_serving.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"regexp"
	"strconv"
	"strings"
)

// benchResult is one benchmark line, normalised. The -benchmem pair
// (B/op, allocs/op) is promoted to first-class fields — allocation
// regressions on the serving hot path are tracked as closely as latency,
// and downstream tooling shouldn't have to know the Go unit strings.
type benchResult struct {
	Name        string             `json:"name"`
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  *float64           `json:"bytes_per_op,omitempty"`
	AllocsPerOp *float64           `json:"allocs_per_op,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// report is the whole run.
type report struct {
	Goos    string        `json:"goos,omitempty"`
	Goarch  string        `json:"goarch,omitempty"`
	CPU     string        `json:"cpu,omitempty"`
	Results []benchResult `json:"results"`
}

var benchLine = regexp.MustCompile(`^(Benchmark\S+)\s+(\d+)\s+(.*)$`)

func main() {
	out := flag.String("out", "", "output file (default stdout)")
	flag.Parse()

	rep := report{Results: []benchResult{}}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		fmt.Println(line) // pass through so logs stay readable
		switch {
		case strings.HasPrefix(line, "goos: "):
			rep.Goos = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			rep.Goarch = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "cpu: "):
			rep.CPU = strings.TrimPrefix(line, "cpu: ")
		}
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		iters, err := strconv.ParseInt(m[2], 10, 64)
		if err != nil {
			continue
		}
		r := benchResult{Name: m[1], Iterations: iters, Metrics: map[string]float64{}}
		// The tail alternates "value unit" pairs: 123 ns/op, 456 B/op, ...
		fields := strings.Fields(m[3])
		for i := 0; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				break
			}
			unit := fields[i+1]
			switch unit {
			case "ns/op":
				r.NsPerOp = v
			case "B/op":
				b := v
				r.BytesPerOp = &b
			case "allocs/op":
				a := v
				r.AllocsPerOp = &a
			default:
				r.Metrics[unit] = v
			}
		}
		if len(r.Metrics) == 0 {
			r.Metrics = nil
		}
		rep.Results = append(rep.Results, r)
	}
	if err := sc.Err(); err != nil {
		log.Fatal(err)
	}

	enc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		log.Fatal(err)
	}
	log.Printf("wrote %d benchmark results to %s", len(rep.Results), *out)
}
