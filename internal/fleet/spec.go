package fleet

import (
	"fmt"
	"regexp"
	"strings"

	"github.com/dynagg/dynagg/internal/agg"
	"github.com/dynagg/dynagg/internal/hiddendb"
)

// TaskSpec declares one tracked-aggregate task. It is fully
// JSON-expressible so the same shape serves the manifest file, the
// control-plane POST body and the fleet's persisted state.
type TaskSpec struct {
	// ID names the task; [A-Za-z0-9._-]+, unique in the fleet. It keys
	// the checkpoint file and every deterministic scheduling tie-break.
	ID string `json:"id"`
	// Target names a local target registered in Config.Targets. Empty
	// with exactly one configured target selects that target; mutually
	// exclusive with Remote.
	Target string `json:"target,omitempty"`
	// Remote is a dynagg-serve base URL; the task's sessions come from
	// the fleet's shared client pool.
	Remote string `json:"remote,omitempty"`
	// APIKey is presented to the remote for server-side budget
	// accounting. Tasks sharing Remote AND APIKey share one client.
	APIKey string `json:"api_key,omitempty"`
	// Algorithm picks the estimator: RESTART, REISSUE or RS (default).
	Algorithm string `json:"algorithm,omitempty"`
	// Aggregates declares the tracked aggregates (default: COUNT(*)).
	Aggregates []AggregateSpec `json:"aggregates,omitempty"`
	// Weight is the task's share of the tick budget (default 1).
	Weight int `json:"weight,omitempty"`
	// MaxBudget caps the task's per-round grant (0 = no cap); budget the
	// cap rejects is redistributed to the other tasks.
	MaxBudget int `json:"max_budget,omitempty"`
	// Seed drives the task's estimator randomness.
	Seed int64 `json:"seed,omitempty"`
	// Parallelism bounds the estimator's intra-round drill-down fan-out.
	Parallelism int `json:"parallelism,omitempty"`
	// Pilot overrides RS's bootstrap parameter ϖ (0 = default).
	Pilot int `json:"pilot,omitempty"`
	// MaxDrills bounds the drill-down pool (0 = unlimited).
	MaxDrills int `json:"max_drills,omitempty"`
	// DeltaTarget makes RS optimise the trans-round delta.
	DeltaTarget bool `json:"delta_target,omitempty"`
	// Paused tasks are skipped by the scheduler; their budget share
	// flows to the runnable tasks.
	Paused bool `json:"paused,omitempty"`
}

var idPattern = regexp.MustCompile(`^[A-Za-z0-9._-]+$`)

// validate normalises defaults and rejects malformed specs.
func (s *TaskSpec) validate() error {
	if !idPattern.MatchString(s.ID) {
		return fmt.Errorf("fleet: task id %q must match %s", s.ID, idPattern)
	}
	if s.Target != "" && s.Remote != "" {
		return fmt.Errorf("fleet: task %s sets both target and remote", s.ID)
	}
	if s.Weight == 0 {
		s.Weight = 1
	}
	if s.Weight < 1 {
		return fmt.Errorf("fleet: task %s weight %d < 1", s.ID, s.Weight)
	}
	if s.MaxBudget < 0 {
		// A negative cap would starve the task forever on a budgeted
		// fleet (never "active" in the allocator) yet mean "unlimited"
		// on an unbudgeted one — reject rather than guess.
		return fmt.Errorf("fleet: task %s max_budget %d < 0", s.ID, s.MaxBudget)
	}
	switch s.Algorithm {
	case "", "RS", "REISSUE", "RESTART":
	default:
		return fmt.Errorf("fleet: task %s: unknown algorithm %q", s.ID, s.Algorithm)
	}
	if _, err := s.buildAggregates(); err != nil {
		return err
	}
	return nil
}

// buildAggregates materialises the declared aggregates (COUNT(*) when
// none are declared).
func (s *TaskSpec) buildAggregates() ([]*agg.Aggregate, error) {
	if len(s.Aggregates) == 0 {
		return []*agg.Aggregate{agg.CountAll()}, nil
	}
	out := make([]*agg.Aggregate, len(s.Aggregates))
	for i, as := range s.Aggregates {
		a, err := as.build()
		if err != nil {
			return nil, fmt.Errorf("fleet: task %s aggregate %d: %w", s.ID, i, err)
		}
		out[i] = a
	}
	return out, nil
}

// PredSpec is one equality predicate of a declarative selection.
type PredSpec struct {
	Attr int    `json:"attr"`
	Val  uint16 `json:"val"`
}

// AggregateSpec is the JSON-expressible subset of agg.Aggregate the
// control plane accepts: COUNT(*), SUM/AVG over an auxiliary payload
// field, optionally under a conjunctive selection condition. (Arbitrary
// per-tuple functions contain code and stay a programmatic-API feature.)
type AggregateSpec struct {
	// Kind is COUNT (default), SUM or AVG.
	Kind string `json:"kind,omitempty"`
	// Name labels the aggregate in reports (default: synthesised).
	Name string `json:"name,omitempty"`
	// AuxField indexes the auxiliary payload f(t) aggregates (SUM/AVG).
	AuxField int `json:"aux_field,omitempty"`
	// Where is the conjunctive selection condition (empty = all tuples).
	Where []PredSpec `json:"where,omitempty"`
}

func (a AggregateSpec) build() (*agg.Aggregate, error) {
	seen := make(map[int]bool, len(a.Where))
	preds := make([]hiddendb.Pred, len(a.Where))
	for i, p := range a.Where {
		if p.Attr < 0 {
			return nil, fmt.Errorf("negative attribute %d", p.Attr)
		}
		if seen[p.Attr] {
			return nil, fmt.Errorf("duplicate predicate on attribute %d", p.Attr)
		}
		seen[p.Attr] = true
		preds[i] = hiddendb.Pred{Attr: p.Attr, Val: p.Val}
	}
	kind := strings.ToUpper(a.Kind)
	name := a.Name
	if name == "" {
		name = a.describe(kind)
	}
	switch kind {
	case "", "COUNT":
		if len(preds) == 0 {
			c := agg.CountAll()
			if a.Name != "" {
				c.Name = a.Name
			}
			return c, nil
		}
		return agg.CountWhere(name, hiddendb.NewQuery(preds...)), nil
	case "SUM":
		if len(preds) == 0 {
			return agg.SumOf(name, agg.AuxField(a.AuxField)), nil
		}
		return agg.SumWhere(name, agg.AuxField(a.AuxField), hiddendb.NewQuery(preds...)), nil
	case "AVG":
		if len(preds) == 0 {
			return agg.AvgOf(name, agg.AuxField(a.AuxField)), nil
		}
		return agg.AvgWhere(name, agg.AuxField(a.AuxField), hiddendb.NewQuery(preds...)), nil
	default:
		return nil, fmt.Errorf("unknown aggregate kind %q", a.Kind)
	}
}

// describe synthesises a report label from the spec.
func (a AggregateSpec) describe(kind string) string {
	var b strings.Builder
	switch kind {
	case "", "COUNT":
		b.WriteString("COUNT(*)")
	default:
		fmt.Fprintf(&b, "%s(aux%d)", kind, a.AuxField)
	}
	for i, p := range a.Where {
		if i == 0 {
			b.WriteString(" WHERE ")
		} else {
			b.WriteString(" AND ")
		}
		fmt.Fprintf(&b, "a%d=%d", p.Attr, p.Val)
	}
	return b.String()
}
