// Benchmarks regenerating every figure of the paper's evaluation (§6).
// Each BenchmarkFigNN runs the corresponding experiment end to end and
// reports the final relative error per algorithm as custom metrics, so
//
//	go test -bench=. -benchmem
//
// regenerates the full evaluation and records the headline numbers.
// EXPERIMENTS.md holds the paper-vs-measured discussion.
package dynagg_test

import (
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sync"
	"testing"

	dynagg "github.com/dynagg/dynagg"
	"github.com/dynagg/dynagg/internal/agg"
	"github.com/dynagg/dynagg/internal/estimator"
	"github.com/dynagg/dynagg/internal/experiments"
	"github.com/dynagg/dynagg/internal/hiddendb"
	"github.com/dynagg/dynagg/internal/querytree"
	"github.com/dynagg/dynagg/internal/schema"
	"github.com/dynagg/dynagg/internal/workload"
)

// benchFigure runs one figure per iteration and reports per-series tail
// means as metrics.
func benchFigure(b *testing.B, id string) {
	b.Helper()
	b.ReportAllocs()
	opt := experiments.DefaultOptions()
	var fig *experiments.Figure
	for i := 0; i < b.N; i++ {
		f, err := experiments.Run(id, opt)
		if err != nil {
			b.Fatalf("%s: %v", id, err)
		}
		fig = f
	}
	if fig == nil {
		return
	}
	for _, s := range fig.Series {
		tail := len(s.Y) / 5
		if tail < 1 {
			tail = 1
		}
		var sum float64
		n := 0
		for _, v := range s.Y[len(s.Y)-tail:] {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				sum += v
				n++
			}
		}
		if n > 0 {
			b.ReportMetric(sum/float64(n), "final_"+sanitizeMetric(s.Label))
		}
	}
}

func sanitizeMetric(s string) string {
	out := make([]rune, 0, len(s))
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
			out = append(out, r)
		default:
			out = append(out, '_')
		}
	}
	return string(out)
}

func BenchmarkFig02RelativeError(b *testing.B)    { benchFigure(b, "fig2") }
func BenchmarkFig03ErrorBar(b *testing.B)         { benchFigure(b, "fig3") }
func BenchmarkFig04IntraRound(b *testing.B)       { benchFigure(b, "fig4") }
func BenchmarkFig05LittleChange(b *testing.B)     { benchFigure(b, "fig5") }
func BenchmarkFig06BigChange(b *testing.B)        { benchFigure(b, "fig6") }
func BenchmarkFig07BigChangeK1(b *testing.B)      { benchFigure(b, "fig7") }
func BenchmarkFig08EffectOfK(b *testing.B)        { benchFigure(b, "fig8") }
func BenchmarkFig09QueryBudget(b *testing.B)      { benchFigure(b, "fig9") }
func BenchmarkFig10InsDel(b *testing.B)           { benchFigure(b, "fig10") }
func BenchmarkFig11EffectOfM(b *testing.B)        { benchFigure(b, "fig11") }
func BenchmarkFig12DatabaseSize(b *testing.B)     { benchFigure(b, "fig12") }
func BenchmarkFig13SumConditions(b *testing.B)    { benchFigure(b, "fig13") }
func BenchmarkFig14RunningAverage(b *testing.B)   { benchFigure(b, "fig14") }
func BenchmarkFig15DeltaSmallChange(b *testing.B) { benchFigure(b, "fig15") }
func BenchmarkFig16DeltaAbsolute(b *testing.B)    { benchFigure(b, "fig16") }
func BenchmarkFig17DeltaBigChange(b *testing.B)   { benchFigure(b, "fig17") }
func BenchmarkFig18AccuracyVsBudget(b *testing.B) { benchFigure(b, "fig18") }
func BenchmarkFig19DrillDowns(b *testing.B)       { benchFigure(b, "fig19") }
func BenchmarkFig20AmazonLive(b *testing.B)       { benchFigure(b, "fig20") }
func BenchmarkFig21EBayLive(b *testing.B)         { benchFigure(b, "fig21") }

// ---------------------------------------------------------------------
// Ablation benches (DESIGN.md "Design decisions & ablations")
// ---------------------------------------------------------------------

// BenchmarkAblationClientCache compares RESTART's drill-down throughput
// with and without the client-side per-round answer cache (the paper's
// cost model charges every query; the cache is the ablation).
func BenchmarkAblationClientCache(b *testing.B) {
	for _, cache := range []bool{false, true} {
		name := "paper-accounting"
		if cache {
			name = "client-cache"
		}
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			data := workload.AutosLikeN(1, 20000, 12)
			env, err := workload.NewEnv(data, 18000, 2)
			if err != nil {
				b.Fatal(err)
			}
			iface := hiddendb.NewIface(env.Store, 200, nil)
			drills := 0
			for i := 0; i < b.N; i++ {
				cfg := estimator.Config{Rand: rand.New(rand.NewSource(7)), ClientCache: cache}
				e, err := estimator.NewRestart(env.Store.Schema(), []*agg.Aggregate{agg.CountAll()}, cfg)
				if err != nil {
					b.Fatal(err)
				}
				if err := e.Step(iface.NewSession(300)); err != nil {
					b.Fatal(err)
				}
				drills = e.DrillDowns()
			}
			b.ReportMetric(float64(drills), "drills/round")
		})
	}
}

// BenchmarkAblationRSPilot sweeps RS's bootstrap parameter ϖ.
func BenchmarkAblationRSPilot(b *testing.B) {
	for _, pilot := range []int{5, 10, 20} {
		b.Run(map[int]string{5: "pilot5", 10: "pilot10", 20: "pilot20"}[pilot], func(b *testing.B) {
			b.ReportAllocs()
			var finalErr float64
			for i := 0; i < b.N; i++ {
				data := workload.AutosLikeN(1, 20000, 12)
				env, err := workload.NewEnv(data, 18000, 2)
				if err != nil {
					b.Fatal(err)
				}
				iface := hiddendb.NewIface(env.Store, 200, nil)
				cfg := estimator.Config{Rand: rand.New(rand.NewSource(7)), Pilot: pilot}
				e, err := estimator.NewRS(env.Store.Schema(), []*agg.Aggregate{agg.CountAll()}, cfg)
				if err != nil {
					b.Fatal(err)
				}
				for round := 1; round <= 10; round++ {
					if round > 1 {
						if err := env.InsertFromPool(100); err != nil {
							b.Fatal(err)
						}
					}
					if err := e.Step(iface.NewSession(300)); err != nil {
						b.Fatal(err)
					}
				}
				est, _ := e.Estimate(0)
				truth := float64(env.Store.Size())
				finalErr = math.Abs(est.Value-truth) / truth
			}
			b.ReportMetric(finalErr, "final_relerr")
		})
	}
}

// BenchmarkAblationCountMetadata quantifies the §8 count-guided
// extension: with (capped) result counts available, COUNT(*) tracking is
// exact at a per-round cost equal to the frontier size — compare the
// reported final_relerr with the sampling estimators'.
func BenchmarkAblationCountMetadata(b *testing.B) {
	b.ReportAllocs()
	var finalErr, frontier float64
	for i := 0; i < b.N; i++ {
		data := workload.AutosLikeN(1, 40000, 38)
		env, err := workload.NewEnv(data, 36000, 2)
		if err != nil {
			b.Fatal(err)
		}
		ci := hiddendb.NewCountingIface(env.Store, 250, nil, 1000)
		ca := estimator.NewCountAssisted(env.Store.Schema())
		for round := 1; round <= 10; round++ {
			if round > 1 {
				if err := env.DeleteFraction(0.001); err != nil {
					b.Fatal(err)
				}
				if err := env.InsertFromPool(300); err != nil {
					b.Fatal(err)
				}
			}
			if err := ca.Step(ci.NewCountingSession(500)); err != nil {
				b.Fatal(err)
			}
		}
		truth := float64(env.Store.Size())
		finalErr = math.Abs(ca.Estimate()-truth) / truth
		frontier = float64(ca.FrontierSize())
	}
	b.ReportMetric(finalErr, "final_relerr")
	b.ReportMetric(frontier, "frontier_size")
}

// BenchmarkAblationCrawl measures the §1 "track all changes" strawman: a
// full enumeration crawl of a modest database versus the drill-down
// budget the paper's estimators need. The reported crawl_queries is the
// cost of ONE complete snapshot — two are needed before any change can be
// diffed.
func BenchmarkAblationCrawl(b *testing.B) {
	b.ReportAllocs()
	var crawlCost float64
	for i := 0; i < b.N; i++ {
		data := workload.AutosLikeN(1, 30000, 12)
		env, err := workload.NewEnv(data, 28000, 2)
		if err != nil {
			b.Fatal(err)
		}
		iface := hiddendb.NewIface(env.Store, 100, nil)
		c := estimator.NewCrawl(env.Store.Schema())
		res, err := c.Run(iface.AsSearcher())
		if err != nil {
			b.Fatal(err)
		}
		if !res.Complete {
			b.Fatal("crawl incomplete without budget")
		}
		crawlCost = float64(res.Cost)
	}
	b.ReportMetric(crawlCost, "crawl_queries")
}

// ---------------------------------------------------------------------
// Parallel trial engine
// ---------------------------------------------------------------------

// BenchmarkRunTrackingWorkers measures the wall-clock scaling of the
// parallel trial engine: the same 8-trial tracking run with 1 worker
// and with one worker per core. The figures are byte-identical across
// worker counts (the engine aggregates by trial index); only wall-clock
// time changes, so the sub-benchmark ratio IS the speedup.
func BenchmarkRunTrackingWorkers(b *testing.B) {
	spec := experiments.TrackSpec{
		Dataset:  func(seed int64) *workload.Dataset { return workload.AutosLikeN(seed, 8000, 10) },
		Initial:  7000,
		Schedule: workload.PoolChurn(100, 0.005),
		K:        100, G: 200, Rounds: 6,
		Aggs: func(*schema.Schema) []*agg.Aggregate { return []*agg.Aggregate{agg.CountAll()} },
	}
	const trials = 8
	workerCounts := []int{1}
	if n := runtime.GOMAXPROCS(0); n > 1 {
		workerCounts = append(workerCounts, n)
	}
	for _, w := range workerCounts {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			b.ReportAllocs()
			opt := experiments.Options{Seed: 1, Workers: w}
			for i := 0; i < b.N; i++ {
				if _, err := experiments.RunTracking(spec, opt, trials); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// ---------------------------------------------------------------------
// Concurrent serving layer
// ---------------------------------------------------------------------

// BenchmarkServingConcurrent measures read throughput of ONE Iface shared
// by w client goroutines (one Session each), over a frozen round — the
// webiface serving pattern. The op count is fixed, so ns/op should fall
// near-linearly with w on a multi-core runner (the dev box may be
// 1-core; the CI artifact records the scaling).
func BenchmarkServingConcurrent(b *testing.B) {
	data := workload.AutosLikeN(1, 60000, 12)
	env, err := workload.NewEnv(data, 54000, 2)
	if err != nil {
		b.Fatal(err)
	}
	iface := hiddendb.NewIface(env.Store, 100, nil)
	// A mixed workload: prefix drills, non-prefix point queries (served
	// by posting lists), and two-predicate conjunctions.
	var queries []dynagg.Query
	for v := 0; v < 8; v++ {
		queries = append(queries,
			hiddendb.NewQuery(hiddendb.Pred{Attr: 0, Val: uint16(v % 4)}, hiddendb.Pred{Attr: 1, Val: uint16(v % 3)}),
			hiddendb.NewQuery(hiddendb.Pred{Attr: 9, Val: uint16(v % 3)}),
			hiddendb.NewQuery(hiddendb.Pred{Attr: 4, Val: uint16(v % 3)}, hiddendb.Pred{Attr: 8, Val: uint16(v % 2)}),
		)
	}
	// Warm the snapshot and posting lists once so every sub-benchmark
	// measures steady-state serving.
	for _, q := range queries {
		if _, err := iface.Search(q); err != nil {
			b.Fatal(err)
		}
	}
	workerCounts := []int{1, 2, 4, 8}
	for _, w := range workerCounts {
		b.Run(fmt.Sprintf("clients=%d", w), func(b *testing.B) {
			b.ReportAllocs()
			b.ResetTimer()
			var wg sync.WaitGroup
			per := b.N / w
			for g := 0; g < w; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					s := iface.NewSession(0) // sessions are per-goroutine
					for i := 0; i < per; i++ {
						if _, err := s.Search(queries[(g+i)%len(queries)]); err != nil {
							b.Error(err)
							return
						}
					}
				}(g)
			}
			wg.Wait()
		})
	}

	// The sharded serving path: the same mixed workload scatter-gathered
	// across N shards while a round driver churns the store with one
	// mutator goroutine per shard and publishes a fresh epoch each round
	// — throughput under realistic mutation load. shards=1 is the
	// single-shard baseline the CI soft-check ratios against.
	for _, shards := range []int{1, 4, 16} {
		senv, err := workload.NewShardedEnv(data, 54000, 2, shards)
		if err != nil {
			b.Fatal(err)
		}
		siface := hiddendb.NewShardedIface(senv.Store, 100, nil)
		siface.SetGatherWorkers(shards)
		for _, q := range queries {
			if _, err := siface.Search(q); err != nil {
				b.Fatal(err)
			}
		}
		for _, w := range []int{1, 8} {
			b.Run(fmt.Sprintf("shards=%d/clients=%d", shards, w), func(b *testing.B) {
				b.ReportAllocs()
				stop := make(chan struct{})
				var mutWG sync.WaitGroup
				mutWG.Add(1)
				go func() {
					defer mutWG.Done()
					for {
						select {
						case <-stop:
							return
						default:
						}
						if err := senv.InsertFromPool(200); err != nil {
							b.Error(err)
							return
						}
						if err := senv.DeleteFraction(0.002); err != nil {
							b.Error(err)
							return
						}
						senv.Store.AdvanceEpoch()
					}
				}()
				b.ResetTimer()
				var wg sync.WaitGroup
				per := b.N / w
				for g := 0; g < w; g++ {
					wg.Add(1)
					go func(g int) {
						defer wg.Done()
						s := siface.NewSession(0)
						for i := 0; i < per; i++ {
							if _, err := s.Search(queries[(g+i)%len(queries)]); err != nil {
								b.Error(err)
								return
							}
						}
					}(g)
				}
				wg.Wait()
				b.StopTimer()
				close(stop)
				mutWG.Wait()
			})
		}
	}
}

// ---------------------------------------------------------------------
// Micro-benchmarks of the substrate
// ---------------------------------------------------------------------

// BenchmarkStoreSearch measures the simulated interface's query latency
// on a paper-scale store (uncached worst case: the store version changes
// between queries).
func BenchmarkStoreSearch(b *testing.B) {
	data := workload.AutosLikeN(1, 100000, 38)
	env, err := workload.NewEnv(data, 100000, 2)
	if err != nil {
		b.Fatal(err)
	}
	iface := hiddendb.NewIface(env.Store, 1000, nil)
	q := hiddendb.NewQuery(hiddendb.Pred{Attr: 0, Val: 0}, hiddendb.Pred{Attr: 1, Val: 1})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Touch the store version so the cache cannot serve the answer.
		if err := env.Store.Replace(uint64(i%1000+1), func(*dynagg.Tuple) {}); err != nil {
			b.Fatal(err)
		}
		if _, err := iface.Search(q); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDrillDown measures one fresh drill down end to end.
func BenchmarkDrillDown(b *testing.B) {
	data := workload.AutosLikeN(1, 100000, 38)
	env, err := workload.NewEnv(data, 100000, 2)
	if err != nil {
		b.Fatal(err)
	}
	iface := hiddendb.NewIface(env.Store, 1000, nil)
	tree := querytree.New(env.Store.Schema())
	rng := rand.New(rand.NewSource(3))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sig := tree.RandomSignature(rng)
		if _, err := querytree.DrillFromRoot(iface.AsSearcher(), tree, sig); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkUpdateDrill measures a reissued drill-down update on a store
// that changed since the last round.
func BenchmarkUpdateDrill(b *testing.B) {
	data := workload.AutosLikeN(1, 100000, 38)
	env, err := workload.NewEnv(data, 90000, 2)
	if err != nil {
		b.Fatal(err)
	}
	iface := hiddendb.NewIface(env.Store, 1000, nil)
	tree := querytree.New(env.Store.Schema())
	rng := rand.New(rand.NewSource(3))
	type saved struct {
		sig   querytree.Signature
		depth int
	}
	var drills []saved
	for i := 0; i < 64; i++ {
		sig := tree.RandomSignature(rng)
		o, err := querytree.DrillFromRoot(iface.AsSearcher(), tree, sig)
		if err != nil {
			b.Fatal(err)
		}
		drills = append(drills, saved{sig, o.Depth})
	}
	if err := env.InsertFromPool(1000); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d := drills[i%len(drills)]
		if _, err := querytree.UpdateDrill(iface.AsSearcher(), tree, d.sig, d.depth); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkApplyBatch measures the store's batched round update.
func BenchmarkApplyBatch(b *testing.B) {
	data := workload.AutosLikeN(1, 120000, 38)
	env, err := workload.NewEnv(data, 100000, 2)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := env.DeleteFraction(0.001); err != nil {
			b.Fatal(err)
		}
		if err := env.InsertFromPool(100); err != nil {
			b.Fatal(err)
		}
	}
}
