package webiface

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"

	"github.com/dynagg/dynagg/internal/hiddendb"
	"github.com/dynagg/dynagg/internal/httpapi"
	"github.com/dynagg/dynagg/internal/workload"
)

// TestBatchEndpointMatchesSequential: a batched POST /v1/search must
// return, per query, byte-identical results to individual GETs — the
// wire-level half of the batch path's equivalence guarantee.
func TestBatchEndpointMatchesSequential(t *testing.T) {
	_, srv := newServer(t, 31, 2000, 25)
	c, err := Dial(srv.URL, ClientOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var qs []hiddendb.Query
	qs = append(qs, hiddendb.NewQuery())
	for v := uint16(0); v < 6; v++ {
		qs = append(qs, hiddendb.NewQuery(hiddendb.Pred{Attr: 0, Val: v}))
		qs = append(qs, hiddendb.NewQuery(hiddendb.Pred{Attr: 0, Val: v}, hiddendb.Pred{Attr: 1, Val: v % 3}))
	}
	items, err := c.SearchBatch(qs)
	if err != nil {
		t.Fatal(err)
	}
	if len(items) != len(qs) {
		t.Fatalf("batch returned %d items for %d queries", len(items), len(qs))
	}
	for i, q := range qs {
		want, err := c.Search(q)
		if err != nil {
			t.Fatal(err)
		}
		if items[i].Err != nil {
			t.Fatalf("query %d: batch item error %v", i, items[i].Err)
		}
		if sigOf(items[i].Result) != sigOf(want) {
			t.Fatalf("query %d: batch result diverges from sequential\n got %s\nwant %s",
				i, sigOf(items[i].Result), sigOf(want))
		}
	}
}

// sigOf serialises a result for byte-identity comparison (the webiface
// twin of hiddendb's resultSignature).
func sigOf(r hiddendb.Result) string {
	s := fmt.Sprintf("overflow=%v;", r.Overflow)
	for _, t := range r.Tuples {
		s += fmt.Sprintf("%d:%v:%v;", t.ID, t.Vals, t.Aux)
	}
	return s
}

// TestBatchBudgetSemantics: the server charges batch queries one by one
// in order; queries past the per-key budget come back as per-item
// budget_exhausted errors (not a whole-batch 429), and the client maps
// them to errors unwrapping to hiddendb.ErrBudgetExhausted.
func TestBatchBudgetSemantics(t *testing.T) {
	env, _ := newServer(t, 32, 1500, 20)
	iface := hiddendb.NewIface(env.Store, 20, nil)
	h := NewHandler(iface)
	h.SetPerKeyBudget(3)
	srv := httptest.NewServer(h)
	defer srv.Close()
	c, err := Dial(srv.URL, ClientOptions{})
	if err != nil {
		t.Fatal(err)
	}
	qs := make([]hiddendb.Query, 5)
	for i := range qs {
		qs[i] = hiddendb.NewQuery(hiddendb.Pred{Attr: 0, Val: uint16(i)})
	}
	items, err := c.SearchBatch(qs)
	if err != nil {
		t.Fatal(err)
	}
	for i, it := range items {
		if i < 3 {
			if it.Err != nil {
				t.Fatalf("query %d within budget failed: %v", i, it.Err)
			}
			continue
		}
		if it.Err == nil {
			t.Fatalf("query %d exceeded budget but succeeded", i)
		}
		if !errors.Is(it.Err, hiddendb.ErrBudgetExhausted) {
			t.Fatalf("query %d: error %v does not unwrap to ErrBudgetExhausted", i, it.Err)
		}
	}
}

// TestBatchRejectsMalformedWholesale: one malformed query rejects the
// whole batch with a 400 envelope BEFORE any budget is charged — batch
// requests must not be able to burn budget on garbage.
func TestBatchRejectsMalformedWholesale(t *testing.T) {
	env, _ := newServer(t, 33, 800, 10)
	iface := hiddendb.NewIface(env.Store, 10, nil)
	h := NewHandler(iface)
	h.SetPerKeyBudget(5)
	srv := httptest.NewServer(h)
	defer srv.Close()

	body, _ := json.Marshal(map[string]any{"queries": []map[string]any{
		{"where": []string{"0:0"}},
		{"where": []string{"notanattr"}},
	}})
	resp, err := http.Post(srv.URL+"/"+httpapi.Version+"/search", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed batch: status %d, want 400", resp.StatusCode)
	}
	if e, ok := httpapi.DecodeError(resp.Body); !ok || e.Code != httpapi.CodeBadRequest {
		t.Fatalf("malformed batch: envelope %+v ok=%v", e, ok)
	}

	// The failed batch must not have consumed budget: 5 singles still fit.
	c, err := Dial(srv.URL, ClientOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := c.Search(hiddendb.NewQuery(hiddendb.Pred{Attr: 0, Val: uint16(i)})); err != nil {
			t.Fatalf("budget was burned by a rejected batch: %v", err)
		}
	}
}

// TestV1RoutesAndAliases: every serving route answers under /v1, the
// removed legacy unversioned aliases answer 404 with the shared
// envelope, healthz reports the API version, and unknown paths yield
// the shared 404 envelope.
func TestV1RoutesAndAliases(t *testing.T) {
	_, srv := newServer(t, 34, 500, 10)
	for _, path := range []string{"/v1/schema", "/v1/search", "/v1/stats", "/v1/healthz", "/v1/metrics"} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("GET %s: status %d", path, resp.StatusCode)
		}
	}
	// The deprecated unversioned aliases are gone: 404 + envelope, so a
	// stale client fails loudly rather than silently diverging.
	for _, path := range []string{"/schema", "/search", "/stats", "/healthz", "/metrics"} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("GET %s: status %d, want 404", path, resp.StatusCode)
		}
		if e, ok := httpapi.DecodeError(resp.Body); !ok || e.Code != httpapi.CodeNotFound {
			t.Errorf("GET %s: envelope %+v ok=%v", path, e, ok)
		}
		resp.Body.Close()
	}

	resp, err := http.Get(srv.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var hz map[string]string
	if err := json.NewDecoder(resp.Body).Decode(&hz); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if hz["api_version"] != httpapi.Version {
		t.Errorf("healthz api_version = %q, want %q", hz["api_version"], httpapi.Version)
	}

	resp, err = http.Get(srv.URL + "/v1/nosuchroute")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown route: status %d", resp.StatusCode)
	}
	if e, ok := httpapi.DecodeError(resp.Body); !ok || e.Code != httpapi.CodeNotFound {
		t.Fatalf("unknown route envelope: %+v ok=%v", e, ok)
	}
}

// TestErrorEnvelopeOnBadQuery: a malformed single query returns the
// shared JSON error envelope, and the client surfaces its code.
func TestErrorEnvelopeOnBadQuery(t *testing.T) {
	_, srv := newServer(t, 35, 300, 10)
	resp, err := http.Get(srv.URL + "/v1/search?where=bogus")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d, want 400", resp.StatusCode)
	}
	e, ok := httpapi.DecodeError(resp.Body)
	if !ok {
		t.Fatal("400 body is not the error envelope")
	}
	if e.Code != httpapi.CodeBadRequest || e.Message == "" {
		t.Fatalf("envelope %+v", e)
	}
}

// TestHandlerShardedBackend: the handler serves a ShardedIface through
// the same wire format, with answers byte-identical to an unsharded
// Iface over the same data.
func TestHandlerShardedBackend(t *testing.T) {
	data := workload.AutosLikeN(36, 3000, 8)
	env, err := workload.NewEnv(data, 2500, 37)
	if err != nil {
		t.Fatal(err)
	}
	senv, err := workload.NewShardedEnv(data, 2500, 37, 4)
	if err != nil {
		t.Fatal(err)
	}
	const k = 50
	flat := hiddendb.NewIface(env.Store, k, nil)
	sharded := hiddendb.NewShardedIface(senv.Store, k, nil)
	sharded.SetGatherWorkers(4)

	flatSrv := httptest.NewServer(NewHandler(flat))
	defer flatSrv.Close()
	shardSrv := httptest.NewServer(NewHandler(sharded))
	defer shardSrv.Close()

	fc, err := Dial(flatSrv.URL, ClientOptions{})
	if err != nil {
		t.Fatal(err)
	}
	sc, err := Dial(shardSrv.URL, ClientOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for v := uint16(0); v < 8; v++ {
		q := hiddendb.NewQuery(hiddendb.Pred{Attr: 1, Val: v})
		want, err := fc.Search(q)
		if err != nil {
			t.Fatal(err)
		}
		got, err := sc.Search(q)
		if err != nil {
			t.Fatal(err)
		}
		if sigOf(got) != sigOf(want) {
			t.Fatalf("val %d: sharded serving diverges\n got %s\nwant %s", v, sigOf(got), sigOf(want))
		}
	}
}

// TestClientSessionBatchBudget: webiface.Session.SearchBatch claims its
// client-side budget per query; queries past the budget come back as
// items carrying ErrBudgetExhausted without touching the server.
func TestClientSessionBatchBudget(t *testing.T) {
	_, srv := newServer(t, 38, 800, 10)
	c, err := Dial(srv.URL, ClientOptions{})
	if err != nil {
		t.Fatal(err)
	}
	sess := c.NewSession(2)
	qs := make([]hiddendb.Query, 4)
	for i := range qs {
		qs[i] = hiddendb.NewQuery(hiddendb.Pred{Attr: 0, Val: uint16(i)})
	}
	items, err := sess.SearchBatch(qs)
	if err != nil {
		t.Fatal(err)
	}
	for i, it := range items {
		if i < 2 && it.Err != nil {
			t.Fatalf("query %d within budget failed: %v", i, it.Err)
		}
		if i >= 2 && !errors.Is(it.Err, hiddendb.ErrBudgetExhausted) {
			t.Fatalf("query %d: %v, want ErrBudgetExhausted", i, it.Err)
		}
	}
	// Denied claims do not count against Used.
	if used := sess.Used(); used != 2 {
		t.Fatalf("session used %d, want 2", used)
	}
}
