package estimator

import (
	"encoding/gob"
	"fmt"
	"io"

	"github.com/dynagg/dynagg/internal/agg"
	"github.com/dynagg/dynagg/internal/querytree"
	"github.com/dynagg/dynagg/internal/schema"
)

// Persistence lets a long-lived tracker survive process restarts: a daily
// tracker following a real site cannot keep its drill-down pool in RAM
// for weeks. Save serialises the full estimator state (drill-down pool
// with histories, per-round estimates, RS's group history and variance
// models); Load reconstructs it against the same schema and aggregate
// set. Aggregates contain functions and are therefore NOT serialised —
// the caller re-supplies them, and Load verifies the count matches.
//
// The random source is not serialisable; the restored estimator continues
// with the Config.Rand provided at Load. Estimates are unaffected
// (signatures already drawn remain uniform), only future random draws
// differ from an uninterrupted run.

// snapContribution mirrors contribution for gob.
type snapContribution struct {
	Round  int
	Depth  int
	Prob   float64
	Pairs  []agg.Pair
	Tuples []*schema.Tuple
}

// snapDrill mirrors drill for gob.
type snapDrill struct {
	Sig  []uint16
	Cur  snapContribution
	Prev snapContribution
	Hist []snapContribution
}

// snapEstimate mirrors Estimate plus its validity flag.
type snapEstimate struct {
	Est Estimate
	OK  bool
}

// snapVarModel mirrors varModel.
type snapVarModel struct {
	HT, Diff         float64
	HaveHT, HaveDiff bool
}

// snapshot is the on-wire estimator state.
type snapshot struct {
	Version int
	Algo    string
	NumAggs int
	Round   int
	Used    int
	Drills  int
	Wasted  int

	Estimates []snapEstimate
	Deltas    []snapEstimate

	Pool []snapDrill

	// RESTART extras.
	PrevEst   []snapEstimate
	LastRound []snapDrill

	// RS extras.
	Hist          [][]snapEstimate
	VarModels     []snapVarModel
	OptimizeDelta bool
	Primary       int
}

const snapshotVersion = 1

func contribToSnap(c contribution) snapContribution {
	return snapContribution{Round: c.round, Depth: c.depth, Prob: c.prob, Pairs: c.pairs, Tuples: c.tuples}
}

func snapToContrib(s snapContribution) contribution {
	return contribution{round: s.Round, depth: s.Depth, prob: s.Prob, pairs: s.Pairs, tuples: s.Tuples}
}

func drillToSnap(d *drill) snapDrill {
	out := snapDrill{Sig: d.sig, Cur: contribToSnap(d.cur), Prev: contribToSnap(d.prev)}
	for _, h := range d.hist {
		out.Hist = append(out.Hist, contribToSnap(h))
	}
	return out
}

func snapToDrill(s snapDrill) *drill {
	d := &drill{sig: querytree.Signature(s.Sig), cur: snapToContrib(s.Cur), prev: snapToContrib(s.Prev)}
	for _, h := range s.Hist {
		d.hist = append(d.hist, snapToContrib(h))
	}
	return d
}

func estimatesToSnap(ests []Estimate, ok []bool) []snapEstimate {
	out := make([]snapEstimate, len(ests))
	for i := range ests {
		out[i] = snapEstimate{Est: ests[i], OK: ok[i]}
	}
	return out
}

func snapToEstimates(s []snapEstimate) ([]Estimate, []bool) {
	ests := make([]Estimate, len(s))
	ok := make([]bool, len(s))
	for i := range s {
		ests[i] = s[i].Est
		ok[i] = s[i].OK
	}
	return ests, ok
}

// Save serialises the estimator's state. Supported concrete types:
// *Restart, *Reissue, *RS.
func Save(e Estimator, w io.Writer) error {
	snap := snapshot{Version: snapshotVersion, Algo: e.Name()}
	switch t := e.(type) {
	case *Restart:
		snap.fillBase(t.base)
		snap.PrevEst = estimatesToSnap(t.prevEst, t.prevOK)
		for _, d := range t.lastRound {
			snap.LastRound = append(snap.LastRound, drillToSnap(d))
		}
	case *Reissue:
		snap.fillBase(t.base)
		for _, d := range t.pool {
			snap.Pool = append(snap.Pool, drillToSnap(d))
		}
	case *RS:
		snap.fillBase(t.base)
		for _, d := range t.pool {
			snap.Pool = append(snap.Pool, drillToSnap(d))
		}
		for _, h := range t.hist {
			snap.Hist = append(snap.Hist, estimatesToSnap(h.est, h.ok))
		}
		for _, vm := range t.vm {
			snap.VarModels = append(snap.VarModels, snapVarModel{
				HT: vm.ht, Diff: vm.diff, HaveHT: vm.haveHT, HaveDiff: vm.haveDiff,
			})
		}
		snap.OptimizeDelta = t.optimizeDelta
		snap.Primary = t.primary
	default:
		return fmt.Errorf("estimator: cannot save %T", e)
	}
	return gob.NewEncoder(w).Encode(&snap)
}

func (s *snapshot) fillBase(b *base) {
	s.NumAggs = len(b.aggs)
	s.Round = b.round
	s.Used = b.used
	s.Drills = b.drills
	s.Wasted = b.wasted
	s.Estimates = estimatesToSnap(b.estimates, b.estOK)
	s.Deltas = estimatesToSnap(b.deltas, b.deltaOK)
}

func (s *snapshot) restoreBase(b *base) {
	b.round = s.Round
	b.used = s.Used
	b.drills = s.Drills
	b.wasted = s.Wasted
	b.estimates, b.estOK = snapToEstimates(s.Estimates)
	b.deltas, b.deltaOK = snapToEstimates(s.Deltas)
}

// Load reconstructs an estimator saved by Save. The schema, aggregate
// list (same order and count as at save time) and config are re-supplied
// by the caller because they contain functions.
func Load(r io.Reader, sch *schema.Schema, aggs []*agg.Aggregate, cfg Config) (Estimator, error) {
	var snap snapshot
	if err := gob.NewDecoder(r).Decode(&snap); err != nil {
		return nil, fmt.Errorf("estimator: decode snapshot: %w", err)
	}
	if snap.Version != snapshotVersion {
		return nil, fmt.Errorf("estimator: snapshot version %d not supported", snap.Version)
	}
	if snap.NumAggs != len(aggs) {
		return nil, fmt.Errorf("estimator: snapshot tracked %d aggregates, caller supplied %d",
			snap.NumAggs, len(aggs))
	}
	switch snap.Algo {
	case "RESTART":
		e, err := NewRestart(sch, aggs, cfg)
		if err != nil {
			return nil, err
		}
		snap.restoreBase(e.base)
		e.prevEst, e.prevOK = snapToEstimates(snap.PrevEst)
		for _, sd := range snap.LastRound {
			e.lastRound = append(e.lastRound, snapToDrill(sd))
		}
		return e, nil
	case "REISSUE":
		e, err := NewReissue(sch, aggs, cfg)
		if err != nil {
			return nil, err
		}
		snap.restoreBase(e.base)
		for _, sd := range snap.Pool {
			e.pool = append(e.pool, snapToDrill(sd))
		}
		return e, nil
	case "RS":
		var opts []RSOption
		if snap.OptimizeDelta {
			opts = append(opts, WithDeltaTarget())
		}
		opts = append(opts, WithPrimaryAggregate(snap.Primary))
		e, err := NewRS(sch, aggs, cfg, opts...)
		if err != nil {
			return nil, err
		}
		snap.restoreBase(e.base)
		for _, sd := range snap.Pool {
			e.pool = append(e.pool, snapToDrill(sd))
		}
		e.hist = e.hist[:0]
		for _, h := range snap.Hist {
			ests, ok := snapToEstimates(h)
			e.hist = append(e.hist, histEntry{est: ests, ok: ok})
		}
		for i, vm := range snap.VarModels {
			if i < len(e.vm) {
				e.vm[i] = varModel{ht: vm.HT, diff: vm.Diff, haveHT: vm.HaveHT, haveDiff: vm.HaveDiff}
			}
		}
		return e, nil
	default:
		return nil, fmt.Errorf("estimator: unknown algorithm %q in snapshot", snap.Algo)
	}
}
