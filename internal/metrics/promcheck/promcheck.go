// Package promcheck strictly validates Prometheus text-format (0.0.4)
// exposition documents — the CI guard behind every daemon's /v1/metrics.
// It is a validator, not a general parser: it enforces the subset the
// repo's metrics.Builder is supposed to emit, and errs on the side of
// rejecting anything ambiguous:
//
//   - every sample belongs to the most recently declared family, which
//     must carry a HELP line immediately followed by its TYPE line;
//   - metric and label names are well-formed, label values properly
//     quoted and escaped, sample values parse as floats;
//   - histogram families are complete per label set: cumulative,
//     monotone non-decreasing buckets with ascending le bounds, a
//     mandatory le="+Inf" bucket, and _sum/_count samples with _count
//     equal to the +Inf bucket;
//   - no family is declared twice and the document ends with a newline.
package promcheck

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Validate checks one exposition document, returning the first
// violation found (nil for a valid document).
func Validate(text string) error {
	if text == "" {
		return fmt.Errorf("promcheck: empty document")
	}
	if !strings.HasSuffix(text, "\n") {
		return fmt.Errorf("promcheck: document does not end with a newline")
	}
	v := &validator{
		families: make(map[string]string),
	}
	for i, line := range strings.Split(strings.TrimSuffix(text, "\n"), "\n") {
		if err := v.line(line); err != nil {
			return fmt.Errorf("promcheck: line %d: %w (%q)", i+1, err, line)
		}
	}
	return v.finish()
}

type validator struct {
	families map[string]string // family name → type

	cur         string // current family name ("" before the first)
	curType     string
	pendingHelp string // family named by a HELP line awaiting its TYPE

	hist map[string]*histSeries // per-label-set state of the current histogram family
}

// histSeries tracks one label set's bucket/count/sum samples.
type histSeries struct {
	lastLe  float64
	lastCum float64
	buckets int
	infSeen bool
	infVal  float64
	count   *float64
	sumSeen bool
}

func (v *validator) line(line string) error {
	switch {
	case line == "":
		return fmt.Errorf("blank line")
	case strings.HasPrefix(line, "# HELP "):
		return v.helpLine(line)
	case strings.HasPrefix(line, "# TYPE "):
		return v.typeLine(line)
	case strings.HasPrefix(line, "#"):
		return fmt.Errorf("comment is neither HELP nor TYPE")
	default:
		return v.sampleLine(line)
	}
}

func (v *validator) helpLine(line string) error {
	if v.pendingHelp != "" {
		return fmt.Errorf("HELP for %q not followed by its TYPE", v.pendingHelp)
	}
	rest := strings.TrimPrefix(line, "# HELP ")
	name, _, found := strings.Cut(rest, " ")
	if !found || name == "" {
		return fmt.Errorf("malformed HELP line")
	}
	if !validMetricName(name) {
		return fmt.Errorf("invalid metric name %q", name)
	}
	if _, dup := v.families[name]; dup {
		return fmt.Errorf("family %q declared twice", name)
	}
	v.pendingHelp = name
	return nil
}

func (v *validator) typeLine(line string) error {
	rest := strings.TrimPrefix(line, "# TYPE ")
	name, typ, found := strings.Cut(rest, " ")
	if !found || name == "" || typ == "" {
		return fmt.Errorf("malformed TYPE line")
	}
	if v.pendingHelp != name {
		return fmt.Errorf("TYPE for %q without an immediately preceding HELP", name)
	}
	switch typ {
	case "counter", "gauge", "histogram", "summary", "untyped":
	default:
		return fmt.Errorf("unknown metric type %q", typ)
	}
	if err := v.closeFamily(); err != nil {
		return err
	}
	v.pendingHelp = ""
	v.cur, v.curType = name, typ
	v.families[name] = typ
	if typ == "histogram" {
		v.hist = make(map[string]*histSeries)
	} else {
		v.hist = nil
	}
	return nil
}

func (v *validator) sampleLine(line string) error {
	if v.pendingHelp != "" {
		return fmt.Errorf("HELP for %q not followed by its TYPE", v.pendingHelp)
	}
	if v.cur == "" {
		return fmt.Errorf("sample before any family declaration")
	}
	name, labels, value, err := parseSample(line)
	if err != nil {
		return err
	}
	if v.curType == "histogram" {
		return v.histogramSample(name, labels, value)
	}
	if name != v.cur {
		return fmt.Errorf("sample %q under family %q", name, v.cur)
	}
	return nil
}

func (v *validator) histogramSample(name string, labels []labelPair, value float64) error {
	suffix := strings.TrimPrefix(name, v.cur)
	key := labelKey(labels, true)
	s := v.hist[key]
	if s == nil {
		s = &histSeries{lastLe: math.Inf(-1), lastCum: math.Inf(-1)}
		v.hist[key] = s
	}
	switch suffix {
	case "_bucket":
		le, ok := leOf(labels)
		if !ok {
			return fmt.Errorf("%s sample without le label", name)
		}
		var bound float64
		if le == "+Inf" {
			bound = math.Inf(1)
		} else {
			var err error
			bound, err = strconv.ParseFloat(le, 64)
			if err != nil {
				return fmt.Errorf("unparseable le %q", le)
			}
		}
		if bound <= s.lastLe {
			return fmt.Errorf("bucket bounds not ascending: le=%q after %g", le, s.lastLe)
		}
		if s.lastCum != math.Inf(-1) && value < s.lastCum {
			return fmt.Errorf("histogram buckets not monotone: %g after %g", value, s.lastCum)
		}
		if s.infSeen {
			return fmt.Errorf("bucket after le=\"+Inf\"")
		}
		s.lastLe, s.lastCum = bound, value
		s.buckets++
		if math.IsInf(bound, 1) {
			s.infSeen = true
			s.infVal = value
		}
	case "_sum":
		if s.sumSeen {
			return fmt.Errorf("duplicate %s for label set {%s}", name, key)
		}
		s.sumSeen = true
	case "_count":
		if s.count != nil {
			return fmt.Errorf("duplicate %s for label set {%s}", name, key)
		}
		c := value
		s.count = &c
	default:
		return fmt.Errorf("sample %q under histogram family %q", name, v.cur)
	}
	return nil
}

// closeFamily verifies the completeness conditions of the family being
// left — only histograms accumulate cross-line state.
func (v *validator) closeFamily() error {
	for key, s := range v.hist {
		if !s.infSeen {
			return fmt.Errorf("histogram %s{%s} missing le=\"+Inf\" bucket", v.cur, key)
		}
		if s.count == nil || s.infVal != *s.count {
			return fmt.Errorf("histogram %s{%s}: _count absent or != +Inf bucket", v.cur, key)
		}
		if !s.sumSeen {
			return fmt.Errorf("histogram %s{%s} missing _sum", v.cur, key)
		}
	}
	v.hist = nil
	return nil
}

func (v *validator) finish() error {
	if v.pendingHelp != "" {
		return fmt.Errorf("promcheck: HELP for %q not followed by its TYPE", v.pendingHelp)
	}
	if err := v.closeFamily(); err != nil {
		return fmt.Errorf("promcheck: %w", err)
	}
	return nil
}

type labelPair struct{ name, value string }

// parseSample splits `name{a="b",...} value` with full escape handling.
func parseSample(line string) (string, []labelPair, float64, error) {
	nameEnd := strings.IndexAny(line, "{ ")
	if nameEnd <= 0 {
		return "", nil, 0, fmt.Errorf("malformed sample")
	}
	name := line[:nameEnd]
	if !validMetricName(name) {
		return "", nil, 0, fmt.Errorf("invalid metric name %q", name)
	}
	rest := line[nameEnd:]
	var labels []labelPair
	if rest[0] == '{' {
		var err error
		labels, rest, err = parseLabels(rest[1:])
		if err != nil {
			return "", nil, 0, err
		}
	}
	if len(rest) == 0 || rest[0] != ' ' {
		return "", nil, 0, fmt.Errorf("missing space before value")
	}
	valStr := rest[1:]
	if valStr == "" || strings.ContainsAny(valStr, " \t") {
		// Strict: exactly one value token, no timestamp (the builder
		// never emits one).
		return "", nil, 0, fmt.Errorf("malformed value %q", valStr)
	}
	value, err := strconv.ParseFloat(valStr, 64)
	if err != nil {
		return "", nil, 0, fmt.Errorf("unparseable value %q", valStr)
	}
	return name, labels, value, nil
}

// parseLabels consumes `a="b",c="d"}` (the opening brace already eaten)
// and returns the pairs plus the remaining tail after the closing brace.
func parseLabels(s string) ([]labelPair, string, error) {
	var labels []labelPair
	seen := make(map[string]bool)
	for {
		eq := strings.IndexByte(s, '=')
		if eq <= 0 {
			return nil, "", fmt.Errorf("malformed label pair")
		}
		name := s[:eq]
		if !validLabelName(name) {
			return nil, "", fmt.Errorf("invalid label name %q", name)
		}
		if seen[name] {
			return nil, "", fmt.Errorf("duplicate label %q", name)
		}
		seen[name] = true
		s = s[eq+1:]
		if len(s) == 0 || s[0] != '"' {
			return nil, "", fmt.Errorf("label %q value not quoted", name)
		}
		value, tail, err := parseQuoted(s[1:])
		if err != nil {
			return nil, "", fmt.Errorf("label %q: %w", name, err)
		}
		labels = append(labels, labelPair{name, value})
		s = tail
		if len(s) == 0 {
			return nil, "", fmt.Errorf("unterminated label set")
		}
		switch s[0] {
		case ',':
			s = s[1:]
		case '}':
			return labels, s[1:], nil
		default:
			return nil, "", fmt.Errorf("unexpected %q after label value", s[0])
		}
	}
}

// parseQuoted consumes an escaped label value up to its closing quote.
func parseQuoted(s string) (string, string, error) {
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '"':
			return b.String(), s[i+1:], nil
		case '\\':
			i++
			if i >= len(s) {
				return "", "", fmt.Errorf("trailing backslash")
			}
			switch s[i] {
			case '\\', '"':
				b.WriteByte(s[i])
			case 'n':
				b.WriteByte('\n')
			default:
				return "", "", fmt.Errorf("invalid escape \\%c", s[i])
			}
		case '\n':
			return "", "", fmt.Errorf("raw newline in label value")
		default:
			b.WriteByte(s[i])
		}
	}
	return "", "", fmt.Errorf("unterminated label value")
}

// labelKey canonicalises a label set (optionally dropping le) so
// histogram series can be grouped across bucket lines.
func labelKey(labels []labelPair, dropLe bool) string {
	parts := make([]string, 0, len(labels))
	for _, l := range labels {
		if dropLe && l.name == "le" {
			continue
		}
		parts = append(parts, l.name+"="+strconv.Quote(l.value))
	}
	sort.Strings(parts)
	return strings.Join(parts, ",")
}

func leOf(labels []labelPair) (string, bool) {
	for _, l := range labels {
		if l.name == "le" {
			return l.value, true
		}
	}
	return "", false
}

func validMetricName(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		ok := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return len(s) > 0
}

func validLabelName(s string) bool {
	if s == "" || strings.HasPrefix(s, "__") {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		ok := c == '_' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}
