package webiface

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"github.com/dynagg/dynagg/internal/hiddendb"
	"github.com/dynagg/dynagg/internal/workload"
)

// TestHandlerConcurrentClients drives 32 concurrent HTTP clients — raw
// requests plus dialled webiface.Clients — against ONE handler over ONE
// hiddendb.Iface. Run under -race (the CI race job covers ./webiface)
// this locks in the snapshot-era concurrency contract: the serving path
// shares a single interface across Go's per-request goroutines.
func TestHandlerConcurrentClients(t *testing.T) {
	env, srv := newServer(t, 31, 4000, 50)
	local := hiddendb.NewIface(env.Store, 50, nil)

	// Reference answers computed single-threaded.
	queries := make([]hiddendb.Query, 16)
	want := make([][]uint64, len(queries))
	for i := range queries {
		switch i % 3 {
		case 0:
			queries[i] = hiddendb.NewQuery(hiddendb.Pred{Attr: 0, Val: uint16(i % 4)})
		case 1: // non-prefix: rides the posting lists
			queries[i] = hiddendb.NewQuery(hiddendb.Pred{Attr: 7, Val: uint16(i % 3)})
		default:
			queries[i] = hiddendb.NewQuery(
				hiddendb.Pred{Attr: 2, Val: uint16(i % 3)},
				hiddendb.Pred{Attr: 5, Val: uint16(i % 2)},
			)
		}
		r, err := local.Search(queries[i])
		if err != nil {
			t.Fatal(err)
		}
		for _, tu := range r.Tuples {
			want[i] = append(want[i], tu.ID)
		}
	}

	const clients = 32
	const perClient = 12
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			if c%4 == 0 {
				// A full webiface.Client (schema dial + searches).
				cl, err := Dial(srv.URL, ClientOptions{})
				if err != nil {
					errs <- err
					return
				}
				s := cl.NewSession(perClient)
				for i := 0; i < perClient; i++ {
					qi := (c + i) % len(queries)
					res, err := s.Search(queries[qi])
					if err != nil {
						errs <- err
						return
					}
					if len(res.Tuples) != len(want[qi]) {
						errs <- fmt.Errorf("client %d: %d tuples, want %d", c, len(res.Tuples), len(want[qi]))
						return
					}
					for j, tu := range res.Tuples {
						if tu.ID != want[qi][j] {
							errs <- fmt.Errorf("client %d: rank %d diverged", c, j)
							return
						}
					}
				}
				return
			}
			// Raw HTTP requests.
			for i := 0; i < perClient; i++ {
				qi := (c + i) % len(queries)
				u := srv.URL + "/v1/search"
				sep := "?"
				for _, p := range queries[qi].Preds() {
					u += fmt.Sprintf("%swhere=%d:%d", sep, p.Attr, p.Val)
					sep = "&"
				}
				resp, err := srv.Client().Get(u)
				if err != nil {
					errs <- err
					return
				}
				var wr wireResult
				err = json.NewDecoder(resp.Body).Decode(&wr)
				resp.Body.Close()
				if err != nil {
					errs <- err
					return
				}
				if len(wr.Tuples) != len(want[qi]) {
					errs <- fmt.Errorf("client %d: %d tuples, want %d", c, len(wr.Tuples), len(want[qi]))
					return
				}
				for j, tu := range wr.Tuples {
					if tu.ID != want[qi][j] {
						errs <- fmt.Errorf("client %d: rank %d diverged", c, j)
						return
					}
				}
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestHandlerServesAcrossRounds checks the freeze/update serving cycle:
// concurrent clients search a frozen round, the (single) harness
// goroutine applies updates at the round boundary, and the next round's
// answers reflect them.
func TestHandlerServesAcrossRounds(t *testing.T) {
	data := workload.AutosLikeN(33, 3000, 8)
	env, err := workload.NewEnv(data, 2500, 34)
	if err != nil {
		t.Fatal(err)
	}
	iface := hiddendb.NewIface(env.Store, 40, nil)
	h := NewHandler(iface)
	srv := httptest.NewServer(h)
	defer srv.Close()

	get := func(path string) []byte {
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: %s (%s)", path, resp.Status, body)
		}
		return body
	}

	lastVersion := uint64(0)
	for round := 0; round < 3; round++ {
		var wg sync.WaitGroup
		for c := 0; c < 32; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				for i := 0; i < 5; i++ {
					get(fmt.Sprintf("/v1/search?where=3:%d", (c+i)%3))
				}
			}(c)
		}
		wg.Wait()

		var stats wireStats
		if err := json.Unmarshal(get("/v1/stats"), &stats); err != nil {
			t.Fatal(err)
		}
		if round > 0 && stats.Version == lastVersion {
			t.Fatalf("round %d: version did not advance past %d", round, lastVersion)
		}
		lastVersion = stats.Version

		// Round boundary: the harness mutates alone.
		if err := env.InsertFromPool(50); err != nil {
			t.Fatal(err)
		}
		if err := env.DeleteFraction(0.01); err != nil {
			t.Fatal(err)
		}
		h.ResetBudgets()
	}
}

// TestHandlerPerKeyBudget checks the per-API-key budget accounting: each
// key gets its own allowance, anonymous traffic shares one bucket, and
// ResetBudgets opens the next round.
func TestHandlerPerKeyBudget(t *testing.T) {
	env, srv := newServer(t, 35, 2000, 20)
	_ = env
	// Rebuild with a budget (newServer installs no handler hooks).
	data := workload.AutosLikeN(36, 2000, 8)
	env2, err := workload.NewEnv(data, 1800, 37)
	if err != nil {
		t.Fatal(err)
	}
	h := NewHandler(hiddendb.NewIface(env2.Store, 20, nil))
	h.SetPerKeyBudget(3)
	srv2 := httptest.NewServer(h)
	defer srv2.Close()
	srv.Close()

	status := func(key string) int {
		req, _ := http.NewRequest(http.MethodGet, srv2.URL+"/v1/search?where=0:1", nil)
		if key != "" {
			req.Header.Set("X-API-Key", key)
		}
		resp, err := srv2.Client().Do(req)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode
	}

	for i := 0; i < 3; i++ {
		if got := status("alice"); got != http.StatusOK {
			t.Fatalf("alice query %d: status %d", i, got)
		}
	}
	if got := status("alice"); got != http.StatusTooManyRequests {
		t.Fatalf("alice over budget: status %d, want 429", got)
	}
	// Bob has his own budget; anonymous traffic has its own bucket.
	if got := status("bob"); got != http.StatusOK {
		t.Fatalf("bob first query: status %d", got)
	}
	if got := status(""); got != http.StatusOK {
		t.Fatalf("anonymous first query: status %d", got)
	}
	// A new round restores alice.
	h.ResetBudgets()
	if got := status("alice"); got != http.StatusOK {
		t.Fatalf("alice after reset: status %d", got)
	}
	// The key= query parameter is an alias for the header.
	resp, err := srv2.Client().Get(srv2.URL + "/v1/search?where=0:1&key=bob")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("bob via key param: status %d", resp.StatusCode)
	}

	// Malformed and duplicate-predicate requests get 400 and must NOT
	// burn budget: dave sends three bad requests, then still has his
	// full allowance of 3.
	for _, bad := range []string{"where=nope", "where=0:1&where=0:2", "where=99:0"} {
		resp, err := srv2.Client().Get(srv2.URL + "/v1/search?" + bad + "&key=dave")
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("bad request %q: status %d, want 400", bad, resp.StatusCode)
		}
	}
	for i := 0; i < 3; i++ {
		if got := status("dave"); got != http.StatusOK {
			t.Fatalf("dave query %d after bad requests: status %d", i, got)
		}
	}
	if got := status("dave"); got != http.StatusTooManyRequests {
		t.Fatalf("dave over budget: status %d, want 429", got)
	}
}
