// Command dynagg-fleet runs the multi-tenant tracking fleet: one
// scheduler multiplexing many tracked aggregates — local simulations
// and/or remote dynagg-serve URLs — over a shared per-tick query budget
// (weighted fair sharing), a shared per-host client pool, and per-task
// crash/resume checkpoints under one fleet directory.
//
// Tasks come from a JSON manifest (-manifest, an array of task specs)
// and/or the HTTP control plane at runtime; with -dir set, the whole
// fleet — task specs, tick counter, every task's drill-down pool — is
// restored on restart.
//
// Usage examples:
//
//	dynagg-fleet -manifest tasks.json -dir /var/lib/dynagg/fleet \
//	    -tick 1m -tick-budget 2000
//	dynagg-fleet -tick 10s                # empty fleet; add tasks over HTTP
//
// A manifest entry looks like:
//
//	{"id": "amazon-count", "remote": "http://db:8080", "algorithm": "RS",
//	 "weight": 2, "seed": 7,
//	 "aggregates": [{"kind": "AVG", "aux_field": 0, "name": "AVG(price)"}]}
//
// Local entries use "target": "local" (the built-in churned simulation)
// instead of "remote". While running:
//
//	curl localhost:8095/status                    # fleet + per-task rows
//	curl localhost:8095/tasks                     # task list
//	curl -X POST localhost:8095/tasks -d @spec.json
//	curl -X POST localhost:8095/tasks/amazon-count/pause
//	curl -X DELETE localhost:8095/tasks/amazon-count
//	curl localhost:8095/tasks/amazon-count/estimates
//	curl localhost:8095/metrics                   # Prometheus plaintext
//
// Interrupting the process (SIGINT/SIGTERM) finishes the in-flight tick,
// drains the control plane and exits; restarting with the same -dir
// resumes every task mid-stream.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	dynagg "github.com/dynagg/dynagg"
	"github.com/dynagg/dynagg/internal/fleet"
	"github.com/dynagg/dynagg/internal/obs"
	"github.com/dynagg/dynagg/internal/tracking"
	"github.com/dynagg/dynagg/webiface"
)

// fatal reports a startup error through the structured logger and exits.
func fatal(log *slog.Logger, msg string, err error) {
	log.Error(msg, "error", err)
	os.Exit(1)
}

func main() {
	var (
		addr       = flag.String("addr", ":8095", "control-plane HTTP listen address (empty = disabled)")
		dir        = flag.String("dir", "", "fleet directory: task checkpoints + state; restart resumes the whole fleet (empty = no persistence)")
		manifest   = flag.String("manifest", "", "JSON task manifest (array of task specs) loaded at start")
		tick       = flag.Duration("tick", 10*time.Second, "scheduler tick cadence")
		ticks      = flag.Int("ticks", 0, "stop after this many ticks (0 = run until interrupted)")
		tickBudget = flag.Int("tick-budget", 1000, "global query budget split across runnable tasks each tick (0 = unlimited, local only)")

		// Built-in local simulation target (referenced as "target": "local").
		localN      = flag.Int("local-n", 40000, "local target: dataset size")
		localM      = flag.Int("local-m", 12, "local target: attributes (<=38)")
		localK      = flag.Int("local-k", 250, "local target: interface top-k cap")
		localSeed   = flag.Int64("local-seed", 1, "local target: dataset/churn seed")
		localInsert = flag.Int("local-insert", 300, "local target: tuples inserted per tick")
		localDelete = flag.Float64("local-delete", 0.001, "local target: fraction deleted per tick")

		// Shared remote-client defaults (per-task api_key overrides the key).
		minInterval = flag.Duration("min-interval", 0, "remote clients: minimum spacing between requests")
		reqTimeout  = flag.Duration("timeout", 15*time.Second, "remote clients: per-request timeout")

		logFormat = flag.String("log-format", "text", "log output format: text or json")
		pprofAddr = flag.String("pprof-addr", "", "optional admin listener serving net/http/pprof (empty = disabled)")
	)
	flag.Parse()
	logger, err := obs.NewLogger(*logFormat, os.Stderr)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	slog.SetDefault(logger)
	obs.ServePprof(*pprofAddr, logger)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	data := dynagg.AutosLikeN(*localSeed+100, *localN, *localM)
	env, err := dynagg.NewEnv(data, *localN*9/10, *localSeed+101)
	if err != nil {
		fatal(logger, "env", err)
	}
	iface := dynagg.NewIface(env.Store, *localK, nil)
	local := fleet.Target{
		Schema:           iface.Schema(),
		Source:           func(g int) tracking.Session { return iface.NewSession(g) },
		AnswerCacheStats: iface.CacheStats,
		PreTick: func(tick int) error {
			if tick == 1 {
				return nil
			}
			if err := env.InsertFromPool(*localInsert); err != nil {
				return err
			}
			if err := env.DeleteFraction(*localDelete); err != nil {
				return err
			}
			logger.Info("local churn applied", "size", env.Store.Size(), "version", env.Store.Version())
			return nil
		},
	}

	mgr, err := fleet.New(fleet.Config{
		TickBudget: *tickBudget,
		Interval:   *tick,
		Dir:        *dir,
		MaxTicks:   *ticks,
		Targets:    map[string]fleet.Target{"local": local},
		Client: webiface.ClientOptions{
			MinInterval:    *minInterval,
			RequestTimeout: *reqTimeout,
		},
	})
	if err != nil {
		fatal(logger, "fleet manager", err)
	}
	if st := mgr.Status(); st.TaskCount > 0 || len(st.FailedTasks) > 0 {
		logger.Info("fleet restored", "tasks", st.TaskCount, "dir", *dir, "tick", mgr.Ticks())
		for _, f := range st.FailedTasks {
			logger.Warn("task not restored; kept in state (POST the spec again or DELETE it)",
				"task", f.ID, "error", f.Error)
		}
	}

	if *manifest != "" {
		raw, err := os.ReadFile(*manifest)
		if err != nil {
			fatal(logger, "manifest", err)
		}
		var specs []fleet.TaskSpec
		if err := json.Unmarshal(raw, &specs); err != nil {
			fatal(logger, "manifest decode", err)
		}
		added := 0
		for _, spec := range specs {
			if _, exists := mgr.TaskView(spec.ID); exists {
				// The restored spec wins over the manifest entry — edits to
				// a live task's manifest line do NOT apply on restart.
				logger.Info("manifest entry ignored: task already restored (delete the task to apply manifest changes)",
					"task", spec.ID, "dir", *dir)
				continue
			}
			if err := mgr.Add(spec); err != nil {
				// One unreachable remote (or bad entry) must not take the
				// rest of the fleet down — mirror the restore path's
				// tolerate-and-surface behaviour. POST the spec once the
				// target recovers, or fix the manifest and restart.
				logger.Warn("manifest task not added", "task", spec.ID, "error", err)
				continue
			}
			added++
		}
		logger.Info("manifest loaded", "added", added, "path", *manifest)
	}

	if *addr != "" {
		srv := &http.Server{Addr: *addr, Handler: mgr.Handler()}
		go func() {
			logger.Info("control plane listening", "addr", *addr)
			if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				logger.Error("control plane failed", "error", err)
			}
		}()
		defer func() {
			sctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			_ = srv.Shutdown(sctx)
		}()
	}

	logger.Info("fleet scheduler started",
		"tick", (*tick).String(), "tick_budget", *tickBudget, "tasks", mgr.Status().TaskCount)
	if err := mgr.Run(ctx); err != nil {
		fatal(logger, "run", err)
	}
	st := mgr.Status()
	logger.Info("fleet stopped",
		"tick", st.Ticks, "tasks", st.TaskCount, "rounds", st.RoundsTotal,
		"queries", st.QueriesTotal, "wasted", st.WastedTotal)
	for _, t := range st.Tasks {
		for _, e := range t.View.Estimates {
			if e.OK {
				logger.Info("final estimate",
					"task", t.ID, "aggregate", e.Aggregate, "value", e.Value, "round", t.View.Round)
			}
		}
	}
}
