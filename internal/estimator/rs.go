package estimator

import (
	"math"
	"sort"

	"github.com/dynagg/dynagg/internal/agg"
	"github.com/dynagg/dynagg/internal/hiddendb"
	"github.com/dynagg/dynagg/internal/querytree"
	"github.com/dynagg/dynagg/internal/schema"
	"github.com/dynagg/dynagg/internal/stats"
)

// RS is RS-ESTIMATOR (paper §4, Algorithm 2). Drill downs are grouped by
// the round they were last updated in. At each round the estimator:
//
//  1. runs ϖ bootstrap ("pilot") drill downs per group to measure the
//     per-drill update cost g_x, the per-drill variance α_x of the
//     group's estimation term, and carries the historical estimate
//     variance β_x = Var(Q̃_x);
//  2. allocates the remaining budget across groups to minimise the
//     combined estimation variance — the discrete analogue of
//     Corollary 4.3, solved exactly by greedy marginal allocation since
//     each group's precision 1/(β+α/c) is concave in c;
//  3. executes the chosen updates and new drill downs in random order
//     (so a budget death is unbiased), and
//  4. combines the per-group estimates by inverse variance
//     (Corollary 4.2).
//
// When the database barely changes, α of the updated groups collapses and
// the budget flows into new drill downs; under drastic change the
// allocation degenerates to "update everything", i.e. REISSUE (the
// Corollary 4.1 discussion).
type RS struct {
	*base
	pool []*drill
	// hist[x] holds the combined estimates produced at round x (indexed
	// from 1; entry 0 unused).
	hist []histEntry
	// optimizeDelta switches the allocation target to the trans-round
	// delta Q(D_j)−Q(D_{j-1}) instead of the single-round aggregate.
	optimizeDelta bool
	// primary selects the aggregate driving allocation decisions.
	primary int
	// vm holds the smoothed variance models, one per aggregate.
	vm []varModel
}

type histEntry struct {
	est []Estimate
	ok  []bool
}

// varModel smooths the pooled per-drill variances across rounds, one per
// tracked aggregate. Combination weights must not depend on the values
// observed in the current round: with heavy-tailed Horvitz–Thompson
// estimates, a round that catches a rare high-probability-mass tuple also
// reports a huge sample variance and would be down-weighted exactly when
// it carries the most information — a systematic downward bias. Weighting
// by the previous rounds' smoothed variances removes that coupling.
type varModel struct {
	ht       float64 // per-drill variance of a fresh HT estimate
	diff     float64 // per-drill variance of a one-round paired diff
	haveHT   bool
	haveDiff bool
}

// observe folds one round's pooled sample variances into the model.
func (m *varModel) observe(ht float64, htN int, diff float64, diffN int) {
	const lambda = 0.5
	if htN >= 2 {
		if m.haveHT {
			m.ht = lambda*ht + (1-lambda)*m.ht
		} else {
			m.ht = ht
			m.haveHT = true
		}
	}
	if diffN >= 2 {
		if m.haveDiff {
			m.diff = lambda*diff + (1-lambda)*m.diff
		} else {
			m.diff = diff
			m.haveDiff = true
		}
	}
}

// htVar returns the smoothed fresh-drill variance, falling back to the
// caller's current-round pooled estimate before any history exists.
func (m *varModel) htVar(fallback float64) float64 {
	if m.haveHT {
		return m.ht
	}
	return fallback
}

// diffVarFor returns the per-drill variance of a paired diff spanning gap
// rounds. Diffs accumulate change round over round (random-walk scaling);
// a floor of 1% of the HT variance keeps history from being treated as
// exact, and before any diff has been observed the model stays
// conservative at half the HT variance.
func (m *varModel) diffVarFor(gap int, htFallback float64) float64 {
	ht := m.htVar(htFallback)
	if gap < 1 {
		gap = 1
	}
	if !m.haveDiff {
		return 0.5 * ht * float64(gap)
	}
	base := m.diff
	if floor := 0.01 * ht; base < floor {
		base = floor
	}
	return base * float64(gap)
}

// RSOption tweaks RS-specific behaviour.
type RSOption func(*RS)

// WithDeltaTarget makes the budget allocation optimise the trans-round
// delta instead of the single-round aggregate (used when the tracked
// quantity is |D_j| − |D_{j-1}|, Figs. 15–17).
func WithDeltaTarget() RSOption {
	return func(r *RS) { r.optimizeDelta = true }
}

// WithPrimaryAggregate selects which tracked aggregate drives the budget
// allocation (default: the first).
func WithPrimaryAggregate(i int) RSOption {
	return func(r *RS) { r.primary = i }
}

// NewRS builds the reservoir-style estimator.
func NewRS(sch *schema.Schema, aggs []*agg.Aggregate, cfg Config, opts ...RSOption) (*RS, error) {
	b, err := newBase("RS", sch, aggs, cfg)
	if err != nil {
		return nil, err
	}
	r := &RS{base: b, hist: make([]histEntry, 1), vm: make([]varModel, len(aggs))}
	for _, o := range opts {
		o(r)
	}
	if r.primary < 0 || r.primary >= len(aggs) {
		r.primary = 0
	}
	return r, nil
}

// group aggregates the per-round bookkeeping for drills last updated at
// round key (key == newGroupKey means fresh drill downs).
const newGroupKey = -1

type rsGroup struct {
	key     int
	members []*drill // unupdated members (for key != newGroupKey)
	updated []*drill // drills refreshed this round from this group
	costs   []float64

	alpha float64 // per-drill variance of this group's estimation term
	beta  float64 // variance carried from history
	g     float64 // mean per-drill query cost
	want  int     // allocation target c_x (including pilots)
}

// Step runs one round of RS-ESTIMATOR.
func (r *RS) Step(sess Session) error {
	r.round++
	startUsed := sess.Used()
	s := r.searcher(sess)

	budgetDead := false

	// Retire the stalest drills so the number of live groups stays
	// bounded: Algorithm 2 pilots every group each round, and with an
	// unbounded number of last-updated rounds the pilot pass alone would
	// consume the whole budget (ϖ·j ≥ G after enough rounds), starving
	// the informative arms. A retired drill's information persists in the
	// carried estimate chain Q̃, and retirement is value-blind (purely by
	// age), so the surviving groups remain uniform random signature sets.
	r.retireStaleGroups()

	// Collect groups by last-updated round.
	byRound := make(map[int][]*drill)
	for _, d := range r.pool {
		byRound[d.cur.round] = append(byRound[d.cur.round], d)
	}
	var groups []*rsGroup
	for x, members := range byRound {
		groups = append(groups, &rsGroup{key: x, members: members})
	}
	sort.Slice(groups, func(i, j int) bool { return groups[i].key < groups[j].key })
	groups = append(groups, &rsGroup{key: newGroupKey})

	// Phase 1: pilots. Budget a fraction of G for bootstrapping so that
	// late rounds with many groups cannot starve the execution phase.
	// The whole pilot pass is planned up front (pilot sets sampled
	// without replacement via Fisher-Yates prefixes, fresh signatures
	// drawn in group order) and handed to the execution engine, which
	// may issue the walks concurrently without changing any estimate.
	pilot := r.cfg.Pilot
	if g := sess.Budget(); g > 0 && pilot*len(groups) > g/3 {
		pilot = maxInt(1, g/(3*len(groups)))
	}
	var ops []drillOp
	var opGrp []*rsGroup
	for _, grp := range groups {
		n := pilot
		if grp.key != newGroupKey {
			n = minInt(n, len(grp.members))
			r.shufflePrefix(grp.members, n)
			for i := 0; i < n; i++ {
				ops = append(ops, r.planUpdate(grp.members[i]))
				opGrp = append(opGrp, grp)
			}
		} else {
			for i := 0; i < n; i++ {
				ops = append(ops, r.planFresh())
				opGrp = append(opGrp, grp)
			}
		}
	}
	results := r.runPlan(sess, s, ops)
	var err error
	budgetDead, err = applyResults(ops, results, func(i int, o querytree.Outcome) {
		grp := r.applyPlanned(&ops[i], opGrp[i], o)
		grp.costs = append(grp.costs, float64(o.Cost))
	})
	if err != nil {
		return err
	}
	for _, grp := range groups {
		if grp.key != newGroupKey {
			grp.members = grp.members[len(grp.updated):]
		}
	}

	// Phase 2: estimate α, β, g per group and allocate the remaining
	// budget (Corollary 4.3, solved by greedy marginal allocation).
	htVar := r.pooledHTVariance(groups)
	for _, grp := range groups {
		grp.g = meanOr(grp.costs, 2)
		grp.alpha = r.groupAlpha(grp, htVar)
		grp.beta = r.groupBeta(grp)
		grp.want = len(grp.updated)
	}
	if !budgetDead {
		r.allocate(groups, float64(sess.Remaining()))
		if err := r.execute(sess, s, groups, &budgetDead); err != nil {
			return err
		}
	}
	r.used = sess.Used() - startUsed

	// Phase 3: combine per-group estimates (Corollary 4.2) using the
	// previous rounds' variance models, then fold this round's pooled
	// samples into the models for the next round.
	entry := histEntry{est: make([]Estimate, len(r.aggs)), ok: make([]bool, len(r.aggs))}
	for i, ag := range r.aggs {
		if est, ok := r.combineSingle(ag, groups, i); ok {
			r.estimates[i] = est
			r.estOK[i] = true
			entry.est[i] = est
			entry.ok[i] = true
		}
		if est, ok := r.combineDelta(ag, groups, i); ok {
			r.deltas[i] = est
			r.deltaOK[i] = true
		} else {
			r.deltaOK[i] = false
		}
	}
	r.hist = append(r.hist, entry)
	r.updateVarModels(groups)
	r.gcPool()
	return nil
}

// updateVarModels feeds this round's pooled per-drill HT variance and
// one-round paired-diff variance into the per-aggregate smoothers.
func (r *RS) updateVarModels(groups []*rsGroup) {
	for i, ag := range r.aggs {
		var ht, diff stats.Running
		for _, grp := range groups {
			for _, d := range grp.updated {
				ht.Add(ag.Primary(d.cur.scaled(i)))
				if grp.key == r.round-1 {
					ht2 := ag.Primary(d.cur.scaled(i)) - ag.Primary(d.prev.scaled(i))
					diff.Add(ht2)
				}
			}
		}
		r.vm[i].observe(ht.Var(), ht.N(), diff.Var(), diff.N())
	}
}

// shufflePrefix moves n uniformly chosen elements to the front of ds.
func (r *RS) shufflePrefix(ds []*drill, n int) {
	for i := 0; i < n && i < len(ds); i++ {
		j := i + r.cfg.Rand.Intn(len(ds)-i)
		ds[i], ds[j] = ds[j], ds[i]
	}
}

// pooledHTVariance estimates the per-drill variance of a plain
// Horvitz–Thompson estimate (π_j of the primary aggregate) pooled over
// every drill refreshed this round. Drill-down estimates are zero-inflated
// and heavy-tailed, so small per-group samples wildly underestimate their
// own variance; the pooled value anchors the rule-of-three floors below.
func (r *RS) pooledHTVariance(groups []*rsGroup) float64 {
	var run stats.Running
	i := r.primary
	a := r.aggs[i]
	for _, grp := range groups {
		for _, d := range grp.updated {
			run.Add(a.Primary(d.cur.scaled(i)))
		}
	}
	return run.Var()
}

// groupAlpha returns the per-drill variance of the group's estimation
// term for the allocation target (the α of Corollary 4.3), taken from the
// smoothed variance models so that allocation does not chase this round's
// sampling noise: π_j − π_x terms carry the diff variance, fresh π_j terms
// the HT variance. Under the delta target the roles shift per §4.3's fQ
// cases (only the x = j−1 group contributes paired diffs).
func (r *RS) groupAlpha(grp *rsGroup, htVar float64) float64 {
	vm := &r.vm[r.primary]
	if grp.key == newGroupKey {
		return vm.htVar(htVar)
	}
	if r.optimizeDelta && grp.key != r.round-1 {
		return vm.htVar(htVar)
	}
	return vm.diffVarFor(r.round-grp.key, htVar)
}

// groupBeta is the carried variance β_x of the group's estimation term.
func (r *RS) groupBeta(grp *rsGroup) float64 {
	if r.optimizeDelta {
		// Delta target: the x = j−1 group needs no historical estimate
		// (fQ = π_j − π_{j-1}), everything else carries Var(Q̃_{j-1}).
		if grp.key == r.round-1 {
			return 0
		}
		if h, ok := r.histEst(r.round-1, r.primary); ok {
			return h.Variance
		}
		return 0
	}
	if grp.key == newGroupKey {
		return 0
	}
	if h, ok := r.histEst(grp.key, r.primary); ok {
		return h.Variance
	}
	return 0
}

func (r *RS) histEst(round, i int) (Estimate, bool) {
	if round < 1 || round >= len(r.hist) {
		return Estimate{}, false
	}
	if !r.hist[round].ok[i] {
		return Estimate{}, false
	}
	return r.hist[round].est[i], true
}

// allocate chooses how many drills each group should run this round.
// It maximises Σ_x 1/(β_x + α_x/c_x) subject to Σ_x g_x·c_x ≤ budget —
// the same optimisation as Corollary 4.3, solved exactly on integers by
// greedy marginal allocation (each group's precision is concave in c_x).
func (r *RS) allocate(groups []*rsGroup, budget float64) {
	precision := func(grp *rsGroup, c int) float64 {
		if c <= 0 {
			return 0
		}
		v := grp.beta + grp.alpha/float64(c)
		if v <= 0 {
			// Degenerate zero-variance group: one drill pins it down.
			if c >= 1 {
				return math.Inf(1)
			}
			return 0
		}
		return 1 / v
	}
	for budget > 0 {
		bestIdx := -1
		bestGain := 0.0
		for idx, grp := range groups {
			if grp.g > budget {
				continue
			}
			if grp.key != newGroupKey && grp.want >= len(grp.members)+len(grp.updated) {
				continue // group exhausted
			}
			if math.IsInf(grp.alpha, 1) && grp.want >= 2 {
				// Unknown variance: sample at most two to learn it.
				continue
			}
			gain := (precision(grp, grp.want+1) - precision(grp, grp.want)) / grp.g
			if math.IsInf(grp.alpha, 1) {
				gain = math.SmallestNonzeroFloat64 // last resort only
			}
			if gain > bestGain || bestIdx == -1 && gain > 0 {
				bestGain = gain
				bestIdx = idx
			}
		}
		if bestIdx == -1 {
			// Nothing gains: spend the remainder on new drill downs,
			// which always reduce variance of the new-group term.
			groups[len(groups)-1].want += int(budget / groups[len(groups)-1].g)
			return
		}
		groups[bestIdx].want++
		budget -= groups[bestIdx].g
	}
}

// execute runs the allocated updates/new drills in random order until the
// plan completes or the budget dies (Algorithm 2's pooled execution). The
// task order is shuffled and every random choice (fresh signatures,
// member pops) drawn at plan time, so the execution engine may issue the
// walks concurrently without changing any estimate.
func (r *RS) execute(sess Session, s hiddendb.Searcher, groups []*rsGroup, budgetDead *bool) error {
	var order []*rsGroup
	for _, grp := range groups {
		extra := grp.want - len(grp.updated)
		if grp.key != newGroupKey {
			extra = minInt(extra, len(grp.members))
		}
		for i := 0; i < extra; i++ {
			order = append(order, grp)
		}
	}
	r.cfg.Rand.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })

	// Plan: pool growth is simulated so the MaxDrills cap sees exactly
	// what sequential execution would (apply order == plan order).
	poolLen := len(r.pool)
	var ops []drillOp
	var opGrp []*rsGroup
	for _, grp := range order {
		if grp.key == newGroupKey {
			if r.cfg.MaxDrills > 0 && poolLen >= r.cfg.MaxDrills {
				continue
			}
			ops = append(ops, r.planFresh())
			opGrp = append(opGrp, grp)
			poolLen++
			continue
		}
		if len(grp.members) == 0 {
			continue
		}
		// Pop a random unupdated member.
		j := r.cfg.Rand.Intn(len(grp.members))
		d := grp.members[j]
		grp.members[j] = grp.members[len(grp.members)-1]
		grp.members = grp.members[:len(grp.members)-1]
		ops = append(ops, r.planUpdate(d))
		opGrp = append(opGrp, grp)
	}

	results := r.runPlan(sess, s, ops)
	dead, err := applyResults(ops, results, func(i int, o querytree.Outcome) {
		r.applyPlanned(&ops[i], opGrp[i], o)
	})
	if dead {
		*budgetDead = true
	}
	return err
}

// applyPlanned folds one completed walk into its RS group: a fresh drill
// joins the pool, an update refreshes its drill; either way the drill
// counts as refreshed this round.
func (r *RS) applyPlanned(op *drillOp, grp *rsGroup, o querytree.Outcome) *rsGroup {
	if op.d == nil {
		d := r.applyFresh(op, o, r.round)
		r.pool = append(r.pool, d)
		grp.updated = append(grp.updated, d)
	} else {
		r.applyUpdate(op.d, o, r.round)
		grp.updated = append(grp.updated, op.d)
	}
	return grp
}

// groupPart is one group's contribution to the combined estimate, split
// into an independent variance component (fresh sampling noise) and a
// carried component (the historical estimate's variance, which is shared
// — not diversifiable — across groups built on the same history).
type groupPart struct {
	pair    agg.Pair
	value   float64
	indep   float64 // variance of this group's fresh term
	carried float64 // Var(Q̃_x) inherited from history (0 for new drills)
	n       int
}

// combineParts merges group parts into one estimate. Old groups share
// their history, so pooling them must not shrink the carried variance the
// way independent estimates would: old parts are combined with weights
// 1/(carried+indep) but their pooled variance is floored at the smallest
// single part's total variance; the new-drill part (truly independent) is
// then folded in harmonically. Without this distinction the reported
// variance collapses and the estimator freezes on stale history.
func combineParts(a *agg.Aggregate, parts []groupPart) (Estimate, bool) {
	if len(parts) == 0 {
		return Estimate{}, false
	}
	const tiny = 1e-30
	var olds, news []groupPart
	for _, p := range parts {
		if p.carried > 0 {
			olds = append(olds, p)
		} else {
			news = append(news, p)
		}
	}
	merge := func(ps []groupPart, floorAtBest bool) (groupPart, bool) {
		if len(ps) == 0 {
			return groupPart{}, false
		}
		var wsum float64
		var out groupPart
		best := math.Inf(1)
		for _, p := range ps {
			v := p.carried + p.indep
			if v < best {
				best = v
			}
			w := 1 / math.Max(v, tiny)
			out.pair.SumF += w * p.pair.SumF
			out.pair.Count += w * p.pair.Count
			out.value += w * p.value
			out.n += p.n
			wsum += w
		}
		out.pair.SumF /= wsum
		out.pair.Count /= wsum
		out.value /= wsum
		pooled := 1 / wsum
		if floorAtBest && pooled < best {
			pooled = best // correlated parts cannot beat the best one
		}
		out.indep = pooled
		return out, true
	}
	oldPart, haveOld := merge(olds, true)
	newPart, haveNew := merge(news, false)
	var final []groupPart
	if haveOld {
		final = append(final, oldPart)
	}
	if haveNew {
		final = append(final, newPart)
	}
	out, _ := merge(final, false)
	return Estimate{
		Value:    a.Finalize(out.pair),
		Pair:     out.pair,
		Variance: out.indep,
		Drills:   out.n,
	}, true
}

// combineSingle produces the round's single-round estimate for aggregate
// i by combining per-group estimates (Corollary 4.2, with the
// correlation-aware pooling described at combineParts).
func (r *RS) combineSingle(a *agg.Aggregate, groups []*rsGroup, i int) (Estimate, bool) {
	htVar := r.pooledHTVarianceFor(groups, i)
	var parts []groupPart
	for _, grp := range groups {
		n := len(grp.updated)
		if n == 0 {
			continue
		}
		var diffPair agg.Pair
		var terms []float64
		for _, d := range grp.updated {
			cs := d.cur.scaled(i)
			if grp.key == newGroupKey {
				diffPair.Add(cs)
				terms = append(terms, a.Primary(cs))
			} else {
				ps := d.prev.scaled(i)
				diffPair.Add(cs.Sub(ps))
				terms = append(terms, a.Primary(cs)-a.Primary(ps))
			}
		}
		fn := float64(n)
		meanPair := agg.Pair{SumF: diffPair.SumF / fn, Count: diffPair.Count / fn}

		if grp.key == newGroupKey {
			parts = append(parts, groupPart{
				pair:  meanPair,
				value: a.Primary(meanPair),
				indep: r.vm[i].htVar(htVar) / fn,
				n:     n,
			})
			continue
		}
		h, ok := r.histEst(grp.key, i)
		if !ok {
			continue // no usable historical estimate for this group
		}
		pair := agg.Pair{SumF: h.Pair.SumF + meanPair.SumF, Count: h.Pair.Count + meanPair.Count}
		parts = append(parts, groupPart{
			pair:    pair,
			value:   a.Primary(pair),
			indep:   r.vm[i].diffVarFor(r.round-grp.key, htVar) / fn,
			carried: math.Max(h.Variance, 1e-12),
			n:       n,
		})
	}
	return combineParts(a, parts)
}

// pooledHTVarianceFor is pooledHTVariance for an arbitrary aggregate
// index.
func (r *RS) pooledHTVarianceFor(groups []*rsGroup, i int) float64 {
	var run stats.Running
	a := r.aggs[i]
	for _, grp := range groups {
		for _, d := range grp.updated {
			run.Add(a.Primary(d.cur.scaled(i)))
		}
	}
	return run.Var()
}

// combineDelta estimates Q(D_j) − Q(D_{j-1}) (§4.3's fQ cases): drills
// last updated at j−1 contribute direct paired diffs (no carried
// variance); every other group contributes its single-round estimate
// minus Q̃_{j-1}, which carries the shared Var(Q̃_{j-1}).
func (r *RS) combineDelta(a *agg.Aggregate, groups []*rsGroup, i int) (Estimate, bool) {
	if r.round < 2 {
		return Estimate{}, false
	}
	prevH, havePrev := r.histEst(r.round-1, i)
	htVar := r.pooledHTVarianceFor(groups, i)

	var parts []groupPart
	for _, grp := range groups {
		n := len(grp.updated)
		if n == 0 {
			continue
		}
		if grp.key == r.round-1 {
			// Direct paired diff: fQ = π_j − π_{j-1}, no history carried.
			var diffPair agg.Pair
			var terms []float64
			for _, d := range grp.updated {
				cs, ps := d.cur.scaled(i), d.prev.scaled(i)
				diffPair.Add(cs.Sub(ps))
				terms = append(terms, a.Primary(cs)-a.Primary(ps))
			}
			fn := float64(n)
			meanPair := agg.Pair{SumF: diffPair.SumF / fn, Count: diffPair.Count / fn}
			parts = append(parts, groupPart{
				pair:  meanPair,
				value: a.Primary(meanPair),
				indep: r.vm[i].diffVarFor(1, htVar) / fn,
				n:     n,
			})
			continue
		}
		if !havePrev {
			continue
		}
		// fQ = (group's estimate of Q_j) − Q̃_{j-1}.
		var carried float64 // Var(Q̃_x) carried by old groups
		var hist Estimate
		if grp.key != newGroupKey {
			var ok bool
			hist, ok = r.histEst(grp.key, i)
			if !ok {
				continue
			}
			carried = hist.Variance
		}
		var curPair agg.Pair
		var terms []float64
		for _, d := range grp.updated {
			cs := d.cur.scaled(i)
			if grp.key == newGroupKey {
				curPair.Add(cs)
				terms = append(terms, a.Primary(cs))
			} else {
				ps := d.prev.scaled(i)
				curPair.Add(agg.Pair{
					SumF:  hist.Pair.SumF + cs.SumF - ps.SumF,
					Count: hist.Pair.Count + cs.Count - ps.Count,
				})
				terms = append(terms, hist.Value+a.Primary(cs)-a.Primary(ps))
			}
		}
		if len(terms) == 0 {
			continue
		}
		fn := float64(len(terms))
		meanPair := agg.Pair{SumF: curPair.SumF/fn - prevH.Pair.SumF, Count: curPair.Count/fn - prevH.Pair.Count}
		var sv float64
		if grp.key == newGroupKey {
			sv = r.vm[i].htVar(htVar)
		} else {
			sv = r.vm[i].diffVarFor(r.round-grp.key, htVar)
		}
		parts = append(parts, groupPart{
			pair:    meanPair,
			value:   a.Primary(meanPair),
			indep:   sv / fn,
			carried: carried + math.Max(prevH.Variance, 1e-12),
			n:       len(terms),
		})
	}
	return combineParts(a, parts)
}

// maxLiveGroups bounds the number of distinct last-updated rounds kept in
// the pool (plus the new-drill group formed each round).
const maxLiveGroups = 3

// retireStaleGroups drops drills whose last update is older than the
// maxLiveGroups most recent distinct rounds present in the pool.
func (r *RS) retireStaleGroups() {
	seen := map[int]bool{}
	for _, d := range r.pool {
		seen[d.cur.round] = true
	}
	if len(seen) <= maxLiveGroups {
		return
	}
	rounds := make([]int, 0, len(seen))
	for x := range seen {
		rounds = append(rounds, x)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(rounds)))
	cutoff := rounds[maxLiveGroups-1]
	kept := r.pool[:0]
	for _, d := range r.pool {
		if d.cur.round >= cutoff {
			kept = append(kept, d)
		}
	}
	r.pool = kept
}

// gcPool bounds memory: when MaxDrills is set, drop the stalest drills.
func (r *RS) gcPool() {
	if r.cfg.MaxDrills <= 0 || len(r.pool) <= r.cfg.MaxDrills {
		return
	}
	sort.SliceStable(r.pool, func(i, j int) bool { return r.pool[i].cur.round > r.pool[j].cur.round })
	r.pool = r.pool[:r.cfg.MaxDrills]
}

// PoolSize returns the number of live drill downs (diagnostics).
func (r *RS) PoolSize() int { return len(r.pool) }

// AdHoc evaluates a new aggregate against retained tuples of a past round
// (requires Config.RetainTuples).
func (r *RS) AdHoc(a *agg.Aggregate, round int) (Estimate, error) {
	return adHocPair(r.pool, a, round)
}

var _ Estimator = (*RS)(nil)

// meanOr returns the mean of xs, or def when xs is empty.
func meanOr(xs []float64, def float64) float64 {
	if len(xs) == 0 {
		return def
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
