package estimator

import (
	"fmt"
	"math"
	"math/rand"
	"net/http/httptest"
	"testing"

	"github.com/dynagg/dynagg/internal/agg"
	"github.com/dynagg/dynagg/internal/hiddendb"
	"github.com/dynagg/dynagg/internal/workload"
	"github.com/dynagg/dynagg/webiface"
)

// stepRecord captures everything estimator-observable after one Step.
type stepRecord struct {
	est     []Estimate
	estOK   []bool
	delta   []Estimate
	deltaOK []bool
	used    int
	drills  int
}

func recordStep(e Estimator, nAggs int) stepRecord {
	r := stepRecord{used: e.UsedLastRound(), drills: e.DrillDowns()}
	for i := 0; i < nAggs; i++ {
		est, ok := e.Estimate(i)
		r.est = append(r.est, est)
		r.estOK = append(r.estOK, ok)
		d, ok := e.EstimateDelta(i)
		r.delta = append(r.delta, d)
		r.deltaOK = append(r.deltaOK, ok)
	}
	return r
}

// estimatesEqual compares two estimates bit-for-bit (NaN-safe).
func estimatesEqual(a, b Estimate) bool {
	eq := func(x, y float64) bool { return math.Float64bits(x) == math.Float64bits(y) }
	return eq(a.Value, b.Value) && eq(a.Variance, b.Variance) &&
		eq(a.Pair.SumF, b.Pair.SumF) && eq(a.Pair.Count, b.Pair.Count) &&
		a.Drills == b.Drills
}

func compareRuns(t *testing.T, label string, want, got []stepRecord) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: %d vs %d rounds", label, len(want), len(got))
	}
	for round := range want {
		w, g := want[round], got[round]
		if w.used != g.used || w.drills != g.drills {
			t.Fatalf("%s round %d: used/drills (%d,%d) vs (%d,%d)",
				label, round+1, w.used, w.drills, g.used, g.drills)
		}
		for i := range w.est {
			if w.estOK[i] != g.estOK[i] || !estimatesEqual(w.est[i], g.est[i]) {
				t.Fatalf("%s round %d agg %d: estimate %+v (ok=%v) vs %+v (ok=%v)",
					label, round+1, i, w.est[i], w.estOK[i], g.est[i], g.estOK[i])
			}
			if w.deltaOK[i] != g.deltaOK[i] || (w.deltaOK[i] && !estimatesEqual(w.delta[i], g.delta[i])) {
				t.Fatalf("%s round %d agg %d: delta %+v vs %+v", label, round+1, i, w.delta[i], g.delta[i])
			}
		}
	}
}

func newAlgo(t *testing.T, algo string, te *testEnv, c Config, aggs []*agg.Aggregate) Estimator {
	t.Helper()
	var e Estimator
	var err error
	switch algo {
	case "RESTART":
		e, err = NewRestart(te.env.Store.Schema(), aggs, c)
	case "REISSUE":
		e, err = NewReissue(te.env.Store.Schema(), aggs, c)
	case "RS":
		e, err = NewRS(te.env.Store.Schema(), aggs, c)
	default:
		t.Fatalf("unknown algo %s", algo)
	}
	if err != nil {
		t.Fatal(err)
	}
	return e
}

var equivAggs = func() []*agg.Aggregate {
	return []*agg.Aggregate{agg.CountAll(), agg.SumOf("SUM(price)", agg.AuxField(0))}
}

// runLocalRounds executes one full tracking run (fresh environment, fresh
// estimator, deterministic churn) at the given executor parallelism.
func runLocalRounds(t *testing.T, algo string, seed int64, par, rounds, g int, batch bool) []stepRecord {
	t.Helper()
	te := newTestEnv(t, seed, 8000, 7000, 100)
	c := cfg(seed + 7)
	c.Parallelism = par
	c.Batch = batch
	aggs := equivAggs()
	e := newAlgo(t, algo, te, c, aggs)
	var recs []stepRecord
	for round := 1; round <= rounds; round++ {
		if round > 1 {
			if err := te.env.InsertFromPool(150); err != nil {
				t.Fatal(err)
			}
			if err := te.env.DeleteFraction(0.01); err != nil {
				t.Fatal(err)
			}
		}
		if err := e.Step(te.iface.NewSession(g)); err != nil {
			t.Fatalf("%s round %d: %v", algo, round, err)
		}
		recs = append(recs, recordStep(e, len(aggs)))
	}
	return recs
}

// TestExecutorParallelismEquivalenceLocal is the seeded equivalence fuzz
// over the local engine: for every estimator and several (seed, budget)
// draws, per-round estimates must be byte-identical at Parallelism 1, 2
// and 8 — the executor's core guarantee.
func TestExecutorParallelismEquivalenceLocal(t *testing.T) {
	fuzz := rand.New(rand.NewSource(20260728))
	for _, algo := range []string{"RESTART", "REISSUE", "RS"} {
		for trial := 0; trial < 3; trial++ {
			seed := int64(1000 + fuzz.Intn(100000))
			g := 60 + fuzz.Intn(300)
			name := fmt.Sprintf("%s/seed=%d/G=%d", algo, seed, g)
			t.Run(name, func(t *testing.T) {
				base := runLocalRounds(t, algo, seed, 1, 4, g, false)
				for _, par := range []int{2, 8} {
					got := runLocalRounds(t, algo, seed, par, 4, g, false)
					compareRuns(t, fmt.Sprintf("%s par=%d", name, par), base, got)
					batched := runLocalRounds(t, algo, seed, par, 4, g, true)
					compareRuns(t, fmt.Sprintf("%s par=%d batch", name, par), base, batched)
				}
			})
		}
	}
}

// runRemoteRounds is runLocalRounds against a remote Searcher: a fresh
// webiface.Handler server per run (identical seeds ⇒ identical database
// evolution), with the round budget enforced client-side so concurrent
// walks cannot race a server-side 429. With local=true the same database
// is tracked through a local session instead, for the lossless-wire
// comparison.
func runRemoteRounds(t *testing.T, algo string, seed int64, par, rounds, g int, local, batch bool) []stepRecord {
	t.Helper()
	data := workload.AutosLikeN(seed, 4000, 8)
	env, err := workload.NewEnv(data, 3600, seed+1)
	if err != nil {
		t.Fatal(err)
	}
	iface := hiddendb.NewIface(env.Store, 100, nil)
	srv := httptest.NewServer(webiface.NewHandler(iface))
	defer srv.Close()
	c, err := webiface.Dial(srv.URL, webiface.ClientOptions{})
	if err != nil {
		t.Fatal(err)
	}
	newSession := func() Session { return c.NewSession(g) }
	sch := c.Schema()
	if local {
		newSession = func() Session { return iface.NewSession(g) }
		sch = env.Store.Schema()
	}

	ecfg := cfg(seed + 7)
	ecfg.Parallelism = par
	ecfg.Batch = batch
	aggs := equivAggs()
	var e Estimator
	switch algo {
	case "RESTART":
		e, err = NewRestart(sch, aggs, ecfg)
	case "REISSUE":
		e, err = NewReissue(sch, aggs, ecfg)
	case "RS":
		e, err = NewRS(sch, aggs, ecfg)
	}
	if err != nil {
		t.Fatal(err)
	}
	var recs []stepRecord
	for round := 1; round <= rounds; round++ {
		if round > 1 {
			if err := env.InsertFromPool(150); err != nil {
				t.Fatal(err)
			}
		}
		if err := e.Step(newSession()); err != nil {
			t.Fatalf("%s round %d: %v", algo, round, err)
		}
		recs = append(recs, recordStep(e, len(aggs)))
	}
	return recs
}

// TestExecutorParallelismEquivalenceRemote proves the same guarantee over
// a remote Searcher (webiface.Client sharing one session across walk
// goroutines), and additionally that the remote run matches the local run
// on the same database — the wire format is lossless.
func TestExecutorParallelismEquivalenceRemote(t *testing.T) {
	if testing.Short() {
		t.Skip("remote equivalence is slow")
	}
	const seed, rounds, g = 4242, 3, 150
	for _, algo := range []string{"RESTART", "REISSUE", "RS"} {
		t.Run(algo, func(t *testing.T) {
			base := runRemoteRounds(t, algo, seed, 1, rounds, g, false, false)
			for _, par := range []int{2, 8} {
				got := runRemoteRounds(t, algo, seed, par, rounds, g, false, false)
				compareRuns(t, fmt.Sprintf("remote par=%d", par), base, got)
				batched := runRemoteRounds(t, algo, seed, par, rounds, g, false, true)
				compareRuns(t, fmt.Sprintf("remote par=%d batch", par), base, batched)
			}
			local := runRemoteRounds(t, algo, seed, 1, rounds, g, true, false)
			compareRuns(t, "remote vs local", local, base)
		})
	}
}

// TestExecutorSequentialFallbackWithHook: a session with a pre-search
// hook declares itself non-concurrent, so a Parallelism=8 estimator must
// silently run it sequentially — the hook sees a strictly increasing
// query index.
func TestExecutorSequentialFallbackWithHook(t *testing.T) {
	te := newTestEnv(t, 777, 6000, 5500, 100)
	c := cfg(778)
	c.Parallelism = 8
	e := newAlgo(t, "REISSUE", te, c, []*agg.Aggregate{agg.CountAll()})
	for round := 1; round <= 2; round++ {
		sess := te.iface.NewSession(200)
		last := -1
		ordered := true
		sess.SetPreSearchHook(func(qi int) {
			if qi != last+1 {
				ordered = false
			}
			last = qi
		})
		if err := e.Step(sess); err != nil {
			t.Fatal(err)
		}
		if !ordered {
			t.Fatal("hooked session saw out-of-order query indices: executor did not fall back to sequential")
		}
		if last+1 != sess.Used() {
			t.Fatalf("hook saw %d queries, session used %d", last+1, sess.Used())
		}
	}
}

// TestExecutorBudgetNeverExceededConcurrent: the wave/tail accounting
// must respect G exactly even at high parallelism and tiny budgets.
func TestExecutorBudgetNeverExceededConcurrent(t *testing.T) {
	for _, g := range []int{1, 3, 17, 120} {
		for _, algo := range []string{"RESTART", "REISSUE", "RS"} {
			te := newTestEnv(t, 888, 6000, 5500, 100)
			c := cfg(889)
			c.Parallelism = 8
			e := newAlgo(t, algo, te, c, []*agg.Aggregate{agg.CountAll()})
			for round := 1; round <= 3; round++ {
				sess := te.iface.NewSession(g)
				if err := e.Step(sess); err != nil {
					t.Fatalf("%s G=%d round %d: %v", algo, g, round, err)
				}
				if sess.Used() > g {
					t.Fatalf("%s G=%d: used %d", algo, g, sess.Used())
				}
				if e.UsedLastRound() != sess.Used() {
					t.Fatalf("%s G=%d: UsedLastRound=%d session=%d", algo, g, e.UsedLastRound(), sess.Used())
				}
			}
		}
	}
}
