package hiddendb

import (
	"math/bits"

	"github.com/dynagg/dynagg/internal/schema"
)

// Multi-list intersection kernels.
//
// The postings answering path intersects the candidate sets of every
// covered predicate, container by container, entirely over low-16-bit ID
// material — sorted uint16 arrays and bitmap words — and touches tuple
// memory only for the survivors. Kernel selection is by container form
// pair:
//
//   - array ∩ array:  galloping (exponential + binary search) when the
//     larger side is ≥ gallopRatio× the smaller, linear merge otherwise;
//   - array ∩ bitmap: probe each array entry into the bitmap (O(|array|));
//   - bitmap ∩ bitmap: word-AND all 1024 words, extracting set bits with
//     TrailingZeros64.
//
// Under broad-match NULL semantics a predicate's candidate set is the
// disjoint union of its value list and the attribute's NULL list; each
// part is intersected separately and the two (disjoint, sorted) results
// are merged with mergeUnion.

// predPostings is one covered predicate's candidate posting lists: the
// list for its value plus, under broad-match NULL semantics, the
// attribute's NULL list. The two carry disjoint ID sets. Either may be
// nil; size is their combined posting count.
type predPostings struct {
	val  *postingList
	null *postingList
	size int
}

// gallopRatio is the size asymmetry at which array∩array switches from a
// linear merge to exponential search in the larger side.
const gallopRatio = 16

// gallopTo returns the first index ≥ from at which a[idx] ≥ x, using
// exponential probing followed by binary search within the last doubling.
func gallopTo(a []uint16, from int, x uint16) int {
	if from >= len(a) || a[from] >= x {
		return from
	}
	bound := 1
	for from+bound < len(a) && a[from+bound] < x {
		bound <<= 1
	}
	lo := from + bound/2 + 1
	hi := from + bound
	if hi > len(a) {
		hi = len(a)
	}
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if a[mid] < x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// intersectArrays appends a ∩ b (both sorted, duplicate-free) to dst.
func intersectArrays(a, b, dst []uint16) []uint16 {
	if len(a) > len(b) {
		a, b = b, a
	}
	if len(a) == 0 {
		return dst
	}
	if len(b) >= gallopRatio*len(a) {
		j := 0
		for _, x := range a {
			j = gallopTo(b, j, x)
			if j == len(b) {
				break
			}
			if b[j] == x {
				dst = append(dst, x)
				j++
			}
		}
		return dst
	}
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			dst = append(dst, a[i])
			i++
			j++
		}
	}
	return dst
}

// probeBitmap appends the members of sorted array a that are set in b.
func probeBitmap(a []uint16, b *idBitmap, dst []uint16) []uint16 {
	for _, x := range a {
		if b.has(x) {
			dst = append(dst, x)
		}
	}
	return dst
}

// andBitmaps appends the sorted set bits of a AND b. The word loop is
// unrolled 8 wide (SIMD-width on a 512-bit vector unit; the compiler
// keeps the 8 ANDs in registers and the block OR gives one branch per
// 512 bits instead of one per word): intersections are sparse in
// practice, so most 8-word blocks are all-zero and skip straight past
// the extraction loop. Extraction order is unchanged — output is the
// same sorted sequence the scalar loop (andBitmapsScalar) produces.
func andBitmaps(a, b *idBitmap, dst []uint16) []uint16 {
	for w := 0; w < bitmapWords; w += 8 {
		m0 := a[w] & b[w]
		m1 := a[w+1] & b[w+1]
		m2 := a[w+2] & b[w+2]
		m3 := a[w+3] & b[w+3]
		m4 := a[w+4] & b[w+4]
		m5 := a[w+5] & b[w+5]
		m6 := a[w+6] & b[w+6]
		m7 := a[w+7] & b[w+7]
		if m0|m1|m2|m3|m4|m5|m6|m7 == 0 {
			continue
		}
		// Occupied block: straight-line extraction keeps the eight masks
		// in registers (no spill, no per-word call).
		base := uint16(w << 6)
		for m0 != 0 {
			dst = append(dst, base|uint16(bits.TrailingZeros64(m0)))
			m0 &= m0 - 1
		}
		for m1 != 0 {
			dst = append(dst, (base+64)|uint16(bits.TrailingZeros64(m1)))
			m1 &= m1 - 1
		}
		for m2 != 0 {
			dst = append(dst, (base+128)|uint16(bits.TrailingZeros64(m2)))
			m2 &= m2 - 1
		}
		for m3 != 0 {
			dst = append(dst, (base+192)|uint16(bits.TrailingZeros64(m3)))
			m3 &= m3 - 1
		}
		for m4 != 0 {
			dst = append(dst, (base+256)|uint16(bits.TrailingZeros64(m4)))
			m4 &= m4 - 1
		}
		for m5 != 0 {
			dst = append(dst, (base+320)|uint16(bits.TrailingZeros64(m5)))
			m5 &= m5 - 1
		}
		for m6 != 0 {
			dst = append(dst, (base+384)|uint16(bits.TrailingZeros64(m6)))
			m6 &= m6 - 1
		}
		for m7 != 0 {
			dst = append(dst, (base+448)|uint16(bits.TrailingZeros64(m7)))
			m7 &= m7 - 1
		}
	}
	return dst
}

// andBitmapsScalar is the pre-unroll word-at-a-time kernel, kept as the
// equivalence reference for the fuzz test and the "before" half of
// BenchmarkBitmapAND in BENCH_serving.json.
func andBitmapsScalar(a, b *idBitmap, dst []uint16) []uint16 {
	for w := 0; w < bitmapWords; w++ {
		m := a[w] & b[w]
		base := uint16(w << 6)
		for m != 0 {
			dst = append(dst, base|uint16(bits.TrailingZeros64(m)))
			m &= m - 1
		}
	}
	return dst
}

// mergeUnion appends the union of two disjoint sorted sets to dst.
func mergeUnion(a, b, dst []uint16) []uint16 {
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		if a[i] < b[j] {
			dst = append(dst, a[i])
			i++
		} else {
			dst = append(dst, b[j])
			j++
		}
	}
	dst = append(dst, a[i:]...)
	return append(dst, b[j:]...)
}

// intersectContainers appends c ∩ o, dispatching on the form pair.
func intersectContainers(c, o *pcontainer, dst []uint16) []uint16 {
	switch {
	case c.bits == nil && o.bits == nil:
		return intersectArrays(c.ids, o.ids, dst)
	case c.bits == nil:
		return probeBitmap(c.ids, o.bits, dst)
	case o.bits == nil:
		return probeBitmap(o.ids, c.bits, dst)
	default:
		return andBitmaps(c.bits, o.bits, dst)
	}
}

// intersectIDs appends cur ∩ o for an already-collected survivor set.
func intersectIDs(cur []uint16, o *pcontainer, dst []uint16) []uint16 {
	if o == nil || len(cur) == 0 {
		return dst
	}
	if o.bits != nil {
		return probeBitmap(cur, o.bits, dst)
	}
	return intersectArrays(cur, o.ids, dst)
}

// runIntersect computes the survivors of seed container c against every
// other covered predicate (sorted ascending by candidate-set size). The
// returned sorted low-16-bit IDs alias the scratch ping-pong buffers and
// are valid until the next runIntersect on the same scratch.
func (sc *queryScratch) runIntersect(c *pcontainer, others []predPostings) []uint16 {
	cur := sc.seedStep(c, others[0])
	for i := 1; i < len(others) && len(cur) > 0; i++ {
		cur = sc.idStep(cur, others[i], c.key)
	}
	return cur
}

// seedStep intersects the whole seed container with the first other
// predicate's candidate parts at the same key, leaving the result in
// bufA.
func (sc *queryScratch) seedStep(c *pcontainer, pp predPostings) []uint16 {
	pv := pp.val.container(c.key)
	pn := pp.null.container(c.key)
	switch {
	case pv == nil && pn == nil:
		sc.bufA = sc.bufA[:0]
	case pn == nil:
		sc.bufA = intersectContainers(c, pv, sc.bufA[:0])
	case pv == nil:
		sc.bufA = intersectContainers(c, pn, sc.bufA[:0])
	default:
		sc.bufC = intersectContainers(c, pv, sc.bufC[:0])
		sc.bufD = intersectContainers(c, pn, sc.bufD[:0])
		sc.bufA = mergeUnion(sc.bufC, sc.bufD, sc.bufA[:0])
	}
	return sc.bufA
}

// idStep narrows the running survivor set (always aliasing bufA) by one
// more predicate's candidate parts, writing into bufB and swapping the
// ping-pong buffers.
func (sc *queryScratch) idStep(cur []uint16, pp predPostings, key uint64) []uint16 {
	pv := pp.val.container(key)
	pn := pp.null.container(key)
	switch {
	case pv == nil && pn == nil:
		sc.bufB = sc.bufB[:0]
	case pn == nil:
		sc.bufB = intersectIDs(cur, pv, sc.bufB[:0])
	case pv == nil:
		sc.bufB = intersectIDs(cur, pn, sc.bufB[:0])
	default:
		sc.bufC = intersectIDs(cur, pv, sc.bufC[:0])
		sc.bufD = intersectIDs(cur, pn, sc.bufD[:0])
		sc.bufB = mergeUnion(sc.bufC, sc.bufD, sc.bufB[:0])
	}
	sc.bufA, sc.bufB = sc.bufB, sc.bufA
	return sc.bufA
}

// gatherEmit maps each surviving low-16-bit ID back to its payload tuple
// in the seed container and emits those passing the uncovered-predicate
// filter. Array seed: a galloping forward walk over c.ids (survivors are
// a sorted subset). Bitmap seed: rank lookup per survivor.
func (c *pcontainer) gatherEmit(surv []uint16, rest []Pred, broad bool, fn func(*schema.Tuple)) {
	if c.bits != nil {
		for _, low := range surv {
			t := c.tuples[c.rankOf(low)]
			if len(rest) == 0 || matchesPreds(t, rest, broad) {
				fn(t)
			}
		}
		return
	}
	j := 0
	for _, low := range surv {
		j = gallopTo(c.ids, j, low)
		t := c.tuples[j]
		j++
		if len(rest) == 0 || matchesPreds(t, rest, broad) {
			fn(t)
		}
	}
}
