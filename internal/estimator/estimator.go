// Package estimator implements the paper's three aggregate estimators for
// dynamic hidden web databases:
//
//   - RESTART-ESTIMATOR — the baseline: rerun the static drill-down
//     algorithm of Dasgupta et al. [13] from scratch every round.
//   - REISSUE-ESTIMATOR (paper §3, Algorithm 1) — keep the signature set
//     fixed across rounds and *update* each drill down from its previous
//     top non-overflowing node, drilling down or rolling up as needed.
//   - RS-ESTIMATOR (paper §4, Algorithm 2) — a reservoir-inspired
//     estimator that spends a small bootstrap budget measuring how much
//     the database changed, optimally splits the remaining budget between
//     updating old drill downs and starting new ones (Corollary 4.3), and
//     combines per-group estimates by inverse variance (Corollary 4.2).
//
// All estimators track one or more aggregates over the same drill-down
// pool and expose both single-round estimates and the trans-round delta
// Q(D_j) − Q(D_{j-1}).
//
// Every Step is split into deterministic PLANNING (ordered batches of
// drill-down walks, all randomness drawn up front from Config.Rand) and
// EXECUTION (exec.go), which may issue a batch's walks concurrently
// against a concurrent-safe session (Config.Parallelism). Estimates are
// byte-identical for every worker count.
package estimator

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"strconv"

	"github.com/dynagg/dynagg/internal/agg"
	"github.com/dynagg/dynagg/internal/hiddendb"
	"github.com/dynagg/dynagg/internal/querytree"
	"github.com/dynagg/dynagg/internal/schema"
)

// Config carries the knobs shared by all estimators.
type Config struct {
	// Rand drives every random choice (signatures, update order). Required.
	Rand *rand.Rand
	// Pilot is RS-ESTIMATOR's ϖ: bootstrap drill downs per group per
	// round. Defaults to 10 (the paper's default setting).
	Pilot int
	// RetainTuples keeps the tuples returned by each drill down's top
	// node, enabling ad hoc aggregates over past rounds (paper §5.1) at
	// the price of memory.
	RetainTuples bool
	// ClientCache, when set, caches query answers client-side within a
	// round so a repeated query costs no budget. The paper's cost model
	// charges every issuance (the RESTART analysis assumes it), so this
	// is OFF by default; it exists as an ablation.
	ClientCache bool
	// MaxDrills caps the total number of live drill downs an estimator
	// maintains (0 = unlimited). Guards memory in very long runs.
	MaxDrills int
	// BroadMatchNull must mirror the database's NULL policy (paper §5
	// "Other Issues"): under broad match a NULL tuple is returned by
	// every sibling branch of the drilled attribute, so its retrieval
	// probability is |Ui| times higher and its Horvitz–Thompson weight
	// must be divided accordingly.
	BroadMatchNull bool
	// Parallelism bounds how many of a round's planned drill-down walks
	// the execution engine (exec.go) issues concurrently against the
	// session. 0 reads DYNAGG_ESTIMATOR_WORKERS, defaulting to 1
	// (sequential). Estimates are byte-identical for every value; the
	// engine silently falls back to 1 when the session is not safe for
	// concurrent Search calls or ClientCache is on.
	Parallelism int
	// Batch issues each budget-covered wave of planned walks as lockstep
	// query batches through the session's SearchBatch (when it implements
	// hiddendb.BatchSearcher) instead of fanning goroutines out: one
	// round-trip per drill level, one snapshot/epoch pin per batch, one
	// budget charge per query. Estimates stay byte-identical to both the
	// sequential and the goroutine paths. Effective only with
	// Parallelism > 1 (waves exist only there); ignored otherwise.
	Batch bool
}

func (c Config) withDefaults() Config {
	if c.Pilot <= 0 {
		c.Pilot = 10
	}
	if c.Parallelism <= 0 {
		if v, _ := strconv.Atoi(os.Getenv("DYNAGG_ESTIMATOR_WORKERS")); v > 0 {
			c.Parallelism = v
		} else {
			c.Parallelism = 1
		}
	}
	return c
}

// Estimate is one aggregate's estimate at one round.
type Estimate struct {
	// Value is the estimated aggregate.
	Value float64
	// Pair is the estimated (Σf, Σ1) pair behind Value.
	Pair agg.Pair
	// Variance estimates the variance of the aggregate's primary scalar
	// (count component for COUNT, sum component otherwise); 0 when it
	// cannot be assessed (fewer than two contributing drill downs).
	Variance float64
	// Drills is the number of drill downs contributing.
	Drills int
}

// Session is the budgeted per-round query capability an estimator
// consumes. *hiddendb.Session implements it for simulated databases;
// webiface.Session implements it for databases behind an HTTP API.
type Session interface {
	hiddendb.Searcher
	// Used returns the queries issued so far in this round.
	Used() int
	// Remaining returns the unused budget (negative when unlimited).
	Remaining() int
	// Budget returns the round's budget G (<= 0 when unlimited).
	Budget() int
}

// Estimator is the common behaviour of RESTART, REISSUE and RS.
type Estimator interface {
	// Name identifies the algorithm ("RESTART", "REISSUE", "RS").
	Name() string
	// Step consumes one round's query budget from the session and
	// refreshes all estimates. Rounds are numbered from 1.
	Step(sess Session) error
	// Round returns the index of the last completed round (0 before the
	// first Step).
	Round() int
	// Estimate returns the current single-round estimate for the i-th
	// aggregate; ok is false if no estimate exists yet.
	Estimate(i int) (est Estimate, ok bool)
	// EstimateDelta returns the trans-round estimate of
	// Q(D_j) − Q(D_{j-1}); ok is false before round 2.
	EstimateDelta(i int) (est Estimate, ok bool)
	// Aggregates returns the tracked aggregate specs.
	Aggregates() []*agg.Aggregate
	// UsedLastRound returns the queries consumed by the last Step.
	UsedLastRound() int
	// DrillDowns returns the cumulative number of drill-down operations
	// (fresh or update) completed over the estimator's lifetime.
	DrillDowns() int
	// WastedQueries returns the cumulative number of queries spent on
	// speculatively issued walks whose results were never applied: when a
	// concurrently executed wave aborts on an error, walks later in the
	// wave may already have run (exec.go). Sequential execution never
	// wastes a query, so this is exactly the price of Parallelism > 1 on
	// rounds that end abnormally.
	WastedQueries() int
}

// contribution is the state of one drill down at one round: its top
// non-overflowing node and the raw aggregate pairs of that node's result.
type contribution struct {
	round  int
	depth  int
	prob   float64
	pairs  []agg.Pair // one per tracked aggregate, raw (unscaled)
	tuples []*schema.Tuple
}

// scaled returns the HT-inflated pair for aggregate i.
func (c *contribution) scaled(i int) agg.Pair { return c.pairs[i].Scale(c.prob) }

// drill is one signature and its update history (current and previous
// contributions). With Config.RetainTuples, every superseded contribution
// is archived in hist so ad hoc aggregates can be evaluated against any
// past round (§5.1).
type drill struct {
	sig  querytree.Signature
	cur  contribution
	prev contribution // prev.round == 0 means none
	hist []contribution
}

// at returns the drill's contribution for the given round, if retained.
func (d *drill) at(round int) *contribution {
	switch {
	case d.cur.round == round:
		return &d.cur
	case d.prev.round == round:
		return &d.prev
	}
	for i := len(d.hist) - 1; i >= 0; i-- {
		if d.hist[i].round == round {
			return &d.hist[i]
		}
	}
	return nil
}

// base holds the machinery shared by the three estimators.
type base struct {
	name   string
	sch    *schema.Schema
	aggs   []*agg.Aggregate
	tree   *querytree.Tree
	cfg    Config
	round  int
	used   int
	drills int // lifetime completed drill-down operations
	wasted int // lifetime queries spent on never-applied speculative walks

	estimates []Estimate
	estOK     []bool
	deltas    []Estimate
	deltaOK   []bool
}

func newBase(name string, sch *schema.Schema, aggs []*agg.Aggregate, cfg Config) (*base, error) {
	if len(aggs) == 0 {
		return nil, errors.New("estimator: at least one aggregate required")
	}
	if cfg.Rand == nil {
		return nil, errors.New("estimator: Config.Rand is required")
	}
	cfg = cfg.withDefaults()
	return &base{
		name:      name,
		sch:       sch,
		aggs:      aggs,
		tree:      treeFor(sch, aggs),
		cfg:       cfg,
		estimates: make([]Estimate, len(aggs)),
		estOK:     make([]bool, len(aggs)),
		deltas:    make([]Estimate, len(aggs)),
		deltaOK:   make([]bool, len(aggs)),
	}, nil
}

// treeFor builds the drill-down tree. When every tracked aggregate shares
// the same conjunctive selection condition, the tree is the subtree under
// it (paper §3.3); otherwise the full tree is used and each aggregate's
// selection is applied result-side, which stays unbiased per §2.2.
func treeFor(sch *schema.Schema, aggs []*agg.Aggregate) *querytree.Tree {
	shared := true
	for _, a := range aggs {
		if !a.HasSelQuery {
			shared = false
			break
		}
	}
	if shared {
		key := aggs[0].SelQuery.Key()
		for _, a := range aggs[1:] {
			if a.SelQuery.Key() != key {
				shared = false
				break
			}
		}
		if shared {
			return querytree.NewWithSelection(sch, aggs[0].SelQuery)
		}
	}
	return querytree.New(sch)
}

func (b *base) Name() string                 { return b.name }
func (b *base) Round() int                   { return b.round }
func (b *base) Aggregates() []*agg.Aggregate { return b.aggs }
func (b *base) UsedLastRound() int           { return b.used }
func (b *base) DrillDowns() int              { return b.drills }
func (b *base) WastedQueries() int           { return b.wasted }

func (b *base) Estimate(i int) (Estimate, bool) {
	if i < 0 || i >= len(b.aggs) || !b.estOK[i] {
		return Estimate{}, false
	}
	return b.estimates[i], true
}

func (b *base) EstimateDelta(i int) (Estimate, bool) {
	if i < 0 || i >= len(b.aggs) || !b.deltaOK[i] {
		return Estimate{}, false
	}
	return b.deltas[i], true
}

// searcher wraps the session per the config (client cache ablation).
func (b *base) searcher(sess Session) hiddendb.Searcher {
	if b.cfg.ClientCache {
		return newClientCache(sess)
	}
	return sess
}

// contributionOf evaluates all tracked aggregates on a drill outcome.
func (b *base) contributionOf(round int, o querytree.Outcome) contribution {
	c := contribution{
		round: round,
		depth: o.Depth,
		prob:  o.P(b.tree),
		pairs: make([]agg.Pair, len(b.aggs)),
	}
	if !b.cfg.BroadMatchNull {
		for i, a := range b.aggs {
			c.pairs[i] = a.PairOfTuples(o.Result.Tuples)
		}
	} else {
		// Broad-match NULL semantics: a tuple with NULL in a drilled
		// attribute is returned under every branch of that level, so its
		// per-tuple weight shrinks by the level's domain size (§5).
		for i, a := range b.aggs {
			var p agg.Pair
			for _, t := range o.Result.Tuples {
				tp := a.PairOfTuples([]*schema.Tuple{t})
				if w := b.nullWeight(t, o.Depth); w != 1 {
					tp = agg.Pair{SumF: tp.SumF * w, Count: tp.Count * w}
				}
				p.Add(tp)
			}
			c.pairs[i] = p
		}
	}
	if b.cfg.RetainTuples {
		c.tuples = o.Result.Tuples
	}
	return c
}

// nullWeight returns 1/∏|Ui| over the drilled levels above depth where t
// holds NULL — the broad-match retrieval-probability correction.
func (b *base) nullWeight(t *schema.Tuple, depth int) float64 {
	w := 1.0
	for lvl := 0; lvl < depth; lvl++ {
		attr := b.tree.LevelAttr(lvl)
		if t.Vals[attr] == schema.NullCode {
			w /= float64(b.sch.DomainSize(attr))
		}
	}
	return w
}

// meanEstimate averages the scaled contributions of the given drills for
// aggregate i (all drills must have cur.round == round).
func meanEstimate(a *agg.Aggregate, drills []*drill, i int) Estimate {
	if len(drills) == 0 {
		return Estimate{}
	}
	var pair agg.Pair
	var primaries []float64
	for _, d := range drills {
		sc := d.cur.scaled(i)
		pair.Add(sc)
		primaries = append(primaries, a.Primary(sc))
	}
	n := float64(len(drills))
	mean := agg.Pair{SumF: pair.SumF / n, Count: pair.Count / n}
	est := Estimate{
		Value:  a.Finalize(mean),
		Pair:   mean,
		Drills: len(drills),
	}
	est.Variance = sampleVarOfMean(primaries)
	return est
}

// sampleVarOfMean returns the Bessel-corrected variance of the mean of xs.
func sampleVarOfMean(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	var mean float64
	for _, x := range xs {
		mean += x
	}
	mean /= float64(n)
	var ss float64
	for _, x := range xs {
		ss += (x - mean) * (x - mean)
	}
	return ss / float64(n-1) / float64(n)
}

// pairedDelta estimates Q(D_j) − Q(D_{j-1}) for aggregate i from drills
// holding contributions at both rounds j and j−1.
func pairedDelta(a *agg.Aggregate, drills []*drill, i, j int) (Estimate, bool) {
	var curSum, prevSum agg.Pair
	var diffs []float64
	n := 0
	for _, d := range drills {
		// prev.round == 0 means the drill has never been updated.
		if d.prev.round == 0 || d.cur.round != j || d.prev.round != j-1 {
			continue
		}
		cs, ps := d.cur.scaled(i), d.prev.scaled(i)
		curSum.Add(cs)
		prevSum.Add(ps)
		diffs = append(diffs, a.Primary(cs)-a.Primary(ps))
		n++
	}
	if n == 0 {
		return Estimate{}, false
	}
	fn := float64(n)
	curMean := agg.Pair{SumF: curSum.SumF / fn, Count: curSum.Count / fn}
	prevMean := agg.Pair{SumF: prevSum.SumF / fn, Count: prevSum.Count / fn}
	est := Estimate{
		Value:    a.Finalize(curMean) - a.Finalize(prevMean),
		Pair:     curMean.Sub(prevMean),
		Drills:   n,
		Variance: sampleVarOfMean(diffs),
	}
	return est, true
}

// errIsBudget reports whether err means the round's budget ran out — the
// normal way a round ends, not a failure.
func errIsBudget(err error) bool {
	return errors.Is(err, hiddendb.ErrBudgetExhausted)
}

// clientCache is the optional client-side per-round answer cache. Repeats
// of a query within the round are served locally without spending budget.
type clientCache struct {
	inner hiddendb.Searcher
	seen  map[string]hiddendb.Result
}

func newClientCache(inner hiddendb.Searcher) *clientCache {
	return &clientCache{inner: inner, seen: make(map[string]hiddendb.Result)}
}

func (c *clientCache) Search(q hiddendb.Query) (hiddendb.Result, error) {
	key := q.Key()
	if r, ok := c.seen[key]; ok {
		return r, nil
	}
	r, err := c.inner.Search(q)
	if err != nil {
		return r, err
	}
	c.seen[key] = r
	return r, nil
}

func (c *clientCache) K() int                 { return c.inner.K() }
func (c *clientCache) Schema() *schema.Schema { return c.inner.Schema() }

// AdHocPair evaluates a NEW aggregate (not tracked at Step time) against
// the retained tuples of the drill downs current at the given round,
// supporting the ad hoc query model of §5.1. It requires
// Config.RetainTuples. The aggregate must not narrow the tree selection
// (its own selection is applied result-side).
func adHocPair(drills []*drill, a *agg.Aggregate, round int) (Estimate, error) {
	var pair agg.Pair
	var primaries []float64
	n := 0
	for _, d := range drills {
		c := d.at(round)
		if c == nil {
			continue
		}
		if c.tuples == nil && len(c.pairs) > 0 && c.pairs[0].Count > 0 {
			return Estimate{}, errors.New("estimator: ad hoc queries need Config.RetainTuples")
		}
		sc := a.PairOfTuples(c.tuples).Scale(c.prob)
		pair.Add(sc)
		primaries = append(primaries, a.Primary(sc))
		n++
	}
	if n == 0 {
		return Estimate{}, fmt.Errorf("estimator: no drill downs retained for round %d", round)
	}
	fn := float64(n)
	mean := agg.Pair{SumF: pair.SumF / fn, Count: pair.Count / fn}
	return Estimate{
		Value:    a.Finalize(mean),
		Pair:     mean,
		Drills:   n,
		Variance: sampleVarOfMean(primaries),
	}, nil
}
