// Package metrics renders Prometheus-style plaintext exposition for the
// serving binaries' /metrics endpoints (dynagg-serve, dynagg-track,
// dynagg-fleet). It is deliberately tiny — a text builder, not a metrics
// registry: every endpoint snapshots the state it already publishes
// (immutable views, atomic counters) and renders it on demand, so there
// is no background collection and nothing new to synchronise.
package metrics

import (
	"io"
	"sort"
	"strconv"
	"strings"
)

// ContentType is the Prometheus text exposition content type.
const ContentType = "text/plain; version=0.0.4; charset=utf-8"

// Builder accumulates one exposition document. The zero value is ready.
type Builder struct {
	sb strings.Builder
}

// Family starts a metric family: typ is "counter", "gauge" or
// "histogram". Call it once per family, before the family's Value (or
// Histogram) calls.
func (b *Builder) Family(name, typ, help string) {
	b.sb.WriteString("# HELP ")
	b.sb.WriteString(name)
	b.sb.WriteByte(' ')
	b.sb.WriteString(help)
	b.sb.WriteString("\n# TYPE ")
	b.sb.WriteString(name)
	b.sb.WriteByte(' ')
	b.sb.WriteString(typ)
	b.sb.WriteByte('\n')
}

// Value emits one sample. labelPairs are key, value alternations; an odd
// count is a programming error and panics. Emit samples in a
// deterministic order (see SortedKeys) so scrapes are diffable.
func (b *Builder) Value(name string, v float64, labelPairs ...string) {
	if len(labelPairs)%2 != 0 {
		panic("metrics: odd label pair count")
	}
	b.sb.WriteString(name)
	if len(labelPairs) > 0 {
		b.sb.WriteByte('{')
		for i := 0; i < len(labelPairs); i += 2 {
			if i > 0 {
				b.sb.WriteByte(',')
			}
			b.sb.WriteString(labelPairs[i])
			b.sb.WriteString(`="`)
			b.sb.WriteString(escapeLabel(labelPairs[i+1]))
			b.sb.WriteByte('"')
		}
		b.sb.WriteByte('}')
	}
	b.sb.WriteByte(' ')
	b.sb.WriteString(strconv.FormatFloat(v, 'g', -1, 64))
	b.sb.WriteByte('\n')
}

// Int emits one integer-valued sample.
func (b *Builder) Int(name string, v int, labelPairs ...string) {
	b.Value(name, float64(v), labelPairs...)
}

// Histogram emits one histogram's full sample set under an already
// declared "histogram" family: cumulative "_bucket" samples with an
// "le" label per upper bound plus le="+Inf", then "_sum" and "_count".
// counts must carry len(bounds)+1 entries — per-bucket (non-cumulative)
// counts with the overflow bucket last — and sum is in the family's
// unit (seconds for latency families). bounds must be sorted ascending;
// cumulative sums make the emitted buckets monotone by construction.
func (b *Builder) Histogram(name string, bounds []float64, counts []uint64, sum float64, labelPairs ...string) {
	if len(counts) != len(bounds)+1 {
		panic("metrics: histogram counts must have len(bounds)+1 entries")
	}
	if len(labelPairs)%2 != 0 {
		panic("metrics: odd label pair count")
	}
	// One shared label slice with the trailing le pair rewritten per
	// bucket — never append to the caller's slice (aliasing).
	lp := make([]string, len(labelPairs), len(labelPairs)+2)
	copy(lp, labelPairs)
	lp = append(lp, "le", "")
	var cum uint64
	for i, bound := range bounds {
		cum += counts[i]
		lp[len(lp)-1] = strconv.FormatFloat(bound, 'g', -1, 64)
		b.Value(name+"_bucket", float64(cum), lp...)
	}
	cum += counts[len(bounds)]
	lp[len(lp)-1] = "+Inf"
	b.Value(name+"_bucket", float64(cum), lp...)
	b.Value(name+"_sum", sum, labelPairs...)
	b.Value(name+"_count", float64(cum), labelPairs...)
}

// String returns the exposition text.
func (b *Builder) String() string { return b.sb.String() }

// WriteTo writes the exposition text.
func (b *Builder) WriteTo(w io.Writer) (int64, error) {
	n, err := io.WriteString(w, b.sb.String())
	return int64(n), err
}

// escapeLabel escapes a label value per the exposition format.
func escapeLabel(s string) string {
	if !strings.ContainsAny(s, "\\\"\n") {
		return s
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(s)
}

// SortedKeys returns the map's keys in sorted order — the deterministic
// emission order for per-key sample families.
func SortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
