// Package agg defines the aggregate queries the system estimates
// (paper §2.2): single-round aggregates of the form
//
//	SELECT AGG(f(t)) FROM D_i WHERE SelectionCondition
//
// with AGG ∈ {COUNT, SUM, AVG}, f any per-tuple function and the selection
// condition any per-tuple predicate — plus exact ground-truth evaluation
// against the simulator's store (something a real attacker of a hidden
// database cannot do, but the harness can, which is how the experiments
// report true relative errors).
//
// Internally every aggregate is carried as the pair (Σ f(t), Σ 1) over
// selected tuples; COUNT reads the second component, SUM the first, and
// AVG their ratio (the paper notes AVG estimates are slightly biased,
// being a ratio of two unbiased estimators).
package agg

import (
	"fmt"

	"github.com/dynagg/dynagg/internal/hiddendb"
	"github.com/dynagg/dynagg/internal/schema"
)

// Kind selects the aggregate function.
type Kind int

const (
	// Count is COUNT(*) over selected tuples.
	Count Kind = iota
	// Sum is SUM(f(t)) over selected tuples.
	Sum
	// Avg is SUM(f(t)) / COUNT(*) over selected tuples.
	Avg
)

// String names the aggregate function.
func (k Kind) String() string {
	switch k {
	case Count:
		return "COUNT"
	case Sum:
		return "SUM"
	case Avg:
		return "AVG"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Aggregate is one aggregate query specification.
type Aggregate struct {
	// Name labels the aggregate in reports.
	Name string
	// Kind is the aggregate function.
	Kind Kind
	// F computes f(t); ignored (treated as 1) for Count. Required for
	// Sum/Avg.
	F func(*schema.Tuple) float64
	// Sel is the selection condition g(t); nil selects every tuple.
	Sel func(*schema.Tuple) bool
	// SelQuery optionally expresses the selection condition as a
	// conjunctive query. When set, estimators build their query tree as
	// the subtree under it (paper §3.3), shrinking variance. It must be
	// consistent with Sel; consistency is the constructor's job.
	SelQuery hiddendb.Query
	// HasSelQuery records whether SelQuery is meaningful (a zero Query is
	// a legitimate "no predicates" value, so presence needs its own flag).
	HasSelQuery bool
}

// Pair is the raw (Σf, Σcount) of an aggregate over some set of tuples,
// before Horvitz–Thompson inflation by 1/p(q).
type Pair struct {
	SumF  float64
	Count float64
}

// Add accumulates another pair.
func (p *Pair) Add(o Pair) { p.SumF += o.SumF; p.Count += o.Count }

// Scale returns the pair scaled by 1/prob — the HT inflation.
func (p Pair) Scale(prob float64) Pair {
	return Pair{SumF: p.SumF / prob, Count: p.Count / prob}
}

// Sub returns p − o componentwise.
func (p Pair) Sub(o Pair) Pair {
	return Pair{SumF: p.SumF - o.SumF, Count: p.Count - o.Count}
}

// CountAll returns COUNT(*) FROM D.
func CountAll() *Aggregate {
	return &Aggregate{Name: "COUNT(*)", Kind: Count}
}

// CountWhere returns COUNT(*) with a conjunctive selection condition.
func CountWhere(name string, sel hiddendb.Query) *Aggregate {
	return &Aggregate{
		Name:        name,
		Kind:        Count,
		Sel:         func(t *schema.Tuple) bool { return sel.Matches(t, false) },
		SelQuery:    sel,
		HasSelQuery: true,
	}
}

// SumOf returns SUM(f(t)) FROM D.
func SumOf(name string, f func(*schema.Tuple) float64) *Aggregate {
	return &Aggregate{Name: name, Kind: Sum, F: f}
}

// SumWhere returns SUM(f(t)) with a conjunctive selection condition.
func SumWhere(name string, f func(*schema.Tuple) float64, sel hiddendb.Query) *Aggregate {
	return &Aggregate{
		Name:        name,
		Kind:        Sum,
		F:           f,
		Sel:         func(t *schema.Tuple) bool { return sel.Matches(t, false) },
		SelQuery:    sel,
		HasSelQuery: true,
	}
}

// AvgOf returns AVG(f(t)) FROM D.
func AvgOf(name string, f func(*schema.Tuple) float64) *Aggregate {
	return &Aggregate{Name: name, Kind: Avg, F: f}
}

// AvgWhere returns AVG(f(t)) with a conjunctive selection condition.
func AvgWhere(name string, f func(*schema.Tuple) float64, sel hiddendb.Query) *Aggregate {
	return &Aggregate{
		Name:        name,
		Kind:        Avg,
		F:           f,
		Sel:         func(t *schema.Tuple) bool { return sel.Matches(t, false) },
		SelQuery:    sel,
		HasSelQuery: true,
	}
}

// AuxField returns an f(t) reading the i-th auxiliary payload (0 when
// absent) — the standard way to aggregate a non-searchable numeric field
// such as an exact price.
func AuxField(i int) func(*schema.Tuple) float64 {
	return func(t *schema.Tuple) float64 {
		if i < len(t.Aux) {
			return t.Aux[i]
		}
		return 0
	}
}

// Indicator returns an f(t) that is 1 when the conjunctive query matches
// and 0 otherwise; AVG of an indicator is a proportion (e.g. "% of watches
// that are men's" in the Amazon live experiment).
func Indicator(sel hiddendb.Query) func(*schema.Tuple) float64 {
	return func(t *schema.Tuple) float64 {
		if sel.Matches(t, false) {
			return 1
		}
		return 0
	}
}

// selected reports whether the aggregate's selection condition admits t.
func (a *Aggregate) selected(t *schema.Tuple) bool {
	return a.Sel == nil || a.Sel(t)
}

// fval computes f(t) with the COUNT convention f ≡ 1.
func (a *Aggregate) fval(t *schema.Tuple) float64 {
	if a.Kind == Count || a.F == nil {
		return 1
	}
	return a.F(t)
}

// PairOfTuples computes the raw (Σf, Σ1) over the given tuples after
// applying the selection condition. This is the Q(q) of a query result.
func (a *Aggregate) PairOfTuples(tuples []*schema.Tuple) Pair {
	var p Pair
	for _, t := range tuples {
		if !a.selected(t) {
			continue
		}
		p.SumF += a.fval(t)
		p.Count++
	}
	return p
}

// Finalize turns an estimated (possibly HT-inflated) pair into the
// aggregate's scalar value.
func (a *Aggregate) Finalize(p Pair) float64 {
	switch a.Kind {
	case Count:
		return p.Count
	case Sum:
		return p.SumF
	case Avg:
		if p.Count == 0 {
			return 0
		}
		return p.SumF / p.Count
	default:
		panic(fmt.Sprintf("agg: unknown kind %d", a.Kind))
	}
}

// Primary returns the scalar the variance machinery of RS-ESTIMATOR
// tracks for this aggregate: the count component for COUNT, the sum
// component otherwise (for AVG the sum component dominates the ratio's
// variability in practice; the paper's analysis covers SUM/COUNT and
// treats AVG as their ratio).
func (a *Aggregate) Primary(p Pair) float64 {
	if a.Kind == Count {
		return p.Count
	}
	return p.SumF
}

// Truth computes the exact aggregate value against the full store.
func (a *Aggregate) Truth(st *hiddendb.Store) float64 {
	var p Pair
	st.ForEach(func(t *schema.Tuple) {
		if !a.selected(t) {
			return
		}
		p.SumF += a.fval(t)
		p.Count++
	})
	return a.Finalize(p)
}

// TruthPair computes the exact (Σf, Σ1) against the full store.
func (a *Aggregate) TruthPair(st *hiddendb.Store) Pair {
	var p Pair
	st.ForEach(func(t *schema.Tuple) {
		if !a.selected(t) {
			return
		}
		p.SumF += a.fval(t)
		p.Count++
	})
	return p
}

// String renders the aggregate for reports.
func (a *Aggregate) String() string {
	if a.Name != "" {
		return a.Name
	}
	return a.Kind.String()
}
