package tracking

import (
	"encoding/json"
	"net/http"
	"time"

	"github.com/dynagg/dynagg/internal/httpapi"
	"github.com/dynagg/dynagg/internal/metrics"
	"github.com/dynagg/dynagg/internal/obs"
)

// Handler exposes the service's current state over HTTP, mounted under
// the current API version (the deprecated unversioned aliases were
// removed; legacy paths get the 404 envelope):
//
//	GET /v1/status    → the full round View (algorithm, round, budget,
//	                    queries, estimates, last error)
//	GET /v1/estimates → just the estimates array
//	GET /v1/healthz   → 200 once at least one round completed without a
//	                    step error, 503 before that (readiness probe);
//	                    reports "api_version"
//	GET /v1/metrics   → Prometheus-style plaintext gauges (rounds, query
//	                    counts, budget, wasted speculative queries)
//
// All responses except /metrics are JSON; errors use the shared
// httpapi envelope. Reads never block a running round: they serve the
// immutable View published at the previous round boundary.
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	handle := func(pattern string, h http.HandlerFunc) {
		// Versioned routes only: the deprecated unversioned aliases
		// were removed after their one-release grace period, so legacy
		// paths fall through to the 404 envelope.
		mux.HandleFunc("GET /"+httpapi.Version+pattern, h)
	}
	handle("/status", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, s.statusView())
	})
	handle("/estimates", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, s.CurrentView().Estimates)
	})
	handle("/healthz", func(w http.ResponseWriter, r *http.Request) {
		v := s.CurrentView()
		status := http.StatusOK
		if v.Steps == 0 || v.LastError != "" {
			status = http.StatusServiceUnavailable
		}
		httpapi.WriteJSON(w, status, map[string]any{
			"steps":       v.Steps,
			"last_error":  v.LastError,
			"api_version": httpapi.Version,
		})
	})
	handle("/metrics", func(w http.ResponseWriter, r *http.Request) {
		s.serveMetrics(w)
	})
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		httpapi.WriteError(w, http.StatusNotFound, httpapi.CodeNotFound, "no such route")
	})
	return mux
}

// statusWire decorates the View with process uptime.
type statusWire struct {
	View
	UptimeSeconds float64 `json:"uptime_seconds"`
}

func (s *Service) statusView() statusWire {
	return statusWire{View: s.CurrentView(), UptimeSeconds: time.Since(s.start).Seconds()}
}

// serveMetrics renders the current view as Prometheus plaintext. Like
// every other read it touches only the immutable published View.
func (s *Service) serveMetrics(w http.ResponseWriter) {
	v := s.CurrentView()
	var b metrics.Builder
	b.Family("dynagg_track_rounds_total", "counter", "Estimator rounds completed over its lifetime (survives resume).")
	b.Int("dynagg_track_rounds_total", v.Round)
	b.Family("dynagg_track_steps_total", "counter", "Rounds completed by this process.")
	b.Int("dynagg_track_steps_total", v.Steps)
	b.Family("dynagg_track_queries_total", "counter", "Queries issued by this process across all rounds.")
	b.Int("dynagg_track_queries_total", v.QueriesTotal)
	b.Family("dynagg_track_queries_last_round", "gauge", "Queries consumed by the last round.")
	b.Int("dynagg_track_queries_last_round", v.UsedLast)
	b.Family("dynagg_track_budget_last_round", "gauge", "Query budget granted to the last round (0 = unlimited).")
	b.Int("dynagg_track_budget_last_round", v.Budget)
	b.Family("dynagg_track_budget_remaining_last_round", "gauge", "Unused budget of the last round (-1 when unlimited).")
	if v.Budget > 0 {
		b.Int("dynagg_track_budget_remaining_last_round", v.Budget-v.UsedLast)
	} else {
		b.Int("dynagg_track_budget_remaining_last_round", -1)
	}
	b.Family("dynagg_track_wasted_queries_total", "counter", "Speculatively issued queries whose walks were never applied (estimator lifetime).")
	b.Int("dynagg_track_wasted_queries_total", v.Wasted)
	b.Family("dynagg_track_drill_downs_total", "counter", "Drill-down operations completed (estimator lifetime).")
	b.Int("dynagg_track_drill_downs_total", v.Drills)
	b.Family("dynagg_track_round_seconds", "histogram", "Per-round wall time: churn hook, estimator step and checkpoint write.")
	rs := s.RoundLatency()
	b.Histogram("dynagg_track_round_seconds", obs.Bounds(), rs.Counts, rs.SumSeconds)
	b.Family("dynagg_track_last_round_ms", "gauge", "Wall time of the last executed round in milliseconds.")
	b.Value("dynagg_track_last_round_ms", v.LastRoundMs)
	b.Family("dynagg_track_estimate", "gauge", "Current estimate per tracked aggregate.")
	for _, e := range v.Estimates {
		if e.OK {
			b.Value("dynagg_track_estimate", e.Value, "aggregate", e.Aggregate)
		}
	}
	if s.cfg.AnswerCacheStats != nil {
		cs := s.cfg.AnswerCacheStats()
		b.Family("dynagg_track_answer_cache_hits_total", "counter", "Answer-cache hits on the backing interface.")
		b.Value("dynagg_track_answer_cache_hits_total", float64(cs.Hits))
		b.Family("dynagg_track_answer_cache_misses_total", "counter", "Answer-cache misses (engine executions) on the backing interface.")
		b.Value("dynagg_track_answer_cache_misses_total", float64(cs.Misses))
		b.Family("dynagg_track_answer_cache_collapsed_total", "counter", "Concurrent identical queries collapsed by singleflight on the backing interface.")
		b.Value("dynagg_track_answer_cache_collapsed_total", float64(cs.Collapsed))
	}
	w.Header().Set("Content-Type", metrics.ContentType)
	_, _ = b.WriteTo(w)
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(v)
}
