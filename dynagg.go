package dynagg

import (
	"errors"
	"fmt"
	"io"
	"math/rand"

	"github.com/dynagg/dynagg/internal/agg"
	"github.com/dynagg/dynagg/internal/estimator"
	"github.com/dynagg/dynagg/internal/hiddendb"
	"github.com/dynagg/dynagg/internal/livesim"
	"github.com/dynagg/dynagg/internal/schema"
	"github.com/dynagg/dynagg/internal/workload"
	"github.com/dynagg/dynagg/webiface"
)

// Re-exported core types. The implementation lives in internal packages;
// these aliases are the supported public surface.
type (
	// Schema describes the categorical attributes of a hidden database.
	Schema = schema.Schema
	// Attr is one categorical attribute.
	Attr = schema.Attr
	// Tuple is one immutable database row.
	Tuple = schema.Tuple

	// Store owns simulated database contents (harness side).
	Store = hiddendb.Store
	// Snapshot is one immutable version of a Store: queries are answered
	// against it (prefix binary search, inverted posting lists, or full
	// scan, whichever is estimated cheapest), and any number of
	// goroutines may read one snapshot while the harness prepares the
	// next round. Obtain via Store.Snapshot or Iface.Snapshot.
	Snapshot = hiddendb.Snapshot
	// Iface is the restrictive top-k search view over a Store. It is
	// safe for concurrent reader goroutines; give each its own Session.
	Iface = hiddendb.Iface
	// Session is a per-round budgeted view of an Iface (one goroutine).
	Session = hiddendb.Session
	// ShardedStore is a Store hash-partitioned N ways by tuple ID, with
	// per-shard snapshots and a fleet-wide version epoch.
	ShardedStore = hiddendb.ShardedStore
	// ShardedIface is the top-k interface over a ShardedStore: queries
	// are answered by scatter-gather across one epoch's pinned per-shard
	// snapshots, byte-identical to an unsharded Iface over the same data.
	ShardedIface = hiddendb.ShardedIface
	// Epoch pins one immutable snapshot per shard; all of a round's
	// answers are served from the same epoch.
	Epoch = hiddendb.Epoch
	// Searcher is the only capability estimators require; implement it
	// over a real web API to run the estimators against a live site.
	Searcher = hiddendb.Searcher
	// Query is a conjunctive search query.
	Query = hiddendb.Query
	// Pred is one equality predicate of a Query.
	Pred = hiddendb.Pred
	// Result is a top-k answer with an overflow flag.
	Result = hiddendb.Result
	// Scorer is the interface's proprietary ranking function.
	Scorer = hiddendb.Scorer

	// Aggregate specifies SELECT AGG(f(t)) FROM D WHERE sel(t).
	Aggregate = agg.Aggregate

	// Estimate is one aggregate estimate with variance diagnostics.
	Estimate = estimator.Estimate
	// Estimator is the common behaviour of the three algorithms.
	Estimator = estimator.Estimator

	// Dataset is a generated tuple universe.
	Dataset = workload.Dataset
	// Env binds a Dataset to a live Store and applies update schedules.
	Env = workload.Env
	// ShardedEnv is Env over a ShardedStore, applying churn with one
	// mutator goroutine per shard.
	ShardedEnv = workload.ShardedEnv
	// Schedule mutates an Env at the start of each round.
	Schedule = workload.Schedule

	// AmazonSim replays the paper's Amazon.com live experiment.
	AmazonSim = livesim.Amazon
	// EBaySim replays the paper's eBay.com live experiment.
	EBaySim = livesim.EBay

	// CountingIface is a search interface that also reports (capped)
	// result counts — "1,000+ results" — enabling the §8 count-guided
	// extension.
	CountingIface = hiddendb.CountingIface
	// CountingSession is a budgeted round over a CountingIface.
	CountingSession = hiddendb.CountingSession
	// CountAssisted tracks COUNT(*) exactly from count metadata (the §8
	// future-work extension): it maintains a frontier of uncapped nodes
	// whose counts sum to the database size.
	CountAssisted = estimator.CountAssisted
)

// NullCode marks a NULL value in a nullable attribute.
const NullCode = schema.NullCode

// ErrBudgetExhausted is returned by Session.Search past the round budget.
var ErrBudgetExhausted = hiddendb.ErrBudgetExhausted

// Schema and store construction.
var (
	// NewSchema builds a schema from attributes.
	NewSchema = schema.New
	// UniformSchema builds m attributes of equal domain size.
	UniformSchema = schema.Uniform
	// NewStore creates an empty simulated hidden database.
	NewStore = hiddendb.NewStore
	// NewIface wraps a store in a top-k search interface.
	NewIface = hiddendb.NewIface
	// NewShardedStore creates an empty store hash-partitioned n ways.
	NewShardedStore = hiddendb.NewShardedStore
	// NewShardedIface wraps a sharded store in a scatter-gather top-k
	// interface.
	NewShardedIface = hiddendb.NewShardedIface
	// NewCountingIface wraps a store in a top-k interface that also
	// reports capped result counts.
	NewCountingIface = hiddendb.NewCountingIface
	// NewCountAssisted builds the count-guided COUNT(*) tracker.
	NewCountAssisted = estimator.NewCountAssisted
	// NewQuery builds a conjunctive query from predicates.
	NewQuery = hiddendb.NewQuery
	// DefaultScorer ranks tuples by a deterministic hash.
	DefaultScorer = hiddendb.DefaultScorer
	// AuxScorer ranks tuples by an auxiliary payload (e.g. price).
	AuxScorer = hiddendb.AuxScorer
)

// Aggregate constructors.
var (
	// CountAll is COUNT(*).
	CountAll = agg.CountAll
	// CountWhere is COUNT(*) under a conjunctive selection condition.
	CountWhere = agg.CountWhere
	// SumOf is SUM(f(t)).
	SumOf = agg.SumOf
	// SumWhere is SUM(f(t)) under a selection condition.
	SumWhere = agg.SumWhere
	// AvgOf is AVG(f(t)).
	AvgOf = agg.AvgOf
	// AvgWhere is AVG(f(t)) under a selection condition.
	AvgWhere = agg.AvgWhere
	// AuxField reads the i-th auxiliary payload as f(t).
	AuxField = agg.AuxField
	// Indicator is 1 when a query matches t and 0 otherwise.
	Indicator = agg.Indicator
)

// Dataset generators and environments.
var (
	// AutosLike generates the full 188,917-tuple Autos-shaped dataset.
	AutosLike = workload.AutosLike
	// AutosLikeN generates an Autos-shaped dataset of n tuples over the
	// first m (≤38) Autos attributes.
	AutosLikeN = workload.AutosLikeN
	// Scalable generates a uniform dataset for scalability sweeps.
	Scalable = workload.Scalable
	// CustomDataset generates a dataset over a caller-defined schema.
	CustomDataset = workload.Custom
	// NewEnv loads an initial database state from a dataset.
	NewEnv = workload.NewEnv
	// NewShardedEnv loads an initial database state into a sharded store.
	NewShardedEnv = workload.NewShardedEnv
	// NewAmazonSim builds the Amazon live-experiment simulator.
	NewAmazonSim = livesim.NewAmazon
	// NewEBaySim builds the eBay live-experiment simulator.
	NewEBaySim = livesim.NewEBay
	// AmazonDays labels the Amazon simulator's daily rounds.
	AmazonDays = livesim.AmazonDays
	// EBayHours labels the eBay simulator's hourly rounds.
	EBayHours = livesim.EBayHours
)

// Algorithm selects one of the paper's estimators.
type Algorithm string

// The three algorithms of the paper.
const (
	AlgoRestart Algorithm = "RESTART"
	AlgoReissue Algorithm = "REISSUE"
	AlgoRS      Algorithm = "RS"
)

// TrackerOptions configures a Tracker.
type TrackerOptions struct {
	// Algorithm picks the estimator (default AlgoRS).
	Algorithm Algorithm
	// Budget is the per-round query limit G imposed by the database
	// (0 = unlimited — only sensible in tests).
	Budget int
	// Seed drives all random choices; runs are reproducible.
	Seed int64
	// Pilot is RS-ESTIMATOR's bootstrap parameter ϖ (default 10).
	Pilot int
	// RetainTuples keeps retrieved tuples for ad hoc queries (§5.1).
	RetainTuples bool
	// ClientCache enables the client-side answer cache ablation.
	ClientCache bool
	// DeltaTarget makes RS optimise the trans-round delta (Figs 15–17).
	DeltaTarget bool
	// MaxDrills bounds the drill-down pool (0 = unlimited).
	MaxDrills int
	// BroadMatchNull must be set when the target database returns
	// NULL-valued tuples for any predicate on that attribute (§5); the
	// estimators then apply the matching probability correction.
	BroadMatchNull bool
	// Parallelism bounds how many of a round's planned drill-down walks
	// the estimator issues concurrently against the session (0 reads
	// DYNAGG_ESTIMATOR_WORKERS, defaulting to sequential). Estimates are
	// byte-identical for every value; sessions that are not safe for
	// concurrent searching are served sequentially regardless.
	Parallelism int
	// Batch issues each planned wave of drill-down walks as lockstep
	// query batches through the session's SearchBatch (one round trip
	// per tree level for remote sessions). Estimates stay byte-identical.
	// Effective only with Parallelism > 1 and a session implementing
	// hiddendb.BatchSearcher; ignored otherwise.
	Batch bool
}

// BudgetedSession is the per-round query capability a Tracker consumes:
// a Searcher plus budget accounting. Both *dynagg.Session (local
// simulation) and *webiface.Session (remote HTTP) implement it.
type BudgetedSession = estimator.Session

// SessionSource produces one budgeted session per round. *Iface and
// *webiface.Client both provide a NewSession method fitting this shape.
type SessionSource func(budget int) BudgetedSession

// Tracker continuously estimates a set of aggregates over a dynamic
// hidden database, one budgeted round at a time.
type Tracker struct {
	est        estimator.Estimator
	newSession SessionSource
	g          int
}

// NewTracker attaches an estimator to a local search interface.
func NewTracker(iface *Iface, aggs []*Aggregate, opts TrackerOptions) (*Tracker, error) {
	if iface == nil {
		return nil, errors.New("dynagg: nil interface")
	}
	return NewTrackerWithSource(iface.Schema(),
		func(g int) BudgetedSession { return iface.NewSession(g) }, aggs, opts)
}

// NewRemoteTracker attaches an estimator to a database reached through a
// webiface.Client (an HTTP API).
func NewRemoteTracker(c *webiface.Client, aggs []*Aggregate, opts TrackerOptions) (*Tracker, error) {
	if c == nil {
		return nil, errors.New("dynagg: nil client")
	}
	return NewTrackerWithSource(c.Schema(),
		func(g int) BudgetedSession { return c.NewSession(g) }, aggs, opts)
}

// NewTrackerWithSource attaches an estimator to any session source — the
// general form behind NewTracker and NewRemoteTracker, for callers with
// custom Searcher implementations.
func NewTrackerWithSource(sch *Schema, source SessionSource, aggs []*Aggregate, opts TrackerOptions) (*Tracker, error) {
	if sch == nil || source == nil {
		return nil, errors.New("dynagg: schema and session source required")
	}
	cfg := estimator.Config{
		Rand:           rand.New(rand.NewSource(opts.Seed)),
		Pilot:          opts.Pilot,
		RetainTuples:   opts.RetainTuples,
		ClientCache:    opts.ClientCache,
		MaxDrills:      opts.MaxDrills,
		Parallelism:    opts.Parallelism,
		Batch:          opts.Batch,
		BroadMatchNull: opts.BroadMatchNull,
	}
	algo := opts.Algorithm
	if algo == "" {
		algo = AlgoRS
	}
	var est estimator.Estimator
	var err error
	switch algo {
	case AlgoRestart:
		est, err = estimator.NewRestart(sch, aggs, cfg)
	case AlgoReissue:
		est, err = estimator.NewReissue(sch, aggs, cfg)
	case AlgoRS:
		var rsOpts []estimator.RSOption
		if opts.DeltaTarget {
			rsOpts = append(rsOpts, estimator.WithDeltaTarget())
		}
		est, err = estimator.NewRS(sch, aggs, cfg, rsOpts...)
	default:
		return nil, fmt.Errorf("dynagg: unknown algorithm %q", algo)
	}
	if err != nil {
		return nil, err
	}
	return &Tracker{est: est, newSession: source, g: opts.Budget}, nil
}

// Step consumes one round's query budget and refreshes all estimates.
func (t *Tracker) Step() error {
	return t.est.Step(t.newSession(t.g))
}

// StepSession runs one round against a caller-supplied session — useful
// for the constant-update model, where the harness wires a pre-search
// hook into the session.
func (t *Tracker) StepSession(s BudgetedSession) error { return t.est.Step(s) }

// Round returns the index of the last completed round.
func (t *Tracker) Round() int { return t.est.Round() }

// Estimate returns the current single-round estimate of the i-th
// tracked aggregate.
func (t *Tracker) Estimate(i int) (Estimate, bool) { return t.est.Estimate(i) }

// Delta returns the trans-round estimate of Q(D_j) − Q(D_{j-1}) for the
// i-th tracked aggregate.
func (t *Tracker) Delta(i int) (Estimate, bool) { return t.est.EstimateDelta(i) }

// Aggregates returns the tracked aggregate specs.
func (t *Tracker) Aggregates() []*Aggregate { return t.est.Aggregates() }

// QueriesLastRound returns the queries consumed by the last Step.
func (t *Tracker) QueriesLastRound() int { return t.est.UsedLastRound() }

// DrillDowns returns the cumulative drill-down operations performed.
func (t *Tracker) DrillDowns() int { return t.est.DrillDowns() }

// Algorithm returns the name of the underlying estimator.
func (t *Tracker) Algorithm() Algorithm { return Algorithm(t.est.Name()) }

// Save serialises the tracker's estimator state so a long-lived tracker
// survives process restarts (the pool of drill downs, per-round estimates
// and RS's history all persist). Restore with LoadTracker, re-supplying
// the same aggregates.
func (t *Tracker) Save(w io.Writer) error { return estimator.Save(t.est, w) }

// LoadTracker restores a tracker saved with Save against the given
// interface. The aggregate list must match the saved tracker's (same
// order and count); opts supplies the budget and a fresh random seed —
// estimates and drill-down state come from the snapshot, and
// opts.Algorithm is ignored in favour of the snapshot's.
func LoadTracker(r io.Reader, iface *Iface, aggs []*Aggregate, opts TrackerOptions) (*Tracker, error) {
	if iface == nil {
		return nil, errors.New("dynagg: nil interface")
	}
	cfg := estimator.Config{
		Rand:           rand.New(rand.NewSource(opts.Seed)),
		Pilot:          opts.Pilot,
		RetainTuples:   opts.RetainTuples,
		ClientCache:    opts.ClientCache,
		MaxDrills:      opts.MaxDrills,
		Parallelism:    opts.Parallelism,
		Batch:          opts.Batch,
		BroadMatchNull: opts.BroadMatchNull,
	}
	est, err := estimator.Load(r, iface.Schema(), aggs, cfg)
	if err != nil {
		return nil, err
	}
	return &Tracker{
		est:        est,
		newSession: func(g int) BudgetedSession { return iface.NewSession(g) },
		g:          opts.Budget,
	}, nil
}

// AdHoc estimates an aggregate that was never registered, against the
// drill downs of a past round (the ad hoc query model of §5.1). Requires
// TrackerOptions.RetainTuples.
func (t *Tracker) AdHoc(a *Aggregate, round int) (Estimate, error) {
	switch e := t.est.(type) {
	case *estimator.Restart:
		return e.AdHoc(a, round)
	case *estimator.Reissue:
		return e.AdHoc(a, round)
	case *estimator.RS:
		return e.AdHoc(a, round)
	default:
		return Estimate{}, fmt.Errorf("dynagg: %s does not support ad hoc queries", t.est.Name())
	}
}
