package hiddendb

import "errors"

// Two-phase epoch publication for the multi-process shard fabric.
//
// A single-process round driver calls AdvanceEpoch and is done — snapshot
// and publication are one atomic step under one lock. Across processes the
// router needs the two halves separately, so a fleet of shard daemons can
// freeze TOGETHER before any of them publishes:
//
//	phase 1 (freeze):  every shard snapshots its current state into a
//	                   pending set, mutators quiescent (the caller's
//	                   obligation, same as AdvanceEpoch's).
//	phase 2 (publish): every shard atomically swaps the pending set in as
//	                   the serving epoch, under ONE router-assigned
//	                   fleet-wide sequence number.
//
// If phase 2 fails anywhere, the router aborts everywhere: shards that
// already published roll back to the epoch they superseded, shards still
// pending discard the freeze — so the fleet never serves a torn epoch.
// Readers are untouched throughout: they keep answering from the current
// epoch until the instant PublishPending swaps the pointer.

var (
	// ErrEpochFrozen rejects a FreezeEpoch while a pending freeze exists
	// (a double freeze — the router lost track of an earlier handshake).
	ErrEpochFrozen = errors.New("hiddendb: epoch already frozen (pending publication)")
	// ErrNoPendingEpoch rejects a PublishPending with nothing frozen.
	ErrNoPendingEpoch = errors.New("hiddendb: no pending frozen epoch to publish")
	// ErrStaleEpochSeq rejects a PublishPending whose sequence number does
	// not advance the current epoch — a publication from a superseded
	// handshake must never regress the fleet.
	ErrStaleEpochSeq = errors.New("hiddendb: stale epoch sequence number")
)

// FreezeEpoch snapshots every shard into a pending set awaiting
// PublishPending, and returns the CURRENT epoch sequence number (0 when
// no epoch has ever been published). Like AdvanceEpoch it must be called
// with all shard mutators quiescent; unlike AdvanceEpoch it changes
// nothing readers can observe. A second freeze before the pending set is
// published or aborted fails with ErrEpochFrozen.
func (ss *ShardedStore) FreezeEpoch() (uint64, error) {
	ss.epochMu.Lock()
	defer ss.epochMu.Unlock()
	if ss.pending != nil {
		return 0, ErrEpochFrozen
	}
	snaps := make([]*Snapshot, len(ss.shards))
	for i, st := range ss.shards {
		snaps[i] = st.Snapshot()
	}
	ss.pending = snaps
	var cur uint64
	if e := ss.epoch.Load(); e != nil {
		cur = e.seq
	}
	return cur, nil
}

// PublishPending atomically makes the pending frozen snapshot set the
// serving epoch under the given sequence number. seq must strictly
// advance the current epoch (ErrStaleEpochSeq otherwise — the pending set
// is kept so the coordinator's abort can clean up). The superseded epoch
// is retained for one AbortEpoch-window rollback.
func (ss *ShardedStore) PublishPending(seq uint64) (*Epoch, error) {
	ss.epochMu.Lock()
	defer ss.epochMu.Unlock()
	if ss.pending == nil {
		return nil, ErrNoPendingEpoch
	}
	prev := ss.epoch.Load()
	if prev != nil && seq <= prev.seq {
		return nil, ErrStaleEpochSeq
	}
	if seq == 0 {
		return nil, ErrStaleEpochSeq
	}
	e := &Epoch{seq: seq, snaps: ss.pending}
	ss.prevEpoch = prev
	ss.pending = nil
	ss.epoch.Store(e)
	return e, nil
}

// AbortEpoch cancels an in-progress two-phase publication on this shard:
// any pending frozen set is discarded, and — when the current epoch
// carries the given seq, i.e. a PublishPending(seq) already landed here —
// the superseded epoch is restored, reporting rolledBack=true. seq 0
// never matches a published epoch, so AbortEpoch(0) just discards a
// pending freeze. AbortEpoch is idempotent and never fails: the
// coordinator fires it at every shard after a failed handshake without
// knowing how far each one got.
func (ss *ShardedStore) AbortEpoch(seq uint64) (rolledBack bool) {
	ss.epochMu.Lock()
	defer ss.epochMu.Unlock()
	ss.pending = nil
	cur := ss.epoch.Load()
	if seq != 0 && cur != nil && cur.seq == seq && ss.prevEpoch != nil {
		ss.epoch.Store(ss.prevEpoch)
		ss.prevEpoch = nil
		return true
	}
	return false
}

// EpochFrozen reports whether a frozen pending set awaits publication.
func (ss *ShardedStore) EpochFrozen() bool {
	ss.epochMu.Lock()
	defer ss.epochMu.Unlock()
	return ss.pending != nil
}
