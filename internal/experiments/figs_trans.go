package experiments

import (
	"fmt"

	"github.com/dynagg/dynagg/internal/estimator"
	"github.com/dynagg/dynagg/internal/workload"
)

func init() {
	register("fig14", Fig14)
	register("fig15", Fig15)
	register("fig16", Fig16)
	register("fig17", Fig17)
}

// Fig14 — running average AVG(|D_i|, |D_{i-1}|, ...) over windows of 2, 3
// and 4 rounds: final relative error per window size.
func Fig14(opt Options) (*Figure, error) {
	p := autosDefaults(opt)
	f := &Figure{
		ID: "fig14", Title: "Running average of COUNT over the last w rounds",
		XLabel: "window w", YLabel: "relative error",
		Notes: []string{p.scaleNote},
	}
	series := map[Algo][]float64{}
	for _, w := range []int{2, 3, 4} {
		spec := TrackSpec{
			Dataset: p.dataset(), Initial: p.initial,
			Schedule: workload.PoolChurn(p.insert, p.deleteFrac),
			K:        p.k, G: p.g, Rounds: p.rounds,
			Aggs:   countAggs,
			Window: w,
		}
		res, err := RunTracking(spec, opt, p.trials)
		if err != nil {
			return nil, err
		}
		f.X = append(f.X, float64(w))
		for _, a := range AllAlgos {
			series[a] = append(series[a], res.FinalErr(a))
		}
	}
	for _, a := range AllAlgos {
		f.AddSeries(string(a), series[a])
	}
	return f, nil
}

// deltaParams configures the trans-round |D_j|−|D_{j-1}| experiments.
// insertFrac is relative to the paper's 188,917-tuple database.
func deltaParams(opt Options, paperInsert int, deleteFrac float64, rounds int) autosParams {
	p := autosDefaults(opt)
	if opt.FullScale {
		p.insert = paperInsert
	} else {
		// Scale insertions with the dataset so the relative churn matches.
		p.insert = maxInt(1, paperInsert*p.n/workload.AutosSize)
	}
	p.deleteFrac = deleteFrac
	p.rounds = rounds
	p.g = 500
	return p
}

// Fig15 — trans-round delta under small change (+3000/−0.5% per round on
// the full snapshot): relative error per round (the paper plots log-y).
func Fig15(opt Options) (*Figure, error) {
	p := deltaParams(opt, 3000, 0.005, 21)
	spec := TrackSpec{
		Dataset: p.dataset(), Initial: p.initial,
		Schedule: workload.Compose(
			func(round int, env *workload.Env) error { return env.DeleteFraction(p.deleteFrac) },
			func(round int, env *workload.Env) error { return env.InsertFromPool(p.insert) },
		),
		K: p.k, G: p.g, Rounds: p.rounds,
		Aggs:   countAggs,
		Delta:  true,
		RSOpts: []estimator.RSOption{estimator.WithDeltaTarget()},
	}
	res, err := RunTracking(spec, opt, p.trials)
	if err != nil {
		return nil, err
	}
	f := &Figure{
		ID: "fig15", Title: "Trans-round |Dj|-|Dj-1| under small change: relative error",
		XLabel: "round", YLabel: "relative error (log scale in paper)",
		X:     roundsAxis(p.rounds),
		Notes: []string{p.scaleNote, fmt.Sprintf("schedule: +%d tuples, -%.1f%% per round", p.insert, p.deleteFrac*100)},
	}
	for _, a := range AllAlgos {
		f.AddSeries(string(a), res.RelErr[a])
	}
	return f, nil
}

// Fig16 — the same small-change experiment, absolute delta estimates
// against the truth.
func Fig16(opt Options) (*Figure, error) {
	p := deltaParams(opt, 3000, 0.005, 21)
	spec := TrackSpec{
		Dataset: p.dataset(), Initial: p.initial,
		Schedule: workload.Compose(
			func(round int, env *workload.Env) error { return env.DeleteFraction(p.deleteFrac) },
			func(round int, env *workload.Env) error { return env.InsertFromPool(p.insert) },
		),
		K: p.k, G: p.g, Rounds: p.rounds,
		Aggs:   countAggs,
		Delta:  true,
		RSOpts: []estimator.RSOption{estimator.WithDeltaTarget()},
	}
	res, err := RunTracking(spec, opt, p.trials)
	if err != nil {
		return nil, err
	}
	f := &Figure{
		ID: "fig16", Title: "Trans-round delta under small change: absolute estimates",
		XLabel: "round", YLabel: "estimated |Dj|-|Dj-1|",
		X:     roundsAxis(p.rounds),
		Notes: []string{p.scaleNote},
	}
	f.AddSeries("TRUTH", res.Truth)
	for _, a := range AllAlgos {
		f.AddSeries(string(a), res.EstMean[a])
	}
	return f, nil
}

// Fig17 — trans-round delta under big change (+10000/−5% per round).
func Fig17(opt Options) (*Figure, error) {
	p := deltaParams(opt, 10000, 0.05, 9)
	spec := TrackSpec{
		Dataset: p.dataset(), Initial: p.initial,
		Schedule: workload.FreshChurn(p.insert, p.deleteFrac),
		K:        p.k, G: p.g, Rounds: p.rounds,
		Aggs:   countAggs,
		Delta:  true,
		RSOpts: []estimator.RSOption{estimator.WithDeltaTarget()},
	}
	res, err := RunTracking(spec, opt, p.trials)
	if err != nil {
		return nil, err
	}
	f := &Figure{
		ID: "fig17", Title: "Trans-round delta under big change: relative error",
		XLabel: "round", YLabel: "relative error",
		X:     roundsAxis(p.rounds),
		Notes: []string{p.scaleNote},
	}
	for _, a := range AllAlgos {
		f.AddSeries(string(a), res.RelErr[a])
	}
	return f, nil
}
