package dynagg_test

import (
	"bytes"
	"math"
	"testing"

	dynagg "github.com/dynagg/dynagg"
)

// buildEnv creates a small tracked environment for API tests.
func buildEnv(t testing.TB, seed int64) (*dynagg.Env, *dynagg.Iface) {
	t.Helper()
	data := dynagg.AutosLikeN(seed, 20000, 12)
	env, err := dynagg.NewEnv(data, 18000, seed+1)
	if err != nil {
		t.Fatal(err)
	}
	return env, dynagg.NewIface(env.Store, 200, nil)
}

func TestTrackerLifecycle(t *testing.T) {
	env, iface := buildEnv(t, 1)
	tr, err := dynagg.NewTracker(iface, []*dynagg.Aggregate{dynagg.CountAll()},
		dynagg.TrackerOptions{Algorithm: dynagg.AlgoReissue, Budget: 400, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Algorithm() != dynagg.AlgoReissue {
		t.Errorf("Algorithm = %s", tr.Algorithm())
	}
	if tr.Round() != 0 {
		t.Errorf("fresh Round = %d", tr.Round())
	}
	for round := 1; round <= 5; round++ {
		if round > 1 {
			if err := env.InsertFromPool(100); err != nil {
				t.Fatal(err)
			}
		}
		if err := tr.Step(); err != nil {
			t.Fatal(err)
		}
		if tr.Round() != round {
			t.Errorf("Round = %d, want %d", tr.Round(), round)
		}
		if used := tr.QueriesLastRound(); used > 400 || used == 0 {
			t.Errorf("QueriesLastRound = %d", used)
		}
		est, ok := tr.Estimate(0)
		if !ok {
			t.Fatalf("no estimate at round %d", round)
		}
		truth := float64(env.Store.Size())
		if rel := math.Abs(est.Value-truth) / truth; rel > 0.5 {
			t.Errorf("round %d: estimate %.0f vs truth %.0f", round, est.Value, truth)
		}
	}
	if _, ok := tr.Delta(0); !ok {
		t.Error("no delta after 5 rounds")
	}
	if tr.DrillDowns() == 0 {
		t.Error("no drill downs recorded")
	}
	if len(tr.Aggregates()) != 1 {
		t.Error("aggregates lost")
	}
}

func TestNewTrackerValidation(t *testing.T) {
	_, iface := buildEnv(t, 10)
	if _, err := dynagg.NewTracker(nil, nil, dynagg.TrackerOptions{}); err == nil {
		t.Error("nil iface accepted")
	}
	if _, err := dynagg.NewTracker(iface, nil, dynagg.TrackerOptions{}); err == nil {
		t.Error("no aggregates accepted")
	}
	if _, err := dynagg.NewTracker(iface, []*dynagg.Aggregate{dynagg.CountAll()},
		dynagg.TrackerOptions{Algorithm: "BOGUS"}); err == nil {
		t.Error("unknown algorithm accepted")
	}
	// Default algorithm is RS.
	tr, err := dynagg.NewTracker(iface, []*dynagg.Aggregate{dynagg.CountAll()}, dynagg.TrackerOptions{Budget: 50})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Algorithm() != dynagg.AlgoRS {
		t.Errorf("default algorithm = %s", tr.Algorithm())
	}
}

func TestTrackerAllAlgorithms(t *testing.T) {
	for _, algo := range []dynagg.Algorithm{dynagg.AlgoRestart, dynagg.AlgoReissue, dynagg.AlgoRS} {
		env, iface := buildEnv(t, 20)
		tr, err := dynagg.NewTracker(iface, []*dynagg.Aggregate{
			dynagg.CountAll(),
			dynagg.AvgOf("AVG(price)", dynagg.AuxField(0)),
		}, dynagg.TrackerOptions{Algorithm: algo, Budget: 300, Seed: 21})
		if err != nil {
			t.Fatal(err)
		}
		for round := 1; round <= 3; round++ {
			if err := tr.Step(); err != nil {
				t.Fatalf("%s: %v", algo, err)
			}
		}
		for i := 0; i < 2; i++ {
			if _, ok := tr.Estimate(i); !ok {
				t.Errorf("%s: no estimate %d", algo, i)
			}
		}
		_ = env
	}
}

func TestTrackerAdHoc(t *testing.T) {
	env, iface := buildEnv(t, 30)
	tr, err := dynagg.NewTracker(iface, []*dynagg.Aggregate{dynagg.CountAll()},
		dynagg.TrackerOptions{Algorithm: dynagg.AlgoRS, Budget: 500, Seed: 31, RetainTuples: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Step(); err != nil {
		t.Fatal(err)
	}
	truth := dynagg.SumOf("x", dynagg.AuxField(0)).Truth(env.Store)
	est, err := tr.AdHoc(dynagg.SumOf("SUM(price)@R1", dynagg.AuxField(0)), 1)
	if err != nil {
		t.Fatal(err)
	}
	if rel := math.Abs(est.Value-truth) / truth; rel > 0.9 {
		t.Errorf("ad hoc rel err %.2f", rel)
	}
}

func TestTrackerStepSessionHook(t *testing.T) {
	env, iface := buildEnv(t, 40)
	tr, err := dynagg.NewTracker(iface, []*dynagg.Aggregate{dynagg.CountAll()},
		dynagg.TrackerOptions{Algorithm: dynagg.AlgoReissue, Budget: 100, Seed: 41})
	if err != nil {
		t.Fatal(err)
	}
	sess := iface.NewSession(100)
	fired := false
	sess.SetPreSearchHook(func(qi int) {
		if qi == 3 && !fired {
			fired = true
			_ = env.InsertFromPool(5)
		}
	})
	if err := tr.StepSession(sess); err != nil {
		t.Fatal(err)
	}
	if !fired {
		t.Error("pre-search hook never fired")
	}
}

func TestSimAliasesUsable(t *testing.T) {
	am, err := dynagg.NewAmazonSim(50)
	if err != nil {
		t.Fatal(err)
	}
	if am.Rounds() < 5 {
		t.Error("amazon sim too short")
	}
	eb, err := dynagg.NewEBaySim(51)
	if err != nil {
		t.Fatal(err)
	}
	if eb.FixAggregate().Truth(eb.Env.Store) <= eb.BidAggregate().Truth(eb.Env.Store) {
		t.Error("FIX should start above BID")
	}
}

func TestTrackerSaveLoad(t *testing.T) {
	env, iface := buildEnv(t, 60)
	tr, err := dynagg.NewTracker(iface, []*dynagg.Aggregate{dynagg.CountAll()},
		dynagg.TrackerOptions{Algorithm: dynagg.AlgoRS, Budget: 300, Seed: 61})
	if err != nil {
		t.Fatal(err)
	}
	for round := 1; round <= 3; round++ {
		if err := tr.Step(); err != nil {
			t.Fatal(err)
		}
	}
	want, _ := tr.Estimate(0)

	var buf bytes.Buffer
	if err := tr.Save(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := dynagg.LoadTracker(&buf, iface, []*dynagg.Aggregate{dynagg.CountAll()},
		dynagg.TrackerOptions{Budget: 300, Seed: 999})
	if err != nil {
		t.Fatal(err)
	}
	if restored.Algorithm() != dynagg.AlgoRS || restored.Round() != 3 {
		t.Fatalf("restored state wrong: %s round %d", restored.Algorithm(), restored.Round())
	}
	got, ok := restored.Estimate(0)
	if !ok || got.Value != want.Value {
		t.Errorf("estimate mismatch: %v vs %v", got.Value, want.Value)
	}
	// Keep tracking after the restart.
	if err := env.InsertFromPool(200); err != nil {
		t.Fatal(err)
	}
	if err := restored.Step(); err != nil {
		t.Fatal(err)
	}
	if restored.Round() != 4 {
		t.Errorf("round after restored step = %d", restored.Round())
	}
}
