package hiddendb

import "sync/atomic"

// Cached answers and the serving fast path.
//
// The per-version answer cache (iface.go) stores *Answer values rather
// than bare Results, which buys the HTTP serving layer two things:
//
//   - Wire memoization: the serving layer encodes an answer to its wire
//     form (JSON today) at most once per version — Answer.Wire fills an
//     atomic slot on first use, and every later cache hit for the same
//     query under the same version is a single buffer write with no
//     re-encode. The engine stays wire-format-agnostic: it only carries
//     the opaque bytes.
//   - Singleflight dedup: concurrent identical queries on the same
//     version collapse into ONE engine execution. The per-cache-shard
//     in-flight table (cacheShard.do) makes a hot-key storm cost one
//     intersection instead of N; waiters receive the winner's *Answer,
//     so winner and waiters are byte-identical by construction.
//
// Both are correct only because the round/version model freezes the data
// a version serves: the same query on the same version has exactly one
// answer, so caching the serialized bytes is as sound as caching the
// Result (the source paper's round model, §2.1).

// Answer is one cached query answer: the engine Result plus a lazily
// memoized wire encoding filled by the serving layer. Answers are
// immutable once published — callers must not modify Result().Tuples —
// and safe to share across any number of goroutines.
type Answer struct {
	res  Result
	wire atomic.Pointer[[]byte]
}

// Result returns the engine result. The tuple slice is shared with every
// other holder of this Answer; treat it as read-only.
func (a *Answer) Result() Result { return a.res }

// Wire returns the answer's memoized wire encoding, computing it with
// encode on first use. encode must be a pure function of the Result
// (every caller of one Answer must encode identically); when two
// goroutines race the first fill, one encoding wins the slot and both
// return byte-identical content. The returned slice is shared: callers
// write it out but never modify it.
func (a *Answer) Wire(encode func(Result) []byte) []byte {
	if b := a.wire.Load(); b != nil {
		return *b
	}
	b := encode(a.res)
	if !a.wire.CompareAndSwap(nil, &b) {
		// A concurrent encoder won the slot; use the canonical copy so
		// every caller serves literally the same backing bytes.
		return *a.wire.Load()
	}
	return b
}

// CacheStats is a point-in-time reading of an interface's answer-cache
// counters, accumulated over the interface lifetime (across versions).
type CacheStats struct {
	// Hits counts answers served from the per-version cache, including
	// the key-bytes fast path (LookupAnswer).
	Hits uint64
	// Misses counts engine executions: cache misses that ran the
	// intersection machinery, plus uncached paths (ephemeral first-query
	// answers, sessions pinned to a superseded epoch).
	Misses uint64
	// Collapsed counts queries that joined another goroutine's in-flight
	// execution of the same key instead of running their own — the
	// queries singleflight saved.
	Collapsed uint64
}

// cacheStats is the live atomic form of CacheStats.
type cacheStats struct {
	hits, misses, collapsed atomic.Uint64
}

func (s *cacheStats) read() CacheStats {
	return CacheStats{
		Hits:      s.hits.Load(),
		Misses:    s.misses.Load(),
		Collapsed: s.collapsed.Load(),
	}
}

// flight is one in-progress engine execution other goroutines can wait
// on. done is closed after a is set.
type flight struct {
	done chan struct{}
	a    *Answer
}

// do resolves key through the shard: a cache hit returns the published
// Answer, a concurrent duplicate waits on the in-flight execution, and
// exactly one caller per (version, key) runs compute. compute runs
// without shard locks held, so slow intersections never block unrelated
// keys hashing to the same shard from hitting the cache... they only
// queue behind the map mutex itself.
func (sh *cacheShard) do(key string, stats *cacheStats, compute func() Result) *Answer {
	sh.mu.Lock()
	if a, ok := sh.m[key]; ok {
		sh.mu.Unlock()
		stats.hits.Add(1)
		return a
	}
	if fl, ok := sh.inflight[key]; ok {
		sh.mu.Unlock()
		stats.collapsed.Add(1)
		<-fl.done
		if fl.a == nil {
			// The winner panicked before publishing. Its flight has been
			// withdrawn, so retry from the top: hit the cache if another
			// goroutine published meanwhile, else run compute ourselves.
			return sh.do(key, stats, compute)
		}
		return fl.a
	}
	fl := &flight{done: make(chan struct{})}
	if sh.inflight == nil {
		sh.inflight = make(map[string]*flight)
	}
	sh.inflight[key] = fl
	sh.mu.Unlock()

	stats.misses.Add(1)
	published := false
	defer func() {
		if published {
			return
		}
		// compute panicked: withdraw the flight and wake the waiters so
		// they retry instead of blocking forever on a done channel nobody
		// will close, then let the panic propagate.
		sh.mu.Lock()
		delete(sh.inflight, key)
		sh.mu.Unlock()
		close(fl.done)
	}()
	fl.a = &Answer{res: compute()}

	sh.mu.Lock()
	if sh.m == nil {
		sh.m = make(map[string]*Answer)
	}
	sh.m[key] = fl.a
	delete(sh.inflight, key)
	sh.mu.Unlock()
	published = true
	close(fl.done)
	return fl.a
}
