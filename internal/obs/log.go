package obs

import (
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
)

// NewLogger builds the structured logger the daemons share: format is
// "text" (human-oriented key=value lines, the default) or "json"
// (machine-shippable). All four cmd/ binaries wire it to -log-format
// and install it as the slog default.
func NewLogger(format string, w io.Writer) (*slog.Logger, error) {
	if w == nil {
		w = os.Stderr
	}
	switch format {
	case "", "text":
		return slog.New(slog.NewTextHandler(w, nil)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(w, nil)), nil
	default:
		return nil, fmt.Errorf("obs: unknown log format %q (want text or json)", format)
	}
}

// PprofMux returns a mux serving net/http/pprof under /debug/pprof/.
// The daemons mount it on a separate opt-in admin listener
// (-pprof-addr) so profiling never shares a port with the public
// serving surface.
func PprofMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// ServePprof starts the opt-in pprof admin listener when addr is
// non-empty. It returns immediately; listener failures are logged, not
// fatal — profiling is a diagnostic aid, never worth taking a serving
// daemon down over.
func ServePprof(addr string, log *slog.Logger) {
	if addr == "" {
		return
	}
	if log == nil {
		log = slog.Default()
	}
	go func() {
		log.Info("pprof admin listening", "addr", addr)
		if err := http.ListenAndServe(addr, PprofMux()); err != nil {
			log.Error("pprof admin server failed", "addr", addr, "error", err)
		}
	}()
}
