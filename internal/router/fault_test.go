package router

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/dynagg/dynagg/internal/hiddendb"
	"github.com/dynagg/dynagg/internal/httpapi"
	"github.com/dynagg/dynagg/internal/schema"
	"github.com/dynagg/dynagg/webiface"
)

// faultInjector sits between a shard's HTTP server and its admin
// handler, injecting the failure modes the router must survive.
type faultInjector struct {
	next http.Handler

	mu             sync.Mutex
	failNextSearch int           // 500 this many /v1/search requests, then recover
	alwaysFail     bool          // 500 every /v1/search
	failPostOnly   bool          // 500 only batched POST /v1/search
	delay          time.Duration // sleep before answering /v1/search
	failPublish    bool          // 500 every /v1/shard/publish
}

func (fi *faultInjector) set(f func(*faultInjector)) {
	fi.mu.Lock()
	defer fi.mu.Unlock()
	f(fi)
}

func (fi *faultInjector) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	fi.mu.Lock()
	fail := false
	var delay time.Duration
	switch r.URL.Path {
	case "/v1/search":
		fail = fi.alwaysFail || (fi.failPostOnly && r.Method == http.MethodPost)
		if !fail && fi.failNextSearch > 0 {
			fi.failNextSearch--
			fail = true
		}
		delay = fi.delay
	case "/v1/shard/publish":
		if fi.failPublish {
			// Fail the publish but let the coordinator's abort through —
			// the interesting rollback case is a shard that is reachable
			// yet cannot land the new epoch.
			b, _ := io.ReadAll(r.Body)
			r.Body = io.NopCloser(bytes.NewReader(b))
			fail = !strings.Contains(string(b), `"abort"`)
		}
	}
	fi.mu.Unlock()
	if delay > 0 {
		time.Sleep(delay)
	}
	if fail {
		httpapi.WriteError(w, http.StatusInternalServerError, httpapi.CodeInternal, "injected fault")
		return
	}
	fi.next.ServeHTTP(w, r)
}

// TestRouterRetriesTransientShardFailures: a shard that 500s twice and
// recovers costs retries, not the answer — the response is still
// byte-identical to the reference.
func TestRouterRetriesTransientShardFailures(t *testing.T) {
	injectors := make(map[int]*faultInjector)
	f := newFleet(t, 2, 31, 300, func(i int, h http.Handler) http.Handler {
		fi := &faultInjector{next: h}
		injectors[i] = fi
		return fi
	})
	rt, rtSrv := dialRouter(t, f, Options{Client: webiface.ClientOptions{Retries: 2, RequestTimeout: 5 * time.Second}})
	f.round(rt)

	injectors[0].set(func(fi *faultInjector) { fi.failNextSearch = 2 })
	wantCode, wantBody := fetch(t, http.MethodGet, f.refSrv.URL+"/v1/search?where=0:1", "", "")
	gotCode, gotBody := fetch(t, http.MethodGet, rtSrv.URL+"/v1/search?where=0:1", "", "")
	if gotCode != wantCode || gotBody != wantBody {
		t.Fatalf("answer after transient faults diverges: %d %q vs %d %q", gotCode, gotBody, wantCode, wantBody)
	}
	if rt.RetryCount() == 0 {
		t.Fatal("transient 500s must show up in the retry counter")
	}
}

// TestRouterFailsFastOnDeadShard: a shard that keeps failing exhausts
// the bounded retries and the query fails fast with the unavailable
// envelope — no partial answer, no hang.
func TestRouterFailsFastOnDeadShard(t *testing.T) {
	injectors := make(map[int]*faultInjector)
	f := newFleet(t, 2, 32, 300, func(i int, h http.Handler) http.Handler {
		fi := &faultInjector{next: h}
		injectors[i] = fi
		return fi
	})
	rt, rtSrv := dialRouter(t, f, Options{Client: webiface.ClientOptions{Retries: 1, RequestTimeout: 2 * time.Second}})
	f.round(rt)

	injectors[1].set(func(fi *faultInjector) { fi.alwaysFail = true })
	code, body := fetch(t, http.MethodGet, rtSrv.URL+"/v1/search?where=0:1", "", "")
	if code != http.StatusServiceUnavailable || !strings.Contains(body, `"unavailable"`) {
		t.Fatalf("dead shard: %d %q, want 503 unavailable envelope", code, body)
	}
	if _, mb := fetch(t, http.MethodGet, rtSrv.URL+"/v1/metrics", "", ""); !strings.Contains(mb, "dynagg_router_failures_total 1") {
		t.Fatalf("failure not counted in metrics:\n%s", mb)
	}

	// Recovery is symmetric: the injector heals, the next query answers.
	injectors[1].set(func(fi *faultInjector) { fi.alwaysFail = false })
	wantCode, wantBody := fetch(t, http.MethodGet, f.refSrv.URL+"/v1/search?where=0:1", "", "")
	gotCode, gotBody := fetch(t, http.MethodGet, rtSrv.URL+"/v1/search?where=0:1", "", "")
	if gotCode != wantCode || gotBody != wantBody {
		t.Fatalf("post-recovery answer diverges: %d %q vs %d %q", gotCode, gotBody, wantCode, wantBody)
	}
}

// TestRouterTimesOutSlowShard: a shard slower than the per-attempt
// timeout is retried, then the query fails fast.
func TestRouterTimesOutSlowShard(t *testing.T) {
	injectors := make(map[int]*faultInjector)
	f := newFleet(t, 2, 33, 200, func(i int, h http.Handler) http.Handler {
		fi := &faultInjector{next: h}
		injectors[i] = fi
		return fi
	})
	rt, rtSrv := dialRouter(t, f, Options{Client: webiface.ClientOptions{Retries: 1, RequestTimeout: 100 * time.Millisecond}})
	f.round(rt)

	injectors[0].set(func(fi *faultInjector) { fi.delay = 400 * time.Millisecond })
	code, body := fetch(t, http.MethodGet, rtSrv.URL+"/v1/search?where=0:1", "", "")
	if code != http.StatusServiceUnavailable || !strings.Contains(body, `"unavailable"`) {
		t.Fatalf("slow shard: %d %q, want 503 unavailable envelope", code, body)
	}
}

// TestRouterMidBatchShardFailure: a shard dying for the batched POST
// fails the WHOLE batch with one envelope — the router never returns a
// batch answered by half the fleet — while single GETs keep working.
func TestRouterMidBatchShardFailure(t *testing.T) {
	injectors := make(map[int]*faultInjector)
	f := newFleet(t, 3, 34, 300, func(i int, h http.Handler) http.Handler {
		fi := &faultInjector{next: h}
		injectors[i] = fi
		return fi
	})
	rt, rtSrv := dialRouter(t, f, Options{Client: webiface.ClientOptions{Retries: 1, RequestTimeout: 2 * time.Second}})
	f.round(rt)

	injectors[1].set(func(fi *faultInjector) { fi.failPostOnly = true })
	body := batchBody([][]string{{"0:1"}, {"1:2"}, {}})
	code, got := fetch(t, http.MethodPost, rtSrv.URL+"/v1/search", "", body)
	if code != http.StatusServiceUnavailable || !strings.Contains(got, `"unavailable"`) {
		t.Fatalf("mid-batch failure: %d %q, want 503 unavailable envelope", code, got)
	}
	wantCode, wantBody := fetch(t, http.MethodGet, f.refSrv.URL+"/v1/search?where=0:1", "", "")
	gotCode, gotBody := fetch(t, http.MethodGet, rtSrv.URL+"/v1/search?where=0:1", "", "")
	if gotCode != wantCode || gotBody != wantBody {
		t.Fatalf("GET must survive a POST-only fault: %d %q vs %d %q", gotCode, gotBody, wantCode, wantBody)
	}
}

// TestRouterDegradedReads: with degraded reads on, a dead shard drops
// out of the merge instead of failing the query, and the degraded
// answers are counted.
func TestRouterDegradedReads(t *testing.T) {
	injectors := make(map[int]*faultInjector)
	f := newFleet(t, 2, 35, 300, func(i int, h http.Handler) http.Handler {
		fi := &faultInjector{next: h}
		injectors[i] = fi
		return fi
	})
	rt, rtSrv := dialRouter(t, f, Options{
		Client:        webiface.ClientOptions{Retries: 1, RequestTimeout: 2 * time.Second},
		DegradedReads: true,
	})
	f.round(rt)

	injectors[1].set(func(fi *faultInjector) { fi.alwaysFail = true })
	code, body := fetch(t, http.MethodGet, rtSrv.URL+"/v1/search", "", "")
	if code != http.StatusOK {
		t.Fatalf("degraded read: %d %q, want 200 from the surviving shard", code, body)
	}
	if !strings.HasPrefix(body, `{"k":25,`) {
		t.Fatalf("degraded read body: %q", body)
	}
	if _, mb := fetch(t, http.MethodGet, rtSrv.URL+"/v1/metrics", "", ""); !strings.Contains(mb, "dynagg_router_degraded_answers_total 1") {
		t.Fatalf("degraded answer not counted:\n%s", mb)
	}
}

// TestShardAdminHandshakeRejections pins the admin wire's conflict
// semantics: double freeze, stale publish, publish with nothing
// pending, and the zero-seq guard.
func TestShardAdminHandshakeRejections(t *testing.T) {
	f := newFleet(t, 1, 36, 100)
	base := f.srvs[0].URL

	code, body := fetch(t, http.MethodGet, base+"/v1/shard/epoch", "", "")
	if code != http.StatusOK || !strings.Contains(body, `"frozen":false`) {
		t.Fatalf("epoch probe: %d %q", code, body)
	}

	if code, body = fetch(t, http.MethodPost, base+"/v1/shard/freeze", "", ""); code != http.StatusOK {
		t.Fatalf("freeze: %d %q", code, body)
	}
	if code, body = fetch(t, http.MethodPost, base+"/v1/shard/freeze", "", ""); code != http.StatusConflict || !strings.Contains(body, `"conflict"`) {
		t.Fatalf("double freeze: %d %q, want 409 conflict envelope", code, body)
	}
	// Stale seq: the lazily published first epoch is seq 1, so 1 cannot
	// advance it. The pending set survives for the coordinator's abort.
	if code, body = fetch(t, http.MethodPost, base+"/v1/shard/publish", "", `{"seq":1}`); code != http.StatusConflict || !strings.Contains(body, `"conflict"`) {
		t.Fatalf("stale publish: %d %q, want 409 conflict envelope", code, body)
	}
	if code, body = fetch(t, http.MethodPost, base+"/v1/shard/publish", "", `{"seq":0}`); code != http.StatusBadRequest {
		t.Fatalf("zero-seq publish: %d %q, want 400", code, body)
	}
	if code, body = fetch(t, http.MethodPost, base+"/v1/shard/publish", "", `{"seq":0,"abort":true}`); code != http.StatusOK {
		t.Fatalf("abort: %d %q", code, body)
	}
	if code, body = fetch(t, http.MethodPost, base+"/v1/shard/publish", "", `{"seq":7}`); code != http.StatusConflict || !strings.Contains(body, "no pending") {
		t.Fatalf("publish with nothing pending: %d %q, want 409", code, body)
	}
	// A clean freeze→publish still works after all the rejections.
	if code, body = fetch(t, http.MethodPost, base+"/v1/shard/freeze", "", ""); code != http.StatusOK {
		t.Fatalf("re-freeze: %d %q", code, body)
	}
	if code, body = fetch(t, http.MethodPost, base+"/v1/shard/publish", "", `{"seq":7}`); code != http.StatusOK || !strings.Contains(body, `"seq":7`) {
		t.Fatalf("publish: %d %q", code, body)
	}
}

// TestHandshakeRollbackOnFailedPublish: when one shard cannot publish,
// the fleet aborts — shards where the publish already landed roll back —
// and every shard keeps serving the prior epoch; a later handshake with
// the fault healed succeeds and serving matches the reference again.
func TestHandshakeRollbackOnFailedPublish(t *testing.T) {
	injectors := make(map[int]*faultInjector)
	f := newFleet(t, 3, 37, 300, func(i int, h http.Handler) http.Handler {
		fi := &faultInjector{next: h}
		injectors[i] = fi
		return fi
	})
	rt, rtSrv := dialRouter(t, f, Options{Client: webiface.ClientOptions{Retries: 1, RequestTimeout: 2 * time.Second}})
	f.round(rt)
	before := rt.Seq()

	seqOf := func(i int) string {
		_, body := fetch(t, http.MethodGet, f.srvs[i].URL+"/v1/shard/epoch", "", "")
		return body
	}
	wantSeq := fmt.Sprintf(`"seq":%d`, before)
	injectors[2].set(func(fi *faultInjector) { fi.failPublish = true })
	if _, err := rt.Handshake(context.Background()); err == nil {
		t.Fatal("handshake must fail when a shard cannot publish")
	}
	for i := range f.srvs {
		body := seqOf(i)
		if !strings.Contains(body, wantSeq) || !strings.Contains(body, `"frozen":false`) {
			t.Fatalf("shard %d after failed handshake: %q, want rolled back to %s and unfrozen", i, body, wantSeq)
		}
	}
	if rt.Seq() != before {
		t.Fatalf("router pinned seq moved to %d on a failed handshake, want %d", rt.Seq(), before)
	}

	injectors[2].set(func(fi *faultInjector) { fi.failPublish = false })
	f.ref.AdvanceEpoch()
	seq, err := rt.Handshake(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if seq <= before {
		t.Fatalf("healed handshake published %d, want > %d", seq, before)
	}
	wantCode, wantBody := fetch(t, http.MethodGet, f.refSrv.URL+"/v1/search?where=1:1", "", "")
	gotCode, gotBody := fetch(t, http.MethodGet, rtSrv.URL+"/v1/search?where=1:1", "", "")
	if gotCode != wantCode || gotBody != wantBody {
		t.Fatalf("post-rollback serving diverges: %d %q vs %d %q", gotCode, gotBody, wantCode, wantBody)
	}
}

// TestRouterKillOneShardRestart is the PR's fault-injection acceptance
// test: kill one shard daemon outright — queries fail with a clean
// unavailable envelope during the outage — then restart it on the same
// address with a freshly rebuilt store. Until the fleet re-handshakes,
// the restarted shard is detected serving a stale epoch and answers
// keep failing fast; after ProbeOnce flags it and Handshake re-aligns
// the fleet, answers are byte-identical to the reference again.
func TestRouterKillOneShardRestart(t *testing.T) {
	f := newFleet(t, 4, 38, 600)
	rt, rtSrv := dialRouter(t, f, Options{Client: webiface.ClientOptions{Retries: 1, RequestTimeout: 2 * time.Second}})
	f.round(rt)

	const victim = 1
	queries := []string{"", "?where=0:1", "?where=1:2&where=2:0", "?where=3:3"}
	verify := func(stage string) {
		t.Helper()
		for _, q := range queries {
			wantCode, wantBody := fetch(t, http.MethodGet, f.refSrv.URL+"/v1/search"+q, "", "")
			gotCode, gotBody := fetch(t, http.MethodGet, rtSrv.URL+"/v1/search"+q, "", "")
			if gotCode != wantCode || gotBody != wantBody {
				t.Fatalf("%s: query %q diverges: %d %q vs %d %q", stage, q, gotCode, gotBody, wantCode, wantBody)
			}
		}
	}
	verify("before outage")

	addr := f.srvs[victim].Listener.Addr().String()
	f.srvs[victim].Close()

	code, body := fetch(t, http.MethodGet, rtSrv.URL+"/v1/search?where=0:1", "", "")
	if code != http.StatusServiceUnavailable || !strings.Contains(body, `"unavailable"`) {
		t.Fatalf("during outage: %d %q, want 503 unavailable envelope", code, body)
	}

	// Restart: a fresh process would reload its partition from storage —
	// modeled by cloning the reference store's partition for the victim
	// shard into a brand-new store, with its own (stale) first epoch.
	var reload []*schema.Tuple
	f.ref.Shard(victim).ForEach(func(tp *schema.Tuple) { reload = append(reload, tp.Clone(tp.ID)) })
	ss := hiddendb.NewShardedStore(f.sch, 1)
	if err := ss.ApplyBatch(reload, nil); err != nil {
		t.Fatal(err)
	}
	admin := NewShardAdmin(ss, webiface.NewHandler(hiddendb.NewShardedIface(ss, f.k, nil)), AdminOptions{})
	var ln net.Listener
	var err error
	for i := 0; i < 100; i++ {
		ln, err = net.Listen("tcp", addr)
		if err == nil {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if err != nil {
		t.Fatalf("rebind %s: %v", addr, err)
	}
	hsrv := &http.Server{Handler: admin}
	go func() { _ = hsrv.Serve(ln) }()
	t.Cleanup(func() { _ = hsrv.Close() })
	for i := 0; i < 100; i++ {
		if c, _ := fetch(t, http.MethodGet, "http://"+addr+"/v1/shard/epoch", "", ""); c == http.StatusOK {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}

	// Back up, but on its own stale epoch: serving stays fail-fast.
	code, body = fetch(t, http.MethodGet, rtSrv.URL+"/v1/search?where=0:1", "", "")
	if code != http.StatusServiceUnavailable || !strings.Contains(body, "re-handshake") {
		t.Fatalf("restarted-but-stale shard: %d %q, want 503 demanding re-handshake", code, body)
	}

	rep := rt.ProbeOnce(context.Background())
	if !rep.NeedsHandshake() {
		t.Fatalf("probe after restart: %+v, want a mismatch demanding handshake", rep)
	}
	if _, err := rt.Handshake(context.Background()); err != nil {
		t.Fatal(err)
	}
	verify("after restart and re-handshake")
}
