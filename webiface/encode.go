package webiface

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"strconv"
	"strings"
	"sync"

	"github.com/dynagg/dynagg/internal/hiddendb"
)

// Serving fast path: pooled request scratch and a hand-rolled JSON
// fragment encoder.
//
// The hot GET /v1/search request on a warm cache does no steady-state
// allocation beyond the response write: the query string is parsed
// straight off RawQuery into pooled predicate scratch, the answer cache
// is probed with scratch-built key bytes (hiddendb.Iface.LookupAnswer),
// and a hit serves the pre-encoded body memoized on the shared
// *hiddendb.Answer. The encoder produces bytes identical to
// encoding/json over the wire* structs — the fuzz tests in
// fastpath_test.go pin that equivalence — so clients cannot observe
// whether a response came off the fast path, the full path, a
// singleflight winner or a waiter.

// reqScratch is one request's pooled working memory. A scratch is owned
// by exactly one request goroutine from getReqScratch to putReqScratch
// and holds no answer references while pooled (results are served
// straight from the shared Answer's memoized bytes, never copied here).
type reqScratch struct {
	preds []hiddendb.Pred
	seen  []bool // per-attribute duplicate check, sized to schema M
	key   []byte // cache-key bytes (hiddendb.AppendPredsKey)
	buf   []byte // batch response splice buffer
	body  []byte // batch request body read buffer
	qs    []hiddendb.Query
	req   wireBatchRequest // batch decode target; Queries reused across requests
}

var reqScratchPool = sync.Pool{New: func() any { return new(reqScratch) }}

func getReqScratch() *reqScratch { return reqScratchPool.Get().(*reqScratch) }

func putReqScratch(sc *reqScratch) {
	sc.preds = sc.preds[:0]
	sc.qs = sc.qs[:0]
	reqScratchPool.Put(sc)
}

// encodeBufPool recycles whole-result encode buffers; only the
// exact-size copy retained on the Answer is allocated per encode.
var encodeBufPool = sync.Pool{New: func() any {
	b := make([]byte, 0, 4096)
	return &b
}}

// encodeResult renders one search answer to a fresh exact-size byte
// slice (no trailing newline — callers splice or append it). The slice
// is retained forever on the Answer that memoizes it, so it must not
// alias pooled memory.
func (h *Handler) encodeResult(res hiddendb.Result) []byte {
	bp := encodeBufPool.Get().(*[]byte)
	b := appendWireResult((*bp)[:0], h.b.K(), res)
	out := make([]byte, len(b))
	copy(out, b)
	*bp = b
	encodeBufPool.Put(bp)
	return out
}

// AppendWireResult appends the wire JSON encoding of a search answer to
// dst. It is the exported face of the serving encoder for other wire
// speakers — the multi-process router re-encodes its merged answers with
// it so router responses are byte-identical to single-process serving.
func AppendWireResult(dst []byte, k int, res hiddendb.Result) []byte {
	return appendWireResult(dst, k, res)
}

// appendWireResult appends the JSON encoding of a search answer —
// byte-identical to encoding/json marshalling the equivalent wireResult
// (nil tuple slice encodes as null, aux is omitempty, floats use the
// shortest round-trip form with json's exponent-format thresholds).
func appendWireResult(dst []byte, k int, res hiddendb.Result) []byte {
	dst = append(dst, `{"k":`...)
	dst = strconv.AppendInt(dst, int64(k), 10)
	dst = append(dst, `,"overflow":`...)
	dst = strconv.AppendBool(dst, res.Overflow)
	dst = append(dst, `,"tuples":`...)
	if len(res.Tuples) == 0 {
		// wireResultOf never appended, leaving a nil slice: "null".
		return append(dst, `null}`...)
	}
	dst = append(dst, '[')
	for i, t := range res.Tuples {
		if i > 0 {
			dst = append(dst, ',')
		}
		dst = append(dst, `{"id":`...)
		dst = strconv.AppendUint(dst, t.ID, 10)
		dst = append(dst, `,"vals":`...)
		if t.Vals == nil {
			dst = append(dst, `null`...)
		} else {
			dst = append(dst, '[')
			for j, v := range t.Vals {
				if j > 0 {
					dst = append(dst, ',')
				}
				dst = strconv.AppendUint(dst, uint64(v), 10)
			}
			dst = append(dst, ']')
		}
		if len(t.Aux) > 0 {
			dst = append(dst, `,"aux":[`...)
			for j, a := range t.Aux {
				if j > 0 {
					dst = append(dst, ',')
				}
				dst = appendJSONFloat(dst, a)
			}
			dst = append(dst, ']')
		}
		dst = append(dst, '}')
	}
	return append(dst, `]}`...)
}

// appendJSONFloat appends f exactly as encoding/json's floatEncoder
// renders a float64: shortest round-trip form, fixed notation unless
// the magnitude is below 1e-6 or at least 1e21, and a trimmed one-digit
// negative exponent ("e-7", not "e-07").
func appendJSONFloat(dst []byte, f float64) []byte {
	abs := math.Abs(f)
	format := byte('f')
	if abs != 0 && (abs < 1e-6 || abs >= 1e21) {
		format = 'e'
	}
	dst = strconv.AppendFloat(dst, f, format, -1, 64)
	if format == 'e' {
		if n := len(dst); n >= 4 && dst[n-4] == 'e' && dst[n-3] == '-' && dst[n-2] == '0' {
			dst[n-2] = dst[n-1]
			dst = dst[:n-1]
		}
	}
	return dst
}

// contentTypeJSON is the pre-built Content-Type header value: assigning
// a shared slice sidesteps Header().Set's per-call []string allocation
// (the key is already in canonical MIME form).
var contentTypeJSON = []string{"application/json"}

// writeAnswer serves an answer's memoized wire bytes: the first writer
// under a version pays one encode, every later hit is a buffer write.
// The trailing newline matches what json.Encoder.Encode appended before
// the fast path existed.
func (h *Handler) writeAnswer(w http.ResponseWriter, a *hiddendb.Answer) {
	w.Header()["Content-Type"] = contentTypeJSON
	_, _ = w.Write(a.Wire(h.encodeResult))
	_, _ = io.WriteString(w, "\n")
}

// parseSearchParams parses a GET /v1/search query string into sc.preds
// (validated, then sorted by the caller) and returns the key= parameter
// value. Canonical query strings — no percent-escapes, '+' or ';' —
// are walked directly off RawQuery with zero allocation; anything else
// falls back to net/url parsing with identical semantics.
func (h *Handler) parseSearchParams(r *http.Request, sc *reqScratch) (qkey string, err error) {
	sc.preds = sc.preds[:0]
	m := h.b.Schema().M()
	if cap(sc.seen) < m {
		sc.seen = make([]bool, m)
	}
	sc.seen = sc.seen[:m]
	for i := range sc.seen {
		sc.seen[i] = false
	}
	raw := r.URL.RawQuery
	if strings.ContainsAny(raw, "%+;") {
		vals := r.URL.Query()
		for _, w := range vals["where"] {
			if err := h.parsePredInto(w, sc); err != nil {
				return "", err
			}
		}
		return vals.Get("key"), nil
	}
	keySeen := false
	for raw != "" {
		var seg string
		seg, raw, _ = strings.Cut(raw, "&")
		if seg == "" {
			continue
		}
		name, val, _ := strings.Cut(seg, "=")
		switch name {
		case "where":
			if err := h.parsePredInto(val, sc); err != nil {
				return "", err
			}
		case "key":
			// First occurrence wins even when empty, matching
			// url.Values.Get on the fallback path: ?key=&key=X must
			// charge the same budget key whichever parser ran.
			if !keySeen {
				keySeen = true
				qkey = val
			}
		}
	}
	return qkey, nil
}

// parsePredInto validates one "attr:value" predicate against the schema
// and appends it to the scratch predicate list. The error strings are
// those the pre-fast-path parser produced.
func (h *Handler) parsePredInto(raw string, sc *reqScratch) error {
	attr, val, err := parsePred(raw)
	if err != nil {
		return err
	}
	if attr < 0 || attr >= len(sc.seen) {
		return fmt.Errorf("unknown attribute %d", attr)
	}
	if sc.seen[attr] {
		return fmt.Errorf("duplicate predicate on attribute %d", attr)
	}
	sc.seen[attr] = true
	sc.preds = append(sc.preds, hiddendb.Pred{Attr: attr, Val: val})
	return nil
}

// sortPreds orders the scratch predicates by attribute index — insertion
// sort, since conjunctive queries carry a handful of predicates and
// sort.Slice's closure would allocate on the hot path. Duplicates were
// already rejected, so the order is total.
func sortPreds(preds []hiddendb.Pred) {
	for i := 1; i < len(preds); i++ {
		p := preds[i]
		j := i - 1
		for j >= 0 && preds[j].Attr > p.Attr {
			preds[j+1] = preds[j]
			j--
		}
		preds[j+1] = p
	}
}

// readBody drains a batch request body into the pooled scratch buffer.
func readBody(r io.Reader, sc *reqScratch) ([]byte, error) {
	b := sc.body[:0]
	if cap(b) == 0 {
		b = make([]byte, 0, 4096)
	}
	for {
		if len(b) == cap(b) {
			b = append(b, 0)[:len(b)]
		}
		n, err := r.Read(b[len(b):cap(b)])
		b = b[:len(b)+n]
		if err == io.EOF {
			sc.body = b
			return b, nil
		}
		if err != nil {
			sc.body = b
			return nil, err
		}
	}
}
