package tracking

import (
	"encoding/json"
	"net/http"
	"time"
)

// Handler exposes the service's current state over HTTP:
//
//	GET /status    → the full round View (algorithm, round, budget,
//	                 queries, estimates, last error)
//	GET /estimates → just the estimates array
//	GET /healthz   → 200 once at least one round completed without a
//	                 step error, 503 before that (readiness probe)
//
// All responses are JSON. Reads never block a running round: they serve
// the immutable View published at the previous round boundary.
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /status", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, s.statusView())
	})
	mux.HandleFunc("GET /estimates", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, s.CurrentView().Estimates)
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		v := s.CurrentView()
		w.Header().Set("Content-Type", "application/json")
		if v.Steps == 0 || v.LastError != "" {
			w.WriteHeader(http.StatusServiceUnavailable)
		}
		_ = json.NewEncoder(w).Encode(map[string]any{"steps": v.Steps, "last_error": v.LastError})
	})
	return mux
}

// statusWire decorates the View with process uptime.
type statusWire struct {
	View
	UptimeSeconds float64 `json:"uptime_seconds"`
}

func (s *Service) statusView() statusWire {
	return statusWire{View: s.CurrentView(), UptimeSeconds: time.Since(s.start).Seconds()}
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(v)
}
