package estimator

import (
	"errors"
	"fmt"

	"github.com/dynagg/dynagg/internal/hiddendb"
	"github.com/dynagg/dynagg/internal/querytree"
	"github.com/dynagg/dynagg/internal/schema"
)

// CountAssisted implements the paper's §8 future-work direction (1):
// using COUNT metadata to guide drill downs. Many real interfaces display
// a (often capped) result count — "1,000+ results" — alongside the top-k
// page. With counts, COUNT aggregates need no sampling at all: maintain a
// frontier of disjoint query-tree nodes whose counts are below the display
// cap; their counts sum to the exact database size, and refreshing a
// frontier node costs exactly one query per round.
//
// The frontier starts at the root and expands a node into its children
// whenever its count is capped. Under churn a node's count can grow past
// the cap, triggering re-expansion; nodes are never merged back (a finer
// frontier stays correct, just costlier — noted as future work in the
// doc comment of Step).
//
// With a budget too small to refresh the whole frontier each round, the
// estimate mixes this round's counts with earlier ones; Freshness reports
// the fraction of the frontier refreshed in the last round so callers can
// judge staleness.
type CountAssisted struct {
	sch  *schema.Schema
	tree *querytree.Tree

	frontier []*frontierNode
	cursor   int // round-robin refresh position
	round    int
	used     int
	started  bool
}

// frontierNode is one disjoint node of the covering frontier.
type frontierNode struct {
	sig       querytree.Signature // values along the path (levels ≥ depth unused)
	depth     int
	count     int
	lastRound int
}

// NewCountAssisted builds the count-guided tracker for COUNT(*).
func NewCountAssisted(sch *schema.Schema) *CountAssisted {
	return &CountAssisted{sch: sch, tree: querytree.New(sch)}
}

// ErrCountCapTooTight reports a fully-specified query whose count is
// still capped — impossible with distinct tuples unless the display cap
// is below the number of duplicates the site tolerates.
var ErrCountCapTooTight = errors.New("estimator: leaf query count still capped")

// Step refreshes the frontier with one round's budget: first it finishes
// any pending expansion work, then refreshes existing nodes round-robin.
// A budget death mid-round is normal; the estimate then carries some
// stale counts (see Freshness).
func (c *CountAssisted) Step(s *hiddendb.CountingSession) error {
	c.round++
	startUsed := s.Used()
	defer func() { c.used = s.Used() - startUsed }()

	if !c.started {
		root := &frontierNode{sig: make(querytree.Signature, c.tree.Depth())}
		if err := c.refresh(s, root); err != nil {
			if errIsBudget(err) {
				return nil
			}
			return err
		}
		c.started = true
	}

	// Refresh every pre-existing node once, iterating a snapshot since
	// expansions mutate the frontier mid-pass. The snapshot is rotated by
	// the round-robin cursor so a budget too small for a full pass still
	// visits every node fairly across rounds.
	if len(c.frontier) == 0 {
		return nil
	}
	snap := make([]*frontierNode, len(c.frontier))
	for i := range snap {
		snap[i] = c.frontier[(c.cursor+i)%len(c.frontier)]
	}
	processed := 0
	for _, node := range snap {
		if node.lastRound == c.round {
			processed++
			continue // refreshed during an expansion this round
		}
		if err := c.refresh(s, node); err != nil {
			if errIsBudget(err) {
				c.cursor += processed
				return nil
			}
			return err
		}
		processed++
	}
	c.cursor += processed
	return nil
}

// refresh re-queries one node; a capped count expands the node into its
// children (recursively, as far as needed).
func (c *CountAssisted) refresh(s *hiddendb.CountingSession, node *frontierNode) error {
	_, count, capped, err := s.SearchWithCount(c.tree.Node(node.sig, node.depth))
	if err != nil {
		return err
	}
	if !capped {
		node.count = count
		node.lastRound = c.round
		if node.depth == 0 && !c.started {
			c.frontier = append(c.frontier, node)
		}
		return nil
	}
	if node.depth == c.tree.Depth() {
		return ErrCountCapTooTight
	}
	// Expand: replace node with its children.
	attr := c.tree.LevelAttr(node.depth)
	children := make([]*frontierNode, 0, c.sch.DomainSize(attr))
	for v := 0; v < c.sch.DomainSize(attr); v++ {
		sig := make(querytree.Signature, len(node.sig))
		copy(sig, node.sig)
		sig[node.depth] = uint16(v)
		children = append(children, &frontierNode{sig: sig, depth: node.depth + 1})
	}
	c.replace(node, children)
	for _, ch := range children {
		if err := c.refresh(s, ch); err != nil {
			return err
		}
	}
	return nil
}

// replace swaps a frontier node for its children (or inserts the root's
// children on first expansion).
func (c *CountAssisted) replace(node *frontierNode, children []*frontierNode) {
	for i, fn := range c.frontier {
		if fn == node {
			out := make([]*frontierNode, 0, len(c.frontier)-1+len(children))
			out = append(out, c.frontier[:i]...)
			out = append(out, children...)
			out = append(out, c.frontier[i+1:]...)
			c.frontier = out
			return
		}
	}
	// Root expansion before the node ever entered the frontier.
	c.frontier = append(c.frontier, children...)
	c.started = true
}

// Estimate returns the current COUNT(*) estimate: the sum of the
// frontier's latest counts. When Freshness is 1 the value is exact for
// the current round.
func (c *CountAssisted) Estimate() float64 {
	sum := 0
	for _, fn := range c.frontier {
		sum += fn.count
	}
	return float64(sum)
}

// Freshness returns the fraction of frontier nodes refreshed in the last
// completed round (0 before the first Step).
func (c *CountAssisted) Freshness() float64 {
	if len(c.frontier) == 0 {
		return 0
	}
	fresh := 0
	for _, fn := range c.frontier {
		if fn.lastRound == c.round {
			fresh++
		}
	}
	return float64(fresh) / float64(len(c.frontier))
}

// FrontierSize returns the number of disjoint nodes covering the
// database — the per-round query cost of fully fresh tracking.
func (c *CountAssisted) FrontierSize() int { return len(c.frontier) }

// Round returns the last completed round.
func (c *CountAssisted) Round() int { return c.round }

// UsedLastRound returns the queries consumed by the last Step.
func (c *CountAssisted) UsedLastRound() int { return c.used }

// String summarises the tracker state.
func (c *CountAssisted) String() string {
	return fmt.Sprintf("count-assisted{round=%d frontier=%d fresh=%.0f%%}",
		c.round, len(c.frontier), 100*c.Freshness())
}
