package webiface

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/dynagg/dynagg/internal/agg"
	"github.com/dynagg/dynagg/internal/estimator"
	"github.com/dynagg/dynagg/internal/hiddendb"
	"github.com/dynagg/dynagg/internal/querytree"
	"github.com/dynagg/dynagg/internal/workload"
)

// newServer builds a simulated hidden database behind an HTTP server.
func newServer(t testing.TB, seed int64, n, k int) (*workload.Env, *httptest.Server) {
	t.Helper()
	data := workload.AutosLikeN(seed, n, 10)
	env, err := workload.NewEnv(data, n*9/10, seed+1)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewHandler(hiddendb.NewIface(env.Store, k, nil)))
	t.Cleanup(srv.Close)
	return env, srv
}

func TestDialDiscoversSchema(t *testing.T) {
	env, srv := newServer(t, 1, 5000, 100)
	c, err := Dial(srv.URL, ClientOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if c.K() != 100 {
		t.Errorf("K = %d", c.K())
	}
	if c.Schema().M() != env.Store.Schema().M() {
		t.Errorf("schema m = %d, want %d", c.Schema().M(), env.Store.Schema().M())
	}
	for i := 0; i < c.Schema().M(); i++ {
		if c.Schema().DomainSize(i) != env.Store.Schema().DomainSize(i) {
			t.Errorf("domain size %d differs", i)
		}
	}
}

func TestRemoteSearchMatchesLocal(t *testing.T) {
	env, srv := newServer(t, 2, 5000, 50)
	c, err := Dial(srv.URL, ClientOptions{})
	if err != nil {
		t.Fatal(err)
	}
	local := hiddendb.NewIface(env.Store, 50, nil)

	queries := []hiddendb.Query{
		hiddendb.NewQuery(),
		hiddendb.NewQuery(hiddendb.Pred{Attr: 0, Val: 1}),
		hiddendb.NewQuery(hiddendb.Pred{Attr: 0, Val: 2}, hiddendb.Pred{Attr: 1, Val: 0}),
		hiddendb.NewQuery(hiddendb.Pred{Attr: 3, Val: 1}),
	}
	for _, q := range queries {
		remote, err := c.Search(q)
		if err != nil {
			t.Fatalf("remote %v: %v", q, err)
		}
		want, _ := local.Search(q)
		if remote.Overflow != want.Overflow || len(remote.Tuples) != len(want.Tuples) {
			t.Fatalf("q=%v: remote (%d,%v) vs local (%d,%v)",
				q, len(remote.Tuples), remote.Overflow, len(want.Tuples), want.Overflow)
		}
		for i := range remote.Tuples {
			if remote.Tuples[i].ID != want.Tuples[i].ID {
				t.Fatalf("q=%v rank %d: ID %d vs %d", q, i, remote.Tuples[i].ID, want.Tuples[i].ID)
			}
		}
	}
}

func TestBadPredicateRejected(t *testing.T) {
	_, srv := newServer(t, 3, 1000, 10)
	for _, raw := range []string{"zz", "99:1", "0:99999", "0:xx"} {
		resp, err := http.Get(srv.URL + "/v1/search?where=" + raw)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("predicate %q: status %d, want 400", raw, resp.StatusCode)
		}
	}
	resp, err := http.Get(srv.URL + "/v1/nope")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown route: %d", resp.StatusCode)
	}
}

// A full drill down over HTTP must find the same top node as locally.
func TestDrillDownOverHTTP(t *testing.T) {
	env, srv := newServer(t, 4, 8000, 50)
	c, err := Dial(srv.URL, ClientOptions{})
	if err != nil {
		t.Fatal(err)
	}
	tree := querytree.New(c.Schema())
	rng := rand.New(rand.NewSource(5))
	local := hiddendb.NewIface(env.Store, 50, nil)
	for i := 0; i < 10; i++ {
		sig := tree.RandomSignature(rng)
		remote, err := querytree.DrillFromRoot(c, tree, sig)
		if err != nil {
			t.Fatal(err)
		}
		want, err := querytree.DrillFromRoot(local.AsSearcher(), tree, sig)
		if err != nil {
			t.Fatal(err)
		}
		if remote.Depth != want.Depth || len(remote.Result.Tuples) != len(want.Result.Tuples) {
			t.Fatalf("drill differs: depth %d vs %d", remote.Depth, want.Depth)
		}
	}
}

// End to end: a REISSUE estimator tracking a remote database through
// budgeted HTTP sessions.
func TestEstimatorOverHTTP(t *testing.T) {
	env, srv := newServer(t, 6, 10000, 100)
	c, err := Dial(srv.URL, ClientOptions{})
	if err != nil {
		t.Fatal(err)
	}
	cfg := estimator.Config{Rand: rand.New(rand.NewSource(7))}
	e, err := estimator.NewReissue(c.Schema(), []*agg.Aggregate{agg.CountAll()}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for round := 1; round <= 3; round++ {
		if round > 1 {
			if err := env.InsertFromPool(100); err != nil {
				t.Fatal(err)
			}
		}
		sess := c.NewSession(300)
		if err := e.Step(sess); err != nil {
			t.Fatal(err)
		}
		if sess.Used() > 300 {
			t.Fatalf("session used %d > 300", sess.Used())
		}
		est, ok := e.Estimate(0)
		if !ok {
			t.Fatal("no estimate")
		}
		truth := float64(env.Store.Size())
		if rel := math.Abs(est.Value-truth) / truth; rel > 0.6 {
			t.Errorf("round %d: rel err %.2f", round, rel)
		}
	}
}

func TestClientRetriesTransientErrors(t *testing.T) {
	env, _ := newServer(t, 8, 1000, 10)
	iface := hiddendb.NewIface(env.Store, 10, nil)
	inner := NewHandler(iface)
	var calls int32
	flaky := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if strings.HasSuffix(r.URL.Path, "/search") && atomic.AddInt32(&calls, 1)%3 == 1 {
			http.Error(w, "temporarily unavailable", http.StatusServiceUnavailable)
			return
		}
		inner.ServeHTTP(w, r)
	}))
	defer flaky.Close()

	c, err := Dial(flaky.URL, ClientOptions{Retries: 3})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if _, err := c.Search(hiddendb.NewQuery()); err != nil {
			t.Fatalf("query %d failed despite retries: %v", i, err)
		}
	}
}

func TestClientDoesNotRetryClientErrors(t *testing.T) {
	var calls int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if strings.HasSuffix(r.URL.Path, "/schema") {
			_, _ = w.Write([]byte(`{"k":10,"attrs":[{"name":"a","domain":["x","y"]}]}`))
			return
		}
		atomic.AddInt32(&calls, 1)
		http.Error(w, "bad request", http.StatusBadRequest)
	}))
	defer srv.Close()
	c, err := Dial(srv.URL, ClientOptions{Retries: 5})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Search(hiddendb.NewQuery()); err == nil {
		t.Fatal("4xx answer should fail")
	}
	if got := atomic.LoadInt32(&calls); got != 1 {
		t.Errorf("client retried a 4xx %d times", got)
	}
}

func TestRateLimiting(t *testing.T) {
	_, srv := newServer(t, 10, 500, 10)
	c, err := Dial(srv.URL, ClientOptions{MinInterval: 30 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	for i := 0; i < 4; i++ {
		if _, err := c.Search(hiddendb.NewQuery()); err != nil {
			t.Fatal(err)
		}
	}
	if elapsed := time.Since(start); elapsed < 80*time.Millisecond {
		t.Errorf("4 rate-limited queries took only %v", elapsed)
	}
}

func TestDialErrors(t *testing.T) {
	if _, err := Dial("http://127.0.0.1:1", ClientOptions{HTTPClient: &http.Client{Timeout: 200 * time.Millisecond}}); err == nil {
		t.Error("unreachable host accepted")
	}
	bad := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		_, _ = w.Write([]byte(`{"k":0,"attrs":[]}`))
	}))
	defer bad.Close()
	if _, err := Dial(bad.URL, ClientOptions{}); err == nil {
		t.Error("invalid remote schema accepted")
	}
}

// A server-side 429 must surface as the typed BudgetExhaustedError, which
// estimators recognise as a normal budget death — and must not be retried
// (the budget only resets next round).
func TestServerBudgetTypedError(t *testing.T) {
	env, _ := newServer(t, 20, 1000, 10)
	iface := hiddendb.NewIface(env.Store, 10, nil)
	h := NewHandler(iface)
	h.SetPerKeyBudget(3)
	var searches int32
	counting := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if strings.HasSuffix(r.URL.Path, "/search") {
			atomic.AddInt32(&searches, 1)
		}
		h.ServeHTTP(w, r)
	}))
	defer counting.Close()

	c, err := Dial(counting.URL, ClientOptions{Retries: 5})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := c.Search(hiddendb.NewQuery(hiddendb.Pred{Attr: 0, Val: uint16(i)})); err != nil {
			t.Fatalf("within budget: %v", err)
		}
	}
	_, err = c.Search(hiddendb.NewQuery())
	if err == nil {
		t.Fatal("over-budget search succeeded")
	}
	if !errors.Is(err, hiddendb.ErrBudgetExhausted) {
		t.Fatalf("429 did not unwrap to ErrBudgetExhausted: %v", err)
	}
	var be *BudgetExhaustedError
	if !errors.As(err, &be) {
		t.Fatalf("429 is not a *BudgetExhaustedError: %T", err)
	}
	if got := atomic.LoadInt32(&searches); got != 4 {
		t.Errorf("client sent %d searches; a 429 must not be retried", got)
	}
}

// An estimator tracking through a remote session must treat server-side
// budget exhaustion as the normal end of a round.
func TestEstimatorSurvivesServerBudget(t *testing.T) {
	env, _ := newServer(t, 21, 8000, 100)
	iface := hiddendb.NewIface(env.Store, 100, nil)
	h := NewHandler(iface)
	h.SetPerKeyBudget(120)
	srv := httptest.NewServer(h)
	defer srv.Close()
	c, err := Dial(srv.URL, ClientOptions{})
	if err != nil {
		t.Fatal(err)
	}
	cfg := estimator.Config{Rand: rand.New(rand.NewSource(22)), Parallelism: 4}
	est, err := estimator.NewReissue(c.Schema(), []*agg.Aggregate{agg.CountAll()}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for round := 1; round <= 2; round++ {
		h.ResetBudgets()
		// Client-side budget far above the server's: the 429 ends the round.
		if err := est.Step(c.NewSession(10000)); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
	}
	if _, ok := est.Estimate(0); !ok {
		t.Fatal("no estimate despite completed rounds")
	}
}

// SearchContext must honour caller cancellation through the rate-limit
// wait, the backoff sleeps and the request itself.
func TestSearchContextCancellation(t *testing.T) {
	env, _ := newServer(t, 23, 500, 10)
	iface := hiddendb.NewIface(env.Store, 10, nil)
	inner := NewHandler(iface)
	release := make(chan struct{})
	slow := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if strings.HasSuffix(r.URL.Path, "/search") {
			<-release
		}
		inner.ServeHTTP(w, r)
	}))
	defer slow.Close()
	defer close(release)

	c, err := Dial(slow.URL, ClientOptions{Retries: 3})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err = c.SearchContext(ctx, hiddendb.NewQuery())
	if err == nil {
		t.Fatal("cancelled search succeeded")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want DeadlineExceeded, got %v", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("cancellation took %v", elapsed)
	}
}

// A per-attempt RequestTimeout retries slow attempts, and eventually
// fails with the timeout as the last error — without the caller's context
// being touched.
func TestRequestTimeoutRetriesSlowAttempts(t *testing.T) {
	env, _ := newServer(t, 24, 500, 10)
	iface := hiddendb.NewIface(env.Store, 10, nil)
	inner := NewHandler(iface)
	var calls int32
	slow := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if strings.HasSuffix(r.URL.Path, "/search") {
			if atomic.AddInt32(&calls, 1) <= 2 {
				time.Sleep(200 * time.Millisecond) // beyond the attempt timeout
			}
		}
		inner.ServeHTTP(w, r)
	}))
	defer slow.Close()

	c, err := Dial(slow.URL, ClientOptions{Retries: 3, RequestTimeout: 40 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Search(hiddendb.NewQuery()); err != nil {
		t.Fatalf("search did not recover from slow attempts: %v", err)
	}
	if got := atomic.LoadInt32(&calls); got != 3 {
		t.Errorf("expected 2 timed-out attempts + 1 success, saw %d calls", got)
	}
}

// One webiface.Session shared by many goroutines (the estimator
// executor's fan-out) must never exceed its budget.
func TestSessionConcurrentBudget(t *testing.T) {
	_, srv := newServer(t, 25, 2000, 50)
	c, err := Dial(srv.URL, ClientOptions{})
	if err != nil {
		t.Fatal(err)
	}
	const g = 40
	sess := c.NewSession(g)
	if !sess.ConcurrentSearchable() {
		t.Fatal("remote session must be concurrent-searchable")
	}
	var wg sync.WaitGroup
	var budgetErrs atomic.Int32
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				_, err := sess.Search(hiddendb.NewQuery(hiddendb.Pred{Attr: 0, Val: uint16(w % 3)}))
				if err != nil {
					if !errors.Is(err, hiddendb.ErrBudgetExhausted) {
						t.Errorf("unexpected error: %v", err)
					}
					budgetErrs.Add(1)
				}
			}
		}(w)
	}
	wg.Wait()
	if sess.Used() != g {
		t.Fatalf("used %d, want exactly %d", sess.Used(), g)
	}
	if budgetErrs.Load() != 80-g {
		t.Fatalf("budget errors %d, want %d", budgetErrs.Load(), 80-g)
	}
}
