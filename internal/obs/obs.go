// Package obs is the serving stack's observability kit: a lock-free
// latency histogram every daemon can record into on its hot path, the
// cross-process trace header the router stamps on fan-out requests, a
// fixed-size ring of recent slow/failed requests served at
// /v1/debug/requests, and the slog/pprof plumbing the four daemons
// share.
//
// The histogram is deliberately NOT a metrics registry: it is a fixed
// array of atomic counters with a compiled-in log2 bucket layout, so
// every recording site is a couple of atomic adds (no allocation, no
// lock, no map probe) and every scrape or merge across processes sees
// the exact same bucket boundaries. docs/observability.md documents the
// layout and the metric families built on it.
package obs

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// The bucket layout: upper bounds are powers of two in nanoseconds,
// from 2^histMinShift (1.024µs) to 2^(histMinShift+NumBounds-1)
// (~34.4s), plus one overflow (+Inf) bucket. Log2 bucketing keeps
// Observe branch-free — the bucket index is one bits.Len64 — at the
// cost of factor-2 resolution, which is the standard trade for
// operational latency distributions.
const (
	histMinShift = 10 // smallest upper bound: 2^10 ns = 1.024µs
	// NumBounds is the number of finite bucket upper bounds; snapshots
	// carry NumBounds+1 counts (the last is the +Inf overflow bucket).
	NumBounds = 26
)

// histBounds is the shared finite-bound table in seconds.
var histBounds = func() []float64 {
	b := make([]float64, NumBounds)
	for i := range b {
		b[i] = float64(uint64(1)<<(histMinShift+i)) / float64(time.Second)
	}
	return b
}()

// Bounds returns the fixed histogram upper bounds in seconds (the +Inf
// bucket is implicit). The slice is shared — callers must not mutate it.
func Bounds() []float64 { return histBounds }

// Histogram is a lock-free, fixed-layout latency histogram. The zero
// value is ready; Observe is safe for any number of concurrent callers
// and performs no allocation. Values are recorded in nanoseconds and
// exposed in seconds (the Prometheus convention for latency families).
type Histogram struct {
	counts [NumBounds + 1]atomic.Uint64
	sumNs  atomic.Int64
}

// bucketIndex resolves the bucket for one observation. Bucket i covers
// (2^(histMinShift+i-1), 2^(histMinShift+i)] ns; everything at or below
// the first bound lands in bucket 0 and everything above the last in
// the overflow bucket.
func bucketIndex(d time.Duration) int {
	if d <= 0 {
		return 0
	}
	idx := bits.Len64(uint64(d)-1) - histMinShift
	if idx < 0 {
		return 0
	}
	if idx > NumBounds {
		return NumBounds
	}
	return idx
}

// Observe records one latency sample: two atomic adds, no allocation.
func (h *Histogram) Observe(d time.Duration) {
	h.counts[bucketIndex(d)].Add(1)
	h.sumNs.Add(int64(d))
}

// HistogramSnapshot is a point-in-time copy of a histogram, in the
// shape metrics.Builder.Histogram consumes.
type HistogramSnapshot struct {
	// Counts holds the per-bucket (non-cumulative) sample counts:
	// NumBounds finite buckets followed by the overflow bucket.
	Counts []uint64
	// Count is the total number of observations (sum of Counts).
	Count uint64
	// SumSeconds is the sum of all observed values in seconds.
	SumSeconds float64
}

// Snapshot copies the histogram's current state. Buckets are read
// individually (not as one atomic unit), which is fine for scrapes:
// counts only grow, and cumulative bucket sums stay monotone within any
// single snapshot by construction.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{Counts: make([]uint64, NumBounds+1)}
	for i := range h.counts {
		c := h.counts[i].Load()
		s.Counts[i] = c
		s.Count += c
	}
	s.SumSeconds = float64(h.sumNs.Load()) / float64(time.Second)
	return s
}

// Merge adds another snapshot's samples into s — legal only because
// every Histogram shares the one compiled-in bucket layout.
func (s *HistogramSnapshot) Merge(o HistogramSnapshot) {
	for i := range s.Counts {
		s.Counts[i] += o.Counts[i]
	}
	s.Count += o.Count
	s.SumSeconds += o.SumSeconds
}
