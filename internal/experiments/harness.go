// Package experiments regenerates every figure of the paper's evaluation
// (§6, Figs 2–21). Each figure has a runner returning a Figure value —
// the same series the paper plots — printable as an aligned text table.
//
// Scale: by default the runners use a reduced dataset (≈40k tuples instead
// of the 188,917-tuple Yahoo! Autos snapshot) and a couple of trials so the
// whole suite completes on a single core in minutes while preserving each
// figure's qualitative shape. Setting DYNAGG_FULL_SCALE=1 (or
// Options.FullScale) switches to the paper's parameters. EXPERIMENTS.md
// records paper-vs-measured for every figure.
package experiments

import (
	"encoding/csv"
	"fmt"
	"io"
	"math"
	"math/rand"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"

	"github.com/dynagg/dynagg/internal/agg"
	"github.com/dynagg/dynagg/internal/estimator"
	"github.com/dynagg/dynagg/internal/hiddendb"
	"github.com/dynagg/dynagg/internal/schema"
	"github.com/dynagg/dynagg/internal/stats"
	"github.com/dynagg/dynagg/internal/workload"
)

// Algo names one of the three algorithms under comparison.
type Algo string

// The algorithms of the paper's evaluation.
const (
	Restart Algo = "RESTART"
	Reissue Algo = "REISSUE"
	RS      Algo = "RS"
)

// AllAlgos is the standard comparison set.
var AllAlgos = []Algo{Restart, Reissue, RS}

// Options tunes a figure run.
type Options struct {
	// Seed anchors all randomness; every run with the same options is
	// bit-identical.
	Seed int64
	// Trials averages relative errors over this many independent runs
	// (0 = figure default).
	Trials int
	// FullScale switches to the paper's dataset sizes and round counts.
	FullScale bool
	// Workers bounds how many trials run concurrently, each on its own
	// goroutine with a fully isolated environment (0 = GOMAXPROCS).
	// Results are aggregated by trial index, so every figure is
	// byte-identical across Workers values for the same Seed.
	Workers int
	// Parallelism is the intra-trial bound: how many of one round's
	// planned drill-down walks each estimator issues concurrently
	// (estimator.Config.Parallelism; 0 = DYNAGG_ESTIMATOR_WORKERS or
	// sequential). Estimates — and therefore figures — are byte-identical
	// across values; constant-update figures fall back to sequential
	// automatically (their sessions carry a pre-search hook).
	Parallelism int
}

// DefaultOptions reads DYNAGG_FULL_SCALE, DYNAGG_WORKERS and
// DYNAGG_ESTIMATOR_WORKERS from the environment.
func DefaultOptions() Options {
	workers, _ := strconv.Atoi(os.Getenv("DYNAGG_WORKERS"))
	estWorkers, _ := strconv.Atoi(os.Getenv("DYNAGG_ESTIMATOR_WORKERS"))
	return Options{
		Seed:        1,
		FullScale:   os.Getenv("DYNAGG_FULL_SCALE") == "1",
		Workers:     workers,
		Parallelism: estWorkers,
	}
}

func (o Options) trials(def int) int {
	if o.Trials > 0 {
		return o.Trials
	}
	return def
}

// workers resolves the worker-pool size (0 = one per available core).
func (o Options) workers() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// Figure is one reproduced table/plot.
type Figure struct {
	ID     string
	Title  string
	XLabel string
	YLabel string
	// X holds the x-axis values; XLabels overrides their rendering
	// (dates, hours).
	X       []float64
	XLabels []string
	Series  []Series
	Notes   []string
}

// Series is one line of a figure.
type Series struct {
	Label string
	Y     []float64
}

// AddSeries appends a named series.
func (f *Figure) AddSeries(label string, y []float64) {
	f.Series = append(f.Series, Series{Label: label, Y: y})
}

// Write renders the figure as an aligned text table.
func (f *Figure) Write(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", f.ID, f.Title)
	header := []string{f.XLabel}
	for _, s := range f.Series {
		header = append(header, s.Label)
	}
	rows := [][]string{header}
	for i := range f.X {
		row := []string{f.xLabel(i)}
		for _, s := range f.Series {
			if i < len(s.Y) {
				row = append(row, formatVal(s.Y[i]))
			} else {
				row = append(row, "-")
			}
		}
		rows = append(rows, row)
	}
	writeAligned(w, rows)
	for _, n := range f.Notes {
		fmt.Fprintf(w, "  note: %s\n", n)
	}
	fmt.Fprintln(w)
}

// WriteCSV renders the figure as a CSV table (x column then one column
// per series) for external plotting tools.
func (f *Figure) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	header := []string{f.XLabel}
	for _, s := range f.Series {
		header = append(header, s.Label)
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	for i := range f.X {
		row := []string{f.xLabel(i)}
		for _, s := range f.Series {
			if i < len(s.Y) {
				row = append(row, strconv.FormatFloat(s.Y[i], 'g', -1, 64))
			} else {
				row = append(row, "")
			}
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

func (f *Figure) xLabel(i int) string {
	if i < len(f.XLabels) {
		return f.XLabels[i]
	}
	return formatVal(f.X[i])
}

func formatVal(v float64) string {
	switch {
	case math.IsInf(v, 0) || math.IsNaN(v):
		return fmt.Sprintf("%v", v)
	case v == math.Trunc(v) && math.Abs(v) < 1e7:
		return fmt.Sprintf("%.0f", v)
	case math.Abs(v) >= 1e6 || (v != 0 && math.Abs(v) < 1e-3):
		return fmt.Sprintf("%.3g", v)
	default:
		return fmt.Sprintf("%.4f", v)
	}
}

func writeAligned(w io.Writer, rows [][]string) {
	if len(rows) == 0 {
		return
	}
	widths := make([]int, len(rows[0]))
	for _, row := range rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	for _, row := range rows {
		var b strings.Builder
		for i, cell := range row {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(cell)
			b.WriteString(strings.Repeat(" ", widths[i]-len(cell)))
		}
		fmt.Fprintln(w, strings.TrimRight(b.String(), " "))
	}
}

// TrackSpec describes one tracking experiment: a dynamic database, an
// update schedule, an interface, a set of aggregates, and the algorithms
// to compare.
type TrackSpec struct {
	// Dataset builds the tuple universe for a trial seed.
	Dataset func(seed int64) *workload.Dataset
	// Initial is the number of tuples loaded before round 1.
	Initial int
	// Schedule mutates the database at the start of rounds 2..Rounds.
	Schedule workload.Schedule
	// K is the interface's top-k cap; G the per-round query budget.
	K, G int
	// Rounds is the number of tracked rounds.
	Rounds int
	// Aggs builds the tracked aggregates (index 0 is the measured one).
	Aggs func(sch *schema.Schema) []*agg.Aggregate
	// Delta measures the trans-round delta of aggregate 0 instead of its
	// single-round value.
	Delta bool
	// Window, when > 0, measures the running average of aggregate 0 over
	// the last Window rounds (the Fig 14 trans-round aggregate). Mutually
	// exclusive with Delta.
	Window int
	// RSOpts tweaks the RS estimator (e.g. WithDeltaTarget for deltas).
	RSOpts []estimator.RSOption
	// Algos lists the algorithms to run (nil = all three).
	Algos []Algo
	// Pilot overrides RS's bootstrap parameter ϖ (0 = default 10).
	Pilot int
}

func (s TrackSpec) algos() []Algo {
	if len(s.Algos) == 0 {
		return AllAlgos
	}
	return s.Algos
}

// TrackResult carries everything the figures plot.
type TrackResult struct {
	Rounds int
	// Truth per round (identical across algorithms by construction).
	Truth []float64
	// RelErr / EstMean / EstSD / CumQueries / CumDrills are per-algorithm
	// per-round, averaged (RelErr, means) or pooled (SD) over trials.
	RelErr     map[Algo][]float64
	EstMean    map[Algo][]float64
	EstSD      map[Algo][]float64
	CumQueries map[Algo][]float64
	CumDrills  map[Algo][]float64
}

// FinalErr returns the mean relative error over the last max(1, n/5)
// rounds — the "error after R rounds" number used by the sweep figures.
func (r *TrackResult) FinalErr(a Algo) float64 {
	y := r.RelErr[a]
	if len(y) == 0 {
		return math.NaN()
	}
	tail := len(y) / 5
	if tail < 1 {
		tail = 1
	}
	var s float64
	for _, v := range y[len(y)-tail:] {
		s += v
	}
	return s / float64(tail)
}

// newEstimator builds the named estimator.
func newEstimator(a Algo, sch *schema.Schema, aggs []*agg.Aggregate, cfg estimator.Config, rsOpts []estimator.RSOption) (estimator.Estimator, error) {
	switch a {
	case Restart:
		return estimator.NewRestart(sch, aggs, cfg)
	case Reissue:
		return estimator.NewReissue(sch, aggs, cfg)
	case RS:
		return estimator.NewRS(sch, aggs, cfg, rsOpts...)
	default:
		return nil, fmt.Errorf("experiments: unknown algorithm %q", a)
	}
}

// trackCell is what one trial contributes to one (algorithm, round)
// aggregate cell.
type trackCell struct {
	queries, drills float64
	est, rel        float64
	estOK           bool
}

// trackTrial is the complete outcome of one trial, produced on the
// trial's worker goroutine and merged by RunTracking in trial order.
type trackTrial struct {
	truth   []float64 // per-round target; valid where truthOK
	truthOK []bool
	cells   map[Algo][]trackCell
}

// runTrackingTrial executes one fully isolated trial: its own dataset,
// one fresh environment and estimator per algorithm, and RNGs derived
// from trialSeed(opt.Seed, trial). It never touches shared mutable
// state, so any number of trials may run concurrently.
func runTrackingTrial(spec TrackSpec, opt Options, trial int) (*trackTrial, error) {
	out := &trackTrial{
		truth:   make([]float64, spec.Rounds),
		truthOK: make([]bool, spec.Rounds),
		cells:   make(map[Algo][]trackCell, len(spec.algos())),
	}
	dataSeed := trialSeed(opt.Seed, trial)
	data := spec.Dataset(dataSeed)
	for _, a := range spec.algos() {
		cells := make([]trackCell, spec.Rounds)
		env, err := workload.NewEnv(data, spec.Initial, dataSeed+envSeedOffset)
		if err != nil {
			return nil, err
		}
		iface := hiddendb.NewIface(env.Store, spec.K, nil)
		cfg := estimator.Config{
			Rand:        rand.New(rand.NewSource(dataSeed + rngSeedOffset)),
			Pilot:       spec.Pilot,
			Parallelism: opt.Parallelism,
		}
		est, err := newEstimator(a, env.Store.Schema(), spec.Aggs(env.Store.Schema()), cfg, spec.RSOpts)
		if err != nil {
			return nil, err
		}
		cumQ, cumD := 0.0, 0.0
		prevTruth := math.NaN()
		var truthHist, estHist []float64
		for round := 1; round <= spec.Rounds; round++ {
			if round > 1 {
				if err := spec.Schedule(round, env); err != nil {
					return nil, err
				}
			}
			truth := est.Aggregates()[0].Truth(env.Store)
			truthHist = append(truthHist, truth)
			target := truth
			switch {
			case spec.Delta:
				target = truth - prevTruth
			case spec.Window > 0:
				target = tailMean(truthHist, spec.Window)
			}
			if err := est.Step(iface.NewSession(spec.G)); err != nil {
				return nil, err
			}
			cumQ += float64(est.UsedLastRound())
			cumD = float64(est.DrillDowns())

			c := &cells[round-1]
			c.queries = cumQ
			c.drills = cumD
			ready := (!spec.Delta || round > 1) && (spec.Window == 0 || round >= spec.Window)
			if a == spec.algos()[0] && ready {
				out.truth[round-1] = target
				out.truthOK[round-1] = true
			}
			var e estimator.Estimate
			var ok bool
			if spec.Delta {
				e, ok = est.EstimateDelta(0)
			} else {
				e, ok = est.Estimate(0)
			}
			value := e.Value
			if ok && spec.Window > 0 {
				estHist = append(estHist, e.Value)
				if len(estHist) >= spec.Window {
					value = tailMean(estHist, spec.Window)
				} else {
					ok = false
				}
			}
			if ok && ready {
				c.est = value
				c.rel = stats.RelativeError(value, target)
				c.estOK = true
			}
			prevTruth = truth
		}
		out.cells[a] = cells
	}
	return out, nil
}

// RunTracking executes the spec for every algorithm and trial. Every
// algorithm sees an identical database evolution (same dataset and
// environment seeds per trial), mirroring the paper's setup where all
// methods query the same live database.
//
// Trials run concurrently on opt.workers() goroutines, each with a fully
// isolated environment. Per-trial outcomes are merged in trial-index
// order — every accumulator receives exactly one observation per trial,
// in the same order a sequential run adds them — so the result is
// byte-identical for every Workers value.
func RunTracking(spec TrackSpec, opt Options, trials int) (*TrackResult, error) {
	outs, err := runTrials(trials, opt.workers(), func(trial int) (*trackTrial, error) {
		return runTrackingTrial(spec, opt, trial)
	})
	if err != nil {
		return nil, err
	}

	type cell struct{ rel, est, queries, drills stats.Running }
	table := make(map[Algo][]cell)
	for _, a := range spec.algos() {
		table[a] = make([]cell, spec.Rounds)
	}
	truthAcc := make([]stats.Running, spec.Rounds)
	for _, tr := range outs {
		for round := 0; round < spec.Rounds; round++ {
			if tr.truthOK[round] {
				truthAcc[round].Add(tr.truth[round])
			}
		}
		for _, a := range spec.algos() {
			for round := 0; round < spec.Rounds; round++ {
				c := &table[a][round]
				tc := tr.cells[a][round]
				c.queries.Add(tc.queries)
				c.drills.Add(tc.drills)
				if tc.estOK {
					c.est.Add(tc.est)
					c.rel.Add(tc.rel)
				}
			}
		}
	}

	res := &TrackResult{
		Rounds:     spec.Rounds,
		RelErr:     map[Algo][]float64{},
		EstMean:    map[Algo][]float64{},
		EstSD:      map[Algo][]float64{},
		CumQueries: map[Algo][]float64{},
		CumDrills:  map[Algo][]float64{},
	}
	for round := 0; round < spec.Rounds; round++ {
		res.Truth = append(res.Truth, truthAcc[round].Mean())
	}
	for _, a := range spec.algos() {
		for round := 0; round < spec.Rounds; round++ {
			c := &table[a][round]
			res.RelErr[a] = append(res.RelErr[a], c.rel.Mean())
			res.EstMean[a] = append(res.EstMean[a], c.est.Mean())
			res.EstSD[a] = append(res.EstSD[a], c.est.StdDev())
			res.CumQueries[a] = append(res.CumQueries[a], c.queries.Mean())
			res.CumDrills[a] = append(res.CumDrills[a], c.drills.Mean())
		}
	}
	return res, nil
}

// Runner regenerates one figure.
type Runner func(opt Options) (*Figure, error)

// registry maps figure IDs to runners; populated by init() in the
// per-figure files.
var registry = map[string]Runner{}

func register(id string, r Runner) { registry[id] = r }

// IDs returns all registered figure IDs in order.
func IDs() []string {
	ids := make([]string, 0, len(registry))
	for id := range registry {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool {
		return figNum(ids[i]) < figNum(ids[j])
	})
	return ids
}

func figNum(id string) int {
	n := 0
	for _, c := range id {
		if c >= '0' && c <= '9' {
			n = n*10 + int(c-'0')
		}
	}
	return n
}

// Run regenerates the figure with the given ID.
func Run(id string, opt Options) (*Figure, error) {
	r, ok := registry[id]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown figure %q (have %v)", id, IDs())
	}
	return r(opt)
}

// tailMean averages the last w entries of xs (all of xs if shorter).
func tailMean(xs []float64, w int) float64 {
	if len(xs) < w {
		w = len(xs)
	}
	if w == 0 {
		return 0
	}
	var s float64
	for _, v := range xs[len(xs)-w:] {
		s += v
	}
	return s / float64(w)
}

// roundsAxis builds 1..n as x values.
func roundsAxis(n int) []float64 {
	x := make([]float64, n)
	for i := range x {
		x[i] = float64(i + 1)
	}
	return x
}
