// Pricewatch: replay the paper's Amazon.com live experiment (Fig 20)
// against the scripted simulator — track the average watch price, the
// men's-watch share and the wrist-watch share through Thanksgiving week
// with 1,000 queries per day on a top-100 interface.
//
// The average price should dip sharply on Nov 28–29 (the simulated
// promotion) and recover afterwards, while both proportions stay flat —
// exactly the signal the paper observed live in 2013.
package main

import (
	"fmt"
	"log"

	dynagg "github.com/dynagg/dynagg"
)

func main() {
	sim, err := dynagg.NewAmazonSim(2013)
	if err != nil {
		log.Fatal(err)
	}
	iface := sim.Interface()
	aggs := sim.Aggregates() // AVG(price), %men, %wrist

	tracker, err := dynagg.NewTracker(iface, aggs, dynagg.TrackerOptions{
		Algorithm: dynagg.AlgoRS,
		Budget:    1000, // Product Advertising API quota per day
		Seed:      42,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("day     | est price | true price | est %men | est %wrist")
	for round := 1; round <= sim.Rounds(); round++ {
		if err := sim.StepDay(round); err != nil {
			log.Fatal(err)
		}
		if err := tracker.Step(); err != nil {
			log.Fatal(err)
		}
		price, _ := tracker.Estimate(0)
		men, _ := tracker.Estimate(1)
		wrist, _ := tracker.Estimate(2)
		fmt.Printf("%-7s | $%8.2f | $%9.2f | %7.1f%% | %9.1f%%\n",
			dynagg.AmazonDays[round-1],
			price.Value, aggs[0].Truth(sim.Env.Store),
			100*men.Value, 100*wrist.Value)
	}
	fmt.Println("\nexpect: a sharp price dip on Nov 28-29, flat proportions throughout.")
}
