// Jobmarket: the paper's motivating scenario — an economist tracking the
// number of active job postings on a hidden job board (think monster.com),
// including a skill-specific sub-count, under a strict daily API quota.
//
// Each algorithm gets two trackers sharing the daily quota:
//
//   - one for COUNT(*) over all postings (full query tree), and
//   - one for COUNT(*) WHERE skill=java, which the estimators serve from
//     the selection subtree (§3.3) — every drill-down query carries the
//     skill predicate, so the whole budget works inside the slice of the
//     database the analyst cares about.
package main

import (
	"fmt"
	"log"
	"math"

	dynagg "github.com/dynagg/dynagg"
)

const (
	days       = 15
	dailyQuota = 800 // the job board allows 800 API calls per day
	topK       = 100
)

func main() {
	algos := []dynagg.Algorithm{dynagg.AlgoRestart, dynagg.AlgoReissue, dynagg.AlgoRS}

	// One pair of trackers per algorithm, each against its own
	// identically-evolving copy of the job board (same seeds → same
	// history).
	type runner struct {
		algo     dynagg.Algorithm
		env      *dynagg.Env
		all      *dynagg.Tracker // COUNT(*) — full tree
		java     *dynagg.Tracker // COUNT(skill=java) — selection subtree
		javaSpec *dynagg.Aggregate
	}
	var runners []*runner
	for _, algo := range algos {
		data := dynagg.AutosLikeN(23, 50000, 20) // postings: 20 searchable facets
		env, err := dynagg.NewEnv(data, 42000, 12)
		if err != nil {
			log.Fatal(err)
		}
		iface := dynagg.NewIface(env.Store, topK, nil)

		all, err := dynagg.NewTracker(iface,
			[]*dynagg.Aggregate{dynagg.CountAll()},
			dynagg.TrackerOptions{Algorithm: algo, Budget: dailyQuota / 2, Seed: 13})
		if err != nil {
			log.Fatal(err)
		}
		// Facet 2 value 0 plays the role of "skill = Java".
		javaSpec := dynagg.CountWhere("COUNT(skill=java)",
			dynagg.NewQuery(dynagg.Pred{Attr: 2, Val: 0}))
		java, err := dynagg.NewTracker(iface,
			[]*dynagg.Aggregate{javaSpec},
			dynagg.TrackerOptions{Algorithm: algo, Budget: dailyQuota / 2, Seed: 14})
		if err != nil {
			log.Fatal(err)
		}
		runners = append(runners, &runner{algo: algo, env: env, all: all, java: java, javaSpec: javaSpec})
	}

	fmt.Println("day | truth(all) | truth(java) | per-algorithm relative error (all postings)")
	for day := 1; day <= days; day++ {
		var truthAll, truthJava float64
		row := ""
		for i, r := range runners {
			if day > 1 {
				// Daily churn: new postings appear, filled/expired ones go.
				if err := r.env.DeleteFraction(0.02); err != nil {
					log.Fatal(err)
				}
				if err := r.env.InsertFromPool(900); err != nil {
					log.Fatal(err)
				}
			}
			if err := r.all.Step(); err != nil {
				log.Fatal(err)
			}
			if err := r.java.Step(); err != nil {
				log.Fatal(err)
			}
			if i == 0 {
				truthAll = float64(r.env.Store.Size())
				truthJava = r.javaSpec.Truth(r.env.Store)
			}
			est, ok := r.all.Estimate(0)
			if !ok {
				log.Fatalf("%s: no estimate on day %d", r.algo, day)
			}
			row += fmt.Sprintf("  %s %5.1f%%", r.algo, 100*math.Abs(est.Value-truthAll)/truthAll)
		}
		fmt.Printf("%3d | %10.0f | %11.0f |%s\n", day, truthAll, truthJava, row)
	}

	fmt.Println("\nskill-specific count on the final day (selection-subtree trackers):")
	for _, r := range runners {
		est, ok := r.java.Estimate(0)
		truth := r.javaSpec.Truth(r.env.Store)
		if !ok {
			continue
		}
		fmt.Printf("  %-8s estimate %7.0f  (truth %6.0f, rel err %.1f%%)\n",
			r.algo, est.Value, truth, 100*math.Abs(est.Value-truth)/truth)
	}
}
