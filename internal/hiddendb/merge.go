package hiddendb

// MergePartials folds per-shard partial top-k results into the global
// answer under exactly the rules Epoch.Answer applies in process — the
// wire-level half of the scatter-gather contract, used by the
// multi-process router to merge answers fanned out to shard daemons.
//
// Preconditions (what a shard's Result must be for the fold to be exact):
// each partial is the shard's own top-k over its tuples under the SAME
// (k, scorer) pair, ranked by the strict (score desc, ID asc) order, with
// Overflow set iff the shard had more than k matches; tuple IDs are
// disjoint across partials.
//
// Under those preconditions the fold is byte-identical to answering over
// the union of the shards:
//
//   - Tuples: every tuple of the global top-k is necessarily in its own
//     shard's top-k (per-shard rank can only be better than global rank),
//     so offering every retained tuple of every partial — in shard order,
//     though the strict total order makes the result order-independent —
//     to one top-k heap reconstructs the global top-k exactly.
//   - Overflow: if any shard overflowed, the global match count exceeds k
//     a fortiori. If none did, every shard returned ALL its matches, so
//     the summed tuple count IS the exact global match count. Hence
//     overflow = anyShardOverflow OR totalReturned > k, with no access to
//     per-shard match counts needed.
//
// scorer nil means DefaultScorer. The returned Result is freshly
// allocated; the input partials are not modified.
func MergePartials(partials []Result, k int, scorer Scorer) Result {
	if k < 1 {
		panic("hiddendb: merge k must be >= 1")
	}
	if scorer == nil {
		scorer = DefaultScorer
	}
	sc := getScratch()
	defer putScratch(sc)
	sc.topk.reset()
	total := 0
	overflow := false
	for _, p := range partials {
		total += len(p.Tuples)
		if p.Overflow {
			overflow = true
		}
		for _, t := range p.Tuples {
			sc.topk.offer(t, scorer(t), k)
		}
	}
	return Result{Tuples: sc.topk.drain(), Overflow: overflow || total > k}
}
