// Package dynagg estimates and tracks aggregate queries (COUNT, SUM, AVG —
// with or without selection conditions, single-round and trans-round) over
// dynamic hidden web databases: databases reachable only through a
// restrictive top-k conjunctive search interface with a per-round query
// budget.
//
// It is a from-scratch reproduction of
//
//	"Aggregate Estimation Over Dynamic Hidden Web Databases",
//	Weimo Liu, Saravanan Thirumuruganathan, Nan Zhang, Gautam Das.
//	VLDB 2014 (arXiv:1403.2763).
//
// The package exposes three estimators sharing one drill-down machinery:
//
//   - RESTART — the baseline: rerun the static drill-down estimator of
//     Dasgupta et al. (SIGMOD 2010) from scratch every round.
//   - REISSUE — keep the random signature set fixed across rounds and
//     update each drill down from its previous top non-overflowing node,
//     saving nearly the whole path when the database changed little.
//   - RS — a reservoir-style estimator that bootstraps the amount of
//     change each round, splits the budget between updating old drill
//     downs and starting new ones, and combines per-group estimates by
//     inverse variance.
//
// # Quick start
//
//	data := dynagg.AutosLikeN(1, 40000, 38)      // synthetic hidden DB
//	env, _ := dynagg.NewEnv(data, 36000, 2)
//	iface := dynagg.NewIface(env.Store, 1000, nil) // top-1000 interface
//
//	tr, _ := dynagg.NewTracker(iface, []*dynagg.Aggregate{dynagg.CountAll()},
//	    dynagg.TrackerOptions{Algorithm: dynagg.AlgoReissue, Budget: 500, Seed: 7})
//
//	for round := 1; round <= 50; round++ {
//	    if round > 1 {
//	        _ = env.InsertFromPool(300)          // the database changes...
//	        _ = env.DeleteFraction(0.001)
//	    }
//	    _ = tr.Step()                            // ...and we keep tracking
//	    est, _ := tr.Estimate(0)
//	    fmt.Println(round, est.Value)
//	}
//
// Estimators only ever touch the Searcher interface, so a Tracker can
// equally drive a client for a real web API: implement Searcher with HTTP
// calls and the same algorithms apply unchanged.
//
// # Concurrency
//
// The engine is built around versioned immutable snapshots. A Store
// publishes a Snapshot of each version — the sorted tuple slice plus
// per-(attribute, value) inverted posting lists — and copy-on-writes
// everything a published snapshot references before mutating it, so a
// snapshot is frozen forever once taken. Three things follow:
//
//   - Frozen per round: all query answering (Iface.Search, posting-list
//     intersection, prefix binary search, full scan) runs against the
//     snapshot of the current store version; answers are byte-identical
//     across access paths and across any number of concurrent readers.
//   - Shared by readers: Store.Snapshot, Iface (its snapshot pointer,
//     sharded answer cache and query counter) and webiface.Handler are
//     safe for any number of concurrent reader goroutines — many
//     sessions can search one frozen round at once, and a single
//     mutator goroutine may apply the next round's updates while they
//     do (mutations are serialised internally and never touch published
//     snapshots).
//   - Plan/execute inside a round: every estimator Step first PLANS its
//     drill-down walks — drawing all randomness from its rand.Rand up
//     front, one goroutine — and then an execution engine issues the
//     planned walks concurrently (TrackerOptions.Parallelism /
//     estimator.Config.Parallelism / DYNAGG_ESTIMATOR_WORKERS), applying
//     results in drill-index order. A wave of walks is admitted only
//     when its worst-case cost fits the remaining budget, and the tail
//     runs one walk at a time with everything left, so estimates are
//     byte-identical for every worker count. Sessions carry atomic
//     budget accounting for exactly this bounded fan-out: one Session
//     (local or webiface) may be shared by the walk goroutines of ONE
//     Step. Sessions that cannot be searched concurrently — a pre-search
//     hook couples query order to mutation (constant-update model), or
//     the client-cache ablation is on — report so and are served
//     sequentially.
//   - Still single-goroutine: a Tracker, every estimator (only its
//     internal engine fans out), Env, Dataset and every rand.Rand belong
//     to one goroutine. Do not share one session across estimators or
//     across rounds.
//
// # Sharded stores and epochs
//
// ShardedStore hash-partitions a store N ways on tuple ID (NewShardedStore;
// ShardFor gives the owning shard). Each shard is a full Store with its own
// sorted-tuple snapshot, version and posting lists, and the concurrency
// contract scales per shard:
//
//   - Shard ownership: every mutation is routed to the tuple's owning
//     shard; AT MOST ONE mutator goroutine per shard at a time.
//     ApplyBatchParallel partitions a round's batch and applies it with
//     exactly one goroutine per shard — the sharded write path at full
//     width. Cross-shard batches are not atomic; the round driver owns
//     recovery on a mid-batch error.
//   - Epoch publication: an Epoch pins one immutable snapshot per shard
//     under a single fleet-wide sequence number. AdvanceEpoch must be
//     called from the round driver with all mutators quiescent (after
//     ApplyBatchParallel returns); it snapshots every shard and
//     publishes the set atomically. Readers never assemble their own
//     cross-shard view — they read the published Epoch pointer.
//   - Scatter-gather answering: ShardedIface answers Search and
//     CountMatching by querying every pinned shard snapshot (optionally
//     in parallel, SetGatherWorkers), merging in shard order and cutting
//     the global top-k after the merge. Answers are byte-identical to an
//     unsharded Iface over the same data for every shard count and every
//     gather-goroutine count (the shard-equivalence fuzz proves this
//     under churn for shards ∈ {1, 4, 16}).
//   - Epoch-pinned sessions: ShardedIface.NewSession pins the epoch
//     current at creation; every answer of that session — including
//     SearchBatch — is served from that one epoch, so a round's session
//     never observes two epochs no matter how many advance under it.
//
// The unit of parallelism for experiments remains one independent
// Monte-Carlo TRIAL: the harness (internal/experiments) runs each trial
// on its own worker goroutine with a fully isolated environment derived
// deterministically from seed+trialIndex, and aggregates results by
// trial index, so a parallel run is byte-identical to a sequential one
// with the same seed (Options.Workers, default one per core).
// Options.Parallelism adds the intra-trial axis on top: each trial's
// estimator fans its drill-down issuance out without changing a digit
// of any figure. Immutable-after-construction values — schema.Schema,
// querytree.Tree, every published Snapshot — may be shared freely. The
// contract is enforced by a race-detector CI job (make race) covering
// the engine, the estimator executor, the tracking service, the
// experiment harness and the HTTP serving layer.
//
// # Continuous tracking
//
// internal/tracking + cmd/dynagg-track run an estimator as a long-lived
// service over a live database (local store with churn or a remote
// dynagg-serve URL): one budgeted round per tick, crash/resume via the
// estimator persistence snapshots, and current estimates served over
// HTTP (/v1/status, /v1/estimates, /v1/healthz, Prometheus-style
// /v1/metrics; see docs/api.md for the versioned API and its JSON error
// envelope).
//
// # Multi-tenant fleets
//
// internal/fleet + cmd/dynagg-fleet multiplex MANY tracked aggregates
// over shared resources: a fleet manager owns N tasks (each one
// tracking.Service bound to a local target or a remote dynagg-serve
// URL), splits a global per-tick query budget across them by weighted
// fair sharing (leftovers redistributed deterministically by task ID),
// pools webiface clients per host so tasks against one remote share its
// rate-limiter slots, and checkpoints every task under one fleet
// directory so a crash or restart resumes the whole fleet. An HTTP
// control plane adds/removes/pauses tasks at runtime. The fleet
// ownership rules extend the contract above:
//
//   - The scheduler goroutine owns all task stepping: one task at a
//     time, in ascending task-ID order; only each task's estimator
//     fans out internally. Per-task estimates are byte-identical to an
//     equally budgeted standalone tracking.Service (the experiments
//     "fleet" scenario re-proves this on every run).
//   - The control plane owns only the task table (manager mutex);
//     mutations take effect at tick boundaries and never touch a
//     service beyond reading its immutable View.
//   - Target churn hooks run once per tick on the scheduler goroutine,
//     no matter how many tasks share the target; pooled clients are
//     concurrent-safe by construction.
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for the
// paper-vs-measured record of every reproduced figure.
package dynagg
