package router

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"github.com/dynagg/dynagg/internal/hiddendb"
	"github.com/dynagg/dynagg/internal/schema"
	"github.com/dynagg/dynagg/webiface"
)

// testSchema is the shared fleet schema for the equivalence tests.
func testSchema() *schema.Schema {
	domains := []int{7, 5, 4, 6}
	attrs := make([]schema.Attr, len(domains))
	for i, d := range domains {
		dom := make([]string, d)
		for v := range dom {
			dom[v] = fmt.Sprintf("v%d", v)
		}
		attrs[i] = schema.Attr{Name: fmt.Sprintf("S%d", i+1), Domain: dom}
	}
	return schema.New(attrs)
}

// fleet is a multi-process simulation: a reference single process
// serving an N-way ShardedStore, and N shard daemons (ShardAdmin over a
// 1-way ShardedStore each) holding the identical data partitioned the
// same way the reference partitions it internally. Every mutation is
// applied to both sides, so the router over the daemons must answer
// byte-identically to the reference server.
type fleet struct {
	t   *testing.T
	k   int
	sch *schema.Schema
	rng *rand.Rand

	ref    *hiddendb.ShardedStore
	refH   *webiface.Handler
	refSrv *httptest.Server

	stores   []*hiddendb.ShardedStore
	handlers []*webiface.Handler
	admins   []*ShardAdmin
	srvs     []*httptest.Server

	nextID uint64
}

// newFleet builds the simulation; an optional wrap interposes a fault
// injector between shard i's HTTP server and its admin handler.
func newFleet(t *testing.T, shards int, seed int64, n int, wrap ...func(i int, h http.Handler) http.Handler) *fleet {
	t.Helper()
	f := &fleet{t: t, k: 25, sch: testSchema(), rng: rand.New(rand.NewSource(seed))}
	f.ref = hiddendb.NewShardedStore(f.sch, shards)
	f.refH = webiface.NewHandler(hiddendb.NewShardedIface(f.ref, f.k, nil))
	f.refSrv = httptest.NewServer(f.refH)
	t.Cleanup(f.refSrv.Close)
	for i := 0; i < shards; i++ {
		ss := hiddendb.NewShardedStore(f.sch, 1)
		h := webiface.NewHandler(hiddendb.NewShardedIface(ss, f.k, nil))
		admin := NewShardAdmin(ss, h, AdminOptions{})
		var serve http.Handler = admin
		if len(wrap) > 0 && wrap[0] != nil {
			serve = wrap[0](i, admin)
		}
		srv := httptest.NewServer(serve)
		t.Cleanup(srv.Close)
		f.stores = append(f.stores, ss)
		f.handlers = append(f.handlers, h)
		f.admins = append(f.admins, admin)
		f.srvs = append(f.srvs, srv)
	}
	f.churn(n, 0)
	return f
}

func (f *fleet) bases() []string {
	out := make([]string, len(f.srvs))
	for i, s := range f.srvs {
		out[i] = s.URL
	}
	return out
}

func (f *fleet) genTuple() *schema.Tuple {
	f.nextID++
	vals := make([]uint16, f.sch.M())
	for i := range vals {
		vals[i] = uint16(f.rng.Intn(len(f.sch.Attr(i).Domain)))
	}
	return &schema.Tuple{ID: f.nextID, Vals: vals, Aux: []float64{f.rng.Float64() * 100}}
}

// churn applies one identical mutation batch to the reference store and
// to the owning shard daemons (through their mutator quiescence locks).
func (f *fleet) churn(insertN, deleteN int) {
	f.t.Helper()
	ins := make([][]*schema.Tuple, len(f.stores))
	dels := make([][]uint64, len(f.stores))
	var refIns []*schema.Tuple
	for i := 0; i < insertN; i++ {
		tp := f.genTuple()
		s := f.ref.ShardFor(tp.ID)
		ins[s] = append(ins[s], tp)
		refIns = append(refIns, tp.Clone(tp.ID))
	}
	ids := f.ref.IDs()
	f.rng.Shuffle(len(ids), func(i, j int) { ids[i], ids[j] = ids[j], ids[i] })
	if deleteN > len(ids) {
		deleteN = len(ids)
	}
	refDels := ids[:deleteN]
	for _, id := range refDels {
		s := f.ref.ShardFor(id)
		dels[s] = append(dels[s], id)
	}
	if err := f.ref.ApplyBatch(refIns, refDels); err != nil {
		f.t.Fatal(err)
	}
	for i := range f.stores {
		i := i
		err := f.admins[i].WithMutators(func() error {
			return f.stores[i].ApplyBatch(ins[i], dels[i])
		})
		if err != nil {
			f.t.Fatal(err)
		}
	}
}

// round advances both sides to a new epoch: the reference with its
// in-process AdvanceEpoch, the fleet with the router's two-phase
// handshake, and budgets reset on both (the handshake resets the
// router's own).
func (f *fleet) round(rt *Router) {
	f.t.Helper()
	f.ref.AdvanceEpoch()
	f.refH.ResetBudgets()
	if _, err := rt.Handshake(context.Background()); err != nil {
		f.t.Fatal(err)
	}
}

func dialRouter(t *testing.T, f *fleet, opts Options) (*Router, *httptest.Server) {
	t.Helper()
	if opts.Client.RequestTimeout == 0 {
		opts.Client.RequestTimeout = 10 * time.Second
	}
	rt, err := New(f.bases(), opts)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(rt)
	t.Cleanup(srv.Close)
	return rt, srv
}

// fetch issues one request and returns status plus full body.
func fetch(t *testing.T, method, url, key, body string) (int, string) {
	t.Helper()
	var rd io.Reader
	if body != "" {
		rd = strings.NewReader(body)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	if key != "" {
		req.Header.Set("X-API-Key", key)
	}
	if method == http.MethodPost {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(b)
}

// randomWhere builds a random (sometimes empty, sometimes malformed)
// predicate list as raw query-string parameters.
func randomWhere(rng *rand.Rand, sch *schema.Schema) []string {
	if rng.Intn(20) == 0 {
		// Malformed inputs must produce byte-identical 400 envelopes.
		switch rng.Intn(3) {
		case 0:
			return []string{"not-a-pred"}
		case 1:
			return []string{"99:0"}
		default:
			return []string{"0:1", "0:2"}
		}
	}
	var where []string
	for a := 0; a < sch.M(); a++ {
		if rng.Intn(2) == 0 {
			continue
		}
		where = append(where, fmt.Sprintf("%d:%d", a, rng.Intn(len(sch.Attr(a).Domain))))
	}
	return where
}

func searchURL(base string, where []string) string {
	u := base + "/v1/search"
	if len(where) > 0 {
		u += "?where=" + strings.Join(where, "&where=")
	}
	return u
}

func batchBody(queries [][]string) string {
	var b bytes.Buffer
	b.WriteString(`{"queries":[`)
	for i, where := range queries {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(`{"where":[`)
		for j, wp := range where {
			if j > 0 {
				b.WriteByte(',')
			}
			fmt.Fprintf(&b, "%q", wp)
		}
		b.WriteString(`]}`)
	}
	b.WriteString(`]}`)
	return b.String()
}

// TestRouterEquivalenceFuzz is the PR's core proof: at 1, 4 and 16
// shards, under churn with fleet epoch handshakes between rounds and
// per-key budgets in force, every GET and batched POST answered by the
// router over real HTTP shard daemons is byte-identical — status and
// body — to the single-process reference serving the union of the
// shards.
func TestRouterEquivalenceFuzz(t *testing.T) {
	for _, shards := range []int{1, 4, 16} {
		shards := shards
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			f := newFleet(t, shards, int64(100+shards), 1000)
			const budget = 45
			f.refH.SetPerKeyBudget(budget)
			rt, rtSrv := dialRouter(t, f, Options{PerKeyBudget: budget})
			qrng := rand.New(rand.NewSource(int64(7 * shards)))
			for round := 0; round < 3; round++ {
				if round > 0 {
					f.churn(120, 80)
				}
				f.round(rt)
				keys := []string{"alice", "bob"}
				for i := 0; i < 40; i++ {
					where := randomWhere(qrng, f.sch)
					key := keys[qrng.Intn(len(keys))]
					wantCode, wantBody := fetch(t, http.MethodGet, searchURL(f.refSrv.URL, where), key, "")
					gotCode, gotBody := fetch(t, http.MethodGet, searchURL(rtSrv.URL, where), key, "")
					if gotCode != wantCode || gotBody != wantBody {
						t.Fatalf("round %d GET where=%v key=%s diverges:\nrouter %d %q\nref    %d %q",
							round, where, key, gotCode, gotBody, wantCode, wantBody)
					}
				}
				for i := 0; i < 4; i++ {
					nq := qrng.Intn(8)
					queries := make([][]string, nq)
					for j := range queries {
						queries[j] = randomWhere(qrng, f.sch)
					}
					body := batchBody(queries)
					key := keys[qrng.Intn(len(keys))]
					wantCode, wantBody := fetch(t, http.MethodPost, f.refSrv.URL+"/v1/search", key, body)
					gotCode, gotBody := fetch(t, http.MethodPost, rtSrv.URL+"/v1/search", key, body)
					if gotCode != wantCode || gotBody != wantBody {
						t.Fatalf("round %d POST batch key=%s diverges:\nrouter %d %q\nref    %d %q",
							round, key, gotCode, gotBody, wantCode, wantBody)
					}
				}
			}
			if rt.Seq() < 3 {
				t.Fatalf("fleet epoch %d after 3 handshakes, want >= 3", rt.Seq())
			}
		})
	}
}

// TestRouterSchemaAndStats: the discovery and diagnostics surface is
// served by the router itself (schema byte-identical to a shard's;
// stats reports the fleet epoch as version).
func TestRouterSchemaAndStats(t *testing.T) {
	f := newFleet(t, 4, 11, 300)
	rt, rtSrv := dialRouter(t, f, Options{})
	f.round(rt)

	wantCode, wantBody := fetch(t, http.MethodGet, f.refSrv.URL+"/v1/schema", "", "")
	gotCode, gotBody := fetch(t, http.MethodGet, rtSrv.URL+"/v1/schema", "", "")
	if gotCode != wantCode || gotBody != wantBody {
		t.Fatalf("schema diverges: %d %q vs %d %q", gotCode, gotBody, wantCode, wantBody)
	}

	code, body := fetch(t, http.MethodGet, rtSrv.URL+"/v1/stats", "", "")
	if code != http.StatusOK || !strings.Contains(body, fmt.Sprintf(`"version":%d`, rt.Seq())) {
		t.Fatalf("stats: %d %q (want version %d)", code, body, rt.Seq())
	}

	code, body = fetch(t, http.MethodGet, rtSrv.URL+"/v1/healthz", "", "")
	if code != http.StatusOK || !strings.Contains(body, `"status":"ok"`) {
		t.Fatalf("healthz: %d %q", code, body)
	}

	code, body = fetch(t, http.MethodGet, rtSrv.URL+"/v1/metrics", "", "")
	if code != http.StatusOK || !strings.Contains(body, "dynagg_router_epoch_seq") {
		t.Fatalf("metrics: %d %q", code, body)
	}

	code, body = fetch(t, http.MethodGet, rtSrv.URL+"/v1/nope", "", "")
	if code != http.StatusNotFound || !strings.Contains(body, `"not_found"`) {
		t.Fatalf("unknown route: %d %q", code, body)
	}
}

// TestRouterServesUnavailableBeforeHandshake: with no fleet epoch
// pinned yet, searches fail fast with the unavailable envelope rather
// than serving an undefined mix of shard states.
func TestRouterServesUnavailableBeforeHandshake(t *testing.T) {
	f := newFleet(t, 2, 5, 200)
	_, rtSrv := dialRouter(t, f, Options{})
	code, body := fetch(t, http.MethodGet, rtSrv.URL+"/v1/search", "", "")
	if code != http.StatusServiceUnavailable || !strings.Contains(body, `"unavailable"`) {
		t.Fatalf("pre-handshake search: %d %q, want 503 unavailable envelope", code, body)
	}
	code, body = fetch(t, http.MethodPost, rtSrv.URL+"/v1/search", "", `{"queries":[{"where":[]}]}`)
	if code != http.StatusServiceUnavailable || !strings.Contains(body, `"unavailable"`) {
		t.Fatalf("pre-handshake batch: %d %q, want 503 unavailable envelope", code, body)
	}
}

// TestRouterConcurrentServingAndHandshakes drives parallel searches
// while churn and handshakes flip the fleet epoch under them — the
// race-detector proof (make race) that the epoch pin, the budget table
// and the per-connection state are sound.
func TestRouterConcurrentServingAndHandshakes(t *testing.T) {
	f := newFleet(t, 4, 21, 400)
	rt, _ := dialRouter(t, f, Options{})
	f.round(rt)

	stop := make(chan struct{})
	churnDone := make(chan struct{})
	go func() {
		defer close(churnDone)
		for {
			select {
			case <-stop:
				return
			default:
			}
			f.churn(30, 20)
			f.round(rt)
		}
	}()

	const workers = 4
	done := make(chan struct{}, workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer func() { done <- struct{}{} }()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < 60; i++ {
				where := randomWhere(rng, f.sch)
				req := httptest.NewRequest(http.MethodGet, searchURL("http://router", where), nil)
				rec := httptest.NewRecorder()
				rt.ServeHTTP(rec, req)
				if c := rec.Code; c != http.StatusOK && c != http.StatusBadRequest {
					t.Errorf("worker %d: unexpected status %d: %s", w, c, rec.Body.String())
					return
				}
			}
		}(w)
	}
	for w := 0; w < workers; w++ {
		<-done
	}
	close(stop)
	<-churnDone
}
