package hiddendb

import (
	"hash/maphash"
	"sync"
	"sync/atomic"

	"github.com/dynagg/dynagg/internal/schema"
)

// Scorer is the proprietary ranking function of the web interface: higher
// scores rank earlier, so an overflowing query returns the k highest-scored
// matching tuples. The paper treats the scoring function as an opaque
// property of the site; estimator correctness must not depend on it, which
// the test suite verifies by running the estimators under several scorers.
// A Scorer must be a pure function of its tuple — it is called from
// concurrent reader goroutines.
type Scorer func(*schema.Tuple) float64

// DefaultScorer ranks tuples by a deterministic hash of their ID — an
// arbitrary-but-stable stand-in for a site's relevance ranking. It is a
// pure function of the tuple ID, which the answering engine exploits to
// rank candidates straight off posting containers (idscore.go).
func DefaultScorer(t *schema.Tuple) float64 {
	return defaultScoreID(t.ID)
}

// AuxScorer ranks tuples by their i-th auxiliary payload (e.g. price),
// modelling sites that sort by price or recency.
func AuxScorer(i int) Scorer {
	return func(t *schema.Tuple) float64 {
		if i < len(t.Aux) {
			return t.Aux[i]
		}
		return 0
	}
}

// splitmix64 is the SplitMix64 finalizer, a strong deterministic mixer.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// Iface is the restrictive search interface over a Store: conjunctive
// queries in, at most k ranked tuples plus an overflow flag out. Queries
// are answered against the store's current immutable Snapshot, with a
// sharded per-version answer cache in front; the cache is purely a
// simulator-side speedup (the same query re-issued within a round returns
// the same answer anyway, since the round-update model freezes the data)
// and never affects query-cost accounting, which is done by Session.
//
// Concurrency: an Iface is safe for any number of concurrent reader
// goroutines — the snapshot pointer, answer cache and lifetime query
// counter are all lock-free or sharded — so one Iface can serve many
// sessions searching the same frozen round at once (the webiface.Handler
// serving path) while the harness applies updates between rounds.
// Sessions remain single-goroutine: give each client goroutine its own.
type Iface struct {
	st      *Store
	k       int
	scorer  Scorer
	queries atomic.Uint64 // lifetime query count across all sessions
	cache   atomic.Pointer[answerCache]
	stats   cacheStats
}

// cacheShardCount shards the per-version answer cache to keep concurrent
// sessions off each other's locks. Must be a power of two.
const cacheShardCount = 16

var cacheSeed = maphash.MakeSeed()

// answerCache is one store version's sharded result cache; a version
// change swaps the whole cache atomically.
type answerCache struct {
	version uint64
	shards  [cacheShardCount]cacheShard
}

// cacheShard lazily allocates its maps: versions churn on every mutation
// in the constant-update model, and most shards of most versions are
// never touched. m holds published answers; inflight holds one flight
// per key currently being computed (singleflight, see answer.go).
type cacheShard struct {
	mu       sync.RWMutex
	m        map[string]*Answer
	inflight map[string]*flight
}

// get probes the published answers by raw key bytes — the serving fast
// path calls it with a scratch-built key and never materializes the
// string (the map lookup conversion does not allocate).
func (sh *cacheShard) get(key []byte) (*Answer, bool) {
	sh.mu.RLock()
	a, ok := sh.m[string(key)]
	sh.mu.RUnlock()
	return a, ok
}

func newAnswerCache(version uint64) *answerCache {
	return &answerCache{version: version}
}

func (c *answerCache) shard(key string) *cacheShard {
	return &c.shards[maphash.String(cacheSeed, key)&(cacheShardCount-1)]
}

// shardBytes is shard for a key still in scratch bytes; maphash.Bytes
// hashes identically to maphash.String over the same content.
func (c *answerCache) shardBytes(key []byte) *cacheShard {
	return &c.shards[maphash.Bytes(cacheSeed, key)&(cacheShardCount-1)]
}

// NewIface creates a top-k view of the store. scorer may be nil for the
// default hash ranking. It panics if k < 1.
func NewIface(st *Store, k int, scorer Scorer) *Iface {
	if k < 1 {
		panic("hiddendb: interface k must be >= 1")
	}
	if scorer == nil {
		scorer = DefaultScorer
	}
	return &Iface{st: st, k: k, scorer: scorer}
}

// K returns the result cap of the interface.
func (f *Iface) K() int { return f.k }

// Schema returns the queryable schema.
func (f *Iface) Schema() *schema.Schema { return f.st.Schema() }

// TotalQueries returns the lifetime number of queries answered, across all
// sessions — the harness uses it for cumulative query-cost figures.
func (f *Iface) TotalQueries() uint64 { return f.queries.Load() }

// Snapshot returns the immutable snapshot the interface currently answers
// from. Harness/serving-side only: it exposes |D| and the raw tuples, so
// it is deliberately not part of the restricted Searcher capability.
func (f *Iface) Snapshot() *Snapshot { return f.st.Snapshot() }

// Version returns the store version the interface currently answers for,
// without forcing snapshot publication (serving diagnostics).
func (f *Iface) Version() uint64 { return f.st.Version() }

// cacheFor returns the answer cache for the given version, swapping a
// fresh one in when the store moved on.
func (f *Iface) cacheFor(version uint64) *answerCache {
	for {
		c := f.cache.Load()
		if c != nil && c.version == version {
			return c
		}
		nc := newAnswerCache(version)
		if f.cache.CompareAndSwap(c, nc) {
			return nc
		}
	}
}

// Search answers one query. It never fails; budget enforcement lives in
// Session.
//
// The first query of a store version is answered directly under the
// store's lock from a reusable ephemeral snapshot; a version only gets a
// published (copy-on-write) snapshot and cache once a second query hits
// it. The constant-update model — one mutation before every query —
// therefore pays no publication cost, while round-update and serving
// workloads (many queries per frozen version) run lock-free on the
// published snapshot after the first two queries.
func (f *Iface) Search(q Query) (Result, error) {
	return f.searchAnswer(q).res, nil
}

// SearchAnswer is Search returning the shared cached *Answer, so the
// serving layer can memoize the wire encoding next to the Result
// (answer.go). Uncached paths (the ephemeral first query of a version)
// return a fresh Answer whose wire slot still memoizes within the
// request that holds it.
func (f *Iface) SearchAnswer(q Query) (*Answer, error) {
	return f.searchAnswer(q), nil
}

func (f *Iface) searchAnswer(q Query) *Answer {
	f.queries.Add(1)
	if s := f.st.snap.Load(); s != nil && s.version == f.st.version.Load() {
		return f.answerSnapshot(s, q)
	}
	f.st.snapMu.Lock()
	v := f.st.version.Load()
	if s := f.st.snap.Load(); s != nil && s.version == v {
		f.st.snapMu.Unlock()
		return f.answerSnapshot(s, q)
	}
	if f.st.lastQueried == v {
		// Second query at this version: it is worth freezing.
		s := f.st.publishLocked()
		f.st.snapMu.Unlock()
		return f.answerSnapshot(s, q)
	}
	f.st.lastQueried = v
	r := f.st.ephemeralLocked().Answer(q, f.k, f.scorer)
	f.st.snapMu.Unlock()
	f.stats.misses.Add(1)
	return &Answer{res: r}
}

// SearchBatch answers many queries against ONE snapshot pin: the whole
// batch sees the same frozen version, and each answer is byte-identical
// to what a sequence of Search calls over the unchanged version returns.
// Like Search it never fails; per-query budget charging lives in Session.
func (f *Iface) SearchBatch(qs []Query) []Result {
	out := make([]Result, len(qs))
	if len(qs) == 0 {
		return out
	}
	f.queries.Add(uint64(len(qs)))
	s := f.st.Snapshot()
	for i, q := range qs {
		out[i] = f.answerSnapshot(s, q).res
	}
	return out
}

// SearchBatchAnswer is SearchBatch returning the shared cached Answers —
// the batched wire path serves pre-encoded bodies through them. Same
// single-snapshot pin, same byte-identical results.
func (f *Iface) SearchBatchAnswer(qs []Query) []*Answer {
	out := make([]*Answer, len(qs))
	if len(qs) == 0 {
		return out
	}
	f.queries.Add(uint64(len(qs)))
	s := f.st.Snapshot()
	for i, q := range qs {
		out[i] = f.answerSnapshot(s, q)
	}
	return out
}

// LookupAnswer is the serving fast path: probe the current version's
// cache with an already-encoded key (Query.AppendKey bytes) without
// constructing a Query. A hit counts as one answered query; a miss
// counts nothing — the caller falls back to SearchAnswer, which does its
// own accounting. It only hits when the store has a current published
// snapshot AND the cache already holds the key, so it can never observe
// a version the full path would not.
func (f *Iface) LookupAnswer(key []byte) (*Answer, bool) {
	s := f.st.snap.Load()
	if s == nil || s.version != f.st.version.Load() {
		return nil, false
	}
	c := f.cache.Load()
	if c == nil || c.version != s.version {
		return nil, false
	}
	a, ok := c.shardBytes(key).get(key)
	if !ok {
		return nil, false
	}
	f.queries.Add(1)
	f.stats.hits.Add(1)
	return a, true
}

// CacheStats returns the lifetime answer-cache counters.
func (f *Iface) CacheStats() CacheStats { return f.stats.read() }

// answerSnapshot answers q on a published snapshot through the sharded
// per-version cache, collapsing concurrent identical queries into one
// engine execution (answer.go).
func (f *Iface) answerSnapshot(snap *Snapshot, q Query) *Answer {
	c := f.cacheFor(snap.Version())
	key := q.Key()
	return c.shard(key).do(key, &f.stats, func() Result {
		return snap.Answer(q, f.k, f.scorer)
	})
}

// BudgetCounter is the atomic claim-before-issue accounting of a round's
// query budget G, shared by every Session implementation (local and
// webiface): a query is charged by Claim before it is issued, and a
// failed claim IS the round's budget death. Safe for the estimator
// execution engine's bounded fan-out.
type BudgetCounter struct {
	g    int // <= 0 means unlimited
	used atomic.Int64
}

// NewBudgetCounter starts a round's accounting (g <= 0 = unlimited).
func NewBudgetCounter(g int) *BudgetCounter { return &BudgetCounter{g: g} }

// Claim charges one query, returning its 0-based index and whether the
// budget allowed it.
func (b *BudgetCounter) Claim() (int, bool) {
	if b.g <= 0 {
		return int(b.used.Add(1) - 1), true
	}
	for {
		u := b.used.Load()
		if u >= int64(b.g) {
			return 0, false
		}
		if b.used.CompareAndSwap(u, u+1) {
			return int(u), true
		}
	}
}

// Used returns the queries claimed so far.
func (b *BudgetCounter) Used() int { return int(b.used.Load()) }

// Remaining returns the unclaimed budget (negative when unlimited).
func (b *BudgetCounter) Remaining() int {
	if b.g <= 0 {
		return -1
	}
	return b.g - b.Used()
}

// Budget returns the round budget G (<= 0 means unlimited).
func (b *BudgetCounter) Budget() int { return b.g }

// sessionBackend is the answering capability a Session wraps its budget
// around: an Iface (answers track the store's current version) or a
// ShardedIface epoch view (answers pinned to one epoch). Both are
// infallible — budget death is the Session's own doing.
type sessionBackend interface {
	Search(q Query) (Result, error)
	SearchBatch(qs []Query) []Result
	K() int
	Schema() *schema.Schema
}

// Session enforces the per-round query budget G on top of an Iface (or an
// epoch-pinned view of a ShardedIface) and optionally drives the
// constant-update model by running a hook before each query (the harness
// uses the hook to apply mid-round updates, modelling databases that
// change while the algorithm is executing, §5.2).
//
// Budget accounting is atomic, so one Session may be shared by the
// bounded fan-out of the estimator execution engine (several goroutines
// issuing one round's drill-down walks). With a pre-search hook installed
// the session reverts to single-goroutine use — the hook couples query
// order to database mutation — and reports so via ConcurrentSearchable.
type Session struct {
	b         sessionBackend
	bc        *BudgetCounter
	preSearch func(queryIndex int)
}

// NewSession starts a round with budget G (G <= 0 means unlimited).
func (f *Iface) NewSession(g int) *Session {
	return &Session{b: f, bc: NewBudgetCounter(g)}
}

// SetPreSearchHook installs fn, invoked with the 0-based index of each
// query just before it is answered. Harness-only: estimators never see
// it, and installing it makes the session single-goroutine again.
func (s *Session) SetPreSearchHook(fn func(queryIndex int)) { s.preSearch = fn }

// ConcurrentSearchable reports whether concurrent Search calls are safe:
// true unless a pre-search hook mutates the database per query.
func (s *Session) ConcurrentSearchable() bool { return s.preSearch == nil }

// Search issues one query, consuming one unit of budget.
func (s *Session) Search(q Query) (Result, error) {
	idx, ok := s.bc.Claim()
	if !ok {
		return Result{}, ErrBudgetExhausted
	}
	if s.preSearch != nil {
		s.preSearch(idx)
	}
	return s.b.Search(q)
}

// SearchBatch issues many queries as one batch, charging one unit of
// budget per query in order. Queries the budget cannot cover come back as
// ErrBudgetExhausted items; the covered prefix is answered under a single
// snapshot/epoch pin. With a pre-search hook installed the batch degrades
// to sequential Search calls — the hook mutates the database between
// queries, so answering them together would change semantics.
func (s *Session) SearchBatch(qs []Query) ([]BatchItem, error) {
	items := make([]BatchItem, len(qs))
	if s.preSearch != nil {
		for i, q := range qs {
			r, err := s.Search(q)
			items[i] = BatchItem{Result: r, Err: err}
		}
		return items, nil
	}
	claimed := make([]Query, 0, len(qs))
	claimedIdx := make([]int, 0, len(qs))
	for i, q := range qs {
		if _, ok := s.bc.Claim(); !ok {
			items[i].Err = ErrBudgetExhausted
			continue
		}
		claimed = append(claimed, q)
		claimedIdx = append(claimedIdx, i)
	}
	for j, r := range s.b.SearchBatch(claimed) {
		items[claimedIdx[j]] = BatchItem{Result: r}
	}
	return items, nil
}

// K returns the interface's result cap.
func (s *Session) K() int { return s.b.K() }

// Schema returns the queryable schema.
func (s *Session) Schema() *schema.Schema { return s.b.Schema() }

// Used returns the number of queries issued in this session.
func (s *Session) Used() int { return s.bc.Used() }

// Remaining returns the unused budget, or a negative number if unlimited.
func (s *Session) Remaining() int { return s.bc.Remaining() }

// Budget returns the session's budget G (<=0 means unlimited).
func (s *Session) Budget() int { return s.bc.Budget() }

var _ ConcurrentSearcher = (*Session)(nil)
var _ BatchSearcher = (*Session)(nil)
var _ Searcher = ifaceSearcher{}

// CountingIface is an Iface that additionally reports each query's result
// count, capped at countCap — modelling sites that display "1,000+
// results". The paper's core model assumes no COUNT metadata (§2.1 worst
// case); this interface supports the §8 future-work extension of
// count-guided drill downs.
type CountingIface struct {
	f        *Iface
	countCap int
}

// NewCountingIface wraps a store in a top-k interface that also reports
// capped result counts. countCap <= 0 means uncapped (exact counts).
func NewCountingIface(st *Store, k int, scorer Scorer, countCap int) *CountingIface {
	return &CountingIface{f: NewIface(st, k, scorer), countCap: countCap}
}

// K returns the result cap of the interface.
func (c *CountingIface) K() int { return c.f.K() }

// CountCap returns the display cap on counts (0 = exact).
func (c *CountingIface) CountCap() int { return c.countCap }

// Schema returns the queryable schema.
func (c *CountingIface) Schema() *schema.Schema { return c.f.Schema() }

// SearchWithCount answers one query with its (capped) result count. The
// second return is the displayed count: min(|Sel(q)|, countCap), and
// capped reports whether the true count exceeds the cap.
func (c *CountingIface) SearchWithCount(q Query) (res Result, count int, capped bool, err error) {
	res, err = c.f.Search(q)
	if err != nil {
		return res, 0, false, err
	}
	true0 := c.f.st.CountMatching(q)
	if c.countCap > 0 && true0 > c.countCap {
		return res, c.countCap, true, nil
	}
	return res, true0, false, nil
}

// NewCountingSession starts a budgeted round against the counting
// interface.
func (c *CountingIface) NewCountingSession(g int) *CountingSession {
	return &CountingSession{c: c, budget: g}
}

// CountingSession enforces the per-round budget over a CountingIface.
type CountingSession struct {
	c      *CountingIface
	budget int
	used   int
}

// SearchWithCount issues one query, consuming one unit of budget.
func (s *CountingSession) SearchWithCount(q Query) (Result, int, bool, error) {
	if s.budget > 0 && s.used >= s.budget {
		return Result{}, 0, false, ErrBudgetExhausted
	}
	s.used++
	return s.c.SearchWithCount(q)
}

// Used returns the queries issued in this session.
func (s *CountingSession) Used() int { return s.used }

// Remaining returns the unused budget (negative when unlimited).
func (s *CountingSession) Remaining() int {
	if s.budget <= 0 {
		return -1
	}
	return s.budget - s.used
}

// ifaceSearcher adapts Iface to Searcher for unbudgeted uses (tests,
// ground-truth-free exploration tools).
type ifaceSearcher struct{ f *Iface }

// AsSearcher returns an unbudgeted Searcher view of the interface.
func (f *Iface) AsSearcher() Searcher { return ifaceSearcher{f: f} }

func (s ifaceSearcher) Search(q Query) (Result, error) { return s.f.Search(q) }
func (s ifaceSearcher) K() int                         { return s.f.K() }
func (s ifaceSearcher) Schema() *schema.Schema         { return s.f.Schema() }
