# Make targets mirror the CI jobs (.github/workflows/ci.yml) so humans
# and CI run exactly the same commands.

GO ?= go

.PHONY: build test race bench bench-smoke fmt fmt-check vet ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# fmt rewrites; fmt-check (CI) fails on any file gofmt would change.
fmt:
	gofmt -w .

fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

# race exercises the parallel trial engine and the single-goroutine
# ownership contract of hiddendb under the race detector.
race:
	$(GO) test -race ./internal/experiments/ ./internal/hiddendb/

# bench regenerates every figure and reports the headline metrics.
bench:
	$(GO) test -bench=. -benchmem ./...

# bench-smoke runs every benchmark exactly once so bench_test.go cannot
# silently rot (no timing value, compile+run coverage only).
bench-smoke:
	$(GO) test -bench=. -benchtime=1x -run='^$$' ./...

ci: build test vet fmt-check race bench-smoke
