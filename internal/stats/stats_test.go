package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool {
	if math.IsInf(a, 0) || math.IsInf(b, 0) {
		return a == b
	}
	diff := math.Abs(a - b)
	scale := math.Max(math.Abs(a), math.Abs(b))
	if scale < 1 {
		scale = 1
	}
	return diff <= tol*scale
}

func TestRunningBasics(t *testing.T) {
	var r Running
	if r.N() != 0 || r.Mean() != 0 || r.Var() != 0 {
		t.Fatalf("zero value not neutral: %+v", r)
	}
	r.AddAll([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if r.N() != 8 {
		t.Fatalf("N = %d, want 8", r.N())
	}
	if got := r.Mean(); !almostEqual(got, 5, 1e-12) {
		t.Errorf("Mean = %v, want 5", got)
	}
	// population variance of this classic sequence is 4
	if got := r.PopVar(); !almostEqual(got, 4, 1e-12) {
		t.Errorf("PopVar = %v, want 4", got)
	}
	if got := r.Var(); !almostEqual(got, 32.0/7.0, 1e-12) {
		t.Errorf("Var = %v, want 32/7", got)
	}
	if got := r.StdDev(); !almostEqual(got, math.Sqrt(32.0/7.0), 1e-12) {
		t.Errorf("StdDev = %v", got)
	}
	if got := r.VarOfMean(); !almostEqual(got, 32.0/7.0/8.0, 1e-12) {
		t.Errorf("VarOfMean = %v", got)
	}
}

func TestRunningSingleObservation(t *testing.T) {
	var r Running
	r.Add(42)
	if r.Var() != 0 || r.VarOfMean() != 0 {
		t.Errorf("variance with one observation should be 0, got %v", r.Var())
	}
	if r.Mean() != 42 {
		t.Errorf("Mean = %v, want 42", r.Mean())
	}
}

// Property: Running matches the naive two-pass computation.
func TestRunningMatchesNaive(t *testing.T) {
	f := func(raw []int16) bool {
		if len(raw) < 2 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, v := range raw {
			xs[i] = float64(v) / 3.0
		}
		var r Running
		r.AddAll(xs)
		mean := 0.0
		for _, x := range xs {
			mean += x
		}
		mean /= float64(len(xs))
		ss := 0.0
		for _, x := range xs {
			ss += (x - mean) * (x - mean)
		}
		naiveVar := ss / float64(len(xs)-1)
		return almostEqual(r.Mean(), mean, 1e-9) && almostEqual(r.Var(), naiveVar, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: merging two streams equals one combined stream.
func TestRunningMergeEquivalence(t *testing.T) {
	f := func(a, b []int16) bool {
		var ra, rb, rc Running
		for _, v := range a {
			ra.Add(float64(v))
			rc.Add(float64(v))
		}
		for _, v := range b {
			rb.Add(float64(v))
			rc.Add(float64(v))
		}
		ra.Merge(rb)
		return ra.N() == rc.N() &&
			almostEqual(ra.Mean(), rc.Mean(), 1e-9) &&
			almostEqual(ra.Var(), rc.Var(), 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestMeanErrors(t *testing.T) {
	if _, err := Mean(nil); err != ErrNoData {
		t.Errorf("Mean(nil) err = %v, want ErrNoData", err)
	}
	m, err := Mean([]float64{1, 2, 3})
	if err != nil || !almostEqual(m, 2, 1e-12) {
		t.Errorf("Mean = %v, %v", m, err)
	}
}

func TestSampleVar(t *testing.T) {
	if v := SampleVar([]float64{5}); v != 0 {
		t.Errorf("SampleVar single = %v, want 0", v)
	}
	if v := SampleVar([]float64{1, 1, 1, 1}); v != 0 {
		t.Errorf("SampleVar constant = %v, want 0", v)
	}
	if v := SampleVar([]float64{1, 3}); !almostEqual(v, 2, 1e-12) {
		t.Errorf("SampleVar{1,3} = %v, want 2", v)
	}
}

func TestRelativeError(t *testing.T) {
	cases := []struct {
		est, truth, want float64
	}{
		{110, 100, 0.10},
		{90, 100, 0.10},
		{-90, -100, 0.10},
		{0, 0, 0},
		{100, 100, 0},
	}
	for _, c := range cases {
		if got := RelativeError(c.est, c.truth); !almostEqual(got, c.want, 1e-12) {
			t.Errorf("RelativeError(%v,%v) = %v, want %v", c.est, c.truth, got, c.want)
		}
	}
	if got := RelativeError(1, 0); !math.IsInf(got, 1) {
		t.Errorf("RelativeError(1,0) = %v, want +Inf", got)
	}
}

func TestCombineInverseVariance(t *testing.T) {
	// Two estimates with equal variance: plain average.
	v, vv, err := CombineInverseVariance([]WeightedEstimate{
		{Value: 10, Variance: 4}, {Value: 20, Variance: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(v, 15, 1e-12) {
		t.Errorf("combined value = %v, want 15", v)
	}
	if !almostEqual(vv, 2, 1e-12) {
		t.Errorf("combined variance = %v, want 2", vv)
	}

	// Lower-variance estimate dominates.
	v, _, err = CombineInverseVariance([]WeightedEstimate{
		{Value: 10, Variance: 1}, {Value: 20, Variance: 1e9},
	})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(v-10) > 0.01 {
		t.Errorf("combined value = %v, want ~10", v)
	}

	// Zero-variance estimate is treated as exact.
	v, vv, err = CombineInverseVariance([]WeightedEstimate{
		{Value: 7, Variance: 0}, {Value: 100, Variance: 5},
	})
	if err != nil || v != 7 || vv != 0 {
		t.Errorf("exact estimate: got %v,%v,%v", v, vv, err)
	}

	if _, _, err := CombineInverseVariance(nil); err != ErrNoData {
		t.Errorf("empty combine err = %v, want ErrNoData", err)
	}
}

// Property: the inverse-variance combination never has higher variance than
// the best individual estimate.
func TestCombineReducesVariance(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(5)
		ests := make([]WeightedEstimate, n)
		best := math.Inf(1)
		for i := range ests {
			ests[i] = WeightedEstimate{Value: rng.NormFloat64() * 100, Variance: 0.1 + rng.Float64()*10}
			if ests[i].Variance < best {
				best = ests[i].Variance
			}
		}
		_, vv, err := CombineInverseVariance(ests)
		if err != nil {
			t.Fatal(err)
		}
		if vv > best+1e-12 {
			t.Fatalf("combined variance %v exceeds best individual %v", vv, best)
		}
	}
}

func TestMSEDecomposition(t *testing.T) {
	ests := []float64{9, 11, 10, 10}
	bias2, variance, mse := MSE(ests, 8)
	if !almostEqual(bias2, 4, 1e-12) {
		t.Errorf("bias² = %v, want 4", bias2)
	}
	if !almostEqual(variance, 0.5, 1e-12) {
		t.Errorf("variance = %v, want 0.5", variance)
	}
	if !almostEqual(mse, 4.5, 1e-12) {
		t.Errorf("mse = %v, want 4.5", mse)
	}
}
