package estimator

import (
	"bytes"
	"fmt"
	"math"
	"math/rand"
	"testing"

	"github.com/dynagg/dynagg/internal/agg"
)

// roundTrip saves and reloads an estimator.
func roundTrip(t *testing.T, e Estimator, te *testEnv) Estimator {
	t.Helper()
	var buf bytes.Buffer
	if err := Save(e, &buf); err != nil {
		t.Fatal(err)
	}
	aggs := e.Aggregates()
	restored, err := Load(&buf, te.env.Store.Schema(), aggs, cfg(999))
	if err != nil {
		t.Fatal(err)
	}
	return restored
}

func TestSaveLoadPreservesEstimates(t *testing.T) {
	for _, mk := range []struct {
		name string
		new  func(te *testEnv) (Estimator, error)
	}{
		{"RESTART", func(te *testEnv) (Estimator, error) {
			return NewRestart(te.env.Store.Schema(), []*agg.Aggregate{agg.CountAll()}, cfg(301))
		}},
		{"REISSUE", func(te *testEnv) (Estimator, error) {
			return NewReissue(te.env.Store.Schema(), []*agg.Aggregate{agg.CountAll()}, cfg(301))
		}},
		{"RS", func(te *testEnv) (Estimator, error) {
			return NewRS(te.env.Store.Schema(), []*agg.Aggregate{agg.CountAll()}, cfg(301), WithDeltaTarget())
		}},
	} {
		t.Run(mk.name, func(t *testing.T) {
			te := newTestEnv(t, 300, 15000, 13000, 100)
			e, err := mk.new(te)
			if err != nil {
				t.Fatal(err)
			}
			for round := 1; round <= 4; round++ {
				if round > 1 {
					if err := te.env.InsertFromPool(200); err != nil {
						t.Fatal(err)
					}
				}
				if err := e.Step(te.iface.NewSession(300)); err != nil {
					t.Fatal(err)
				}
			}
			want, wantOK := e.Estimate(0)
			wantDelta, wantDeltaOK := e.EstimateDelta(0)

			restored := roundTrip(t, e, te)
			if restored.Name() != e.Name() {
				t.Fatalf("algo = %s", restored.Name())
			}
			if restored.Round() != 4 {
				t.Errorf("round = %d", restored.Round())
			}
			if restored.DrillDowns() != e.DrillDowns() {
				t.Errorf("drills = %d vs %d", restored.DrillDowns(), e.DrillDowns())
			}
			got, ok := restored.Estimate(0)
			if ok != wantOK || got.Value != want.Value || got.Variance != want.Variance {
				t.Errorf("estimate mismatch: %+v vs %+v", got, want)
			}
			gotDelta, dOK := restored.EstimateDelta(0)
			if dOK != wantDeltaOK || (dOK && gotDelta.Value != wantDelta.Value) {
				t.Errorf("delta mismatch: %+v vs %+v", gotDelta, wantDelta)
			}

			// The restored estimator keeps tracking sensibly.
			if err := te.env.InsertFromPool(200); err != nil {
				t.Fatal(err)
			}
			if err := restored.Step(te.iface.NewSession(300)); err != nil {
				t.Fatal(err)
			}
			est, ok := restored.Estimate(0)
			if !ok {
				t.Fatal("no estimate after restored step")
			}
			truth := float64(te.env.Store.Size())
			if rel := math.Abs(est.Value-truth) / truth; rel > 0.5 {
				t.Errorf("restored tracking rel err %.2f", rel)
			}
			if restored.Round() != 5 {
				t.Errorf("restored round = %d", restored.Round())
			}
		})
	}
}

// A restored REISSUE continues from the same pool: on a static database
// the next round's estimate equals the pre-save estimate exactly.
func TestSaveLoadReissueContinuity(t *testing.T) {
	te := newTestEnv(t, 310, 15000, 15000, 100)
	e, err := NewReissue(te.env.Store.Schema(), []*agg.Aggregate{agg.CountAll()}, cfg(311))
	if err != nil {
		t.Fatal(err)
	}
	for round := 1; round <= 3; round++ {
		if err := e.Step(te.iface.NewSession(120)); err != nil {
			t.Fatal(err)
		}
	}
	before, _ := e.Estimate(0)
	beforePool := e.PoolSize()

	restored := roundTrip(t, e, te).(*Reissue)
	if restored.PoolSize() != beforePool {
		t.Fatalf("pool %d vs %d", restored.PoolSize(), beforePool)
	}
	if err := restored.Step(te.iface.NewSession(120)); err != nil {
		t.Fatal(err)
	}
	after, _ := restored.Estimate(0)
	// Static database + same signature pool (modulo which were updated
	// within budget) → estimates agree closely.
	if math.Abs(after.Value-before.Value) > 0.25*before.Value {
		t.Errorf("continuity broken: %.0f -> %.0f", before.Value, after.Value)
	}
}

func TestLoadValidation(t *testing.T) {
	te := newTestEnv(t, 320, 5000, 4500, 100)
	e, err := NewReissue(te.env.Store.Schema(), []*agg.Aggregate{agg.CountAll()}, cfg(321))
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Step(te.iface.NewSession(100)); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Save(e, &buf); err != nil {
		t.Fatal(err)
	}

	// Wrong aggregate count.
	two := []*agg.Aggregate{agg.CountAll(), agg.CountAll()}
	if _, err := Load(bytes.NewReader(buf.Bytes()), te.env.Store.Schema(), two, cfg(322)); err == nil {
		t.Error("aggregate count mismatch accepted")
	}
	// Garbage input.
	if _, err := Load(bytes.NewReader([]byte("junk")), te.env.Store.Schema(),
		[]*agg.Aggregate{agg.CountAll()}, cfg(323)); err == nil {
		t.Error("garbage snapshot accepted")
	}
}

// swapRand replaces the estimator's round RNG mid-run, simulating the
// fresh Config.Rand a Load gets (the snapshot never carries RNG state).
func swapRand(t *testing.T, e Estimator, seed int64) {
	t.Helper()
	r := rand.New(rand.NewSource(seed))
	switch v := e.(type) {
	case *Restart:
		v.cfg.Rand = r
	case *Reissue:
		v.cfg.Rand = r
	case *RS:
		v.cfg.Rand = r
	default:
		t.Fatalf("unknown estimator %T", e)
	}
}

// TestCheckpointResumeByteIdenticalUnderExecutor is the crash/resume
// guarantee the tracking service relies on: a run that checkpoints after
// round 2 and resumes in a NEW estimator — continuing under the
// concurrent executor — produces byte-identical per-round estimates to a
// run that never stopped, for all three estimators and for every
// executor parallelism. (Both runs switch to the same fresh RNG at the
// boundary, since persistence deliberately does not serialise RNG state.)
func TestCheckpointResumeByteIdenticalUnderExecutor(t *testing.T) {
	const (
		seed             = 9100
		preRounds        = 2
		postRounds       = 3
		g                = 250
		boundarySeed     = 5511
		churnIns         = 180
		churnDelFraction = 0.01
	)
	aggs := func() []*agg.Aggregate { return []*agg.Aggregate{agg.CountAll()} }
	churn := func(t *testing.T, te *testEnv) {
		t.Helper()
		if err := te.env.InsertFromPool(churnIns); err != nil {
			t.Fatal(err)
		}
		if err := te.env.DeleteFraction(churnDelFraction); err != nil {
			t.Fatal(err)
		}
	}
	build := func(t *testing.T, algo string, te *testEnv) Estimator {
		t.Helper()
		var e Estimator
		var err error
		switch algo {
		case "RESTART":
			e, err = NewRestart(te.env.Store.Schema(), aggs(), cfg(seed+1))
		case "REISSUE":
			e, err = NewReissue(te.env.Store.Schema(), aggs(), cfg(seed+1))
		case "RS":
			e, err = NewRS(te.env.Store.Schema(), aggs(), cfg(seed+1))
		}
		if err != nil {
			t.Fatal(err)
		}
		return e
	}

	for _, algo := range []string{"RESTART", "REISSUE", "RS"} {
		t.Run(algo, func(t *testing.T) {
			// Uninterrupted reference run (sequential executor).
			teA := newTestEnv(t, seed, 12000, 10500, 100)
			eA := build(t, algo, teA)
			for round := 1; round <= preRounds; round++ {
				if round > 1 {
					churn(t, teA)
				}
				if err := eA.Step(teA.iface.NewSession(g)); err != nil {
					t.Fatal(err)
				}
			}
			swapRand(t, eA, boundarySeed)
			var want []stepRecord
			for round := 0; round < postRounds; round++ {
				churn(t, teA)
				if err := eA.Step(teA.iface.NewSession(g)); err != nil {
					t.Fatal(err)
				}
				want = append(want, recordStep(eA, 1))
			}

			// Interrupted runs: same prefix, Save, Load into a fresh
			// estimator, continue at parallelism 1 and 4.
			for _, par := range []int{1, 4} {
				teB := newTestEnv(t, seed, 12000, 10500, 100)
				eB := build(t, algo, teB)
				for round := 1; round <= preRounds; round++ {
					if round > 1 {
						churn(t, teB)
					}
					if err := eB.Step(teB.iface.NewSession(g)); err != nil {
						t.Fatal(err)
					}
				}
				var buf bytes.Buffer
				if err := Save(eB, &buf); err != nil {
					t.Fatal(err)
				}
				lcfg := cfg(boundarySeed)
				lcfg.Parallelism = par
				resumed, err := Load(&buf, teB.env.Store.Schema(), aggs(), lcfg)
				if err != nil {
					t.Fatal(err)
				}
				var got []stepRecord
				for round := 0; round < postRounds; round++ {
					churn(t, teB)
					if err := resumed.Step(teB.iface.NewSession(g)); err != nil {
						t.Fatal(err)
					}
					got = append(got, recordStep(resumed, 1))
				}
				compareRuns(t, fmt.Sprintf("%s resume par=%d", algo, par), want, got)
			}
		})
	}
}

func TestSaveLoadRetainedTuplesSurvive(t *testing.T) {
	te := newTestEnv(t, 330, 8000, 7500, 100)
	c := cfg(331)
	c.RetainTuples = true
	e, err := NewRS(te.env.Store.Schema(), []*agg.Aggregate{agg.CountAll()}, c)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Step(te.iface.NewSession(400)); err != nil {
		t.Fatal(err)
	}
	truth := agg.SumOf("x", agg.AuxField(0)).Truth(te.env.Store)

	restored := roundTrip(t, e, te).(*RS)
	est, err := restored.AdHoc(agg.SumOf("SUM(price)@R1", agg.AuxField(0)), 1)
	if err != nil {
		t.Fatal(err)
	}
	if rel := math.Abs(est.Value-truth) / truth; rel > 0.9 {
		t.Errorf("ad hoc after reload rel err %.2f", rel)
	}
}
