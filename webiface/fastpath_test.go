package webiface

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/dynagg/dynagg/internal/hiddendb"
	"github.com/dynagg/dynagg/internal/workload"
)

// The wire fast path — pooled parse scratch, cache-key probe, memoized
// pre-encoded bodies, singleflight dedup — must be invisible on the
// wire: every response byte-identical to what the pre-fast-path handler
// (parse → Search → encoding/json over wireResult) would have produced,
// across cache hit/miss, winner/waiter, shard counts and gather widths,
// and across mutation between identical queries. These tests pin that.

// legacyBody is the oracle: what the handler answered before the fast
// path existed — json.Encoder over wireResultOf (note the trailing
// newline Encode appends). It runs the query on a FRESH interface over
// the same store, so no cache state can leak into the expectation.
func legacyBody(t *testing.T, h *Handler, fresh Backend, q hiddendb.Query) []byte {
	t.Helper()
	res, err := fresh.Search(q)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := json.Marshal(h.wireResultOf(res))
	if err != nil {
		t.Fatal(err)
	}
	return append(raw, '\n')
}

// whereURL renders q as a canonical GET path (zero-alloc parse route).
func whereURL(q hiddendb.Query) string {
	var sb strings.Builder
	sb.WriteString("/v1/search")
	sep := "?"
	for _, p := range q.Preds() {
		fmt.Fprintf(&sb, "%swhere=%d:%d", sep, p.Attr, p.Val)
		sep = "&"
	}
	return sb.String()
}

// whereURLEscaped renders q with percent-escaped ':' so the parser is
// forced through the net/url fallback route.
func whereURLEscaped(q hiddendb.Query) string {
	var sb strings.Builder
	sb.WriteString("/v1/search")
	sep := "?"
	for _, p := range q.Preds() {
		fmt.Fprintf(&sb, "%swhere=%s", sep, url.QueryEscape(fmt.Sprintf("%d:%d", p.Attr, p.Val)))
		sep = "&"
	}
	return sb.String()
}

func getBody(t *testing.T, srv *httptest.Server, path string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(srv.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, raw
}

func randomQuery(rng *rand.Rand, sch interface{ M() int }, domain func(int) int) hiddendb.Query {
	var preds []hiddendb.Pred
	for a := 0; a < sch.M(); a++ {
		if rng.Float64() < 0.25 {
			preds = append(preds, hiddendb.Pred{Attr: a, Val: uint16(rng.Intn(domain(a)))})
		}
		if len(preds) == 3 {
			break
		}
	}
	return hiddendb.NewQuery(preds...)
}

// fastPathConfig is one serving stack shape the byte-identity sweep
// covers: the plain interface plus sharded stores at several shard
// counts and gather widths.
type fastPathConfig struct {
	name    string
	backend Backend
	fresh   func() Backend // fresh same-store interface for oracle answers
	churn   func() error
}

func fastPathConfigs(t *testing.T, k int) []fastPathConfig {
	t.Helper()
	var cfgs []fastPathConfig

	data := workload.AutosLikeN(61, 4000, 8)
	env, err := workload.NewEnv(data, 3500, 62)
	if err != nil {
		t.Fatal(err)
	}
	cfgs = append(cfgs, fastPathConfig{
		name:    "unsharded",
		backend: hiddendb.NewIface(env.Store, k, nil),
		fresh:   func() Backend { return hiddendb.NewIface(env.Store, k, nil) },
		churn: func() error {
			if err := env.InsertFromPool(40); err != nil {
				return err
			}
			return env.DeleteRandom(20)
		},
	})

	for _, sc := range []struct {
		shards, gather int
	}{{4, 1}, {16, 4}} {
		sc := sc
		sdata := workload.AutosLikeN(71+int64(sc.shards), 4000, 8)
		senv, err := workload.NewShardedEnv(sdata, 3500, 72, sc.shards)
		if err != nil {
			t.Fatal(err)
		}
		si := hiddendb.NewShardedIface(senv.Store, k, nil)
		si.SetGatherWorkers(sc.gather)
		cfgs = append(cfgs, fastPathConfig{
			name:    fmt.Sprintf("sharded_%dx_gather%d", sc.shards, sc.gather),
			backend: si,
			fresh: func() Backend {
				f := hiddendb.NewShardedIface(senv.Store, k, nil)
				f.SetGatherWorkers(sc.gather)
				return f
			},
			churn: func() error {
				if err := senv.InsertFromPool(40); err != nil {
					return err
				}
				if err := senv.DeleteRandom(20); err != nil {
					return err
				}
				senv.Store.AdvanceEpoch()
				return nil
			},
		})
	}
	return cfgs
}

// TestFastPathByteIdentityGET sweeps random queries across serving
// configurations and asserts every GET body — first miss, repeat hit,
// percent-escaped parse fallback — is byte-identical to the legacy
// encoding, including across churned versions.
func TestFastPathByteIdentityGET(t *testing.T) {
	const k = 40
	for _, cfg := range fastPathConfigs(t, k) {
		t.Run(cfg.name, func(t *testing.T) {
			h := NewHandler(cfg.backend)
			srv := httptest.NewServer(h)
			defer srv.Close()
			rng := rand.New(rand.NewSource(7))
			sch := cfg.backend.Schema()
			for round := 0; round < 3; round++ {
				for i := 0; i < 25; i++ {
					q := randomQuery(rng, sch, sch.DomainSize)
					want := legacyBody(t, h, cfg.fresh(), q)
					for pass, path := range []string{whereURL(q), whereURL(q), whereURLEscaped(q)} {
						code, got := getBody(t, srv, path)
						if code != http.StatusOK {
							t.Fatalf("round %d query %d pass %d: status %d", round, i, pass, code)
						}
						if !bytes.Equal(got, want) {
							t.Fatalf("round %d query %d pass %d (%s): body diverged\ngot  %s\nwant %s",
								round, i, pass, path, got, want)
						}
					}
				}
				if err := cfg.churn(); err != nil {
					t.Fatal(err)
				}
			}
			st := cfg.backend.CacheStats()
			if st.Hits == 0 || st.Misses == 0 {
				t.Fatalf("sweep exercised no cache hits or no misses: %+v", st)
			}
		})
	}
}

// TestFastPathByteIdentityBatch pins the batched POST splice path: the
// hand-assembled response must match encoding/json over the equivalent
// wireBatchResponse, with cached and uncached items mixed in one body.
func TestFastPathByteIdentityBatch(t *testing.T) {
	const k = 40
	for _, cfg := range fastPathConfigs(t, k) {
		t.Run(cfg.name, func(t *testing.T) {
			h := NewHandler(cfg.backend)
			srv := httptest.NewServer(h)
			defer srv.Close()
			rng := rand.New(rand.NewSource(9))
			sch := cfg.backend.Schema()
			for round := 0; round < 3; round++ {
				qs := make([]hiddendb.Query, 6)
				for i := range qs {
					qs[i] = randomQuery(rng, sch, sch.DomainSize)
				}
				qs[3] = qs[1] // duplicate inside one batch

				// Warm the cache with one of the batch members so the body
				// mixes pre-encoded hits with fresh misses.
				if _, body := getBody(t, srv, whereURL(qs[0])); len(body) == 0 {
					t.Fatal("warm query returned empty body")
				}

				var req wireBatchRequest
				for _, q := range qs {
					var where []string
					for _, p := range q.Preds() {
						where = append(where, fmt.Sprintf("%d:%d", p.Attr, p.Val))
					}
					req.Queries = append(req.Queries, wireBatchQuery{Where: where})
				}
				reqRaw, err := json.Marshal(req)
				if err != nil {
					t.Fatal(err)
				}

				want := wireBatchResponse{K: k, Results: make([]wireBatchItem, 0, len(qs))}
				fresh := cfg.fresh()
				for _, q := range qs {
					res, err := fresh.Search(q)
					if err != nil {
						t.Fatal(err)
					}
					wr := h.wireResultOf(res)
					want.Results = append(want.Results, wireBatchItem{Result: &wr})
				}
				wantRaw, err := json.Marshal(want)
				if err != nil {
					t.Fatal(err)
				}
				wantRaw = append(wantRaw, '\n')

				resp, err := http.Post(srv.URL+"/v1/search", "application/json", bytes.NewReader(reqRaw))
				if err != nil {
					t.Fatal(err)
				}
				got, err := io.ReadAll(resp.Body)
				resp.Body.Close()
				if err != nil {
					t.Fatal(err)
				}
				if resp.StatusCode != http.StatusOK {
					t.Fatalf("round %d: status %d: %s", round, resp.StatusCode, got)
				}
				if !bytes.Equal(got, wantRaw) {
					t.Fatalf("round %d: batch body diverged\ngot  %s\nwant %s", round, got, wantRaw)
				}
				if err := cfg.churn(); err != nil {
					t.Fatal(err)
				}
			}
		})
	}
}

// TestFastPathNeverServesStale is the staleness fuzz (randomized op
// sequence): interleave queries with inserts, deletes and epoch
// advances, and after EVERY query byte-compare the served body against a
// fresh interface over the same store. A pre-encoded body surviving a
// version change would diverge here immediately.
func TestFastPathNeverServesStale(t *testing.T) {
	const k = 30
	for _, cfg := range fastPathConfigs(t, k) {
		t.Run(cfg.name, func(t *testing.T) {
			h := NewHandler(cfg.backend)
			srv := httptest.NewServer(h)
			defer srv.Close()
			rng := rand.New(rand.NewSource(13))
			sch := cfg.backend.Schema()

			// A small recurring query set maximizes repeat-after-mutation
			// collisions — exactly the pattern that would expose a cache
			// entry outliving its version.
			universe := make([]hiddendb.Query, 8)
			for i := range universe {
				universe[i] = randomQuery(rng, sch, sch.DomainSize)
			}

			for step := 0; step < 200; step++ {
				if rng.Float64() < 0.3 {
					if err := cfg.churn(); err != nil {
						t.Fatal(err)
					}
				}
				q := universe[rng.Intn(len(universe))]
				want := legacyBody(t, h, cfg.fresh(), q)
				code, got := getBody(t, srv, whereURL(q))
				if code != http.StatusOK {
					t.Fatalf("step %d: status %d", step, code)
				}
				if !bytes.Equal(got, want) {
					t.Fatalf("step %d: stale or wrong body for %s\ngot  %s\nwant %s",
						step, whereURL(q), got, want)
				}
			}
		})
	}
}

// TestFastPathSingleflightConcurrentChurn is the race job's target: 32
// clients hammer a handful of hot keys — the singleflight path — while a
// churn goroutine mutates the store and advances versions underneath
// them. Every response must be a well-formed 200; under -race this also
// proves the cache swap, in-flight table and Wire memoization are clean.
func TestFastPathSingleflightConcurrentChurn(t *testing.T) {
	const k = 30
	for _, cfg := range fastPathConfigs(t, k) {
		t.Run(cfg.name, func(t *testing.T) {
			h := NewHandler(cfg.backend)
			srv := httptest.NewServer(h)
			defer srv.Close()
			rng := rand.New(rand.NewSource(17))
			sch := cfg.backend.Schema()
			hot := make([]string, 4)
			for i := range hot {
				hot[i] = whereURL(randomQuery(rng, sch, sch.DomainSize))
			}

			stop := make(chan struct{})
			var churnWG sync.WaitGroup
			churnWG.Add(1)
			go func() {
				defer churnWG.Done()
				for {
					select {
					case <-stop:
						return
					case <-time.After(2 * time.Millisecond):
					}
					if err := cfg.churn(); err != nil {
						t.Error(err)
						return
					}
				}
			}()

			const clients = 32
			const perClient = 30
			var wg sync.WaitGroup
			errs := make(chan error, clients)
			for c := 0; c < clients; c++ {
				wg.Add(1)
				go func(c int) {
					defer wg.Done()
					for i := 0; i < perClient; i++ {
						path := hot[(c+i)%len(hot)]
						resp, err := http.Get(srv.URL + path)
						if err != nil {
							errs <- err
							return
						}
						raw, err := io.ReadAll(resp.Body)
						resp.Body.Close()
						if err != nil {
							errs <- err
							return
						}
						if resp.StatusCode != http.StatusOK {
							errs <- fmt.Errorf("client %d: status %d: %s", c, resp.StatusCode, raw)
							return
						}
						var wr wireResult
						if err := json.Unmarshal(raw, &wr); err != nil {
							errs <- fmt.Errorf("client %d: bad body %q: %v", c, raw, err)
							return
						}
						if wr.K != k {
							errs <- fmt.Errorf("client %d: k=%d want %d", c, wr.K, k)
							return
						}
					}
				}(c)
			}
			wg.Wait()
			close(stop)
			churnWG.Wait()
			close(errs)
			for err := range errs {
				t.Fatal(err)
			}
		})
	}
}

// TestDecodeBatchScratchReuseNoLeak pins the pooled-decode contract: a
// batch query object that omits "where" (a valid match-all query) must
// decode to an empty predicate list even when the scratch's previous
// request left populated wireBatchQuery elements in the backing array —
// encoding/json merges into reused elements, so without the pre-decode
// zeroing a later tenant would inherit the earlier tenant's predicates.
func TestDecodeBatchScratchReuseNoLeak(t *testing.T) {
	sc := new(reqScratch)
	if err := decodeBatch([]byte(`{"queries":[{"where":["0:1","2:3"]},{"where":["1:1"]}]}`), sc); err != nil {
		t.Fatal(err)
	}
	if len(sc.req.Queries) != 2 || len(sc.req.Queries[0].Where) != 2 {
		t.Fatalf("seed decode wrong: %+v", sc.req.Queries)
	}
	// Same scratch, new request: one query with "where" absent, one with
	// it explicitly empty. Both must come out with zero predicates.
	if err := decodeBatch([]byte(`{"queries":[{},{"where":[]}]}`), sc); err != nil {
		t.Fatal(err)
	}
	if len(sc.req.Queries) != 2 {
		t.Fatalf("got %d queries, want 2", len(sc.req.Queries))
	}
	for i, q := range sc.req.Queries {
		if len(q.Where) != 0 {
			t.Fatalf("query %d inherited stale predicates from the pooled scratch: %q", i, q.Where)
		}
	}
}

// TestFastPathBatchMatchAllAfterPredicates is the end-to-end form of the
// scratch-reuse check: alternate a predicate-heavy batch with a bare
// {"queries":[{}]} batch against one server and assert the match-all
// answer never shrinks to the previous request's filtered result.
func TestFastPathBatchMatchAllAfterPredicates(t *testing.T) {
	data := workload.AutosLikeN(101, 3000, 8)
	env, err := workload.NewEnv(data, 2500, 102)
	if err != nil {
		t.Fatal(err)
	}
	iface := hiddendb.NewIface(env.Store, 40, nil)
	h := NewHandler(iface)
	srv := httptest.NewServer(h)
	defer srv.Close()

	fresh := hiddendb.NewIface(env.Store, 40, nil)
	res, err := fresh.Search(hiddendb.NewQuery())
	if err != nil {
		t.Fatal(err)
	}
	wr := h.wireResultOf(res)
	want := wireBatchResponse{K: 40, Results: []wireBatchItem{{Result: &wr}}}
	wantRaw, err := json.Marshal(want)
	if err != nil {
		t.Fatal(err)
	}
	wantRaw = append(wantRaw, '\n')

	for i := 0; i < 20; i++ {
		resp, err := http.Post(srv.URL+"/v1/search", "application/json",
			strings.NewReader(`{"queries":[{"where":["0:1","1:1"]}]}`))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()

		resp, err = http.Post(srv.URL+"/v1/search", "application/json",
			strings.NewReader(`{"queries":[{}]}`))
		if err != nil {
			t.Fatal(err)
		}
		got, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, wantRaw) {
			t.Fatalf("iteration %d: match-all batch inherited prior request's predicates\ngot  %s\nwant %s",
				i, got, wantRaw)
		}
	}
}

// TestParseSearchParamsKeyMatchesURLValues: the zero-alloc query-string
// walk must pick the same key= value url.Values.Get would — first
// occurrence wins even when empty — so budget accounting cannot differ
// by parse route for the same request.
func TestParseSearchParamsKeyMatchesURLValues(t *testing.T) {
	data := workload.AutosLikeN(111, 500, 8)
	env, err := workload.NewEnv(data, 400, 112)
	if err != nil {
		t.Fatal(err)
	}
	h := NewHandler(hiddendb.NewIface(env.Store, 10, nil))

	for _, raw := range []string{
		"key=&key=X",
		"key=X&key=",
		"key=X&key=Y",
		"key=abc",
		"where=0:1&key=tenant",
		"key",
		"",
	} {
		vals, err := url.ParseQuery(raw)
		if err != nil {
			t.Fatal(err)
		}
		want := vals.Get("key")
		sc := new(reqScratch)
		r := httptest.NewRequest(http.MethodGet, "/v1/search?"+raw, nil)
		got, err := h.parseSearchParams(r, sc)
		if err != nil {
			t.Fatalf("%q: %v", raw, err)
		}
		if got != want {
			t.Fatalf("%q: fast path key %q, url.Values.Get %q", raw, got, want)
		}
	}
}

// TestFastPathSingleflightWaitersMatchWinner releases a burst of
// concurrent identical first-queries at a fresh version and checks every
// response body is literally identical — winner and waiters serve the
// same memoized bytes — and that the burst collapsed into fewer engine
// executions than requests.
func TestFastPathSingleflightWaitersMatchWinner(t *testing.T) {
	data := workload.AutosLikeN(91, 6000, 8)
	env, err := workload.NewEnv(data, 5500, 92)
	if err != nil {
		t.Fatal(err)
	}
	iface := hiddendb.NewIface(env.Store, 50, nil)
	h := NewHandler(iface)
	srv := httptest.NewServer(h)
	defer srv.Close()

	path := "/v1/search?where=2:1" // broad single-pred query: a slow-ish intersection
	const burst = 32
	start := make(chan struct{})
	bodies := make([][]byte, burst)
	errs := make([]error, burst)
	var wg sync.WaitGroup
	for i := 0; i < burst; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			resp, err := http.Get(srv.URL + path)
			if err != nil {
				errs[i] = err
				return
			}
			defer resp.Body.Close()
			bodies[i], errs[i] = io.ReadAll(resp.Body)
		}(i)
	}
	close(start)
	wg.Wait()
	for i := range errs {
		if errs[i] != nil {
			t.Fatal(errs[i])
		}
		if !bytes.Equal(bodies[i], bodies[0]) {
			t.Fatalf("response %d diverged from winner:\n%s\nvs\n%s", i, bodies[i], bodies[0])
		}
	}
	st := iface.CacheStats()
	if st.Misses+st.Collapsed+st.Hits < burst {
		t.Fatalf("counters lost queries: %+v over %d requests", st, burst)
	}
	if st.Misses == burst {
		t.Fatalf("no dedup at all across a same-instant burst: %+v", st)
	}
}
