package estimator

import (
	"fmt"
	"testing"
	"time"

	"github.com/dynagg/dynagg/internal/agg"
	"github.com/dynagg/dynagg/internal/hiddendb"
)

// slowSession adds fixed per-query latency to a local session, standing
// in for a remote interface (network round trip) without a network. The
// sleep releases the CPU, so the workers=N/workers=1 ratio exposes the
// issuance parallelism even on a single core.
type slowSession struct {
	*hiddendb.Session
	delay time.Duration
}

func (s *slowSession) Search(q hiddendb.Query) (hiddendb.Result, error) {
	time.Sleep(s.delay)
	return s.Session.Search(q)
}

var _ hiddendb.ConcurrentSearcher = (*slowSession)(nil)
var _ Session = (*slowSession)(nil)

// BenchmarkEstimatorExec measures one RESTART round's drill-down
// issuance — the plan/execute engine's hot path — sequential vs
// concurrent, on the raw local snapshot and on a simulated 200µs-per-
// query remote. One op is one full budgeted round (G=400). Estimates are
// byte-identical across the workers sub-benchmarks; only wall-clock
// changes, so the ratio IS the issuance speedup. Recorded into
// BENCH_serving.json by `make bench-serving`.
func BenchmarkEstimatorExec(b *testing.B) {
	for _, mode := range []struct {
		name  string
		delay time.Duration
	}{
		{"local", 0},
		{"remote200us", 200 * time.Microsecond},
	} {
		for _, w := range []int{1, 4} {
			b.Run(fmt.Sprintf("%s/workers=%d", mode.name, w), func(b *testing.B) {
				b.ReportAllocs()
				te := newTestEnv(b, 11, 30000, 27000, 100)
				c := cfg(12)
				c.Parallelism = w
				e, err := NewRestart(te.env.Store.Schema(),
					[]*agg.Aggregate{agg.CountAll()}, c)
				if err != nil {
					b.Fatal(err)
				}
				newSession := func() Session { return te.iface.NewSession(400) }
				if mode.delay > 0 {
					newSession = func() Session {
						return &slowSession{Session: te.iface.NewSession(400), delay: mode.delay}
					}
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if err := e.Step(newSession()); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}
