// Package fleet multiplexes many tracked aggregates over shared query
// budgets and shared remote connections — the control-plane layer above
// internal/tracking. One Manager owns N tasks (each an estimator spec
// bound to a target: a named local interface or a remote dynagg-serve
// URL), advances them on a single scheduler loop that splits a global
// per-tick query budget by weighted fair sharing (budget.go), pools
// webiface clients by host so tasks against one remote reuse its
// rate-limiter slots (clientpool.go), checkpoints every task atomically
// under one fleet directory so a crash or restart resumes the whole
// fleet, and serves an HTTP control plane (http.go).
//
// Each task embeds a tracking.Service: the per-round stepping, view
// publication and checkpointing are exactly the standalone service's,
// driven through Service.StepBudget — which is why a fleet task's
// estimate stream is byte-identical to an equally budgeted standalone
// tracker (proven in fleet_test.go and the experiments "fleet"
// scenario).
//
// Ownership rules (the fleet extension of the repo's concurrency
// contract):
//
//   - The scheduler goroutine owns every task's Service stepping: only
//     Run/TickOnce advance estimators, one task at a time in ascending
//     task-ID order. Estimator internals never cross tasks, so the step
//     order cannot change any estimate.
//   - The control plane owns the task TABLE: add/remove/pause mutate the
//     manager's map under its mutex and take effect at the next tick
//     boundary; a task removed mid-tick is not stepped once its turn
//     comes, may finish a round already in flight, and its ID cannot be
//     re-added until that tick ends (so two services never share one
//     checkpoint file). The control plane never touches a Service
//     beyond reading its immutable View.
//   - HTTP readers only consume immutable snapshots: tracking.View per
//     task, Status assembled under a read lock.
//   - Targets are shared infrastructure: local targets must be
//     concurrent-reader-safe (hiddendb.Iface is), and each target's
//     PreTick churn hook runs exactly once per tick on the scheduler
//     goroutine — before any task steps — regardless of how many tasks
//     point at it. Pooled webiface clients are concurrent-safe by
//     construction.
package fleet

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"github.com/dynagg/dynagg/internal/hiddendb"
	"github.com/dynagg/dynagg/internal/metrics"
	"github.com/dynagg/dynagg/internal/obs"
	"github.com/dynagg/dynagg/internal/schema"
	"github.com/dynagg/dynagg/internal/tracking"
	"github.com/dynagg/dynagg/webiface"
)

// Target is a local destination tasks can point at by name.
type Target struct {
	// Schema is the target's queryable schema.
	Schema *schema.Schema
	// Source produces one budgeted session per round.
	Source tracking.SessionSource
	// PreTick, when set, applies the target's churn. The scheduler calls
	// it once per tick (numbered from 1, continuing across restarts)
	// before any task steps — never once per task, so N tasks on one
	// target see one database evolution.
	PreTick func(tick int) error
	// AnswerCacheStats, when set, reports the target interface's
	// answer-cache counters for /v1/metrics (local targets pass the
	// Iface's CacheStats method; remote targets leave it nil).
	AnswerCacheStats func() hiddendb.CacheStats
}

// Config tunes a Manager.
type Config struct {
	// TickBudget is the global query budget split across the runnable
	// tasks each tick (0 = unlimited: every task runs an unlimited — or
	// MaxBudget-capped — round; only sensible against local targets).
	TickBudget int
	// Interval is the tick cadence of Run (TickOnce ignores it).
	Interval time.Duration
	// Dir is the fleet directory: per-task checkpoints (<id>.ckpt) plus
	// the fleet state file (fleet.json, task specs + tick counter),
	// written atomically so a crash/restart resumes every task. Empty
	// disables persistence.
	Dir string
	// MaxTicks stops Run after this many ticks (0 = until cancelled).
	MaxTicks int
	// Targets are the named local targets task specs may reference.
	Targets map[string]Target
	// Client supplies the defaults for pooled remote clients.
	Client webiface.ClientOptions
}

// task binds one spec to its running service. The spec and the
// scheduler-written fields (granted, stepErr) are guarded by Manager.mu;
// the service's own state is read through its immutable View.
type task struct {
	spec    TaskSpec
	svc     *tracking.Service
	target  string // display label: "local:<name>" or "remote:<url>"
	granted int    // budget granted at the last tick that stepped it
	stepErr error
}

// Manager owns a fleet of tracking tasks.
type Manager struct {
	cfg   Config
	pool  *ClientPool
	start time.Time

	// tickHist distributes whole-tick wall time (churn hooks + every
	// stepped task); /v1/metrics exports it as dynagg_fleet_tick_seconds.
	// Per-task round time lives in each task's tracking.Service.
	tickHist obs.Histogram

	// saveMu serialises whole state-file writes: the snapshot is taken
	// and the file renamed under it, so the last completed write always
	// carries the freshest task table (control-plane mutations and the
	// scheduler may persist concurrently).
	saveMu sync.Mutex

	mu         sync.RWMutex
	tasks      map[string]*task
	ticks      int   // lifetime tick counter (restored from the state file)
	procTicks  int   // ticks completed by THIS process (readiness probes)
	tickErr    error // last PreTick error, surfaced in Status
	persistErr error // last state-file write error, surfaced in Status
	// failed holds persisted task specs that could not be restored (e.g.
	// their remote was down at startup). They keep their place in the
	// state file and their error in Status; POSTing the spec again once
	// the target recovers resumes the task from its checkpoint.
	failed map[string]failedTask
	// tickActive and draining close the remove-then-re-add race: a task
	// removed while a tick is in flight may still be mid-step, and a
	// re-Add in that window would build a second service over the SAME
	// checkpoint file — two lineages racing one rename. Remove records
	// such IDs in draining; Add refuses them until the tick ends.
	tickActive bool
	draining   map[string]bool
	// retired accumulates the process totals of removed tasks so the
	// fleet-wide counters stay monotone for Prometheus. (Re-adding a
	// removed ID resumes its checkpoint, whose lifetime wasted counter
	// re-enters the sum — a small documented over-count.)
	retiredQueries, retiredWasted, retiredRounds int
}

// failedTask is a persisted spec that could not be restored at startup.
type failedTask struct {
	spec TaskSpec
	err  error
}

// stateFile is the persisted fleet state (Config.Dir/fleet.json).
type stateFile struct {
	Ticks int        `json:"ticks"`
	Tasks []TaskSpec `json:"tasks"`
}

const stateFileName = "fleet.json"

// ErrTaskExists reports an Add with an already-registered task ID; the
// control plane maps it to HTTP 409.
var ErrTaskExists = errors.New("fleet: task already exists")

// New builds a manager. When Config.Dir holds a fleet state file from a
// previous run, every persisted task is re-added (local targets resolved
// by name against Config.Targets, remotes re-dialed through the pool)
// and resumes from its checkpoint; the tick counter continues where the
// previous process stopped. A task that cannot be restored — say its
// remote is down — does NOT take the fleet down: its spec keeps its
// place in the state file, the failure is surfaced in Status, and
// POSTing the spec again once the target recovers resumes it from its
// checkpoint.
func New(cfg Config) (*Manager, error) {
	m := &Manager{
		cfg:      cfg,
		pool:     NewClientPool(cfg.Client),
		start:    time.Now(),
		tasks:    make(map[string]*task),
		failed:   make(map[string]failedTask),
		draining: make(map[string]bool),
	}
	if cfg.Dir == "" {
		return m, nil
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("fleet: dir: %w", err)
	}
	raw, err := os.ReadFile(filepath.Join(cfg.Dir, stateFileName))
	switch {
	case errors.Is(err, os.ErrNotExist):
		return m, nil
	case err != nil:
		return nil, fmt.Errorf("fleet: state: %w", err)
	}
	var st stateFile
	if err := json.Unmarshal(raw, &st); err != nil {
		return nil, fmt.Errorf("fleet: state decode: %w", err)
	}
	m.ticks = st.Ticks
	for _, spec := range st.Tasks {
		if err := m.add(spec, false); err != nil {
			m.failed[spec.ID] = failedTask{spec: spec, err: err}
		}
	}
	return m, nil
}

// Add validates the spec, resolves its target, builds the task's
// tracking.Service (resuming from the fleet directory's checkpoint when
// one exists) and registers it. The task is stepped from the next tick.
func (m *Manager) Add(spec TaskSpec) error { return m.add(spec, true) }

func (m *Manager) add(spec TaskSpec, persist bool) error {
	if err := spec.validate(); err != nil {
		return err
	}
	m.mu.RLock()
	_, exists := m.tasks[spec.ID]
	draining := m.draining[spec.ID]
	m.mu.RUnlock()
	if exists {
		return fmt.Errorf("%w: %s", ErrTaskExists, spec.ID)
	}
	if draining {
		return fmt.Errorf("fleet: task %s is draining (removed mid-tick); retry after the current tick", spec.ID)
	}

	sch, source, label, err := m.resolveTarget(spec)
	if err != nil {
		return err
	}
	aggs, err := spec.buildAggregates()
	if err != nil {
		return err
	}
	tcfg := tracking.Config{
		Algorithm:   spec.Algorithm,
		Aggregates:  aggs,
		Budget:      spec.MaxBudget,
		Seed:        spec.Seed,
		Parallelism: spec.Parallelism,
		Pilot:       spec.Pilot,
		DeltaTarget: spec.DeltaTarget,
		MaxDrills:   spec.MaxDrills,
	}
	if m.cfg.Dir != "" {
		tcfg.CheckpointPath = m.checkpointPath(spec.ID)
		if _, err := os.Stat(tcfg.CheckpointPath); err == nil {
			// The task will RESUME from its checkpoint. The estimator RNG is
			// not serialised, and the persisted spec seed has already been
			// consumed by the previous lineage — reusing it verbatim would
			// redraw the very signatures sitting in the checkpointed pool
			// (tracking.Config.Seed: "a resumed service should use a fresh
			// seed"). Fold the lifetime tick counter in: deterministic for
			// the resume tests, fresh on every restart.
			m.mu.RLock()
			ticks := m.ticks
			m.mu.RUnlock()
			tcfg.Seed = resumeSeed(spec.Seed, ticks)
		}
	}
	svc, err := tracking.New(sch, source, tcfg)
	if err != nil {
		return err
	}

	m.mu.Lock()
	if _, exists := m.tasks[spec.ID]; exists {
		m.mu.Unlock()
		return fmt.Errorf("%w: %s", ErrTaskExists, spec.ID)
	}
	if m.draining[spec.ID] {
		m.mu.Unlock()
		return fmt.Errorf("fleet: task %s is draining (removed mid-tick); retry after the current tick", spec.ID)
	}
	m.tasks[spec.ID] = &task{spec: spec, svc: svc, target: label}
	delete(m.failed, spec.ID) // a successful (re-)add clears the restore failure
	m.mu.Unlock()
	if persist {
		m.saveState()
	}
	return nil
}

// checkpointPath is the task's checkpoint file inside the fleet dir.
func (m *Manager) checkpointPath(id string) string {
	return filepath.Join(m.cfg.Dir, id+".ckpt")
}

// resumeSeed derives the fresh estimator seed a resumed task uses: the
// spec seed mixed (SplitMix64 finalizer) with the lifetime tick counter
// at resume time, so no restart ever replays the random stream a
// previous lineage already consumed.
func resumeSeed(seed int64, ticks int) int64 {
	x := uint64(ticks) + 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return seed ^ int64(x^(x>>31))
}

// resolveTarget binds a spec to its schema and session source.
func (m *Manager) resolveTarget(spec TaskSpec) (*schema.Schema, tracking.SessionSource, string, error) {
	if spec.Remote != "" {
		c, err := m.pool.Get(spec.Remote, spec.APIKey)
		if err != nil {
			return nil, nil, "", fmt.Errorf("fleet: task %s: %w", spec.ID, err)
		}
		source := func(g int) tracking.Session { return c.NewSession(g) }
		return c.Schema(), source, "remote:" + spec.Remote, nil
	}
	name := spec.Target
	if name == "" {
		if len(m.cfg.Targets) != 1 {
			return nil, nil, "", fmt.Errorf("fleet: task %s: no target named and %d local targets configured",
				spec.ID, len(m.cfg.Targets))
		}
		for n := range m.cfg.Targets {
			name = n
		}
	}
	tgt, ok := m.cfg.Targets[name]
	if !ok {
		return nil, nil, "", fmt.Errorf("fleet: task %s: unknown target %q", spec.ID, name)
	}
	return tgt.Schema, tgt.Source, "local:" + name, nil
}

// Remove unregisters the task. Its checkpoint file stays in the fleet
// directory: re-adding the same ID later resumes the drill-down pool
// (delete the file manually to start over). A removal racing the
// scheduler may let the task finish one in-flight round first; until
// that tick ends, re-adding the same ID is refused (draining) so two
// services can never race one checkpoint file.
func (m *Manager) Remove(id string) error {
	m.mu.Lock()
	t, ok := m.tasks[id]
	if ok {
		// Fold the task's process totals into the retired accumulators so
		// the fleet-wide counters never decrease. (A round still in
		// flight checkpoints after this read; its queries land only in
		// the checkpoint, a documented slight undercount.)
		v := t.svc.CurrentView()
		m.retiredQueries += v.QueriesTotal
		m.retiredWasted += v.Wasted
		m.retiredRounds += v.Steps
		delete(m.tasks, id)
		if m.tickActive {
			m.draining[id] = true
		}
	} else if _, failed := m.failed[id]; failed {
		// Dropping a task that never restored (dead remote) is how an
		// operator retires it for good.
		delete(m.failed, id)
		ok = true
	}
	m.mu.Unlock()
	if !ok {
		return fmt.Errorf("fleet: no task %s", id)
	}
	m.saveState()
	return nil
}

// SetPaused pauses or resumes a task, effective from the next tick. A
// paused task keeps its state and checkpoint; its budget share flows to
// the runnable tasks.
func (m *Manager) SetPaused(id string, paused bool) error {
	m.mu.Lock()
	t, ok := m.tasks[id]
	if ok {
		t.spec.Paused = paused
	}
	m.mu.Unlock()
	if !ok {
		return fmt.Errorf("fleet: no task %s", id)
	}
	m.saveState()
	return nil
}

// saveState persists the fleet state file atomically (tmp + rename).
// The snapshot and the rename happen under saveMu, so concurrent savers
// (control-plane mutations vs the scheduler) cannot let an older
// snapshot win the rename. Failures are recorded for Status rather than
// returned: persistence is best-effort durability, never a reason to
// stop tracking.
func (m *Manager) saveState() {
	if m.cfg.Dir == "" {
		return
	}
	m.saveMu.Lock()
	defer m.saveMu.Unlock()
	m.mu.Lock()
	st := stateFile{Ticks: m.ticks}
	specs := make(map[string]TaskSpec, len(m.tasks)+len(m.failed))
	for id, t := range m.tasks {
		specs[id] = t.spec
	}
	for id, f := range m.failed {
		// Unrestorable tasks keep their place in the state file until the
		// operator removes them explicitly.
		specs[id] = f.spec
	}
	for _, id := range metrics.SortedKeys(specs) {
		st.Tasks = append(st.Tasks, specs[id])
	}
	m.mu.Unlock()
	err := writeFileAtomic(filepath.Join(m.cfg.Dir, stateFileName), st)
	m.mu.Lock()
	m.persistErr = err
	m.mu.Unlock()
}

func writeFileAtomic(path string, v any) error {
	raw, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), ".fleet-state-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(raw); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// idsLocked returns all task IDs in ascending order; callers hold m.mu.
func (m *Manager) idsLocked() []string { return metrics.SortedKeys(m.tasks) }

// TickOnce runs one scheduling pass on the calling goroutine: apply
// every target's churn hook, split the tick budget across the runnable
// tasks by weighted fair sharing, and step each granted task in
// ascending task-ID order through its service (estimator round +
// checkpoint + view publication). Step errors are recorded per task and
// never stop the tick. It must not be called concurrently with itself
// or Run — the scheduler goroutine owns all task stepping.
func (m *Manager) TickOnce() {
	tickStart := time.Now()
	defer func() { m.tickHist.Observe(time.Since(tickStart)) }()
	m.mu.Lock()
	m.ticks++
	m.tickActive = true
	tick := m.ticks
	var run []*task
	var claims []claim
	for _, id := range m.idsLocked() {
		t := m.tasks[id]
		if t.spec.Paused {
			continue
		}
		run = append(run, t)
		claims = append(claims, claim{id: id, weight: t.spec.Weight, cap: t.spec.MaxBudget})
	}
	m.mu.Unlock()
	// Persist the advanced tick counter BEFORE any task checkpoint can
	// record this tick's round: tick numbers then never repeat across a
	// hard mid-tick kill, so no churn hook re-fires and no task is
	// double-stepped — a task interrupted mid-round simply misses this
	// tick, as if briefly paused. (A graceful SIGINT drain finishes the
	// tick, keeping the byte-identity guarantee exact.)
	m.saveState()

	var tickErr error
	for _, name := range metrics.SortedKeys(m.cfg.Targets) {
		if pt := m.cfg.Targets[name].PreTick; pt != nil {
			if err := pt(tick); err != nil && tickErr == nil {
				tickErr = fmt.Errorf("target %s pre-tick: %w", name, err)
			}
		}
	}

	grants := allocate(m.cfg.TickBudget, claims)
	for i, t := range run {
		g := grants[i]
		m.mu.Lock()
		removed := m.tasks[claims[i].id] != t
		if !removed {
			t.granted = g
		}
		m.mu.Unlock()
		if removed {
			// Deleted (or replaced) since the tick snapshot: don't give
			// the dead lineage another round.
			continue
		}
		if m.cfg.TickBudget > 0 && g == 0 {
			// Nothing to spend this tick; the task is not stepped (a zero
			// budget would mean "unlimited" to the session).
			continue
		}
		err := t.svc.StepBudget(g)
		m.mu.Lock()
		t.stepErr = err
		m.mu.Unlock()
	}

	m.mu.Lock()
	m.tickErr = tickErr
	m.procTicks++
	m.tickActive = false
	clear(m.draining) // in-flight steps are done; re-adds are safe again
	m.mu.Unlock()
}

// Run ticks the scheduler on Config.Interval until ctx is cancelled or
// MaxTicks is reached; the first tick runs immediately.
func (m *Manager) Run(ctx context.Context) error {
	if m.cfg.Interval <= 0 {
		return errors.New("fleet: Config.Interval required for Run")
	}
	n := 0
	step := func() bool {
		m.TickOnce()
		n++
		return m.cfg.MaxTicks > 0 && n >= m.cfg.MaxTicks
	}
	if step() {
		return nil
	}
	t := time.NewTicker(m.cfg.Interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return nil
		case <-t.C:
			if step() {
				return nil
			}
		}
	}
}

// TaskStatus is one task's row in the fleet status.
type TaskStatus struct {
	ID          string        `json:"id"`
	Target      string        `json:"target"`
	Weight      int           `json:"weight"`
	Paused      bool          `json:"paused"`
	GrantedLast int           `json:"granted_last_tick"`
	LastError   string        `json:"last_error,omitempty"`
	View        tracking.View `json:"view"`
}

// FailedTaskStatus is a persisted task that could not be restored.
type FailedTaskStatus struct {
	ID    string `json:"id"`
	Error string `json:"error"`
}

// Status is the fleet-wide immutable snapshot /status serves.
type Status struct {
	Ticks         int                `json:"ticks"`
	TickBudget    int                `json:"tick_budget"`
	TaskCount     int                `json:"tasks"`
	PausedCount   int                `json:"paused_tasks"`
	PooledClients int                `json:"pooled_clients"`
	QueriesTotal  int                `json:"queries_total"`
	WastedTotal   int                `json:"wasted_queries_total"`
	RoundsTotal   int                `json:"rounds_total"`
	UptimeSeconds float64            `json:"uptime_seconds"`
	LastTickError string             `json:"last_tick_error,omitempty"`
	FailedTasks   []FailedTaskStatus `json:"failed_tasks,omitempty"`
	Tasks         []TaskStatus       `json:"task_status"`
}

// Status assembles the fleet snapshot: per-task immutable views plus
// fleet-level aggregates (queries issued this process, speculative
// waste, rounds completed).
func (m *Manager) Status() Status {
	m.mu.RLock()
	defer m.mu.RUnlock()
	st := Status{
		Ticks:         m.ticks,
		TickBudget:    m.cfg.TickBudget,
		TaskCount:     len(m.tasks),
		PooledClients: m.pool.Size(),
		QueriesTotal:  m.retiredQueries,
		WastedTotal:   m.retiredWasted,
		RoundsTotal:   m.retiredRounds,
		UptimeSeconds: time.Since(m.start).Seconds(),
		// Non-nil so an empty fleet serialises as [] rather than null —
		// /tasks clients iterate this directly.
		Tasks: []TaskStatus{},
	}
	switch {
	case m.tickErr != nil:
		st.LastTickError = m.tickErr.Error()
	case m.persistErr != nil:
		st.LastTickError = "persist: " + m.persistErr.Error()
	}
	for _, id := range metrics.SortedKeys(m.failed) {
		st.FailedTasks = append(st.FailedTasks, FailedTaskStatus{ID: id, Error: m.failed[id].err.Error()})
	}
	for _, id := range m.idsLocked() {
		ts := m.taskStatusLocked(id, m.tasks[id])
		if ts.Paused {
			st.PausedCount++
		}
		st.QueriesTotal += ts.View.QueriesTotal
		st.WastedTotal += ts.View.Wasted
		st.RoundsTotal += ts.View.Steps
		st.Tasks = append(st.Tasks, ts)
	}
	return st
}

// taskStatusLocked builds one task's status row; callers hold m.mu.
func (m *Manager) taskStatusLocked(id string, t *task) TaskStatus {
	ts := TaskStatus{
		ID:          id,
		Target:      t.target,
		Weight:      t.spec.Weight,
		Paused:      t.spec.Paused,
		GrantedLast: t.granted,
		View:        t.svc.CurrentView(),
	}
	if t.stepErr != nil {
		ts.LastError = t.stepErr.Error()
	}
	return ts
}

// taskRoundLatencies snapshots every task's per-round wall-time
// histogram, keyed by task ID, for the per-task latency families.
func (m *Manager) taskRoundLatencies() map[string]obs.HistogramSnapshot {
	m.mu.RLock()
	defer m.mu.RUnlock()
	out := make(map[string]obs.HistogramSnapshot, len(m.tasks))
	for id, t := range m.tasks {
		out[id] = t.svc.RoundLatency()
	}
	return out
}

// TaskView returns one task's current view.
func (m *Manager) TaskView(id string) (TaskStatus, bool) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	t, ok := m.tasks[id]
	if !ok {
		return TaskStatus{}, false
	}
	return m.taskStatusLocked(id, t), true
}

// Ticks returns the number of completed scheduler ticks (lifetime,
// continuing across restarts when persistence is on).
func (m *Manager) Ticks() int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.ticks
}

// ProcessTicks returns the ticks completed by this process — unlike
// Ticks it starts at 0 on every restart, so readiness probes key on
// actual scheduler progress rather than the restored lifetime counter.
func (m *Manager) ProcessTicks() int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.procTicks
}

// TaskCount returns the number of registered tasks — a cheap accessor
// for readiness probes that must not copy every task view.
func (m *Manager) TaskCount() int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return len(m.tasks)
}
