package fleet

// claim is one runnable task's demand on the tick budget. Claims are
// always presented to allocate in ascending task-ID order — that order
// is the deterministic tie-breaker for every redistribution decision.
type claim struct {
	id     string
	weight int // >= 1
	cap    int // per-round budget cap; 0 = uncapped
}

// allocate splits a global per-tick query budget across the runnable
// tasks by weighted fair sharing. Everything is deterministic in the
// claim order (ascending task ID):
//
//   - Each pass hands every task with headroom its weighted share
//     floor(remaining·w/W) of the remaining budget, clipped to its cap.
//   - Budget a capped task cannot absorb stays in the pool and the next
//     pass redistributes it over the tasks that still have headroom.
//   - When floors round everything to zero, the remainder is handed out
//     one unit at a time in task-ID order — so for any budget and weight
//     vector the same IDs always win the leftover units.
//
// total <= 0 means the fleet is unlimited: every task is granted its own
// cap (0 = unlimited round, matching tracking.Config.Budget semantics).
// With total > 0 a grant of 0 means "no queries this tick" — the
// scheduler must skip the task, not start an unlimited round.
//
// Paused tasks simply do not appear as claims, so their budget flows to
// the remaining tasks by the same rules.
func allocate(total int, claims []claim) []int {
	grants := make([]int, len(claims))
	if total <= 0 {
		for i, c := range claims {
			grants[i] = c.cap
		}
		return grants
	}
	remaining := total
	for remaining > 0 {
		// Tasks that can still absorb budget this pass.
		var active []int
		weightSum := 0
		for i, c := range claims {
			if c.cap == 0 || grants[i] < c.cap {
				active = append(active, i)
				weightSum += c.weight
			}
		}
		if len(active) == 0 {
			// Every task is at its cap; the rest of the tick budget goes
			// unused (reported by the scheduler as unallocated).
			break
		}
		passed := 0
		passTotal := remaining
		for _, i := range active {
			share := passTotal * claims[i].weight / weightSum
			if head := headroom(claims[i], grants[i]); head >= 0 && share > head {
				share = head
			}
			grants[i] += share
			remaining -= share
			passed += share
		}
		if passed == 0 {
			// Floors rounded to zero: hand out the remainder one unit at
			// a time in task-ID order.
			for _, i := range active {
				if remaining == 0 {
					break
				}
				grants[i]++
				remaining--
			}
		}
	}
	return grants
}

// headroom returns how much more the claim can absorb (-1 = unlimited).
func headroom(c claim, granted int) int {
	if c.cap == 0 {
		return -1
	}
	return c.cap - granted
}
