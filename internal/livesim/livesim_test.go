package livesim

import (
	"math/rand"
	"testing"

	"github.com/dynagg/dynagg/internal/schema"
)

func TestAmazonPromoDropsAveragePrice(t *testing.T) {
	a, err := NewAmazon(1)
	if err != nil {
		t.Fatal(err)
	}
	aggs := a.Aggregates()
	avgPrice := aggs[0]

	var prices []float64
	for round := 1; round <= a.Rounds(); round++ {
		if err := a.StepDay(round); err != nil {
			t.Fatal(err)
		}
		prices = append(prices, avgPrice.Truth(a.Env.Store))
	}
	// Promo rounds are 4 and 5 (Nov 28–29): prices must dip then recover.
	pre, promo, post := prices[2], prices[3], prices[6]
	if promo >= pre-20 {
		t.Errorf("promo did not drop price enough: %v -> %v", pre, promo)
	}
	if post <= promo+20 {
		t.Errorf("price did not recover: promo %v, post %v", promo, post)
	}
	if prices[3] >= prices[2] || prices[4] >= prices[2] {
		t.Errorf("promo days not lower: %v", prices)
	}
}

func TestAmazonProportionsStayFlat(t *testing.T) {
	a, err := NewAmazon(2)
	if err != nil {
		t.Fatal(err)
	}
	aggs := a.Aggregates()
	men, wrist := aggs[1], aggs[2]
	m0 := men.Truth(a.Env.Store)
	w0 := wrist.Truth(a.Env.Store)
	for round := 1; round <= a.Rounds(); round++ {
		if err := a.StepDay(round); err != nil {
			t.Fatal(err)
		}
		m := men.Truth(a.Env.Store)
		w := wrist.Truth(a.Env.Store)
		if m < m0-0.05 || m > m0+0.05 {
			t.Errorf("round %d: %%men moved too much: %v vs %v", round, m, m0)
		}
		if w < w0-0.05 || w > w0+0.05 {
			t.Errorf("round %d: %%wrist moved too much: %v vs %v", round, w, w0)
		}
	}
}

func TestAmazonRoundBounds(t *testing.T) {
	a, err := NewAmazon(3)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.StepDay(0); err == nil {
		t.Error("round 0 accepted")
	}
	if err := a.StepDay(len(AmazonDays) + 1); err == nil {
		t.Error("round beyond schedule accepted")
	}
	if a.Interface().K() != 100 {
		t.Errorf("amazon k = %d", a.Interface().K())
	}
}

func TestEBayFixAboveBid(t *testing.T) {
	e, err := NewEBay(4)
	if err != nil {
		t.Fatal(err)
	}
	fix, bid := e.FixAggregate(), e.BidAggregate()
	for round := 1; round <= e.Rounds(); round++ {
		if err := e.StepHour(round); err != nil {
			t.Fatal(err)
		}
		f, b := fix.Truth(e.Env.Store), bid.Truth(e.Env.Store)
		if f <= 1.5*b {
			t.Errorf("round %d: FIX avg %v not well above BID avg %v", round, f, b)
		}
	}
}

func TestEBayBidChurnsFasterThanFix(t *testing.T) {
	e, err := NewEBay(5)
	if err != nil {
		t.Fatal(err)
	}
	// Count surviving IDs per class across the run.
	fixIDs := make(map[uint64]bool)
	bidIDs := make(map[uint64]bool)
	e.Env.Store.ForEach(func(t *schema.Tuple) {
		if t.Vals[ebType] == 0 {
			fixIDs[t.ID] = true
		} else {
			bidIDs[t.ID] = true
		}
	})
	for round := 1; round <= e.Rounds(); round++ {
		if err := e.StepHour(round); err != nil {
			t.Fatal(err)
		}
	}
	surviving := func(ids map[uint64]bool) float64 {
		alive := 0
		for id := range ids {
			if e.Env.Store.Get(id) != nil {
				alive++
			}
		}
		return float64(alive) / float64(len(ids))
	}
	fs, bs := surviving(fixIDs), surviving(bidIDs)
	if bs >= fs {
		t.Errorf("BID survival %v not below FIX survival %v", bs, fs)
	}
}

func TestEBayBidPricesClimb(t *testing.T) {
	e, err := NewEBay(6)
	if err != nil {
		t.Fatal(err)
	}
	bid := e.BidAggregate()
	start := bid.Truth(e.Env.Store)
	for round := 1; round <= e.Rounds(); round++ {
		if err := e.StepHour(round); err != nil {
			t.Fatal(err)
		}
	}
	end := bid.Truth(e.Env.Store)
	if end <= start {
		t.Errorf("bid snapshots did not climb: %v -> %v", start, end)
	}
}

func TestEBayRoundBounds(t *testing.T) {
	e, err := NewEBay(7)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.StepHour(0); err == nil {
		t.Error("round 0 accepted")
	}
	if err := e.StepHour(99); err == nil {
		t.Error("round 99 accepted")
	}
}

func TestPickRespectsWeights(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	counts := make([]int, 3)
	for i := 0; i < 10000; i++ {
		counts[pick(rng, []float64{0.7, 0.2, 0.1})]++
	}
	if counts[0] < 6500 || counts[0] > 7500 {
		t.Errorf("weight 0.7 produced %d/10000", counts[0])
	}
	if counts[2] > counts[1] {
		t.Errorf("weights inverted: %v", counts)
	}
}
