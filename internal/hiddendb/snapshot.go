package hiddendb

import (
	"container/heap"
	"sort"
	"sync"
	"sync/atomic"

	"github.com/dynagg/dynagg/internal/schema"
)

// Snapshot is one immutable, fully consistent version of a Store: the
// sorted tuple slice plus per-(attribute, value) inverted posting lists.
// A snapshot never changes after publication — the Store copy-on-writes
// every slice and map a snapshot references before mutating it — so any
// number of goroutines may answer queries against one snapshot while the
// harness prepares the next round's updates.
//
// Query answering picks between three strategies by estimated cost:
//
//   - prefix: canonical-prefix binary search to a contiguous tuple range;
//   - postings: iterate the smallest materialised posting list among the
//     query's predicates and filter the remaining predicates;
//   - scan: the full O(n) pass (the only option the pre-snapshot engine
//     had for non-prefix queries).
//
// All three return byte-identical Results: the top-k set under the strict
// (score desc, ID asc) order is independent of iteration order, which the
// equivalence tests in snapshot_test.go verify exhaustively.
type Snapshot struct {
	sch            *schema.Schema
	tuples         []*schema.Tuple // canonical (Vals, ID) order
	attrs          []snapAttr      // one per schema attribute
	broadMatchNull bool
	version        uint64
}

// snapAttr holds one attribute's posting lists. Store-maintained
// attributes carry their (immutable, ID-sorted) lists directly; inactive
// attributes get a lazyIndex that is built on first demand by whichever
// reader needs it, and whose demand flag tells the Store to start
// maintaining that attribute incrementally from the next version on.
type snapAttr struct {
	lists map[uint16][]*schema.Tuple
	lazy  *lazyIndex
}

// lazyIndex builds an attribute's posting lists on first use, once,
// shared by all readers of the snapshot. Lazily built lists are in
// canonical tuple order (build order), not ID order — answering is
// order-insensitive, only the Store's incrementally maintained lists need
// the ID-sort invariant.
type lazyIndex struct {
	once     sync.Once
	built    atomic.Pointer[map[uint16][]*schema.Tuple]
	demanded atomic.Bool
}

// build scans the snapshot's tuples once and materialises every value's
// posting list for the attribute.
func (li *lazyIndex) build(attr int, tuples []*schema.Tuple) map[uint16][]*schema.Tuple {
	li.demanded.Store(true)
	li.once.Do(func() {
		m := make(map[uint16][]*schema.Tuple)
		for _, t := range tuples {
			v := t.Vals[attr]
			m[v] = append(m[v], t)
		}
		li.built.Store(&m)
	})
	return *li.built.Load()
}

// loaded returns the lists if already built, without triggering a build.
func (li *lazyIndex) loaded() map[uint16][]*schema.Tuple {
	if p := li.built.Load(); p != nil {
		return *p
	}
	return nil
}

// Version returns the store version this snapshot was taken at.
func (s *Snapshot) Version() uint64 { return s.version }

// Size returns the number of tuples frozen in the snapshot, |D|.
func (s *Snapshot) Size() int { return len(s.tuples) }

// Schema returns the snapshot's schema.
func (s *Snapshot) Schema() *schema.Schema { return s.sch }

// BroadMatchNull reports the NULL policy frozen into the snapshot.
func (s *Snapshot) BroadMatchNull() bool { return s.broadMatchNull }

// ForEach visits every tuple in canonical order.
func (s *Snapshot) ForEach(fn func(*schema.Tuple)) {
	for _, t := range s.tuples {
		fn(t)
	}
}

// CountMatching returns |Sel(q)| exactly — ground truth only, never
// exposed through the restricted interface.
func (s *Snapshot) CountMatching(q Query) int {
	n := 0
	s.forEachMatching(q, strategyAuto, func(*schema.Tuple) { n++ })
	return n
}

// strategy selects how forEachMatching enumerates candidates. Tests force
// each strategy explicitly to prove they answer identically.
type strategy int

const (
	strategyAuto strategy = iota
	strategyScan
	strategyPrefix
	strategyPostings
)

// prefixRange locates the contiguous slice of tuples matching the query's
// canonical-order prefix of length pl (pl ≥ 1, no broad-match NULLs).
func (s *Snapshot) prefixRange(q Query, pl int) (lo, hi int) {
	prefix := make([]uint16, pl)
	for i := 0; i < pl; i++ {
		prefix[i] = q.preds[i].Val
	}
	lo = sort.Search(len(s.tuples), func(i int) bool {
		return schema.CompareVals(s.tuples[i].Vals[:pl], prefix) >= 0
	})
	hi = sort.Search(len(s.tuples), func(i int) bool {
		return schema.CompareVals(s.tuples[i].Vals[:pl], prefix) > 0
	})
	return lo, hi
}

// candidateLists returns the posting lists covering predicate p, or
// ok=false when the attribute's index is not materialised yet. Under
// broad-match NULL semantics a tuple with NULL in p.Attr also matches, so
// the NULL list joins the candidate set for nullable attributes.
func (s *Snapshot) candidateLists(p Pred) (lists [][]*schema.Tuple, size int, ok bool) {
	sa := &s.attrs[p.Attr]
	m := sa.lists
	if m == nil {
		if sa.lazy == nil {
			return nil, 0, false
		}
		if m = sa.lazy.loaded(); m == nil {
			return nil, 0, false
		}
	}
	if l := m[p.Val]; len(l) > 0 {
		lists = append(lists, l)
		size += len(l)
	}
	if s.broadMatchNull && p.Val != schema.NullCode && s.sch.Attr(p.Attr).Nullable {
		if l := m[schema.NullCode]; len(l) > 0 {
			lists = append(lists, l)
			size += len(l)
		}
	}
	return lists, size, true
}

// materialise builds the lazy index for p's attribute and returns its
// candidate lists. ok=false on ephemeral snapshots, which carry no lazy
// builders (they answer exactly one query and are never shared).
func (s *Snapshot) materialise(p Pred) (lists [][]*schema.Tuple, size int, ok bool) {
	sa := &s.attrs[p.Attr]
	if sa.lists == nil {
		if sa.lazy == nil {
			return nil, 0, false
		}
		sa.lazy.build(p.Attr, s.tuples)
	}
	return s.candidateLists(p)
}

// forEachMatching yields every tuple matching q, choosing the cheapest
// available access path (or the forced one). The set of visited tuples is
// identical for every strategy; only the visit order may differ.
func (s *Snapshot) forEachMatching(q Query, strat strategy, fn func(*schema.Tuple)) {
	if len(q.preds) == 0 {
		for _, t := range s.tuples {
			fn(t)
		}
		return
	}
	n := len(s.tuples)

	// Prefix range (unusable under broad-match NULLs: a NULL tuple may
	// match a prefix predicate yet sort outside the value's range).
	pl := 0
	lo, hi := 0, n
	if !s.broadMatchNull {
		pl = q.prefixLen()
		if pl > 0 {
			lo, hi = s.prefixRange(q, pl)
		}
	}

	scanRange := func() {
		rest := Query{preds: q.preds[pl:]}
		for _, t := range s.tuples[lo:hi] {
			if len(rest.preds) == 0 || rest.Matches(t, s.broadMatchNull) {
				fn(t)
			}
		}
	}
	scanLists := func(lists [][]*schema.Tuple) {
		for _, l := range lists {
			for _, t := range l {
				if q.Matches(t, s.broadMatchNull) {
					fn(t)
				}
			}
		}
	}

	switch strat {
	case strategyScan:
		pl, lo, hi = 0, 0, n
		scanRange()
		return
	case strategyPrefix:
		scanRange()
		return
	case strategyPostings:
		// Build every predicate's index, then take the smallest.
		best, bestSize := [][]*schema.Tuple(nil), -1
		for _, p := range q.preds {
			lists, size, ok := s.materialise(p)
			if ok && (bestSize < 0 || size < bestSize) {
				best, bestSize = lists, size
			}
		}
		if bestSize < 0 { // ephemeral snapshot: no indexes to force
			pl, lo, hi = 0, 0, n
			scanRange()
			return
		}
		scanLists(best)
		return
	}

	// strategyAuto: smallest-list-first among materialised predicates,
	// against the prefix range (or full scan) cost.
	best, bestSize := [][]*schema.Tuple(nil), -1
	for _, p := range q.preds {
		if lists, size, ok := s.candidateLists(p); ok && (bestSize < 0 || size < bestSize) {
			best, bestSize = lists, size
		}
	}
	if bestSize < 0 && hi-lo == n {
		// No materialised index and no prefix pruning: this query would
		// pay a full scan. Invest that same O(n) in building the first
		// predicate's index instead — every later query over the
		// attribute rides the posting lists, and the demand flag tells
		// the Store to maintain the index incrementally from the next
		// version on.
		if lists, size, ok := s.materialise(q.preds[0]); ok {
			best, bestSize = lists, size
		}
	}
	if bestSize >= 0 && bestSize < hi-lo {
		scanLists(best)
		return
	}
	scanRange()
}

// Answer computes the top-k result for q under the given scorer. It is
// the query engine behind Iface.Search; callers that bypass Iface (the
// serving benchmarks) must pass a deterministic scorer for reproducible
// results.
func (s *Snapshot) Answer(q Query, k int, scorer Scorer) Result {
	return s.answerWith(q, k, scorer, strategyAuto)
}

// answerWith is Answer with a forced access path (tests only).
func (s *Snapshot) answerWith(q Query, k int, scorer Scorer, strat strategy) Result {
	h := &tupleHeap{}
	matches := 0
	s.forEachMatching(q, strat, func(t *schema.Tuple) {
		matches++
		sc := scorer(t)
		if h.Len() < k {
			heap.Push(h, scored{t: t, s: sc})
			return
		}
		// Replace the current worst if strictly better.
		if sc > h.scores[0] || (sc == h.scores[0] && t.ID < h.items[0].ID) {
			h.items[0], h.scores[0] = t, sc
			heap.Fix(h, 0)
		}
	})
	res := Result{Overflow: matches > k}
	res.Tuples = make([]*schema.Tuple, h.Len())
	scs := make([]float64, h.Len())
	copy(res.Tuples, h.items)
	copy(scs, h.scores)
	// Rank best-first, deterministic.
	sort.Sort(&rankSort{tuples: res.Tuples, scores: scs})
	return res
}

// tupleHeap is a min-heap by (score, ID) keeping the best k tuples seen.
type tupleHeap struct {
	items  []*schema.Tuple
	scores []float64
}

func (h *tupleHeap) Len() int { return len(h.items) }
func (h *tupleHeap) Less(i, j int) bool {
	if h.scores[i] != h.scores[j] {
		return h.scores[i] < h.scores[j]
	}
	return h.items[i].ID > h.items[j].ID // worse = larger ID on ties
}
func (h *tupleHeap) Swap(i, j int) {
	h.items[i], h.items[j] = h.items[j], h.items[i]
	h.scores[i], h.scores[j] = h.scores[j], h.scores[i]
}
func (h *tupleHeap) Push(x any) {
	p := x.(scored)
	h.items = append(h.items, p.t)
	h.scores = append(h.scores, p.s)
}
func (h *tupleHeap) Pop() any {
	n := len(h.items) - 1
	p := scored{t: h.items[n], s: h.scores[n]}
	h.items = h.items[:n]
	h.scores = h.scores[:n]
	return p
}

type scored struct {
	t *schema.Tuple
	s float64
}

type rankSort struct {
	tuples []*schema.Tuple
	scores []float64
}

func (r *rankSort) Len() int { return len(r.tuples) }
func (r *rankSort) Less(i, j int) bool {
	if r.scores[i] != r.scores[j] {
		return r.scores[i] > r.scores[j]
	}
	return r.tuples[i].ID < r.tuples[j].ID
}
func (r *rankSort) Swap(i, j int) {
	r.tuples[i], r.tuples[j] = r.tuples[j], r.tuples[i]
	r.scores[i], r.scores[j] = r.scores[j], r.scores[i]
}
