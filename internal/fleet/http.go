package fleet

import (
	"encoding/json"
	"errors"
	"net/http"
	"sort"

	"github.com/dynagg/dynagg/internal/httpapi"
	"github.com/dynagg/dynagg/internal/metrics"
	"github.com/dynagg/dynagg/internal/obs"
)

// Handler exposes the fleet control plane, mounted under the current API
// version (the deprecated unversioned aliases were removed; legacy
// paths get the 404 envelope):
//
//	GET    /v1/status              → fleet Status (ticks, budgets, per-task rows)
//	GET    /v1/healthz             → 200 once a tick completed, 503 before;
//	                                 reports "api_version"
//	GET    /v1/metrics             → Prometheus-style plaintext
//	GET    /v1/tasks               → all TaskStatus rows
//	POST   /v1/tasks               → add a task (TaskSpec JSON body)
//	GET    /v1/tasks/{id}          → one TaskStatus
//	DELETE /v1/tasks/{id}          → remove the task (checkpoint retained)
//	POST   /v1/tasks/{id}/pause    → pause from the next tick
//	POST   /v1/tasks/{id}/resume   → resume from the next tick
//	GET    /v1/tasks/{id}/estimates→ the task's current estimates array
//
// Errors use the shared httpapi JSON envelope. Mutations only touch the
// task table (manager mutex) and take effect at the next tick boundary;
// reads serve immutable views and never block the scheduler.
func (m *Manager) Handler() http.Handler {
	mux := http.NewServeMux()
	handle := func(method, pattern string, h http.HandlerFunc) {
		// Versioned routes only: the deprecated unversioned aliases
		// were removed after their one-release grace period, so legacy
		// paths fall through to the 404 envelope.
		mux.HandleFunc(method+" /"+httpapi.Version+pattern, h)
	}
	handle("GET", "/status", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, m.Status())
	})
	handle("GET", "/healthz", func(w http.ResponseWriter, r *http.Request) {
		// Readiness probes fire often: answer from cheap counters instead
		// of assembling the full per-task Status — and key on ticks THIS
		// process completed, so a freshly restarted fleet (whose restored
		// lifetime counter is already high) only reports ready once its
		// own scheduler has actually advanced.
		ticks := m.ProcessTicks()
		code := http.StatusOK
		if ticks == 0 {
			code = http.StatusServiceUnavailable
		}
		writeJSON(w, code, map[string]any{
			"ticks_this_process": ticks,
			"ticks":              m.Ticks(),
			"tasks":              m.TaskCount(),
			"api_version":        httpapi.Version,
		})
	})
	handle("GET", "/metrics", func(w http.ResponseWriter, r *http.Request) {
		m.serveMetrics(w)
	})
	handle("GET", "/tasks", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, m.Status().Tasks)
	})
	handle("POST", "/tasks", func(w http.ResponseWriter, r *http.Request) {
		var spec TaskSpec
		if err := json.NewDecoder(r.Body).Decode(&spec); err != nil {
			httpapi.WriteError(w, http.StatusBadRequest, httpapi.CodeBadRequest, "decode task spec: "+err.Error())
			return
		}
		if err := m.Add(spec); err != nil {
			code := http.StatusBadRequest
			if errors.Is(err, ErrTaskExists) {
				code = http.StatusConflict
			}
			httpapi.WriteError(w, code, httpapi.CodeBadRequest, err.Error())
			return
		}
		ts, _ := m.TaskView(spec.ID)
		writeJSON(w, http.StatusCreated, ts)
	})
	handle("GET", "/tasks/{id}", func(w http.ResponseWriter, r *http.Request) {
		ts, ok := m.TaskView(r.PathValue("id"))
		if !ok {
			httpapi.WriteError(w, http.StatusNotFound, httpapi.CodeNotFound, "no such task")
			return
		}
		writeJSON(w, http.StatusOK, ts)
	})
	handle("DELETE", "/tasks/{id}", func(w http.ResponseWriter, r *http.Request) {
		if err := m.Remove(r.PathValue("id")); err != nil {
			httpapi.WriteError(w, http.StatusNotFound, httpapi.CodeNotFound, err.Error())
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{"removed": r.PathValue("id")})
	})
	setPaused := func(paused bool) http.HandlerFunc {
		return func(w http.ResponseWriter, r *http.Request) {
			id := r.PathValue("id")
			if err := m.SetPaused(id, paused); err != nil {
				httpapi.WriteError(w, http.StatusNotFound, httpapi.CodeNotFound, err.Error())
				return
			}
			ts, _ := m.TaskView(id)
			writeJSON(w, http.StatusOK, ts)
		}
	}
	handle("POST", "/tasks/{id}/pause", setPaused(true))
	handle("POST", "/tasks/{id}/resume", setPaused(false))
	handle("GET", "/tasks/{id}/estimates", func(w http.ResponseWriter, r *http.Request) {
		ts, ok := m.TaskView(r.PathValue("id"))
		if !ok {
			httpapi.WriteError(w, http.StatusNotFound, httpapi.CodeNotFound, "no such task")
			return
		}
		writeJSON(w, http.StatusOK, ts.View.Estimates)
	})
	return mux
}

// serveMetrics renders the fleet snapshot as Prometheus plaintext,
// fleet-level families first, then per-task samples labelled by task ID
// (tasks are already in ascending-ID order).
func (m *Manager) serveMetrics(w http.ResponseWriter) {
	st := m.Status()
	var b metrics.Builder
	b.Family("dynagg_fleet_ticks_total", "counter", "Scheduler ticks completed (lifetime, survives restart).")
	b.Int("dynagg_fleet_ticks_total", st.Ticks)
	b.Family("dynagg_fleet_tick_budget", "gauge", "Global per-tick query budget (0 = unlimited).")
	b.Int("dynagg_fleet_tick_budget", st.TickBudget)
	b.Family("dynagg_fleet_tasks", "gauge", "Registered tasks.")
	b.Int("dynagg_fleet_tasks", st.TaskCount)
	b.Family("dynagg_fleet_tasks_paused", "gauge", "Paused tasks.")
	b.Int("dynagg_fleet_tasks_paused", st.PausedCount)
	b.Family("dynagg_fleet_pooled_clients", "gauge", "Distinct pooled remote clients.")
	b.Int("dynagg_fleet_pooled_clients", st.PooledClients)
	b.Family("dynagg_fleet_queries_total", "counter", "Queries issued by this process across all tasks.")
	b.Int("dynagg_fleet_queries_total", st.QueriesTotal)
	b.Family("dynagg_fleet_wasted_queries_total", "counter", "Speculatively issued queries never applied, across all tasks.")
	b.Int("dynagg_fleet_wasted_queries_total", st.WastedTotal)
	b.Family("dynagg_fleet_rounds_total", "counter", "Task rounds completed by this process.")
	b.Int("dynagg_fleet_rounds_total", st.RoundsTotal)
	b.Family("dynagg_fleet_tick_seconds", "histogram", "Whole-tick wall time: churn hooks plus every stepped task.")
	tick := m.tickHist.Snapshot()
	b.Histogram("dynagg_fleet_tick_seconds", obs.Bounds(), tick.Counts, tick.SumSeconds)
	b.Family("dynagg_fleet_task_round_seconds", "histogram", "Per-round wall time per task (step + checkpoint).")
	lats := m.taskRoundLatencies()
	for _, id := range metrics.SortedKeys(lats) {
		s := lats[id]
		b.Histogram("dynagg_fleet_task_round_seconds", obs.Bounds(), s.Counts, s.SumSeconds, "task", id)
	}

	b.Family("dynagg_fleet_task_round", "gauge", "Estimator round per task (lifetime).")
	for _, t := range st.Tasks {
		b.Int("dynagg_fleet_task_round", t.View.Round, "task", t.ID)
	}
	b.Family("dynagg_fleet_task_queries_total", "counter", "Queries issued per task by this process.")
	for _, t := range st.Tasks {
		b.Int("dynagg_fleet_task_queries_total", t.View.QueriesTotal, "task", t.ID)
	}
	b.Family("dynagg_fleet_task_wasted_queries_total", "counter", "Speculative waste per task (estimator lifetime).")
	for _, t := range st.Tasks {
		b.Int("dynagg_fleet_task_wasted_queries_total", t.View.Wasted, "task", t.ID)
	}
	b.Family("dynagg_fleet_task_budget_granted", "gauge", "Budget granted at the task's last scheduled tick.")
	for _, t := range st.Tasks {
		b.Int("dynagg_fleet_task_budget_granted", t.GrantedLast, "task", t.ID)
	}
	b.Family("dynagg_fleet_task_estimate", "gauge", "Current estimate per task and aggregate.")
	for _, t := range st.Tasks {
		for _, e := range t.View.Estimates {
			if e.OK {
				b.Value("dynagg_fleet_task_estimate", e.Value, "task", t.ID, "aggregate", e.Aggregate)
			}
		}
	}

	// Answer-cache counters per local target (remote targets have no
	// hook — their cache is scraped on the serving side). Target names
	// are emitted in sorted order so scrapes are diffable.
	names := make([]string, 0, len(m.cfg.Targets))
	for name, tgt := range m.cfg.Targets {
		if tgt.AnswerCacheStats != nil {
			names = append(names, name)
		}
	}
	if len(names) > 0 {
		sort.Strings(names)
		b.Family("dynagg_fleet_target_answer_cache_hits_total", "counter", "Answer-cache hits per local target interface.")
		for _, name := range names {
			b.Value("dynagg_fleet_target_answer_cache_hits_total", float64(m.cfg.Targets[name].AnswerCacheStats().Hits), "target", name)
		}
		b.Family("dynagg_fleet_target_answer_cache_misses_total", "counter", "Answer-cache misses (engine executions) per local target interface.")
		for _, name := range names {
			b.Value("dynagg_fleet_target_answer_cache_misses_total", float64(m.cfg.Targets[name].AnswerCacheStats().Misses), "target", name)
		}
		b.Family("dynagg_fleet_target_answer_cache_collapsed_total", "counter", "Singleflight-collapsed queries per local target interface.")
		for _, name := range names {
			b.Value("dynagg_fleet_target_answer_cache_collapsed_total", float64(m.cfg.Targets[name].AnswerCacheStats().Collapsed), "target", name)
		}
	}
	w.Header().Set("Content-Type", metrics.ContentType)
	_, _ = b.WriteTo(w)
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}
