// Package tracking turns the estimators into a long-running production
// service: a Service attaches one estimator to a live hidden database —
// a local store churned by its owner, or a remote dynagg-serve URL
// reached through webiface — advances it one budgeted round per tick,
// checkpoints its state through the estimator/persist snapshots so a
// crash (or a deliberate restart) resumes the drill-down pool instead of
// rebuilding it, and publishes current estimates and round statistics
// over HTTP (see http.go).
//
// This is the paper's §6 online-experiment setting run as a first-class
// workload instead of a simulation artifact: the tracker that followed
// Amazon and eBay for weeks is exactly a Service with a daily Interval.
//
// Concurrency: the estimator inside a Service stays single-goroutine —
// only one stepping goroutine at a time advances it: the service's own
// Run loop, a StepOnce/StepBudget caller, or a fleet scheduler
// (internal/fleet) that owns the service as one of its tasks — never two
// of these at once. The estimator's own execution engine fans the
// round's drill-down walks out over Config.Parallelism goroutines
// internally. HTTP readers never touch the estimator: each round
// publishes an immutable view under the service mutex.
package tracking

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"time"

	"github.com/dynagg/dynagg/internal/agg"
	"github.com/dynagg/dynagg/internal/estimator"
	"github.com/dynagg/dynagg/internal/hiddendb"
	"github.com/dynagg/dynagg/internal/obs"
	"github.com/dynagg/dynagg/internal/schema"
)

// Session is the budgeted per-round query capability a tracked estimator
// consumes (re-exported so callers need not import internal/estimator).
type Session = estimator.Session

// SessionSource produces one budgeted session per round. Both
// (*hiddendb.Iface).NewSession and (*webiface.Client).NewSession fit
// after wrapping their concrete return in the interface.
type SessionSource func(budget int) Session

// Config tunes a Service.
type Config struct {
	// Algorithm picks the estimator: RESTART, REISSUE or RS (default).
	Algorithm string
	// Aggregates are the tracked aggregate specs (required). On resume
	// they must match the checkpoint (same count and order).
	Aggregates []*agg.Aggregate
	// Budget is the per-round query limit G (0 = unlimited; only
	// sensible against a local simulation).
	Budget int
	// Interval is the round cadence of Run (required for Run; StepOnce
	// ignores it).
	Interval time.Duration
	// Seed drives the estimator's randomness. A resumed service should
	// use a fresh seed: signatures already drawn live in the checkpoint.
	Seed int64
	// Parallelism is the estimator execution engine's worker bound
	// (0 = DYNAGG_ESTIMATOR_WORKERS / sequential).
	Parallelism int
	// Pilot overrides RS's bootstrap parameter ϖ (0 = default).
	Pilot int
	// DeltaTarget makes RS optimise the trans-round delta.
	DeltaTarget bool
	// MaxDrills bounds the drill-down pool (0 = unlimited). Long-running
	// services should set it: the pool otherwise grows with lifetime.
	MaxDrills int
	// CheckpointPath, when set, is written atomically after every round
	// and loaded on New, so a restarted service resumes mid-stream.
	CheckpointPath string
	// MaxRounds stops Run after this many rounds (0 = run until the
	// context is cancelled).
	MaxRounds int
	// PreRound, when set, runs before each round's Step — the hook a
	// local simulation uses to apply churn (round is the upcoming
	// estimator round, numbered from 1). A remote service leaves it nil:
	// the real database changes on its own.
	PreRound func(round int) error
	// AnswerCacheStats, when set, reports the backing interface's
	// answer-cache counters for /v1/metrics (a local simulation passes
	// the Iface's CacheStats method; remote trackers leave it nil — the
	// cache lives server-side and is scraped there).
	AnswerCacheStats func() hiddendb.CacheStats
}

// Service continuously tracks aggregates over a live hidden database.
type Service struct {
	cfg    Config
	source SessionSource
	start  time.Time

	// totalQueries accumulates session usage across this process's steps.
	// Owned by the stepping goroutine; readers see the copy in the view.
	totalQueries int

	// roundHist distributes per-round wall time (churn + estimator step +
	// checkpoint); /v1/metrics exports it as dynagg_track_round_seconds.
	roundHist obs.Histogram

	mu      sync.RWMutex
	est     estimator.Estimator // guarded: Step on the run goroutine, reads via view
	view    View
	stepErr error
}

// View is the immutable per-round publication HTTP readers consume.
type View struct {
	Algorithm string `json:"algorithm"`
	Round     int    `json:"round"`
	// Budget is the query budget granted to the last executed round
	// (Config.Budget before any step). Under a fleet scheduler it is the
	// task's weighted-fair share of the tick budget, which may vary.
	Budget   int `json:"budget"`
	UsedLast int `json:"used_last_round"`
	// QueriesTotal is the cumulative session usage of this process (a
	// resumed service restarts it at 0; Round keeps lifetime continuity).
	QueriesTotal int `json:"queries_total"`
	// Wasted is the estimator's lifetime count of speculatively issued
	// queries whose walks were never applied — the price of concurrent
	// issuance on rounds that abort (persisted with the checkpoint).
	Wasted   int       `json:"wasted_queries"`
	Drills   int       `json:"drill_downs"`
	Steps    int       `json:"steps_this_process"`
	Resumed  bool      `json:"resumed"`
	LastStep time.Time `json:"last_step"`
	// LastRoundMs is the wall time of the last executed round — churn
	// hook, estimator step and checkpoint write included (0 before the
	// first step of this process).
	LastRoundMs float64          `json:"last_round_ms"`
	LastError   string           `json:"last_error,omitempty"`
	Estimates   []EstimateStatus `json:"estimates"`
}

// EstimateStatus is one aggregate's current estimate.
type EstimateStatus struct {
	Aggregate string         `json:"aggregate"`
	OK        bool           `json:"ok"`
	Value     float64        `json:"value"`
	Variance  float64        `json:"variance"`
	Drills    int            `json:"drills"`
	Delta     *EstimateDelta `json:"delta,omitempty"`
}

// EstimateDelta is the trans-round estimate Q(D_j) − Q(D_{j-1}).
type EstimateDelta struct {
	Value    float64 `json:"value"`
	Variance float64 `json:"variance"`
}

// New builds a service over the given schema and session source. When
// Config.CheckpointPath names an existing file, the estimator state is
// resumed from it (the aggregate list must match the checkpoint);
// otherwise a fresh estimator starts at round 0.
func New(sch *schema.Schema, source SessionSource, cfg Config) (*Service, error) {
	if sch == nil || source == nil {
		return nil, errors.New("tracking: schema and session source required")
	}
	if len(cfg.Aggregates) == 0 {
		return nil, errors.New("tracking: at least one aggregate required")
	}
	ecfg := estimator.Config{
		Rand:        rand.New(rand.NewSource(cfg.Seed)),
		Pilot:       cfg.Pilot,
		MaxDrills:   cfg.MaxDrills,
		Parallelism: cfg.Parallelism,
	}
	var est estimator.Estimator
	resumed := false
	if cfg.CheckpointPath != "" {
		f, err := os.Open(cfg.CheckpointPath)
		switch {
		case err == nil:
			est, err = estimator.Load(f, sch, cfg.Aggregates, ecfg)
			f.Close()
			if err != nil {
				return nil, fmt.Errorf("tracking: resume %s: %w", cfg.CheckpointPath, err)
			}
			resumed = true
		case !os.IsNotExist(err):
			return nil, fmt.Errorf("tracking: checkpoint: %w", err)
		}
	}
	if est == nil {
		var err error
		switch algo := cfg.Algorithm; algo {
		case "RESTART":
			est, err = estimator.NewRestart(sch, cfg.Aggregates, ecfg)
		case "REISSUE":
			est, err = estimator.NewReissue(sch, cfg.Aggregates, ecfg)
		case "RS", "":
			var opts []estimator.RSOption
			if cfg.DeltaTarget {
				opts = append(opts, estimator.WithDeltaTarget())
			}
			est, err = estimator.NewRS(sch, cfg.Aggregates, ecfg, opts...)
		default:
			err = fmt.Errorf("tracking: unknown algorithm %q", algo)
		}
		if err != nil {
			return nil, err
		}
	}
	s := &Service{cfg: cfg, source: source, est: est, start: time.Now()}
	s.view = s.buildView(cfg.Budget, resumed, 0, nil)
	return s, nil
}

// RoundLatency snapshots the per-round wall-time histogram — the data
// behind the dynagg_track_round_seconds family (and the fleet daemon's
// per-task equivalent).
func (s *Service) RoundLatency() obs.HistogramSnapshot { return s.roundHist.Snapshot() }

// Resumed reports whether New loaded estimator state from a checkpoint.
func (s *Service) Resumed() bool { return s.CurrentView().Resumed }

// CurrentView returns the latest published round view.
func (s *Service) CurrentView() View {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.view
}

// buildView snapshots the estimator into an immutable View. Callers must
// hold no lock; the estimator must be quiescent (New, or the stepping
// goroutine between steps).
func (s *Service) buildView(budget int, resumed bool, steps int, stepErr error) View {
	v := View{
		Algorithm:    s.est.Name(),
		Round:        s.est.Round(),
		Budget:       budget,
		UsedLast:     s.est.UsedLastRound(),
		QueriesTotal: s.totalQueries,
		Wasted:       s.est.WastedQueries(),
		Drills:       s.est.DrillDowns(),
		Steps:        steps,
		Resumed:      resumed,
	}
	if stepErr != nil {
		v.LastError = stepErr.Error()
	}
	for i, a := range s.cfg.Aggregates {
		st := EstimateStatus{Aggregate: a.String()}
		if est, ok := s.est.Estimate(i); ok {
			st.OK = true
			st.Value = est.Value
			st.Variance = est.Variance
			st.Drills = est.Drills
		}
		if d, ok := s.est.EstimateDelta(i); ok {
			st.Delta = &EstimateDelta{Value: d.Value, Variance: d.Variance}
		}
		v.Estimates = append(v.Estimates, st)
	}
	return v
}

// StepOnce advances the tracker by one round budgeted at Config.Budget:
// PreRound churn (if any), one estimator Step, a checkpoint write, and
// the view publication. It must not be called concurrently with itself,
// StepBudget or Run. A Step error is recorded in the view and returned;
// the service remains usable — the next round may succeed (e.g. a
// transient network failure against a remote database).
func (s *Service) StepOnce() error { return s.StepBudget(s.cfg.Budget) }

// StepBudget is StepOnce with an explicit round budget overriding
// Config.Budget — the entry point a fleet scheduler (internal/fleet)
// uses to hand each task its weighted-fair share of a global tick
// budget. Given the same sequence of budgets and the same seed, a
// service produces byte-identical estimates no matter who drives it.
func (s *Service) StepBudget(g int) error {
	s.mu.RLock()
	resumed, steps := s.view.Resumed, s.view.Steps
	s.mu.RUnlock()

	roundStart := time.Now()
	err := s.stepEstimator(g)
	if err == nil {
		if cerr := s.checkpoint(); cerr != nil {
			err = cerr
		} else {
			steps++
		}
	}
	roundDur := time.Since(roundStart)
	s.roundHist.Observe(roundDur)
	v := s.buildView(g, resumed, steps, err)
	v.LastStep = time.Now()
	v.LastRoundMs = obs.DurationMs(roundDur)
	s.mu.Lock()
	s.view = v
	s.stepErr = err
	s.mu.Unlock()
	return err
}

func (s *Service) stepEstimator(g int) error {
	if s.cfg.PreRound != nil {
		if err := s.cfg.PreRound(s.est.Round() + 1); err != nil {
			return fmt.Errorf("tracking: pre-round: %w", err)
		}
	}
	sess := s.source(g)
	err := s.est.Step(sess)
	s.totalQueries += sess.Used()
	return err
}

// checkpoint writes the estimator snapshot atomically (temp file +
// rename), so a crash mid-write never corrupts the resumable state.
func (s *Service) checkpoint() error {
	if s.cfg.CheckpointPath == "" {
		return nil
	}
	dir := filepath.Dir(s.cfg.CheckpointPath)
	tmp, err := os.CreateTemp(dir, ".dynagg-ckpt-*")
	if err != nil {
		return fmt.Errorf("tracking: checkpoint: %w", err)
	}
	defer os.Remove(tmp.Name())
	if err := estimator.Save(s.est, tmp); err != nil {
		tmp.Close()
		return fmt.Errorf("tracking: checkpoint: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("tracking: checkpoint: %w", err)
	}
	if err := os.Rename(tmp.Name(), s.cfg.CheckpointPath); err != nil {
		return fmt.Errorf("tracking: checkpoint: %w", err)
	}
	return nil
}

// Run advances the tracker on the configured Interval until ctx is
// cancelled or MaxRounds is reached. The first round runs immediately.
// Step errors are recorded in the view and do not stop the loop; only
// cancellation (returns nil) or a MaxRounds completion ends it.
func (s *Service) Run(ctx context.Context) error {
	if s.cfg.Interval <= 0 {
		return errors.New("tracking: Config.Interval required for Run")
	}
	rounds := 0
	step := func() bool {
		_ = s.StepOnce()
		rounds++
		return s.cfg.MaxRounds > 0 && rounds >= s.cfg.MaxRounds
	}
	if step() {
		return nil
	}
	t := time.NewTicker(s.cfg.Interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return nil
		case <-t.C:
			if step() {
				return nil
			}
		}
	}
}
