package experiments

import (
	"errors"
	"math/rand"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestRunTrialsOrderedResults(t *testing.T) {
	const n, workers = 64, 8
	var inFlight, peak atomic.Int64
	results, err := runTrials(n, workers, func(trial int) (int, error) {
		cur := inFlight.Add(1)
		defer inFlight.Add(-1)
		for {
			p := peak.Load()
			if cur <= p || peak.CompareAndSwap(p, cur) {
				break
			}
		}
		return trial * 10, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != n {
		t.Fatalf("got %d results, want %d", len(results), n)
	}
	for i, r := range results {
		if r != i*10 {
			t.Fatalf("results[%d] = %d: not ordered by trial index", i, r)
		}
	}
	if p := peak.Load(); p > workers {
		t.Errorf("observed %d concurrent trials, pool bound is %d", p, workers)
	}
}

func TestRunTrialsSequentialFallback(t *testing.T) {
	var order []int
	_, err := runTrials(5, 1, func(trial int) (struct{}, error) {
		order = append(order, trial) // safe: workers=1 runs on the caller goroutine
		return struct{}{}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(order, []int{0, 1, 2, 3, 4}) {
		t.Errorf("sequential order = %v", order)
	}
}

func TestRunTrialsErrorPropagation(t *testing.T) {
	boom := errors.New("boom")
	var ran atomic.Int64
	_, err := runTrials(100, 4, func(trial int) (int, error) {
		ran.Add(1)
		if trial == 5 {
			return 0, boom
		}
		// Slow the healthy trials so the failure lands before the pool
		// could possibly drain all 100.
		time.Sleep(time.Millisecond)
		return trial, nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want %v", err, boom)
	}
	// The pool must stop claiming trials after the failure, not run all 100.
	if n := ran.Load(); n == 100 {
		t.Errorf("all %d trials ran despite an early error", n)
	}
}

// TestRunTrackingWorkersDeterminism is the acceptance check of the
// parallel engine: the same spec and seed must produce an identical
// TrackResult — every series, bit for bit — regardless of worker count.
func TestRunTrackingWorkersDeterminism(t *testing.T) {
	spec := tinySpec()
	seq, err := RunTracking(spec, Options{Seed: 11, Workers: 1}, 4)
	if err != nil {
		t.Fatal(err)
	}
	par, err := RunTracking(spec, Options{Seed: 11, Workers: 4}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq, par) {
		t.Fatalf("Workers:1 and Workers:4 results differ:\nseq: %+v\npar: %+v", seq, par)
	}
}

// TestFig4WorkersDeterminism covers the second trial loop (the
// intra-round runner of fig4), which has its own parallel fan-out.
func TestFig4WorkersDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("fig4 takes seconds per trial")
	}
	seq, err := Fig4(Options{Seed: 3, Trials: 2, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	par, err := Fig4(Options{Seed: 3, Trials: 2, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq, par) {
		t.Fatal("fig4 differs between Workers:1 and Workers:2")
	}
}

// TestTrialSeedStreamsDisjoint asserts the per-trial RNG streams never
// overlap: across every trial's dataset/env/estimator source, no window
// of consecutive outputs appears in two different streams.
func TestTrialSeedStreamsDisjoint(t *testing.T) {
	const (
		trials    = 8
		perStream = 256
		window    = 4
	)
	seeds := map[int64]string{}
	addSeed := func(s int64, who string) {
		if prev, dup := seeds[s]; dup {
			t.Fatalf("seed %d used by both %s and %s", s, prev, who)
		}
		seeds[s] = who
	}
	type win [window]uint64
	windows := map[win]string{}
	for trial := 0; trial < trials; trial++ {
		base := trialSeed(1, trial)
		for _, off := range []struct {
			delta int64
			name  string
		}{{0, "dataset"}, {envSeedOffset, "env"}, {rngSeedOffset, "estimator"}} {
			who := string(rune('0'+trial)) + "/" + off.name
			addSeed(base+off.delta, who)
			rng := rand.New(rand.NewSource(base + off.delta))
			vals := make([]uint64, perStream)
			for i := range vals {
				vals[i] = rng.Uint64()
			}
			for i := 0; i+window <= perStream; i++ {
				var w win
				copy(w[:], vals[i:i+window])
				if prev, dup := windows[w]; dup && prev != who {
					t.Fatalf("streams %s and %s share the window at offset %d", prev, who, i)
				}
				windows[w] = who
			}
		}
	}
}

// TestRunTrialsIsolation runs concurrent trials that each hammer their
// own RNG and map; under -race this catches any accidental sharing in
// the pool machinery itself.
func TestRunTrialsIsolation(t *testing.T) {
	var mu sync.Mutex
	sums := make(map[int]uint64)
	_, err := runTrials(16, 8, func(trial int) (struct{}, error) {
		rng := rand.New(rand.NewSource(trialSeed(42, trial)))
		own := make(map[int]uint64)
		var s uint64
		for i := 0; i < 1000; i++ {
			s += rng.Uint64() >> 40
			own[i&7] = s
		}
		mu.Lock()
		sums[trial] = s
		mu.Unlock()
		return struct{}{}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(sums) != 16 {
		t.Fatalf("got %d trial sums", len(sums))
	}
}
