package tracking

import (
	"context"
	"encoding/json"
	"math"
	"net/http/httptest"
	"path/filepath"
	"testing"
	"time"

	"github.com/dynagg/dynagg/internal/agg"
	"github.com/dynagg/dynagg/internal/hiddendb"
	"github.com/dynagg/dynagg/internal/workload"
)

// newLocalService wires a Service over a fresh simulated database with
// deterministic churn.
func newLocalService(t *testing.T, seed int64, ckpt string) (*Service, *workload.Env) {
	t.Helper()
	data := workload.AutosLikeN(seed, 10000, 10)
	env, err := workload.NewEnv(data, 9000, seed+1)
	if err != nil {
		t.Fatal(err)
	}
	iface := hiddendb.NewIface(env.Store, 100, nil)
	svc, err := New(iface.Schema(),
		func(g int) Session { return iface.NewSession(g) },
		Config{
			Algorithm:      "REISSUE",
			Aggregates:     []*agg.Aggregate{agg.CountAll()},
			Budget:         300,
			Interval:       time.Millisecond,
			Seed:           seed + 7,
			Parallelism:    4,
			CheckpointPath: ckpt,
			PreRound: func(round int) error {
				if round == 1 {
					return nil
				}
				if err := env.InsertFromPool(100); err != nil {
					return err
				}
				return env.DeleteFraction(0.005)
			},
		})
	if err != nil {
		t.Fatal(err)
	}
	return svc, env
}

func TestServiceStepPublishesEstimates(t *testing.T) {
	svc, env := newLocalService(t, 100, "")
	for i := 0; i < 3; i++ {
		if err := svc.StepOnce(); err != nil {
			t.Fatal(err)
		}
	}
	v := svc.CurrentView()
	if v.Round != 3 || v.Steps != 3 {
		t.Fatalf("round=%d steps=%d", v.Round, v.Steps)
	}
	if v.UsedLast == 0 || v.UsedLast > 300 {
		t.Fatalf("used last round = %d", v.UsedLast)
	}
	if len(v.Estimates) != 1 || !v.Estimates[0].OK {
		t.Fatalf("estimates: %+v", v.Estimates)
	}
	truth := float64(env.Store.Size())
	if rel := math.Abs(v.Estimates[0].Value-truth) / truth; rel > 0.5 {
		t.Errorf("estimate rel err %.2f (est %.0f truth %.0f)", rel, v.Estimates[0].Value, truth)
	}
	if v.Estimates[0].Delta == nil {
		t.Error("no delta after 3 rounds")
	}
}

func TestServiceCheckpointResume(t *testing.T) {
	ckpt := filepath.Join(t.TempDir(), "track.ckpt")
	svc1, _ := newLocalService(t, 200, ckpt)
	for i := 0; i < 2; i++ {
		if err := svc1.StepOnce(); err != nil {
			t.Fatal(err)
		}
	}
	before := svc1.CurrentView()

	// "Crash" and restart: a second service over the same checkpoint
	// resumes at the same round with the same drill-down pool.
	svc2, _ := newLocalService(t, 200, ckpt)
	if !svc2.Resumed() {
		t.Fatal("service did not resume from checkpoint")
	}
	v := svc2.CurrentView()
	if v.Round != before.Round || v.Drills != before.Drills {
		t.Fatalf("resumed round=%d drills=%d, want %d/%d", v.Round, v.Drills, before.Round, before.Drills)
	}
	if !v.Estimates[0].OK || v.Estimates[0].Value != before.Estimates[0].Value {
		t.Fatalf("resumed estimate %+v vs %+v", v.Estimates[0], before.Estimates[0])
	}
	if err := svc2.StepOnce(); err != nil {
		t.Fatal(err)
	}
	if got := svc2.CurrentView().Round; got != before.Round+1 {
		t.Fatalf("round after resumed step = %d", got)
	}
}

func TestServiceHTTPEndpoints(t *testing.T) {
	svc, _ := newLocalService(t, 300, "")
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()

	// Before any round: not ready.
	resp, err := srv.Client().Get(srv.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 503 {
		t.Fatalf("healthz before first round: %d", resp.StatusCode)
	}

	if err := svc.StepOnce(); err != nil {
		t.Fatal(err)
	}

	resp, err = srv.Client().Get(srv.URL + "/v1/status")
	if err != nil {
		t.Fatal(err)
	}
	var status struct {
		View
		UptimeSeconds float64 `json:"uptime_seconds"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&status); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if status.Algorithm != "REISSUE" || status.Round != 1 || len(status.Estimates) != 1 {
		t.Fatalf("status: %+v", status)
	}

	resp, err = srv.Client().Get(srv.URL + "/v1/estimates")
	if err != nil {
		t.Fatal(err)
	}
	var ests []EstimateStatus
	if err := json.NewDecoder(resp.Body).Decode(&ests); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(ests) != 1 || !ests[0].OK {
		t.Fatalf("estimates: %+v", ests)
	}

	resp, err = srv.Client().Get(srv.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("healthz after a round: %d", resp.StatusCode)
	}
}

func TestServiceRunMaxRoundsAndCancel(t *testing.T) {
	svc, _ := newLocalService(t, 400, "")
	svc.cfg.MaxRounds = 3
	if err := svc.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if got := svc.CurrentView().Round; got != 3 {
		t.Fatalf("rounds after MaxRounds run: %d", got)
	}

	// Unbounded run ends promptly on cancellation.
	svc2, _ := newLocalService(t, 401, "")
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- svc2.Run(ctx) }()
	time.Sleep(20 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Run did not return after cancellation")
	}
	if svc2.CurrentView().Round < 1 {
		t.Fatal("no rounds completed before cancellation")
	}
}

func TestServiceValidation(t *testing.T) {
	data := workload.AutosLikeN(1, 2000, 8)
	env, err := workload.NewEnv(data, 1800, 2)
	if err != nil {
		t.Fatal(err)
	}
	iface := hiddendb.NewIface(env.Store, 50, nil)
	source := func(g int) Session { return iface.NewSession(g) }
	if _, err := New(nil, source, Config{Aggregates: []*agg.Aggregate{agg.CountAll()}}); err == nil {
		t.Error("nil schema accepted")
	}
	if _, err := New(iface.Schema(), source, Config{}); err == nil {
		t.Error("no aggregates accepted")
	}
	if _, err := New(iface.Schema(), source, Config{
		Algorithm:  "MAGIC",
		Aggregates: []*agg.Aggregate{agg.CountAll()},
	}); err == nil {
		t.Error("unknown algorithm accepted")
	}
	svc, err := New(iface.Schema(), source, Config{Aggregates: []*agg.Aggregate{agg.CountAll()}})
	if err != nil {
		t.Fatal(err)
	}
	if err := svc.Run(context.Background()); err == nil {
		t.Error("Run without Interval accepted")
	}
}
