package hiddendb

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"github.com/dynagg/dynagg/internal/schema"
)

// ShardedStore partitions a database across N independent Stores by a hash
// of the tuple ID, so that each shard owns its own sorted tuple slice,
// version counter and inverted posting lists, and mutations to different
// shards never contend. Reads are served from an Epoch — one immutable
// snapshot per shard, published together — so that a round's answers stay
// frozen no matter which shards mutate underneath.
//
// Concurrency contract (one level up from Store's):
//
//   - Each shard has at most ONE mutator goroutine at a time. Because
//     mutations are routed by ShardFor(id), a harness may run one mutator
//     goroutine per shard in parallel (ApplyBatchParallel does exactly
//     that), which is the point of sharding the write path.
//   - Epoch publication (AdvanceEpoch) happens at round boundaries, with
//     all shard mutators quiescent: the publisher must observe every
//     mutation it wants the new epoch to serve. Publication itself is
//     serialised internally and atomic with respect to readers.
//   - Readers (Epoch, Search through ShardedIface) are lock-free and may
//     run concurrently with mutators; they keep answering on the pinned
//     epoch until the next AdvanceEpoch.
type ShardedStore struct {
	sch    *schema.Schema
	shards []*Store
	nextID atomic.Uint64

	epochMu sync.Mutex // serialises epoch publication
	epoch   atomic.Pointer[Epoch]

	// Two-phase publication state (epochctl.go), guarded by epochMu:
	// a frozen snapshot set awaiting a coordinator-assigned sequence
	// number, and the epoch the last PublishPending superseded (the
	// rollback target while the coordinator may still abort).
	pending   []*Snapshot
	prevEpoch *Epoch
}

// NewShardedStore creates an empty store partitioned n ways. n = 1 is a
// valid degenerate configuration (one shard, useful for equivalence
// testing). It panics if n < 1.
func NewShardedStore(sch *schema.Schema, n int) *ShardedStore {
	if n < 1 {
		panic("hiddendb: shard count must be >= 1")
	}
	shards := make([]*Store, n)
	for i := range shards {
		shards[i] = NewStore(sch)
	}
	return &ShardedStore{sch: sch, shards: shards}
}

// NumShards returns the shard count N.
func (ss *ShardedStore) NumShards() int { return len(ss.shards) }

// ShardFor returns the index of the shard owning the given tuple ID. The
// routing is a pure function of (id, N): splitmix64(id) mod N.
func (ss *ShardedStore) ShardFor(id uint64) int {
	return int(splitmix64(id) % uint64(len(ss.shards)))
}

// Shard returns the i-th shard. Harness-side only: the caller inherits the
// shard's single-mutator obligation and must route by ShardFor.
func (ss *ShardedStore) Shard(i int) *Store { return ss.shards[i] }

// Schema returns the store's schema.
func (ss *ShardedStore) Schema() *schema.Schema { return ss.sch }

// Size returns the current number of live tuples across all shards.
func (ss *ShardedStore) Size() int {
	n := 0
	for _, st := range ss.shards {
		n += st.Size()
	}
	return n
}

// SetBroadMatchNull switches the NULL matching policy on every shard.
// Mutator-side: call with all shard mutators quiescent.
func (ss *ShardedStore) SetBroadMatchNull(on bool) {
	for _, st := range ss.shards {
		st.SetBroadMatchNull(on)
	}
}

// NextID reserves and returns a fresh unique tuple ID. Unlike Store.NextID
// it is safe to call from concurrent per-shard mutators: the counter is a
// single atomic shared by all shards, so IDs are globally unique.
func (ss *ShardedStore) NextID() uint64 { return ss.nextID.Add(1) }

// reserveID keeps the global ID counter above an explicitly chosen ID.
func (ss *ShardedStore) reserveID(id uint64) {
	for {
		cur := ss.nextID.Load()
		if id <= cur || ss.nextID.CompareAndSwap(cur, id) {
			return
		}
	}
}

// Insert routes one tuple to its owning shard.
func (ss *ShardedStore) Insert(t *schema.Tuple) error {
	ss.reserveID(t.ID)
	return ss.shards[ss.ShardFor(t.ID)].Insert(t)
}

// Delete removes the tuple with the given ID from its owning shard.
func (ss *ShardedStore) Delete(id uint64) (*schema.Tuple, error) {
	return ss.shards[ss.ShardFor(id)].Delete(id)
}

// Replace substitutes the tuple with the given ID in its owning shard.
func (ss *ShardedStore) Replace(id uint64, mutate func(copy *schema.Tuple)) error {
	return ss.shards[ss.ShardFor(id)].Replace(id, mutate)
}

// Get returns the live tuple with the given ID, or nil.
func (ss *ShardedStore) Get(id uint64) *schema.Tuple {
	return ss.shards[ss.ShardFor(id)].Get(id)
}

// partitionBatch splits a batch by owning shard.
func (ss *ShardedStore) partitionBatch(inserts []*schema.Tuple, deleteIDs []uint64) (ins [][]*schema.Tuple, dels [][]uint64) {
	ins = make([][]*schema.Tuple, len(ss.shards))
	dels = make([][]uint64, len(ss.shards))
	for _, t := range inserts {
		ss.reserveID(t.ID)
		sh := ss.ShardFor(t.ID)
		ins[sh] = append(ins[sh], t)
	}
	for _, id := range deleteIDs {
		sh := ss.ShardFor(id)
		dels[sh] = append(dels[sh], id)
	}
	return ins, dels
}

// ApplyBatch partitions a round's updates by owning shard and applies each
// shard's slice with one merge pass. Validation is per shard: on error the
// failing shard is left unmodified, but earlier shards keep their applied
// portion (cross-shard batches are not atomic — the round-boundary mutator
// owns recovery).
func (ss *ShardedStore) ApplyBatch(inserts []*schema.Tuple, deleteIDs []uint64) error {
	ins, dels := ss.partitionBatch(inserts, deleteIDs)
	for i, st := range ss.shards {
		if len(ins[i]) == 0 && len(dels[i]) == 0 {
			continue
		}
		if err := st.ApplyBatch(ins[i], dels[i]); err != nil {
			return fmt.Errorf("shard %d: %w", i, err)
		}
	}
	return nil
}

// ApplyBatchParallel is ApplyBatch with one mutator goroutine per shard —
// the sharded write path at full width. Each shard's slice is applied by
// its own goroutine; the call returns after every shard finished, with the
// first error encountered (same atomicity caveat as ApplyBatch).
func (ss *ShardedStore) ApplyBatchParallel(inserts []*schema.Tuple, deleteIDs []uint64) error {
	ins, dels := ss.partitionBatch(inserts, deleteIDs)
	errs := make([]error, len(ss.shards))
	var wg sync.WaitGroup
	for i, st := range ss.shards {
		if len(ins[i]) == 0 && len(dels[i]) == 0 {
			continue
		}
		wg.Add(1)
		go func(i int, st *Store) {
			defer wg.Done()
			if err := st.ApplyBatch(ins[i], dels[i]); err != nil {
				errs[i] = fmt.Errorf("shard %d: %w", i, err)
			}
		}(i, st)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// ForEach visits every live tuple, shard by shard (canonical order within
// a shard, shard order across shards — NOT globally canonical).
// Ground-truth access for a quiescent store only.
func (ss *ShardedStore) ForEach(fn func(*schema.Tuple)) {
	for _, st := range ss.shards {
		st.ForEach(fn)
	}
}

// IDs returns the IDs of all live tuples in ascending order (per-shard ID
// sets are disjoint but interleaved, so a global sort keeps harness-side
// victim sampling deterministic).
func (ss *ShardedStore) IDs() []uint64 {
	out := make([]uint64, 0, ss.Size())
	for _, st := range ss.shards {
		out = append(out, st.IDs()...)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// CountMatching returns |Sel(q)| over the live (un-pinned) contents: the
// sum of the per-shard exact counts. Ground truth only.
func (ss *ShardedStore) CountMatching(q Query) int {
	n := 0
	for _, st := range ss.shards {
		n += st.CountMatching(q)
	}
	return n
}

// AdvanceEpoch publishes a new epoch: one snapshot per shard, taken
// together, tagged with the next epoch sequence number. Call it at the
// round boundary with all shard mutators quiescent — the snapshots are
// only mutually consistent if no shard is mid-mutation. Readers switch to
// the new epoch atomically; sessions pinned to the previous epoch keep it.
func (ss *ShardedStore) AdvanceEpoch() *Epoch {
	ss.epochMu.Lock()
	defer ss.epochMu.Unlock()
	var seq uint64 = 1
	if prev := ss.epoch.Load(); prev != nil {
		seq = prev.seq + 1
	}
	snaps := make([]*Snapshot, len(ss.shards))
	for i, st := range ss.shards {
		snaps[i] = st.Snapshot()
	}
	e := &Epoch{seq: seq, snaps: snaps}
	// A self-advanced epoch supersedes any in-flight two-phase state:
	// publishing a stale frozen set after this point would serve data the
	// round driver already moved past, and rolling back across it would
	// regress the seq readers have observed.
	ss.pending = nil
	ss.prevEpoch = nil
	ss.epoch.Store(e)
	return e
}

// Epoch returns the current pinned epoch, publishing the first one if none
// exists yet. It never re-pins on its own: after the initial publication,
// only AdvanceEpoch moves readers forward.
func (ss *ShardedStore) Epoch() *Epoch {
	if e := ss.epoch.Load(); e != nil {
		return e
	}
	ss.epochMu.Lock()
	defer ss.epochMu.Unlock()
	if e := ss.epoch.Load(); e != nil {
		return e
	}
	snaps := make([]*Snapshot, len(ss.shards))
	for i, st := range ss.shards {
		snaps[i] = st.Snapshot()
	}
	e := &Epoch{seq: 1, snaps: snaps}
	ss.epoch.Store(e)
	return e
}

// Epoch pins one immutable snapshot per shard under a single sequence
// number. Everything read through an Epoch is frozen: the same Epoch value
// answers identically forever, regardless of shard mutations or later
// epochs. Epochs are immutable and safe to share across any number of
// goroutines.
type Epoch struct {
	seq   uint64
	snaps []*Snapshot
}

// Seq returns the epoch sequence number (1-based).
func (e *Epoch) Seq() uint64 { return e.seq }

// NumShards returns the number of pinned shard snapshots.
func (e *Epoch) NumShards() int { return len(e.snaps) }

// Size returns the number of tuples frozen in the epoch, |D|.
func (e *Epoch) Size() int {
	n := 0
	for _, s := range e.snaps {
		n += s.Size()
	}
	return n
}

// CountMatching returns |Sel(q)| exactly over the pinned snapshots.
func (e *Epoch) CountMatching(q Query) int {
	n := 0
	for _, s := range e.snaps {
		n += s.CountMatching(q)
	}
	return n
}

// Answer computes the top-k result for q by scatter-gather: each pinned
// shard snapshot folds its matches into a running top-k heap (per-worker
// heaps when workers > 1, merged afterwards), so the global cut happens
// under the same strict (score desc, ID asc) order Snapshot.Answer ranks
// by, without materialising per-shard partial Results. All heaps and
// buffers come from the shared scratch pool — each worker goroutine
// borrows its own scratch — and the only steady-state allocation is the
// returned Result slice.
//
// Byte-identity with the unsharded engine: every tuple of the global
// top-k is necessarily in its own shard's top-k (per-shard rank can only
// be better than global rank), so offering every per-shard retained
// tuple to the merge heap reconstructs the global top-k exactly; and
// since each shard counts ALL its matches, the exact global overflow
// predicate is totalMatches > k, independent of shard count and worker
// assignment.
func (e *Epoch) Answer(q Query, k int, scorer Scorer, workers int) Result {
	sc := getScratch()
	defer putScratch(sc)
	sc.topk.reset()
	total := 0
	if workers > 1 && len(e.snaps) > 1 {
		if workers > len(e.snaps) {
			workers = len(e.snaps)
		}
		ws := sc.workers[:0]
		for w := 0; w < workers; w++ {
			ws = append(ws, getScratch())
		}
		sc.workers = ws
		var next atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(wsc *queryScratch) {
				defer wg.Done()
				wsc.topk.reset()
				sum := 0
				for {
					i := int(next.Add(1) - 1)
					if i >= len(e.snaps) {
						break
					}
					sum += e.snaps[i].collectTopK(q, k, scorer, wsc)
				}
				wsc.matches = sum
			}(ws[w])
		}
		wg.Wait()
		for _, wsc := range ws {
			total += wsc.matches
			for i := range wsc.topk.tuples {
				sc.topk.offer(wsc.topk.tuples[i], wsc.topk.scores[i], k)
			}
			putScratch(wsc)
		}
	} else {
		for _, s := range e.snaps {
			total += s.collectTopK(q, k, scorer, sc)
		}
	}
	return Result{Tuples: sc.topk.drain(), Overflow: total > k}
}

// ShardedIface is the restrictive top-k search view over a ShardedStore:
// the sharded counterpart of Iface, answering every query by scatter-
// gather over the pinned epoch. The default is sequential per-shard
// answering; SetGatherWorkers turns on parallel per-shard goroutines.
// Results are byte-identical either way.
//
// Concurrency: safe for any number of concurrent reader goroutines.
// Sessions created by NewSession pin the epoch current at creation time
// and answer from it for their whole lifetime — a long-running session
// never observes two epochs.
type ShardedIface struct {
	ss      *ShardedStore
	k       int
	scorer  Scorer
	workers int // scatter-gather goroutines per query; <= 1 is sequential
	queries atomic.Uint64
	cache   atomic.Pointer[answerCache] // keyed by epoch seq
	stats   cacheStats
}

// NewShardedIface creates a top-k view of the sharded store. scorer may be
// nil for the default hash ranking. It panics if k < 1.
func NewShardedIface(ss *ShardedStore, k int, scorer Scorer) *ShardedIface {
	if k < 1 {
		panic("hiddendb: interface k must be >= 1")
	}
	if scorer == nil {
		scorer = DefaultScorer
	}
	return &ShardedIface{ss: ss, k: k, scorer: scorer, workers: 1}
}

// SetGatherWorkers sets the number of per-shard goroutines a single query
// fans out over (<= 1 answers shards sequentially). Configure before
// serving: the setting is not synchronised with in-flight queries.
func (f *ShardedIface) SetGatherWorkers(n int) {
	if n < 1 {
		n = 1
	}
	f.workers = n
}

// K returns the result cap of the interface.
func (f *ShardedIface) K() int { return f.k }

// Schema returns the queryable schema.
func (f *ShardedIface) Schema() *schema.Schema { return f.ss.Schema() }

// TotalQueries returns the lifetime number of queries answered.
func (f *ShardedIface) TotalQueries() uint64 { return f.queries.Load() }

// Version returns the current epoch sequence number — the sharded
// analogue of the store version serving diagnostics report.
func (f *ShardedIface) Version() uint64 { return f.ss.Epoch().Seq() }

// Epoch returns the epoch the interface currently answers from.
func (f *ShardedIface) Epoch() *Epoch { return f.ss.Epoch() }

// Search answers one query against the current epoch. It never fails;
// budget enforcement lives in Session.
func (f *ShardedIface) Search(q Query) (Result, error) {
	f.queries.Add(1)
	return f.answer(f.ss.Epoch(), q), nil
}

// SearchBatch answers many queries under ONE epoch pin: every query in
// the batch sees the same frozen state even if AdvanceEpoch lands midway.
func (f *ShardedIface) SearchBatch(qs []Query) []Result {
	out := make([]Result, len(qs))
	if len(qs) == 0 {
		return out
	}
	f.queries.Add(uint64(len(qs)))
	e := f.ss.Epoch()
	for i, q := range qs {
		out[i] = f.answer(e, q)
	}
	return out
}

// answer resolves one query against a pinned epoch, through the shared
// per-epoch answer cache when the pin is still current (sessions pinned to
// an older epoch bypass the cache rather than thrash it).
func (f *ShardedIface) answer(e *Epoch, q Query) Result {
	return f.answerEpoch(e, q).res
}

// answerEpoch is answer returning the shared cached *Answer, collapsing
// concurrent identical queries on the current epoch into one
// scatter-gather execution (answer.go).
func (f *ShardedIface) answerEpoch(e *Epoch, q Query) *Answer {
	cur := f.ss.epoch.Load()
	if cur == nil || cur.seq != e.seq {
		f.stats.misses.Add(1)
		return &Answer{res: e.Answer(q, f.k, f.scorer, f.workers)}
	}
	c := f.cacheFor(e.seq)
	key := q.Key()
	return c.shard(key).do(key, &f.stats, func() Result {
		return e.Answer(q, f.k, f.scorer, f.workers)
	})
}

// SearchAnswer is Search returning the shared cached *Answer so the
// serving layer can memoize wire encodings per epoch (answer.go).
func (f *ShardedIface) SearchAnswer(q Query) (*Answer, error) {
	f.queries.Add(1)
	return f.answerEpoch(f.ss.Epoch(), q), nil
}

// SearchBatchAnswer is SearchBatch returning the shared cached Answers,
// under the same single epoch pin.
func (f *ShardedIface) SearchBatchAnswer(qs []Query) []*Answer {
	out := make([]*Answer, len(qs))
	if len(qs) == 0 {
		return out
	}
	f.queries.Add(uint64(len(qs)))
	e := f.ss.Epoch()
	for i, q := range qs {
		out[i] = f.answerEpoch(e, q)
	}
	return out
}

// LookupAnswer is the serving fast path over the current epoch: probe the
// cache by raw key bytes (Query.AppendKey) with no Query construction.
// Mirrors Iface.LookupAnswer: hits count one query, misses count nothing.
func (f *ShardedIface) LookupAnswer(key []byte) (*Answer, bool) {
	e := f.ss.epoch.Load()
	if e == nil {
		return nil, false
	}
	c := f.cache.Load()
	if c == nil || c.version != e.seq {
		return nil, false
	}
	a, ok := c.shardBytes(key).get(key)
	if !ok {
		return nil, false
	}
	f.queries.Add(1)
	f.stats.hits.Add(1)
	return a, true
}

// CacheStats returns the lifetime answer-cache counters.
func (f *ShardedIface) CacheStats() CacheStats { return f.stats.read() }

// cacheFor returns the answer cache for the given epoch seq, swapping a
// fresh one in when the epoch moved on.
func (f *ShardedIface) cacheFor(seq uint64) *answerCache {
	for {
		c := f.cache.Load()
		if c != nil && c.version == seq {
			return c
		}
		nc := newAnswerCache(seq)
		if f.cache.CompareAndSwap(c, nc) {
			return nc
		}
	}
}

// NewSession starts a budgeted round pinned to the CURRENT epoch: every
// query of the session — however long it runs — is answered from the
// epoch that was live when the session was created. G <= 0 means
// unlimited.
func (f *ShardedIface) NewSession(g int) *Session {
	return &Session{b: &epochView{f: f, e: f.ss.Epoch()}, bc: NewBudgetCounter(g)}
}

// AsSearcher returns an unbudgeted Searcher view of the interface
// (answers always from the current epoch, not pinned).
func (f *ShardedIface) AsSearcher() Searcher { return shardedIfaceSearcher{f: f} }

type shardedIfaceSearcher struct{ f *ShardedIface }

func (s shardedIfaceSearcher) Search(q Query) (Result, error) { return s.f.Search(q) }
func (s shardedIfaceSearcher) K() int                         { return s.f.K() }
func (s shardedIfaceSearcher) Schema() *schema.Schema         { return s.f.Schema() }

// epochView is the session backend for sharded sessions: a ShardedIface
// with one epoch pinned for the lifetime of the view.
type epochView struct {
	f *ShardedIface
	e *Epoch
}

func (v *epochView) Search(q Query) (Result, error) {
	v.f.queries.Add(1)
	return v.f.answer(v.e, q), nil
}

func (v *epochView) SearchBatch(qs []Query) []Result {
	out := make([]Result, len(qs))
	if len(qs) == 0 {
		return out
	}
	v.f.queries.Add(uint64(len(qs)))
	for i, q := range qs {
		out[i] = v.f.answer(v.e, q)
	}
	return out
}

func (v *epochView) K() int                 { return v.f.K() }
func (v *epochView) Schema() *schema.Schema { return v.f.Schema() }

// Epoch returns the sharded epoch this session is pinned to, or nil for
// a session over an unsharded Iface.
func (s *Session) Epoch() *Epoch {
	if v, ok := s.b.(*epochView); ok {
		return v.e
	}
	return nil
}
