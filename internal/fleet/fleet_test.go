package fleet

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"github.com/dynagg/dynagg/internal/agg"
	"github.com/dynagg/dynagg/internal/hiddendb"
	"github.com/dynagg/dynagg/internal/tracking"
	"github.com/dynagg/dynagg/internal/workload"
)

// fixture describes one task mirrored between a fleet and a standalone
// tracking.Service.
type fixture struct {
	id     string
	algo   string
	weight int
	budget int // expected fleet grant == standalone per-round budget
	seed   int64
}

// newEnv builds the deterministic simulated database one task tracks.
func newEnv(t *testing.T, seed int64) *workload.Env {
	t.Helper()
	data := workload.AutosLikeN(seed, 6000, 8)
	env, err := workload.NewEnv(data, 5400, seed+1)
	if err != nil {
		t.Fatal(err)
	}
	return env
}

// churn is the per-round update schedule both sides apply; n is the tick
// (fleet) or upcoming round (standalone) — churn is skipped at 1 so
// round 1 sees the initial database.
func churn(env *workload.Env) func(n int) error {
	return func(n int) error {
		if n == 1 {
			return nil
		}
		if err := env.InsertFromPool(60); err != nil {
			return err
		}
		return env.DeleteFraction(0.004)
	}
}

// target wraps an env in a fleet Target.
func target(env *workload.Env, withChurn bool) Target {
	iface := hiddendb.NewIface(env.Store, 100, nil)
	tgt := Target{
		Schema: iface.Schema(),
		Source: func(g int) tracking.Session { return iface.NewSession(g) },
	}
	if withChurn {
		tgt.PreTick = churn(env)
	}
	return tgt
}

// estimatesJSON renders a view's estimate array byte-comparably.
func estimatesJSON(t *testing.T, v tracking.View) string {
	t.Helper()
	raw, err := json.Marshal(v.Estimates)
	if err != nil {
		t.Fatal(err)
	}
	return string(raw)
}

// standaloneStream runs one fixture as a plain tracking.Service for
// rounds rounds and returns the per-round estimate JSON stream. svcSeed
// is the estimator seed (a resumed mirror passes the derived one).
func standaloneStream(t *testing.T, f fixture, svcSeed int64, rounds int, ckpt string) []string {
	t.Helper()
	env := newEnv(t, f.seed+1000)
	iface := hiddendb.NewIface(env.Store, 100, nil)
	svc, err := tracking.New(iface.Schema(),
		func(g int) tracking.Session { return iface.NewSession(g) },
		tracking.Config{
			Algorithm:      f.algo,
			Aggregates:     []*agg.Aggregate{agg.CountAll()},
			Budget:         f.budget,
			Seed:           svcSeed,
			Parallelism:    1, // the fleet side uses 4: estimates must not care
			CheckpointPath: ckpt,
			PreRound:       churn(env),
		})
	if err != nil {
		t.Fatal(err)
	}
	var stream []string
	for r := 0; r < rounds; r++ {
		if err := svc.StepOnce(); err != nil {
			t.Fatalf("standalone %s round %d: %v", f.id, r+1, err)
		}
		stream = append(stream, estimatesJSON(t, svc.CurrentView()))
	}
	return stream
}

// fleetManager assembles a manager over per-fixture targets.
func fleetManager(t *testing.T, fixtures []fixture, tickBudget int, dir string) *Manager {
	t.Helper()
	targets := make(map[string]Target, len(fixtures))
	for _, f := range fixtures {
		targets["db-"+f.id] = target(newEnv(t, f.seed+1000), true)
	}
	mgr, err := New(Config{TickBudget: tickBudget, Dir: dir, Targets: targets, Interval: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	return mgr
}

func addFixtures(t *testing.T, mgr *Manager, fixtures []fixture) {
	t.Helper()
	for _, f := range fixtures {
		err := mgr.Add(TaskSpec{
			ID:          f.id,
			Target:      "db-" + f.id,
			Algorithm:   f.algo,
			Weight:      f.weight,
			Seed:        f.seed,
			Parallelism: 4,
		})
		if err != nil {
			t.Fatal(err)
		}
	}
}

// TestFleetMatchesStandalone is the core determinism guarantee: under
// weighted fair sharing each task's estimate stream is byte-identical
// to a standalone tracking.Service given the same seed and per-round
// budget, for several task counts and weight vectors — and independent
// of the estimator fan-out (fleet tasks run Parallelism 4, standalone
// 1).
func TestFleetMatchesStandalone(t *testing.T) {
	algos := []string{"REISSUE", "RS", "RESTART"}
	cases := []struct {
		name    string
		weights []int
	}{
		{"one", []int{1}},
		{"three-equal", []int{1, 1, 1}},
		{"four-weighted", []int{1, 2, 3, 1}},
	}
	const rounds = 4
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var fixtures []fixture
			tickBudget := 0
			for i, w := range tc.weights {
				f := fixture{
					id:     fmt.Sprintf("t%d", i),
					algo:   algos[i%len(algos)],
					weight: w,
					budget: 80 * w,
					seed:   int64(7000 + 13*i),
				}
				fixtures = append(fixtures, f)
				tickBudget += f.budget
			}

			mgr := fleetManager(t, fixtures, tickBudget, "")
			addFixtures(t, mgr, fixtures)
			fleetStreams := make(map[string][]string)
			for r := 0; r < rounds; r++ {
				mgr.TickOnce()
				for _, f := range fixtures {
					ts, ok := mgr.TaskView(f.id)
					if !ok {
						t.Fatalf("task %s missing", f.id)
					}
					if ts.LastError != "" {
						t.Fatalf("task %s tick %d: %s", f.id, r+1, ts.LastError)
					}
					if ts.GrantedLast != f.budget {
						t.Fatalf("task %s granted %d, want %d", f.id, ts.GrantedLast, f.budget)
					}
					fleetStreams[f.id] = append(fleetStreams[f.id], estimatesJSON(t, ts.View))
				}
			}

			for _, f := range fixtures {
				want := standaloneStream(t, f, f.seed, rounds, "")
				got := fleetStreams[f.id]
				for r := range want {
					if got[r] != want[r] {
						t.Errorf("task %s round %d:\nfleet      %s\nstandalone %s",
							f.id, r+1, got[r], want[r])
					}
				}
			}
		})
	}
}

// TestFleetCrashResume kills a persisted fleet mid-run and restarts it
// from the fleet directory: every task must resume from its checkpoint
// (continuing tick counter included) and the subsequent estimates must
// stay byte-identical to a standalone service put through the identical
// crash/resume.
func TestFleetCrashResume(t *testing.T) {
	dir := t.TempDir()
	fixtures := []fixture{
		{id: "a", algo: "REISSUE", weight: 1, budget: 80, seed: 8101},
		{id: "b", algo: "RS", weight: 1, budget: 80, seed: 8202},
	}
	const tickBudget = 160

	mgr1 := fleetManager(t, fixtures, tickBudget, dir)
	addFixtures(t, mgr1, fixtures)
	mgr1.TickOnce()
	mgr1.TickOnce()
	// "Crash": mgr1 is abandoned. A fresh manager over the same dir must
	// restore both tasks and the tick counter from fleet.json and resume
	// each estimator from its checkpoint.
	targets := make(map[string]Target, len(fixtures))
	for _, f := range fixtures {
		targets["db-"+f.id] = target(newEnv(t, f.seed+1000), true)
	}
	mgr2, err := New(Config{TickBudget: tickBudget, Dir: dir, Targets: targets})
	if err != nil {
		t.Fatal(err)
	}
	if got := mgr2.Ticks(); got != 2 {
		t.Fatalf("restored tick counter = %d, want 2", got)
	}
	st := mgr2.Status()
	if st.TaskCount != 2 {
		t.Fatalf("restored %d tasks, want 2", st.TaskCount)
	}
	for _, ts := range st.Tasks {
		if !ts.View.Resumed || ts.View.Round != 2 {
			t.Fatalf("task %s resumed=%v round=%d, want resumed at round 2",
				ts.ID, ts.View.Resumed, ts.View.Round)
		}
	}

	resumedStreams := make(map[string][]string)
	for r := 0; r < 2; r++ {
		mgr2.TickOnce()
		for _, f := range fixtures {
			ts, _ := mgr2.TaskView(f.id)
			if ts.LastError != "" {
				t.Fatalf("task %s after resume: %s", f.id, ts.LastError)
			}
			resumedStreams[f.id] = append(resumedStreams[f.id], estimatesJSON(t, ts.View))
		}
	}

	// Standalone mirror: same crash, same resume, same derived fresh
	// seed (the fleet folds the restore-time tick counter — here 2 —
	// into a resumed task's seed so the consumed RNG stream is never
	// replayed).
	for _, f := range fixtures {
		ckpt := filepath.Join(t.TempDir(), f.id+".ckpt")
		_ = standaloneStream(t, f, f.seed, 2, ckpt) // phase 1, then "crash"
		want := standaloneStream(t, f, resumeSeed(f.seed, 2), 2, ckpt)
		got := resumedStreams[f.id]
		for r := range want {
			if got[r] != want[r] {
				t.Errorf("task %s resumed round %d:\nfleet      %s\nstandalone %s",
					f.id, r+1, got[r], want[r])
			}
		}
	}
}

// TestFleetPauseRedistributes pauses one of two equal-weight tasks and
// expects the whole tick budget to flow to the other, deterministically.
func TestFleetPauseRedistributes(t *testing.T) {
	fixtures := []fixture{
		{id: "a", algo: "REISSUE", weight: 1, budget: 100, seed: 9101},
		{id: "b", algo: "REISSUE", weight: 1, budget: 100, seed: 9202},
	}
	mgr := fleetManager(t, fixtures, 200, "")
	addFixtures(t, mgr, fixtures)

	mgr.TickOnce()
	for _, id := range []string{"a", "b"} {
		ts, _ := mgr.TaskView(id)
		if ts.GrantedLast != 100 {
			t.Fatalf("task %s granted %d, want 100", id, ts.GrantedLast)
		}
	}

	if err := mgr.SetPaused("b", true); err != nil {
		t.Fatal(err)
	}
	mgr.TickOnce()
	a, _ := mgr.TaskView("a")
	b, _ := mgr.TaskView("b")
	if a.GrantedLast != 200 {
		t.Fatalf("runnable task granted %d, want the paused task's share (200)", a.GrantedLast)
	}
	if b.View.Round != 1 {
		t.Fatalf("paused task advanced to round %d", b.View.Round)
	}

	if err := mgr.SetPaused("b", false); err != nil {
		t.Fatal(err)
	}
	mgr.TickOnce()
	a, _ = mgr.TaskView("a")
	b, _ = mgr.TaskView("b")
	if a.GrantedLast != 100 || b.GrantedLast != 100 {
		t.Fatalf("after resume granted a=%d b=%d, want 100/100", a.GrantedLast, b.GrantedLast)
	}
	if b.View.Round != 2 {
		t.Fatalf("resumed task at round %d, want 2", b.View.Round)
	}
}

// TestFleetRestoreSurvivesDeadTask proves one unrestorable task (e.g. a
// dead remote) cannot take the fleet down: the healthy tasks resume, the
// failure is surfaced in Status, the dead spec keeps its place in the
// state file, and the operator can retire it with Remove.
func TestFleetRestoreSurvivesDeadTask(t *testing.T) {
	dir := t.TempDir()
	fixtures := []fixture{{id: "good", algo: "REISSUE", weight: 1, budget: 80, seed: 9401}}
	mgr1 := fleetManager(t, fixtures, 80, dir)
	addFixtures(t, mgr1, fixtures)
	if err := mgr1.Add(TaskSpec{ID: "dead", Remote: "http://127.0.0.1:1/down", Seed: 1}); err == nil {
		// The dial fails immediately; plant the spec via the state file
		// instead so the restore path sees it.
		t.Fatal("dial to a closed port unexpectedly succeeded")
	}
	mgr1.TickOnce()

	// Inject the dead remote task directly into the persisted state.
	raw, err := os.ReadFile(filepath.Join(dir, "fleet.json"))
	if err != nil {
		t.Fatal(err)
	}
	var st struct {
		Ticks int        `json:"ticks"`
		Tasks []TaskSpec `json:"tasks"`
	}
	if err := json.Unmarshal(raw, &st); err != nil {
		t.Fatal(err)
	}
	st.Tasks = append(st.Tasks, TaskSpec{ID: "dead", Remote: "http://127.0.0.1:1/down", Seed: 1})
	out, err := json.Marshal(st)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "fleet.json"), out, 0o644); err != nil {
		t.Fatal(err)
	}

	targets := map[string]Target{"db-good": target(newEnv(t, 9401+1000), true)}
	mgr2, err := New(Config{TickBudget: 80, Dir: dir, Targets: targets})
	if err != nil {
		t.Fatalf("one dead task took the fleet down: %v", err)
	}
	status := mgr2.Status()
	if status.TaskCount != 1 || len(status.FailedTasks) != 1 || status.FailedTasks[0].ID != "dead" {
		t.Fatalf("degraded restore: %+v", status)
	}
	mgr2.TickOnce() // the healthy task keeps tracking
	if ts, _ := mgr2.TaskView("good"); ts.View.Round != 2 {
		t.Fatalf("healthy task at round %d after degraded restore, want 2", ts.View.Round)
	}
	// The dead spec survived the tick's state write…
	raw, err = os.ReadFile(filepath.Join(dir, "fleet.json"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(raw), `"dead"`) {
		t.Fatalf("dead task dropped from state file:\n%s", raw)
	}
	// …until the operator retires it.
	if err := mgr2.Remove("dead"); err != nil {
		t.Fatal(err)
	}
	if st := mgr2.Status(); len(st.FailedTasks) != 0 {
		t.Fatalf("failed task not removable: %+v", st.FailedTasks)
	}
}

// TestFleetCountersMonotoneAfterRemove guards the Prometheus contract:
// removing a task must not make the fleet-wide counters decrease.
func TestFleetCountersMonotoneAfterRemove(t *testing.T) {
	fixtures := []fixture{
		{id: "a", algo: "REISSUE", weight: 1, budget: 100, seed: 9301},
		{id: "b", algo: "REISSUE", weight: 1, budget: 100, seed: 9302},
	}
	mgr := fleetManager(t, fixtures, 200, "")
	addFixtures(t, mgr, fixtures)
	mgr.TickOnce()
	before := mgr.Status()
	if before.QueriesTotal == 0 {
		t.Fatal("no queries recorded before removal")
	}
	if err := mgr.Remove("a"); err != nil {
		t.Fatal(err)
	}
	after := mgr.Status()
	if after.QueriesTotal < before.QueriesTotal || after.RoundsTotal < before.RoundsTotal {
		t.Fatalf("counters decreased on removal: queries %d→%d rounds %d→%d",
			before.QueriesTotal, after.QueriesTotal, before.RoundsTotal, after.RoundsTotal)
	}
}

// TestFleetPreTickErrorSurvivesPersist makes sure a target churn error
// reaches /status even when a successful state-file write follows it in
// the same tick.
func TestFleetPreTickErrorSurvivesPersist(t *testing.T) {
	env := newEnv(t, 77)
	tgt := target(env, false)
	tgt.PreTick = func(int) error { return fmt.Errorf("churn backend down") }
	mgr, err := New(Config{
		TickBudget: 100,
		Dir:        t.TempDir(), // persistence on: the save must not clobber the error
		Targets:    map[string]Target{"db": tgt},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := mgr.Add(TaskSpec{ID: "x", Target: "db", Seed: 1}); err != nil {
		t.Fatal(err)
	}
	mgr.TickOnce()
	if st := mgr.Status(); !strings.Contains(st.LastTickError, "churn backend down") {
		t.Fatalf("last_tick_error = %q, want the PreTick error", st.LastTickError)
	}
}

// TestFleetValidation exercises spec validation and target resolution.
func TestFleetValidation(t *testing.T) {
	env := newEnv(t, 42)
	mgr, err := New(Config{Targets: map[string]Target{"db": target(env, false)}})
	if err != nil {
		t.Fatal(err)
	}
	bad := []TaskSpec{
		{ID: "no/slashes"},
		{ID: "x", Target: "db", Remote: "http://both"},
		{ID: "x", Target: "nope"},
		{ID: "x", Target: "db", Algorithm: "MAGIC"},
		{ID: "x", Target: "db", Weight: -1},
		{ID: "x", Target: "db", MaxBudget: -1},
		{ID: "x", Target: "db", Aggregates: []AggregateSpec{{Kind: "MEDIAN"}}},
		{ID: "x", Target: "db", Aggregates: []AggregateSpec{{Where: []PredSpec{{Attr: 0}, {Attr: 0}}}}},
	}
	for i, spec := range bad {
		if err := mgr.Add(spec); err == nil {
			t.Errorf("bad spec %d accepted: %+v", i, spec)
		}
	}
	// Single configured target: name may be omitted.
	if err := mgr.Add(TaskSpec{ID: "ok", Seed: 1}); err != nil {
		t.Fatalf("implicit single target rejected: %v", err)
	}
	if err := mgr.Add(TaskSpec{ID: "ok", Target: "db"}); err == nil {
		t.Error("duplicate task id accepted")
	}
}
