package hiddendb

import (
	"sort"
	"sync"
	"sync/atomic"

	"github.com/dynagg/dynagg/internal/schema"
)

// Snapshot is one immutable, fully consistent version of a Store: the
// sorted tuple slice plus per-(attribute, value) roaring-style posting
// lists (see posting.go). A snapshot never changes after publication —
// the Store copy-on-writes every slice, map and posting container a
// snapshot references before mutating it — so any number of goroutines
// may answer queries against one snapshot while the harness prepares the
// next round's updates.
//
// Query answering picks between three strategies by estimated cost:
//
//   - prefix: canonical-prefix binary search to a contiguous tuple range;
//   - postings: intersect the candidate posting lists of every covered
//     predicate — seeded from the smallest — with the galloping/bitmap
//     kernels in intersect.go, then gather only the survivors back to
//     tuples;
//   - scan: the full O(n) pass (the only option the pre-snapshot engine
//     had for non-prefix queries).
//
// All three return byte-identical Results: the top-k set under the strict
// (score desc, ID asc) order is independent of iteration order, which the
// equivalence tests in snapshot_test.go verify exhaustively.
//
// The answering path allocates only the Result slice it returns; all
// intermediate state lives in pooled per-query scratch (scratch.go).
type Snapshot struct {
	sch            *schema.Schema
	tuples         []*schema.Tuple // canonical (Vals, ID) order
	attrs          []snapAttr      // one per schema attribute
	broadMatchNull bool
	version        uint64
}

// snapAttr holds one attribute's posting lists. Store-maintained
// attributes carry their (immutable) lists directly; inactive attributes
// get a lazyIndex that is built on first demand by whichever reader needs
// it, and whose demand flag tells the Store to start maintaining that
// attribute incrementally from the next version on.
type snapAttr struct {
	lists map[uint16]*postingList
	lazy  *lazyIndex
}

// lazyIndex builds an attribute's posting lists on first use, once,
// shared by all readers of the snapshot.
type lazyIndex struct {
	once     sync.Once
	built    atomic.Pointer[map[uint16]*postingList]
	demanded atomic.Bool
}

// build scans the snapshot's tuples once and materialises every value's
// posting list for the attribute.
func (li *lazyIndex) build(attr int, tuples []*schema.Tuple) map[uint16]*postingList {
	li.demanded.Store(true)
	li.once.Do(func() {
		byVal := make(map[uint16][]*schema.Tuple)
		for _, t := range tuples {
			v := t.Vals[attr]
			byVal[v] = append(byVal[v], t)
		}
		m := make(map[uint16]*postingList, len(byVal))
		for v, l := range byVal {
			sortTuplesByID(l)
			m[v] = buildPostingList(l)
		}
		li.built.Store(&m)
	})
	return *li.built.Load()
}

// loaded returns the lists if already built, without triggering a build.
func (li *lazyIndex) loaded() map[uint16]*postingList {
	if p := li.built.Load(); p != nil {
		return *p
	}
	return nil
}

// Version returns the store version this snapshot was taken at.
func (s *Snapshot) Version() uint64 { return s.version }

// Size returns the number of tuples frozen in the snapshot, |D|.
func (s *Snapshot) Size() int { return len(s.tuples) }

// Schema returns the snapshot's schema.
func (s *Snapshot) Schema() *schema.Schema { return s.sch }

// BroadMatchNull reports the NULL policy frozen into the snapshot.
func (s *Snapshot) BroadMatchNull() bool { return s.broadMatchNull }

// ForEach visits every tuple in canonical order.
func (s *Snapshot) ForEach(fn func(*schema.Tuple)) {
	for _, t := range s.tuples {
		fn(t)
	}
}

// CountMatching returns |Sel(q)| exactly — ground truth only, never
// exposed through the restricted interface. When every predicate is
// covered by posting lists the count comes straight off the intersection
// survivor sizes, without gathering a single tuple.
func (s *Snapshot) CountMatching(q Query) int {
	sc := getScratch()
	defer putScratch(sc)
	pln := s.plan(q, strategyAuto, sc)
	if pln.postings && len(pln.rest) == 0 {
		return s.countPostings(&pln, sc)
	}
	n := 0
	s.execPlan(&pln, sc, func(*schema.Tuple) { n++ })
	return n
}

// strategy selects how forEachMatching enumerates candidates. Tests force
// each strategy explicitly to prove they answer identically.
type strategy int

const (
	strategyAuto strategy = iota
	strategyScan
	strategyPrefix
	strategyPostings
)

// queryPlan is one query's resolved access path: either a tuple-range
// scan ([lo,hi) filtered by rest) or a postings intersection (seed ∩
// others, gathered survivors filtered by rest). Its slices alias the
// scratch that built it.
type queryPlan struct {
	postings bool
	lo, hi   int // scan path: tuple range
	pl       int // scan path: canonical prefix length already applied
	seed     predPostings
	others   []predPostings // remaining covered predicates, size-ascending
	rest     []Pred         // uncovered predicates, filtered at emit
}

// prefixRange locates the contiguous slice of tuples matching the query's
// canonical-order prefix of length pl (pl ≥ 1, no broad-match NULLs).
func (s *Snapshot) prefixRange(q Query, pl int, sc *queryScratch) (lo, hi int) {
	prefix := sc.prefix[:0]
	for i := 0; i < pl; i++ {
		prefix = append(prefix, q.preds[i].Val)
	}
	sc.prefix = prefix
	lo = sort.Search(len(s.tuples), func(i int) bool {
		return schema.CompareVals(s.tuples[i].Vals[:pl], prefix) >= 0
	})
	hi = sort.Search(len(s.tuples), func(i int) bool {
		return schema.CompareVals(s.tuples[i].Vals[:pl], prefix) > 0
	})
	return lo, hi
}

// candidatePP returns the candidate posting lists covering predicate p,
// or ok=false when the attribute's index is not materialised yet. Under
// broad-match NULL semantics a tuple with NULL in p.Attr also matches, so
// the NULL list joins the candidate set for nullable attributes.
func (s *Snapshot) candidatePP(p Pred) (pp predPostings, ok bool) {
	sa := &s.attrs[p.Attr]
	m := sa.lists
	if m == nil {
		if sa.lazy == nil {
			return predPostings{}, false
		}
		if m = sa.lazy.loaded(); m == nil {
			return predPostings{}, false
		}
	}
	pp.val = m[p.Val]
	if s.broadMatchNull && p.Val != schema.NullCode && s.sch.Attr(p.Attr).Nullable {
		pp.null = m[schema.NullCode]
	}
	pp.size = pp.val.size() + pp.null.size()
	return pp, true
}

// materialisePP builds the lazy index for p's attribute and returns its
// candidate lists. ok=false on ephemeral snapshots, which carry no lazy
// builders (they answer exactly one query and are never shared).
func (s *Snapshot) materialisePP(p Pred) (predPostings, bool) {
	sa := &s.attrs[p.Attr]
	if sa.lists == nil {
		if sa.lazy == nil {
			return predPostings{}, false
		}
		sa.lazy.build(p.Attr, s.tuples)
	}
	return s.candidatePP(p)
}

// plan resolves the access path for q under the given (possibly forced)
// strategy. The chosen path — and the exact set of tuples it will visit —
// matches the pre-posting engine decision for decision: prefix ranges are
// unusable under broad-match NULLs, the smallest candidate set seeds the
// intersection (earliest predicate wins ties), and a query that would pay
// a full scan invests that same O(n) in materialising its first
// predicate's index instead.
func (s *Snapshot) plan(q Query, strat strategy, sc *queryScratch) queryPlan {
	n := len(s.tuples)
	pln := queryPlan{hi: n}
	if len(q.preds) == 0 {
		return pln
	}

	if strat == strategyScan {
		sc.rest = append(sc.rest[:0], q.preds...)
		pln.rest = sc.rest
		return pln
	}

	if strat == strategyAuto || strat == strategyPrefix {
		// Prefix range (unusable under broad-match NULLs: a NULL tuple
		// may match a prefix predicate yet sort outside the value's
		// range).
		if !s.broadMatchNull {
			if pl := q.prefixLen(); pl > 0 {
				pln.pl = pl
				pln.lo, pln.hi = s.prefixRange(q, pl, sc)
			}
		}
		if strat == strategyPrefix {
			sc.rest = append(sc.rest[:0], q.preds[pln.pl:]...)
			pln.rest = sc.rest
			return pln
		}
	}

	// Split predicates into covered (posting lists available) and rest.
	// Forced postings materialises every predicate's index, exactly like
	// the pre-posting engine did.
	force := strat == strategyPostings
	covered := sc.preds[:0]
	rest := sc.rest[:0]
	bestIdx, bestSize := -1, -1
	for _, p := range q.preds {
		var pp predPostings
		var ok bool
		if force {
			pp, ok = s.materialisePP(p)
		} else {
			pp, ok = s.candidatePP(p)
		}
		if !ok {
			rest = append(rest, p)
			continue
		}
		if bestSize < 0 || pp.size < bestSize {
			bestIdx, bestSize = len(covered), pp.size
		}
		covered = append(covered, pp)
	}
	if !force && bestSize < 0 && pln.hi-pln.lo == n {
		// No materialised index and no prefix pruning: this query would
		// pay a full scan. Invest that same O(n) in building the first
		// predicate's index instead — every later query over the
		// attribute rides the posting lists, and the demand flag tells
		// the Store to maintain the index incrementally from the next
		// version on.
		if pp, ok := s.materialisePP(q.preds[0]); ok {
			covered = append(covered, pp)
			bestIdx, bestSize = 0, pp.size
			// rest currently holds every predicate in order; drop the
			// now-covered first one.
			copy(rest, rest[1:])
			rest = rest[:len(rest)-1]
		}
	}
	sc.preds, sc.rest = covered, rest

	if bestSize < 0 || (!force && bestSize >= pln.hi-pln.lo) {
		if force {
			// Ephemeral snapshot: no indexes to force — full scan.
			pln.lo, pln.hi, pln.pl = 0, n, 0
		}
		sc.rest = append(sc.rest[:0], q.preds[pln.pl:]...)
		pln.rest = sc.rest
		return pln
	}

	// Seed from the smallest candidate set; intersect the remaining
	// covered predicates in ascending size order (cheapest cut first).
	covered[0], covered[bestIdx] = covered[bestIdx], covered[0]
	for i := 2; i < len(covered); i++ {
		for j := i; j > 1 && covered[j].size < covered[j-1].size; j-- {
			covered[j], covered[j-1] = covered[j-1], covered[j]
		}
	}
	pln.postings = true
	pln.seed = covered[0]
	pln.others = covered[1:]
	pln.rest = rest
	return pln
}

// execPlan enumerates every tuple the plan's access path yields.
func (s *Snapshot) execPlan(pln *queryPlan, sc *queryScratch, fn func(*schema.Tuple)) {
	if pln.postings {
		s.execPostings(pln, sc, fn)
		return
	}
	if len(pln.rest) == 0 {
		for _, t := range s.tuples[pln.lo:pln.hi] {
			fn(t)
		}
		return
	}
	broad := s.broadMatchNull
	for _, t := range s.tuples[pln.lo:pln.hi] {
		if matchesPreds(t, pln.rest, broad) {
			fn(t)
		}
	}
}

// execPostings runs the intersection plan: for each container of the seed
// predicate's candidate lists (value list, then NULL list — disjoint),
// intersect against every other covered predicate and gather the
// surviving IDs back to tuples.
func (s *Snapshot) execPostings(pln *queryPlan, sc *queryScratch, fn func(*schema.Tuple)) {
	broad := s.broadMatchNull
	for _, part := range [2]*postingList{pln.seed.val, pln.seed.null} {
		if part == nil {
			continue
		}
		for ci := range part.cs {
			c := &part.cs[ci]
			if len(pln.others) == 0 {
				if len(pln.rest) == 0 {
					for _, t := range c.tuples {
						fn(t)
					}
					continue
				}
				for _, t := range c.tuples {
					if matchesPreds(t, pln.rest, broad) {
						fn(t)
					}
				}
				continue
			}
			surv := sc.runIntersect(c, pln.others)
			if len(surv) > 0 {
				c.gatherEmit(surv, pln.rest, broad, fn)
			}
		}
	}
}

// countPostings counts the plan's matches without gathering tuples —
// valid only when every predicate is covered (rest is empty).
func (s *Snapshot) countPostings(pln *queryPlan, sc *queryScratch) int {
	n := 0
	for _, part := range [2]*postingList{pln.seed.val, pln.seed.null} {
		if part == nil {
			continue
		}
		if len(pln.others) == 0 {
			n += part.n
			continue
		}
		for ci := range part.cs {
			n += len(sc.runIntersect(&part.cs[ci], pln.others))
		}
	}
	return n
}

// forEachMatching yields every tuple matching q, choosing the cheapest
// available access path (or the forced one). The set of visited tuples is
// identical for every strategy; only the visit order may differ.
func (s *Snapshot) forEachMatching(q Query, strat strategy, fn func(*schema.Tuple)) {
	sc := getScratch()
	defer putScratch(sc)
	pln := s.plan(q, strat, sc)
	s.execPlan(&pln, sc, fn)
}

// Answer computes the top-k result for q under the given scorer. It is
// the query engine behind Iface.Search; callers that bypass Iface (the
// serving benchmarks) must pass a deterministic scorer for reproducible
// results.
func (s *Snapshot) Answer(q Query, k int, scorer Scorer) Result {
	return s.answerWith(q, k, scorer, strategyAuto)
}

// answerWith is Answer with a forced access path (tests only). Steady
// state it allocates exactly the returned Result slice; everything else
// is pooled scratch.
func (s *Snapshot) answerWith(q Query, k int, scorer Scorer, strat strategy) Result {
	sc := getScratch()
	defer putScratch(sc)
	sc.matches = 0
	pln := s.plan(q, strat, sc)
	if pln.postings && len(pln.rest) == 0 && scorerIsIDPure(scorer) {
		sc.idtop.reset()
		s.scanIDScored(&pln, sc, k)
		return Result{Tuples: sc.idtop.drain(), Overflow: sc.matches > k}
	}
	sc.topk.reset()
	s.execPlan(&pln, sc, func(t *schema.Tuple) {
		sc.matches++
		sc.topk.offer(t, scorer(t), k)
	})
	return Result{Tuples: sc.topk.drain(), Overflow: sc.matches > k}
}

// collectTopK folds s's matches for q into the scratch's running top-k
// (capacity k) and returns the number of matching tuples. The
// scatter-gather path calls it once per shard snapshot, accumulating the
// global top-k across calls on one scratch.
func (s *Snapshot) collectTopK(q Query, k int, scorer Scorer, sc *queryScratch) int {
	sc.matches = 0
	pln := s.plan(q, strategyAuto, sc)
	if pln.postings && len(pln.rest) == 0 && scorerIsIDPure(scorer) {
		// Rank this shard's candidates in the ID domain, then fold the
		// ≤ k retained winners into the cross-shard heap (any global
		// top-k tuple is in its shard's top-k, so folding the retained
		// set loses nothing).
		sc.idtop.reset()
		s.scanIDScored(&pln, sc, k)
		h := &sc.idtop
		for i := range h.ids {
			sc.topk.offer(h.srcC[i].tuples[h.srcP[i]], h.scores[i], k)
		}
		return sc.matches
	}
	s.execPlan(&pln, sc, func(t *schema.Tuple) {
		sc.matches++
		sc.topk.offer(t, scorer(t), k)
	})
	return sc.matches
}
