package tracking

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestHandlerConcurrentReaders hammers every HTTP endpoint from 32
// concurrent clients while the Run loop advances rounds — the service's
// reader contract (immutable views published under the mutex, readers
// never touching the estimator) under the race detector (make race).
func TestHandlerConcurrentReaders(t *testing.T) {
	svc, _ := newLocalService(t, 500, "")
	svc.cfg.MaxRounds = 6
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()

	done := make(chan error, 1)
	go func() { done <- svc.Run(context.Background()) }()

	paths := []string{"/status", "/estimates", "/healthz", "/metrics"}
	var wg sync.WaitGroup
	for c := 0; c < 32; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				resp, err := http.Get(srv.URL + "/v1" + paths[(c+i)%len(paths)])
				if err != nil {
					t.Errorf("client %d: %v", c, err)
					return
				}
				body, err := io.ReadAll(resp.Body)
				resp.Body.Close()
				if err != nil {
					t.Errorf("client %d read: %v", c, err)
					return
				}
				if resp.StatusCode >= 500 && resp.StatusCode != 503 {
					t.Errorf("client %d: %d %s", c, resp.StatusCode, body)
					return
				}
			}
		}(c)
	}
	wg.Wait()

	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("Run did not finish MaxRounds")
	}
	if got := svc.CurrentView().Round; got != 6 {
		t.Fatalf("rounds completed = %d, want 6", got)
	}

	// The metrics endpoint renders the final immutable view, including
	// the speculative-waste counter surfaced for the ROADMAP item.
	resp, err := http.Get(srv.URL + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	raw, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	body := string(raw)
	for _, want := range []string{
		"dynagg_track_rounds_total 6",
		"dynagg_track_queries_total",
		"dynagg_track_wasted_queries_total",
		"dynagg_track_budget_last_round 300",
		"dynagg_track_estimate{aggregate=\"COUNT(*)\"}",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics missing %q:\n%s", want, body)
		}
	}
}
