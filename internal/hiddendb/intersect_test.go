package hiddendb

import (
	"math/rand"
	"testing"
)

// TestBitmapANDUnrollEquivalence pins the 8-way unrolled word-AND kernel
// against the scalar reference across densities from empty to near-full,
// including adversarial shapes: bits clustered inside one 8-word block,
// bits on block boundaries, and alternating blocks.
func TestBitmapANDUnrollEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	dst := make([]uint16, 0, 1<<16)
	build := func(lows []uint16) *idBitmap {
		var b idBitmap
		for _, low := range lows {
			b.set(low)
		}
		return &b
	}
	cases := [][2][]uint16{
		{nil, nil},
		{{0}, {0}},
		{{0, 63, 64, 511, 512, 65535}, {63, 64, 512, 65535}},
		// One dense block, everything else empty.
		{seqRange(1024, 1536), seqRange(1280, 2048)},
	}
	for round := 0; round < 40; round++ {
		na := []int{1, 50, 5000, 40000, 65000}[rng.Intn(5)]
		nb := []int{1, 50, 5000, 40000, 65000}[rng.Intn(5)]
		cases = append(cases, [2][]uint16{randSet(rng, na), randSet(rng, nb)})
	}
	for i, c := range cases {
		a, b := build(c[0]), build(c[1])
		got := andBitmaps(a, b, dst[:0])
		want := andBitmapsScalar(a, b, make([]uint16, 0, len(got)))
		if !eqU16(got, want) {
			t.Fatalf("case %d: unrolled AND diverged: %d IDs, want %d", i, len(got), len(want))
		}
	}
}

func seqRange(lo, hi int) []uint16 {
	out := make([]uint16, 0, hi-lo)
	for x := lo; x < hi; x++ {
		out = append(out, uint16(x))
	}
	return out
}

// BenchmarkBitmapAND is the before/after pair for the unrolled kernel in
// BENCH_load/BENCH_serving tracking: scalar vs 8-way unrolled word-AND at
// sparse (typical multi-predicate intersection) and dense densities.
func BenchmarkBitmapAND(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	for _, tc := range []struct {
		name     string
		a, b     []uint16
		comments string
	}{
		// Uniform-random bits: every 8-word block occupied, so the win
		// comes from register-resident masks, not the block skip.
		{name: "sparse4k", a: randSet(rng, 4096), b: randSet(rng, 4096)},
		{name: "dense32k", a: randSet(rng, 32768), b: randSet(rng, 32768)},
		// ID-clustered lists (attributes correlated with insertion time):
		// each side occupies a band, the AND lives in the overlap and the
		// other ~2/3 of the blocks skip in one branch per 512 bits.
		{name: "clustered", a: seqRange(0, 28000), b: seqRange(20000, 48000)},
	} {
		var ba, bb idBitmap
		for _, low := range tc.a {
			ba.set(low)
		}
		for _, low := range tc.b {
			bb.set(low)
		}
		dst := make([]uint16, 0, 1<<16)
		b.Run(tc.name+"/scalar", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				dst = andBitmapsScalar(&ba, &bb, dst[:0])
			}
		})
		b.Run(tc.name+"/unrolled8", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				dst = andBitmaps(&ba, &bb, dst[:0])
			}
		})
	}
}
