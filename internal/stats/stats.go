// Package stats provides the small statistical substrate used throughout
// the estimators: streaming moments (Welford's algorithm), Bessel-corrected
// sample variance, inverse-variance weighted combination of independent
// estimates, and error metrics (relative error, MSE decomposition).
//
// The paper's estimators lean on three statistical facts:
//
//   - MSE(θ̃) = Bias²(θ̃) + Var(θ̃)                               (paper eq. 1)
//   - the optimal convex combination of independent unbiased estimates
//     weighs each by the inverse of its variance                 (Thm. 4.2)
//   - population variances are approximated by Bessel-corrected sample
//     variances of the drill-down estimates                      (§4.2)
package stats

import (
	"errors"
	"math"
)

// ErrNoData is returned by operations that need at least one observation.
var ErrNoData = errors.New("stats: no observations")

// Running accumulates a stream of float64 observations and exposes their
// count, mean and variance without storing the observations themselves.
// The zero value is ready to use.
//
// It implements Welford's online algorithm, which is numerically stable
// for the long, wide-magnitude streams produced by drill-down estimates
// (a single estimate can be zero or n·∏|Ui| apart).
type Running struct {
	n    int
	mean float64
	m2   float64
}

// Add incorporates one observation.
func (r *Running) Add(x float64) {
	r.n++
	delta := x - r.mean
	r.mean += delta / float64(r.n)
	r.m2 += delta * (x - r.mean)
}

// AddAll incorporates every observation in xs.
func (r *Running) AddAll(xs []float64) {
	for _, x := range xs {
		r.Add(x)
	}
}

// N returns the number of observations added so far.
func (r *Running) N() int { return r.n }

// Mean returns the arithmetic mean of the observations (0 if none).
func (r *Running) Mean() float64 { return r.mean }

// Var returns the Bessel-corrected sample variance (divide by n−1).
// It returns 0 when fewer than two observations have been added.
func (r *Running) Var() float64 {
	if r.n < 2 {
		return 0
	}
	return r.m2 / float64(r.n-1)
}

// PopVar returns the population variance (divide by n). It returns 0 when
// no observations have been added.
func (r *Running) PopVar() float64 {
	if r.n == 0 {
		return 0
	}
	return r.m2 / float64(r.n)
}

// StdDev returns the Bessel-corrected sample standard deviation.
func (r *Running) StdDev() float64 { return math.Sqrt(r.Var()) }

// VarOfMean returns the estimated variance of the sample mean, Var/n.
// It returns 0 when fewer than two observations have been added.
func (r *Running) VarOfMean() float64 {
	if r.n < 2 {
		return 0
	}
	return r.Var() / float64(r.n)
}

// Merge combines another Running into r as if all of o's observations had
// been added to r (parallel-variance / Chan et al. update).
func (r *Running) Merge(o Running) {
	if o.n == 0 {
		return
	}
	if r.n == 0 {
		*r = o
		return
	}
	n := r.n + o.n
	delta := o.mean - r.mean
	mean := r.mean + delta*float64(o.n)/float64(n)
	m2 := r.m2 + o.m2 + delta*delta*float64(r.n)*float64(o.n)/float64(n)
	r.n, r.mean, r.m2 = n, mean, m2
}

// Mean returns the arithmetic mean of xs.
func Mean(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrNoData
	}
	var r Running
	r.AddAll(xs)
	return r.Mean(), nil
}

// SampleVar returns the Bessel-corrected sample variance of xs
// (0 when len(xs) < 2).
func SampleVar(xs []float64) float64 {
	var r Running
	r.AddAll(xs)
	return r.Var()
}

// RelativeError returns |est−truth| / |truth|. When truth is zero it
// returns 0 if est is also zero and +Inf otherwise, mirroring how the
// paper reports relative error for near-zero trans-round aggregates.
func RelativeError(est, truth float64) float64 {
	if truth == 0 {
		if est == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return math.Abs(est-truth) / math.Abs(truth)
}

// WeightedEstimate is one independent unbiased estimate with its variance.
type WeightedEstimate struct {
	Value    float64
	Variance float64
}

// CombineInverseVariance combines independent unbiased estimates by
// inverse-variance weighting, the minimum-variance convex combination
// (paper Theorem 4.2 / Corollary 4.2). It returns the combined value and
// its variance 1/Σ(1/Vi).
//
// Estimates with non-positive variance are treated as exact: if any are
// present, their mean is returned with zero variance (this is the natural
// limit of the weighting as V→0 and keeps the combination well-defined
// when a bootstrap round produces a degenerate zero sample variance).
func CombineInverseVariance(ests []WeightedEstimate) (value, variance float64, err error) {
	if len(ests) == 0 {
		return 0, 0, ErrNoData
	}
	var exact Running
	for _, e := range ests {
		if e.Variance <= 0 {
			exact.Add(e.Value)
		}
	}
	if exact.N() > 0 {
		return exact.Mean(), 0, nil
	}
	var sumW, sumWV float64
	for _, e := range ests {
		w := 1 / e.Variance
		sumW += w
		sumWV += w * e.Value
	}
	return sumWV / sumW, 1 / sumW, nil
}

// MSE decomposes a set of estimation errors against a single truth into
// bias², variance, and their sum (the mean squared error), per paper eq. (1).
func MSE(ests []float64, truth float64) (bias2, variance, mse float64) {
	var r Running
	r.AddAll(ests)
	b := r.Mean() - truth
	return b * b, r.PopVar(), b*b + r.PopVar()
}
