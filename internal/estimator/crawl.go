package estimator

import (
	"github.com/dynagg/dynagg/internal/hiddendb"
	"github.com/dynagg/dynagg/internal/querytree"
	"github.com/dynagg/dynagg/internal/schema"
)

// Crawl is the "track all changes" strawman of the paper's introduction:
// enumerate the entire database through the restrictive interface by a
// depth-first traversal of the query tree, descending only into
// overflowing nodes (a non-overflowing node's result is already complete).
// Once two consecutive snapshots exist, every insertion/deletion is known
// exactly — but as [28] (Sheng et al., VLDB 2012) shows and the paper
// reiterates, the query cost is prohibitive for realistic budgets, which
// is what this implementation demonstrates (BenchmarkAblationCrawl).
type Crawl struct {
	sch  *schema.Schema
	tree *querytree.Tree
}

// NewCrawl builds a crawler over the schema's full query tree.
func NewCrawl(sch *schema.Schema) *Crawl {
	return &Crawl{sch: sch, tree: querytree.New(sch)}
}

// CrawlResult is one crawl attempt's outcome.
type CrawlResult struct {
	// Tuples holds every tuple retrieved (complete snapshot iff Complete).
	Tuples []*schema.Tuple
	// Complete reports whether the traversal finished within budget.
	Complete bool
	// Cost is the number of queries issued.
	Cost int
	// NodesVisited counts tree nodes expanded (diagnostics).
	NodesVisited int
}

// Run crawls until the traversal completes or the session budget dies.
// The caller runs one crawl per round and diffs snapshots itself.
func (c *Crawl) Run(s hiddendb.Searcher) (CrawlResult, error) {
	var res CrawlResult
	seen := make(map[uint64]bool)

	// Iterative DFS over (signature prefix, depth). A frame enumerates the
	// values of its level; sig holds the current prefix.
	sig := make(querytree.Signature, c.tree.Depth())
	type frame struct {
		depth int // level this frame enumerates
		next  int // next value index to try
	}
	var collect = func(r hiddendb.Result) {
		for _, t := range r.Tuples {
			if !seen[t.ID] {
				seen[t.ID] = true
				res.Tuples = append(res.Tuples, t)
			}
		}
	}

	// Query the root first.
	root, err := s.Search(c.tree.Node(sig, 0))
	if err != nil {
		return res, err
	}
	res.Cost++
	res.NodesVisited++
	if !root.Overflow {
		collect(root)
		res.Complete = true
		return res, nil
	}

	stack := []frame{{depth: 0, next: 0}}
	for len(stack) > 0 {
		f := &stack[len(stack)-1]
		attr := c.tree.LevelAttr(f.depth)
		if f.next >= c.sch.DomainSize(attr) {
			stack = stack[:len(stack)-1]
			continue
		}
		sig[f.depth] = uint16(f.next)
		f.next++
		r, err := s.Search(c.tree.Node(sig, f.depth+1))
		if err != nil {
			return res, err
		}
		res.Cost++
		res.NodesVisited++
		if r.Overflow {
			if f.depth+1 >= c.tree.Depth() {
				return res, querytree.ErrLeafOverflow
			}
			stack = append(stack, frame{depth: f.depth + 1})
			continue
		}
		collect(r)
	}
	res.Complete = true
	return res, nil
}
