package hiddendb

import (
	"fmt"
	"math/rand"
	"testing"

	"github.com/dynagg/dynagg/internal/schema"
)

// newNullableTestStore builds a store whose last attribute is nullable,
// with a fraction of NULL values, so the equivalence tests cover both
// NULL policies.
func newNullableTestStore(t testing.TB, seed int64, n int, domains []int, nullFrac float64) *Store {
	t.Helper()
	attrs := make([]schema.Attr, len(domains))
	for i, d := range domains {
		dom := make([]string, d)
		for v := range dom {
			dom[v] = fmt.Sprintf("v%d", v)
		}
		attrs[i] = schema.Attr{Name: fmt.Sprintf("N%d", i+1), Domain: dom, Nullable: i == len(domains)-1}
	}
	sch := schema.New(attrs)
	st := NewStore(sch)
	rng := rand.New(rand.NewSource(seed))
	for st.Size() < n {
		vals := make([]uint16, len(domains))
		for i, d := range domains {
			vals[i] = uint16(rng.Intn(d))
		}
		if rng.Float64() < nullFrac {
			vals[len(domains)-1] = schema.NullCode
		}
		tu := &schema.Tuple{ID: st.NextID(), Vals: vals, Aux: []float64{rng.Float64() * 100}}
		if err := st.Insert(tu); err != nil {
			t.Fatalf("insert: %v", err)
		}
	}
	return st
}

// resultSignature serialises a Result so equivalence means byte-identical.
func resultSignature(r Result) string {
	s := fmt.Sprintf("overflow=%v;", r.Overflow)
	for _, t := range r.Tuples {
		s += fmt.Sprintf("%d:%v:%v;", t.ID, t.Vals, t.Aux)
	}
	return s
}

// randomQueryOver builds a random query, sometimes with NULL predicates,
// sometimes prefix-shaped, sometimes arbitrary.
func randomQueryOver(rng *rand.Rand, sch *schema.Schema) Query {
	var preds []Pred
	for a := 0; a < sch.M(); a++ {
		if rng.Float64() >= 0.4 {
			continue
		}
		v := uint16(rng.Intn(sch.DomainSize(a)))
		if sch.Attr(a).Nullable && rng.Float64() < 0.25 {
			v = schema.NullCode
		}
		preds = append(preds, Pred{Attr: a, Val: v})
	}
	return NewQuery(preds...)
}

// TestSnapshotStrategyEquivalence is the seeded fuzz proof that the three
// access paths — full scan, prefix range, posting-list intersection —
// return byte-identical Results for random queries, scorers, k values and
// both BroadMatchNull settings, and that the cost-based auto strategy
// agrees with all of them (same seeds ⇒ same figures as the pre-refactor
// scan engine, whose behaviour strategyScan reproduces exactly).
func TestSnapshotStrategyEquivalence(t *testing.T) {
	for _, broad := range []bool{false, true} {
		for seed := int64(40); seed < 44; seed++ {
			st := newNullableTestStore(t, seed, 700, []int{6, 5, 4, 5}, 0.15)
			st.SetBroadMatchNull(broad)
			rng := rand.New(rand.NewSource(seed * 31))
			scorers := []struct {
				name string
				fn   Scorer
			}{{"hash", DefaultScorer}, {"aux", AuxScorer(0)}}
			for _, sc := range scorers {
				for qi := 0; qi < 60; qi++ {
					q := randomQueryOver(rng, st.Schema())
					k := []int{1, 7, 40}[qi%3]
					snap := st.Snapshot()
					want := resultSignature(naiveTopK(st, q, k, sc.fn))
					for _, strat := range []strategy{strategyScan, strategyPrefix, strategyPostings, strategyAuto} {
						got := resultSignature(snap.answerWith(q, k, sc.fn, strat))
						if got != want {
							t.Fatalf("broad=%v seed=%d scorer=%s q=%v k=%d strat=%d:\n got %s\nwant %s",
								broad, seed, sc.name, q, k, strat, got, want)
						}
					}
					// Counting must agree with the naive count too.
					naive := 0
					st.ForEach(func(tu *schema.Tuple) {
						if q.Matches(tu, broad) {
							naive++
						}
					})
					if got := snap.CountMatching(q); got != naive {
						t.Fatalf("broad=%v q=%v CountMatching=%d want %d", broad, q, got, naive)
					}
				}
			}
		}
	}
}

// TestSnapshotIsolation proves a published snapshot is frozen: whatever
// churn hits the store afterwards — incremental inserts/deletes, batch
// merges, replaces — the old snapshot keeps answering exactly as at
// publication time, while fresh snapshots see the new state.
func TestSnapshotIsolation(t *testing.T) {
	st := newNullableTestStore(t, 50, 400, []int{5, 4, 6}, 0.1)
	f := NewIface(st, 15, nil)
	rng := rand.New(rand.NewSource(51))
	nextID := uint64(1 << 20)

	queries := make([]Query, 0, 20)
	for i := 0; i < 20; i++ {
		queries = append(queries, randomQueryOver(rng, st.Schema()))
	}
	// Touch non-prefix attributes so posting lists are live and the COW
	// machinery (not just the plain slice) is exercised.
	for _, q := range queries {
		if _, err := f.Search(q); err != nil {
			t.Fatal(err)
		}
	}
	st.Snapshot() // promote demanded attributes into the store index

	for round := 0; round < 15; round++ {
		snap := st.Snapshot()
		frozen := make([]string, len(queries))
		for i, q := range queries {
			frozen[i] = resultSignature(snap.Answer(q, 15, DefaultScorer))
		}
		sizeAt := snap.Size()
		verAt := snap.Version()

		// Churn the store through every mutation path.
		switch round % 4 {
		case 0:
			for i := 0; i < 10; i++ {
				nextID++
				vals := []uint16{uint16(rng.Intn(5)), uint16(rng.Intn(4)), uint16(rng.Intn(6))}
				if err := st.Insert(&schema.Tuple{ID: nextID, Vals: vals, Aux: []float64{1}}); err != nil {
					t.Fatal(err)
				}
			}
		case 1:
			ids := st.IDs()
			for i := 0; i < 10; i++ {
				if _, err := st.Delete(ids[rng.Intn(len(ids))]); err != nil {
					i--
					continue
				}
			}
		case 2:
			var ins []*schema.Tuple
			for i := 0; i < 25; i++ {
				nextID++
				ins = append(ins, &schema.Tuple{
					ID:   nextID,
					Vals: []uint16{uint16(rng.Intn(5)), uint16(rng.Intn(4)), uint16(rng.Intn(6))},
					Aux:  []float64{2},
				})
			}
			ids := st.IDs()
			rng.Shuffle(len(ids), func(i, j int) { ids[i], ids[j] = ids[j], ids[i] })
			if err := st.ApplyBatch(ins, ids[:20]); err != nil {
				t.Fatal(err)
			}
		case 3:
			ids := st.IDs()
			for i := 0; i < 15; i++ {
				id := ids[rng.Intn(len(ids))]
				err := st.Replace(id, func(c *schema.Tuple) {
					c.Vals[rng.Intn(3)] = uint16(rng.Intn(4))
				})
				if err != nil {
					t.Fatal(err)
				}
			}
		}

		// The old snapshot must be bit-for-bit frozen.
		if snap.Size() != sizeAt || snap.Version() != verAt {
			t.Fatalf("round %d: snapshot metadata changed", round)
		}
		for i, q := range queries {
			if got := resultSignature(snap.Answer(q, 15, DefaultScorer)); got != frozen[i] {
				t.Fatalf("round %d: frozen snapshot changed its answer for %v", round, q)
			}
		}
		// A fresh snapshot must agree with the naive reference on the
		// new state (this also re-verifies the incremental index).
		fresh := st.Snapshot()
		if fresh.Version() == verAt {
			t.Fatalf("round %d: version did not advance", round)
		}
		for _, q := range queries {
			got := resultSignature(fresh.Answer(q, 15, DefaultScorer))
			want := resultSignature(naiveTopK(st, q, 15, DefaultScorer))
			if got != want {
				t.Fatalf("round %d: fresh snapshot diverged for %v", round, q)
			}
		}
	}
}

// TestIncrementalIndexMatchesRebuild drives random churn through every
// mutation path and, after each step, compares the incrementally
// maintained posting lists against a from-scratch rebuild — list by list,
// ID by ID.
func TestIncrementalIndexMatchesRebuild(t *testing.T) {
	st := newTestStore(t, 60, 110, []int{5, 4, 6})
	f := NewIface(st, 10, nil)
	rng := rand.New(rand.NewSource(61))
	nextID := uint64(1 << 20)

	// Activate the index on every attribute. Attribute 0 is prefix-covered
	// and never demanded organically, so force it through the postings
	// strategy; the others activate via ordinary non-prefix queries.
	snap0 := st.Snapshot()
	for a := 0; a < 3; a++ {
		snap0.answerWith(NewQuery(Pred{Attr: a, Val: 0}), 10, DefaultScorer, strategyPostings)
	}
	if _, err := f.Search(NewQuery(Pred{Attr: 1, Val: 2})); err != nil {
		t.Fatal(err)
	}
	st.Insert(&schema.Tuple{ID: nextID, Vals: []uint16{0, 0, 0}}) // force promotion round-trip
	nextID++
	st.Snapshot()
	for a := 0; a < 3; a++ {
		if st.idx[a] == nil {
			t.Fatalf("attribute %d not promoted to the store index", a)
		}
	}

	checkIndex := func(step int) {
		t.Helper()
		for a, ai := range st.idx {
			if ai == nil {
				continue
			}
			want := buildAttrIndex(st.tuples, a)
			if len(ai.lists) != len(want.lists) {
				t.Fatalf("step %d attr %d: %d lists, want %d", step, a, len(ai.lists), len(want.lists))
			}
			for v, wl := range want.lists {
				gl := ai.lists[v]
				if err := gl.validate(); err != nil {
					t.Fatalf("step %d attr %d val %d: invalid posting list: %v", step, a, v, err)
				}
				// Container form must match the rebuild exactly (form is a
				// pure function of container cardinality).
				if len(gl.cs) != len(wl.cs) {
					t.Fatalf("step %d attr %d val %d: %d containers, want %d",
						step, a, v, len(gl.cs), len(wl.cs))
				}
				for ci := range wl.cs {
					gc, wc := &gl.cs[ci], &wl.cs[ci]
					if gc.key != wc.key || gc.count() != wc.count() || (gc.bits != nil) != (wc.bits != nil) {
						t.Fatalf("step %d attr %d val %d container %d: key=%d n=%d bitmap=%v, want key=%d n=%d bitmap=%v",
							step, a, v, ci, gc.key, gc.count(), gc.bits != nil, wc.key, wc.count(), wc.bits != nil)
					}
				}
				got := gl.appendTuples(nil)
				exp := wl.appendTuples(nil)
				if len(got) != len(exp) {
					t.Fatalf("step %d attr %d val %d: len %d, want %d", step, a, v, len(got), len(exp))
				}
				for i := range exp {
					if got[i] != exp[i] {
						t.Fatalf("step %d attr %d val %d pos %d: tuple %d, want %d",
							step, a, v, i, got[i].ID, exp[i].ID)
					}
				}
			}
		}
	}

	for step := 0; step < 200; step++ {
		switch rng.Intn(4) {
		case 0:
			nextID++
			vals := []uint16{uint16(rng.Intn(5)), uint16(rng.Intn(4)), uint16(rng.Intn(6))}
			if err := st.Insert(&schema.Tuple{ID: nextID, Vals: vals}); err != nil {
				t.Fatal(err)
			}
		case 1:
			ids := st.IDs()
			if _, err := st.Delete(ids[rng.Intn(len(ids))]); err != nil {
				t.Fatal(err)
			}
		case 2:
			ids := st.IDs()
			err := st.Replace(ids[rng.Intn(len(ids))], func(c *schema.Tuple) {
				c.Vals[rng.Intn(3)] = uint16(rng.Intn(4))
			})
			if err != nil {
				t.Fatal(err)
			}
		case 3:
			var ins []*schema.Tuple
			nIns := rng.Intn(12)
			for i := 0; i < nIns; i++ {
				nextID++
				ins = append(ins, &schema.Tuple{
					ID:   nextID,
					Vals: []uint16{uint16(rng.Intn(5)), uint16(rng.Intn(4)), uint16(rng.Intn(6))},
				})
			}
			ids := st.IDs()
			rng.Shuffle(len(ids), func(i, j int) { ids[i], ids[j] = ids[j], ids[i] })
			nDel := rng.Intn(12)
			if nDel > len(ids) {
				nDel = len(ids)
			}
			if err := st.ApplyBatch(ins, ids[:nDel]); err != nil {
				t.Fatal(err)
			}
		}
		// Publish a snapshot every few steps so COW paths interleave
		// with direct-ownership paths.
		if step%3 == 0 {
			st.Snapshot()
		}
		checkIndex(step)
		sortedInvariant(t, st)
	}
}

// TestSnapshotLazyPromotion checks the demand cycle: a non-prefix query
// builds a lazy per-attribute index on the snapshot, and the next
// publication promotes that attribute into the store's incrementally
// maintained index.
func TestSnapshotLazyPromotion(t *testing.T) {
	st := newTestStore(t, 70, 75, []int{4, 4, 5})
	f := NewIface(st, 10, nil)
	for a := range st.idx {
		if st.idx[a] != nil {
			t.Fatalf("attribute %d indexed before any demand", a)
		}
	}
	// A prefix query must NOT create an index.
	if _, err := f.Search(NewQuery(Pred{Attr: 0, Val: 1})); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Delete(st.IDs()[0]); err != nil {
		t.Fatal(err)
	}
	st.Snapshot()
	for a := range st.idx {
		if st.idx[a] != nil {
			t.Fatalf("attribute %d promoted by a prefix-only workload", a)
		}
	}
	// A non-prefix query demands attribute 1's index...
	if _, err := f.Search(NewQuery(Pred{Attr: 1, Val: 2})); err != nil {
		t.Fatal(err)
	}
	// ...which the next publication promotes.
	if _, err := st.Delete(st.IDs()[0]); err != nil {
		t.Fatal(err)
	}
	st.Snapshot()
	if st.idx[1] == nil {
		t.Fatal("attribute 1 not promoted after non-prefix demand")
	}
	if st.idx[0] != nil || st.idx[2] != nil {
		t.Fatal("undemanded attributes promoted")
	}
}

// TestConcurrentSearchOneIface drives many goroutines through one Iface
// over a frozen round, then lets the (single) harness goroutine apply a
// batch between rounds — the serving pattern. Run under -race this
// enforces the new reader-concurrency contract end to end.
func TestConcurrentSearchOneIface(t *testing.T) {
	st := newNullableTestStore(t, 80, 500, []int{5, 4, 6}, 0.1)
	f := NewIface(st, 10, nil)
	nextID := uint64(1 << 21)

	for round := 0; round < 4; round++ {
		rng := rand.New(rand.NewSource(int64(81 + round)))
		queries := make([]Query, 32)
		for i := range queries {
			queries[i] = randomQueryOver(rng, st.Schema())
		}
		want := make([]string, len(queries))
		for i, q := range queries {
			want[i] = resultSignature(naiveTopK(st, q, 10, DefaultScorer))
		}
		done := make(chan error, 32)
		for g := 0; g < 32; g++ {
			go func(g int) {
				s := f.NewSession(0) // one session per goroutine
				for i := 0; i < 40; i++ {
					q := queries[(g+i)%len(queries)]
					r, err := s.Search(q)
					if err != nil {
						done <- err
						return
					}
					if got := resultSignature(r); got != want[(g+i)%len(queries)] {
						done <- fmt.Errorf("goroutine %d: wrong answer for %v", g, q)
						return
					}
				}
				done <- nil
			}(g)
		}
		for g := 0; g < 32; g++ {
			if err := <-done; err != nil {
				t.Fatal(err)
			}
		}
		// Round boundary: the harness mutates alone.
		var ins []*schema.Tuple
		for i := 0; i < 20; i++ {
			nextID++
			ins = append(ins, &schema.Tuple{
				ID:   nextID,
				Vals: []uint16{uint16(rng.Intn(5)), uint16(rng.Intn(4)), uint16(rng.Intn(6))},
			})
		}
		if err := st.ApplyBatch(ins, st.IDs()[:10]); err != nil {
			t.Fatal(err)
		}
	}
}

// TestQueryKeyCanonical pins the key encoding the cache depends on.
func TestQueryKeyCanonical(t *testing.T) {
	if got := NewQuery().Key(); got != "" {
		t.Errorf("root key = %q, want empty", got)
	}
	q := NewQuery(Pred{Attr: 3, Val: 12}, Pred{Attr: 0, Val: 7})
	if got, want := q.Key(), "0=7;3=12;"; got != want {
		t.Errorf("Key = %q, want %q", got, want)
	}
	n := NewQuery(Pred{Attr: 1, Val: schema.NullCode})
	if got, want := n.Key(), "1=65535;"; got != want {
		t.Errorf("NULL key = %q, want %q", got, want)
	}
}
