// Package httpapi holds the conventions shared by every HTTP surface of
// the system (webiface serving, tracking, fleet control plane): the API
// version tag, the JSON error envelope, and tiny write/decode helpers.
//
// Every error response is the envelope
//
//	{"error": {"code": "bad_request", "message": "..."}}
//
// with a machine-readable code from the Code* constants and a
// human-readable message. Success responses are endpoint-specific JSON.
package httpapi

import (
	"encoding/json"
	"io"
	"net/http"
)

// Version is the current API version. All routes are mounted under
// "/<Version>/" only — the unversioned aliases of the first versioned
// release are gone and 404 like any unknown path. Health endpoints
// report it as "api_version".
const Version = "v1"

// Error codes shared across services.
const (
	CodeBadRequest      = "bad_request"
	CodeNotFound        = "not_found"
	CodeBudgetExhausted = "budget_exhausted"
	CodeUnavailable     = "unavailable"
	CodeInternal        = "internal"
	// CodeConflict rejects a request that contradicts current state: a
	// double freeze or stale publish in the shard epoch handshake, a
	// duplicate fleet task ID. Typical status 409.
	CodeConflict = "conflict"
)

// Error is the machine-readable error payload inside the envelope.
type Error struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

// Error implements the error interface so decoded envelopes can travel as
// Go errors client-side.
func (e *Error) Error() string {
	if e.Message == "" {
		return e.Code
	}
	return e.Code + ": " + e.Message
}

// envelope is the wire shape of every error response.
type envelope struct {
	Error Error `json:"error"`
}

// WriteJSON writes v as a JSON response with the given status code.
func WriteJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// WriteError writes the JSON error envelope with the given status code.
func WriteError(w http.ResponseWriter, status int, code, message string) {
	WriteJSON(w, status, envelope{Error: Error{Code: code, Message: message}})
}

// DecodeError decodes an error envelope from a response body. ok reports
// whether the body actually carried one (legacy plain-text bodies and
// empty bodies return ok=false).
func DecodeError(body io.Reader) (Error, bool) {
	var env envelope
	if err := json.NewDecoder(body).Decode(&env); err != nil {
		return Error{}, false
	}
	if env.Error.Code == "" && env.Error.Message == "" {
		return Error{}, false
	}
	return env.Error, true
}
