package estimator

import (
	"math"
	"math/rand"
	"testing"

	"github.com/dynagg/dynagg/internal/agg"
	"github.com/dynagg/dynagg/internal/hiddendb"
	"github.com/dynagg/dynagg/internal/stats"
	"github.com/dynagg/dynagg/internal/workload"
)

// Tests anchored directly to the paper's theoretical claims.

// §3.2.1 Example 2: on an i.i.d. uniform boolean database that is totally
// regenerated every round (n = 2^(m/2)-ish), a reissued drill down starts
// near level m/2 and consumes fewer queries in expectation than a fresh
// from-root drill down — REISSUE's cost advantage survives even total
// change on this distribution.
func TestBooleanTotalChangeReissueCostAdvantage(t *testing.T) {
	const m = 16
	n := 1 << (m / 2) // 256 tuples over a 2^16 space
	data := workload.Boolean(1, n*4, m)
	env, err := workload.NewEnv(data, n, 2)
	if err != nil {
		t.Fatal(err)
	}
	iface := hiddendb.NewIface(env.Store, 1, nil) // k = 1 as in the example

	re, err := NewReissue(env.Store.Schema(), []*agg.Aggregate{agg.CountAll()}, cfg(3))
	if err != nil {
		t.Fatal(err)
	}
	rs, err := NewRestart(env.Store.Schema(), []*agg.Aggregate{agg.CountAll()}, cfg(3))
	if err != nil {
		t.Fatal(err)
	}

	const g = 200
	var reDrills, restartDrills int
	for round := 1; round <= 8; round++ {
		if round > 1 {
			if err := env.RegenerateAll(); err != nil { // total change
				t.Fatal(err)
			}
		}
		if err := re.Step(iface.NewSession(g)); err != nil {
			t.Fatal(err)
		}
		if err := rs.Step(iface.NewSession(g)); err != nil {
			t.Fatal(err)
		}
		reDrills = re.DrillDowns()
		restartDrills = rs.DrillDowns()
	}
	// Equal budgets: more completed drill downs ⇒ lower per-drill cost.
	if reDrills <= restartDrills {
		t.Errorf("boolean/total change: REISSUE drills %d not above RESTART %d",
			reDrills, restartDrills)
	}
}

// Theorem 3.1 extended: SUM and AVG (with selection) estimates stay
// unbiased across independent runs — the mean over many trials converges
// to the truth on a static database.
func TestSumAvgUnbiasedOverTrials(t *testing.T) {
	data := workload.AutosLikeN(10, 20000, 8)
	env, err := workload.NewEnv(data, 20000, 11)
	if err != nil {
		t.Fatal(err)
	}
	iface := hiddendb.NewIface(env.Store, 100, nil)

	sel := hiddendb.NewQuery(hiddendb.Pred{Attr: 1, Val: 0})
	aggs := []*agg.Aggregate{
		agg.SumOf("SUM(price)", agg.AuxField(0)),
		agg.SumWhere("SUM(price) sel", agg.AuxField(0), sel),
		agg.AvgOf("AVG(price)", agg.AuxField(0)),
	}
	truths := []float64{aggs[0].Truth(env.Store), aggs[1].Truth(env.Store), aggs[2].Truth(env.Store)}

	means := make([]stats.Running, len(aggs))
	for trial := 0; trial < 30; trial++ {
		c := Config{Rand: rand.New(rand.NewSource(int64(5000 + trial)))}
		e, err := NewReissue(env.Store.Schema(), aggs, c)
		if err != nil {
			t.Fatal(err)
		}
		if err := e.Step(iface.NewSession(500)); err != nil {
			t.Fatal(err)
		}
		for i := range aggs {
			est, ok := e.Estimate(i)
			if !ok {
				t.Fatalf("no estimate for %s", aggs[i])
			}
			means[i].Add(est.Value)
		}
	}
	// SUM estimators are unbiased (tight tolerance over 30 trials); AVG is
	// a ratio and only asymptotically unbiased (looser tolerance).
	tolerances := []float64{0.15, 0.25, 0.1}
	for i := range aggs {
		rel := math.Abs(means[i].Mean()-truths[i]) / math.Abs(truths[i])
		if rel > tolerances[i] {
			t.Errorf("%s: mean of 30 trials off by %.1f%% (mean %.0f truth %.0f)",
				aggs[i], rel*100, means[i].Mean(), truths[i])
		}
	}
}

// §4.1's lower bound: on a static database REISSUE's update cost is two
// queries per drill down, so its per-round drill count converges to ~G/2.
func TestReissueStaticCostLowerBound(t *testing.T) {
	data := workload.AutosLikeN(20, 20000, 10)
	env, err := workload.NewEnv(data, 20000, 21)
	if err != nil {
		t.Fatal(err)
	}
	iface := hiddendb.NewIface(env.Store, 100, nil)
	e, err := NewReissue(env.Store.Schema(), []*agg.Aggregate{agg.CountAll()}, cfg(22))
	if err != nil {
		t.Fatal(err)
	}
	const g = 300
	var lastRoundDrills int
	for round := 1; round <= 12; round++ {
		before := e.DrillDowns()
		if err := e.Step(iface.NewSession(g)); err != nil {
			t.Fatal(err)
		}
		lastRoundDrills = e.DrillDowns() - before
	}
	// At steady state the pool saturates at ~G/2 updatable drill downs
	// (each costing exactly 2 queries when nothing changes).
	if lastRoundDrills < g/2-g/10 || lastRoundDrills > g/2+g/10 {
		t.Errorf("steady-state drills/round = %d, want ≈ G/2 = %d", lastRoundDrills, g/2)
	}
}

// Theorem 3.2's qualitative content: under deletions-only change the
// reissued update stays cheap — the expected update cost is far below a
// fresh drill down plus bounded by the occasional roll-up.
func TestUpdateCostUnderDeletionsOnly(t *testing.T) {
	data := workload.AutosLikeN(30, 30000, 10)
	env, err := workload.NewEnv(data, 28000, 31)
	if err != nil {
		t.Fatal(err)
	}
	iface := hiddendb.NewIface(env.Store, 100, nil)
	e, err := NewReissue(env.Store.Schema(), []*agg.Aggregate{agg.CountAll()}, cfg(32))
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Step(iface.NewSession(400)); err != nil {
		t.Fatal(err)
	}
	firstRoundDrills := e.DrillDowns()
	firstRoundCost := float64(e.UsedLastRound()) / float64(firstRoundDrills)

	// Delete 20% and update.
	if err := env.DeleteFraction(0.2); err != nil {
		t.Fatal(err)
	}
	before := e.DrillDowns()
	if err := e.Step(iface.NewSession(400)); err != nil {
		t.Fatal(err)
	}
	updates := e.DrillDowns() - before
	updateCost := float64(e.UsedLastRound()) / float64(updates)
	if updateCost >= firstRoundCost {
		t.Errorf("update cost %.2f not below fresh drill cost %.2f under deletions",
			updateCost, firstRoundCost)
	}
}
