//go:build !race

package webiface

// raceEnabled reports whether the race detector is active; alloc-count
// assertions are skipped under -race because pooling and the detector's
// instrumentation both add allocations.
const raceEnabled = false
