package hiddendb

import (
	"container/heap"
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"testing"

	"github.com/dynagg/dynagg/internal/schema"
)

// The serving fixture: a million-tuple store over 5 attributes with
// domain size 50, built once and shared by every benchmark in this file
// (the store is never mutated here).
const (
	benchN       = 1_000_000
	benchM       = 5
	benchDomain  = 50
	benchK       = 100
	benchPredAtt = benchM - 1 // last attribute: maximally non-prefix
)

var servingFixture struct {
	once sync.Once
	st   *Store
	snap *Snapshot
}

func servingStore(b *testing.B) (*Store, *Snapshot) {
	servingFixture.once.Do(func() {
		sch := schema.Uniform(benchM, benchDomain)
		st := NewStore(sch)
		rng := rand.New(rand.NewSource(1))
		batch := make([]*schema.Tuple, benchN)
		for i := range batch {
			vals := make([]uint16, benchM)
			for a := range vals {
				vals[a] = uint16(rng.Intn(benchDomain))
			}
			batch[i] = &schema.Tuple{ID: uint64(i + 1), Vals: vals}
		}
		if err := st.ApplyBatch(batch, nil); err != nil {
			panic(err)
		}
		snap := st.Snapshot()
		// Warm the last attribute's posting lists so the indexed
		// benchmarks measure steady-state answering, not the one-off
		// lazy build.
		snap.answerWith(NewQuery(Pred{Attr: benchPredAtt, Val: 0}), benchK, DefaultScorer, strategyPostings)
		servingFixture.st, servingFixture.snap = st, snap
	})
	return servingFixture.st, servingFixture.snap
}

// BenchmarkSnapshotPrefixQuery answers selective canonical-prefix queries
// on the million-tuple snapshot (binary-search range path).
func BenchmarkSnapshotPrefixQuery(b *testing.B) {
	_, snap := servingStore(b)
	queries := make([]Query, benchDomain)
	for v := range queries {
		queries[v] = NewQuery(Pred{Attr: 0, Val: uint16(v)}, Pred{Attr: 1, Val: uint16(v)})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		snap.Answer(queries[i%len(queries)], benchK, DefaultScorer)
	}
}

// BenchmarkSnapshotNonPrefixIndexed answers selective non-prefix queries
// (predicate on the last attribute) through the inverted posting lists —
// the path the pre-snapshot engine had to serve with a full O(n) scan.
// Compare against BenchmarkSnapshotNonPrefixScan: the ratio is the
// speedup the index buys at 10^6 tuples (selectivity 1/50 ⇒ ~50×).
func BenchmarkSnapshotNonPrefixIndexed(b *testing.B) {
	_, snap := servingStore(b)
	queries := make([]Query, benchDomain)
	for v := range queries {
		queries[v] = NewQuery(Pred{Attr: benchPredAtt, Val: uint16(v)})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		snap.Answer(queries[i%len(queries)], benchK, DefaultScorer)
	}
}

// BenchmarkSnapshotNonPrefixScan forces the pre-refactor full-scan path
// on the identical queries (the equivalence tests prove the answers are
// byte-identical; only the cost differs).
func BenchmarkSnapshotNonPrefixScan(b *testing.B) {
	_, snap := servingStore(b)
	queries := make([]Query, benchDomain)
	for v := range queries {
		queries[v] = NewQuery(Pred{Attr: benchPredAtt, Val: uint16(v)})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		snap.answerWith(queries[i%len(queries)], benchK, DefaultScorer, strategyScan)
	}
}

// ---------------------------------------------------------------------
// Legacy indexed path (the "before" of this refactor)
// ---------------------------------------------------------------------

// legacyScored and legacyHeap reproduce the container/heap tupleHeap the
// posting-container refactor deleted: every Push boxes a legacyScored
// into an interface value (one escape per retained tuple) and every
// candidate dereferences its tuple to score it. Kept verbatim as a cost
// model so BENCH_serving.json carries a before/after pair for the
// indexed hot path; the equivalence is asserted once per process below.
type legacyScored struct {
	t *schema.Tuple
	s float64
}

type legacyHeap []legacyScored

func (h legacyHeap) Len() int { return len(h) }
func (h legacyHeap) Less(i, j int) bool {
	if h[i].s != h[j].s {
		return h[i].s < h[j].s
	}
	return h[i].t.ID > h[j].t.ID
}
func (h legacyHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *legacyHeap) Push(x any)   { *h = append(*h, x.(legacyScored)) }
func (h *legacyHeap) Pop() any     { old := *h; n := len(old); x := old[n-1]; *h = old[:n-1]; return x }
func (h legacyHeap) rankLess(i, j int) bool {
	if h[i].s != h[j].s {
		return h[i].s > h[j].s
	}
	return h[i].t.ID < h[j].t.ID
}

// legacyRank adapts legacyHeap to the best-first Result order via
// sort.Sort, mirroring the deleted rankSort (interface-based, boxing).
type legacyRank struct{ legacyHeap }

func (r legacyRank) Less(i, j int) bool { return r.legacyHeap.rankLess(i, j) }

// legacyAnswer is the pre-refactor indexed strategy: pick the predicate
// with the smallest candidate lists, walk every candidate tuple, filter
// with the full q.Matches, and rank through the boxing heap.
func legacyAnswer(s *Snapshot, q Query, k int) Result {
	var bestPP predPostings
	best := -1
	for i, p := range q.Preds() {
		pp, ok := s.candidatePP(p)
		if !ok {
			panic("legacyAnswer: index not built")
		}
		if best == -1 || pp.size < bestPP.size {
			best, bestPP = i, pp
		}
	}
	_ = best
	h := &legacyHeap{}
	matches := 0
	emit := func(t *schema.Tuple) {
		if !q.Matches(t, s.broadMatchNull) {
			return
		}
		matches++
		e := legacyScored{t, DefaultScorer(t)}
		if h.Len() < k {
			heap.Push(h, e) // boxes e into an interface — one escape per push
			return
		}
		if e.s > (*h)[0].s || (e.s == (*h)[0].s && e.t.ID < (*h)[0].t.ID) {
			(*h)[0] = e
			heap.Fix(h, 0)
		}
	}
	if bestPP.val != nil {
		bestPP.val.forEachTuple(emit)
	}
	if bestPP.null != nil {
		bestPP.null.forEachTuple(emit)
	}
	sort.Sort(legacyRank{*h})
	out := make([]*schema.Tuple, h.Len())
	for i, e := range *h {
		out[i] = e.t
	}
	return Result{Tuples: out, Overflow: matches > k}
}

// BenchmarkSnapshotNonPrefixLegacy runs the identical non-prefix
// workload as BenchmarkSnapshotNonPrefixIndexed through the pre-refactor
// path. The name matches the bench-serving filter, so the JSON artifact
// records this before/after pair (ns/op AND allocs/op) side by side.
func BenchmarkSnapshotNonPrefixLegacy(b *testing.B) {
	_, snap := servingStore(b)
	queries := make([]Query, benchDomain)
	for v := range queries {
		queries[v] = NewQuery(Pred{Attr: benchPredAtt, Val: uint16(v)})
	}
	// Guard that the cost model still answers correctly before timing it.
	want := snap.Answer(queries[0], benchK, DefaultScorer)
	got := legacyAnswer(snap, queries[0], benchK)
	if got.Overflow != want.Overflow || len(got.Tuples) != len(want.Tuples) {
		b.Fatalf("legacy path diverged: %d/%v tuples, want %d/%v",
			len(got.Tuples), got.Overflow, len(want.Tuples), want.Overflow)
	}
	for i := range got.Tuples {
		if got.Tuples[i] != want.Tuples[i] {
			b.Fatalf("legacy path diverged at rank %d", i)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		legacyAnswer(snap, queries[i%len(queries)], benchK)
	}
}

// fmtKey is the pre-refactor fmt.Fprintf encoder, kept for the
// allocation comparison below.
func fmtKey(q Query) string {
	var sb strings.Builder
	sb.Grow(len(q.Preds()) * 8)
	for _, p := range q.Preds() {
		fmt.Fprintf(&sb, "%d=%d;", p.Attr, p.Val)
	}
	return sb.String()
}

// BenchmarkQueryKey compares the strconv-based cache-key encoder against
// the fmt-based one it replaced. Key() runs once per search on the hot
// path; -benchmem shows the allocation drop (1 alloc vs 2 per predicate).
func BenchmarkQueryKey(b *testing.B) {
	q := NewQuery(
		Pred{Attr: 0, Val: 3}, Pred{Attr: 2, Val: 300},
		Pred{Attr: 5, Val: 1337}, Pred{Attr: 11, Val: 9},
	)
	b.Run("strconv", func(b *testing.B) {
		// The pooled-buffer encoder must allocate only the returned
		// string — enforced, not just reported.
		if allocs := testing.AllocsPerRun(200, func() {
			if q.Key() == "" {
				b.Fatal("empty key")
			}
		}); allocs > 1 {
			b.Fatalf("Query.Key: %.1f allocs/op, want ≤1", allocs)
		}
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if q.Key() == "" {
				b.Fatal("empty key")
			}
		}
	})
	b.Run("fmt", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if fmtKey(q) == "" {
				b.Fatal("empty key")
			}
		}
	})
}
