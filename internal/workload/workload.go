// Package workload generates the datasets and update schedules of the
// paper's experimental evaluation (§6.1).
//
// The paper's primary offline dataset is a Yahoo! Autos snapshot
// (188,917 distinct tuples, 38 categorical attributes with domain sizes
// between 2 and 38). The snapshot is not redistributable, so AutosLike
// synthesises a table with exactly the published shape: same cardinality,
// same attribute count, domain sizes spanning 2–38, and skewed value
// frequencies. Since the estimators interact with the data only through
// drill downs, their behaviour is governed by n, m, the |Ui| and the
// value skew — all matched here (see DESIGN.md, "Substitutions").
//
// Update schedules implement the paper's round-update model: the default
// Yahoo! Autos schedule starts with 170,000 tuples and, per round, inserts
// 300 random pool tuples not currently in the database and deletes 0.1% of
// the existing ones.
package workload

import (
	"fmt"
	"math"
	"math/rand"

	"github.com/dynagg/dynagg/internal/hiddendb"
	"github.com/dynagg/dynagg/internal/schema"
)

// Dataset is a generated universe of distinct tuples plus a generator for
// fresh tuples beyond the pool (schedules that insert more tuples than the
// pool holds synthesise new distinct ones on demand).
//
// Ownership: a Dataset is single-goroutine — fresh-tuple generation
// mutates the internal key set — so every concurrently-running trial must
// build its own (the harness derives one per trial from seed+trialIndex).
// The Schema it references is immutable and safely shared.
type Dataset struct {
	// Schema of every tuple.
	Schema *schema.Schema
	// Pool holds the pre-generated distinct tuples. Pool tuples carry no
	// IDs; Env assigns store IDs at insertion time.
	Pool []*schema.Tuple

	keys    map[string]bool
	genVals func(rng *rand.Rand) []uint16
	genAux  func(rng *rand.Rand, vals []uint16) []float64
}

// autosDomainSizes is the 38-attribute domain-size profile (range 2–38,
// matching the published statistics of the Yahoo! Autos snapshot).
var autosDomainSizes = []int{
	38, 30, 25, 22, 20, 18, 16, 15, 14, 13,
	12, 11, 10, 10, 9, 9, 8, 8, 7, 7,
	6, 6, 5, 5, 5, 4, 4, 4, 3, 3,
	3, 3, 2, 2, 2, 2, 2, 2,
}

// AutosSize is the tuple count of the Yahoo! Autos snapshot.
const AutosSize = 188917

// AutosLike generates the full Autos-shaped dataset (188,917 tuples,
// 38 attributes). Generation is deterministic in the seed.
func AutosLike(seed int64) *Dataset {
	return AutosLikeN(seed, AutosSize, len(autosDomainSizes))
}

// AutosLikeN generates an Autos-shaped dataset with n tuples over the
// first m of the 38 Autos attributes (m ≤ 38). Smaller configurations are
// used by unit tests and by the m-sweep (Fig 11) / small-database figures.
func AutosLikeN(seed int64, n, m int) *Dataset {
	if m < 1 || m > len(autosDomainSizes) {
		panic(fmt.Sprintf("workload: m=%d out of range [1,%d]", m, len(autosDomainSizes)))
	}
	attrs := make([]schema.Attr, m)
	for i := 0; i < m; i++ {
		dom := make([]string, autosDomainSizes[i])
		for v := range dom {
			dom[v] = fmt.Sprintf("a%d_v%d", i, v)
		}
		attrs[i] = schema.Attr{Name: fmt.Sprintf("A%d", i+1), Domain: dom}
	}
	sch := schema.New(attrs)

	// Skewed per-attribute value distribution: p(v) ∝ 1/√(v+1), a mild
	// Zipf-like profile producing the broad-then-narrow drill-down
	// behaviour of real categorical web data. (A full Zipf exponent of 1
	// across 38 attributes compounds into astronomically heavy
	// Horvitz–Thompson tails — deep all-common-value paths with tiny p(q)
	// and thousands of tuples — which real relational snapshots do not
	// exhibit.)
	cum := make([][]float64, m)
	for i := 0; i < m; i++ {
		d := autosDomainSizes[i]
		c := make([]float64, d)
		total := 0.0
		for v := 0; v < d; v++ {
			total += 1 / math.Sqrt(float64(v+1))
			c[v] = total
		}
		for v := range c {
			c[v] /= total
		}
		cum[i] = c
	}
	genVals := func(rng *rand.Rand) []uint16 {
		vals := make([]uint16, m)
		for i := 0; i < m; i++ {
			x := rng.Float64()
			c := cum[i]
			lo := 0
			for lo < len(c)-1 && c[lo] < x {
				lo++
			}
			vals[i] = uint16(lo)
		}
		return vals
	}
	// Price-like auxiliary payload: a base driven by the first attribute
	// (vehicle "make") with log-normal-ish noise. Non-searchable; used by
	// SUM/AVG aggregates.
	genAux := func(rng *rand.Rand, vals []uint16) []float64 {
		base := 5000 + 900*float64(vals[0])
		price := base * (0.5 + rng.Float64())
		return []float64{price}
	}
	return generate(seed, n, sch, genVals, genAux)
}

// Scalable generates a uniform dataset of n tuples over m attributes with
// the given domain size — the |D1| sweep of Fig 12 (m = 50). Tuples carry
// no auxiliary payload.
func Scalable(seed int64, n, m, domainSize int) *Dataset {
	sch := schema.Uniform(m, domainSize)
	genVals := func(rng *rand.Rand) []uint16 {
		vals := make([]uint16, m)
		for i := range vals {
			vals[i] = uint16(rng.Intn(domainSize))
		}
		return vals
	}
	return generate(seed, n, sch, genVals, nil)
}

// Boolean generates an i.i.d. uniform boolean dataset (the §3.2.1
// "total change" example shape).
func Boolean(seed int64, n, m int) *Dataset {
	return Scalable(seed, n, m, 2)
}

// Custom generates a dataset over an arbitrary schema with caller-supplied
// value and aux generators (used by the live-site simulators). genVals
// must return value vectors drawn from the schema's domains; genAux may be
// nil.
func Custom(seed int64, n int, sch *schema.Schema,
	genVals func(rng *rand.Rand) []uint16,
	genAux func(rng *rand.Rand, vals []uint16) []float64) *Dataset {
	return generate(seed, n, sch, genVals, genAux)
}

// generate fills a dataset with n distinct tuples.
func generate(seed int64, n int, sch *schema.Schema, genVals func(*rand.Rand) []uint16,
	genAux func(*rand.Rand, []uint16) []float64) *Dataset {

	capacity := 1.0
	for i := 0; i < sch.M(); i++ {
		capacity *= float64(sch.DomainSize(i))
		if capacity > 1e15 {
			break
		}
	}
	if float64(n) > capacity/2 {
		panic(fmt.Sprintf("workload: %d tuples exceed half the key space (%.0f)", n, capacity))
	}

	rng := rand.New(rand.NewSource(seed))
	d := &Dataset{
		Schema:  sch,
		keys:    make(map[string]bool, n),
		genVals: genVals,
		genAux:  genAux,
	}
	d.Pool = make([]*schema.Tuple, 0, n)
	for len(d.Pool) < n {
		d.Pool = append(d.Pool, d.fresh(rng))
	}
	return d
}

// fresh generates one new tuple distinct from everything generated so far.
func (d *Dataset) fresh(rng *rand.Rand) *schema.Tuple {
	for attempt := 0; ; attempt++ {
		vals := d.genVals(rng)
		if attempt > 64 {
			// Heavily collided region of a skewed distribution: perturb the
			// widest attribute uniformly to escape.
			widest := 0
			for i := 1; i < d.Schema.M(); i++ {
				if d.Schema.DomainSize(i) > d.Schema.DomainSize(widest) {
					widest = i
				}
			}
			vals[widest] = uint16(rng.Intn(d.Schema.DomainSize(widest)))
		}
		t := &schema.Tuple{Vals: vals}
		if d.keys[t.Key()] {
			continue
		}
		d.keys[t.Key()] = true
		if d.genAux != nil {
			t.Aux = d.genAux(rng, vals)
		}
		return t
	}
}

// Env binds a dataset to a live store and tracks which pool tuples are
// currently inside the database, so schedules can insert "random tuples
// not currently in the database" and return deleted tuples to the pool —
// the paper's default Yahoo! Autos insertion/deletion model.
//
// Ownership: single-goroutine, like the Store and Dataset it drives; one
// Env belongs to one trial's worker goroutine.
type Env struct {
	Data  *Dataset
	Store *hiddendb.Store
	Rng   *rand.Rand

	free     []int          // pool indexes currently outside the database
	originOf map[uint64]int // store ID → pool index (fresh tuples: -1)
}

// NewEnv creates a store preloaded with `initial` uniformly chosen pool
// tuples. All randomness flows from the seed, so two environments built
// with the same arguments evolve identically (the harness relies on this
// to give every estimator an identical database history).
func NewEnv(data *Dataset, initial int, seed int64) (*Env, error) {
	if initial > len(data.Pool) {
		return nil, fmt.Errorf("workload: initial size %d exceeds pool %d", initial, len(data.Pool))
	}
	e := &Env{
		Data:     data,
		Store:    hiddendb.NewStore(data.Schema),
		Rng:      rand.New(rand.NewSource(seed)),
		originOf: make(map[uint64]int),
	}
	perm := e.Rng.Perm(len(data.Pool))
	var batch []*schema.Tuple
	for i, poolIdx := range perm {
		if i < initial {
			t := data.Pool[poolIdx].Clone(e.Store.NextID())
			e.originOf[t.ID] = poolIdx
			batch = append(batch, t)
		} else {
			e.free = append(e.free, poolIdx)
		}
	}
	if err := e.Store.ApplyBatch(batch, nil); err != nil {
		return nil, err
	}
	return e, nil
}

// InsertFromPool inserts n uniformly chosen pool tuples that are not
// currently in the database; when the pool runs dry it falls back to
// freshly generated tuples so long schedules never stall. Small batches
// (constant-update simulations insert one tuple at a time) take the
// incremental path to avoid the full merge pass.
func (e *Env) InsertFromPool(n int) error {
	var batch []*schema.Tuple
	for i := 0; i < n; i++ {
		if len(e.free) == 0 {
			t := e.Data.fresh(e.Rng)
			t = t.Clone(e.Store.NextID())
			e.originOf[t.ID] = -1
			batch = append(batch, t)
			continue
		}
		j := e.Rng.Intn(len(e.free))
		poolIdx := e.free[j]
		e.free[j] = e.free[len(e.free)-1]
		e.free = e.free[:len(e.free)-1]
		t := e.Data.Pool[poolIdx].Clone(e.Store.NextID())
		e.originOf[t.ID] = poolIdx
		batch = append(batch, t)
	}
	if len(batch) <= 4 {
		for _, t := range batch {
			if err := e.Store.Insert(t); err != nil {
				return err
			}
		}
		return nil
	}
	return e.Store.ApplyBatch(batch, nil)
}

// InsertFresh inserts n brand-new distinct tuples (used by the big-change
// schedules that outgrow the pool).
func (e *Env) InsertFresh(n int) error {
	var batch []*schema.Tuple
	for i := 0; i < n; i++ {
		t := e.Data.fresh(e.Rng).Clone(e.Store.NextID())
		e.originOf[t.ID] = -1
		batch = append(batch, t)
	}
	return e.Store.ApplyBatch(batch, nil)
}

// DeleteRandom deletes n uniformly chosen tuples (or every tuple if fewer
// remain). Pool-origin tuples return to the available pool. Single
// victims (constant-update simulations) take the incremental path.
func (e *Env) DeleteRandom(n int) error {
	if n <= 2 && e.Store.Size() > 0 {
		for i := 0; i < n && e.Store.Size() > 0; i++ {
			id := e.Store.At(e.Rng.Intn(e.Store.Size())).ID
			if poolIdx, ok := e.originOf[id]; ok && poolIdx >= 0 {
				e.free = append(e.free, poolIdx)
			}
			delete(e.originOf, id)
			if _, err := e.Store.Delete(id); err != nil {
				return err
			}
		}
		return nil
	}
	ids := e.Store.IDs()
	if n >= len(ids) {
		n = len(ids)
	}
	e.Rng.Shuffle(len(ids), func(i, j int) { ids[i], ids[j] = ids[j], ids[i] })
	victims := ids[:n]
	for _, id := range victims {
		if poolIdx, ok := e.originOf[id]; ok && poolIdx >= 0 {
			e.free = append(e.free, poolIdx)
		}
		delete(e.originOf, id)
	}
	return e.Store.ApplyBatch(nil, victims)
}

// DeleteFraction deletes ⌊f·|D|⌋ uniformly chosen tuples.
func (e *Env) DeleteFraction(f float64) error {
	return e.DeleteRandom(int(f * float64(e.Store.Size())))
}

// RegenerateAll replaces the entire database with an equal number of
// random tuples (the §3.2.1 "total change" extreme).
func (e *Env) RegenerateAll() error {
	n := e.Store.Size()
	if err := e.DeleteRandom(n); err != nil {
		return err
	}
	return e.InsertFromPool(n)
}

// MutateAux replaces the aux payload of a random fraction of tuples —
// in-place updates such as price changes (live-experiment simulators).
func (e *Env) MutateAux(frac float64, mutate func(aux []float64, rng *rand.Rand)) error {
	return e.MutateAuxWhere(frac, nil, mutate)
}

// MutateAuxWhere is MutateAux restricted to tuples matching pred
// (nil pred matches everything): frac of the matching tuples get their aux
// payload rewritten. Tuple identity (ID, searchable values) is preserved.
func (e *Env) MutateAuxWhere(frac float64, pred func(*schema.Tuple) bool,
	mutate func(aux []float64, rng *rand.Rand)) error {

	var ids []uint64
	e.Store.ForEach(func(t *schema.Tuple) {
		if pred == nil || pred(t) {
			ids = append(ids, t.ID)
		}
	})
	n := int(frac * float64(len(ids)))
	e.Rng.Shuffle(len(ids), func(i, j int) { ids[i], ids[j] = ids[j], ids[i] })
	for _, id := range ids[:n] {
		err := e.Store.Replace(id, func(c *schema.Tuple) {
			if c.Aux == nil {
				c.Aux = []float64{0}
			}
			mutate(c.Aux, e.Rng)
		})
		if err != nil {
			return err
		}
	}
	return nil
}

// DeleteWhere deletes frac of the tuples matching pred, returning
// pool-origin victims to the pool.
func (e *Env) DeleteWhere(frac float64, pred func(*schema.Tuple) bool) error {
	var ids []uint64
	e.Store.ForEach(func(t *schema.Tuple) {
		if pred == nil || pred(t) {
			ids = append(ids, t.ID)
		}
	})
	n := int(frac * float64(len(ids)))
	e.Rng.Shuffle(len(ids), func(i, j int) { ids[i], ids[j] = ids[j], ids[i] })
	victims := ids[:n]
	for _, id := range victims {
		if poolIdx, ok := e.originOf[id]; ok && poolIdx >= 0 {
			e.free = append(e.free, poolIdx)
		}
		delete(e.originOf, id)
	}
	return e.Store.ApplyBatch(nil, victims)
}

// Schedule mutates the environment at the start of a round (round-update
// model). Rounds are numbered from 1; round 1 is the initial state, so
// schedules are applied from round 2 onward by the harness.
type Schedule func(round int, env *Env) error

// Static returns a schedule that never changes the database.
func Static() Schedule {
	return func(int, *Env) error { return nil }
}

// PoolChurn returns the paper's default-style schedule: per round, insert
// insertN pool tuples and delete a deleteFrac fraction (applied before
// insertion, matching "delete 0.1% of the existing tuples").
func PoolChurn(insertN int, deleteFrac float64) Schedule {
	return func(_ int, env *Env) error {
		if err := env.DeleteFraction(deleteFrac); err != nil {
			return err
		}
		return env.InsertFromPool(insertN)
	}
}

// FreshChurn inserts insertN brand-new tuples and deletes deleteFrac of
// the existing ones per round (the big-change schedules, Figs 6–7, 17).
func FreshChurn(insertN int, deleteFrac float64) Schedule {
	return func(_ int, env *Env) error {
		if err := env.DeleteFraction(deleteFrac); err != nil {
			return err
		}
		return env.InsertFresh(insertN)
	}
}

// NetChange inserts n tuples per round when n > 0 or deletes |n| when
// n < 0 (the Fig 10 sweep from −3000 to +3000 per 100 rounds).
func NetChange(n int) Schedule {
	return func(_ int, env *Env) error {
		if n >= 0 {
			return env.InsertFromPool(n)
		}
		return env.DeleteRandom(-n)
	}
}

// TotalChange regenerates the whole database every round (§3.2.1
// example 2).
func TotalChange() Schedule {
	return func(_ int, env *Env) error { return env.RegenerateAll() }
}

// Compose applies schedules in order.
func Compose(ss ...Schedule) Schedule {
	return func(round int, env *Env) error {
		for _, s := range ss {
			if err := s(round, env); err != nil {
				return err
			}
		}
		return nil
	}
}
