package workload

import (
	"fmt"
	"math/rand"

	"github.com/dynagg/dynagg/internal/hiddendb"
	"github.com/dynagg/dynagg/internal/schema"
)

// ShardedEnv is Env over a hash-partitioned ShardedStore: the same pool
// bookkeeping and churn operations, with each batch applied by one
// mutator goroutine per shard (ApplyBatchParallel). Built with the same
// (data, initial, seed) as an Env it loads the identical tuple set with
// identical IDs — the shard-equivalence tests rely on this to mirror
// churn across a sharded and an unsharded store.
//
// Ownership: single-goroutine, like Env. The per-shard parallelism lives
// inside each batch application, not across callers.
type ShardedEnv struct {
	Data  *Dataset
	Store *hiddendb.ShardedStore
	Rng   *rand.Rand

	free     []int          // pool indexes currently outside the database
	originOf map[uint64]int // store ID → pool index (fresh tuples: -1)
}

// NewShardedEnv creates a sharded store preloaded with `initial`
// uniformly chosen pool tuples, drawing from the same seeded RNG stream
// as NewEnv.
func NewShardedEnv(data *Dataset, initial int, seed int64, shards int) (*ShardedEnv, error) {
	if initial > len(data.Pool) {
		return nil, fmt.Errorf("workload: initial size %d exceeds pool %d", initial, len(data.Pool))
	}
	e := &ShardedEnv{
		Data:     data,
		Store:    hiddendb.NewShardedStore(data.Schema, shards),
		Rng:      rand.New(rand.NewSource(seed)),
		originOf: make(map[uint64]int),
	}
	perm := e.Rng.Perm(len(data.Pool))
	var batch []*schema.Tuple
	for i, poolIdx := range perm {
		if i < initial {
			t := data.Pool[poolIdx].Clone(e.Store.NextID())
			e.originOf[t.ID] = poolIdx
			batch = append(batch, t)
		} else {
			e.free = append(e.free, poolIdx)
		}
	}
	if err := e.Store.ApplyBatchParallel(batch, nil); err != nil {
		return nil, err
	}
	return e, nil
}

// InsertFromPool inserts n uniformly chosen pool tuples not currently in
// the database (falling back to fresh tuples when the pool runs dry),
// applied with one mutator goroutine per shard.
func (e *ShardedEnv) InsertFromPool(n int) error {
	var batch []*schema.Tuple
	for i := 0; i < n; i++ {
		if len(e.free) == 0 {
			t := e.Data.fresh(e.Rng)
			t = t.Clone(e.Store.NextID())
			e.originOf[t.ID] = -1
			batch = append(batch, t)
			continue
		}
		j := e.Rng.Intn(len(e.free))
		poolIdx := e.free[j]
		e.free[j] = e.free[len(e.free)-1]
		e.free = e.free[:len(e.free)-1]
		t := e.Data.Pool[poolIdx].Clone(e.Store.NextID())
		e.originOf[t.ID] = poolIdx
		batch = append(batch, t)
	}
	return e.Store.ApplyBatchParallel(batch, nil)
}

// DeleteRandom deletes n uniformly chosen tuples (or every tuple if
// fewer remain), returning pool-origin tuples to the available pool.
func (e *ShardedEnv) DeleteRandom(n int) error {
	ids := e.Store.IDs()
	if n >= len(ids) {
		n = len(ids)
	}
	e.Rng.Shuffle(len(ids), func(i, j int) { ids[i], ids[j] = ids[j], ids[i] })
	victims := ids[:n]
	for _, id := range victims {
		if poolIdx, ok := e.originOf[id]; ok && poolIdx >= 0 {
			e.free = append(e.free, poolIdx)
		}
		delete(e.originOf, id)
	}
	return e.Store.ApplyBatchParallel(nil, victims)
}

// DeleteFraction deletes ⌊f·|D|⌋ uniformly chosen tuples.
func (e *ShardedEnv) DeleteFraction(f float64) error {
	return e.DeleteRandom(int(f * float64(e.Store.Size())))
}
