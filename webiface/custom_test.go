package webiface

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strconv"
	"testing"

	"github.com/dynagg/dynagg/internal/hiddendb"
	"github.com/dynagg/dynagg/internal/schema"
)

// A site-specific adapter: the "site" speaks a completely different wire
// format (predicates as q=attr.value pairs joined by commas, results as a
// CSV-ish JSON), and the client bridges it with a custom RequestFunc /
// ParseFunc pair — the mechanism a real Amazon/eBay adapter would use.
func TestCustomWireFormat(t *testing.T) {
	env, _ := newServer(t, 42, 4000, 25)
	iface := hiddendb.NewIface(env.Store, 25, nil)

	// The alien site.
	alien := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch r.URL.Path {
		case "/meta":
			sch := iface.Schema()
			out := map[string]any{"pageSize": iface.K()}
			var attrs []map[string]any
			for i := 0; i < sch.M(); i++ {
				attrs = append(attrs, map[string]any{
					"label":  sch.Attr(i).Name,
					"values": sch.Attr(i).Domain,
				})
			}
			out["fields"] = attrs
			_ = json.NewEncoder(w).Encode(out)
		case "/find":
			var preds []hiddendb.Pred
			if q := r.URL.Query().Get("q"); q != "" {
				for _, part := range splitNonEmpty(q, ',') {
					var a, v int
					if _, err := fmt.Sscanf(part, "%d.%d", &a, &v); err != nil {
						http.Error(w, "bad q", http.StatusBadRequest)
						return
					}
					preds = append(preds, hiddendb.Pred{Attr: a, Val: uint16(v)})
				}
			}
			res, err := iface.Search(hiddendb.NewQuery(preds...))
			if err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
				return
			}
			out := map[string]any{"more": res.Overflow}
			var rows [][]string
			for _, tu := range res.Tuples {
				row := []string{strconv.FormatUint(tu.ID, 10)}
				for _, v := range tu.Vals {
					row = append(row, strconv.Itoa(int(v)))
				}
				rows = append(rows, row)
			}
			out["rows"] = rows
			_ = json.NewEncoder(w).Encode(out)
		default:
			http.NotFound(w, r)
		}
	}))
	defer alien.Close()

	// The adapter: schema comes from elsewhere (here: we know it), the
	// request/parse hooks translate the wire format.
	reqFn := func(ctx context.Context, base string, q hiddendb.Query) (*http.Request, error) {
		qs := ""
		for i, p := range q.Preds() {
			if i > 0 {
				qs += ","
			}
			qs += fmt.Sprintf("%d.%d", p.Attr, p.Val)
		}
		u := base + "/find"
		if qs != "" {
			u += "?q=" + qs
		}
		return http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	}
	parseFn := func(resp *http.Response) (hiddendb.Result, error) {
		var raw struct {
			More bool       `json:"more"`
			Rows [][]string `json:"rows"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&raw); err != nil {
			return hiddendb.Result{}, err
		}
		out := hiddendb.Result{Overflow: raw.More}
		for _, row := range raw.Rows {
			id, err := strconv.ParseUint(row[0], 10, 64)
			if err != nil {
				return hiddendb.Result{}, err
			}
			vals := make([]uint16, len(row)-1)
			for i, cell := range row[1:] {
				v, err := strconv.Atoi(cell)
				if err != nil {
					return hiddendb.Result{}, err
				}
				vals[i] = uint16(v)
			}
			out.Tuples = append(out.Tuples, &schema.Tuple{ID: id, Vals: vals})
		}
		return out, nil
	}

	// Dial needs /schema; the alien site doesn't serve it, so build the
	// client against a local schema mirror and the custom hooks.
	c := &Client{
		base: alien.URL,
		sch:  iface.Schema(),
		k:    iface.K(),
		http: http.DefaultClient,
		opts: ClientOptions{Request: reqFn, Parse: parseFn, Retries: 1},
	}

	queries := []hiddendb.Query{
		hiddendb.NewQuery(),
		hiddendb.NewQuery(hiddendb.Pred{Attr: 0, Val: 1}),
		hiddendb.NewQuery(hiddendb.Pred{Attr: 0, Val: 3}, hiddendb.Pred{Attr: 2, Val: 2}),
	}
	for _, q := range queries {
		got, err := c.Search(q)
		if err != nil {
			t.Fatalf("%v: %v", q, err)
		}
		want, _ := iface.Search(q)
		if got.Overflow != want.Overflow || len(got.Tuples) != len(want.Tuples) {
			t.Fatalf("%v: got (%d,%v) want (%d,%v)",
				q, len(got.Tuples), got.Overflow, len(want.Tuples), want.Overflow)
		}
		for i := range got.Tuples {
			if got.Tuples[i].ID != want.Tuples[i].ID {
				t.Fatalf("%v rank %d differs", q, i)
			}
		}
	}
}

func splitNonEmpty(s string, sep rune) []string {
	var out []string
	cur := ""
	for _, r := range s {
		if r == sep {
			if cur != "" {
				out = append(out, cur)
			}
			cur = ""
			continue
		}
		cur += string(r)
	}
	if cur != "" {
		out = append(out, cur)
	}
	return out
}
