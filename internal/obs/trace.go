package obs

import (
	"context"
	"encoding/json"
	"math/rand"
	"net/http"
	"sync"
	"sync/atomic"
	"time"
)

// TraceHeader is the cross-process request-correlation header. The
// router stamps it on every incoming query (honouring an existing value
// so external callers can bring their own IDs), webiface.Client
// forwards it on each fan-out hop, and each daemon's request log and
// structured logs carry it — so one slow query can be followed from the
// router's /v1/debug/requests entry to the shard daemon's.
const TraceHeader = "X-Dynagg-Trace"

// traceSeed randomises the per-process trace namespace so IDs from
// different daemons never collide; traceCtr orders IDs within it.
var (
	traceSeed = rand.Uint64()
	traceCtr  atomic.Uint64
)

// NewTraceID returns a 16-hex-digit process-unique trace ID.
func NewTraceID() string {
	// SplitMix64 finalizer over seed+counter: cheap, well-mixed, and
	// every process draws from its own random namespace.
	x := traceSeed + traceCtr.Add(1)*0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	x ^= x >> 31
	var buf [16]byte
	const hex = "0123456789abcdef"
	for i := range buf {
		buf[i] = hex[x>>(60-4*i)&0xf]
	}
	return string(buf[:])
}

type traceKey struct{}

// WithTrace returns a context carrying the trace ID, the plumb between
// a router handler and the webiface.Client hops it fans out on.
func WithTrace(ctx context.Context, id string) context.Context {
	if id == "" {
		return ctx
	}
	return context.WithValue(ctx, traceKey{}, id)
}

// TraceID extracts the context's trace ID ("" when none is set).
func TraceID(ctx context.Context) string {
	id, _ := ctx.Value(traceKey{}).(string)
	return id
}

// ShardTiming is one shard's share of a routed request, recorded in the
// router's request log so a slow fan-out attributes its tail.
type ShardTiming struct {
	Shard      int     `json:"shard"`
	DurationMs float64 `json:"duration_ms"`
	Error      string  `json:"error,omitempty"`
}

// RequestRecord is one entry in a daemon's recent-request ring.
type RequestRecord struct {
	Time       time.Time     `json:"time"`
	Trace      string        `json:"trace,omitempty"`
	Route      string        `json:"route"`
	Status     int           `json:"status"`
	DurationMs float64       `json:"duration_ms"`
	Outcome    string        `json:"outcome,omitempty"` // hit | miss | error | ...
	Epoch      uint64        `json:"epoch,omitempty"`   // store version / fleet epoch answered from
	Detail     string        `json:"detail,omitempty"`  // error message or extra context
	Shards     []ShardTiming `json:"shards,omitempty"`  // router only: per-shard fan-out timings
}

// RequestLog is a fixed-size ring of recent slow or failed requests,
// served at /v1/debug/requests on the serving daemons. Recording takes
// a mutex and allocates — callers keep it off the hot path by gating on
// Qualifies first, which is two comparisons.
type RequestLog struct {
	slow time.Duration

	mu   sync.Mutex
	buf  []RequestRecord
	next int
	n    int
}

// NewRequestLog sizes the ring. size <= 0 disables recording entirely;
// slow <= 0 records every request (useful in tests and short debugging
// sessions), otherwise only requests at or above the threshold — plus
// every failure, regardless of latency — are kept.
func NewRequestLog(size int, slow time.Duration) *RequestLog {
	l := &RequestLog{slow: slow}
	if size > 0 {
		l.buf = make([]RequestRecord, size)
	}
	return l
}

// SlowThreshold returns the configured slow-request threshold.
func (l *RequestLog) SlowThreshold() time.Duration { return l.slow }

// Qualifies reports whether a request with the given latency/failure
// outcome should be recorded. It takes no lock and allocates nothing,
// so hot paths can call it unconditionally.
func (l *RequestLog) Qualifies(d time.Duration, failed bool) bool {
	if l == nil || l.buf == nil {
		return false
	}
	return failed || d >= l.slow
}

// Record appends one entry, evicting the oldest once the ring is full.
func (l *RequestLog) Record(rec RequestRecord) {
	if l == nil || l.buf == nil {
		return
	}
	if rec.Time.IsZero() {
		rec.Time = time.Now()
	}
	l.mu.Lock()
	l.buf[l.next] = rec
	l.next = (l.next + 1) % len(l.buf)
	if l.n < len(l.buf) {
		l.n++
	}
	l.mu.Unlock()
}

// Snapshot returns the recorded entries, newest first.
func (l *RequestLog) Snapshot() []RequestRecord {
	if l == nil || l.buf == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]RequestRecord, 0, l.n)
	for i := 1; i <= l.n; i++ {
		out = append(out, l.buf[(l.next-i+len(l.buf))%len(l.buf)])
	}
	return out
}

// debugWire is the /v1/debug/requests response body.
type debugWire struct {
	SlowThresholdMs float64         `json:"slow_threshold_ms"`
	Records         []RequestRecord `json:"records"`
}

// ServeJSON writes the ring as the /v1/debug/requests JSON body
// (records newest first; an empty ring serialises as []).
func (l *RequestLog) ServeJSON(w http.ResponseWriter) {
	recs := l.Snapshot()
	if recs == nil {
		recs = []RequestRecord{}
	}
	var slow time.Duration
	if l != nil {
		slow = l.slow
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(debugWire{
		SlowThresholdMs: float64(slow) / float64(time.Millisecond),
		Records:         recs,
	})
}

// DurationMs renders a duration in float milliseconds, the unit the
// request log and status bodies use.
func DurationMs(d time.Duration) float64 {
	return float64(d) / float64(time.Millisecond)
}
