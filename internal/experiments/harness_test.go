package experiments

import (
	"math"
	"strings"
	"testing"

	"github.com/dynagg/dynagg/internal/workload"
)

func tinySpec() TrackSpec {
	return TrackSpec{
		Dataset:  func(seed int64) *workload.Dataset { return workload.AutosLikeN(seed, 8000, 10) },
		Initial:  7000,
		Schedule: workload.PoolChurn(100, 0.005),
		K:        100, G: 200, Rounds: 6,
		Aggs: countAggs,
	}
}

func TestRunTrackingShape(t *testing.T) {
	res, err := RunTracking(tinySpec(), Options{Seed: 1}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds != 6 || len(res.Truth) != 6 {
		t.Fatalf("rounds wrong: %d %d", res.Rounds, len(res.Truth))
	}
	for _, a := range AllAlgos {
		if len(res.RelErr[a]) != 6 || len(res.CumQueries[a]) != 6 {
			t.Fatalf("%s series length wrong", a)
		}
		// Cumulative queries must be non-decreasing and bounded by G·round.
		for i := 0; i < 6; i++ {
			if res.CumQueries[a][i] > float64(200*(i+1)) {
				t.Errorf("%s: cum queries %v exceed budget at round %d", a, res.CumQueries[a][i], i+1)
			}
			if i > 0 && res.CumQueries[a][i] < res.CumQueries[a][i-1] {
				t.Errorf("%s: cum queries decreased at %d", a, i)
			}
			if res.RelErr[a][i] < 0 || math.IsNaN(res.RelErr[a][i]) {
				t.Errorf("%s: bad rel err %v", a, res.RelErr[a][i])
			}
		}
		if f := res.FinalErr(a); math.IsNaN(f) || f > 1.5 {
			t.Errorf("%s: FinalErr %v", a, f)
		}
	}
	// Truth follows the schedule's net growth (+100, −0.5% per round).
	if res.Truth[5] <= res.Truth[0] {
		t.Errorf("truth did not grow: %v", res.Truth)
	}
}

func TestRunTrackingDeterministic(t *testing.T) {
	a, err := RunTracking(tinySpec(), Options{Seed: 5}, 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunTracking(tinySpec(), Options{Seed: 5}, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, al := range AllAlgos {
		for i := range a.RelErr[al] {
			if a.RelErr[al][i] != b.RelErr[al][i] {
				t.Fatalf("%s not deterministic at round %d", al, i+1)
			}
		}
	}
}

func TestRunTrackingDeltaMode(t *testing.T) {
	spec := tinySpec()
	spec.Delta = true
	res, err := RunTracking(spec, Options{Seed: 2}, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Round 1 has no delta; later rounds must.
	for _, a := range AllAlgos {
		if res.EstMean[a][0] != 0 {
			t.Errorf("%s: delta estimate present at round 1", a)
		}
	}
	if res.Truth[3] == 0 {
		t.Error("delta truth missing")
	}
}

func TestRunTrackingWindowMode(t *testing.T) {
	spec := tinySpec()
	spec.Window = 3
	res, err := RunTracking(spec, Options{Seed: 3}, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Window targets exist from round 3 on.
	if res.Truth[4] == 0 {
		t.Error("window truth missing at round 5")
	}
}

func TestTailMean(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	if got := tailMean(xs, 2); got != 3.5 {
		t.Errorf("tailMean(_,2) = %v", got)
	}
	if got := tailMean(xs, 10); got != 2.5 {
		t.Errorf("tailMean(_,10) = %v", got)
	}
	if got := tailMean(nil, 3); got != 0 {
		t.Errorf("tailMean(nil) = %v", got)
	}
}

func TestRegistryAndIDs(t *testing.T) {
	ids := IDs()
	want := []string{"fleet", "fig2", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9",
		"fig10", "fig11", "fig12", "fig13", "fig14", "fig15", "fig16", "fig17",
		"fig18", "fig19", "fig20", "fig21"}
	if len(ids) != len(want) {
		t.Fatalf("got %d figures: %v", len(ids), ids)
	}
	for i := range want {
		if ids[i] != want[i] {
			t.Fatalf("IDs()[%d] = %s, want %s", i, ids[i], want[i])
		}
	}
	if _, err := Run("nope", Options{}); err == nil {
		t.Error("unknown figure accepted")
	}
}

func TestFigureWrite(t *testing.T) {
	f := &Figure{
		ID: "figX", Title: "test", XLabel: "x", YLabel: "y",
		X:       []float64{1, 2},
		XLabels: []string{"one"},
		Notes:   []string{"a note"},
	}
	f.AddSeries("A", []float64{0.5, 0.25})
	f.AddSeries("B", []float64{1}) // short series renders "-"
	var sb strings.Builder
	f.Write(&sb)
	out := sb.String()
	for _, want := range []string{"figX", "one", "0.5", "a note", "-"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestQueriesToReach(t *testing.T) {
	res := &TrackResult{
		RelErr:     map[Algo][]float64{Restart: {0.5, 0.1, 0.4, 0.1, 0.08}},
		CumQueries: map[Algo][]float64{Restart: {100, 200, 300, 400, 500}},
	}
	// The dip at round 2 does not count: the error leaves the band again.
	if got := queriesToReach(res, Restart, 0.15); got != 400 {
		t.Errorf("queriesToReach = %v, want 400 (sustained entry)", got)
	}
	if got := queriesToReach(res, Restart, 0.05); !math.IsNaN(got) {
		t.Errorf("unreachable target = %v, want NaN", got)
	}
}

// Smoke-test the cheapest figure runners end to end at reduced trials.
func TestFigureRunnersSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("figure smoke tests take seconds each")
	}
	opt := Options{Seed: 1, Trials: 1}
	for _, id := range []string{"fig4", "fig5", "fig15", "fig16", "fig17", "fig18", "fig19", "fig20", "fig21"} {
		f, err := Run(id, opt)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if len(f.Series) == 0 || len(f.X) == 0 {
			t.Fatalf("%s: empty figure", id)
		}
		for _, s := range f.Series {
			if len(s.Y) != len(f.X) {
				t.Errorf("%s: series %s has %d points, want %d", id, s.Label, len(s.Y), len(f.X))
			}
		}
	}
}

// The headline qualitative result (Fig 5 shape): under little change,
// REISSUE and RS both beat RESTART, and RS ends below REISSUE's plateau.
func TestFig5Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("takes a few seconds")
	}
	f, err := Run("fig5", Options{Seed: 1, Trials: 2})
	if err != nil {
		t.Fatal(err)
	}
	final := map[string]float64{}
	for _, s := range f.Series {
		final[s.Label] = tailMean(s.Y, 10)
	}
	if final["RS"] >= final["REISSUE"] {
		t.Errorf("little change: RS %.3f not below REISSUE %.3f", final["RS"], final["REISSUE"])
	}
	if final["REISSUE"] >= final["RESTART"]*2 {
		t.Errorf("REISSUE %.3f wildly above RESTART %.3f", final["REISSUE"], final["RESTART"])
	}
}

func TestFigureWriteCSV(t *testing.T) {
	f := &Figure{ID: "figX", XLabel: "x", X: []float64{1, 2}}
	f.AddSeries("A", []float64{0.5, 0.25})
	var sb strings.Builder
	if err := f.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	want := "x,A\n1,0.5\n2,0.25\n"
	if sb.String() != want {
		t.Errorf("csv = %q, want %q", sb.String(), want)
	}
}
