// Package querytree implements the paper's §3.1 query tree and the drill
// down / roll up primitives every estimator is built from.
//
// The tree organises conjunctive queries from broad (root: SELECT * FROM D)
// to specific (leaves: fully specified m-predicate queries). Level i
// appends a predicate on the i-th drill attribute; a leaf is identified by
// one domain value per level, so a uniformly random leaf — the paper's
// drill-down "signature" r — is drawn by picking each level's value
// uniformly at random.
//
// A drill down walks its root-to-leaf path top-down until the first
// non-overflowing query q(r); the Horvitz–Thompson style estimate
// Q(q)/p(q) is unbiased for COUNT/SUM aggregates because every tuple
// belongs to exactly one top non-overflowing query (paper Theorem 3.1).
// Since Sel(child) ⊆ Sel(parent), overflow is monotone along a path, which
// is what makes the localized update procedure (reissue at the previous
// depth, then drill down or roll up) find exactly the same node a fresh
// drill down from the root would find.
package querytree

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"github.com/dynagg/dynagg/internal/hiddendb"
	"github.com/dynagg/dynagg/internal/schema"
)

// ErrLeafOverflow reports that a fully-specified leaf query still
// overflowed. Under the paper's model (distinct tuples, k ≥ 1) this cannot
// happen; surfacing it loudly guards against misconfigured simulations
// (e.g. duplicate tuples).
var ErrLeafOverflow = errors.New("querytree: fully-specified leaf query overflows")

// Tree is a query tree over a schema, optionally rooted under fixed
// selection predicates (paper §3.3: aggregates with selection conditions
// drill down the subtree whose every node contains the selection
// predicate). A Tree is immutable after construction and therefore safe
// to share across goroutines; drill state lives in the callers.
type Tree struct {
	sch   *schema.Schema
	order []int          // drill attributes, tree level i ↦ order[i]
	fixed hiddendb.Query // predicates present in every node
}

// New builds the full query tree: level i drills on attribute i.
func New(sch *schema.Schema) *Tree {
	order := make([]int, sch.M())
	for i := range order {
		order[i] = i
	}
	return &Tree{sch: sch, order: order}
}

// NewWithSelection builds the subtree under the given conjunctive
// selection condition: every node includes sel's predicates, and the drill
// levels are the remaining attributes in schema order.
func NewWithSelection(sch *schema.Schema, sel hiddendb.Query) *Tree {
	fixedAttrs := make(map[int]bool, sel.Len())
	for _, p := range sel.Preds() {
		if p.Attr < 0 || p.Attr >= sch.M() {
			panic(fmt.Sprintf("querytree: selection predicate on unknown attribute %d", p.Attr))
		}
		fixedAttrs[p.Attr] = true
	}
	var order []int
	for i := 0; i < sch.M(); i++ {
		if !fixedAttrs[i] {
			order = append(order, i)
		}
	}
	return &Tree{sch: sch, order: order, fixed: sel}
}

// Schema returns the underlying schema.
func (t *Tree) Schema() *schema.Schema { return t.sch }

// Selection returns the fixed selection predicates (zero Query if none).
func (t *Tree) Selection() hiddendb.Query { return t.fixed }

// Depth returns the number of drill levels (m minus fixed attributes).
func (t *Tree) Depth() int { return len(t.order) }

// LevelAttr returns the schema attribute drilled at the given level.
func (t *Tree) LevelAttr(level int) int { return t.order[level] }

// Signature identifies one leaf: the domain value chosen at each level.
// It is the random number r of the paper's "simple model" — the whole
// randomness of a drill down.
type Signature []uint16

// RandomSignature draws a uniformly random leaf.
func (t *Tree) RandomSignature(rng *rand.Rand) Signature {
	sig := make(Signature, len(t.order))
	for i, attr := range t.order {
		sig[i] = uint16(rng.Intn(t.sch.DomainSize(attr)))
	}
	return sig
}

// Node returns the conjunctive query at the given depth of the signature's
// root-to-leaf path. Depth 0 is the root (selection predicates only).
func (t *Tree) Node(sig Signature, depth int) hiddendb.Query {
	if depth < 0 || depth > len(t.order) {
		panic(fmt.Sprintf("querytree: depth %d out of range [0,%d]", depth, len(t.order)))
	}
	if len(sig) != len(t.order) {
		panic(fmt.Sprintf("querytree: signature has %d levels, tree has %d", len(sig), len(t.order)))
	}
	preds := make([]hiddendb.Pred, 0, t.fixed.Len()+depth)
	preds = append(preds, t.fixed.Preds()...)
	for i := 0; i < depth; i++ {
		preds = append(preds, hiddendb.Pred{Attr: t.order[i], Val: sig[i]})
	}
	return hiddendb.NewQuery(preds...)
}

// P returns p(q) for a node at the given depth: the probability that a
// uniformly random signature's path passes through it, ∏_{i<depth} 1/|Ui|.
// This is exactly the ratio of leaves under the node.
func (t *Tree) P(depth int) float64 {
	p := 1.0
	for i := 0; i < depth; i++ {
		p /= float64(t.sch.DomainSize(t.order[i]))
	}
	return p
}

// Outcome is the end state of one drill down (or drill-down update): the
// top non-overflowing node on the signature's path, its result, and the
// number of interface queries spent getting there.
type Outcome struct {
	// Depth of the top non-overflowing node (0 = root).
	Depth int
	// Result of that node's query. Underflow ⇒ zero-valued estimate.
	Result hiddendb.Result
	// Cost is the number of queries this operation issued, including any
	// parent-verification queries.
	Cost int
}

// P returns p(q) of the outcome's node within tree t.
func (o Outcome) P(t *Tree) float64 { return t.P(o.Depth) }

// Walk is one drill-down (fresh or update) as a resumable state machine:
// NextQuery exposes the next interface query the walk needs, Feed consumes
// its result, and the cycle repeats until Done. DrillFromRoot and
// UpdateDrill are thin loops over a Walk, so the per-query and batched
// execution paths share one implementation — identical queries, identical
// cost accounting, identical outcomes.
//
// A Walk is single-goroutine; the batching executor interleaves many
// walks in lockstep, feeding each walk one answer per wave.
type Walk struct {
	t    *Tree
	sig  Signature
	mode walkMode
	d    int             // depth of the pending query
	cur  hiddendb.Result // last non-overflowing result while climbing
	cost int
	done bool
	out  Outcome
	err  error
}

type walkMode int

const (
	walkDrill   walkMode = iota // descending: pending query at depth d
	walkReissue                 // update step 1: reissue the previous top node
	walkClimb                   // ascending: pending parent query at depth d-1
)

// NewFreshWalk starts a from-root drill down for the signature.
func NewFreshWalk(t *Tree, sig Signature) *Walk {
	return &Walk{t: t, sig: sig, mode: walkDrill}
}

// NewUpdateWalk starts the localized update of a previous drill down that
// terminated at prevDepth in an earlier round.
func NewUpdateWalk(t *Tree, sig Signature, prevDepth int) *Walk {
	if prevDepth < 0 || prevDepth > t.Depth() {
		panic(fmt.Sprintf("querytree: previous depth %d out of range [0,%d]", prevDepth, t.Depth()))
	}
	return &Walk{t: t, sig: sig, mode: walkReissue, d: prevDepth}
}

// Done reports whether the walk has terminated (successfully or not).
func (w *Walk) Done() bool { return w.done }

// NextQuery returns the interface query the walk needs answered next.
// Must not be called on a Done walk.
func (w *Walk) NextQuery() hiddendb.Query {
	if w.done {
		panic("querytree: NextQuery on a finished walk")
	}
	if w.mode == walkClimb {
		return w.t.Node(w.sig, w.d-1)
	}
	return w.t.Node(w.sig, w.d)
}

// Feed consumes the result of the query NextQuery last returned, charging
// one unit of cost and advancing the state machine.
func (w *Walk) Feed(r hiddendb.Result) {
	if w.done {
		panic("querytree: Feed on a finished walk")
	}
	w.cost++
	switch w.mode {
	case walkDrill:
		if !r.Overflow {
			w.finish(Outcome{Depth: w.d, Result: r, Cost: w.cost}, nil)
			return
		}
		if w.d == w.t.Depth() {
			w.finish(Outcome{Cost: w.cost}, ErrLeafOverflow)
			return
		}
		w.d++
	case walkReissue:
		if r.Overflow {
			// Case 2: drill down below the previous top node.
			if w.d == w.t.Depth() {
				w.finish(Outcome{Cost: w.cost}, ErrLeafOverflow)
				return
			}
			w.mode = walkDrill
			w.d++
			return
		}
		// Cases 1 and 3: climb until the parent overflows.
		if w.d == 0 {
			w.finish(Outcome{Depth: 0, Result: r, Cost: w.cost}, nil)
			return
		}
		w.cur = r
		w.mode = walkClimb
	case walkClimb:
		if r.Overflow {
			w.finish(Outcome{Depth: w.d, Result: w.cur, Cost: w.cost}, nil)
			return
		}
		w.d--
		w.cur = r
		if w.d == 0 {
			w.finish(Outcome{Depth: 0, Result: w.cur, Cost: w.cost}, nil)
		}
	}
}

// Fail terminates the walk with a query-level error (budget exhaustion),
// preserving the cost spent so far. The failed query is NOT charged —
// matching the sequential paths, where an errored Search never increments
// cost.
func (w *Walk) Fail(err error) {
	if w.done {
		panic("querytree: Fail on a finished walk")
	}
	w.finish(Outcome{Cost: w.cost}, err)
}

func (w *Walk) finish(out Outcome, err error) {
	w.out, w.err, w.done = out, err, true
}

// Outcome returns the walk's end state. Valid only once Done.
func (w *Walk) Outcome() (Outcome, error) {
	if !w.done {
		panic("querytree: Outcome on an unfinished walk")
	}
	return w.out, w.err
}

// runWalk drives a walk to completion against a sequential Searcher.
func runWalk(s hiddendb.Searcher, w *Walk) (Outcome, error) {
	for !w.Done() {
		r, err := s.Search(w.NextQuery())
		if err != nil {
			w.Fail(err)
			break
		}
		w.Feed(r)
	}
	return w.Outcome()
}

// DrillFromRoot performs a fresh drill down for the signature: issue the
// path's queries from the root downward until the first node that does not
// overflow (the static algorithm of [13], one drill-down instance).
//
// On budget exhaustion it returns hiddendb.ErrBudgetExhausted together
// with the cost already spent.
func DrillFromRoot(s hiddendb.Searcher, t *Tree, sig Signature) (Outcome, error) {
	return runWalk(s, NewFreshWalk(t, sig))
}

// UpdateDrill refreshes a previous drill down that terminated at prevDepth
// in an earlier round (paper §3.2.2's three cases):
//
//  1. reissue the previous top node q;
//  2. if q overflows now, drill down from q;
//  3. otherwise roll up, verifying that the parent overflows — climbing
//     further whenever it does not — so that the returned node is exactly
//     the top non-overflowing node a from-root drill down would find
//     (overflow is monotone along the path).
//
// When the database did not change, this costs exactly two queries (one to
// reissue q, one to re-verify its parent), the constant the RS analysis
// (§4.1) relies on.
func UpdateDrill(s hiddendb.Searcher, t *Tree, sig Signature, prevDepth int) (Outcome, error) {
	return runWalk(s, NewUpdateWalk(t, sig, prevDepth))
}

// ExpectedDrillDepthLowerBound returns the paper's Theorem 3.2 lower bound
// on the expected number of queries of a from-root drill down,
// log(n/k)/log(max|Ui|). Diagnostic/analysis use only.
func ExpectedDrillDepthLowerBound(n, k, maxDomain int) float64 {
	if n <= k || maxDomain < 2 {
		return 1
	}
	return math.Log(float64(n)/float64(k)) / math.Log(float64(maxDomain))
}
