module github.com/dynagg/dynagg

go 1.22
