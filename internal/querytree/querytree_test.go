package querytree

import (
	"math"
	"math/rand"
	"testing"

	"github.com/dynagg/dynagg/internal/hiddendb"
	"github.com/dynagg/dynagg/internal/schema"
)

// buildStore creates a store of n distinct random tuples.
func buildStore(t testing.TB, seed int64, n int, domains []int) *hiddendb.Store {
	t.Helper()
	capacity := 1
	attrs := make([]schema.Attr, len(domains))
	for i, d := range domains {
		capacity *= d
		dom := make([]string, d)
		for v := range dom {
			dom[v] = string(rune('a' + v))
		}
		attrs[i] = schema.Attr{Name: attrName(i), Domain: dom}
	}
	if n > capacity/2 {
		t.Fatalf("buildStore: %d tuples over capacity %d is too dense", n, capacity)
	}
	st := hiddendb.NewStore(schema.New(attrs))
	rng := rand.New(rand.NewSource(seed))
	seen := make(map[string]bool)
	for st.Size() < n {
		vals := make([]uint16, len(domains))
		for i, d := range domains {
			vals[i] = uint16(rng.Intn(d))
		}
		tu := &schema.Tuple{ID: st.NextID(), Vals: vals}
		if seen[tu.Key()] {
			continue
		}
		seen[tu.Key()] = true
		if err := st.Insert(tu); err != nil {
			t.Fatal(err)
		}
	}
	return st
}

func attrName(i int) string {
	return "A" + string(rune('1'+i))
}

func TestTreeGeometry(t *testing.T) {
	st := buildStore(t, 1, 50, []int{4, 3, 5, 2})
	tr := New(st.Schema())
	if tr.Depth() != 4 {
		t.Fatalf("Depth = %d", tr.Depth())
	}
	if got := tr.P(0); got != 1 {
		t.Errorf("P(0) = %v", got)
	}
	if got := tr.P(2); math.Abs(got-1.0/12) > 1e-15 {
		t.Errorf("P(2) = %v, want 1/12", got)
	}
	if got := tr.P(4); math.Abs(got-1.0/120) > 1e-15 {
		t.Errorf("P(4) = %v, want 1/120", got)
	}
	sig := Signature{1, 2, 4, 0}
	q := tr.Node(sig, 3)
	preds := q.Preds()
	if len(preds) != 3 || preds[0].Val != 1 || preds[2].Val != 4 {
		t.Errorf("Node depth 3 = %v", q)
	}
	if tr.Node(sig, 0).Len() != 0 {
		t.Error("root node should have no predicates")
	}
	if tr.LevelAttr(2) != 2 {
		t.Errorf("LevelAttr(2) = %d", tr.LevelAttr(2))
	}
}

func TestNodePanics(t *testing.T) {
	st := buildStore(t, 2, 20, []int{4, 4, 4})
	tr := New(st.Schema())
	for _, fn := range []func(){
		func() { tr.Node(Signature{0, 0, 0}, 4) },
		func() { tr.Node(Signature{0, 0}, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestRandomSignatureInDomain(t *testing.T) {
	st := buildStore(t, 3, 20, []int{4, 3, 5})
	tr := New(st.Schema())
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 200; i++ {
		sig := tr.RandomSignature(rng)
		if len(sig) != 3 {
			t.Fatalf("signature length %d", len(sig))
		}
		for lvl, v := range sig {
			if int(v) >= st.Schema().DomainSize(lvl) {
				t.Fatalf("signature value %d out of domain at level %d", v, lvl)
			}
		}
	}
}

// sumP over all nodes of a level must be 1 (the p(q) used by the
// Horvitz-Thompson estimate is a probability distribution over each level).
func TestPSumsToOneAcrossLevel(t *testing.T) {
	st := buildStore(t, 5, 20, []int{4, 3, 5})
	tr := New(st.Schema())
	for depth := 0; depth <= 3; depth++ {
		nodes := 1
		for i := 0; i < depth; i++ {
			nodes *= st.Schema().DomainSize(i)
		}
		total := float64(nodes) * tr.P(depth)
		if math.Abs(total-1) > 1e-12 {
			t.Errorf("depth %d: Σp = %v", depth, total)
		}
	}
}

func TestDrillFromRootFindsTopNonOverflowing(t *testing.T) {
	st := buildStore(t, 6, 2000, []int{8, 7, 6, 5, 4})
	f := hiddendb.NewIface(st, 10, nil)
	tr := New(st.Schema())
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 50; i++ {
		sig := tr.RandomSignature(rng)
		o, err := DrillFromRoot(f.AsSearcher(), tr, sig)
		if err != nil {
			t.Fatal(err)
		}
		// The node must not overflow, and its parent (if any) must.
		if o.Result.Overflow {
			t.Fatal("outcome overflows")
		}
		if o.Cost != o.Depth+1 {
			t.Errorf("cost = %d, want depth+1 = %d", o.Cost, o.Depth+1)
		}
		if o.Depth > 0 {
			if got := st.CountMatching(tr.Node(sig, o.Depth-1)); got <= f.K() {
				t.Errorf("parent of top node does not overflow: count=%d", got)
			}
		}
		if got := st.CountMatching(tr.Node(sig, o.Depth)); got > f.K() {
			t.Errorf("top node overflows: count=%d", got)
		}
	}
}

// The fundamental estimator property: E[ |q(r)| / p(q(r)) ] = |D| exactly,
// enumerated over all signatures (Theorem 3.1 specialised to COUNT(*)).
func TestDrillDownEstimateExactlyUnbiased(t *testing.T) {
	st := buildStore(t, 8, 200, []int{6, 5, 4, 4})
	f := hiddendb.NewIface(st, 7, nil)
	tr := New(st.Schema())

	var total float64
	leaves := 0
	var walk func(sig Signature, level int)
	walk = func(sig Signature, level int) {
		if level == tr.Depth() {
			leaves++
			o, err := DrillFromRoot(f.AsSearcher(), tr, sig)
			if err != nil {
				t.Fatal(err)
			}
			total += float64(len(o.Result.Tuples)) / o.P(tr)
			return
		}
		for v := 0; v < st.Schema().DomainSize(level); v++ {
			next := make(Signature, level+1)
			copy(next, sig)
			next[level] = uint16(v)
			walk(next, level+1)
		}
	}
	walk(Signature{}, 0)

	mean := total / float64(leaves)
	if math.Abs(mean-float64(st.Size())) > 1e-6*float64(st.Size()) {
		t.Errorf("exact expectation = %v, want %d", mean, st.Size())
	}
}

// UpdateDrill must land on the same node a fresh drill down would find,
// whatever the previous depth was and however the database changed.
func TestUpdateDrillAgreesWithFreshDrill(t *testing.T) {
	st := buildStore(t, 9, 3000, []int{8, 7, 6, 5, 4})
	f := hiddendb.NewIface(st, 10, nil)
	tr := New(st.Schema())
	rng := rand.New(rand.NewSource(10))

	type saved struct {
		sig   Signature
		depth int
	}
	var drills []saved
	for i := 0; i < 40; i++ {
		sig := tr.RandomSignature(rng)
		o, err := DrillFromRoot(f.AsSearcher(), tr, sig)
		if err != nil {
			t.Fatal(err)
		}
		drills = append(drills, saved{sig: sig, depth: o.Depth})
	}

	// Mutate heavily: delete 60% of tuples, insert 1000 new ones.
	ids := st.IDs()
	for _, id := range ids {
		if rng.Float64() < 0.6 {
			if _, err := st.Delete(id); err != nil {
				t.Fatal(err)
			}
		}
	}
	seen := make(map[string]bool)
	st.ForEach(func(tu *schema.Tuple) { seen[tu.Key()] = true })
	for added := 0; added < 1000; {
		vals := make([]uint16, 5)
		for i := range vals {
			vals[i] = uint16(rng.Intn(st.Schema().DomainSize(i)))
		}
		tu := &schema.Tuple{ID: st.NextID(), Vals: vals}
		if seen[tu.Key()] {
			continue
		}
		seen[tu.Key()] = true
		if err := st.Insert(tu); err != nil {
			t.Fatal(err)
		}
		added++
	}

	for _, dr := range drills {
		up, err := UpdateDrill(f.AsSearcher(), tr, dr.sig, dr.depth)
		if err != nil {
			t.Fatal(err)
		}
		fresh, err := DrillFromRoot(f.AsSearcher(), tr, dr.sig)
		if err != nil {
			t.Fatal(err)
		}
		if up.Depth != fresh.Depth {
			t.Errorf("sig %v: update depth %d != fresh depth %d", dr.sig, up.Depth, fresh.Depth)
		}
		if len(up.Result.Tuples) != len(fresh.Result.Tuples) {
			t.Errorf("sig %v: result sizes differ %d vs %d", dr.sig, len(up.Result.Tuples), len(fresh.Result.Tuples))
		}
	}
}

// When the database does not change, an update costs exactly 2 queries
// (1 when the previous top was the root) — the §4.1 constant.
func TestUpdateDrillCostNoChange(t *testing.T) {
	st := buildStore(t, 11, 2000, []int{8, 7, 6, 5, 4})
	f := hiddendb.NewIface(st, 10, nil)
	tr := New(st.Schema())
	rng := rand.New(rand.NewSource(12))
	for i := 0; i < 30; i++ {
		sig := tr.RandomSignature(rng)
		o, err := DrillFromRoot(f.AsSearcher(), tr, sig)
		if err != nil {
			t.Fatal(err)
		}
		up, err := UpdateDrill(f.AsSearcher(), tr, sig, o.Depth)
		if err != nil {
			t.Fatal(err)
		}
		wantCost := 2
		if o.Depth == 0 {
			wantCost = 1
		}
		if up.Cost != wantCost {
			t.Errorf("update cost = %d, want %d (depth %d)", up.Cost, wantCost, o.Depth)
		}
		if up.Depth != o.Depth {
			t.Errorf("depth changed with static database: %d -> %d", o.Depth, up.Depth)
		}
	}
}

func TestDrillBudgetExhaustion(t *testing.T) {
	st := buildStore(t, 13, 2000, []int{8, 7, 6, 5, 4})
	f := hiddendb.NewIface(st, 10, nil)
	tr := New(st.Schema())
	rng := rand.New(rand.NewSource(14))
	sig := tr.RandomSignature(rng)

	s := f.NewSession(1) // only the root fits
	o, err := DrillFromRoot(s, tr, sig)
	if err != hiddendb.ErrBudgetExhausted {
		t.Fatalf("err = %v, want budget exhausted", err)
	}
	if o.Cost != 1 {
		t.Errorf("partial cost = %d, want 1", o.Cost)
	}

	s2 := f.NewSession(0)
	full, err := DrillFromRoot(s2, tr, sig)
	if err != nil {
		t.Fatal(err)
	}
	if full.Depth == 0 {
		t.Skip("drill ended at root; pick different seed")
	}
	// Budget exactly one short of the update's parent check.
	s3 := f.NewSession(1)
	if _, err := UpdateDrill(s3, tr, sig, full.Depth); err != hiddendb.ErrBudgetExhausted {
		t.Errorf("update err = %v, want budget exhausted", err)
	}
}

func TestSelectionSubtree(t *testing.T) {
	st := buildStore(t, 15, 3000, []int{8, 7, 6, 5, 4})
	f := hiddendb.NewIface(st, 10, nil)
	sel := hiddendb.NewQuery(hiddendb.Pred{Attr: 1, Val: 2})
	tr := NewWithSelection(st.Schema(), sel)

	if tr.Depth() != 4 {
		t.Fatalf("subtree depth = %d, want 4", tr.Depth())
	}
	if tr.Selection().Len() != 1 {
		t.Fatalf("selection lost")
	}
	// Every node must contain the selection predicate.
	rng := rand.New(rand.NewSource(16))
	sig := tr.RandomSignature(rng)
	for d := 0; d <= tr.Depth(); d++ {
		q := tr.Node(sig, d)
		found := false
		for _, p := range q.Preds() {
			if p.Attr == 1 && p.Val == 2 {
				found = true
			}
		}
		if !found {
			t.Errorf("node at depth %d lacks selection predicate: %v", d, q)
		}
	}

	// Exhaustive unbiasedness within the subtree: expectation over all
	// subtree leaves equals COUNT(*) WHERE A2=2.
	truth := st.CountMatching(sel)
	var total float64
	leaves := 0
	domAt := func(level int) int { return st.Schema().DomainSize(tr.LevelAttr(level)) }
	var walk func(sig Signature, level int)
	walk = func(sig Signature, level int) {
		if level == tr.Depth() {
			leaves++
			o, err := DrillFromRoot(f.AsSearcher(), tr, sig)
			if err != nil {
				t.Fatal(err)
			}
			total += float64(len(o.Result.Tuples)) / o.P(tr)
			return
		}
		for v := 0; v < domAt(level); v++ {
			next := make(Signature, level+1)
			copy(next, sig)
			next[level] = uint16(v)
			walk(next, level+1)
		}
	}
	walk(Signature{}, 0)
	mean := total / float64(leaves)
	if math.Abs(mean-float64(truth)) > 1e-6*math.Max(1, float64(truth)) {
		t.Errorf("subtree expectation = %v, want %d", mean, truth)
	}
}

func TestUpdateDrillPanicsOnBadDepth(t *testing.T) {
	st := buildStore(t, 17, 20, []int{4, 4, 4})
	f := hiddendb.NewIface(st, 5, nil)
	tr := New(st.Schema())
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	_, _ = UpdateDrill(f.AsSearcher(), tr, Signature{0, 0, 0}, 9)
}

func TestExpectedDrillDepthLowerBound(t *testing.T) {
	if got := ExpectedDrillDepthLowerBound(100, 200, 10); got != 1 {
		t.Errorf("n<=k should give 1, got %v", got)
	}
	got := ExpectedDrillDepthLowerBound(100000, 10, 10)
	if math.Abs(got-4) > 1e-9 {
		t.Errorf("bound = %v, want 4", got)
	}
}

// Leaf overflow must be surfaced, not silently mis-estimated. Construct a
// store with duplicate-valued tuples (illegal per the paper's model).
func TestLeafOverflowDetected(t *testing.T) {
	sch := schema.New([]schema.Attr{{Name: "a", Domain: []string{"x", "y"}}})
	st := hiddendb.NewStore(sch)
	for i := 0; i < 5; i++ {
		if err := st.Insert(&schema.Tuple{ID: uint64(i + 1), Vals: []uint16{0}}); err != nil {
			t.Fatal(err)
		}
	}
	f := hiddendb.NewIface(st, 2, nil)
	tr := New(sch)
	if _, err := DrillFromRoot(f.AsSearcher(), tr, Signature{0}); err != ErrLeafOverflow {
		t.Errorf("err = %v, want ErrLeafOverflow", err)
	}
	if _, err := UpdateDrill(f.AsSearcher(), tr, Signature{0}, 1); err != ErrLeafOverflow {
		t.Errorf("update err = %v, want ErrLeafOverflow", err)
	}
}

// Multi-predicate selection subtrees: the drill order must skip every
// fixed attribute and p() must reflect only the drilled domains.
func TestSelectionSubtreeMultiplePredicates(t *testing.T) {
	st := buildStore(t, 40, 1000, []int{8, 7, 6, 5, 4})
	sel := hiddendb.NewQuery(
		hiddendb.Pred{Attr: 0, Val: 3},
		hiddendb.Pred{Attr: 3, Val: 1},
	)
	tr := NewWithSelection(st.Schema(), sel)
	if tr.Depth() != 3 {
		t.Fatalf("depth = %d, want 3", tr.Depth())
	}
	wantOrder := []int{1, 2, 4}
	for lvl, attr := range wantOrder {
		if tr.LevelAttr(lvl) != attr {
			t.Errorf("level %d drills attr %d, want %d", lvl, tr.LevelAttr(lvl), attr)
		}
	}
	// p at full depth = 1/(7*6*4).
	if got, want := tr.P(3), 1.0/(7*6*4); math.Abs(got-want) > 1e-15 {
		t.Errorf("P(3) = %v, want %v", got, want)
	}
	// Every node carries both predicates.
	sig := tr.RandomSignature(rand.New(rand.NewSource(41)))
	q := tr.Node(sig, 3)
	if q.Len() != 5 {
		t.Errorf("leaf query has %d predicates, want 5", q.Len())
	}
}

// Outcome cost accounting must match the session's own query counter for
// both fresh drills and updates.
func TestCostAccountingMatchesSession(t *testing.T) {
	st := buildStore(t, 42, 2000, []int{8, 7, 6, 5, 4})
	f := hiddendb.NewIface(st, 10, nil)
	tr := New(st.Schema())
	rng := rand.New(rand.NewSource(43))
	for i := 0; i < 20; i++ {
		sig := tr.RandomSignature(rng)
		s := f.NewSession(0)
		o, err := DrillFromRoot(s, tr, sig)
		if err != nil {
			t.Fatal(err)
		}
		if o.Cost != s.Used() {
			t.Fatalf("fresh drill cost %d != session used %d", o.Cost, s.Used())
		}
		s2 := f.NewSession(0)
		u, err := UpdateDrill(s2, tr, sig, o.Depth)
		if err != nil {
			t.Fatal(err)
		}
		if u.Cost != s2.Used() {
			t.Fatalf("update cost %d != session used %d", u.Cost, s2.Used())
		}
	}
}

// After deleting everything, any update must roll up to the root and
// estimate zero.
func TestUpdateDrillAfterTotalDeletion(t *testing.T) {
	st := buildStore(t, 44, 1500, []int{8, 7, 6, 5, 4})
	f := hiddendb.NewIface(st, 10, nil)
	tr := New(st.Schema())
	rng := rand.New(rand.NewSource(45))
	sig := tr.RandomSignature(rng)
	o, err := DrillFromRoot(f.AsSearcher(), tr, sig)
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range st.IDs() {
		if _, err := st.Delete(id); err != nil {
			t.Fatal(err)
		}
	}
	u, err := UpdateDrill(f.AsSearcher(), tr, sig, o.Depth)
	if err != nil {
		t.Fatal(err)
	}
	if u.Depth != 0 || !u.Result.Underflow() {
		t.Errorf("update on empty db: depth %d, underflow %v", u.Depth, u.Result.Underflow())
	}
	// Cost: one query per level climbed, plus the initial reissue.
	if u.Cost != o.Depth+1 {
		t.Errorf("roll-up cost %d, want %d", u.Cost, o.Depth+1)
	}
}
