package experiments

import (
	"math/rand"

	"github.com/dynagg/dynagg/internal/estimator"
	"github.com/dynagg/dynagg/internal/hiddendb"
	"github.com/dynagg/dynagg/internal/stats"
	"github.com/dynagg/dynagg/internal/workload"
)

func init() { register("fig4", Fig4) }

// Fig4 — intra-round updates (the constant-update model of §5.2): the
// paper's worst case where the algorithm takes the whole hour to execute
// while tuples are inserted every 12s and deleted every 21s. REISSUE and
// RS are compared against their own round-update executions; the curves
// should nearly coincide.
func Fig4(opt Options) (*Figure, error) {
	p := autosDefaults(opt)
	hours := 48
	g := 100
	insertPerHour := p.insert  // 300/hour (one per 12s)
	deletePerHour := 3600 / 21 // one per 21s
	trials := opt.trials(2)

	type mode struct {
		label string
		intra bool
		algo  Algo
	}
	modes := []mode{
		{"REISSUE", false, Reissue},
		{"REISSUE (Intra-Round)", true, Reissue},
		{"RS", false, RS},
		{"RS (Intra-Round)", true, RS},
	}

	// One trial's relative-error observations: per mode, per hour
	// (ok=false where the estimator had no estimate yet).
	type obs struct {
		rel float64
		ok  bool
	}
	runTrial := func(trial int) (map[string][]obs, error) {
		out := make(map[string][]obs, len(modes))
		dataSeed := trialSeed(opt.Seed, trial)
		data := p.dataset()(dataSeed)
		for _, m := range modes {
			series := make([]obs, hours)
			env, err := workload.NewEnv(data, p.initial, dataSeed+envSeedOffset)
			if err != nil {
				return nil, err
			}
			iface := hiddendb.NewIface(env.Store, p.k, nil)
			cfg := estimator.Config{Rand: rand.New(rand.NewSource(dataSeed + rngSeedOffset)), Parallelism: opt.Parallelism}
			est, err := newEstimator(m.algo, env.Store.Schema(), countAggs(env.Store.Schema()), cfg, nil)
			if err != nil {
				return nil, err
			}
			for hour := 1; hour <= hours; hour++ {
				sess := iface.NewSession(g)
				var hookErr error
				applied := 0
				nOps := insertPerHour + deletePerHour
				applyOps := func(upto int) {
					for applied < upto && hookErr == nil {
						// Interleave: spread deletions evenly between inserts.
						if applied%(nOps/deletePerHour+1) == nOps/deletePerHour {
							hookErr = env.DeleteRandom(1)
						} else {
							hookErr = env.InsertFromPool(1)
						}
						applied++
					}
				}
				if hour > 1 {
					if m.intra {
						sess.SetPreSearchHook(func(qi int) {
							applyOps((qi + 1) * nOps / g)
						})
					} else {
						applyOps(nOps) // round-update model: all at once
					}
				}
				if err := est.Step(sess); err != nil {
					return nil, err
				}
				if hour > 1 && m.intra {
					applyOps(nOps) // any stragglers (budget died early)
				}
				if hookErr != nil {
					return nil, hookErr
				}
				truth := float64(env.Store.Size())
				if e, ok := est.Estimate(0); ok {
					series[hour-1] = obs{rel: stats.RelativeError(e.Value, truth), ok: true}
				}
			}
			out[m.label] = series
		}
		return out, nil
	}

	outs, err := runTrials(trials, opt.workers(), runTrial)
	if err != nil {
		return nil, err
	}
	acc := make(map[string][]stats.Running)
	for _, m := range modes {
		acc[m.label] = make([]stats.Running, hours)
	}
	for _, tr := range outs {
		for _, m := range modes {
			for hour := 0; hour < hours; hour++ {
				if o := tr[m.label][hour]; o.ok {
					acc[m.label][hour].Add(o.rel)
				}
			}
		}
	}

	f := &Figure{
		ID: "fig4", Title: "Intra-round updates: round-update model vs constant-update model",
		XLabel: "hour", YLabel: "relative error",
		X:     roundsAxis(hours),
		Notes: []string{p.scaleNote, "updates spread across each hour's queries (1 insert/12s, 1 delete/21s)"},
	}
	for _, m := range modes {
		y := make([]float64, hours)
		for i := range y {
			y[i] = acc[m.label][i].Mean()
		}
		f.AddSeries(m.label, y)
	}
	return f, nil
}
