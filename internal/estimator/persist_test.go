package estimator

import (
	"bytes"
	"math"
	"testing"

	"github.com/dynagg/dynagg/internal/agg"
)

// roundTrip saves and reloads an estimator.
func roundTrip(t *testing.T, e Estimator, te *testEnv) Estimator {
	t.Helper()
	var buf bytes.Buffer
	if err := Save(e, &buf); err != nil {
		t.Fatal(err)
	}
	aggs := e.Aggregates()
	restored, err := Load(&buf, te.env.Store.Schema(), aggs, cfg(999))
	if err != nil {
		t.Fatal(err)
	}
	return restored
}

func TestSaveLoadPreservesEstimates(t *testing.T) {
	for _, mk := range []struct {
		name string
		new  func(te *testEnv) (Estimator, error)
	}{
		{"RESTART", func(te *testEnv) (Estimator, error) {
			return NewRestart(te.env.Store.Schema(), []*agg.Aggregate{agg.CountAll()}, cfg(301))
		}},
		{"REISSUE", func(te *testEnv) (Estimator, error) {
			return NewReissue(te.env.Store.Schema(), []*agg.Aggregate{agg.CountAll()}, cfg(301))
		}},
		{"RS", func(te *testEnv) (Estimator, error) {
			return NewRS(te.env.Store.Schema(), []*agg.Aggregate{agg.CountAll()}, cfg(301), WithDeltaTarget())
		}},
	} {
		t.Run(mk.name, func(t *testing.T) {
			te := newTestEnv(t, 300, 15000, 13000, 100)
			e, err := mk.new(te)
			if err != nil {
				t.Fatal(err)
			}
			for round := 1; round <= 4; round++ {
				if round > 1 {
					if err := te.env.InsertFromPool(200); err != nil {
						t.Fatal(err)
					}
				}
				if err := e.Step(te.iface.NewSession(300)); err != nil {
					t.Fatal(err)
				}
			}
			want, wantOK := e.Estimate(0)
			wantDelta, wantDeltaOK := e.EstimateDelta(0)

			restored := roundTrip(t, e, te)
			if restored.Name() != e.Name() {
				t.Fatalf("algo = %s", restored.Name())
			}
			if restored.Round() != 4 {
				t.Errorf("round = %d", restored.Round())
			}
			if restored.DrillDowns() != e.DrillDowns() {
				t.Errorf("drills = %d vs %d", restored.DrillDowns(), e.DrillDowns())
			}
			got, ok := restored.Estimate(0)
			if ok != wantOK || got.Value != want.Value || got.Variance != want.Variance {
				t.Errorf("estimate mismatch: %+v vs %+v", got, want)
			}
			gotDelta, dOK := restored.EstimateDelta(0)
			if dOK != wantDeltaOK || (dOK && gotDelta.Value != wantDelta.Value) {
				t.Errorf("delta mismatch: %+v vs %+v", gotDelta, wantDelta)
			}

			// The restored estimator keeps tracking sensibly.
			if err := te.env.InsertFromPool(200); err != nil {
				t.Fatal(err)
			}
			if err := restored.Step(te.iface.NewSession(300)); err != nil {
				t.Fatal(err)
			}
			est, ok := restored.Estimate(0)
			if !ok {
				t.Fatal("no estimate after restored step")
			}
			truth := float64(te.env.Store.Size())
			if rel := math.Abs(est.Value-truth) / truth; rel > 0.5 {
				t.Errorf("restored tracking rel err %.2f", rel)
			}
			if restored.Round() != 5 {
				t.Errorf("restored round = %d", restored.Round())
			}
		})
	}
}

// A restored REISSUE continues from the same pool: on a static database
// the next round's estimate equals the pre-save estimate exactly.
func TestSaveLoadReissueContinuity(t *testing.T) {
	te := newTestEnv(t, 310, 15000, 15000, 100)
	e, err := NewReissue(te.env.Store.Schema(), []*agg.Aggregate{agg.CountAll()}, cfg(311))
	if err != nil {
		t.Fatal(err)
	}
	for round := 1; round <= 3; round++ {
		if err := e.Step(te.iface.NewSession(120)); err != nil {
			t.Fatal(err)
		}
	}
	before, _ := e.Estimate(0)
	beforePool := e.PoolSize()

	restored := roundTrip(t, e, te).(*Reissue)
	if restored.PoolSize() != beforePool {
		t.Fatalf("pool %d vs %d", restored.PoolSize(), beforePool)
	}
	if err := restored.Step(te.iface.NewSession(120)); err != nil {
		t.Fatal(err)
	}
	after, _ := restored.Estimate(0)
	// Static database + same signature pool (modulo which were updated
	// within budget) → estimates agree closely.
	if math.Abs(after.Value-before.Value) > 0.25*before.Value {
		t.Errorf("continuity broken: %.0f -> %.0f", before.Value, after.Value)
	}
}

func TestLoadValidation(t *testing.T) {
	te := newTestEnv(t, 320, 5000, 4500, 100)
	e, err := NewReissue(te.env.Store.Schema(), []*agg.Aggregate{agg.CountAll()}, cfg(321))
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Step(te.iface.NewSession(100)); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Save(e, &buf); err != nil {
		t.Fatal(err)
	}

	// Wrong aggregate count.
	two := []*agg.Aggregate{agg.CountAll(), agg.CountAll()}
	if _, err := Load(bytes.NewReader(buf.Bytes()), te.env.Store.Schema(), two, cfg(322)); err == nil {
		t.Error("aggregate count mismatch accepted")
	}
	// Garbage input.
	if _, err := Load(bytes.NewReader([]byte("junk")), te.env.Store.Schema(),
		[]*agg.Aggregate{agg.CountAll()}, cfg(323)); err == nil {
		t.Error("garbage snapshot accepted")
	}
}

func TestSaveLoadRetainedTuplesSurvive(t *testing.T) {
	te := newTestEnv(t, 330, 8000, 7500, 100)
	c := cfg(331)
	c.RetainTuples = true
	e, err := NewRS(te.env.Store.Schema(), []*agg.Aggregate{agg.CountAll()}, c)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Step(te.iface.NewSession(400)); err != nil {
		t.Fatal(err)
	}
	truth := agg.SumOf("x", agg.AuxField(0)).Truth(te.env.Store)

	restored := roundTrip(t, e, te).(*RS)
	est, err := restored.AdHoc(agg.SumOf("SUM(price)@R1", agg.AuxField(0)), 1)
	if err != nil {
		t.Fatal(err)
	}
	if rel := math.Abs(est.Value-truth) / truth; rel > 0.9 {
		t.Errorf("ad hoc after reload rel err %.2f", rel)
	}
}
