// Adhoc: the ad hoc query model of §5.1 — answer an aggregate question
// about a PAST database state, asked only after that state is gone.
//
// The tracker retains the tuples its drill downs retrieved each round.
// When, at round 8, an analyst asks "what was the average price of
// category-0 items back at round 3?", the tracker simulates the estimate
// as if the query had been registered before round 3 ran — no time
// machine, no extra queries.
package main

import (
	"fmt"
	"log"
	"math"

	dynagg "github.com/dynagg/dynagg"
)

func main() {
	data := dynagg.AutosLikeN(5, 30000, 16)
	env, err := dynagg.NewEnv(data, 27000, 6)
	if err != nil {
		log.Fatal(err)
	}
	iface := dynagg.NewIface(env.Store, 200, nil)

	tracker, err := dynagg.NewTracker(iface,
		[]*dynagg.Aggregate{dynagg.CountAll()},
		dynagg.TrackerOptions{
			Algorithm:    dynagg.AlgoReissue,
			Budget:       600,
			Seed:         9,
			RetainTuples: true, // keep retrieved tuples for ad hoc queries
		})
	if err != nil {
		log.Fatal(err)
	}

	// Record the truth of the future ad hoc question at every round, so we
	// can grade the answer later. (Only the simulator can do this — the
	// tracker itself never sees the full database.)
	sumPrice := dynagg.SumOf("SUM(price)", dynagg.AuxField(0))
	truthAt := map[int]float64{}

	for round := 1; round <= 8; round++ {
		if round > 1 {
			if err := env.DeleteFraction(0.01); err != nil {
				log.Fatal(err)
			}
			if err := env.InsertFromPool(400); err != nil {
				log.Fatal(err)
			}
		}
		truthAt[round] = sumPrice.Truth(env.Store)
		if err := tracker.Step(); err != nil {
			log.Fatal(err)
		}
	}

	fmt.Println("at round 8, asking about past rounds:")
	fmt.Println("round | ad hoc SUM(price) estimate |        truth | rel.err")
	for _, past := range []int{3, 5, 8} {
		est, err := tracker.AdHoc(dynagg.SumOf("SUM(price)@past", dynagg.AuxField(0)), past)
		if err != nil {
			// Old rounds may have been fully superseded in the pool.
			fmt.Printf("%5d | %v\n", past, err)
			continue
		}
		truth := truthAt[past]
		fmt.Printf("%5d | %26.0f | %12.0f | %6.1f%%\n",
			past, est.Value, truth, 100*math.Abs(est.Value-truth)/truth)
	}
}
