package estimator

import (
	"sync"
	"sync/atomic"

	"github.com/dynagg/dynagg/internal/hiddendb"
	"github.com/dynagg/dynagg/internal/querytree"
	"github.com/dynagg/dynagg/internal/schema"
)

// This file is the round-level execution engine behind the plan/execute
// split. Estimators no longer interleave random choices with query
// issuance: each phase of a Step first PLANS an ordered batch of
// drill-down walks — drawing every random bit (signatures, pilot
// selections, execution shuffles) from Config.Rand up front — and then
// hands the batch to runPlan, which may issue the walks concurrently.
//
// The invariant runPlan maintains is that its outcomes are byte-identical
// to running the same ordered batch sequentially against the shared
// budgeted session, for every worker count:
//
//   - A walk's outcome depends only on its signature, its start depth and
//     the database state, never on sibling walks: within a round the
//     round-update model freezes the data (local Iface answers from one
//     immutable snapshot; a remote dynagg-serve holds each version frozen
//     between churn ticks), so walks commute.
//   - Budget is the only shared resource. runPlan admits a wave of walks
//     only when the sum of their worst-case costs fits into the session's
//     remaining budget — such walks can never die of budget, so their
//     completion order is irrelevant — and once the remaining budget
//     drops below a walk's worst case it falls back to running walks one
//     at a time with the entire remaining budget, which is exactly the
//     sequential shared-budget semantics, including the final walk dying
//     mid-drill with ErrBudgetExhausted.
//   - Results are applied by the caller in plan (drill-index) order, so
//     pool mutation and float accumulation order never depend on timing.
//
// Sessions with a pre-search hook (the constant-update model mutates the
// database per query, making walk outcomes order-dependent) and the
// client-cache ablation (cache hits skip budget, making costs depend on
// cross-walk timing) are detected and executed with one worker, where the
// engine degenerates to the plain sequential loop.
//
// The byte-identity guarantee presumes the round budget is enforced by
// the SESSION (client side) — the only budget the wave admission can
// see. A remote database's own per-key budget is an external shared
// resource charged in arrival order: if IT runs out mid-wave (HTTP 429 →
// webiface.BudgetExhaustedError), the round still ends as a normal
// budget death, but which of the wave's walks completed first is
// timing-dependent — the same nondeterminism any live site exhibits.
// Keep remote runs reproducible by aligning budgets: session G no larger
// than the server's per-key round allocation.

// drillOp is one planned drill-down walk: either a fresh from-root drill
// for a signature drawn at plan time, or an update of an existing drill
// from its last known depth.
type drillOp struct {
	d         *drill              // update target; nil ⇒ fresh drill
	sig       querytree.Signature // walk signature (copied from d for updates)
	prevDepth int                 // update: depth of the previous top node
	maxCost   int                 // worst-case queries this walk can issue
}

// opResult is one walk's outcome. err is nil on success, unwraps to
// hiddendb.ErrBudgetExhausted on a budget death, and is terminal
// otherwise; ran is false for ops skipped after an earlier op's error.
// used counts the queries the walk issued (tracked through its
// allowance), so aborted waves can account their speculative waste.
type opResult struct {
	outcome querytree.Outcome
	err     error
	ran     bool
	used    int
}

// planFresh draws the next fresh drill-down op from the round RNG.
func (b *base) planFresh() drillOp {
	sig := b.tree.RandomSignature(b.cfg.Rand)
	return drillOp{sig: sig, maxCost: b.tree.Depth() + 1}
}

// planUpdate plans an update walk of d from its current depth. Worst case
// is one reissue plus either a full drill down to the leaf or a full roll
// up to the root.
func (b *base) planUpdate(d *drill) drillOp {
	pd := d.cur.depth
	return drillOp{
		d:         d,
		sig:       d.sig,
		prevDepth: pd,
		maxCost:   1 + maxInt(pd, b.tree.Depth()-pd),
	}
}

// execWorkers resolves how many goroutines may issue this round's walks
// concurrently: Config.Parallelism, clamped to 1 whenever correctness
// demands sequential issuance (client cache on, or a session that does
// not declare itself safe for concurrent Search calls).
func (b *base) execWorkers(sess Session) int {
	w := b.cfg.Parallelism
	if w <= 1 || b.cfg.ClientCache {
		return 1
	}
	cs, ok := sess.(hiddendb.ConcurrentSearcher)
	if !ok || !cs.ConcurrentSearchable() {
		return 1
	}
	return w
}

// runWalk executes one planned walk against s.
func runWalk(s hiddendb.Searcher, t *querytree.Tree, op *drillOp) opResult {
	var o querytree.Outcome
	var err error
	if op.d == nil {
		o, err = querytree.DrillFromRoot(s, t, op.sig)
	} else {
		o, err = querytree.UpdateDrill(s, t, op.sig, op.prevDepth)
	}
	return opResult{outcome: o, err: err, ran: true}
}

// runPlan executes the planned walks in op order against the searcher s
// (sess with the optional client-cache wrap), charging the shared session
// sess. See the file comment for the equivalence argument; callers apply
// results strictly in op order and stop at the first error.
func (b *base) runPlan(sess Session, s hiddendb.Searcher, ops []drillOp) []opResult {
	results := make([]opResult, len(ops))
	workers := b.execWorkers(sess)
	if workers <= 1 {
		for i := range ops {
			results[i] = runWalk(s, b.tree, &ops[i])
			if results[i].err != nil {
				break
			}
		}
		return results
	}
	i := 0
	for i < len(ops) {
		rem := sess.Remaining() // < 0 ⇒ unlimited
		wave := 0
		if rem < 0 {
			wave = len(ops) - i
		} else {
			budget := rem
			for i+wave < len(ops) && ops[i+wave].maxCost <= budget {
				budget -= ops[i+wave].maxCost
				wave++
			}
		}
		if wave == 0 {
			// Tail: the next walk runs alone with everything that remains,
			// so a death here is exactly a sequential shared-budget death.
			a := &allowance{inner: s, left: rem}
			results[i] = runWalk(a, b.tree, &ops[i])
			results[i].used = a.used
			if results[i].err != nil {
				return results
			}
			i++
			continue
		}
		if bs, ok := s.(hiddendb.BatchSearcher); ok && b.cfg.Batch {
			b.runWaveBatch(bs, ops[i:i+wave], results[i:i+wave])
		} else {
			b.runWave(workers, s, ops[i:i+wave], results[i:i+wave])
		}
		for j := i; j < i+wave; j++ {
			if results[j].err != nil {
				// First-in-order error ends the plan (a server-side budget
				// death or a terminal failure); walks after it may have run
				// speculatively, and their results are never applied — count
				// the queries they issued as the waste of concurrency. A
				// sequential run would have stopped at walk j and issued
				// none of them (the ROADMAP speculative-issuance item).
				for k := j + 1; k < i+wave; k++ {
					if results[k].ran {
						b.wasted += results[k].used
					}
				}
				return results
			}
		}
		i += wave
	}
	return results
}

// runWave issues one budget-covered wave of walks on a bounded worker
// pool. Every walk in the wave holds a full worst-case allowance, so none
// can exhaust the shared budget.
func (b *base) runWave(workers int, s hiddendb.Searcher, ops []drillOp, results []opResult) {
	if workers > len(ops) {
		workers = len(ops)
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(ops) {
					return
				}
				a := &allowance{inner: s, left: ops[i].maxCost}
				results[i] = runWalk(a, b.tree, &ops[i])
				results[i].used = a.used
			}
		}()
	}
	wg.Wait()
}

// runWaveBatch issues one budget-covered wave as lockstep query batches:
// every still-running walk contributes its next query (in op order), the
// whole level goes out as ONE SearchBatch call — one round-trip, one
// snapshot/epoch pin — and each answer advances its walk's state machine.
// The walks are the same querytree.Walk machines the sequential paths
// loop over, so queries, costs and outcomes are byte-identical to
// runWave; only the transport pattern differs. Like runWave, every walk
// in the wave runs to completion (admission guarantees the shared budget
// covers all of them), and per-walk used counts include errored queries,
// mirroring the allowance wrapper.
func (b *base) runWaveBatch(bs hiddendb.BatchSearcher, ops []drillOp, results []opResult) {
	walks := make([]*querytree.Walk, len(ops))
	used := make([]int, len(ops))
	for i := range ops {
		if ops[i].d == nil {
			walks[i] = querytree.NewFreshWalk(b.tree, ops[i].sig)
		} else {
			walks[i] = querytree.NewUpdateWalk(b.tree, ops[i].sig, ops[i].prevDepth)
		}
	}
	live := make([]int, len(ops))
	for i := range live {
		live[i] = i
	}
	qs := make([]hiddendb.Query, 0, len(ops))
	for len(live) > 0 {
		qs = qs[:0]
		for _, i := range live {
			qs = append(qs, walks[i].NextQuery())
		}
		items, err := bs.SearchBatch(qs)
		if err != nil {
			// Whole-batch transport failure: every in-flight query was
			// attempted (and, remotely, charged) — fail all live walks.
			for _, i := range live {
				used[i]++
				walks[i].Fail(err)
			}
		} else {
			next := live[:0]
			for j, i := range live {
				used[i]++
				if it := items[j]; it.Err != nil {
					walks[i].Fail(it.Err)
				} else {
					walks[i].Feed(it.Result)
				}
				if !walks[i].Done() {
					next = append(next, i)
				}
			}
			live = next
		}
		for i := range walks {
			if walks[i].Done() && !results[i].ran {
				o, werr := walks[i].Outcome()
				results[i] = opResult{outcome: o, err: werr, ran: true, used: used[i]}
			}
		}
		if err != nil {
			return
		}
	}
}

// allowance caps the queries one walk may issue. Wave walks carry their
// worst-case cost (never binding — a guard); the tail walk carries the
// session's entire remaining budget, making its death identical to a
// shared-budget death. An allowance belongs to one walk goroutine.
type allowance struct {
	inner hiddendb.Searcher
	left  int // < 0 ⇒ unlimited
	used  int // queries actually handed to inner
}

func (a *allowance) Search(q hiddendb.Query) (hiddendb.Result, error) {
	if a.left == 0 {
		return hiddendb.Result{}, hiddendb.ErrBudgetExhausted
	}
	if a.left > 0 {
		a.left--
	}
	a.used++
	return a.inner.Search(q)
}

func (a *allowance) K() int                 { return a.inner.K() }
func (a *allowance) Schema() *schema.Schema { return a.inner.Schema() }

// applyResults consumes a plan's results strictly in op order, invoking
// apply for every completed walk. The first error classifies the phase's
// end: a budget death returns budgetDead=true (the normal way a round
// phase ends); anything else is returned as a terminal error. Walks
// after the first error are never applied.
func applyResults(ops []drillOp, results []opResult, apply func(i int, o querytree.Outcome)) (budgetDead bool, err error) {
	for i := range ops {
		res := &results[i]
		if !res.ran {
			// Defensive: an un-run op only follows an erroring one, which
			// returns below first.
			return true, nil
		}
		if res.err != nil {
			if errIsBudget(res.err) {
				return true, nil
			}
			return false, res.err
		}
		apply(i, res.outcome)
	}
	return false, nil
}

// applyFresh materialises a completed fresh-drill walk into a new drill.
// Called in plan order only.
func (b *base) applyFresh(op *drillOp, o querytree.Outcome, round int) *drill {
	b.drills++
	return &drill{sig: op.sig, cur: b.contributionOf(round, o)}
}

// applyUpdate folds a completed update walk back into its drill. Called
// in plan order only.
func (b *base) applyUpdate(d *drill, o querytree.Outcome, round int) {
	b.drills++
	if b.cfg.RetainTuples && d.prev.round != 0 {
		d.hist = append(d.hist, d.prev)
	}
	d.prev = d.cur
	d.cur = b.contributionOf(round, o)
}

// unlimitedFreshBatch is the batch size of open-ended fresh phases when
// the session has no budget: any fixed constant keeps the RNG stream
// independent of the worker count.
const unlimitedFreshBatch = 16

// runFreshPhase drills fresh signatures until the budget dies or the pool
// cap is hit, invoking apply for every completed drill in plan order. The
// batch size is a function of the remaining budget only — never of the
// worker count — so the signature stream is identical for every
// Parallelism. Returns whether the phase ended in a budget death.
func (b *base) runFreshPhase(sess Session, s hiddendb.Searcher, poolLen func() int, apply func(*drill)) (bool, error) {
	for {
		n := 0
		if rem := sess.Remaining(); rem < 0 {
			n = unlimitedFreshBatch
		} else {
			// Enough full-allowance drills to cover the budget, plus the
			// one that may die on the remainder.
			n = rem/(b.tree.Depth()+1) + 1
		}
		if b.cfg.MaxDrills > 0 {
			if head := b.cfg.MaxDrills - poolLen(); head < n {
				n = head
			}
		}
		if n <= 0 {
			return false, nil
		}
		ops := make([]drillOp, n)
		for i := range ops {
			ops[i] = b.planFresh()
		}
		results := b.runPlan(sess, s, ops)
		dead, err := applyResults(ops, results, func(i int, o querytree.Outcome) {
			apply(b.applyFresh(&ops[i], o, b.round))
		})
		if dead || err != nil {
			return dead, err
		}
	}
}
