package hiddendb

import (
	"math/rand"
	"testing"

	"github.com/dynagg/dynagg/internal/schema"
)

// A long randomized churn sequence: after every mutation batch, a random
// query must agree with the naive reference and the store's order
// invariant must hold. This exercises the interplay of incremental ops,
// batch merges, replaces and the per-version result cache.
func TestStoreChurnFuzz(t *testing.T) {
	st := newTestStore(t, 99, 600, []int{6, 5, 4, 7})
	f := NewIface(st, 20, nil)
	rng := rand.New(rand.NewSource(100))
	nextID := uint64(100000)

	randomVals := func() []uint16 {
		return []uint16{
			uint16(rng.Intn(6)), uint16(rng.Intn(5)),
			uint16(rng.Intn(4)), uint16(rng.Intn(7)),
		}
	}
	randomQuery := func() Query {
		var preds []Pred
		for a := 0; a < 4; a++ {
			if rng.Float64() < 0.35 {
				preds = append(preds, Pred{Attr: a, Val: uint16(rng.Intn(st.Schema().DomainSize(a)))})
			}
		}
		return NewQuery(preds...)
	}

	for step := 0; step < 120; step++ {
		switch rng.Intn(4) {
		case 0: // incremental inserts (duplicates of values allowed here)
			for i := 0; i < 5; i++ {
				nextID++
				_ = st.Insert(&schema.Tuple{ID: nextID, Vals: randomVals()})
			}
		case 1: // incremental deletes
			ids := st.IDs()
			for i := 0; i < 5 && len(ids) > 0; i++ {
				if _, err := st.Delete(ids[rng.Intn(len(ids))]); err == nil {
					ids = st.IDs()
				}
			}
		case 2: // batch churn
			var ins []*schema.Tuple
			for i := 0; i < 8; i++ {
				nextID++
				ins = append(ins, &schema.Tuple{ID: nextID, Vals: randomVals()})
			}
			ids := st.IDs()
			rng.Shuffle(len(ids), func(i, j int) { ids[i], ids[j] = ids[j], ids[i] })
			n := 6
			if n > len(ids) {
				n = len(ids)
			}
			if err := st.ApplyBatch(ins, ids[:n]); err != nil {
				t.Fatal(err)
			}
		case 3: // replace (aux mutation keeps position; value mutation moves)
			ids := st.IDs()
			if len(ids) > 0 {
				id := ids[rng.Intn(len(ids))]
				err := st.Replace(id, func(c *schema.Tuple) {
					c.Vals[rng.Intn(4)] = uint16(rng.Intn(4))
				})
				if err != nil {
					t.Fatal(err)
				}
			}
		}

		// Invariants after every batch of mutations.
		sortedInvariant(t, st)
		q := randomQuery()
		got, err := f.Search(q)
		if err != nil {
			t.Fatal(err)
		}
		want := naiveTopK(st, q, 20, DefaultScorer)
		if got.Overflow != want.Overflow || len(got.Tuples) != len(want.Tuples) {
			t.Fatalf("step %d: q=%v result diverged from naive", step, q)
		}
		for i := range got.Tuples {
			if got.Tuples[i].ID != want.Tuples[i].ID {
				t.Fatalf("step %d: q=%v rank %d diverged", step, q, i)
			}
		}
		// Cache must serve an identical answer on the repeat.
		again, _ := f.Search(q)
		if len(again.Tuples) != len(got.Tuples) || again.Overflow != got.Overflow {
			t.Fatalf("step %d: cached answer differs", step)
		}
	}
}
