package estimator

import (
	"github.com/dynagg/dynagg/internal/agg"
	"github.com/dynagg/dynagg/internal/hiddendb"
	"github.com/dynagg/dynagg/internal/querytree"
	"github.com/dynagg/dynagg/internal/schema"
)

// Reissue is REISSUE-ESTIMATOR (paper §3, Algorithm 1). The signature set
// is generated once; each subsequent round every previous drill down is
// *updated* from its last top non-overflowing node — saving the whole
// root-to-q path when nothing changed — and the leftover budget starts new
// drill downs that join the signature set.
type Reissue struct {
	*base
	pool []*drill
}

// NewReissue builds the query-reissuing estimator.
func NewReissue(sch *schema.Schema, aggs []*agg.Aggregate, cfg Config) (*Reissue, error) {
	b, err := newBase("REISSUE", sch, aggs, cfg)
	if err != nil {
		return nil, err
	}
	return &Reissue{base: b}, nil
}

// Step runs one round: update every previous drill down (random order, so
// a mid-round budget death does not systematically favour old signatures),
// then spend the remainder on new drill downs. Each phase is planned up
// front and handed to the execution engine (exec.go), which may issue the
// walks concurrently without changing any estimate.
func (r *Reissue) Step(sess Session) error {
	r.round++
	startUsed := sess.Used()
	s := r.searcher(sess)

	// Phase 1: update all previous drill downs.
	order := r.cfg.Rand.Perm(len(r.pool))
	ops := make([]drillOp, len(order))
	for i, idx := range order {
		ops[i] = r.planUpdate(r.pool[idx])
	}
	results := r.runPlan(sess, s, ops)
	budgetDead, err := applyResults(ops, results, func(i int, o querytree.Outcome) {
		r.applyUpdate(ops[i].d, o, r.round)
	})
	if err != nil {
		return err
	}

	// Phase 2: new drill downs with the remaining budget.
	if !budgetDead {
		if _, err := r.runFreshPhase(sess, s,
			func() int { return len(r.pool) },
			func(d *drill) { r.pool = append(r.pool, d) }); err != nil {
			return err
		}
	}
	r.used = sess.Used() - startUsed

	// Estimates from drills current at this round (stale ones — possible
	// after a budget death — are excluded to avoid mixing database states).
	var current []*drill
	for _, d := range r.pool {
		if d.cur.round == r.round {
			current = append(current, d)
		}
	}
	for i, a := range r.aggs {
		if len(current) > 0 {
			r.estimates[i] = meanEstimate(a, current, i)
			r.estOK[i] = true
		}
		if est, ok := pairedDelta(a, r.pool, i, r.round); ok {
			r.deltas[i] = est
			r.deltaOK[i] = true
		} else {
			r.deltaOK[i] = false
		}
	}
	return nil
}

// PoolSize returns the number of live drill downs (diagnostics).
func (r *Reissue) PoolSize() int { return len(r.pool) }

// AdHoc evaluates a new aggregate against the retained tuples of any past
// round still held by the pool (requires Config.RetainTuples).
func (r *Reissue) AdHoc(a *agg.Aggregate, round int) (Estimate, error) {
	return adHocPair(r.pool, a, round)
}

var _ Estimator = (*Reissue)(nil)

// Ensure interface conformance for the session type we actually pass in.
var _ hiddendb.Searcher = (*hiddendb.Session)(nil)
