package router

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"

	"github.com/dynagg/dynagg/internal/httpapi"
)

// The fleet epoch handshake: two-phase publication driven from the
// router.
//
//	probe    GET  /v1/shard/epoch on every shard — health, current seq,
//	         leftover freezes (best-effort aborted before proceeding)
//	freeze   POST /v1/shard/freeze on every shard; any failure aborts
//	         the fleet and the handshake fails
//	publish  POST /v1/shard/publish {"seq":next} on every shard; any
//	         failure aborts the fleet — shards where the publish already
//	         landed roll back to the superseded epoch, shards still
//	         pending discard the freeze — and the handshake fails
//
// next is max(pinned seq, every shard's current seq) + 1, so a router
// restart (pinned seq lost) can never hand out a stale sequence: the
// shards themselves remember how far the fleet got.
//
// Handshake holds the router's epoch pin for write, so no query fan-out
// straddles the flip; on success the pin moves to next, every
// connection's mismatch flag clears, and per-key budgets reset (fleet
// epochs are the router's rounds).

// adminURL joins a shard base with an admin route.
func adminURL(base, route string) string {
	return strings.TrimRight(base, "/") + route
}

// adminPost POSTs an admin route, decoding the error envelope on
// non-200.
func (rt *Router) adminPost(ctx context.Context, base, route string, body any, out any) error {
	var rd *bytes.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			return err
		}
		rd = bytes.NewReader(b)
	} else {
		rd = bytes.NewReader(nil)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, adminURL(base, route), rd)
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := rt.admin.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		if e, ok := httpapi.DecodeError(resp.Body); ok {
			return fmt.Errorf("%s: %s: %w", route, resp.Status, &e)
		}
		return fmt.Errorf("%s: %s", route, resp.Status)
	}
	if out != nil {
		return json.NewDecoder(resp.Body).Decode(out)
	}
	return nil
}

// adminEpoch probes one shard's /v1/shard/epoch.
func (rt *Router) adminEpoch(ctx context.Context, base string) (wireShardEpoch, error) {
	var out wireShardEpoch
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, adminURL(base, "/v1/shard/epoch"), nil)
	if err != nil {
		return out, err
	}
	resp, err := rt.admin.Do(req)
	if err != nil {
		return out, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return out, fmt.Errorf("/v1/shard/epoch: %s", resp.Status)
	}
	err = json.NewDecoder(resp.Body).Decode(&out)
	return out, err
}

// abortFleet fires the abort at every shard, best-effort: shards where
// publish(seq) landed roll back, shards still frozen discard the
// pending set, shards already clean no-op.
func (rt *Router) abortFleet(ctx context.Context, seq uint64) {
	for _, sc := range rt.conns {
		_ = rt.adminPost(ctx, sc.base, "/v1/shard/publish", wirePublish{Seq: seq, Abort: true}, nil)
	}
}

// Handshake drives one two-phase fleet epoch publication and, on
// success, pins the new sequence for serving. On any failure the fleet
// is aborted back to its prior epoch everywhere and the previously
// pinned epoch (if any) keeps serving. The caller must have shard-side
// mutators quiescent in the sense of ShardAdmin.WithMutators — the
// freeze itself enforces this per shard by taking the mutator lock.
func (rt *Router) Handshake(ctx context.Context) (uint64, error) {
	rt.pinMu.Lock()
	defer rt.pinMu.Unlock()
	rt.handshakes.Add(1)

	// Probe: every shard must be reachable, and a leftover freeze from a
	// handshake that died mid-flight is discarded before we start ours.
	next := rt.seq.Load()
	for i, sc := range rt.conns {
		ep, err := rt.adminEpoch(ctx, sc.base)
		if err != nil {
			sc.healthy.Store(false)
			return 0, fmt.Errorf("router: handshake probe: shard %d (%s): %w", i, sc.base, err)
		}
		sc.healthy.Store(true)
		if ep.Frozen {
			if err := rt.adminPost(ctx, sc.base, "/v1/shard/publish", wirePublish{Seq: 0, Abort: true}, nil); err != nil {
				return 0, fmt.Errorf("router: handshake stale-freeze abort: shard %d (%s): %w", i, sc.base, err)
			}
		}
		if ep.Seq > next {
			next = ep.Seq
		}
	}
	next++

	// Freeze: all shards snapshot together. Any failure leaves some
	// shards frozen, so abort everywhere before reporting it.
	for i, sc := range rt.conns {
		if err := rt.adminPost(ctx, sc.base, "/v1/shard/freeze", nil, nil); err != nil {
			sc.healthy.Store(false)
			rt.abortFleet(ctx, 0)
			return 0, fmt.Errorf("router: handshake freeze: shard %d (%s): %w", i, sc.base, err)
		}
	}

	// Publish: all shards swap the frozen set in under the new sequence.
	// Any failure rolls the fleet back — including the shards where this
	// publish already landed.
	for i, sc := range rt.conns {
		var out wirePublished
		if err := rt.adminPost(ctx, sc.base, "/v1/shard/publish", wirePublish{Seq: next}, &out); err != nil {
			sc.healthy.Store(false)
			rt.abortFleet(ctx, next)
			return 0, fmt.Errorf("router: handshake publish: shard %d (%s): %w", i, sc.base, err)
		}
	}

	rt.seq.Store(next)
	for _, sc := range rt.conns {
		sc.lastSeq.Store(next)
		sc.mismatch.Store(false)
		sc.healthy.Store(true)
	}
	rt.ResetBudgets()
	return next, nil
}

// ProbeReport summarizes one health sweep over the fleet.
type ProbeReport struct {
	Healthy     int // reachable shards serving the pinned epoch
	Unreachable int
	Mismatched  int // reachable but serving a different epoch (restarted)
}

// NeedsHandshake reports whether the fleet cannot serve coherently
// without a new handshake.
func (p ProbeReport) NeedsHandshake() bool { return p.Mismatched > 0 }

// ProbeOnce sweeps every shard's /v1/shard/epoch, refreshing health and
// epoch-mismatch state. A shard found serving the pinned epoch again
// (e.g. transient network trouble healed) has its mismatch flag cleared;
// a shard on a different epoch (restarted) keeps or gains it, and the
// report tells the caller to re-handshake.
func (rt *Router) ProbeOnce(ctx context.Context) ProbeReport {
	var rep ProbeReport
	pinned := rt.seq.Load()
	for _, sc := range rt.conns {
		ep, err := rt.adminEpoch(ctx, sc.base)
		if err != nil {
			sc.healthy.Store(false)
			rep.Unreachable++
			continue
		}
		sc.healthy.Store(true)
		sc.lastSeq.Store(ep.Seq)
		if pinned != 0 && ep.Seq != pinned {
			sc.mismatch.Store(true)
			rep.Mismatched++
			continue
		}
		sc.mismatch.Store(false)
		rep.Healthy++
	}
	return rep
}
