package hiddendb

import (
	"math/bits"
	"reflect"

	"github.com/dynagg/dynagg/internal/schema"
)

// ID-domain scoring.
//
// The dominant cost of an indexed top-k answer is not finding the
// candidates — the intersection kernels run over compact uint16/bitmap
// material — but scoring them: a generic Scorer needs the tuple, and each
// *schema.Tuple dereference is a cache miss on a million-tuple heap. A
// scorer that is a pure function of the tuple ID doesn't need the tuple
// at all: a posting container reconstructs every member's full ID from
// its key and low 16 bits, so candidates can be ranked entirely off index
// material and only the ≤ k winners are ever dereferenced.
//
// The engine recognises such scorers by code-pointer identity against a
// registry of known ID-pure functions (currently DefaultScorer, whose
// tuple- and ID-domain implementations share one body). Top-level
// functions capture no state, so pointer identity is a sound equality
// test; closures can never alias a top-level function's code pointer, so
// a user scorer that merely looks similar still takes the tuple path.
// Both paths rank under the identical strict (score desc, ID asc) order —
// the equivalence tests cover the fast path byte for byte.

// invUint64Max normalises a 64-bit hash into [0,1]; multiplying by the
// precomputed reciprocal is several cycles cheaper than dividing, and it
// runs once per candidate.
const invUint64Max = 1.0 / float64(^uint64(0))

// defaultScoreID is DefaultScorer in the ID domain; DefaultScorer
// delegates to it, so the two can never drift apart.
func defaultScoreID(id uint64) float64 {
	return float64(splitmix64(id)) * invUint64Max
}

var defaultScorerPC = reflect.ValueOf(Scorer(DefaultScorer)).Pointer()

// scorerIsIDPure reports whether the engine knows scorer to be a pure
// function of the tuple ID, i.e. safe to evaluate as defaultScoreID
// without dereferencing the tuple. The scan loops call defaultScoreID
// directly (a static call the compiler can inline) rather than through a
// function value, which is worth ~10% on the indexed hot path.
func scorerIsIDPure(sc Scorer) bool {
	return sc != nil && reflect.ValueOf(sc).Pointer() == defaultScorerPC
}

// idTopK is topK in the ID domain: candidates are ranked by (score, ID)
// with only their container and payload position retained, so no tuple
// memory is touched until drain fetches the winners.
type idTopK struct {
	ids    []uint64
	scores []float64
	srcC   []*pcontainer
	srcP   []int32 // payload index within srcC; container counts fit int32
}

func (h *idTopK) reset() {
	h.ids = h.ids[:0]
	h.scores = h.scores[:0]
	h.srcC = h.srcC[:0]
	h.srcP = h.srcP[:0]
}

func (h *idTopK) worse(i, j int) bool {
	if h.scores[i] != h.scores[j] {
		return h.scores[i] < h.scores[j]
	}
	return h.ids[i] > h.ids[j]
}

func (h *idTopK) swap(i, j int) {
	h.ids[i], h.ids[j] = h.ids[j], h.ids[i]
	h.scores[i], h.scores[j] = h.scores[j], h.scores[i]
	h.srcC[i], h.srcC[j] = h.srcC[j], h.srcC[i]
	h.srcP[i], h.srcP[j] = h.srcP[j], h.srcP[i]
}

func (h *idTopK) siftUp(i int) {
	for i > 0 {
		p := (i - 1) / 2
		if !h.worse(i, p) {
			return
		}
		h.swap(i, p)
		i = p
	}
}

func (h *idTopK) siftDown(i int) {
	n := len(h.ids)
	for {
		l := 2*i + 1
		if l >= n {
			return
		}
		m := l
		if r := l + 1; r < n && h.worse(r, l) {
			m = r
		}
		if !h.worse(m, i) {
			return
		}
		h.swap(i, m)
		i = m
	}
}

func (h *idTopK) offer(id uint64, s float64, c *pcontainer, pos int32, k int) {
	if len(h.ids) < k {
		h.ids = append(h.ids, id)
		h.scores = append(h.scores, s)
		h.srcC = append(h.srcC, c)
		h.srcP = append(h.srcP, pos)
		h.siftUp(len(h.ids) - 1)
		return
	}
	if s > h.scores[0] || (s == h.scores[0] && id < h.ids[0]) {
		h.ids[0], h.scores[0], h.srcC[0], h.srcP[0] = id, s, c, pos
		h.siftDown(0)
	}
}

// drain dereferences the retained winners into a freshly allocated
// best-first slice, same (score desc, ID asc) order as topK.drain.
func (h *idTopK) drain() []*schema.Tuple {
	out := make([]*schema.Tuple, len(h.ids))
	for i := len(h.ids) - 1; i >= 0; i-- {
		out[i] = h.srcC[0].tuples[h.srcP[0]]
		last := len(h.ids) - 1
		h.ids[0], h.scores[0], h.srcC[0], h.srcP[0] = h.ids[last], h.scores[last], h.srcC[last], h.srcP[last]
		h.ids = h.ids[:last]
		h.scores = h.scores[:last]
		h.srcC = h.srcC[:last]
		h.srcP = h.srcP[:last]
		h.siftDown(0)
	}
	return out
}

// drop reports that a candidate cannot enter the (full) heap: strictly
// worse than the current root under (score desc, ID asc). Small enough
// to inline at the scan call sites, so the overwhelmingly common reject
// case never pays the offer call.
func (h *idTopK) drop(id uint64, s float64, k int) bool {
	return len(h.ids) == k && (s < h.scores[0] || (s == h.scores[0] && id >= h.ids[0]))
}

// scanIDScored runs a fully covered postings plan in the ID domain,
// filling sc.idtop with the top k and adding the match count to
// sc.matches. Valid only when pln.postings is set and rest is empty.
func (s *Snapshot) scanIDScored(pln *queryPlan, sc *queryScratch, k int) {
	h := &sc.idtop
	for _, part := range [2]*postingList{pln.seed.val, pln.seed.null} {
		if part == nil {
			continue
		}
		for ci := range part.cs {
			c := &part.cs[ci]
			base := c.key << 16
			if len(pln.others) == 0 {
				// Whole container qualifies; payload position follows
				// enumeration order in both forms.
				sc.matches += c.count()
				if c.bits == nil {
					for i, low := range c.ids {
						id := base | uint64(low)
						if s := defaultScoreID(id); !h.drop(id, s, k) {
							h.offer(id, s, c, int32(i), k)
						}
					}
					continue
				}
				pos := int32(0)
				for w := 0; w < bitmapWords; w++ {
					m := c.bits[w]
					wbase := base | uint64(w)<<6
					for m != 0 {
						id := wbase | uint64(bits.TrailingZeros64(m))
						if s := defaultScoreID(id); !h.drop(id, s, k) {
							h.offer(id, s, c, pos, k)
						}
						pos++
						m &= m - 1
					}
				}
				continue
			}
			surv := sc.runIntersect(c, pln.others)
			sc.matches += len(surv)
			if c.bits == nil {
				j := 0
				for _, low := range surv {
					j = gallopTo(c.ids, j, low)
					id := base | uint64(low)
					if s := defaultScoreID(id); !h.drop(id, s, k) {
						h.offer(id, s, c, int32(j), k)
					}
					j++
				}
			} else {
				for _, low := range surv {
					id := base | uint64(low)
					if s := defaultScoreID(id); !h.drop(id, s, k) {
						h.offer(id, s, c, int32(c.rankOf(low)), k)
					}
				}
			}
		}
	}
}
