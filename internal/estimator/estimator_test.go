package estimator

import (
	"math"
	"math/rand"
	"testing"

	"github.com/dynagg/dynagg/internal/agg"
	"github.com/dynagg/dynagg/internal/hiddendb"
	"github.com/dynagg/dynagg/internal/stats"
	"github.com/dynagg/dynagg/internal/workload"
)

// testEnv bundles a dynamic database and its restricted interface.
type testEnv struct {
	env   *workload.Env
	iface *hiddendb.Iface
}

func newTestEnv(t testing.TB, seed int64, n, initial, k int) *testEnv {
	t.Helper()
	data := workload.AutosLikeN(seed, n, 8)
	env, err := workload.NewEnv(data, initial, seed+1)
	if err != nil {
		t.Fatal(err)
	}
	return &testEnv{env: env, iface: hiddendb.NewIface(env.Store, k, nil)}
}

func cfg(seed int64) Config {
	return Config{Rand: rand.New(rand.NewSource(seed))}
}

func TestConstructorValidation(t *testing.T) {
	te := newTestEnv(t, 1, 2000, 1500, 50)
	sch := te.env.Store.Schema()
	if _, err := NewRestart(sch, nil, cfg(1)); err == nil {
		t.Error("no aggregates accepted")
	}
	if _, err := NewRestart(sch, []*agg.Aggregate{agg.CountAll()}, Config{}); err == nil {
		t.Error("missing Rand accepted")
	}
	for _, mk := range []func() (Estimator, error){
		func() (Estimator, error) { return NewRestart(sch, []*agg.Aggregate{agg.CountAll()}, cfg(2)) },
		func() (Estimator, error) { return NewReissue(sch, []*agg.Aggregate{agg.CountAll()}, cfg(2)) },
		func() (Estimator, error) { return NewRS(sch, []*agg.Aggregate{agg.CountAll()}, cfg(2)) },
	} {
		e, err := mk()
		if err != nil {
			t.Fatal(err)
		}
		if e.Round() != 0 {
			t.Errorf("%s: fresh round = %d", e.Name(), e.Round())
		}
		if _, ok := e.Estimate(0); ok {
			t.Errorf("%s: estimate before any step", e.Name())
		}
		if _, ok := e.Estimate(99); ok {
			t.Errorf("%s: out-of-range index accepted", e.Name())
		}
		if _, ok := e.EstimateDelta(0); ok {
			t.Errorf("%s: delta before any step", e.Name())
		}
	}
}

// All three estimators must respect the per-round budget exactly.
func TestBudgetNeverExceeded(t *testing.T) {
	for _, name := range []string{"RESTART", "REISSUE", "RS"} {
		te := newTestEnv(t, 10, 5000, 4000, 100)
		sch := te.env.Store.Schema()
		aggs := []*agg.Aggregate{agg.CountAll()}
		var e Estimator
		var err error
		switch name {
		case "RESTART":
			e, err = NewRestart(sch, aggs, cfg(11))
		case "REISSUE":
			e, err = NewReissue(sch, aggs, cfg(11))
		case "RS":
			e, err = NewRS(sch, aggs, cfg(11))
		}
		if err != nil {
			t.Fatal(err)
		}
		const G = 120
		for round := 1; round <= 5; round++ {
			if round > 1 {
				if err := te.env.InsertFromPool(50); err != nil {
					t.Fatal(err)
				}
			}
			sess := te.iface.NewSession(G)
			if err := e.Step(sess); err != nil {
				t.Fatalf("%s round %d: %v", name, round, err)
			}
			if sess.Used() > G {
				t.Fatalf("%s round %d used %d > %d", name, round, sess.Used(), G)
			}
			if e.UsedLastRound() != sess.Used() {
				t.Errorf("%s UsedLastRound=%d, session says %d", name, e.UsedLastRound(), sess.Used())
			}
			if e.Round() != round {
				t.Errorf("%s Round=%d, want %d", name, e.Round(), round)
			}
		}
	}
}

// Unbiasedness (Theorem 3.1 / 4.1): across many independent runs over the
// same static database, the mean estimate converges to the truth.
func TestUnbiasedOverTrials(t *testing.T) {
	te := newTestEnv(t, 20, 20000, 20000, 100)
	sch := te.env.Store.Schema()
	truth := float64(te.env.Store.Size())

	for _, name := range []string{"RESTART", "REISSUE", "RS"} {
		var r stats.Running
		for trial := 0; trial < 40; trial++ {
			aggs := []*agg.Aggregate{agg.CountAll()}
			var e Estimator
			var err error
			c := cfg(int64(1000 + trial))
			switch name {
			case "RESTART":
				e, err = NewRestart(sch, aggs, c)
			case "REISSUE":
				e, err = NewReissue(sch, aggs, c)
			case "RS":
				e, err = NewRS(sch, aggs, c)
			}
			if err != nil {
				t.Fatal(err)
			}
			if err := e.Step(te.iface.NewSession(400)); err != nil {
				t.Fatal(err)
			}
			est, ok := e.Estimate(0)
			if !ok {
				t.Fatalf("%s: no estimate", name)
			}
			r.Add(est.Value)
		}
		if rel := math.Abs(r.Mean()-truth) / truth; rel > 0.15 {
			t.Errorf("%s: mean of 40 trials off by %.0f%% (mean=%.0f truth=%.0f)",
				name, rel*100, r.Mean(), truth)
		}
	}
}

// REISSUE over a static database: second-round updates cost ~2 queries per
// drill down, so it completes far more drill downs than RESTART under the
// same budget (the Example 1 argument).
func TestReissueSavesQueriesWhenStatic(t *testing.T) {
	te := newTestEnv(t, 30, 20000, 20000, 100)
	sch := te.env.Store.Schema()

	re, err := NewReissue(sch, []*agg.Aggregate{agg.CountAll()}, cfg(31))
	if err != nil {
		t.Fatal(err)
	}
	rs, err := NewRestart(sch, []*agg.Aggregate{agg.CountAll()}, cfg(31))
	if err != nil {
		t.Fatal(err)
	}
	const G = 300
	for round := 1; round <= 4; round++ {
		if err := re.Step(te.iface.NewSession(G)); err != nil {
			t.Fatal(err)
		}
		if err := rs.Step(te.iface.NewSession(G)); err != nil {
			t.Fatal(err)
		}
	}
	if re.DrillDowns() <= rs.DrillDowns() {
		t.Errorf("REISSUE drill downs %d not above RESTART %d on static data",
			re.DrillDowns(), rs.DrillDowns())
	}
	// And its final-round estimate should use more drills than RESTART's.
	reEst, _ := re.Estimate(0)
	rsEst, _ := rs.Estimate(0)
	if reEst.Drills <= rsEst.Drills {
		t.Errorf("REISSUE drills/round %d <= RESTART %d", reEst.Drills, rsEst.Drills)
	}
}

// Tracking through rounds of churn: every round's estimate should stay
// within a loose band of the truth for all three estimators.
func TestTrackingUnderChurn(t *testing.T) {
	for _, name := range []string{"RESTART", "REISSUE", "RS"} {
		te := newTestEnv(t, 40, 30000, 25000, 100)
		sch := te.env.Store.Schema()
		aggs := []*agg.Aggregate{agg.CountAll()}
		var e Estimator
		var err error
		switch name {
		case "RESTART":
			e, err = NewRestart(sch, aggs, cfg(41))
		case "REISSUE":
			e, err = NewReissue(sch, aggs, cfg(41))
		case "RS":
			e, err = NewRS(sch, aggs, cfg(41))
		}
		if err != nil {
			t.Fatal(err)
		}
		var rels []float64
		for round := 1; round <= 8; round++ {
			if round > 1 {
				if err := te.env.DeleteFraction(0.01); err != nil {
					t.Fatal(err)
				}
				if err := te.env.InsertFromPool(300); err != nil {
					t.Fatal(err)
				}
			}
			if err := e.Step(te.iface.NewSession(500)); err != nil {
				t.Fatal(err)
			}
			est, ok := e.Estimate(0)
			if !ok {
				t.Fatalf("%s round %d: no estimate", name, round)
			}
			rels = append(rels, stats.RelativeError(est.Value, float64(te.env.Store.Size())))
		}
		// Average relative error across rounds must be sane.
		mean, _ := stats.Mean(rels)
		if mean > 0.5 {
			t.Errorf("%s: mean relative error %.2f too high (%v)", name, mean, rels)
		}
	}
}

// Trans-round delta estimates: REISSUE's paired deltas should track the
// true |D_j| − |D_{j-1}| with far less noise than differencing RESTART's
// independent estimates (the §3.2.1 Example 1 argument).
func TestDeltaEstimates(t *testing.T) {
	te := newTestEnv(t, 50, 30000, 25000, 100)
	sch := te.env.Store.Schema()

	re, err := NewReissue(sch, []*agg.Aggregate{agg.CountAll()}, cfg(51))
	if err != nil {
		t.Fatal(err)
	}
	rs, err := NewRestart(sch, []*agg.Aggregate{agg.CountAll()}, cfg(52))
	if err != nil {
		t.Fatal(err)
	}

	prevSize := te.env.Store.Size()
	var reErr, restartErr stats.Running
	for round := 1; round <= 6; round++ {
		if round > 1 {
			if err := te.env.InsertFromPool(500); err != nil {
				t.Fatal(err)
			}
		}
		trueDelta := float64(te.env.Store.Size() - prevSize)
		prevSize = te.env.Store.Size()
		if err := re.Step(te.iface.NewSession(500)); err != nil {
			t.Fatal(err)
		}
		if err := rs.Step(te.iface.NewSession(500)); err != nil {
			t.Fatal(err)
		}
		if round == 1 {
			if _, ok := re.EstimateDelta(0); ok {
				t.Error("delta available at round 1")
			}
			continue
		}
		if d, ok := re.EstimateDelta(0); ok {
			reErr.Add(math.Abs(d.Value - trueDelta))
		} else {
			t.Fatalf("REISSUE: no delta at round %d", round)
		}
		if d, ok := rs.EstimateDelta(0); ok {
			restartErr.Add(math.Abs(d.Value - trueDelta))
		}
	}
	if reErr.Mean() >= restartErr.Mean() {
		t.Errorf("REISSUE delta error %.0f not below RESTART %.0f", reErr.Mean(), restartErr.Mean())
	}
}

// RS on a static database must keep improving (more drill downs,
// shrinking variance) where REISSUE plateaus — the §4.1 motivation.
func TestRSBeatsReissueWhenStatic(t *testing.T) {
	te := newTestEnv(t, 60, 20000, 20000, 100)
	sch := te.env.Store.Schema()

	re, err := NewReissue(sch, []*agg.Aggregate{agg.CountAll()}, cfg(61))
	if err != nil {
		t.Fatal(err)
	}
	rse, err := NewRS(sch, []*agg.Aggregate{agg.CountAll()}, cfg(61))
	if err != nil {
		t.Fatal(err)
	}
	const G = 200
	for round := 1; round <= 10; round++ {
		if err := re.Step(te.iface.NewSession(G)); err != nil {
			t.Fatal(err)
		}
		if err := rse.Step(te.iface.NewSession(G)); err != nil {
			t.Fatal(err)
		}
	}
	// On static data RS routes its budget into NEW signatures (REISSUE is
	// stuck re-verifying its fixed set), so RS must cover clearly more
	// distinct signatures...
	if rse.PoolSize() <= re.PoolSize() {
		t.Errorf("RS pool %d not above REISSUE pool %d on static data",
			rse.PoolSize(), re.PoolSize())
	}
	// ...and its combined estimate keeps sharpening across rounds while
	// REISSUE's variance plateaus at the §4.1 lower bound.
	reEst, ok1 := re.Estimate(0)
	rsEst, ok2 := rse.Estimate(0)
	if !ok1 || !ok2 {
		t.Fatal("missing estimates")
	}
	if rsEst.Variance >= reEst.Variance {
		t.Errorf("RS variance %.3g not below REISSUE %.3g after 10 static rounds",
			rsEst.Variance, reEst.Variance)
	}
}

func TestMultipleAggregatesIncludingAvgAndSelection(t *testing.T) {
	te := newTestEnv(t, 70, 30000, 28000, 100)
	sch := te.env.Store.Schema()
	price := agg.AuxField(0)
	sel := hiddendb.NewQuery(hiddendb.Pred{Attr: 1, Val: 2})
	aggs := []*agg.Aggregate{
		agg.CountAll(),
		agg.SumOf("SUM(price)", price),
		agg.AvgOf("AVG(price)", price),
		agg.CountWhere("COUNT sel", sel),
	}
	e, err := NewReissue(sch, aggs, cfg(71))
	if err != nil {
		t.Fatal(err)
	}
	for round := 1; round <= 3; round++ {
		if round > 1 {
			if err := te.env.InsertFromPool(100); err != nil {
				t.Fatal(err)
			}
		}
		if err := e.Step(te.iface.NewSession(600)); err != nil {
			t.Fatal(err)
		}
	}
	for i, a := range aggs {
		est, ok := e.Estimate(i)
		if !ok {
			t.Fatalf("no estimate for %s", a)
		}
		truth := a.Truth(te.env.Store)
		rel := stats.RelativeError(est.Value, truth)
		if rel > 0.8 {
			t.Errorf("%s: relative error %.2f (est %.1f truth %.1f)", a, rel, est.Value, truth)
		}
	}
}

// A shared selection condition shrinks the tree (paper §3.3): the
// estimates should be much tighter than with the full tree.
func TestSharedSelectionUsesSubtree(t *testing.T) {
	te := newTestEnv(t, 80, 30000, 28000, 100)
	sch := te.env.Store.Schema()
	sel := hiddendb.NewQuery(hiddendb.Pred{Attr: 0, Val: 1})
	aggs := []*agg.Aggregate{agg.CountWhere("COUNT(A1=1)", sel)}
	e, err := NewReissue(sch, aggs, cfg(81))
	if err != nil {
		t.Fatal(err)
	}
	if e.tree.Depth() != sch.M()-1 {
		t.Fatalf("subtree not used: depth = %d", e.tree.Depth())
	}
	if err := e.Step(te.iface.NewSession(400)); err != nil {
		t.Fatal(err)
	}
	est, ok := e.Estimate(0)
	if !ok {
		t.Fatal("no estimate")
	}
	truth := aggs[0].Truth(te.env.Store)
	if rel := stats.RelativeError(est.Value, truth); rel > 0.5 {
		t.Errorf("subtree estimate rel err %.2f (est %.1f truth %.1f)", rel, est.Value, truth)
	}
}

func TestAdHocRequiresRetention(t *testing.T) {
	te := newTestEnv(t, 90, 10000, 9000, 100)
	sch := te.env.Store.Schema()

	// Without retention: error.
	e1, err := NewReissue(sch, []*agg.Aggregate{agg.CountAll()}, cfg(91))
	if err != nil {
		t.Fatal(err)
	}
	if err := e1.Step(te.iface.NewSession(200)); err != nil {
		t.Fatal(err)
	}
	if _, err := e1.AdHoc(agg.SumOf("adhoc", agg.AuxField(0)), 1); err == nil {
		t.Error("ad hoc without retention should fail")
	}

	// With retention: an aggregate never registered at Step time can be
	// estimated afterwards against round-1 data (§5.1 ad hoc model).
	c := cfg(92)
	c.RetainTuples = true
	e2, err := NewReissue(sch, []*agg.Aggregate{agg.CountAll()}, c)
	if err != nil {
		t.Fatal(err)
	}
	truth1 := agg.SumOf("x", agg.AuxField(0)).Truth(te.env.Store)
	if err := e2.Step(te.iface.NewSession(600)); err != nil {
		t.Fatal(err)
	}
	if err := te.env.InsertFromPool(300); err != nil {
		t.Fatal(err)
	}
	if err := e2.Step(te.iface.NewSession(600)); err != nil {
		t.Fatal(err)
	}
	est, err := e2.AdHoc(agg.SumOf("SUM(price)@R1", agg.AuxField(0)), 1)
	if err != nil {
		t.Fatal(err)
	}
	if rel := stats.RelativeError(est.Value, truth1); rel > 0.9 {
		t.Errorf("ad hoc rel err %.2f (est %.0f truth %.0f)", rel, est.Value, truth1)
	}
	if _, err := e2.AdHoc(agg.CountAll(), 77); err == nil {
		t.Error("ad hoc for unknown round should fail")
	}
}

// The client-cache ablation: with caching on, repeated queries are free,
// so strictly more drill downs fit in the same budget for RESTART.
func TestClientCacheAblation(t *testing.T) {
	te := newTestEnv(t, 100, 20000, 20000, 100)
	sch := te.env.Store.Schema()

	plain, err := NewRestart(sch, []*agg.Aggregate{agg.CountAll()}, cfg(101))
	if err != nil {
		t.Fatal(err)
	}
	cc := cfg(101)
	cc.ClientCache = true
	cached, err := NewRestart(sch, []*agg.Aggregate{agg.CountAll()}, cc)
	if err != nil {
		t.Fatal(err)
	}
	if err := plain.Step(te.iface.NewSession(200)); err != nil {
		t.Fatal(err)
	}
	if err := cached.Step(te.iface.NewSession(200)); err != nil {
		t.Fatal(err)
	}
	if cached.DrillDowns() <= plain.DrillDowns() {
		t.Errorf("client cache did not increase drill downs: %d vs %d",
			cached.DrillDowns(), plain.DrillDowns())
	}
}

func TestMaxDrillsBoundsPool(t *testing.T) {
	te := newTestEnv(t, 110, 10000, 9000, 100)
	sch := te.env.Store.Schema()
	c := cfg(111)
	c.MaxDrills = 20
	e, err := NewReissue(sch, []*agg.Aggregate{agg.CountAll()}, c)
	if err != nil {
		t.Fatal(err)
	}
	for round := 1; round <= 3; round++ {
		if err := e.Step(te.iface.NewSession(500)); err != nil {
			t.Fatal(err)
		}
	}
	if e.PoolSize() > 20 {
		t.Errorf("pool %d exceeds MaxDrills", e.PoolSize())
	}
}

// RS with the delta target must produce delta estimates and allocate
// budget without crashing in multi-round operation under churn.
func TestRSDeltaTarget(t *testing.T) {
	te := newTestEnv(t, 120, 30000, 25000, 100)
	sch := te.env.Store.Schema()
	e, err := NewRS(sch, []*agg.Aggregate{agg.CountAll()}, cfg(121), WithDeltaTarget())
	if err != nil {
		t.Fatal(err)
	}
	prev := te.env.Store.Size()
	for round := 1; round <= 6; round++ {
		if round > 1 {
			if err := te.env.InsertFromPool(400); err != nil {
				t.Fatal(err)
			}
			if err := te.env.DeleteFraction(0.005); err != nil {
				t.Fatal(err)
			}
		}
		trueDelta := float64(te.env.Store.Size() - prev)
		prev = te.env.Store.Size()
		if err := e.Step(te.iface.NewSession(500)); err != nil {
			t.Fatal(err)
		}
		if round >= 2 {
			d, ok := e.EstimateDelta(0)
			if !ok {
				t.Fatalf("no delta at round %d", round)
			}
			if math.Abs(d.Value-trueDelta) > float64(te.env.Store.Size()) {
				t.Errorf("round %d: delta estimate %v wildly off (true %v)", round, d.Value, trueDelta)
			}
		}
	}
}

func TestWithPrimaryAggregate(t *testing.T) {
	te := newTestEnv(t, 130, 5000, 4500, 100)
	sch := te.env.Store.Schema()
	aggs := []*agg.Aggregate{agg.CountAll(), agg.SumOf("SUM(price)", agg.AuxField(0))}
	e, err := NewRS(sch, aggs, cfg(131), WithPrimaryAggregate(1))
	if err != nil {
		t.Fatal(err)
	}
	if e.primary != 1 {
		t.Errorf("primary = %d", e.primary)
	}
	// Out of range resets to 0.
	e2, err := NewRS(sch, aggs, cfg(132), WithPrimaryAggregate(9))
	if err != nil {
		t.Fatal(err)
	}
	if e2.primary != 0 {
		t.Errorf("out-of-range primary = %d", e2.primary)
	}
}

// Tiny budgets: estimators must degrade gracefully, never exceed the
// budget, and never return an error other than nil.
func TestTinyBudgets(t *testing.T) {
	for _, g := range []int{1, 2, 3, 5} {
		for _, name := range []string{"RESTART", "REISSUE", "RS"} {
			te := newTestEnv(t, 140, 5000, 4500, 100)
			sch := te.env.Store.Schema()
			aggs := []*agg.Aggregate{agg.CountAll()}
			var e Estimator
			var err error
			switch name {
			case "RESTART":
				e, err = NewRestart(sch, aggs, cfg(141))
			case "REISSUE":
				e, err = NewReissue(sch, aggs, cfg(141))
			case "RS":
				e, err = NewRS(sch, aggs, cfg(141))
			}
			if err != nil {
				t.Fatal(err)
			}
			for round := 1; round <= 3; round++ {
				sess := te.iface.NewSession(g)
				if err := e.Step(sess); err != nil {
					t.Fatalf("%s G=%d round %d: %v", name, g, round, err)
				}
				if sess.Used() > g {
					t.Fatalf("%s G=%d: used %d", name, g, sess.Used())
				}
			}
		}
	}
}
