package hiddendb

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"github.com/dynagg/dynagg/internal/schema"
)

// naiveTopK is the reference implementation: full scan, full sort.
func naiveTopK(st *Store, q Query, k int, scorer Scorer) Result {
	var matches []*schema.Tuple
	st.ForEach(func(t *schema.Tuple) {
		if q.Matches(t, st.BroadMatchNull()) {
			matches = append(matches, t)
		}
	})
	sort.Slice(matches, func(i, j int) bool {
		si, sj := scorer(matches[i]), scorer(matches[j])
		if si != sj {
			return si > sj
		}
		return matches[i].ID < matches[j].ID
	})
	r := Result{Overflow: len(matches) > k}
	if len(matches) > k {
		matches = matches[:k]
	}
	r.Tuples = matches
	return r
}

func TestIfaceMatchesNaive(t *testing.T) {
	st := newTestStore(t, 11, 800, []int{5, 4, 3, 4, 8})
	for _, k := range []int{1, 3, 10, 100, 2000} {
		f := NewIface(st, k, nil)
		queries := []Query{
			NewQuery(),
			NewQuery(Pred{Attr: 0, Val: 2}),
			NewQuery(Pred{Attr: 0, Val: 2}, Pred{Attr: 1, Val: 1}),
			NewQuery(Pred{Attr: 3, Val: 0}),
			NewQuery(Pred{Attr: 1, Val: 3}, Pred{Attr: 2, Val: 2}),
			NewQuery(Pred{Attr: 0, Val: 4}, Pred{Attr: 1, Val: 3}, Pred{Attr: 2, Val: 2}, Pred{Attr: 3, Val: 3}),
		}
		for _, q := range queries {
			got, err := f.Search(q)
			if err != nil {
				t.Fatal(err)
			}
			want := naiveTopK(st, q, k, DefaultScorer)
			if got.Overflow != want.Overflow {
				t.Fatalf("k=%d q=%v overflow = %v, want %v", k, q, got.Overflow, want.Overflow)
			}
			if len(got.Tuples) != len(want.Tuples) {
				t.Fatalf("k=%d q=%v len = %d, want %d", k, q, len(got.Tuples), len(want.Tuples))
			}
			for i := range got.Tuples {
				if got.Tuples[i].ID != want.Tuples[i].ID {
					t.Fatalf("k=%d q=%v rank %d: got ID %d want %d", k, q, i, got.Tuples[i].ID, want.Tuples[i].ID)
				}
			}
		}
	}
}

// Property: for random stores and random queries, the interface agrees
// with the naive reference on membership and overflow.
func TestIfacePropertyRandomQueries(t *testing.T) {
	st := newTestStore(t, 12, 400, []int{6, 5, 4, 6})
	f := NewIface(st, 25, nil)
	check := func(v0, v1, v2 uint8, mask uint8) bool {
		var preds []Pred
		if mask&1 != 0 {
			preds = append(preds, Pred{Attr: 0, Val: uint16(v0) % 6})
		}
		if mask&2 != 0 {
			preds = append(preds, Pred{Attr: 1, Val: uint16(v1) % 5})
		}
		if mask&4 != 0 {
			preds = append(preds, Pred{Attr: 2, Val: uint16(v2) % 4})
		}
		q := NewQuery(preds...)
		got, err := f.Search(q)
		if err != nil {
			return false
		}
		want := naiveTopK(st, q, 25, DefaultScorer)
		if got.Overflow != want.Overflow || len(got.Tuples) != len(want.Tuples) {
			return false
		}
		for i := range got.Tuples {
			if got.Tuples[i].ID != want.Tuples[i].ID {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestResultClassification(t *testing.T) {
	st := newTestStore(t, 13, 100, []int{3, 3, 3, 3, 4})
	f := NewIface(st, 5, nil)

	root, _ := f.Search(NewQuery())
	if !root.Overflow || root.Underflow() || root.Valid() {
		t.Errorf("root should overflow: %+v", root)
	}
	// A fully specified query matching nothing underflows. Find one.
	found := false
	for v := 0; v < 3 && !found; v++ {
		q := NewQuery(Pred{0, uint16(v)}, Pred{1, uint16(v)}, Pred{2, uint16(v)}, Pred{3, uint16(v)})
		if st.CountMatching(q) == 0 {
			r, _ := f.Search(q)
			if !r.Underflow() || r.Valid() || r.Overflow {
				t.Errorf("expected underflow, got %+v", r)
			}
			found = true
		}
	}
	if !found {
		t.Skip("no empty point query in this seed (unexpected)")
	}
}

func TestIfaceCacheTransparency(t *testing.T) {
	st := newTestStore(t, 14, 300, []int{4, 4, 4, 8})
	f := NewIface(st, 10, nil)
	q := NewQuery(Pred{Attr: 0, Val: 1})
	r1, _ := f.Search(q)
	r2, _ := f.Search(q) // cached
	if len(r1.Tuples) != len(r2.Tuples) || r1.Overflow != r2.Overflow {
		t.Fatal("cached result differs")
	}
	if f.TotalQueries() != 2 {
		t.Errorf("TotalQueries = %d, want 2 (cache must not hide accounting)", f.TotalQueries())
	}
	// Mutating the store invalidates the cache.
	before := st.CountMatching(q)
	ids := st.IDs()
	deleted := 0
	for _, id := range ids {
		tu := st.Get(id)
		if tu.Vals[0] == 1 {
			if _, err := st.Delete(id); err != nil {
				t.Fatal(err)
			}
			deleted++
		}
	}
	if deleted == 0 || before == 0 {
		t.Skip("seed produced no matching tuples")
	}
	r3, _ := f.Search(q)
	if !r3.Underflow() {
		t.Errorf("after deleting all matches, result = %+v", r3)
	}
}

func TestScorerDeterminesRanking(t *testing.T) {
	st := newTestStore(t, 15, 200, []int{4, 4, 16})
	f := NewIface(st, 3, AuxScorer(0))
	r, _ := f.Search(NewQuery())
	if len(r.Tuples) != 3 || !r.Overflow {
		t.Fatalf("unexpected result: %d tuples", len(r.Tuples))
	}
	for i := 1; i < len(r.Tuples); i++ {
		if r.Tuples[i-1].Aux[0] < r.Tuples[i].Aux[0] {
			t.Errorf("aux ranking violated at %d: %v < %v", i, r.Tuples[i-1].Aux[0], r.Tuples[i].Aux[0])
		}
	}
	// Missing aux index scores zero rather than panicking.
	if AuxScorer(5)(r.Tuples[0]) != 0 {
		t.Error("AuxScorer out-of-range should be 0")
	}
}

func TestNewIfacePanicsOnBadK(t *testing.T) {
	st := newTestStore(t, 16, 10, []int{3, 4})
	defer func() {
		if recover() == nil {
			t.Error("k=0 accepted")
		}
	}()
	NewIface(st, 0, nil)
}

func TestSessionBudget(t *testing.T) {
	st := newTestStore(t, 17, 100, []int{4, 4, 8})
	f := NewIface(st, 10, nil)
	s := f.NewSession(3)
	if s.Budget() != 3 || s.Remaining() != 3 || s.Used() != 0 {
		t.Fatalf("fresh session state wrong: %d %d %d", s.Budget(), s.Remaining(), s.Used())
	}
	for i := 0; i < 3; i++ {
		if _, err := s.Search(NewQuery()); err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
	}
	if s.Remaining() != 0 {
		t.Errorf("Remaining = %d", s.Remaining())
	}
	if _, err := s.Search(NewQuery()); err != ErrBudgetExhausted {
		t.Errorf("over-budget err = %v, want ErrBudgetExhausted", err)
	}
	if s.Used() != 3 {
		t.Errorf("Used = %d after rejection, want 3", s.Used())
	}

	// Unlimited session.
	u := f.NewSession(0)
	for i := 0; i < 10; i++ {
		if _, err := u.Search(NewQuery()); err != nil {
			t.Fatal(err)
		}
	}
	if u.Remaining() >= 0 {
		t.Errorf("unlimited Remaining = %d, want negative", u.Remaining())
	}
}

func TestSessionPreSearchHookDrivesIntraRoundUpdates(t *testing.T) {
	st := newTestStore(t, 18, 60, []int{4, 4, 8})
	f := NewIface(st, 100, nil)
	s := f.NewSession(10)
	// Delete one tuple before the 3rd query; results must reflect it.
	s.SetPreSearchHook(func(qi int) {
		if qi == 2 {
			ids := st.IDs()
			if _, err := st.Delete(ids[0]); err != nil {
				t.Fatal(err)
			}
		}
	})
	r1, _ := s.Search(NewQuery())
	_ = r1
	sizeBefore := st.Size()
	_, _ = s.Search(NewQuery())
	_, _ = s.Search(NewQuery()) // hook fires before this one
	if st.Size() != sizeBefore-1 {
		t.Errorf("hook did not run: size %d, want %d", st.Size(), sizeBefore-1)
	}
}

func TestAsSearcher(t *testing.T) {
	st := newTestStore(t, 19, 30, []int{3, 3, 4})
	f := NewIface(st, 5, nil)
	var s Searcher = f.AsSearcher()
	if s.K() != 5 || s.Schema().M() != 3 {
		t.Errorf("searcher view wrong: k=%d m=%d", s.K(), s.Schema().M())
	}
	if _, err := s.Search(NewQuery()); err != nil {
		t.Fatal(err)
	}
}

func TestOverflowMonotoneAlongPaths(t *testing.T) {
	// The drill-down correctness argument needs Sel(child) ⊆ Sel(parent),
	// hence overflow monotone along any root-to-leaf path.
	st := newTestStore(t, 20, 500, []int{5, 4, 3, 10})
	f := NewIface(st, 8, nil)
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 50; trial++ {
		q := NewQuery()
		overflowSeen := true // root of path; once false must stay false
		for d := 0; d < 3; d++ {
			q = q.And(d, uint16(rng.Intn(st.Schema().DomainSize(d))))
			r, err := f.Search(q)
			if err != nil {
				t.Fatal(err)
			}
			if r.Overflow && !overflowSeen {
				t.Fatalf("overflow non-monotone at depth %d for %v", d+1, q)
			}
			overflowSeen = r.Overflow
		}
	}
}

func TestDefaultScorerDeterministic(t *testing.T) {
	a := &schema.Tuple{ID: 123}
	if DefaultScorer(a) != DefaultScorer(a) {
		t.Error("scorer not deterministic")
	}
	b := &schema.Tuple{ID: 124}
	if DefaultScorer(a) == DefaultScorer(b) {
		t.Error("adjacent IDs collide (astronomically unlikely)")
	}
}
