package hiddendb

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"github.com/dynagg/dynagg/internal/schema"
)

// Store owns the database contents. Tuples are kept sorted in canonical
// attribute order (lexicographic on value codes, ID tiebreak) so that the
// prefix-conjunctive queries issued by drill downs resolve to contiguous
// ranges found by binary search. Alongside the sorted slice the store
// maintains per-(attribute, value) inverted posting lists for every
// attribute a reader has demanded one for (see Snapshot); posting lists
// are updated incrementally on Insert/Delete/Replace/ApplyBatch.
//
// Only the simulation harness holds a *Store; estimators see it through
// Iface/Session.
//
// Concurrency: reads go through immutable Snapshots (see Snapshot()), so
// any number of goroutines may query the store concurrently. Mutations
// are serialised internally (snapMu) and copy-on-write everything a
// published snapshot references, so a single mutator goroutine may apply
// updates while readers keep answering on the previous version. Mutating
// from more than one goroutine at a time, or mixing mutation with the
// harness-side accessors (ForEach, At, IDs, Get, CountMatching) across
// goroutines, remains the caller's responsibility — in the experiment
// harness each Store belongs to exactly one trial.
type Store struct {
	sch            *schema.Schema
	tuples         []*schema.Tuple // sorted by (Vals, ID)
	byID           map[uint64]*schema.Tuple
	idx            []*attrIndex // per attribute; nil until demanded
	tuplesShared   bool         // tuples slice referenced by a snapshot
	nextID         uint64
	broadMatchNull bool

	version atomic.Uint64
	snapMu  sync.Mutex // serialises mutations and snapshot publication
	snap    atomic.Pointer[Snapshot]

	// lastQueried is the newest version that answered a query without a
	// published snapshot; a second query at the same version triggers
	// publication (guarded by snapMu). eph is the reusable ephemeral
	// snapshot those first-per-version queries are answered from.
	lastQueried uint64
	eph         *Snapshot
}

// attrIndex is one attribute's posting lists — roaring-style container
// sequences keyed by value (posting.go) — maintained incrementally in
// tuple-ID order. After publication in a snapshot the map (and every
// list) is shared and must be copied before the next mutation touches
// it; list copies are lazy per container (pcontainer.ensureOwned).
type attrIndex struct {
	lists  map[uint16]*postingList
	shared bool            // whole map referenced by a snapshot
	owned  map[uint16]bool // per-list ownership after the map was re-cloned; nil ⇒ all owned
}

// NewStore creates an empty store over the given schema.
func NewStore(sch *schema.Schema) *Store {
	return &Store{
		sch:         sch,
		byID:        make(map[uint64]*schema.Tuple),
		idx:         make([]*attrIndex, sch.M()),
		nextID:      1,
		lastQueried: ^uint64(0),
	}
}

// SetBroadMatchNull switches the NULL semantics of the search interface to
// broad match: a tuple with NULL in Ai is returned by any query with a
// predicate on Ai (paper §5 "Other Issues"). Default is off (NULL matches
// only IS NULL predicates).
func (st *Store) SetBroadMatchNull(on bool) {
	st.snapMu.Lock()
	defer st.snapMu.Unlock()
	st.broadMatchNull = on
	st.version.Add(1)
}

// BroadMatchNull reports the current NULL matching policy.
func (st *Store) BroadMatchNull() bool { return st.broadMatchNull }

// Schema returns the store's schema.
func (st *Store) Schema() *schema.Schema { return st.sch }

// Size returns the current number of tuples, |D|.
func (st *Store) Size() int { return len(st.tuples) }

// Version increases on every modification; snapshots and answer caches
// are tagged with it.
func (st *Store) Version() uint64 { return st.version.Load() }

// NextID reserves and returns a fresh unique tuple ID.
func (st *Store) NextID() uint64 {
	id := st.nextID
	st.nextID++
	return id
}

// Snapshot returns the immutable snapshot of the current version,
// building and caching it on first request. It is safe to call from any
// number of reader goroutines; publication is serialised with mutations,
// and a snapshot taken at version v keeps answering for v forever, no
// matter how the store changes afterwards.
func (st *Store) Snapshot() *Snapshot {
	if s := st.snap.Load(); s != nil && s.version == st.version.Load() {
		return s
	}
	st.snapMu.Lock()
	defer st.snapMu.Unlock()
	if s := st.snap.Load(); s != nil && s.version == st.version.Load() {
		return s
	}
	return st.publishLocked()
}

// publishLocked builds, publishes and returns the snapshot of the
// current version. Caller holds snapMu.
func (st *Store) publishLocked() *Snapshot {
	v := st.version.Load()
	// Promote attributes whose index the previous snapshot built on
	// demand: from this version on the store maintains them incrementally.
	if prev := st.snap.Load(); prev != nil {
		for a := range st.idx {
			if st.idx[a] == nil && prev.attrs[a].lazy != nil && prev.attrs[a].lazy.demanded.Load() {
				st.idx[a] = buildAttrIndex(st.tuples, a)
			}
		}
	}
	s := &Snapshot{
		sch:            st.sch,
		tuples:         st.tuples,
		attrs:          make([]snapAttr, st.sch.M()),
		broadMatchNull: st.broadMatchNull,
		version:        v,
	}
	// One backing array for all lazy indexes: snapshots are published on
	// every version change, so per-attribute allocations add up.
	lazies := make([]lazyIndex, 0, st.sch.M())
	for a := range s.attrs {
		if ai := st.idx[a]; ai != nil {
			s.attrs[a].lists = ai.lists
			ai.shared = true
			ai.owned = nil
		} else {
			lazies = append(lazies, lazyIndex{})
			s.attrs[a].lazy = &lazies[len(lazies)-1]
		}
	}
	st.tuplesShared = true
	st.snap.Store(s)
	return s
}

// ephemeralLocked returns a throwaway snapshot of the current version for
// answering a single query under snapMu. It shares the store's slices
// WITHOUT marking them copy-on-write, so it must never be published,
// retained past the locked region, or handed to another goroutine. It
// exists for the constant-update model, where the database mutates before
// every query: publishing a real snapshot there would pay an O(n)
// copy-on-write per query for a snapshot that answers exactly one.
// The one snapshot object is reused across calls (alloc-free steady
// state); it carries no lazy index builders.
func (st *Store) ephemeralLocked() *Snapshot {
	s := st.eph
	if s == nil {
		s = &Snapshot{sch: st.sch, attrs: make([]snapAttr, st.sch.M())}
		st.eph = s
	}
	s.tuples = st.tuples
	s.broadMatchNull = st.broadMatchNull
	s.version = st.version.Load()
	for a := range s.attrs {
		if ai := st.idx[a]; ai != nil {
			s.attrs[a].lists = ai.lists
		} else {
			s.attrs[a].lists = nil
		}
		s.attrs[a].lazy = nil
	}
	return s
}

// less orders tuples by value vector then ID.
func less(a, b *schema.Tuple) bool {
	c := schema.CompareVals(a.Vals, b.Vals)
	if c != 0 {
		return c < 0
	}
	return a.ID < b.ID
}

// searchPos returns the position of t in the sorted slice: its exact
// index when t is present ((Vals, ID) is unique), else its insertion
// point.
func (st *Store) searchPos(t *schema.Tuple) int {
	return sort.Search(len(st.tuples), func(i int) bool { return !less(st.tuples[i], t) })
}

// Insert adds one tuple. The tuple must validate against the schema and
// carry an ID not already present. Inserting is O(n) (memmove); bulk
// changes should use ApplyBatch.
func (st *Store) Insert(t *schema.Tuple) error {
	if err := st.sch.Validate(t.Vals); err != nil {
		return err
	}
	if t.ID == 0 {
		return fmt.Errorf("hiddendb: tuple ID 0 is reserved")
	}
	if _, ok := st.byID[t.ID]; ok {
		return fmt.Errorf("hiddendb: duplicate tuple ID %d", t.ID)
	}
	st.snapMu.Lock()
	defer st.snapMu.Unlock()
	if t.ID >= st.nextID {
		st.nextID = t.ID + 1
	}
	pos := st.searchPos(t)
	if st.tuplesShared {
		// Copy-on-write fused with the insert: one pass, not copy+shift.
		nt := make([]*schema.Tuple, len(st.tuples)+1)
		copy(nt, st.tuples[:pos])
		nt[pos] = t
		copy(nt[pos+1:], st.tuples[pos:])
		st.tuples = nt
		st.tuplesShared = false
	} else {
		st.tuples = append(st.tuples, nil)
		copy(st.tuples[pos+1:], st.tuples[pos:])
		st.tuples[pos] = t
	}
	st.byID[t.ID] = t
	st.indexInsert(t)
	st.version.Add(1)
	return nil
}

// Delete removes the tuple with the given ID, returning it. The exact
// position is resolved by one (Vals, ID) binary search.
func (st *Store) Delete(id uint64) (*schema.Tuple, error) {
	t, ok := st.byID[id]
	if !ok {
		return nil, fmt.Errorf("hiddendb: no tuple with ID %d", id)
	}
	st.snapMu.Lock()
	defer st.snapMu.Unlock()
	pos := st.searchPos(t)
	if pos >= len(st.tuples) || st.tuples[pos] != t {
		panic(fmt.Sprintf("hiddendb: index out of sync for tuple %d", id))
	}
	if st.tuplesShared {
		nt := make([]*schema.Tuple, len(st.tuples)-1)
		copy(nt, st.tuples[:pos])
		copy(nt[pos:], st.tuples[pos+1:])
		st.tuples = nt
		st.tuplesShared = false
	} else {
		copy(st.tuples[pos:], st.tuples[pos+1:])
		st.tuples = st.tuples[:len(st.tuples)-1]
	}
	delete(st.byID, id)
	st.indexDelete(t)
	st.version.Add(1)
	return t, nil
}

// Replace atomically substitutes the tuple with the given ID by a modified
// copy produced by mutate. This models in-place updates (e.g. a price
// change on an eBay listing): the logical tuple keeps its ID, old pointers
// held by estimators keep their historical snapshot values. The old and
// new positions are each resolved by one binary search and the tuples in
// between shift once — no delete-then-insert double pass.
func (st *Store) Replace(id uint64, mutate func(copy *schema.Tuple)) error {
	old, ok := st.byID[id]
	if !ok {
		return fmt.Errorf("hiddendb: no tuple with ID %d", id)
	}
	repl := old.Clone(id)
	mutate(repl)
	if err := st.sch.Validate(repl.Vals); err != nil {
		return err
	}
	st.snapMu.Lock()
	defer st.snapMu.Unlock()
	oldPos := st.searchPos(old)
	if oldPos >= len(st.tuples) || st.tuples[oldPos] != old {
		panic(fmt.Sprintf("hiddendb: index out of sync for tuple %d", id))
	}
	newPos := st.searchPos(repl) // insertion point with old still present
	if st.tuplesShared {
		nt := make([]*schema.Tuple, len(st.tuples))
		if newPos > oldPos {
			copy(nt, st.tuples[:oldPos])
			copy(nt[oldPos:], st.tuples[oldPos+1:newPos])
			nt[newPos-1] = repl
			copy(nt[newPos:], st.tuples[newPos:])
		} else {
			copy(nt, st.tuples[:newPos])
			nt[newPos] = repl
			copy(nt[newPos+1:], st.tuples[newPos:oldPos])
			copy(nt[oldPos+1:], st.tuples[oldPos+1:])
		}
		st.tuples = nt
		st.tuplesShared = false
	} else if newPos > oldPos {
		copy(st.tuples[oldPos:], st.tuples[oldPos+1:newPos])
		st.tuples[newPos-1] = repl
	} else {
		copy(st.tuples[newPos+1:oldPos+1], st.tuples[newPos:oldPos])
		st.tuples[newPos] = repl
	}
	st.byID[id] = repl
	st.indexReplace(old, repl)
	st.version.Add(1)
	return nil
}

// Get returns the live tuple with the given ID, or nil.
func (st *Store) Get(id uint64) *schema.Tuple { return st.byID[id] }

// ApplyBatch applies a round's worth of updates in one merge pass:
// deletions (by ID) first, then insertions. Cost is O(n + i·log i) rather
// than O((i+d)·n), which matters for the 10^7-tuple scalability sweep.
func (st *Store) ApplyBatch(inserts []*schema.Tuple, deleteIDs []uint64) error {
	del := make(map[uint64]bool, len(deleteIDs))
	delTuples := make([]*schema.Tuple, 0, len(deleteIDs))
	for _, id := range deleteIDs {
		t, ok := st.byID[id]
		if !ok {
			return fmt.Errorf("hiddendb: batch delete of unknown ID %d", id)
		}
		if del[id] {
			return fmt.Errorf("hiddendb: duplicate delete of ID %d", id)
		}
		del[id] = true
		delTuples = append(delTuples, t)
	}
	ins := make([]*schema.Tuple, len(inserts))
	copy(ins, inserts)
	for _, t := range ins {
		if err := st.sch.Validate(t.Vals); err != nil {
			return err
		}
		if t.ID == 0 {
			return fmt.Errorf("hiddendb: tuple ID 0 is reserved")
		}
		if _, ok := st.byID[t.ID]; ok && !del[t.ID] {
			return fmt.Errorf("hiddendb: duplicate tuple ID %d", t.ID)
		}
	}
	sort.Slice(ins, func(i, j int) bool { return less(ins[i], ins[j]) })
	for i := 1; i < len(ins); i++ {
		if ins[i].ID == ins[i-1].ID {
			return fmt.Errorf("hiddendb: duplicate tuple ID %d in batch", ins[i].ID)
		}
	}

	st.snapMu.Lock()
	defer st.snapMu.Unlock()
	for _, t := range ins {
		if t.ID >= st.nextID {
			st.nextID = t.ID + 1
		}
	}
	merged := make([]*schema.Tuple, 0, len(st.tuples)-len(del)+len(ins))
	i, j := 0, 0
	for i < len(st.tuples) || j < len(ins) {
		switch {
		case i == len(st.tuples):
			merged = append(merged, ins[j])
			j++
		case del[st.tuples[i].ID]:
			i++
		case j == len(ins) || less(st.tuples[i], ins[j]):
			merged = append(merged, st.tuples[i])
			i++
		default:
			merged = append(merged, ins[j])
			j++
		}
	}
	for _, id := range deleteIDs {
		delete(st.byID, id)
	}
	for _, t := range ins {
		st.byID[t.ID] = t
	}
	st.tuples = merged
	st.tuplesShared = false
	st.indexApplyBatch(ins, delTuples)
	st.version.Add(1)
	return nil
}

// ---------------------------------------------------------------------
// Incremental posting-list maintenance
// ---------------------------------------------------------------------

// buildAttrIndex materialises one attribute's posting lists (ID-sorted
// container sequences) from the sorted tuple slice.
func buildAttrIndex(tuples []*schema.Tuple, attr int) *attrIndex {
	byVal := make(map[uint16][]*schema.Tuple)
	for _, t := range tuples {
		v := t.Vals[attr]
		byVal[v] = append(byVal[v], t)
	}
	lists := make(map[uint16]*postingList, len(byVal))
	for v, l := range byVal {
		sortTuplesByID(l)
		lists[v] = buildPostingList(l)
	}
	return &attrIndex{lists: lists}
}

// ensureMapOwned re-clones the map headers if a snapshot holds the map.
func (ai *attrIndex) ensureMapOwned() {
	if ai.shared {
		m := make(map[uint16]*postingList, len(ai.lists))
		for v, l := range ai.lists {
			m[v] = l
		}
		ai.lists = m
		ai.shared = false
		ai.owned = make(map[uint16]bool)
	}
}

// mutable returns the list for val, cloned first if a snapshot shares it
// (the clone marks every container copy-on-write; containers deep-copy
// individually on first touch). A missing value gets a fresh empty list.
func (ai *attrIndex) mutable(val uint16) *postingList {
	ai.ensureMapOwned()
	pl := ai.lists[val]
	if pl == nil {
		pl = &postingList{}
		ai.lists[val] = pl
		if ai.owned != nil {
			ai.owned[val] = true
		}
		return pl
	}
	if ai.owned != nil && !ai.owned[val] {
		pl = pl.clone()
		ai.lists[val] = pl
		ai.owned[val] = true
	}
	return pl
}

// removeID deletes one posting, dropping the value's entry when it was
// the last (no empty lists survive in the map).
func (ai *attrIndex) removeID(val uint16, id uint64) {
	pl := ai.mutable(val)
	pl.remove(id)
	if pl.n == 0 {
		delete(ai.lists, val)
		if ai.owned != nil {
			delete(ai.owned, val)
		}
	}
}

// setList installs a freshly built list for val (owned by construction).
// nil or empty deletes the entry.
func (ai *attrIndex) setList(val uint16, pl *postingList) {
	ai.ensureMapOwned()
	if pl.size() == 0 {
		delete(ai.lists, val)
		if ai.owned != nil {
			delete(ai.owned, val)
		}
		return
	}
	ai.lists[val] = pl
	if ai.owned != nil {
		ai.owned[val] = true
	}
}

func (st *Store) indexInsert(t *schema.Tuple) {
	for a, ai := range st.idx {
		if ai == nil {
			continue
		}
		ai.mutable(t.Vals[a]).insert(t)
	}
}

func (st *Store) indexDelete(t *schema.Tuple) {
	for a, ai := range st.idx {
		if ai == nil {
			continue
		}
		ai.removeID(t.Vals[a], t.ID)
	}
}

func (st *Store) indexReplace(old, repl *schema.Tuple) {
	for a, ai := range st.idx {
		if ai == nil {
			continue
		}
		ov, nv := old.Vals[a], repl.Vals[a]
		if ov == nv {
			// Same list, same ID: swap the payload pointer in place.
			ai.mutable(ov).swapTuple(old.ID, repl)
			continue
		}
		ai.removeID(ov, old.ID)
		ai.mutable(nv).insert(repl)
	}
}

// indexApplyBatch folds one batch into every active attribute's posting
// lists: per affected value a single ID-order merge, or a full rebuild of
// the attribute when the churn rivals the database size.
func (st *Store) indexApplyBatch(ins, delTuples []*schema.Tuple) {
	churn := len(ins) + len(delTuples)
	if churn == 0 {
		return
	}
	for a, ai := range st.idx {
		if ai == nil {
			continue
		}
		if churn*4 >= len(st.tuples) {
			st.idx[a] = buildAttrIndex(st.tuples, a)
			continue
		}
		adds := make(map[uint16][]*schema.Tuple)
		for _, t := range ins {
			v := t.Vals[a]
			adds[v] = append(adds[v], t)
		}
		rems := make(map[uint16]map[uint64]bool)
		for _, t := range delTuples {
			v := t.Vals[a]
			if rems[v] == nil {
				rems[v] = make(map[uint64]bool)
			}
			rems[v][t.ID] = true
		}
		touched := make(map[uint16]bool, len(adds)+len(rems))
		for v := range adds {
			touched[v] = true
		}
		for v := range rems {
			touched[v] = true
		}
		for v := range touched {
			add := adds[v]
			sort.Slice(add, func(i, j int) bool { return add[i].ID < add[j].ID })
			ai.setList(v, rebuildList(ai.lists[v], add, rems[v]))
		}
	}
}

// rebuildList re-derives one value's posting list from its current
// contents plus a batch's ID-sorted additions and removals. The merged
// payload slice is freshly built, so the new containers alias it safely.
func rebuildList(old *postingList, add []*schema.Tuple, rem map[uint64]bool) *postingList {
	base := old.appendTuples(make([]*schema.Tuple, 0, old.size()))
	merged := mergeByID(base, add, rem)
	if len(merged) == 0 {
		return nil
	}
	return buildPostingList(merged)
}

// mergeByID merges an ID-sorted list with ID-sorted additions, dropping
// the removed IDs, in one pass.
func mergeByID(old, add []*schema.Tuple, rem map[uint64]bool) []*schema.Tuple {
	out := make([]*schema.Tuple, 0, len(old)+len(add)-len(rem))
	i, j := 0, 0
	for i < len(old) || j < len(add) {
		switch {
		case i == len(old):
			out = append(out, add[j])
			j++
		case rem[old[i].ID]:
			i++
		case j == len(add) || old[i].ID < add[j].ID:
			out = append(out, old[i])
			i++
		default:
			out = append(out, add[j])
			j++
		}
	}
	return out
}

// ---------------------------------------------------------------------
// Harness-side accessors
// ---------------------------------------------------------------------

// ForEach visits every live tuple in canonical order. fn must not mutate
// the store. This is the harness's ground-truth access path.
func (st *Store) ForEach(fn func(*schema.Tuple)) {
	for _, t := range st.tuples {
		fn(t)
	}
}

// At returns the i-th tuple in canonical order (0 ≤ i < Size). Schedules
// use it to sample single victims without materialising the ID list.
func (st *Store) At(i int) *schema.Tuple { return st.tuples[i] }

// IDs returns the IDs of all live tuples in canonical order. It allocates;
// intended for schedules that sample deletion victims.
func (st *Store) IDs() []uint64 {
	out := make([]uint64, len(st.tuples))
	for i, t := range st.tuples {
		out[i] = t.ID
	}
	return out
}

// CountMatching returns |Sel(q)| exactly — ground truth only, never
// exposed through the restricted interface. It shares the
// index-accelerated answering paths with Search, using the published
// snapshot when one exists and the ephemeral snapshot otherwise — it
// never forces publication, so counting between mutations (the
// constant-update model) does not trigger per-mutation copy-on-write.
func (st *Store) CountMatching(q Query) int {
	if s := st.snap.Load(); s != nil && s.version == st.version.Load() {
		return s.CountMatching(q)
	}
	st.snapMu.Lock()
	defer st.snapMu.Unlock()
	if s := st.snap.Load(); s != nil && s.version == st.version.Load() {
		return s.CountMatching(q)
	}
	return st.ephemeralLocked().CountMatching(q)
}
