package estimator

import (
	"math"
	"math/rand"
	"testing"

	"github.com/dynagg/dynagg/internal/agg"
	"github.com/dynagg/dynagg/internal/hiddendb"
	"github.com/dynagg/dynagg/internal/querytree"
	"github.com/dynagg/dynagg/internal/schema"
	"github.com/dynagg/dynagg/internal/stats"
)

// buildNullableStore creates a store where ~20% of values in two nullable
// attributes are NULL.
func buildNullableStore(t testing.TB, seed int64, n int) *hiddendb.Store {
	t.Helper()
	sch := schema.New([]schema.Attr{
		{Name: "a", Domain: []string{"0", "1", "2", "3", "4"}, Nullable: true},
		{Name: "b", Domain: []string{"0", "1", "2", "3"}, Nullable: true},
		{Name: "c", Domain: []string{"0", "1", "2", "3", "4", "5"}},
		{Name: "d", Domain: []string{"0", "1", "2", "3", "4"}},
	})
	st := hiddendb.NewStore(sch)
	rng := rand.New(rand.NewSource(seed))
	seen := make(map[string]bool)
	for st.Size() < n {
		vals := []uint16{
			uint16(rng.Intn(5)), uint16(rng.Intn(4)),
			uint16(rng.Intn(6)), uint16(rng.Intn(5)),
		}
		if rng.Float64() < 0.2 {
			vals[0] = schema.NullCode
		}
		if rng.Float64() < 0.2 {
			vals[1] = schema.NullCode
		}
		tu := &schema.Tuple{ID: st.NextID(), Vals: vals}
		if seen[tu.Key()] {
			continue
		}
		seen[tu.Key()] = true
		if err := st.Insert(tu); err != nil {
			t.Fatal(err)
		}
	}
	return st
}

// Under broad-match NULL semantics, the weighted drill-down estimate must
// remain unbiased: enumerate the full signature space and check the exact
// expectation (the §5 claim that the retrieval probability stays
// computable).
func TestBroadMatchNullExactlyUnbiased(t *testing.T) {
	st := buildNullableStore(t, 1, 250)
	st.SetBroadMatchNull(true)
	f := hiddendb.NewIface(st, 6, nil)
	tree := querytree.New(st.Schema())

	cfgB := cfg(2)
	cfgB.BroadMatchNull = true
	e, err := NewRestart(st.Schema(), []*agg.Aggregate{agg.CountAll()}, cfgB)
	if err != nil {
		t.Fatal(err)
	}

	var total float64
	leaves := 0
	var walk func(sig querytree.Signature, level int)
	walk = func(sig querytree.Signature, level int) {
		if level == tree.Depth() {
			leaves++
			o, err := querytree.DrillFromRoot(f.AsSearcher(), tree, sig)
			if err != nil {
				t.Fatal(err)
			}
			c := e.contributionOf(1, o)
			total += c.scaled(0).Count
			return
		}
		for v := 0; v < st.Schema().DomainSize(level); v++ {
			next := make(querytree.Signature, level+1)
			copy(next, sig)
			next[level] = uint16(v)
			walk(next, level+1)
		}
	}
	walk(querytree.Signature{}, 0)

	mean := total / float64(leaves)
	if math.Abs(mean-float64(st.Size())) > 1e-6*float64(st.Size()) {
		t.Errorf("broad-match expectation = %v, want %d", mean, st.Size())
	}
}

// Without the weight correction the same enumeration must OVERCOUNT —
// guarding against silently dropping the adjustment.
func TestBroadMatchNullWithoutCorrectionOvercounts(t *testing.T) {
	st := buildNullableStore(t, 3, 250)
	st.SetBroadMatchNull(true)
	f := hiddendb.NewIface(st, 6, nil)
	tree := querytree.New(st.Schema())

	plain, err := NewRestart(st.Schema(), []*agg.Aggregate{agg.CountAll()}, cfg(4))
	if err != nil {
		t.Fatal(err)
	}

	var total float64
	leaves := 0
	var walk func(sig querytree.Signature, level int)
	walk = func(sig querytree.Signature, level int) {
		if level == tree.Depth() {
			leaves++
			o, err := querytree.DrillFromRoot(f.AsSearcher(), tree, sig)
			if err != nil {
				t.Fatal(err)
			}
			c := plain.contributionOf(1, o)
			total += c.scaled(0).Count
			return
		}
		for v := 0; v < st.Schema().DomainSize(level); v++ {
			next := make(querytree.Signature, level+1)
			copy(next, sig)
			next[level] = uint16(v)
			walk(next, level+1)
		}
	}
	walk(querytree.Signature{}, 0)

	mean := total / float64(leaves)
	if mean <= float64(st.Size())*1.02 {
		t.Errorf("uncorrected mean %v should overcount %d", mean, st.Size())
	}
}

// End-to-end: a REISSUE tracker over a broad-match nullable database
// stays close to the truth across rounds.
func TestBroadMatchNullTracking(t *testing.T) {
	st := buildNullableStore(t, 5, 280)
	st.SetBroadMatchNull(true)
	f := hiddendb.NewIface(st, 6, nil)

	c := cfg(6)
	c.BroadMatchNull = true
	e, err := NewReissue(st.Schema(), []*agg.Aggregate{agg.CountAll()}, c)
	if err != nil {
		t.Fatal(err)
	}
	var r stats.Running
	for round := 1; round <= 6; round++ {
		if err := e.Step(f.NewSession(150)); err != nil {
			t.Fatal(err)
		}
		est, ok := e.Estimate(0)
		if !ok {
			t.Fatal("no estimate")
		}
		r.Add(est.Value)
	}
	truth := float64(st.Size())
	if rel := math.Abs(r.Mean()-truth) / truth; rel > 0.35 {
		t.Errorf("broad-match tracking mean rel err %.2f", rel)
	}
}
