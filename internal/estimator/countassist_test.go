package estimator

import (
	"math"
	"strings"
	"testing"

	"github.com/dynagg/dynagg/internal/agg"
	"github.com/dynagg/dynagg/internal/hiddendb"
	"github.com/dynagg/dynagg/internal/workload"
)

func newCountingEnv(t testing.TB, seed int64, n, initial, k, cap int) (*workload.Env, *hiddendb.CountingIface) {
	t.Helper()
	data := workload.AutosLikeN(seed, n, 10)
	env, err := workload.NewEnv(data, initial, seed+1)
	if err != nil {
		t.Fatal(err)
	}
	return env, hiddendb.NewCountingIface(env.Store, k, nil, cap)
}

func TestCountingIfaceCaps(t *testing.T) {
	env, ci := newCountingEnv(t, 1, 8000, 8000, 50, 1000)
	if ci.CountCap() != 1000 || ci.K() != 50 {
		t.Fatalf("config wrong: %d %d", ci.CountCap(), ci.K())
	}
	// Root exceeds the cap.
	_, count, capped, err := ci.SearchWithCount(hiddendb.NewQuery())
	if err != nil {
		t.Fatal(err)
	}
	if !capped || count != 1000 {
		t.Errorf("root count = %d capped=%v, want 1000 capped", count, capped)
	}
	// A narrow query reports its exact count.
	q := hiddendb.NewQuery(hiddendb.Pred{Attr: 0, Val: 20})
	want := env.Store.CountMatching(q)
	if want >= 1000 {
		t.Skip("rare value unexpectedly common")
	}
	_, count, capped, err = ci.SearchWithCount(q)
	if err != nil {
		t.Fatal(err)
	}
	if capped || count != want {
		t.Errorf("narrow count = %d capped=%v, want %d exact", count, capped, want)
	}
}

func TestCountingSessionBudget(t *testing.T) {
	_, ci := newCountingEnv(t, 2, 2000, 2000, 50, 100)
	s := ci.NewCountingSession(2)
	for i := 0; i < 2; i++ {
		if _, _, _, err := s.SearchWithCount(hiddendb.NewQuery()); err != nil {
			t.Fatal(err)
		}
	}
	if _, _, _, err := s.SearchWithCount(hiddendb.NewQuery()); err != hiddendb.ErrBudgetExhausted {
		t.Errorf("err = %v", err)
	}
	if s.Used() != 2 || s.Remaining() != 0 {
		t.Errorf("accounting: used %d remaining %d", s.Used(), s.Remaining())
	}
}

// With enough budget the count-assisted tracker is EXACT every round —
// the §8 point: COUNT metadata removes the sampling error entirely.
func TestCountAssistedExactTracking(t *testing.T) {
	env, ci := newCountingEnv(t, 3, 20000, 18000, 100, 1000)
	ca := NewCountAssisted(env.Store.Schema())
	for round := 1; round <= 6; round++ {
		if round > 1 {
			if err := env.InsertFromPool(300); err != nil {
				t.Fatal(err)
			}
			if err := env.DeleteFraction(0.01); err != nil {
				t.Fatal(err)
			}
		}
		if err := ca.Step(ci.NewCountingSession(1000)); err != nil {
			t.Fatal(err)
		}
		if f := ca.Freshness(); f != 1 {
			t.Fatalf("round %d: freshness %.2f, want 1 (budget ample)", round, f)
		}
		if got, want := ca.Estimate(), float64(env.Store.Size()); got != want {
			t.Errorf("round %d: estimate %v, want exact %v", round, got, want)
		}
		if ca.Round() != round {
			t.Errorf("round = %d", ca.Round())
		}
	}
	if ca.FrontierSize() < 10 {
		t.Errorf("frontier suspiciously small: %d", ca.FrontierSize())
	}
	if !strings.Contains(ca.String(), "frontier=") {
		t.Errorf("String() = %q", ca.String())
	}
}

// With a budget below the frontier size the tracker degrades gracefully:
// partial freshness, estimate still close (stale counts change slowly).
func TestCountAssistedUnderBudget(t *testing.T) {
	env, ci := newCountingEnv(t, 4, 20000, 18000, 100, 1000)
	ca := NewCountAssisted(env.Store.Schema())
	// Warm up with a full pass.
	if err := ca.Step(ci.NewCountingSession(2000)); err != nil {
		t.Fatal(err)
	}
	frontier := ca.FrontierSize()
	small := frontier / 3
	for round := 2; round <= 4; round++ {
		if err := env.InsertFromPool(200); err != nil {
			t.Fatal(err)
		}
		if err := ca.Step(ci.NewCountingSession(small)); err != nil {
			t.Fatal(err)
		}
		if f := ca.Freshness(); f >= 0.99 {
			t.Errorf("freshness %.2f despite budget %d < frontier %d", f, small, frontier)
		}
		truth := float64(env.Store.Size())
		if rel := math.Abs(ca.Estimate()-truth) / truth; rel > 0.05 {
			t.Errorf("round %d: stale estimate off by %.1f%%", round, rel*100)
		}
	}
}

// The §8 comparison: at equal budget, count-assisted tracking beats the
// sampling estimators by a wide margin (here: exact vs ~percent errors).
func TestCountAssistedBeatsSampling(t *testing.T) {
	env, ci := newCountingEnv(t, 5, 20000, 18000, 100, 1000)
	ca := NewCountAssisted(env.Store.Schema())
	iface := hiddendb.NewIface(env.Store, 100, nil)
	re, err := NewReissue(env.Store.Schema(), []*agg.Aggregate{agg.CountAll()}, cfg(6))
	if err != nil {
		t.Fatal(err)
	}
	const G = 600
	var caErr, reErr float64
	for round := 1; round <= 5; round++ {
		if round > 1 {
			if err := env.InsertFromPool(300); err != nil {
				t.Fatal(err)
			}
		}
		if err := ca.Step(ci.NewCountingSession(G)); err != nil {
			t.Fatal(err)
		}
		if err := re.Step(iface.NewSession(G)); err != nil {
			t.Fatal(err)
		}
		truth := float64(env.Store.Size())
		caErr += math.Abs(ca.Estimate()-truth) / truth
		est, _ := re.Estimate(0)
		reErr += math.Abs(est.Value-truth) / truth
	}
	if caErr >= reErr {
		t.Errorf("count-assisted error %.4f not below REISSUE %.4f", caErr, reErr)
	}
}

// Expansion correctness under growth: a frontier node whose slice grows
// past the cap must split rather than silently under-count.
func TestCountAssistedReexpandsOnGrowth(t *testing.T) {
	env, ci := newCountingEnv(t, 7, 30000, 6000, 100, 500)
	ca := NewCountAssisted(env.Store.Schema())
	if err := ca.Step(ci.NewCountingSession(0)); err != nil { // unlimited warmup
		t.Fatal(err)
	}
	before := ca.FrontierSize()
	// Quadruple the database: many nodes blow past the cap.
	if err := env.InsertFromPool(18000); err != nil {
		t.Fatal(err)
	}
	if err := ca.Step(ci.NewCountingSession(0)); err != nil {
		t.Fatal(err)
	}
	if ca.FrontierSize() <= before {
		t.Errorf("frontier did not grow after 4x growth: %d -> %d", before, ca.FrontierSize())
	}
	if got, want := ca.Estimate(), float64(env.Store.Size()); got != want {
		t.Errorf("post-growth estimate %v, want %v", got, want)
	}
}
