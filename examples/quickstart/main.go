// Quickstart: track COUNT(*) of a dynamic hidden database for 20 rounds
// with the REISSUE estimator and print estimate vs truth.
//
// The "hidden database" is a synthetic 40k-tuple categorical table behind
// a top-250 search interface; each round 300 tuples appear and 0.1%
// disappear, and the tracker gets 500 queries per round — the paper's
// default Yahoo! Autos setup at reduced scale.
package main

import (
	"fmt"
	"log"

	dynagg "github.com/dynagg/dynagg"
)

func main() {
	// A synthetic hidden database: 40,000 distinct tuples, 38 categorical
	// attributes, behind a top-250 conjunctive search interface.
	data := dynagg.AutosLikeN(1, 40000, 38)
	env, err := dynagg.NewEnv(data, 36000, 2)
	if err != nil {
		log.Fatal(err)
	}
	iface := dynagg.NewIface(env.Store, 250, nil)

	tracker, err := dynagg.NewTracker(iface,
		[]*dynagg.Aggregate{dynagg.CountAll()},
		dynagg.TrackerOptions{
			Algorithm: dynagg.AlgoReissue,
			Budget:    500, // the site allows 500 queries per round
			Seed:      7,
		})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("round  truth  estimate  rel.err  queries")
	for round := 1; round <= 20; round++ {
		if round > 1 {
			// The database changes under our feet...
			if err := env.DeleteFraction(0.001); err != nil {
				log.Fatal(err)
			}
			if err := env.InsertFromPool(300); err != nil {
				log.Fatal(err)
			}
		}
		// ...and we track it with a bounded number of search queries.
		if err := tracker.Step(); err != nil {
			log.Fatal(err)
		}
		est, ok := tracker.Estimate(0)
		if !ok {
			log.Fatalf("round %d: no estimate", round)
		}
		truth := float64(env.Store.Size())
		fmt.Printf("%5d  %5.0f  %8.0f  %6.1f%%  %7d\n",
			round, truth, est.Value, 100*abs(est.Value-truth)/truth,
			tracker.QueriesLastRound())
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
