package hiddendb

import (
	"fmt"
	"sort"

	"github.com/dynagg/dynagg/internal/schema"
)

// Store owns the database contents. Tuples are kept sorted in canonical
// attribute order (lexicographic on value codes, ID tiebreak) so that the
// prefix-conjunctive queries issued by drill downs resolve to contiguous
// ranges found by binary search.
//
// Only the simulation harness holds a *Store; estimators see it through
// Iface/Session.
//
// Ownership: a Store is single-goroutine, sync-free by design. The paper's
// query model is inherently sequential (a budget of G queries per round
// against one evolving database), so each Store belongs to exactly one
// trial and is touched only by that trial's worker goroutine. Parallelism
// across trials comes from the experiment harness giving every trial its
// own Store (see internal/experiments/parallel.go); never share one
// across goroutines.
type Store struct {
	sch            *schema.Schema
	tuples         []*schema.Tuple // sorted by (Vals, ID)
	byID           map[uint64]*schema.Tuple
	version        uint64
	nextID         uint64
	broadMatchNull bool
}

// NewStore creates an empty store over the given schema.
func NewStore(sch *schema.Schema) *Store {
	return &Store{
		sch:    sch,
		byID:   make(map[uint64]*schema.Tuple),
		nextID: 1,
	}
}

// SetBroadMatchNull switches the NULL semantics of the search interface to
// broad match: a tuple with NULL in Ai is returned by any query with a
// predicate on Ai (paper §5 "Other Issues"). Default is off (NULL matches
// only IS NULL predicates).
func (st *Store) SetBroadMatchNull(on bool) {
	st.broadMatchNull = on
	st.version++
}

// BroadMatchNull reports the current NULL matching policy.
func (st *Store) BroadMatchNull() bool { return st.broadMatchNull }

// Schema returns the store's schema.
func (st *Store) Schema() *schema.Schema { return st.sch }

// Size returns the current number of tuples, |D|.
func (st *Store) Size() int { return len(st.tuples) }

// Version increases on every modification; interfaces use it to invalidate
// per-round result caches.
func (st *Store) Version() uint64 { return st.version }

// NextID reserves and returns a fresh unique tuple ID.
func (st *Store) NextID() uint64 {
	id := st.nextID
	st.nextID++
	return id
}

// less orders tuples by value vector then ID.
func less(a, b *schema.Tuple) bool {
	c := schema.CompareVals(a.Vals, b.Vals)
	if c != 0 {
		return c < 0
	}
	return a.ID < b.ID
}

// searchPos returns the insertion position of t in the sorted slice.
func (st *Store) searchPos(t *schema.Tuple) int {
	return sort.Search(len(st.tuples), func(i int) bool { return !less(st.tuples[i], t) })
}

// Insert adds one tuple. The tuple must validate against the schema and
// carry an ID not already present. Inserting is O(n) (memmove); bulk
// changes should use ApplyBatch.
func (st *Store) Insert(t *schema.Tuple) error {
	if err := st.sch.Validate(t.Vals); err != nil {
		return err
	}
	if t.ID == 0 {
		return fmt.Errorf("hiddendb: tuple ID 0 is reserved")
	}
	if _, ok := st.byID[t.ID]; ok {
		return fmt.Errorf("hiddendb: duplicate tuple ID %d", t.ID)
	}
	if t.ID >= st.nextID {
		st.nextID = t.ID + 1
	}
	pos := st.searchPos(t)
	st.tuples = append(st.tuples, nil)
	copy(st.tuples[pos+1:], st.tuples[pos:])
	st.tuples[pos] = t
	st.byID[t.ID] = t
	st.version++
	return nil
}

// Delete removes the tuple with the given ID, returning it.
func (st *Store) Delete(id uint64) (*schema.Tuple, error) {
	t, ok := st.byID[id]
	if !ok {
		return nil, fmt.Errorf("hiddendb: no tuple with ID %d", id)
	}
	pos := st.searchPos(t)
	for pos < len(st.tuples) && st.tuples[pos].ID != id {
		pos++
	}
	if pos == len(st.tuples) {
		panic(fmt.Sprintf("hiddendb: index out of sync for tuple %d", id))
	}
	copy(st.tuples[pos:], st.tuples[pos+1:])
	st.tuples = st.tuples[:len(st.tuples)-1]
	delete(st.byID, id)
	st.version++
	return t, nil
}

// Replace atomically substitutes the tuple with the given ID by a modified
// copy produced by mutate. This models in-place updates (e.g. a price
// change on an eBay listing): the logical tuple keeps its ID, old pointers
// held by estimators keep their historical snapshot values.
func (st *Store) Replace(id uint64, mutate func(copy *schema.Tuple)) error {
	old, ok := st.byID[id]
	if !ok {
		return fmt.Errorf("hiddendb: no tuple with ID %d", id)
	}
	repl := old.Clone(id)
	mutate(repl)
	if err := st.sch.Validate(repl.Vals); err != nil {
		return err
	}
	if _, err := st.Delete(id); err != nil {
		return err
	}
	return st.Insert(repl)
}

// Get returns the live tuple with the given ID, or nil.
func (st *Store) Get(id uint64) *schema.Tuple { return st.byID[id] }

// ApplyBatch applies a round's worth of updates in one merge pass:
// deletions (by ID) first, then insertions. Cost is O(n + i·log i) rather
// than O((i+d)·n), which matters for the 10^7-tuple scalability sweep.
func (st *Store) ApplyBatch(inserts []*schema.Tuple, deleteIDs []uint64) error {
	del := make(map[uint64]bool, len(deleteIDs))
	for _, id := range deleteIDs {
		if _, ok := st.byID[id]; !ok {
			return fmt.Errorf("hiddendb: batch delete of unknown ID %d", id)
		}
		if del[id] {
			return fmt.Errorf("hiddendb: duplicate delete of ID %d", id)
		}
		del[id] = true
	}
	ins := make([]*schema.Tuple, len(inserts))
	copy(ins, inserts)
	for _, t := range ins {
		if err := st.sch.Validate(t.Vals); err != nil {
			return err
		}
		if t.ID == 0 {
			return fmt.Errorf("hiddendb: tuple ID 0 is reserved")
		}
		if _, ok := st.byID[t.ID]; ok && !del[t.ID] {
			return fmt.Errorf("hiddendb: duplicate tuple ID %d", t.ID)
		}
		if t.ID >= st.nextID {
			st.nextID = t.ID + 1
		}
	}
	sort.Slice(ins, func(i, j int) bool { return less(ins[i], ins[j]) })
	for i := 1; i < len(ins); i++ {
		if ins[i].ID == ins[i-1].ID {
			return fmt.Errorf("hiddendb: duplicate tuple ID %d in batch", ins[i].ID)
		}
	}

	merged := make([]*schema.Tuple, 0, len(st.tuples)-len(del)+len(ins))
	i, j := 0, 0
	for i < len(st.tuples) || j < len(ins) {
		switch {
		case i == len(st.tuples):
			merged = append(merged, ins[j])
			j++
		case del[st.tuples[i].ID]:
			i++
		case j == len(ins) || less(st.tuples[i], ins[j]):
			merged = append(merged, st.tuples[i])
			i++
		default:
			merged = append(merged, ins[j])
			j++
		}
	}
	for _, id := range deleteIDs {
		delete(st.byID, id)
	}
	for _, t := range ins {
		st.byID[t.ID] = t
	}
	st.tuples = merged
	st.version++
	return nil
}

// ForEach visits every live tuple in canonical order. fn must not mutate
// the store. This is the harness's ground-truth access path.
func (st *Store) ForEach(fn func(*schema.Tuple)) {
	for _, t := range st.tuples {
		fn(t)
	}
}

// At returns the i-th tuple in canonical order (0 ≤ i < Size). Schedules
// use it to sample single victims without materialising the ID list.
func (st *Store) At(i int) *schema.Tuple { return st.tuples[i] }

// IDs returns the IDs of all live tuples in canonical order. It allocates;
// intended for schedules that sample deletion victims.
func (st *Store) IDs() []uint64 {
	out := make([]uint64, len(st.tuples))
	for i, t := range st.tuples {
		out[i] = t.ID
	}
	return out
}

// CountMatching returns |Sel(q)| exactly — ground truth only, never
// exposed through the restricted interface.
func (st *Store) CountMatching(q Query) int {
	n := 0
	lo, hi, full := st.rangeOf(q)
	if full {
		for _, t := range st.tuples {
			if q.Matches(t, st.broadMatchNull) {
				n++
			}
		}
		return n
	}
	for _, t := range st.tuples[lo:hi] {
		if q.Matches(t, st.broadMatchNull) {
			n++
		}
	}
	return n
}

// rangeOf locates the contiguous slice of tuples matching the query's
// canonical-order prefix. full=true means the whole store must be scanned
// (no usable prefix, or NULL broad-match semantics break range pruning).
func (st *Store) rangeOf(q Query) (lo, hi int, full bool) {
	pl := q.prefixLen()
	if pl == 0 || st.broadMatchNull {
		return 0, len(st.tuples), true
	}
	prefix := make([]uint16, pl)
	for i := 0; i < pl; i++ {
		prefix[i] = q.preds[i].Val
	}
	lo = sort.Search(len(st.tuples), func(i int) bool {
		return schema.CompareVals(st.tuples[i].Vals[:pl], prefix) >= 0
	})
	hi = sort.Search(len(st.tuples), func(i int) bool {
		return schema.CompareVals(st.tuples[i].Vals[:pl], prefix) > 0
	})
	return lo, hi, false
}

// scanMatching yields tuples matching q, using the prefix range when
// available. The remaining (non-prefix) predicates are applied as filters;
// on a full scan every predicate is re-checked.
func (st *Store) scanMatching(q Query, fn func(*schema.Tuple)) {
	lo, hi, full := st.rangeOf(q)
	restQ := q
	if !full {
		restQ = Query{preds: q.preds[q.prefixLen():]}
	}
	for _, t := range st.tuples[lo:hi] {
		if len(restQ.preds) == 0 || restQ.Matches(t, st.broadMatchNull) {
			fn(t)
		}
	}
}
