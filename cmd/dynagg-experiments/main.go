// Command dynagg-experiments regenerates the figures of "Aggregate
// Estimation Over Dynamic Hidden Web Databases" (VLDB 2014) against the
// simulated substrate.
//
// Usage:
//
//	dynagg-experiments -list
//	dynagg-experiments -fig fig2
//	dynagg-experiments -all
//	DYNAGG_FULL_SCALE=1 dynagg-experiments -fig fig12   # paper-scale run
//
// Output is an aligned text table per figure: the same x values and series
// the paper plots.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"github.com/dynagg/dynagg/internal/experiments"
)

func main() {
	var (
		fig       = flag.String("fig", "", "figure ID to regenerate (e.g. fig2)")
		all       = flag.Bool("all", false, "regenerate every figure")
		list      = flag.Bool("list", false, "list available figure IDs")
		seed      = flag.Int64("seed", 1, "random seed")
		trials    = flag.Int("trials", 0, "trials to average over (0 = figure default)")
		fullScale = flag.Bool("full", false, "use the paper's full-scale parameters")
		csvDir    = flag.String("csv", "", "also write <dir>/<fig>.csv for plotting")
		workers   = flag.Int("workers", 0, "concurrent trial workers (0 = DYNAGG_WORKERS env or one per core); output is identical for every value")
		estWorker = flag.Int("estimator-workers", 0, "concurrent drill-down walks per estimator round (0 = DYNAGG_ESTIMATOR_WORKERS env or sequential); output is identical for every value")
	)
	flag.Parse()
	writeCSV = *csvDir

	opt := experiments.DefaultOptions()
	opt.Seed = *seed
	opt.Trials = *trials
	if *fullScale {
		opt.FullScale = true
	}
	if *workers > 0 {
		opt.Workers = *workers
	}
	if *estWorker > 0 {
		opt.Parallelism = *estWorker
	}

	switch {
	case *list:
		fmt.Println(strings.Join(experiments.IDs(), "\n"))
	case *all:
		for _, id := range experiments.IDs() {
			if err := run(id, opt); err != nil {
				fmt.Fprintf(os.Stderr, "%s: %v\n", id, err)
				os.Exit(1)
			}
		}
	case *fig != "":
		if err := run(*fig, opt); err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", *fig, err)
			os.Exit(1)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}

// writeCSV, when non-empty, is the directory CSV copies are written to.
var writeCSV string

func run(id string, opt experiments.Options) error {
	start := time.Now()
	f, err := experiments.Run(id, opt)
	if err != nil {
		return err
	}
	f.Write(os.Stdout)
	fmt.Printf("  (%s regenerated in %v)\n\n", id, time.Since(start).Round(time.Millisecond))
	if writeCSV != "" {
		if err := os.MkdirAll(writeCSV, 0o755); err != nil {
			return err
		}
		path := filepath.Join(writeCSV, id+".csv")
		out, err := os.Create(path)
		if err != nil {
			return err
		}
		defer out.Close()
		if err := f.WriteCSV(out); err != nil {
			return err
		}
		fmt.Printf("  (csv written to %s)\n", path)
	}
	return nil
}
