package schema

import (
	"strings"
	"testing"
	"testing/quick"
)

func testSchema() *Schema {
	return New([]Attr{
		{Name: "make", Domain: []string{"ford", "toyota", "honda"}},
		{Name: "color", Domain: []string{"red", "blue"}},
		{Name: "year", Domain: []string{"2010", "2011", "2012", "2013"}, Nullable: true},
	})
}

func TestSchemaBasics(t *testing.T) {
	s := testSchema()
	if s.M() != 3 {
		t.Fatalf("M = %d, want 3", s.M())
	}
	if s.DomainSize(0) != 3 || s.DomainSize(1) != 2 || s.DomainSize(2) != 4 {
		t.Errorf("domain sizes wrong: %d %d %d", s.DomainSize(0), s.DomainSize(1), s.DomainSize(2))
	}
	if s.MaxDomainSize() != 4 {
		t.Errorf("MaxDomainSize = %d, want 4", s.MaxDomainSize())
	}
	if got := s.AttrIndex("color"); got != 1 {
		t.Errorf("AttrIndex(color) = %d, want 1", got)
	}
	if got := s.AttrIndex("nope"); got != -1 {
		t.Errorf("AttrIndex(nope) = %d, want -1", got)
	}
	if s.Attr(0).Size() != 3 {
		t.Errorf("Attr(0).Size = %d", s.Attr(0).Size())
	}
}

func TestSchemaNewPanics(t *testing.T) {
	cases := []struct {
		name  string
		attrs []Attr
	}{
		{"empty domain", []Attr{{Name: "a", Domain: nil}}},
		{"dup name", []Attr{
			{Name: "a", Domain: []string{"x"}},
			{Name: "a", Domain: []string{"y"}},
		}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%s) did not panic", c.name)
				}
			}()
			New(c.attrs)
		})
	}
}

func TestUniform(t *testing.T) {
	s := Uniform(5, 2)
	if s.M() != 5 {
		t.Fatalf("M = %d", s.M())
	}
	for i := 0; i < 5; i++ {
		if s.DomainSize(i) != 2 {
			t.Errorf("DomainSize(%d) = %d, want 2", i, s.DomainSize(i))
		}
	}
	if s.Attr(0).Name != "A1" || s.Attr(4).Name != "A5" {
		t.Errorf("attribute naming wrong: %q %q", s.Attr(0).Name, s.Attr(4).Name)
	}
}

func TestProject(t *testing.T) {
	s := testSchema()
	p := s.Project(2)
	if p.M() != 2 || p.Attr(1).Name != "color" {
		t.Errorf("projection wrong: %d %q", p.M(), p.Attr(1).Name)
	}
	// Original is unchanged.
	if s.M() != 3 {
		t.Errorf("projection mutated source schema")
	}
	defer func() {
		if recover() == nil {
			t.Errorf("Project(0) did not panic")
		}
	}()
	s.Project(0)
}

func TestValidate(t *testing.T) {
	s := testSchema()
	if err := s.Validate([]uint16{0, 1, 3}); err != nil {
		t.Errorf("valid tuple rejected: %v", err)
	}
	if err := s.Validate([]uint16{0, 1}); err == nil {
		t.Error("short tuple accepted")
	}
	if err := s.Validate([]uint16{3, 0, 0}); err == nil {
		t.Error("out-of-domain value accepted")
	}
	// NULL allowed only in nullable attribute.
	if err := s.Validate([]uint16{0, 0, NullCode}); err != nil {
		t.Errorf("NULL in nullable attr rejected: %v", err)
	}
	if err := s.Validate([]uint16{NullCode, 0, 0}); err == nil {
		t.Error("NULL in non-nullable attr accepted")
	}
}

func TestTupleKeyDistinctness(t *testing.T) {
	a := &Tuple{ID: 1, Vals: []uint16{1, 2, 3}}
	b := &Tuple{ID: 2, Vals: []uint16{1, 2, 3}}
	c := &Tuple{ID: 3, Vals: []uint16{1, 2, 4}}
	if a.Key() != b.Key() {
		t.Error("equal value tuples should share a key")
	}
	if a.Key() == c.Key() {
		t.Error("distinct value tuples should not share a key")
	}
}

// Property: Key is injective on value slices (up to the packing width).
func TestTupleKeyInjective(t *testing.T) {
	f := func(a, b []uint16) bool {
		ta := &Tuple{Vals: a}
		tb := &Tuple{Vals: b}
		if ta.Key() == tb.Key() {
			return len(a) == len(b) && CompareVals(a, b) == 0
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestTupleClone(t *testing.T) {
	orig := &Tuple{ID: 5, Vals: []uint16{1, 2}, Aux: []float64{9.5}}
	cl := orig.Clone(6)
	if cl.ID != 6 {
		t.Errorf("clone ID = %d, want 6", cl.ID)
	}
	cl.Vals[0] = 99
	cl.Aux[0] = -1
	if orig.Vals[0] != 1 || orig.Aux[0] != 9.5 {
		t.Error("Clone shares backing arrays with original")
	}
}

func TestTupleString(t *testing.T) {
	s := (&Tuple{ID: 7, Vals: []uint16{1}}).String()
	if !strings.Contains(s, "id=7") {
		t.Errorf("String() = %q", s)
	}
}

func TestCompareVals(t *testing.T) {
	cases := []struct {
		a, b []uint16
		want int
	}{
		{[]uint16{1, 2}, []uint16{1, 2}, 0},
		{[]uint16{1, 2}, []uint16{1, 3}, -1},
		{[]uint16{2}, []uint16{1, 9}, 1},
		{[]uint16{1}, []uint16{1, 0}, -1},
		{nil, nil, 0},
		{nil, []uint16{0}, -1},
	}
	for _, c := range cases {
		if got := CompareVals(c.a, c.b); got != c.want {
			t.Errorf("CompareVals(%v,%v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

// Property: CompareVals is antisymmetric and transitive-ish via sort order.
func TestCompareValsAntisymmetric(t *testing.T) {
	f := func(a, b []uint16) bool {
		return CompareVals(a, b) == -CompareVals(b, a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
