package estimator

import (
	"testing"

	"github.com/dynagg/dynagg/internal/agg"
)

// When the budget dies mid-update, drills not refreshed this round must
// be excluded from the estimate (mixing database states would bias it),
// while remaining in the pool for future rounds.
func TestReissueBudgetDeathExcludesStaleDrills(t *testing.T) {
	te := newTestEnv(t, 400, 20000, 18000, 100)
	e, err := NewReissue(te.env.Store.Schema(), []*agg.Aggregate{agg.CountAll()}, cfg(401))
	if err != nil {
		t.Fatal(err)
	}
	// Round 1: build a pool of ~G/cost drills.
	if err := e.Step(te.iface.NewSession(400)); err != nil {
		t.Fatal(err)
	}
	pool := e.PoolSize()
	if pool < 50 {
		t.Fatalf("pool too small: %d", pool)
	}
	// Round 2 with a budget that can refresh only a fraction of the pool.
	if err := te.env.InsertFromPool(500); err != nil {
		t.Fatal(err)
	}
	tiny := pool / 2 // ~2 queries per update → refreshes ~pool/4
	if err := e.Step(te.iface.NewSession(tiny)); err != nil {
		t.Fatal(err)
	}
	est, ok := e.Estimate(0)
	if !ok {
		t.Fatal("no estimate")
	}
	if est.Drills >= pool {
		t.Errorf("estimate used %d drills with budget for ~%d updates", est.Drills, tiny/2)
	}
	if e.PoolSize() < pool {
		t.Errorf("stale drills were dropped from the pool: %d -> %d", pool, e.PoolSize())
	}

	// Round 3 with ample budget: the stale drills get refreshed and all
	// contribute again.
	if err := e.Step(te.iface.NewSession(5000)); err != nil {
		t.Fatal(err)
	}
	est3, _ := e.Estimate(0)
	if est3.Drills < pool {
		t.Errorf("after recovery only %d of %d drills contribute", est3.Drills, pool)
	}
}

// The pool must never contain two drills sharing a signature's slice
// (signatures are value copies, but accidental aliasing would corrupt
// updates).
func TestReissuePoolSignaturesIndependent(t *testing.T) {
	te := newTestEnv(t, 410, 8000, 7000, 100)
	e, err := NewReissue(te.env.Store.Schema(), []*agg.Aggregate{agg.CountAll()}, cfg(411))
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Step(te.iface.NewSession(300)); err != nil {
		t.Fatal(err)
	}
	seen := map[*uint16]bool{}
	for _, d := range e.pool {
		if len(d.sig) == 0 {
			t.Fatal("empty signature")
		}
		head := &d.sig[0]
		if seen[head] {
			t.Fatal("two drills alias the same signature backing array")
		}
		seen[head] = true
	}
}

// Estimates for several aggregates tracked together must be mutually
// consistent: COUNT(*) equals the count component of the SUM aggregate's
// pair (they are computed from the same drills).
func TestReissueMultiAggregateConsistency(t *testing.T) {
	te := newTestEnv(t, 420, 15000, 14000, 100)
	aggs := []*agg.Aggregate{
		agg.CountAll(),
		agg.SumOf("SUM(price)", agg.AuxField(0)),
	}
	e, err := NewReissue(te.env.Store.Schema(), aggs, cfg(421))
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Step(te.iface.NewSession(400)); err != nil {
		t.Fatal(err)
	}
	count, _ := e.Estimate(0)
	sum, _ := e.Estimate(1)
	if count.Value != sum.Pair.Count {
		t.Errorf("COUNT estimate %v != SUM aggregate's count component %v",
			count.Value, sum.Pair.Count)
	}
	if count.Drills != sum.Drills {
		t.Errorf("drill counts differ: %d vs %d", count.Drills, sum.Drills)
	}
}
