package estimator

import (
	"github.com/dynagg/dynagg/internal/agg"
	"github.com/dynagg/dynagg/internal/schema"
)

// Restart is RESTART-ESTIMATOR: the repeated-execution baseline. Every
// round it forgets everything, draws fresh signatures, and performs
// from-root drill downs until the budget is exhausted (paper §3 intro).
// Estimates across rounds are therefore independent — which is exactly
// why it wastes budget when the database changes little.
type Restart struct {
	*base
	lastRound []*drill // this round's drills (kept one round for deltas)
	prevEst   []Estimate
	prevOK    []bool
}

// NewRestart builds the baseline estimator.
func NewRestart(sch *schema.Schema, aggs []*agg.Aggregate, cfg Config) (*Restart, error) {
	b, err := newBase("RESTART", sch, aggs, cfg)
	if err != nil {
		return nil, err
	}
	return &Restart{
		base:    b,
		prevEst: make([]Estimate, len(aggs)),
		prevOK:  make([]bool, len(aggs)),
	}, nil
}

// Step runs one round: independent drill downs until the budget dies.
// The round is planned and executed in batches (exec.go), so the walks
// may be issued concurrently without changing any estimate.
func (r *Restart) Step(sess Session) error {
	r.round++
	startUsed := sess.Used()
	s := r.searcher(sess)

	var drills []*drill
	_, err := r.runFreshPhase(sess, s,
		func() int { return len(drills) },
		func(d *drill) { drills = append(drills, d) })
	if err != nil {
		return err
	}
	r.used = sess.Used() - startUsed

	copy(r.prevEst, r.estimates)
	copy(r.prevOK, r.estOK)
	for i, a := range r.aggs {
		if len(drills) == 0 {
			// Keep last round's estimate rather than reporting nothing.
			continue
		}
		r.estimates[i] = meanEstimate(a, drills, i)
		r.estOK[i] = true

		// Trans-round delta: difference of two independent estimates,
		// variances add.
		if r.prevOK[i] {
			r.deltas[i] = Estimate{
				Value:    r.estimates[i].Value - r.prevEst[i].Value,
				Pair:     r.estimates[i].Pair.Sub(r.prevEst[i].Pair),
				Variance: r.estimates[i].Variance + r.prevEst[i].Variance,
				Drills:   r.estimates[i].Drills,
			}
			r.deltaOK[i] = true
		}
	}
	r.lastRound = drills
	return nil
}

// AdHoc evaluates a new aggregate over the drill downs of the last
// completed round (requires Config.RetainTuples).
func (r *Restart) AdHoc(a *agg.Aggregate, round int) (Estimate, error) {
	return adHocPair(r.lastRound, a, round)
}

var _ Estimator = (*Restart)(nil)
