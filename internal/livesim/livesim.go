// Package livesim substitutes the paper's two live experiments (§6,
// Figs 20–21) with scripted simulators, since the 2013 Amazon and eBay
// production databases are not available. Each simulator reproduces the
// dynamics the paper observed — a Thanksgiving price promotion on
// Amazon watches, and fast-churning bid listings versus slow Buy-It-Now
// listings on eBay — while also providing exact ground truth, which the
// paper's live runs could not.
package livesim

import (
	"fmt"
	"math/rand"

	"github.com/dynagg/dynagg/internal/agg"
	"github.com/dynagg/dynagg/internal/hiddendb"
	"github.com/dynagg/dynagg/internal/schema"
	"github.com/dynagg/dynagg/internal/workload"
)

// ---------------------------------------------------------------------
// Amazon watches (Fig 20)
// ---------------------------------------------------------------------

// AmazonDays are the simulated days of the Thanksgiving-week run
// (the paper monitored Nov 25 – Dec 3, 2013). Rounds are 1-based into
// this slice.
var AmazonDays = []string{
	"Nov 25", "Nov 26", "Nov 27", "Nov 28", "Nov 29",
	"Nov 30", "Dec 1", "Dec 2", "Dec 3",
}

// amazonPromoRounds marks the rounds (1-based) on which promotional
// pricing is in force: Thanksgiving (Nov 28) and Black Friday (Nov 29).
var amazonPromoRounds = map[int]bool{4: true, 5: true}

// Amazon simulates the watch catalogue behind the Product Advertising
// API: ~20k watches, per-day listing churn, and a sharp (~25%) price cut
// on a large share of items during the promo days that reverts afterwards.
type Amazon struct {
	Env *workload.Env

	basePrice map[uint64]float64 // pre-promo price by tuple ID
	promoOn   bool
}

// Amazon schema attribute indexes.
const (
	amzCategory = 0 // wrist, pocket, smart, other
	amzGender   = 1 // men, women, unisex
	amzBrand    = 2 // 40 brands
	amzBand     = 3 // 8 band materials
	amzStyle    = 4 // 10 styles
	amzTier     = 5 // 12 price tiers (searchable, coarse)
)

// NewAmazon builds the simulator with the given seed.
func NewAmazon(seed int64) (*Amazon, error) {
	sch := schema.New([]schema.Attr{
		{Name: "category", Domain: []string{"wrist", "pocket", "smart", "other"}},
		{Name: "gender", Domain: []string{"men", "women", "unisex"}},
		{Name: "brand", Domain: domain("brand", 40)},
		{Name: "band", Domain: domain("band", 8)},
		{Name: "style", Domain: domain("style", 10)},
		{Name: "tier", Domain: domain("tier", 12)},
	})
	genVals := func(rng *rand.Rand) []uint16 {
		return []uint16{
			pick(rng, []float64{0.62, 0.08, 0.22, 0.08}), // mostly wrist watches
			pick(rng, []float64{0.48, 0.38, 0.14}),       // slight men's majority
			uint16(rng.Intn(40)),
			uint16(rng.Intn(8)),
			uint16(rng.Intn(10)),
			uint16(rng.Intn(12)),
		}
	}
	genAux := func(rng *rand.Rand, vals []uint16) []float64 {
		// Price correlates with the searchable tier attribute.
		base := 40 + 45*float64(vals[amzTier])
		return []float64{base * (0.7 + 0.6*rng.Float64())}
	}
	data := workload.Custom(seed, 22000, sch, genVals, genAux)
	env, err := workload.NewEnv(data, 20000, seed+1)
	if err != nil {
		return nil, err
	}
	return &Amazon{Env: env, basePrice: make(map[uint64]float64)}, nil
}

// Rounds returns the number of simulated days.
func (a *Amazon) Rounds() int { return len(AmazonDays) }

// StepDay advances the catalogue to the given 1-based round. Round 1 is
// the initial state; promo pricing switches on for rounds 4–5 and reverts
// afterwards; every day sees mild listing churn.
func (a *Amazon) StepDay(round int) error {
	if round < 1 || round > len(AmazonDays) {
		return fmt.Errorf("livesim: amazon round %d out of range", round)
	}
	if round == 1 {
		return nil
	}
	// Daily churn: 0.7% of listings end, a similar number appear.
	if err := a.Env.DeleteFraction(0.007); err != nil {
		return err
	}
	if err := a.Env.InsertFromPool(140); err != nil {
		return err
	}
	wantPromo := amazonPromoRounds[round]
	switch {
	case wantPromo && !a.promoOn:
		if err := a.applyPromo(); err != nil {
			return err
		}
		a.promoOn = true
	case !wantPromo && a.promoOn:
		if err := a.revertPromo(); err != nil {
			return err
		}
		a.promoOn = false
	}
	return nil
}

// applyPromo discounts ~70% of items by 25% — enough to move the average
// price by roughly the $50 drop the paper observed.
func (a *Amazon) applyPromo() error {
	var ids []uint64
	a.Env.Store.ForEach(func(t *schema.Tuple) { ids = append(ids, t.ID) })
	for _, id := range ids {
		if a.Env.Rng.Float64() > 0.7 {
			continue
		}
		err := a.Env.Store.Replace(id, func(c *schema.Tuple) {
			a.basePrice[id] = c.Aux[0]
			c.Aux[0] *= 0.75
		})
		if err != nil {
			return err
		}
	}
	return nil
}

// revertPromo restores pre-promo prices for items still listed.
func (a *Amazon) revertPromo() error {
	for id, price := range a.basePrice {
		if a.Env.Store.Get(id) == nil {
			continue // listing ended during the promo
		}
		p := price
		if err := a.Env.Store.Replace(id, func(c *schema.Tuple) { c.Aux[0] = p }); err != nil {
			return err
		}
	}
	a.basePrice = make(map[uint64]float64)
	return nil
}

// Interface returns the k=100 search view (the Product Advertising API's
// page cap) over the catalogue.
func (a *Amazon) Interface() *hiddendb.Iface {
	return hiddendb.NewIface(a.Env.Store, 100, nil)
}

// Aggregates returns the three tracked quantities of Fig 20: average
// price, fraction of men's watches, fraction of wrist watches.
func (a *Amazon) Aggregates() []*agg.Aggregate {
	men := hiddendb.NewQuery(hiddendb.Pred{Attr: amzGender, Val: 0})
	wrist := hiddendb.NewQuery(hiddendb.Pred{Attr: amzCategory, Val: 0})
	return []*agg.Aggregate{
		agg.AvgOf("AVG(price)", agg.AuxField(0)),
		agg.AvgOf("%men", agg.Indicator(men)),
		agg.AvgOf("%wrist", agg.Indicator(wrist)),
	}
}

// ---------------------------------------------------------------------
// eBay women's wrist watches (Fig 21)
// ---------------------------------------------------------------------

// EBayHours labels the simulated hourly rounds (the paper ran 1pm–9pm EST).
var EBayHours = []string{"1pm", "2pm", "3pm", "4pm", "5pm", "6pm", "7pm", "8pm", "9pm"}

// eBay schema attribute indexes.
const (
	ebType      = 0 // FIX (Buy-It-Now) / BID (auction)
	ebBrand     = 1 // 60 brands
	ebCondition = 2 // 4 conditions
	ebBand      = 3 // 8 bands
	ebTier      = 4 // 10 price tiers
)

// EBay simulates the women's-wrist-watch listing pool behind the Finding
// API: Buy-It-Now listings are expensive and slow-moving; auction listings
// are cheaper, churn fast, and their price snapshots climb as bids arrive.
type EBay struct {
	Env *workload.Env
}

// NewEBay builds the simulator with the given seed.
func NewEBay(seed int64) (*EBay, error) {
	sch := schema.New([]schema.Attr{
		{Name: "type", Domain: []string{"FIX", "BID"}},
		{Name: "brand", Domain: domain("brand", 60)},
		{Name: "condition", Domain: []string{"new", "open-box", "used", "parts"}},
		{Name: "band", Domain: domain("band", 12)},
		{Name: "tier", Domain: domain("tier", 16)},
	})
	genVals := func(rng *rand.Rand) []uint16 {
		return []uint16{
			pick(rng, []float64{0.55, 0.45}),
			uint16(rng.Intn(60)),
			uint16(rng.Intn(4)),
			uint16(rng.Intn(12)),
			uint16(rng.Intn(16)),
		}
	}
	genAux := func(rng *rand.Rand, vals []uint16) []float64 {
		if vals[ebType] == 0 {
			// Buy-It-Now: the sticker price, substantially higher.
			return []float64{120 + 40*float64(vals[ebTier]) + 80*rng.Float64()}
		}
		// Auction snapshot: early-bid price, well below final value.
		return []float64{10 + 12*float64(vals[ebTier]) + 25*rng.Float64()}
	}
	data := workload.Custom(seed, 16000, sch, genVals, genAux)
	env, err := workload.NewEnv(data, 14000, seed+1)
	if err != nil {
		return nil, err
	}
	return &EBay{Env: env}, nil
}

// Rounds returns the number of simulated hours.
func (e *EBay) Rounds() int { return len(EBayHours) }

// StepHour advances the listings to the given 1-based hourly round:
// auctions receive bids (price snapshots climb ~8%) and churn fast
// (6% end, replaced), while Buy-It-Now listings barely move (0.5% churn).
func (e *EBay) StepHour(round int) error {
	if round < 1 || round > len(EBayHours) {
		return fmt.Errorf("livesim: ebay round %d out of range", round)
	}
	if round == 1 {
		return nil
	}
	isBid := func(t *schema.Tuple) bool { return t.Vals[ebType] == 1 }
	isFix := func(t *schema.Tuple) bool { return t.Vals[ebType] == 0 }

	// Bids arrive on 40% of auctions.
	err := e.Env.MutateAuxWhere(0.4, isBid, func(aux []float64, rng *rand.Rand) {
		aux[0] *= 1.05 + 0.06*rng.Float64()
	})
	if err != nil {
		return err
	}
	// Auction churn.
	if err := e.Env.DeleteWhere(0.06, isBid); err != nil {
		return err
	}
	// Buy-It-Now churn is an order of magnitude slower.
	if err := e.Env.DeleteWhere(0.005, isFix); err != nil {
		return err
	}
	// New listings keep the pool roughly stable.
	return e.Env.InsertFromPool(500)
}

// Interface returns the k=100 search view (the Finding API page cap).
func (e *EBay) Interface() *hiddendb.Iface {
	return hiddendb.NewIface(e.Env.Store, 100, nil)
}

// FixAggregate returns AVG(price) over Buy-It-Now listings.
func (e *EBay) FixAggregate() *agg.Aggregate {
	sel := hiddendb.NewQuery(hiddendb.Pred{Attr: ebType, Val: 0})
	return agg.AvgWhere("AVG(price)-FIX", agg.AuxField(0), sel)
}

// BidAggregate returns AVG(price) over auction listings.
func (e *EBay) BidAggregate() *agg.Aggregate {
	sel := hiddendb.NewQuery(hiddendb.Pred{Attr: ebType, Val: 1})
	return agg.AvgWhere("AVG(price)-BID", agg.AuxField(0), sel)
}

// ---------------------------------------------------------------------
// helpers
// ---------------------------------------------------------------------

// domain builds a labelled domain of the given size.
func domain(prefix string, n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("%s%d", prefix, i)
	}
	return out
}

// pick draws an index from the (normalised) probability weights.
func pick(rng *rand.Rand, weights []float64) uint16 {
	x := rng.Float64()
	acc := 0.0
	for i, w := range weights {
		acc += w
		if x < acc {
			return uint16(i)
		}
	}
	return uint16(len(weights) - 1)
}
