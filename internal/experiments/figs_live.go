package experiments

import (
	"math/rand"

	"github.com/dynagg/dynagg/internal/agg"
	"github.com/dynagg/dynagg/internal/estimator"
	"github.com/dynagg/dynagg/internal/livesim"
)

func init() {
	register("fig20", Fig20)
	register("fig21", Fig21)
}

// Fig20 — the Amazon.com live experiment (Thanksgiving week 2013),
// reproduced against the scripted simulator: track AVG(price), %men and
// %wrist over watches with k=100 and G=1000 queries per day. Unlike the
// paper's live run, the simulator supplies ground truth, reported in the
// TRUTH columns.
func Fig20(opt Options) (*Figure, error) {
	am, err := livesim.NewAmazon(opt.Seed)
	if err != nil {
		return nil, err
	}
	iface := am.Interface()
	aggs := am.Aggregates()
	cfg := estimator.Config{Rand: rand.New(rand.NewSource(opt.Seed + 7)), Parallelism: opt.Parallelism}
	est, err := estimator.NewRS(am.Env.Store.Schema(), aggs, cfg)
	if err != nil {
		return nil, err
	}

	f := &Figure{
		ID: "fig20", Title: "Amazon live experiment (simulated): watches over Thanksgiving week",
		XLabel: "day", YLabel: "estimate",
		X:       roundsAxis(am.Rounds()),
		XLabels: livesim.AmazonDays,
		Notes:   []string{"substitution: scripted promotion simulator (see DESIGN.md); estimator: RS, k=100, G=1000/day"},
	}
	series := make([][]float64, len(aggs)*2)
	for round := 1; round <= am.Rounds(); round++ {
		if err := am.StepDay(round); err != nil {
			return nil, err
		}
		if err := est.Step(iface.NewSession(1000)); err != nil {
			return nil, err
		}
		for i, a := range aggs {
			e, _ := est.Estimate(i)
			scale := 1.0
			if i > 0 {
				scale = 100 // render proportions as percentages
			}
			series[2*i] = append(series[2*i], e.Value*scale)
			series[2*i+1] = append(series[2*i+1], a.Truth(am.Env.Store)*scale)
		}
	}
	labels := []string{"Price", "Price TRUTH", "%Men", "%Men TRUTH", "%Wrist", "%Wrist TRUTH"}
	for i, l := range labels {
		f.AddSeries(l, series[i])
	}
	return f, nil
}

// Fig21 — the eBay live experiment (women's wrist watches, hourly),
// reproduced against the scripted simulator: AVG price of Buy-It-Now
// (FIX) and auction (BID) listings for all three algorithms with k=100
// and G=250 queries per hour per algorithm.
func Fig21(opt Options) (*Figure, error) {
	eb, err := livesim.NewEBay(opt.Seed)
	if err != nil {
		return nil, err
	}
	iface := eb.Interface()
	ests := map[Algo]estimator.Estimator{}
	for _, a := range AllAlgos {
		cfg := estimator.Config{Rand: rand.New(rand.NewSource(opt.Seed + 7)), Parallelism: opt.Parallelism}
		e, err := newEstimator(a, eb.Env.Store.Schema(),
			[]*agg.Aggregate{eb.FixAggregate(), eb.BidAggregate()}, cfg, nil)
		if err != nil {
			return nil, err
		}
		ests[a] = e
	}

	f := &Figure{
		ID: "fig21", Title: "eBay live experiment (simulated): FIX vs BID average price, hourly",
		XLabel: "hour", YLabel: "AVG price ($)",
		X:       roundsAxis(eb.Rounds()),
		XLabels: livesim.EBayHours,
		Notes:   []string{"substitution: scripted auction simulator (see DESIGN.md); k=100, G=250/hour per algorithm"},
	}
	type key struct {
		algo Algo
		agg  int
	}
	series := map[key][]float64{}
	var truthFix, truthBid []float64
	for round := 1; round <= eb.Rounds(); round++ {
		if err := eb.StepHour(round); err != nil {
			return nil, err
		}
		truthFix = append(truthFix, eb.FixAggregate().Truth(eb.Env.Store))
		truthBid = append(truthBid, eb.BidAggregate().Truth(eb.Env.Store))
		for _, a := range AllAlgos {
			if err := ests[a].Step(iface.NewSession(250)); err != nil {
				return nil, err
			}
			for i := 0; i < 2; i++ {
				e, _ := ests[a].Estimate(i)
				series[key{a, i}] = append(series[key{a, i}], e.Value)
			}
		}
	}
	f.AddSeries("FIX TRUTH", truthFix)
	for _, a := range AllAlgos {
		f.AddSeries(string(a)+"-FIX", series[key{a, 0}])
	}
	f.AddSeries("BID TRUTH", truthBid)
	for _, a := range AllAlgos {
		f.AddSeries(string(a)+"-BID", series[key{a, 1}])
	}
	return f, nil
}
