package router

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"github.com/dynagg/dynagg/internal/hiddendb"
	"github.com/dynagg/dynagg/internal/httpapi"
	"github.com/dynagg/dynagg/internal/metrics"
	"github.com/dynagg/dynagg/internal/obs"
	"github.com/dynagg/dynagg/internal/schema"
	"github.com/dynagg/dynagg/webiface"
)

// Options tunes a Router.
type Options struct {
	// Client is the base configuration for every shard connection
	// (HTTPClient, Retries, RequestTimeout, MinInterval). ObserveResponse
	// is reserved — the router installs its own epoch-watching hook.
	Client webiface.ClientOptions
	// PerKeyBudget caps the searches each API key may issue per epoch
	// (0 = unlimited). The router owns budget accounting for the whole
	// fleet; shard daemons behind it run unlimited.
	PerKeyBudget int
	// DegradedReads serves answers from the surviving shards when some
	// fail, instead of failing the whole query fast with a 503 envelope.
	// Degraded answers are complete over the reachable shards only and
	// are counted in dynagg_router_degraded_answers_total.
	DegradedReads bool
	// AdminTimeout bounds each admin call of the handshake and the
	// health probe (default 5s).
	AdminTimeout time.Duration
	// DebugRequests sizes the /v1/debug/requests ring (0 = default 64,
	// negative = disabled).
	DebugRequests int
	// SlowRequest is the latency at or above which a successful request
	// is recorded in the debug ring; failures always record (0 = default
	// 50ms, negative = record every request).
	SlowRequest time.Duration
	// Logger receives trace-correlated failure logs (nil = discard).
	Logger *slog.Logger
}

// Router is one logical hidden database over a fleet of shard daemons.
// It serves the full /v1/ surface of a shard-mode dynagg-serve — search,
// schema, stats, healthz, metrics — answering every search by
// scatter-gather under one pinned fleet epoch, with responses
// byte-identical to a single process serving the union of the shards.
//
// Concurrency: serving fan-outs hold pinMu for read; the epoch handshake
// holds it for write, so a query never straddles an epoch flip. Per-shard
// connection state (health, last observed epoch) is atomic.
type Router struct {
	conns []*shardConn
	opts  Options
	sch   *schema.Schema
	k     int
	admin *http.Client

	// pinMu pins the fleet epoch: fan-outs read-hold it, Handshake
	// write-holds it across freeze+publish.
	pinMu sync.RWMutex
	seq   atomic.Uint64 // current fleet epoch sequence (0 = none published)

	budgetMu     sync.Mutex
	perKeyBudget int
	used         map[string]int

	queries    atomic.Uint64
	fanouts    atomic.Uint64
	failures   atomic.Uint64
	degraded   atomic.Uint64
	handshakes atomic.Uint64

	// Latency histograms exported by /v1/metrics: end-to-end per route,
	// plus the top-k partial merge alone so fan-out wait and merge cost
	// are separable.
	reqHist   obs.Histogram // GET /v1/search, fan-out + merge + encode
	batchHist obs.Histogram // POST /v1/search, whole batch
	mergeHist obs.Histogram // MergePartials time per answered request

	// reqlog is the /v1/debug/requests ring: recent slow/failed requests
	// with their trace ID, per-shard timings and pinned epoch.
	reqlog *obs.RequestLog
	log    *slog.Logger
}

// shardConn is the router's connection to one shard daemon.
type shardConn struct {
	base string
	c    *webiface.Client

	healthy  atomic.Bool
	lastSeq  atomic.Uint64 // last epoch seq observed on a serving response
	mismatch atomic.Bool   // sticky: served an epoch other than the pinned one

	hist obs.Histogram // fan-out request latency distribution

	latMu    sync.Mutex
	latCount uint64
	latSum   time.Duration
	latMax   time.Duration
}

// observe records one request's latency and epoch header.
func (sc *shardConn) observeLatency(d time.Duration) {
	sc.latMu.Lock()
	sc.latCount++
	sc.latSum += d
	if d > sc.latMax {
		sc.latMax = d
	}
	sc.latMu.Unlock()
}

func (sc *shardConn) latency() (count uint64, sum, max time.Duration) {
	sc.latMu.Lock()
	defer sc.latMu.Unlock()
	return sc.latCount, sc.latSum, sc.latMax
}

// New dials every shard daemon, verifies they agree on schema and k, and
// returns a router with no epoch pinned yet: call Handshake before
// serving (searches answer 503 unavailable until the first handshake
// lands).
func New(shards []string, opts Options) (*Router, error) {
	if len(shards) == 0 {
		return nil, fmt.Errorf("router: no shard addresses")
	}
	if opts.AdminTimeout <= 0 {
		opts.AdminTimeout = 5 * time.Second
	}
	rt := &Router{
		opts:         opts,
		admin:        &http.Client{Timeout: opts.AdminTimeout},
		perKeyBudget: opts.PerKeyBudget,
		used:         make(map[string]int),
		log:          opts.Logger,
	}
	if rt.log == nil {
		rt.log = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	size, slow := opts.DebugRequests, opts.SlowRequest
	if size == 0 {
		size = webiface.DefaultDebugRequests
	}
	if slow == 0 {
		slow = webiface.DefaultSlowRequest
	}
	rt.reqlog = obs.NewRequestLog(size, slow)
	// Every concurrent client request fans out to EVERY shard, so the
	// shard connections see len(shards)× the router's own concurrency.
	// The default transport keeps only 2 idle conns per host, which
	// makes a loaded fan-out reconnect for almost every hop; give the
	// fleet a transport sized for it unless the caller brought their own
	// client.
	if opts.Client.HTTPClient == nil {
		tr := http.DefaultTransport.(*http.Transport).Clone()
		tr.MaxIdleConns = 0 // no cap beyond the per-host one
		tr.MaxIdleConnsPerHost = 256
		rt.opts.Client.HTTPClient = &http.Client{Timeout: 30 * time.Second, Transport: tr}
	}
	for _, base := range shards {
		sc := &shardConn{base: base}
		copts := rt.opts.Client
		copts.ObserveResponse = func(resp *http.Response) { rt.observeEpochHeader(sc, resp) }
		c, err := webiface.Dial(base, copts)
		if err != nil {
			return nil, fmt.Errorf("router: shard %s: %w", base, err)
		}
		sc.c = c
		sc.healthy.Store(true)
		rt.conns = append(rt.conns, sc)
	}
	rt.sch = rt.conns[0].c.Schema()
	rt.k = rt.conns[0].c.K()
	for _, sc := range rt.conns[1:] {
		if err := sameSchema(rt.sch, rt.k, sc.c.Schema(), sc.c.K()); err != nil {
			return nil, fmt.Errorf("router: shard %s: %w", sc.base, err)
		}
	}
	return rt, nil
}

// sameSchema rejects a fleet whose shards disagree on the serving
// contract — merged answers would be meaningless.
func sameSchema(a *schema.Schema, ak int, b *schema.Schema, bk int) error {
	if ak != bk {
		return fmt.Errorf("k mismatch: %d vs %d", bk, ak)
	}
	if a.M() != b.M() {
		return fmt.Errorf("schema mismatch: %d attrs vs %d", b.M(), a.M())
	}
	for i := 0; i < a.M(); i++ {
		x, y := a.Attr(i), b.Attr(i)
		if x.Name != y.Name || x.Nullable != y.Nullable || len(x.Domain) != len(y.Domain) {
			return fmt.Errorf("schema mismatch on attribute %d", i)
		}
		for j := range x.Domain {
			if x.Domain[j] != y.Domain[j] {
				return fmt.Errorf("schema mismatch on attribute %d", i)
			}
		}
	}
	return nil
}

// observeEpochHeader is the per-connection webiface ObserveResponse
// hook: it records the epoch a serving response was answered from and
// trips the sticky mismatch flag when it is not the pinned one — a shard
// that restarted mid-flight is serving data the rest of the fleet has
// moved past (or never reached), so its answers must not be merged.
func (rt *Router) observeEpochHeader(sc *shardConn, resp *http.Response) {
	h := resp.Header.Get(EpochHeader)
	if h == "" {
		return
	}
	seq, err := strconv.ParseUint(h, 10, 64)
	if err != nil {
		return
	}
	sc.lastSeq.Store(seq)
	if pinned := rt.seq.Load(); pinned != 0 && seq != pinned {
		sc.mismatch.Store(true)
	}
}

// NumShards returns the fan-out width.
func (rt *Router) NumShards() int { return len(rt.conns) }

// Seq returns the currently pinned fleet epoch sequence (0 before the
// first handshake).
func (rt *Router) Seq() uint64 { return rt.seq.Load() }

// K returns the fleet's top-k cap.
func (rt *Router) K() int { return rt.k }

// Schema returns the fleet schema.
func (rt *Router) Schema() *schema.Schema { return rt.sch }

// RetryCount sums retry attempts across all shard connections.
func (rt *Router) RetryCount() uint64 {
	var n uint64
	for _, sc := range rt.conns {
		n += sc.c.RetryCount()
	}
	return n
}

// SetRequestLog swaps the /v1/debug/requests ring (size <= 0 disables;
// slow <= 0 records every request). Call before serving.
func (rt *Router) SetRequestLog(size int, slow time.Duration) {
	rt.reqlog = obs.NewRequestLog(size, slow)
}

// SetPerKeyBudget caps the searches each API key may issue per epoch
// (g <= 0 means unlimited).
func (rt *Router) SetPerKeyBudget(g int) {
	rt.budgetMu.Lock()
	defer rt.budgetMu.Unlock()
	rt.perKeyBudget = g
}

// ResetBudgets starts a new round: every key's budget is restored. A
// successful Handshake calls it — fleet epochs are the router's rounds.
func (rt *Router) ResetBudgets() {
	rt.budgetMu.Lock()
	defer rt.budgetMu.Unlock()
	rt.used = make(map[string]int)
}

func (rt *Router) consumeBudget(key string) bool {
	rt.budgetMu.Lock()
	defer rt.budgetMu.Unlock()
	if rt.perKeyBudget > 0 && rt.used[key] >= rt.perKeyBudget {
		return false
	}
	rt.used[key]++
	return true
}

// ServeHTTP serves the same /v1/ surface as a shard daemon's serving
// handler, plus nothing else: the admin wire is shard-side only.
func (rt *Router) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	switch r.URL.Path {
	case "/v1/schema":
		rt.serveSchema(w)
	case "/v1/search":
		if r.Method == http.MethodPost {
			rt.serveSearchBatch(w, r)
			return
		}
		rt.serveSearch(w, r)
	case "/v1/stats":
		rt.serveStats(w)
	case "/v1/healthz":
		rt.serveHealthz(w)
	case "/v1/metrics":
		rt.serveMetrics(w)
	case "/v1/debug/requests":
		rt.reqlog.ServeJSON(w)
	default:
		httpapi.WriteError(w, http.StatusNotFound, httpapi.CodeNotFound, "no such route: "+r.URL.Path)
	}
}

// The wire structs mirror webiface's unexported ones field-for-field so
// encoding/json renders byte-identical bodies.

type wireSchema struct {
	K     int        `json:"k"`
	Attrs []wireAttr `json:"attrs"`
}

type wireAttr struct {
	Name     string   `json:"name"`
	Domain   []string `json:"domain"`
	Nullable bool     `json:"nullable,omitempty"`
}

type wireStats struct {
	K       int    `json:"k"`
	Queries uint64 `json:"queries"`
	Version uint64 `json:"version"`
}

type wireBatchRequest struct {
	Queries []wireBatchQuery `json:"queries"`
}

type wireBatchQuery struct {
	Where []string `json:"where"`
}

func (rt *Router) serveSchema(w http.ResponseWriter) {
	out := wireSchema{K: rt.k}
	for i := 0; i < rt.sch.M(); i++ {
		a := rt.sch.Attr(i)
		out.Attrs = append(out.Attrs, wireAttr{Name: a.Name, Domain: a.Domain, Nullable: a.Nullable})
	}
	writeJSON(w, out)
}

func (rt *Router) serveStats(w http.ResponseWriter) {
	writeJSON(w, wireStats{K: rt.k, Queries: rt.queries.Load(), Version: rt.seq.Load()})
}

// wireHealth is the router's /v1/healthz body: the serve handler's
// status/api_version plus fleet visibility.
type wireHealth struct {
	Status        string `json:"status"`
	APIVersion    string `json:"api_version"`
	Epoch         uint64 `json:"epoch"`
	ShardsHealthy int    `json:"shards_healthy"`
	ShardsTotal   int    `json:"shards_total"`
}

func (rt *Router) serveHealthz(w http.ResponseWriter) {
	healthy := 0
	for _, sc := range rt.conns {
		if sc.healthy.Load() && !sc.mismatch.Load() {
			healthy++
		}
	}
	status := "ok"
	if healthy < len(rt.conns) || rt.seq.Load() == 0 {
		status = "degraded"
	}
	httpapi.WriteJSON(w, http.StatusOK, wireHealth{
		Status:        status,
		APIVersion:    httpapi.Version,
		Epoch:         rt.seq.Load(),
		ShardsHealthy: healthy,
		ShardsTotal:   len(rt.conns),
	})
}

func (rt *Router) serveMetrics(w http.ResponseWriter) {
	rt.budgetMu.Lock()
	budget := rt.perKeyBudget
	used := make(map[string]int, len(rt.used))
	for k, v := range rt.used {
		used[k] = v
	}
	rt.budgetMu.Unlock()

	var b metrics.Builder
	b.Family("dynagg_router_queries_total", "counter", "Queries answered (or failed) by the router across all clients.")
	b.Value("dynagg_router_queries_total", float64(rt.queries.Load()))
	b.Family("dynagg_router_fanouts_total", "counter", "Scatter-gather fan-outs issued to the shard fleet.")
	b.Value("dynagg_router_fanouts_total", float64(rt.fanouts.Load()))
	b.Family("dynagg_router_retries_total", "counter", "Shard request retry attempts across all connections.")
	b.Value("dynagg_router_retries_total", float64(rt.RetryCount()))
	b.Family("dynagg_router_failures_total", "counter", "Queries failed with an unavailable envelope (shard outage, epoch mismatch).")
	b.Value("dynagg_router_failures_total", float64(rt.failures.Load()))
	b.Family("dynagg_router_degraded_answers_total", "counter", "Answers served from a partial fleet under degraded-reads mode.")
	b.Value("dynagg_router_degraded_answers_total", float64(rt.degraded.Load()))
	b.Family("dynagg_router_handshakes_total", "counter", "Fleet epoch handshakes attempted.")
	b.Value("dynagg_router_handshakes_total", float64(rt.handshakes.Load()))
	b.Family("dynagg_router_epoch_seq", "gauge", "Currently pinned fleet epoch sequence (0 = none).")
	b.Value("dynagg_router_epoch_seq", float64(rt.seq.Load()))
	b.Family("dynagg_router_shard_healthy", "gauge", "Per-shard health (1 = reachable and serving the pinned epoch).")
	for i, sc := range rt.conns {
		v := 0
		if sc.healthy.Load() && !sc.mismatch.Load() {
			v = 1
		}
		b.Int("dynagg_router_shard_healthy", v, "shard", strconv.Itoa(i))
	}
	// One loop per family: a metric's samples must stay grouped under
	// its own HELP/TYPE declaration (promcheck enforces this).
	b.Family("dynagg_router_shard_requests_total", "counter", "Requests issued to each shard.")
	for i, sc := range rt.conns {
		count, _, _ := sc.latency()
		b.Value("dynagg_router_shard_requests_total", float64(count), "shard", strconv.Itoa(i))
	}
	b.Family("dynagg_router_shard_latency_seconds_sum", "counter", "Total request latency per shard.")
	for i, sc := range rt.conns {
		_, sum, _ := sc.latency()
		b.Value("dynagg_router_shard_latency_seconds_sum", sum.Seconds(), "shard", strconv.Itoa(i))
	}
	b.Family("dynagg_router_shard_latency_seconds_max", "gauge", "Maximum request latency per shard.")
	for i, sc := range rt.conns {
		_, _, max := sc.latency()
		b.Value("dynagg_router_shard_latency_seconds_max", max.Seconds(), "shard", strconv.Itoa(i))
	}
	bounds := obs.Bounds()
	b.Family("dynagg_router_request_seconds", "histogram", "End-to-end routed request latency by route (fan-out, merge and encode included).")
	reqSnap := rt.reqHist.Snapshot()
	b.Histogram("dynagg_router_request_seconds", bounds, reqSnap.Counts, reqSnap.SumSeconds, "route", routeSearch)
	batchSnap := rt.batchHist.Snapshot()
	b.Histogram("dynagg_router_request_seconds", bounds, batchSnap.Counts, batchSnap.SumSeconds, "route", routeSearchBatch)
	b.Family("dynagg_router_merge_seconds", "histogram", "Top-k partial merge time per answered request.")
	mergeSnap := rt.mergeHist.Snapshot()
	b.Histogram("dynagg_router_merge_seconds", bounds, mergeSnap.Counts, mergeSnap.SumSeconds)
	b.Family("dynagg_router_shard_request_seconds", "histogram", "Fan-out request latency per shard connection.")
	for i, sc := range rt.conns {
		hs := sc.hist.Snapshot()
		b.Histogram("dynagg_router_shard_request_seconds", bounds, hs.Counts, hs.SumSeconds, "shard", strconv.Itoa(i))
	}
	b.Family("dynagg_router_per_key_budget", "gauge", "Per-API-key query budget per epoch (0 = unlimited).")
	b.Int("dynagg_router_per_key_budget", budget)
	b.Family("dynagg_router_key_queries_used", "gauge", "Queries charged to each API key this epoch.")
	for _, k := range metrics.SortedKeys(used) {
		b.Int("dynagg_router_key_queries_used", used[k], "key", k)
	}
	w.Header().Set("Content-Type", metrics.ContentType)
	_, _ = b.WriteTo(w)
}

// apiKey mirrors the serve handler's client identification.
func apiKey(r *http.Request) string {
	if k := r.Header.Get("X-API-Key"); k != "" {
		return k
	}
	return r.URL.Query().Get("key")
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(v)
}

// unavailable writes the fail-fast envelope for a fleet that cannot
// answer coherently right now.
func (rt *Router) unavailable(w http.ResponseWriter, msg string) {
	rt.failures.Add(1)
	httpapi.WriteError(w, http.StatusServiceUnavailable, httpapi.CodeUnavailable, msg)
}

// Route names used in metrics labels and the debug ring.
const (
	routeSearch      = "search"
	routeSearchBatch = "search_batch"
)

// traceFor stamps a request: the inbound X-Dynagg-Trace is honoured (so
// a caller-minted ID survives the router hop), otherwise the router
// mints one. The ID is echoed on the response and propagated to every
// shard daemon through the fan-out context.
func traceFor(w http.ResponseWriter, r *http.Request) string {
	trace := r.Header.Get(obs.TraceHeader)
	if trace == "" {
		trace = obs.NewTraceID()
	}
	w.Header().Set(obs.TraceHeader, trace)
	return trace
}

// finish closes out one routed request: end-to-end latency into the
// route's histogram, slow/failed requests into the debug ring, failures
// into the trace-correlated log.
func (rt *Router) finish(trace, route string, status int, start time.Time, detail string, shards []obs.ShardTiming) {
	d := time.Since(start)
	if route == routeSearch {
		rt.reqHist.Observe(d)
	} else {
		rt.batchHist.Observe(d)
	}
	failed := status >= 400
	outcome := "ok"
	if failed {
		outcome = "error"
		rt.log.Warn("request failed",
			"trace", trace, "route", route, "status", status,
			"duration_ms", obs.DurationMs(d), "detail", detail)
	}
	if rt.reqlog.Qualifies(d, failed) {
		rt.reqlog.Record(obs.RequestRecord{
			Trace:      trace,
			Route:      route,
			Status:     status,
			DurationMs: obs.DurationMs(d),
			Outcome:    outcome,
			Epoch:      rt.seq.Load(),
			Detail:     detail,
			Shards:     shards,
		})
	}
}

// serveSearch answers a single GET query by scatter-gather: parse and
// charge exactly like a shard daemon would, fan the query out under the
// pinned epoch, merge the per-shard top-k partials, re-encode with the
// shared wire encoder. The response bytes are identical to a single
// process serving the union of the shards.
func (rt *Router) serveSearch(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	trace := traceFor(w, r)
	vals := r.URL.Query()
	q, err := webiface.ParseWhere(rt.sch, vals["where"])
	if err != nil {
		httpapi.WriteError(w, http.StatusBadRequest, httpapi.CodeBadRequest, err.Error())
		rt.finish(trace, routeSearch, http.StatusBadRequest, start, err.Error(), nil)
		return
	}
	key := r.Header.Get("X-API-Key")
	if key == "" {
		key = vals.Get("key")
	}
	if !rt.consumeBudget(key) {
		httpapi.WriteError(w, http.StatusTooManyRequests, httpapi.CodeBudgetExhausted,
			"per-round query budget exhausted")
		rt.finish(trace, routeSearch, http.StatusTooManyRequests, start, "per-round query budget exhausted", nil)
		return
	}
	rt.queries.Add(1)
	ctx := obs.WithTrace(r.Context(), trace)
	partials, timings, err := rt.fanOut(ctx, func(ctx context.Context, sc *shardConn) (hiddendb.Result, error) {
		return sc.c.SearchContext(ctx, q)
	})
	if err != nil {
		rt.unavailable(w, err.Error())
		rt.finish(trace, routeSearch, http.StatusServiceUnavailable, start, err.Error(), timings)
		return
	}
	mStart := time.Now()
	merged := hiddendb.MergePartials(partials, rt.k, nil)
	buf := webiface.AppendWireResult(nil, rt.k, merged)
	rt.mergeHist.Observe(time.Since(mStart))
	buf = append(buf, '\n')
	w.Header().Set("Content-Type", "application/json")
	_, _ = w.Write(buf)
	rt.finish(trace, routeSearch, http.StatusOK, start, "", timings)
}

// fanOut runs one request against every shard under the pinned epoch,
// returning the per-shard partial results in shard order plus the
// per-shard timings for the debug ring. A shard that errors, or whose
// response carried a different epoch than the pinned one, fails the
// whole fan-out — unless degraded reads are on, in which case its
// partial is simply dropped.
func (rt *Router) fanOut(ctx context.Context, call func(context.Context, *shardConn) (hiddendb.Result, error)) ([]hiddendb.Result, []obs.ShardTiming, error) {
	rt.pinMu.RLock()
	defer rt.pinMu.RUnlock()
	pinned := rt.seq.Load()
	if pinned == 0 {
		return nil, nil, fmt.Errorf("no fleet epoch published yet (handshake pending)")
	}
	rt.fanouts.Add(1)
	results := make([]hiddendb.Result, len(rt.conns))
	errs := make([]error, len(rt.conns))
	timings := make([]obs.ShardTiming, len(rt.conns))
	var wg sync.WaitGroup
	for i, sc := range rt.conns {
		wg.Add(1)
		go func(i int, sc *shardConn) {
			defer wg.Done()
			start := time.Now()
			results[i], errs[i] = call(ctx, sc)
			d := time.Since(start)
			sc.observeLatency(d)
			sc.hist.Observe(d)
			timings[i] = obs.ShardTiming{Shard: i, DurationMs: obs.DurationMs(d)}
		}(i, sc)
	}
	wg.Wait()
	partials := make([]hiddendb.Result, 0, len(rt.conns))
	dropped := 0
	var firstErr error
	for i, sc := range rt.conns {
		switch {
		case errs[i] != nil:
			sc.healthy.Store(false)
			timings[i].Error = errs[i].Error()
			dropped++
			if firstErr == nil {
				firstErr = fmt.Errorf("shard %d (%s): %v", i, sc.base, errs[i])
			}
		case sc.mismatch.Load():
			timings[i].Error = "epoch mismatch"
			dropped++
			if firstErr == nil {
				firstErr = fmt.Errorf("shard %d (%s): answered epoch %d, fleet pinned %d (re-handshake required)",
					i, sc.base, sc.lastSeq.Load(), pinned)
			}
		default:
			sc.healthy.Store(true)
			partials = append(partials, results[i])
		}
	}
	if dropped > 0 {
		if !rt.opts.DegradedReads {
			return nil, timings, firstErr
		}
		rt.degraded.Add(1)
	}
	return partials, timings, nil
}

// serveSearchBatch answers a batched POST by scatter-gather: the whole
// batch is validated and budget-charged exactly like a shard daemon
// would, then the covered queries go to every shard as ONE batched POST
// each — so the fleet answers the batch under one epoch pin per shard
// and one pinned fleet epoch overall — and the per-query partials are
// merged and spliced into the same response bytes a single process
// produces.
func (rt *Router) serveSearchBatch(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	trace := traceFor(w, r)
	body, err := io.ReadAll(r.Body)
	if err != nil {
		httpapi.WriteError(w, http.StatusBadRequest, httpapi.CodeBadRequest, "batch decode: "+err.Error())
		rt.finish(trace, routeSearchBatch, http.StatusBadRequest, start, "batch decode: "+err.Error(), nil)
		return
	}
	var req wireBatchRequest
	if err := json.Unmarshal(body, &req); err != nil {
		httpapi.WriteError(w, http.StatusBadRequest, httpapi.CodeBadRequest, "batch decode: "+err.Error())
		rt.finish(trace, routeSearchBatch, http.StatusBadRequest, start, "batch decode: "+err.Error(), nil)
		return
	}
	qs := make([]hiddendb.Query, len(req.Queries))
	for i, wq := range req.Queries {
		q, err := webiface.ParseWhere(rt.sch, wq.Where)
		if err != nil {
			httpapi.WriteError(w, http.StatusBadRequest, httpapi.CodeBadRequest,
				fmt.Sprintf("query %d: %s", i, err))
			rt.finish(trace, routeSearchBatch, http.StatusBadRequest, start, fmt.Sprintf("query %d: %s", i, err), nil)
			return
		}
		qs[i] = q
	}
	key := apiKey(r)
	charged := make([]hiddendb.Query, 0, len(qs))
	chargedIdx := make([]int, 0, len(qs))
	inBudget := make([]bool, len(qs))
	for i, q := range qs {
		if !rt.consumeBudget(key) {
			continue
		}
		inBudget[i] = true
		charged = append(charged, q)
		chargedIdx = append(chargedIdx, i)
	}
	rt.queries.Add(uint64(len(qs)))

	merged := make([]hiddendb.Result, len(qs))
	var timings []obs.ShardTiming
	if len(charged) > 0 {
		var partials [][]hiddendb.Result
		partials, timings, err = rt.fanOutBatch(obs.WithTrace(r.Context(), trace), charged)
		if err != nil {
			rt.unavailable(w, err.Error())
			rt.finish(trace, routeSearchBatch, http.StatusServiceUnavailable, start, err.Error(), timings)
			return
		}
		mStart := time.Now()
		scratch := make([]hiddendb.Result, 0, len(partials))
		for j, idx := range chargedIdx {
			scratch = scratch[:0]
			for _, shardItems := range partials {
				scratch = append(scratch, shardItems[j])
			}
			merged[idx] = hiddendb.MergePartials(scratch, rt.k, nil)
		}
		rt.mergeHist.Observe(time.Since(mStart))
	}

	buf := append(make([]byte, 0, 4096), `{"k":`...)
	buf = strconv.AppendInt(buf, int64(rt.k), 10)
	buf = append(buf, `,"results":[`...)
	for i := range qs {
		if i > 0 {
			buf = append(buf, ',')
		}
		if !inBudget[i] {
			buf = append(buf, webiface.BatchBudgetErrJSON...)
			continue
		}
		buf = append(buf, `{"result":`...)
		buf = webiface.AppendWireResult(buf, rt.k, merged[i])
		buf = append(buf, '}')
	}
	buf = append(buf, `]}`...)
	buf = append(buf, '\n')
	w.Header().Set("Content-Type", "application/json")
	_, _ = w.Write(buf)
	rt.finish(trace, routeSearchBatch, http.StatusOK, start, "", timings)
}

// fanOutBatch sends the covered queries to every shard as one batched
// POST each, returning per-shard slices of per-query partial results
// (surviving shards only, shard order preserved) plus per-shard
// timings. Failure semantics match fanOut; a per-item error inside an
// otherwise-successful batch (which the router's unlimited shard
// budgets should never produce) fails that shard too.
func (rt *Router) fanOutBatch(ctx context.Context, charged []hiddendb.Query) ([][]hiddendb.Result, []obs.ShardTiming, error) {
	type shardBatch struct {
		items []hiddendb.BatchItem
		err   error
	}
	rt.pinMu.RLock()
	defer rt.pinMu.RUnlock()
	pinned := rt.seq.Load()
	if pinned == 0 {
		return nil, nil, fmt.Errorf("no fleet epoch published yet (handshake pending)")
	}
	rt.fanouts.Add(1)
	outs := make([]shardBatch, len(rt.conns))
	timings := make([]obs.ShardTiming, len(rt.conns))
	var wg sync.WaitGroup
	for i, sc := range rt.conns {
		wg.Add(1)
		go func(i int, sc *shardConn) {
			defer wg.Done()
			start := time.Now()
			outs[i].items, outs[i].err = sc.c.SearchBatchContext(ctx, charged)
			d := time.Since(start)
			sc.observeLatency(d)
			sc.hist.Observe(d)
			timings[i] = obs.ShardTiming{Shard: i, DurationMs: obs.DurationMs(d)}
		}(i, sc)
	}
	wg.Wait()
	partials := make([][]hiddendb.Result, 0, len(rt.conns))
	dropped := 0
	var firstErr error
	for i, sc := range rt.conns {
		err := outs[i].err
		if err == nil {
			for _, it := range outs[i].items {
				if it.Err != nil {
					err = fmt.Errorf("batch item: %w", it.Err)
					break
				}
			}
		}
		switch {
		case err != nil:
			sc.healthy.Store(false)
			timings[i].Error = err.Error()
			dropped++
			if firstErr == nil {
				firstErr = fmt.Errorf("shard %d (%s): %v", i, sc.base, err)
			}
		case sc.mismatch.Load():
			timings[i].Error = "epoch mismatch"
			dropped++
			if firstErr == nil {
				firstErr = fmt.Errorf("shard %d (%s): answered epoch %d, fleet pinned %d (re-handshake required)",
					i, sc.base, sc.lastSeq.Load(), pinned)
			}
		default:
			sc.healthy.Store(true)
			rs := make([]hiddendb.Result, len(outs[i].items))
			for j, it := range outs[i].items {
				rs[j] = it.Result
			}
			partials = append(partials, rs)
		}
	}
	if dropped > 0 {
		if !rt.opts.DegradedReads {
			return nil, timings, firstErr
		}
		rt.degraded.Add(1)
	}
	return partials, timings, nil
}
