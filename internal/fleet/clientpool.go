package fleet

import (
	"strings"
	"sync"
	"sync/atomic"

	"github.com/dynagg/dynagg/webiface"
)

// ClientPool shares webiface.Clients across fleet tasks, keyed by the
// remote host (normalised base URL) plus the API key the tasks present.
// Many tasks tracking aggregates on one remote dynagg-serve therefore
// queue on ONE client's rate limiter instead of hammering the site with
// independent request streams — the client is concurrent-safe, and its
// MinInterval slots are handed out under its own mutex.
//
// Tasks presenting different API keys get different clients: the server
// accounts per-key budgets, so folding two keys onto one client would
// tie their rate limiting together while their budgets stay separate.
//
// Dialing (the schema fetch) happens OUTSIDE the pool map lock, under a
// per-key entry lock: a slow or dead remote can delay only callers
// asking for that same remote, never a Get for another host, and never
// Size() — which the scheduler's Status path calls and therefore must
// not queue behind a 30s dial.
type ClientPool struct {
	opts webiface.ClientOptions

	mu      sync.Mutex // guards the entries map only — never held while dialing
	entries map[string]*poolEntry
	dialed  atomic.Int64 // successfully dialed clients (lock-free Size)
}

// poolEntry serialises dials for one key. Entries are never removed: a
// failed dial leaves c nil, which IS the retry signal for the next Get —
// removal would let a waiter succeed on an orphaned entry and a later
// Get register a second client (two rate limiters) for the same key.
type poolEntry struct {
	mu sync.Mutex
	c  *webiface.Client // nil until a dial succeeds
}

// NewClientPool builds a pool whose clients use opts as their defaults
// (the per-task API key overrides opts.APIKey).
func NewClientPool(opts webiface.ClientOptions) *ClientPool {
	return &ClientPool{opts: opts, entries: make(map[string]*poolEntry)}
}

// Get returns the shared client for the given base URL and API key,
// dialing (schema fetch) on first use. Concurrent Gets for one key are
// serialised so the schema is fetched once; a failed dial is not cached.
func (p *ClientPool) Get(base, apiKey string) (*webiface.Client, error) {
	key := strings.TrimRight(base, "/") + "\x00" + apiKey
	p.mu.Lock()
	e, ok := p.entries[key]
	if !ok {
		e = &poolEntry{}
		p.entries[key] = e
	}
	p.mu.Unlock()

	e.mu.Lock()
	defer e.mu.Unlock()
	if e.c != nil {
		return e.c, nil
	}
	opts := p.opts
	opts.APIKey = apiKey
	c, err := webiface.Dial(base, opts)
	if err != nil {
		return nil, err
	}
	e.c = c
	p.dialed.Add(1)
	return c, nil
}

// Size returns the number of distinct dialed clients (diagnostics).
// Lock-free: the Status path must never wait behind an in-flight dial.
func (p *ClientPool) Size() int { return int(p.dialed.Load()) }
