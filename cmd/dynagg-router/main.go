// Command dynagg-router fronts a fleet of shard-mode dynagg-serve
// processes as ONE logical hidden database. It serves the full /v1/
// surface — search (GET and batched POST), schema, stats, healthz,
// metrics — answering every search by scatter-gather across the fleet
// under one pinned epoch, with responses byte-identical to a single
// process serving the union of the shards.
//
// The router owns the fleet's epoch lifecycle: on -epoch-every it drives
// the two-phase handshake (freeze every shard with mutators quiescent,
// then publish a fleet-wide sequence; any failure rolls every shard back
// to the prior epoch), and on -probe-every it sweeps shard health,
// re-handshaking when a restarted shard is found serving a stale epoch.
// Per-key budgets are accounted at the router (fleet epochs are the
// rounds); shard daemons behind it should run unlimited.
//
// Usage:
//
//	dynagg-serve -shard-mode -addr :8081 &
//	dynagg-serve -shard-mode -addr :8082 -seed 2 &
//	dynagg-router -addr :8080 -shards http://localhost:8081,http://localhost:8082
//
// docs/deploy.md describes the topology, handshake and failure
// semantics in operator terms.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"github.com/dynagg/dynagg/internal/obs"
	"github.com/dynagg/dynagg/internal/router"
	"github.com/dynagg/dynagg/webiface"
)

func main() {
	var (
		addr       = flag.String("addr", ":8080", "listen address")
		shards     = flag.String("shards", "", "comma-separated shard base URLs (required)")
		budget     = flag.Int("budget", 0, "per-API-key queries per fleet epoch (0 = unlimited)")
		epochEvery = flag.Duration("epoch-every", 10*time.Second, "fleet epoch handshake interval (0 = only the startup handshake)")
		probeEvery = flag.Duration("probe-every", 2*time.Second, "shard health probe interval (0 = no probing)")
		retries    = flag.Int("retries", 2, "per-shard request retries with exponential backoff")
		timeout    = flag.Duration("timeout", 5*time.Second, "per-shard request attempt timeout")
		degraded   = flag.Bool("degraded", false, "serve from surviving shards when some fail, instead of failing fast with an unavailable envelope")
		logFormat  = flag.String("log-format", "text", "log output format: text or json")
		pprofAddr  = flag.String("pprof-addr", "", "optional admin listener serving net/http/pprof (empty = disabled)")
		debugReqs  = flag.Int("debug-requests", webiface.DefaultDebugRequests, "size of the /v1/debug/requests ring (<= 0 disables)")
		slowReq    = flag.Duration("slow-request", webiface.DefaultSlowRequest, "record successful requests at or above this latency in the debug ring (<= 0 records every request)")
	)
	flag.Parse()
	logger, err := obs.NewLogger(*logFormat, os.Stderr)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	slog.SetDefault(logger)
	obs.ServePprof(*pprofAddr, logger)
	bases := strings.Split(*shards, ",")
	clean := bases[:0]
	for _, b := range bases {
		if b = strings.TrimSpace(b); b != "" {
			clean = append(clean, b)
		}
	}
	if len(clean) == 0 {
		logger.Error("-shards is required (comma-separated shard base URLs)")
		os.Exit(1)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// Dial the fleet, retrying while shards are still coming up.
	var rt *router.Router
	for {
		var err error
		rt, err = router.New(clean, router.Options{
			Client: webiface.ClientOptions{
				Retries:        *retries,
				RequestTimeout: *timeout,
			},
			PerKeyBudget:  *budget,
			DegradedReads: *degraded,
			AdminTimeout:  *timeout,
			DebugRequests: *debugReqs,
			SlowRequest:   *slowReq,
			Logger:        logger,
		})
		if err == nil {
			break
		}
		logger.Warn("dial fleet failed; retrying", "error", err)
		select {
		case <-ctx.Done():
			return
		case <-time.After(time.Second):
		}
	}

	// Startup handshake: pin the first fleet epoch before serving.
	for {
		seq, err := rt.Handshake(ctx)
		if err == nil {
			logger.Info("fleet epoch published", "epoch", seq, "shards", rt.NumShards())
			break
		}
		logger.Warn("startup handshake failed; retrying", "error", err)
		select {
		case <-ctx.Done():
			return
		case <-time.After(time.Second):
		}
	}

	if *epochEvery > 0 {
		go func() {
			t := time.NewTicker(*epochEvery)
			defer t.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case <-t.C:
				}
				if seq, err := rt.Handshake(ctx); err != nil {
					logger.Error("epoch handshake failed", "error", err)
				} else {
					logger.Info("fleet epoch published", "epoch", seq)
				}
			}
		}()
	}

	if *probeEvery > 0 {
		go func() {
			t := time.NewTicker(*probeEvery)
			defer t.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case <-t.C:
				}
				rep := rt.ProbeOnce(ctx)
				if rep.Unreachable > 0 || rep.Mismatched > 0 {
					logger.Warn("probe found unhealthy shards",
						"healthy", rep.Healthy, "unreachable", rep.Unreachable, "stale_epoch", rep.Mismatched)
				}
				if rep.NeedsHandshake() && rep.Unreachable == 0 {
					// A restarted shard is back but serving its own epoch;
					// re-align the fleet so its answers count again.
					if seq, err := rt.Handshake(ctx); err != nil {
						logger.Error("re-handshake failed", "error", err)
					} else {
						logger.Info("fleet re-aligned", "epoch", seq)
					}
				}
			}
		}()
	}

	srv := &http.Server{Addr: *addr, Handler: rt}
	go func() {
		<-ctx.Done()
		sctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(sctx); err != nil {
			logger.Error("shutdown", "error", err)
		}
	}()

	logger.Info("routing fleet",
		"addr", *addr, "shards", rt.NumShards(), "k", rt.K(), "budget", *budget,
		"epoch_every", (*epochEvery).String(), "degraded", *degraded)
	if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		logger.Error("listen", "error", err)
		os.Exit(1)
	}
	logger.Info("drained; bye", "epoch", rt.Seq())
}
