package promcheck_test

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"github.com/dynagg/dynagg/internal/agg"
	"github.com/dynagg/dynagg/internal/fleet"
	"github.com/dynagg/dynagg/internal/hiddendb"
	"github.com/dynagg/dynagg/internal/metrics"
	"github.com/dynagg/dynagg/internal/metrics/promcheck"
	"github.com/dynagg/dynagg/internal/router"
	"github.com/dynagg/dynagg/internal/schema"
	"github.com/dynagg/dynagg/internal/tracking"
	"github.com/dynagg/dynagg/internal/workload"
	"github.com/dynagg/dynagg/webiface"
)

// These tests scrape the LIVE /v1/metrics of each of the four daemons'
// handlers and hold the output to the strict exposition validator —
// the CI guard that no instrumentation change ships an unparseable or
// structurally broken document.

// scrape GETs path from srv, requiring a 200 and the exposition
// content type, and returns the body.
func scrape(t *testing.T, srv *httptest.Server, path string) string {
	t.Helper()
	resp, err := srv.Client().Get(srv.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d: %s", path, resp.StatusCode, body)
	}
	if ct := resp.Header.Get("Content-Type"); ct != metrics.ContentType {
		t.Fatalf("GET %s: content type %q, want %q", path, ct, metrics.ContentType)
	}
	return string(body)
}

// requireHistogram asserts the document declares family as a histogram
// and carries at least one complete bucket series for it.
func requireHistogram(t *testing.T, doc, family string) {
	t.Helper()
	if !strings.Contains(doc, "# TYPE "+family+" histogram") {
		t.Errorf("no histogram TYPE line for %s", family)
	}
	if !strings.Contains(doc, family+`_bucket{`) {
		t.Errorf("no bucket samples for %s", family)
	}
	if !strings.Contains(doc, `le="+Inf"`) {
		t.Errorf("no +Inf bucket anywhere in document")
	}
}

func checkDoc(t *testing.T, doc string, histograms ...string) {
	t.Helper()
	if err := promcheck.Validate(doc); err != nil {
		t.Fatalf("exposition invalid: %v\n%s", err, doc)
	}
	for _, fam := range histograms {
		requireHistogram(t, doc, fam)
	}
}

func TestServeExposition(t *testing.T) {
	data := workload.AutosLikeN(41, 2000, 10)
	env, err := workload.NewEnv(data, 1800, 42)
	if err != nil {
		t.Fatal(err)
	}
	h := webiface.NewHandler(hiddendb.NewIface(env.Store, 50, nil))
	srv := httptest.NewServer(h)
	defer srv.Close()

	// Drive the hot path so the route histograms hold real samples:
	// the repeat is a warm cache hit, exercising both outcome labels.
	for i := 0; i < 3; i++ {
		resp, err := srv.Client().Get(srv.URL + "/v1/search?where=0:0")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("search status %d", resp.StatusCode)
		}
	}
	doc := scrape(t, srv, "/v1/metrics")
	checkDoc(t, doc, "dynagg_serve_request_seconds")
	if !strings.Contains(doc, `dynagg_serve_request_seconds_count{route="search",outcome="hit"}`) {
		t.Error("no hit-labeled search latency series after a warm repeat")
	}
}

func TestTrackExposition(t *testing.T) {
	data := workload.AutosLikeN(43, 2000, 8)
	env, err := workload.NewEnv(data, 1800, 44)
	if err != nil {
		t.Fatal(err)
	}
	iface := hiddendb.NewIface(env.Store, 100, nil)
	svc, err := tracking.New(iface.Schema(),
		func(g int) tracking.Session { return iface.NewSession(g) },
		tracking.Config{
			Aggregates: []*agg.Aggregate{agg.CountAll()},
			Budget:     200,
			Seed:       7,
		})
	if err != nil {
		t.Fatal(err)
	}
	if err := svc.StepOnce(); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()

	doc := scrape(t, srv, "/v1/metrics")
	if err := promcheck.Validate(doc); err != nil {
		t.Fatalf("exposition invalid: %v\n%s", err, doc)
	}
	// The round histogram has no labels, so requireHistogram's bucket
	// probe needs the bare-name form.
	if !strings.Contains(doc, "# TYPE dynagg_track_round_seconds histogram") {
		t.Error("no round-latency histogram family")
	}
	if !strings.Contains(doc, `dynagg_track_round_seconds_bucket{le=`) {
		t.Error("no round-latency bucket samples")
	}
	if !strings.Contains(doc, "dynagg_track_round_seconds_count 1") {
		t.Error("round histogram does not count the single step")
	}
}

func TestFleetExposition(t *testing.T) {
	data := workload.AutosLikeN(45, 2000, 8)
	env, err := workload.NewEnv(data, 1800, 46)
	if err != nil {
		t.Fatal(err)
	}
	iface := hiddendb.NewIface(env.Store, 100, nil)
	mgr, err := fleet.New(fleet.Config{
		TickBudget: 200,
		Dir:        t.TempDir(),
		Targets: map[string]fleet.Target{
			"db": {
				Schema: iface.Schema(),
				Source: func(g int) tracking.Session { return iface.NewSession(g) },
			},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := mgr.Add(fleet.TaskSpec{ID: "count", Target: "db", Seed: 3}); err != nil {
		t.Fatal(err)
	}
	mgr.TickOnce()
	srv := httptest.NewServer(mgr.Handler())
	defer srv.Close()

	doc := scrape(t, srv, "/v1/metrics")
	checkDoc(t, doc, "dynagg_fleet_task_round_seconds")
	if !strings.Contains(doc, "# TYPE dynagg_fleet_tick_seconds histogram") {
		t.Error("no tick-latency histogram family")
	}
	if !strings.Contains(doc, `dynagg_fleet_task_round_seconds_bucket{task="count",le=`) {
		t.Error("no per-task round buckets for the registered task")
	}
}

func TestRouterExposition(t *testing.T) {
	attrs := make([]schema.Attr, 2)
	for i := range attrs {
		dom := make([]string, 3)
		for v := range dom {
			dom[v] = fmt.Sprintf("v%d", v)
		}
		attrs[i] = schema.Attr{Name: fmt.Sprintf("A%d", i+1), Domain: dom}
	}
	sch := schema.New(attrs)

	var bases []string
	for i := 0; i < 2; i++ {
		ss := hiddendb.NewShardedStore(sch, 1)
		h := webiface.NewHandler(hiddendb.NewShardedIface(ss, 25, nil))
		admin := router.NewShardAdmin(ss, h, router.AdminOptions{})
		shardSrv := httptest.NewServer(admin)
		defer shardSrv.Close()
		bases = append(bases, shardSrv.URL)
	}
	rt, err := router.New(bases, router.Options{
		Client: webiface.ClientOptions{RequestTimeout: 10 * time.Second},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rt.Handshake(context.Background()); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(rt)
	defer srv.Close()

	for i := 0; i < 2; i++ {
		resp, err := srv.Client().Get(srv.URL + "/v1/search?where=0:0")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("routed search status %d", resp.StatusCode)
		}
	}
	doc := scrape(t, srv, "/v1/metrics")
	checkDoc(t, doc,
		"dynagg_router_request_seconds",
		"dynagg_router_shard_request_seconds",
	)
	if !strings.Contains(doc, "# TYPE dynagg_router_merge_seconds histogram") {
		t.Error("no merge-latency histogram family")
	}
	if !strings.Contains(doc, `dynagg_router_request_seconds_count{route="search"} 2`) {
		t.Error("router request histogram does not count the two searches")
	}
}
