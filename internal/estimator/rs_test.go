package estimator

import (
	"math"
	"math/rand"
	"testing"

	"github.com/dynagg/dynagg/internal/agg"
	"github.com/dynagg/dynagg/internal/querytree"
)

func TestVarModelObserveAndSmoothing(t *testing.T) {
	var m varModel
	if m.haveHT || m.haveDiff {
		t.Fatal("zero value should be empty")
	}
	// Fallback before any observation.
	if got := m.htVar(42); got != 42 {
		t.Errorf("htVar fallback = %v", got)
	}
	m.observe(100, 10, 0, 0)
	if !m.haveHT || m.ht != 100 {
		t.Errorf("first observation not adopted: %+v", m)
	}
	m.observe(200, 10, 0, 0)
	if m.ht != 150 { // λ = 0.5
		t.Errorf("EWMA = %v, want 150", m.ht)
	}
	// Samples below the minimum count are ignored.
	m.observe(1e9, 1, 1e9, 1)
	if m.ht != 150 || m.haveDiff {
		t.Errorf("tiny samples should be ignored: %+v", m)
	}
	m.observe(0, 0, 50, 5)
	if !m.haveDiff || m.diff != 50 {
		t.Errorf("diff not adopted: %+v", m)
	}
}

func TestVarModelDiffVarFor(t *testing.T) {
	var m varModel
	// Without diff observations: conservative half-HT per gap round.
	if got := m.diffVarFor(2, 100); got != 100 {
		t.Errorf("no-diff fallback = %v, want 0.5*100*2", got)
	}
	m.observe(1000, 10, 40, 10)
	if got := m.diffVarFor(1, 0); got != 40 {
		t.Errorf("diffVarFor(1) = %v", got)
	}
	if got := m.diffVarFor(3, 0); got != 120 {
		t.Errorf("diffVarFor(3) = %v, want gap scaling", got)
	}
	// The 1% floor prevents history freezing.
	m.observe(1000, 10, 0, 10) // diff EWMA decays toward 0
	m.observe(1000, 10, 0, 10)
	m.observe(1000, 10, 0, 10)
	lo := m.diffVarFor(1, 0)
	if lo < 0.01*m.ht {
		t.Errorf("diff floor violated: %v < %v", lo, 0.01*m.ht)
	}
	// Zero-gap requests are clamped to gap 1.
	if m.diffVarFor(0, 0) != m.diffVarFor(1, 0) {
		t.Error("gap clamp missing")
	}
}

func TestCombinePartsPrefersLowVariance(t *testing.T) {
	a := agg.CountAll()
	est, ok := combineParts(a, []groupPart{
		{pair: agg.Pair{Count: 100, SumF: 100}, value: 100, indep: 1, n: 5},
		{pair: agg.Pair{Count: 900, SumF: 900}, value: 900, indep: 1e9, n: 5},
	})
	if !ok {
		t.Fatal("no estimate")
	}
	if math.Abs(est.Value-100) > 1 {
		t.Errorf("combined = %v, want ~100", est.Value)
	}
	if est.Drills != 10 {
		t.Errorf("drills = %d", est.Drills)
	}
	if est.Variance <= 0 || est.Variance > 1 {
		t.Errorf("variance = %v", est.Variance)
	}
}

func TestCombinePartsCorrelatedOldGroupsAreFloored(t *testing.T) {
	a := agg.CountAll()
	// Ten "old" parts sharing history: pooling them must NOT report a
	// variance ten times smaller than the best single part.
	var parts []groupPart
	for i := 0; i < 10; i++ {
		parts = append(parts, groupPart{
			pair: agg.Pair{Count: 100}, value: 100,
			indep: 0.5, carried: 2.0, n: 3,
		})
	}
	est, ok := combineParts(a, parts)
	if !ok {
		t.Fatal("no estimate")
	}
	if est.Variance < 2.0 {
		t.Errorf("correlated pooling reported variance %v < best single 2.5", est.Variance)
	}
}

func TestCombinePartsEmpty(t *testing.T) {
	if _, ok := combineParts(agg.CountAll(), nil); ok {
		t.Error("empty parts produced an estimate")
	}
}

func TestAllocateSendsBudgetToInformativeArm(t *testing.T) {
	te := newTestEnv(t, 200, 5000, 4500, 100)
	r, err := NewRS(te.env.Store.Schema(), []*agg.Aggregate{agg.CountAll()}, cfg(201))
	if err != nil {
		t.Fatal(err)
	}
	r.round = 3

	mkGroup := func(key int, alpha, beta, g float64, members int) *rsGroup {
		grp := &rsGroup{key: key, alpha: alpha, beta: beta, g: g}
		for i := 0; i < members; i++ {
			grp.members = append(grp.members, &drill{})
		}
		return grp
	}

	// Static-database shape: updated group has tiny α but a β anchor;
	// new drills have large α and no β. The first few updates are worth
	// it; everything after must flow to new drills.
	old := mkGroup(2, 1.0, 100.0, 2, 1000)
	fresh := mkGroup(newGroupKey, 1e4, 0, 3, 0)
	r.allocate([]*rsGroup{old, fresh}, 300)
	if fresh.want == 0 {
		t.Errorf("no budget for new drills: old=%d new=%d", old.want, fresh.want)
	}
	if old.want > 50 {
		t.Errorf("over-updating a saturated group: old=%d", old.want)
	}

	// Drastic-change shape: diff variance ~ HT variance, updates cheaper.
	// Corollary 4.1's closed form gives h1 = h·(√(gd/gc) − 1) ≈ 0.41·h
	// here; the greedy allocation should land in the same region — far
	// more updates than the static case, but not full coverage.
	old2 := mkGroup(2, 1e4, 100.0, 2, 120)
	fresh2 := mkGroup(newGroupKey, 1e4, 0, 4, 0)
	r.allocate([]*rsGroup{old2, fresh2}, 300)
	if old2.want < 25 || old2.want > 80 {
		t.Errorf("big change: updates = %d/120, want ≈ 0.41·120 ± slack", old2.want)
	}
	if old2.want <= old.want {
		t.Errorf("big change should update more than static: %d vs %d", old2.want, old.want)
	}
}

func TestAllocateRespectsBudgetAndCapacity(t *testing.T) {
	te := newTestEnv(t, 210, 5000, 4500, 100)
	r, err := NewRS(te.env.Store.Schema(), []*agg.Aggregate{agg.CountAll()}, cfg(211))
	if err != nil {
		t.Fatal(err)
	}
	r.round = 2
	old := &rsGroup{key: 1, alpha: 10, beta: 1, g: 2}
	for i := 0; i < 5; i++ {
		old.members = append(old.members, &drill{})
	}
	fresh := &rsGroup{key: newGroupKey, alpha: 100, beta: 0, g: 4}
	r.allocate([]*rsGroup{old, fresh}, 100)
	if old.want > 5 {
		t.Errorf("allocated %d updates to a 5-member group", old.want)
	}
	spent := float64(old.want)*old.g + float64(fresh.want)*fresh.g
	if spent > 100+fresh.g {
		t.Errorf("allocation overspends: %.0f > 100", spent)
	}
}

func TestRetireStaleGroups(t *testing.T) {
	te := newTestEnv(t, 220, 5000, 4500, 100)
	r, err := NewRS(te.env.Store.Schema(), []*agg.Aggregate{agg.CountAll()}, cfg(221))
	if err != nil {
		t.Fatal(err)
	}
	for _, round := range []int{1, 1, 2, 3, 4, 5, 5, 5} {
		r.pool = append(r.pool, &drill{cur: contribution{round: round}})
	}
	r.retireStaleGroups()
	for _, d := range r.pool {
		if d.cur.round < 3 {
			t.Errorf("stale drill from round %d survived", d.cur.round)
		}
	}
	if len(r.pool) != 5 {
		t.Errorf("pool size = %d, want 5", len(r.pool))
	}
	// Fewer distinct groups than the cap: untouched.
	before := len(r.pool)
	r.retireStaleGroups()
	if len(r.pool) != before {
		t.Error("retirement ran on a compliant pool")
	}
}

func TestRSHistEstBounds(t *testing.T) {
	te := newTestEnv(t, 230, 5000, 4500, 100)
	r, err := NewRS(te.env.Store.Schema(), []*agg.Aggregate{agg.CountAll()}, cfg(231))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := r.histEst(0, 0); ok {
		t.Error("histEst(0) should be empty")
	}
	if _, ok := r.histEst(5, 0); ok {
		t.Error("histEst(future) should be empty")
	}
	if err := r.Step(te.iface.NewSession(200)); err != nil {
		t.Fatal(err)
	}
	if _, ok := r.histEst(1, 0); !ok {
		t.Error("histEst(1) missing after round 1")
	}
}

// Property: on a static database, updating drill downs must always land on
// the same depth, so RS's diff terms are exactly zero and its estimate is
// reproducible from history.
func TestRSStaticDiffsAreZero(t *testing.T) {
	te := newTestEnv(t, 240, 10000, 10000, 100)
	r, err := NewRS(te.env.Store.Schema(), []*agg.Aggregate{agg.CountAll()}, cfg(241))
	if err != nil {
		t.Fatal(err)
	}
	for round := 1; round <= 4; round++ {
		if err := r.Step(te.iface.NewSession(300)); err != nil {
			t.Fatal(err)
		}
	}
	for _, d := range r.pool {
		if d.prev.round == 0 {
			continue
		}
		if d.cur.depth != d.prev.depth {
			t.Errorf("static db but drill moved: %d -> %d", d.prev.depth, d.cur.depth)
		}
		if d.cur.pairs[0] != d.prev.pairs[0] {
			t.Errorf("static db but pair changed: %+v -> %+v", d.prev.pairs[0], d.cur.pairs[0])
		}
	}
}

// A drill pool shared by a tree must produce valid signatures only.
func TestRSPoolSignaturesValid(t *testing.T) {
	te := newTestEnv(t, 250, 8000, 7000, 100)
	r, err := NewRS(te.env.Store.Schema(), []*agg.Aggregate{agg.CountAll()}, cfg(251))
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Step(te.iface.NewSession(300)); err != nil {
		t.Fatal(err)
	}
	sch := te.env.Store.Schema()
	for _, d := range r.pool {
		if len(d.sig) != sch.M() {
			t.Fatalf("signature length %d", len(d.sig))
		}
		for lvl, v := range d.sig {
			if int(v) >= sch.DomainSize(lvl) {
				t.Fatalf("signature value out of domain at level %d", lvl)
			}
		}
		_ = querytree.Signature(d.sig)
	}
}

func TestMeanOr(t *testing.T) {
	if meanOr(nil, 7) != 7 {
		t.Error("empty default")
	}
	if meanOr([]float64{2, 4}, 7) != 3 {
		t.Error("mean")
	}
}

func TestMinMaxInt(t *testing.T) {
	if minInt(2, 3) != 2 || minInt(3, 2) != 2 {
		t.Error("minInt")
	}
	if maxInt(2, 3) != 3 || maxInt(3, 2) != 3 {
		t.Error("maxInt")
	}
}

func TestSampleVarOfMean(t *testing.T) {
	if sampleVarOfMean(nil) != 0 || sampleVarOfMean([]float64{5}) != 0 {
		t.Error("degenerate cases should be 0")
	}
	got := sampleVarOfMean([]float64{1, 3})
	if math.Abs(got-1) > 1e-12 { // var=2, /n=2 → 1
		t.Errorf("sampleVarOfMean = %v, want 1", got)
	}
}

var _ = rand.New // keep math/rand import if helpers change
