# Make targets mirror the CI jobs (.github/workflows/ci.yml) so humans
# and CI run exactly the same commands.

GO ?= go

.PHONY: build test race bench bench-serving bench-load bench-load-router bench-smoke fmt fmt-check vet promcheck ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# fmt rewrites; fmt-check (CI) fails on any file gofmt would change.
fmt:
	gofmt -w .

fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

# race exercises the parallel trial engine, the estimator execution
# engine (concurrent drill-down walks sharing one session, sequential
# and lockstep-batched), the tracking service (32 HTTP readers while Run
# advances rounds), the fleet scheduler + control plane (readers and
# task-table writers racing the tick loop), the snapshot engine's
# concurrent-reader contract (32 sessions on one Iface), the sharded
# store's scatter-gather path (32 epoch-pinned sessions racing per-shard
# mutator goroutines and epoch publication), the HTTP serving layer
# (32 concurrent clients on one handler) and the multi-process router
# (concurrent scatter-gather serving racing fleet epoch handshakes and
# shard churn) under the race detector.
race:
	$(GO) test -race ./internal/experiments/ ./internal/estimator/ \
		./internal/tracking/ ./internal/fleet/ ./internal/hiddendb/ \
		./internal/router/ ./webiface/ ./internal/obs/ \
		./internal/metrics/promcheck/

# promcheck scrapes the LIVE /v1/metrics of all four daemons' handlers
# (serve, track, fleet, router) and holds each document to the strict
# Prometheus text-format validator: HELP/TYPE pairing, label syntax,
# monotone cumulative buckets, le="+Inf" closure. Run uncached so the
# scrape re-executes on every CI invocation.
promcheck:
	$(GO) test -count=1 ./internal/metrics/ ./internal/metrics/promcheck/

# bench regenerates every figure and reports the headline metrics, then
# refreshes the machine-readable serving-benchmark record.
bench:
	$(GO) test -bench=. -benchmem ./...
	$(MAKE) bench-serving

# bench-serving runs the serving-path benchmarks (prefix vs non-prefix
# snapshot answering, query-key encoding, concurrent sessions, the
# estimator executor's sequential-vs-concurrent drill-down issuance,
# sharded scatter-gather serving at shards=1/4/16 under mutation load,
# the fleet scheduler tick at tasks=1 vs tasks=8 on one shared remote,
# the bitmap AND kernel scalar-vs-unrolled pair and the HTTP handler's
# legacy-vs-fastpath pair) and emits machine-readable results to
# BENCH_serving.json; CI archives the file as an artifact, seeding the
# repo's perf trajectory.
SERVING_BENCH := BenchmarkSnapshotPrefixQuery|BenchmarkSnapshotNonPrefix|BenchmarkQueryKey|BenchmarkServingConcurrent|BenchmarkConcurrentSessions|BenchmarkEstimatorExec|BenchmarkFleetScheduler|BenchmarkBitmapAND|BenchmarkHandlerSearch
BENCHTIME ?= 1s
# BenchmarkServingConcurrent races a free-running mutator goroutine, so
# its per-op cost depends on wall-clock interleaving: time-based
# calibration sees the cheap cache-hit ops first, overshoots b.N by
# orders of magnitude, and the sub-benchmark then runs for minutes (past
# the go test timeout). A fixed iteration count keeps the run bounded
# and the numbers comparable across commits (same count CI ratios with).
CHURN_BENCHTIME ?= 2000x
# Steps are separate (not a pipe) so a benchmark failure fails the
# target instead of being masked by the converter's exit status.
bench-serving:
	$(GO) test -run '^$$' -bench '$(SERVING_BENCH)' -benchmem -benchtime $(BENCHTIME) \
		./internal/hiddendb/ ./internal/experiments/ ./internal/estimator/ ./internal/fleet/ ./webiface/ > BENCH_serving.out
	$(GO) test -run '^$$' -bench 'BenchmarkServingConcurrent' -benchmem -benchtime $(CHURN_BENCHTIME) \
		. >> BENCH_serving.out
	$(GO) run ./cmd/dynagg-benchjson -out BENCH_serving.json < BENCH_serving.out

# bench-load fires the ReqBench-style HTTP load harness at an in-process
# server: a cache-cold pass (every request a fresh query) and a
# cache-hot pass (Zipf-skewed repeats over a small universe), recording
# p50/p95/p99, throughput and error/429 rates plus the cold/hot p50
# ratio to BENCH_load.json. CI archives the file and logs the ratio as a
# soft fast-path signal. Tune with LOADGEN_FLAGS.
LOAD_DURATION ?= 5s
LOADGEN_FLAGS ?=
bench-load:
	$(GO) run ./cmd/dynagg-loadgen -selfserve -compare -duration $(LOAD_DURATION) \
		-warmup 1s -clients 16 -queries 64 -zipf 1.2 $(LOADGEN_FLAGS) -out BENCH_load.json

# bench-load-router measures the fan-out tax: the same workload against
# a single in-process server (BENCH_load_single.json) and against the
# full in-process fleet topology — ROUTER_SHARDS shard daemons behind a
# dynagg-router with the startup epoch handshake
# (BENCH_load_router.json). CI archives both and logs the router/single
# p50 ratio as a soft signal.
ROUTER_SHARDS ?= 4
bench-load-router:
	$(GO) run ./cmd/dynagg-loadgen -selfserve -duration $(LOAD_DURATION) \
		-warmup 1s -clients 16 -queries 64 -zipf 1.2 $(LOADGEN_FLAGS) -out BENCH_load_single.json
	$(GO) run ./cmd/dynagg-loadgen -selfserve-router $(ROUTER_SHARDS) -duration $(LOAD_DURATION) \
		-warmup 1s -clients 16 -queries 64 -zipf 1.2 $(LOADGEN_FLAGS) -out BENCH_load_router.json

# bench-smoke runs every benchmark exactly once so bench_test.go cannot
# silently rot (no timing value, compile+run coverage only).
bench-smoke:
	$(GO) test -bench=. -benchtime=1x -run='^$$' ./...

ci: build test vet fmt-check promcheck race bench-smoke
