package experiments

import (
	"fmt"
	"sync"
	"testing"

	"github.com/dynagg/dynagg/internal/hiddendb"
	"github.com/dynagg/dynagg/internal/workload"
)

// BenchmarkConcurrentSessions measures the full serving cycle the
// snapshot engine enables: w concurrent sessions drain a round's worth of
// queries from ONE shared Iface, then the (single) harness goroutine
// applies the round's churn, and the cycle repeats. One benchmark op is
// one complete round — queries plus the batch update — so the workers=1
// vs workers=N ratio reports how much of the round the concurrent read
// path parallelises.
func BenchmarkConcurrentSessions(b *testing.B) {
	const (
		queriesPerRound = 256
		insertPerRound  = 100
		deleteFrac      = 0.002
	)
	for _, w := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("sessions=%d", w), func(b *testing.B) {
			b.ReportAllocs()
			data := workload.AutosLikeN(1, 30000, 12)
			env, err := workload.NewEnv(data, 27000, 2)
			if err != nil {
				b.Fatal(err)
			}
			iface := hiddendb.NewIface(env.Store, 100, nil)
			var queries []hiddendb.Query
			for v := 0; v < 16; v++ {
				queries = append(queries,
					hiddendb.NewQuery(hiddendb.Pred{Attr: 0, Val: uint16(v % 4)}),
					hiddendb.NewQuery(hiddendb.Pred{Attr: 7, Val: uint16(v % 3)}), // non-prefix
				)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				var wg sync.WaitGroup
				per := queriesPerRound / w
				for g := 0; g < w; g++ {
					wg.Add(1)
					go func(g int) {
						defer wg.Done()
						s := iface.NewSession(per)
						for j := 0; j < per; j++ {
							if _, err := s.Search(queries[(g*per+j)%len(queries)]); err != nil {
								b.Error(err)
								return
							}
						}
					}(g)
				}
				wg.Wait()
				// Round boundary: single mutator, snapshot isolation.
				if err := env.InsertFromPool(insertPerRound); err != nil {
					b.Fatal(err)
				}
				if err := env.DeleteFraction(deleteFrac); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
