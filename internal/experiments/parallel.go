package experiments

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// This file is the trial-level parallel execution engine.
//
// Concurrency contract (see also doc.go "Concurrency" and ROADMAP.md):
// the unit of parallelism is one TRIAL. Every trial owns its entire
// mutable world — its workload.Dataset (mutated by fresh-tuple
// generation), its workload.Env and hiddendb.Store/Iface/Session, its
// estimator instances and every rand.Rand — all derived deterministically
// from trialSeed(opt.Seed, trial). Nothing mutable crosses a trial
// boundary; the only shared inputs are immutable-after-construction
// values (schema.Schema, querytree.Tree, TrackSpec closures over plain
// parameters). Aggregation happens after the fact, in trial-index order,
// so that the float accumulation order — and therefore every figure —
// is byte-identical to a sequential run with the same seed.

// trialSeed derives the dataset seed of one trial. Trials are spaced
// 1000 apart in seed space, and each trial's components draw from fixed
// offsets of its dataSeed (dataset: +0, env: +1, estimator: +7), so the
// per-trial RNG streams never share a source seed.
func trialSeed(base int64, trial int) int64 {
	return base + int64(trial)*1000
}

// envSeedOffset and rngSeedOffset are the fixed per-trial seed offsets;
// named so tests can assert the streams stay disjoint.
const (
	envSeedOffset = 1
	rngSeedOffset = 7
)

// runTrials executes run(trial) for trial 0..n-1 on a bounded pool of
// worker goroutines and returns the results ordered by trial index.
// workers <= 0 means runtime.GOMAXPROCS(0); workers == 1 degenerates to
// the plain sequential loop. run must be self-contained (no shared
// mutable state): each invocation executes on whichever worker claims
// it. On error the pool stops claiming new trials and the error of the
// lowest-indexed failed trial that ran is returned; when several trials
// fail concurrently, which of their errors surfaces is the only
// nondeterminism the engine permits.
func runTrials[T any](n, workers int, run func(trial int) (T, error)) ([]T, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	results := make([]T, n)
	if workers <= 1 {
		for i := 0; i < n; i++ {
			r, err := run(i)
			if err != nil {
				return nil, err
			}
			results[i] = r
		}
		return results, nil
	}
	errs := make([]error, n)
	var (
		next   atomic.Int64 // next unclaimed trial index
		failed atomic.Bool  // set on first error; stops new claims
		wg     sync.WaitGroup
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !failed.Load() {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				r, err := run(i)
				if err != nil {
					errs[i] = err
					failed.Store(true)
					return
				}
				results[i] = r
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return results, nil
}
