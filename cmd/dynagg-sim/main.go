// Command dynagg-sim runs an interactive tracking simulation: a synthetic
// hidden database evolves round by round while one or more estimators
// track an aggregate through the restrictive top-k interface.
//
// Usage examples:
//
//	dynagg-sim                                   # defaults: all algorithms
//	dynagg-sim -n 100000 -k 1000 -g 500 -rounds 50
//	dynagg-sim -algo RS -agg avgprice -insert 1000 -delete 0.05
//	dynagg-sim -agg delta                        # trans-round |Dj|-|Dj-1|
package main

import (
	"flag"
	"fmt"
	"log"
	"math"
	"runtime"
	"strings"
	"sync"

	dynagg "github.com/dynagg/dynagg"
)

func main() {
	var (
		n       = flag.Int("n", 40000, "dataset size (tuple pool)")
		init0   = flag.Int("initial", 0, "initial database size (default 90% of n)")
		m       = flag.Int("m", 38, "number of attributes (<=38)")
		k       = flag.Int("k", 250, "interface top-k cap")
		g       = flag.Int("g", 500, "query budget per round")
		rounds  = flag.Int("rounds", 25, "rounds to simulate")
		insert  = flag.Int("insert", 300, "tuples inserted per round")
		del     = flag.Float64("delete", 0.001, "fraction of tuples deleted per round")
		seed    = flag.Int64("seed", 1, "random seed")
		algoF   = flag.String("algo", "ALL", "RESTART, REISSUE, RS, or ALL")
		aggF    = flag.String("agg", "count", "aggregate: count, sumprice, avgprice, delta")
		workers = flag.Int("workers", 0, "concurrent per-algorithm workers each round (0 = one per core); output is identical for every value")
	)
	flag.Parse()
	if *workers <= 0 {
		*workers = runtime.GOMAXPROCS(0)
	}
	if *init0 == 0 {
		*init0 = *n * 9 / 10
	}

	var algos []dynagg.Algorithm
	switch strings.ToUpper(*algoF) {
	case "ALL":
		algos = []dynagg.Algorithm{dynagg.AlgoRestart, dynagg.AlgoReissue, dynagg.AlgoRS}
	default:
		algos = []dynagg.Algorithm{dynagg.Algorithm(strings.ToUpper(*algoF))}
	}

	delta := *aggF == "delta"
	makeAgg := func() *dynagg.Aggregate {
		switch *aggF {
		case "count", "delta":
			return dynagg.CountAll()
		case "sumprice":
			return dynagg.SumOf("SUM(price)", dynagg.AuxField(0))
		case "avgprice":
			return dynagg.AvgOf("AVG(price)", dynagg.AuxField(0))
		default:
			log.Fatalf("unknown aggregate %q", *aggF)
			return nil
		}
	}

	type runner struct {
		algo  dynagg.Algorithm
		env   *dynagg.Env
		track *dynagg.Tracker
		spec  *dynagg.Aggregate
	}
	var runners []*runner
	for _, algo := range algos {
		data := dynagg.AutosLikeN(*seed, *n, *m)
		env, err := dynagg.NewEnv(data, *init0, *seed+1)
		if err != nil {
			log.Fatal(err)
		}
		iface := dynagg.NewIface(env.Store, *k, nil)
		spec := makeAgg()
		tr, err := dynagg.NewTracker(iface, []*dynagg.Aggregate{spec},
			dynagg.TrackerOptions{Algorithm: algo, Budget: *g, Seed: *seed + 7, DeltaTarget: delta})
		if err != nil {
			log.Fatal(err)
		}
		runners = append(runners, &runner{algo: algo, env: env, track: tr, spec: spec})
	}

	head := "round |        truth"
	for _, r := range runners {
		head += fmt.Sprintf(" | %8s est   rel", r.algo)
	}
	fmt.Println(head)

	// Each runner owns its entire mutable world (dataset, env, store,
	// tracker), so the per-round schedule+step of different algorithms can
	// run concurrently; only the row formatting below needs their results.
	type stepOut struct {
		est dynagg.Estimate
		ok  bool
		err error
	}
	sem := make(chan struct{}, *workers)
	prevTruth := math.NaN()
	for round := 1; round <= *rounds; round++ {
		var truth float64
		outs := make([]stepOut, len(runners))
		var wg sync.WaitGroup
		for i, r := range runners {
			wg.Add(1)
			sem <- struct{}{}
			go func(i int, r *runner) {
				defer func() { <-sem; wg.Done() }()
				if round > 1 {
					if err := r.env.DeleteFraction(*del); err != nil {
						outs[i].err = err
						return
					}
					if err := r.env.InsertFromPool(*insert); err != nil {
						outs[i].err = err
						return
					}
				}
				if i == 0 {
					truth = r.spec.Truth(r.env.Store)
				}
				if err := r.track.Step(); err != nil {
					outs[i].err = err
					return
				}
				if delta {
					outs[i].est, outs[i].ok = r.track.Delta(0)
				} else {
					outs[i].est, outs[i].ok = r.track.Estimate(0)
				}
			}(i, r)
		}
		wg.Wait()
		row := ""
		for i := range runners {
			if outs[i].err != nil {
				log.Fatal(outs[i].err)
			}
			if !outs[i].ok {
				row += fmt.Sprintf(" | %12s", "-")
				continue
			}
			target := truth
			if delta {
				target = truth - prevTruth
			}
			rel := math.Abs(outs[i].est.Value-target) / math.Max(1e-9, math.Abs(target))
			row += fmt.Sprintf(" | %12.1f %4.0f%%", outs[i].est.Value, 100*rel)
		}
		target := truth
		if delta {
			target = truth - prevTruth
		}
		fmt.Printf("%5d | %12.1f%s\n", round, target, row)
		prevTruth = truth
	}
}
